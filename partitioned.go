package amnesiadb

import (
	"fmt"
	"sync"

	"amnesiadb/internal/partition"
)

// PartitionedTable is a single-column store split into contiguous
// value-range shards, each with its own amnesia budget — the §4.4
// adaptive-partitioning vision. Budgets can follow the workload via
// Adapt. Obtain via DB.CreatePartitionedTable. Partitioned tables are
// first-class catalog entries: DB.Query and the HTTP /query endpoint
// route SELECTs to them transparently (scans fan out per shard, and
// SQL aggregates feed the Adapt workload counters like Select does).
//
// Like Table, reads (Select, Precision, Stats, Partitions) run under a
// shared lock and proceed in parallel; Insert and Adapt are exclusive.
// Within one query, shards are independent tables, so Select and
// Precision fan their per-shard scans out concurrently up to the
// database's Parallelism knob. Workload hit counters are atomic, so
// parallel selects still feed the Adapt loop, and per-shard budgets are
// atomic with per-shard mutation locks, so the partition layer's Adapt
// can interleave with Inserts; Adapt concurrent with reads still needs
// this facade's exclusive lock, because forgetting mutates the active
// bitmap that lock-free scans read.
type PartitionedTable struct {
	mu   sync.RWMutex
	name string
	set  *partition.Set
}

// CreatePartitionedTable creates a partitioned single-column table over
// the value domain [0, domain), split into parts equal-width shards that
// share totalBudget active tuples under the named strategy.
func (db *DB) CreatePartitionedTable(name, column string, domain int64, parts int, strategy string, totalBudget int) (*PartitionedTable, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.taken(name) {
		return nil, fmt.Errorf("amnesiadb: table %q already exists", name)
	}
	set, err := partition.New(column, domain, parts, strategy, totalBudget, db.splitSrc())
	if err != nil {
		return nil, err
	}
	set.SetParallelism(db.par)
	set.SetScheduler(db.pool)
	pt := &PartitionedTable{name: name, set: set}
	db.parts[name] = pt
	return pt, nil
}

// Name returns the table name.
func (p *PartitionedTable) Name() string { return p.name }

// Column returns the name of the single stored attribute.
func (p *PartitionedTable) Column() string { return p.set.Column() }

// Insert routes values to their shards and enforces per-shard budgets.
func (p *PartitionedTable) Insert(vals []int64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.set.Insert(vals)
}

// Select returns active values in [lo, hi) across the relevant shards,
// recording workload hits for Adapt.
func (p *PartitionedTable) Select(lo, hi int64) ([]int64, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.set.Select(lo, hi)
}

// Precision reports the §2.3 metrics over [lo, hi) across shards.
func (p *PartitionedTable) Precision(lo, hi int64) (rf, mf int, pf float64, err error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.set.Precision(lo, hi)
}

// Adapt reallocates the total budget toward the shards the workload has
// been querying, then re-enforces the new budgets.
func (p *PartitionedTable) Adapt() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.set.Adapt()
}

// PartitionInfo describes one shard's state.
type PartitionInfo struct {
	Lo, Hi int64
	Budget int
	Active int
	Stored int
}

// Partitions returns per-shard state in value order.
func (p *PartitionedTable) Partitions() []PartitionInfo {
	p.mu.RLock()
	defer p.mu.RUnlock()
	parts := p.set.Partitions()
	out := make([]PartitionInfo, len(parts))
	for i, sp := range parts {
		st := sp.Table().Stats()
		out[i] = PartitionInfo{Lo: sp.Lo, Hi: sp.Hi, Budget: sp.Budget(), Active: st.Active, Stored: st.Tuples}
	}
	return out
}

// Stats sums the shard counters.
func (p *PartitionedTable) Stats() Stats {
	p.mu.RLock()
	defer p.mu.RUnlock()
	st := p.set.Stats()
	return Stats{Tuples: st.Tuples, Active: st.Active, Forgotten: st.Forgotten, Batches: st.Batches}
}
