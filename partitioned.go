package amnesiadb

import (
	"fmt"

	"amnesiadb/internal/durability"
	"amnesiadb/internal/lockrank"
	"amnesiadb/internal/partition"
	"amnesiadb/internal/wal"
)

// PartitionedTable is a single-column store split into contiguous
// value-range shards, each with its own amnesia budget — the §4.4
// adaptive-partitioning vision. Budgets can follow the workload via
// Adapt. Obtain via DB.CreatePartitionedTable. Partitioned tables are
// first-class catalog entries: DB.Query and the HTTP /query endpoint
// route SELECTs to them transparently (scans fan out per shard, and
// SQL aggregates feed the Adapt workload counters like Select does).
//
// Like Table, reads (Select, Precision, Stats, Partitions) run under a
// shared lock and proceed in parallel; Insert and Adapt are exclusive.
// Within one query, shards are independent tables, so Select and
// Precision fan their per-shard scans out concurrently up to the
// database's Parallelism knob. Workload hit counters are atomic, so
// parallel selects still feed the Adapt loop, and per-shard budgets are
// atomic with per-shard mutation locks, so the partition layer's Adapt
// can interleave with Inserts; Adapt concurrent with reads still needs
// this facade's exclusive lock, because forgetting mutates the active
// bitmap that lock-free scans read.
type PartitionedTable struct {
	mu   lockrank.Relation
	db   *DB
	name string
	set  *partition.Set
	// dropped (guarded by mu) marks a handle whose relation left the
	// catalog; see Table.dropped.
	dropped bool
}

// liveLocked fails mutation through a handle that outlived its
// relation's drop; callers hold p.mu exclusively.
func (p *PartitionedTable) liveLocked() error {
	if p.dropped {
		return fmt.Errorf("amnesiadb: %w %q (dropped)", ErrUnknownTable, p.name)
	}
	return nil
}

// CreatePartitionedTable creates a partitioned single-column table over
// the value domain [0, domain), split into parts equal-width shards that
// share totalBudget active tuples under the named strategy.
func (db *DB) CreatePartitionedTable(name, column string, domain int64, parts int, strategy string, totalBudget int) (*PartitionedTable, error) {
	if err := db.writable(); err != nil {
		return nil, err
	}
	db.mu.Lock()
	if db.taken(name) {
		db.mu.Unlock()
		return nil, fmt.Errorf("amnesiadb: table %q already exists", name)
	}
	set, err := partition.New(column, domain, parts, strategy, totalBudget, db.splitSrc())
	if err != nil {
		db.mu.Unlock()
		return nil, err
	}
	set.SetParallelism(db.par)
	set.SetScheduler(db.pool)
	set.AdvanceEpoch(db.nextIncarnation())
	pt := &PartitionedTable{db: db, name: name, set: set}
	db.parts[name] = pt
	pend := db.logRecord(wal.RecordCreatePart(name, column, domain, parts, strategy, totalBudget))
	db.mu.Unlock()
	if err := db.commitWait(pend); err != nil {
		return nil, err
	}
	return pt, nil
}

// Name returns the table name.
func (p *PartitionedTable) Name() string { return p.name }

// Column returns the name of the single stored attribute.
func (p *PartitionedTable) Column() string { return p.set.Column() }

// Insert routes values to their shards and enforces per-shard budgets.
// On a durable database the per-shard outcome — appended values plus
// the positions budget enforcement forgot — is logged as one record, so
// replay reproduces the shard state without re-running the stochastic
// strategies.
func (p *PartitionedTable) Insert(vals []int64) error {
	if err := p.db.writable(); err != nil {
		return err
	}
	p.mu.Lock()
	if err := p.liveLocked(); err != nil {
		p.mu.Unlock()
		return err
	}
	var pend *durability.Pending
	err := func() error {
		if p.db.dur == nil {
			return p.set.Insert(vals)
		}
		var shards []wal.ShardMutation
		err := p.set.InsertObserved(vals, func(shard int, appended []int64, forgotten []int) {
			shards = append(shards, wal.ShardMutation{
				Shard:     shard,
				Values:    appended,
				Forgotten: forgotten,
			})
		})
		if err != nil {
			return err
		}
		if len(shards) > 0 {
			pend = p.db.logRecord(wal.RecordPartInsert(p.name, shards))
		}
		return nil
	}()
	p.mu.Unlock()
	if err != nil {
		return err
	}
	return p.db.commitWait(pend)
}

// Select returns active values in [lo, hi) across the relevant shards,
// recording workload hits for Adapt.
func (p *PartitionedTable) Select(lo, hi int64) ([]int64, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.set.Select(lo, hi)
}

// Precision reports the §2.3 metrics over [lo, hi) across shards.
func (p *PartitionedTable) Precision(lo, hi int64) (rf, mf int, pf float64, err error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.set.Precision(lo, hi)
}

// Adapt reallocates the total budget toward the shards the workload has
// been querying, then re-enforces the new budgets. On a durable
// database the new per-shard budgets and the forgotten positions are
// logged, so Adapt returns an error when the database is read-only or
// the WAL append fails.
func (p *PartitionedTable) Adapt() error {
	if err := p.db.writable(); err != nil {
		return err
	}
	p.mu.Lock()
	if err := p.liveLocked(); err != nil {
		p.mu.Unlock()
		return err
	}
	var pend *durability.Pending
	if p.db.dur == nil {
		p.set.Adapt()
	} else {
		var shards []wal.ShardAdapt
		p.set.AdaptObserved(func(shard, budget int, forgotten []int) {
			shards = append(shards, wal.ShardAdapt{
				Shard:     shard,
				Budget:    budget,
				Forgotten: forgotten,
			})
		})
		if len(shards) > 0 {
			pend = p.db.logRecord(wal.RecordPartAdapt(p.name, shards))
		}
	}
	p.mu.Unlock()
	return p.db.commitWait(pend)
}

// PartitionInfo describes one shard's state.
type PartitionInfo struct {
	Lo, Hi int64
	Budget int
	Active int
	Stored int
}

// Partitions returns per-shard state in value order.
func (p *PartitionedTable) Partitions() []PartitionInfo {
	p.mu.RLock()
	defer p.mu.RUnlock()
	parts := p.set.Partitions()
	out := make([]PartitionInfo, len(parts))
	for i, sp := range parts {
		st := sp.Table().Stats()
		out[i] = PartitionInfo{Lo: sp.Lo, Hi: sp.Hi, Budget: sp.Budget(), Active: st.Active, Stored: st.Tuples}
	}
	return out
}

// Stats sums the shard counters.
func (p *PartitionedTable) Stats() Stats {
	p.mu.RLock()
	defer p.mu.RUnlock()
	st := p.set.Stats()
	return Stats{Tuples: st.Tuples, Active: st.Active, Forgotten: st.Forgotten, Batches: st.Batches}
}
