package amnesiadb

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func newTable(t *testing.T, vals ...int64) *Table {
	t.Helper()
	db := Open(Options{Seed: 1})
	tbl, err := db.CreateTable("t", "a")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) > 0 {
		if err := tbl.InsertColumn("a", vals); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func seq(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

func TestCreateTableValidation(t *testing.T) {
	db := Open(Options{})
	if _, err := db.CreateTable("t", "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("t", "a"); err == nil {
		t.Fatal("duplicate table accepted")
	}
	if _, err := db.CreateTable("empty"); err == nil {
		t.Fatal("zero-column table accepted")
	}
}

func TestTableLookupAndNames(t *testing.T) {
	db := Open(Options{})
	if _, err := db.CreateTable("b", "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("a", "x"); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.Table("a"); !ok {
		t.Fatal("lookup failed")
	}
	if _, ok := db.Table("zz"); ok {
		t.Fatal("phantom table")
	}
	names := db.TableNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
}

func TestInsertAndSelect(t *testing.T) {
	tbl := newTable(t, 10, 20, 30, 40)
	res, err := tbl.Select("a", Range(15, 35))
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 2 || res.Values[0] != 20 || res.Values[1] != 30 {
		t.Fatalf("res = %+v", res)
	}
}

func TestPredicates(t *testing.T) {
	tbl := newTable(t, 1, 2, 3, 4, 5)
	cases := []struct {
		p    Pred
		want int
	}{
		{All(), 5},
		{Eq(3), 1},
		{Lt(3), 2},
		{Ge(4), 2},
		{And(Ge(2), Lt(5)), 3},
		{Range(5, 2), 3}, // inverted bounds are normalised
	}
	for _, c := range cases {
		res, err := tbl.Select("a", c.p)
		if err != nil {
			t.Fatal(err)
		}
		if res.Count() != c.want {
			t.Fatalf("%s matched %d, want %d", c.p, res.Count(), c.want)
		}
	}
	if All().String() != "TRUE" || (Pred{}).String() != "TRUE" {
		t.Fatal("predicate strings wrong")
	}
}

func TestPolicyEnforcedOnInsert(t *testing.T) {
	tbl := newTable(t)
	if err := tbl.SetPolicy(Policy{Strategy: "fifo", Budget: 100}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.InsertColumn("a", seq(250)); err != nil {
		t.Fatal(err)
	}
	s := tbl.Stats()
	if s.Active != 100 || s.Tuples != 250 {
		t.Fatalf("stats = %+v", s)
	}
	// FIFO keeps the newest 100.
	res, err := tbl.Select("a", All())
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[0] != 150 {
		t.Fatalf("oldest active = %d, want 150", res.Values[0])
	}
}

func TestSetPolicyValidation(t *testing.T) {
	tbl := newTable(t, 1)
	if err := tbl.SetPolicy(Policy{Strategy: "bogus", Budget: 10}); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	if err := tbl.SetPolicy(Policy{Strategy: "fifo", Budget: -1}); err == nil {
		t.Fatal("negative budget accepted")
	}
	// Budget 0 disables amnesia.
	if err := tbl.SetPolicy(Policy{}); err != nil {
		t.Fatal(err)
	}
	if tbl.Policy().Budget != 0 {
		t.Fatal("policy not cleared")
	}
}

func TestAllStrategiesViaFacade(t *testing.T) {
	for _, s := range Strategies() {
		db := Open(Options{Seed: 7})
		tbl, err := db.CreateTable("t", "a")
		if err != nil {
			t.Fatal(err)
		}
		if err := tbl.SetPolicy(Policy{Strategy: s, Budget: 50}); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if err := tbl.InsertColumn("a", seq(200)); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if got := tbl.Stats().Active; got != 50 {
			t.Fatalf("%s: active = %d", s, got)
		}
	}
}

func TestSelectWithForgotten(t *testing.T) {
	tbl := newTable(t)
	if err := tbl.SetPolicy(Policy{Strategy: "fifo", Budget: 10}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.InsertColumn("a", seq(30)); err != nil {
		t.Fatal(err)
	}
	act, err := tbl.Select("a", All())
	if err != nil {
		t.Fatal(err)
	}
	all, err := tbl.SelectWithForgotten("a", All())
	if err != nil {
		t.Fatal(err)
	}
	if act.Count() != 10 || all.Count() != 30 {
		t.Fatalf("active=%d all=%d", act.Count(), all.Count())
	}
}

func TestAggregate(t *testing.T) {
	tbl := newTable(t, 10, 20, 30)
	a, err := tbl.Aggregate("a", All())
	if err != nil {
		t.Fatal(err)
	}
	if a.Count != 3 || a.Sum != 60 || a.Avg != 20 || a.Min != 10 || a.Max != 30 {
		t.Fatalf("agg = %+v", a)
	}
	_, err = tbl.Aggregate("a", Range(100, 200))
	if !errors.Is(err, ErrNoRows) {
		t.Fatalf("err = %v", err)
	}
}

func TestPrecisionViaFacade(t *testing.T) {
	tbl := newTable(t)
	if err := tbl.SetPolicy(Policy{Strategy: "uniform", Budget: 50}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.InsertColumn("a", seq(100)); err != nil {
		t.Fatal(err)
	}
	rf, mf, pf, err := tbl.Precision("a", All())
	if err != nil {
		t.Fatal(err)
	}
	if rf != 50 || mf != 50 || math.Abs(pf-0.5) > 1e-12 {
		t.Fatalf("rf=%d mf=%d pf=%v", rf, mf, pf)
	}
}

func TestVacuumReclaims(t *testing.T) {
	tbl := newTable(t)
	if err := tbl.SetPolicy(Policy{Strategy: "fifo", Budget: 20}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.InsertColumn("a", seq(100)); err != nil {
		t.Fatal(err)
	}
	tbl.Vacuum()
	s := tbl.Stats()
	if s.Tuples != 20 || s.Forgotten != 0 {
		t.Fatalf("post-vacuum stats = %+v", s)
	}
}

func TestColdTierLifecycle(t *testing.T) {
	tbl := newTable(t)
	if err := tbl.SetPolicy(Policy{Strategy: "fifo", Budget: 50}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.InsertColumn("a", seq(100)); err != nil {
		t.Fatal(err)
	}
	moved, err := tbl.DemoteForgotten()
	if err != nil {
		t.Fatal(err)
	}
	if moved != 50 {
		t.Fatalf("demoted %d", moved)
	}
	if tbl.Stats().ColdTier != 50 {
		t.Fatalf("cold tier = %d", tbl.Stats().ColdTier)
	}
	// Forgotten values 0..49 are cold; recover 10..20.
	pos, lat, err := tbl.RecoverRange("a", 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(pos) != 10 || lat <= 0 {
		t.Fatalf("recovered %d positions, latency %v", len(pos), lat)
	}
	res, err := tbl.Select("a", Range(10, 20))
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 10 {
		t.Fatalf("recovered tuples not queryable: %d", res.Count())
	}
	bill := tbl.ColdBill()
	if bill.Retrievals != 1 || bill.RetrievalTotal <= 0 {
		t.Fatalf("bill = %+v", bill)
	}
}

func TestRecoverWithoutColdTier(t *testing.T) {
	tbl := newTable(t, 1)
	if _, _, err := tbl.RecoverRange("a", 0, 1); err == nil {
		t.Fatal("recovery without cold tier accepted")
	}
	if b := tbl.ColdBill(); b != (Bill{}) {
		t.Fatalf("bill without cold tier = %+v", b)
	}
}

func TestSummarizeAndApproxAvg(t *testing.T) {
	tbl := newTable(t)
	vals := seq(1000)
	var sum int64
	for _, v := range vals {
		sum += v
	}
	trueAvg := float64(sum) / 1000
	if err := tbl.SetPolicy(Policy{Strategy: "uniform", Budget: 200}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.InsertColumn("a", vals); err != nil {
		t.Fatal(err)
	}
	absorbed, err := tbl.Summarize("a")
	if err != nil {
		t.Fatal(err)
	}
	if absorbed != 800 {
		t.Fatalf("absorbed %d", absorbed)
	}
	tbl.Vacuum()
	got, err := tbl.ApproxAvg("a")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-trueAvg) > 1e-9 {
		t.Fatalf("approx avg %v, want %v", got, trueAvg)
	}
	if tbl.Stats().Segments != 1 {
		t.Fatalf("segments = %d", tbl.Stats().Segments)
	}
}

func TestForgottenQuantileFacade(t *testing.T) {
	tbl := newTable(t)
	if err := tbl.SetPolicy(Policy{Strategy: "fifo", Budget: 100}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.InsertColumn("a", seq(1000)); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.ForgottenQuantile(0.5); err == nil {
		t.Fatal("quantile before summaries succeeded")
	}
	if _, err := tbl.Summarize("a"); err != nil {
		t.Fatal(err)
	}
	// Forgotten = values 0..899; median ~450.
	med, err := tbl.ForgottenQuantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if med < 400 || med > 500 {
		t.Fatalf("median of deleted data = %d", med)
	}
}

func TestApproxAvgWithoutBook(t *testing.T) {
	tbl := newTable(t, 10, 20)
	got, err := tbl.ApproxAvg("a")
	if err != nil || got != 15 {
		t.Fatalf("approx avg = %v, %v", got, err)
	}
}

func TestMultiColumnInsert(t *testing.T) {
	db := Open(Options{Seed: 3})
	tbl, err := db.CreateTable("events", "ts", "val")
	if err != nil {
		t.Fatal(err)
	}
	err = tbl.Insert(map[string][]int64{
		"ts":  {1, 2, 3},
		"val": {100, 200, 300},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tbl.Select("val", Ge(200))
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 2 {
		t.Fatalf("count = %d", res.Count())
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() []int {
		db := Open(Options{Seed: 99})
		tbl, err := db.CreateTable("t", "a")
		if err != nil {
			t.Fatal(err)
		}
		if err := tbl.SetPolicy(Policy{Strategy: "uniform", Budget: 50}); err != nil {
			t.Fatal(err)
		}
		if err := tbl.InsertColumn("a", seq(200)); err != nil {
			t.Fatal(err)
		}
		act, _ := tbl.ActivePerBatch()
		return act
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic with equal seeds")
		}
	}
}

func TestQuerySQL(t *testing.T) {
	dbh := Open(Options{Seed: 5})
	tb, err := dbh.CreateTable("m", "v")
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.InsertColumn("v", []int64{10, 20, 30, 40}); err != nil {
		t.Fatal(err)
	}
	res, err := dbh.Query("SELECT AVG(v) FROM m WHERE v > 10")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != 30 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Ints[0] {
		t.Fatal("AVG flagged as integer")
	}
	proj, err := dbh.Query("SELECT v FROM m WHERE v >= 20 LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(proj.Rows) != 2 || proj.Rows[0][0] != 20 {
		t.Fatalf("projection = %v", proj.Rows)
	}
	if _, err := dbh.Query("SELECT v FROM nope"); err == nil {
		t.Fatal("unknown table accepted")
	}
	if _, err := dbh.Query("DELETE FROM m"); err == nil {
		t.Fatal("non-SELECT accepted")
	}
}

func TestQuerySeesOnlyActive(t *testing.T) {
	db := Open(Options{Seed: 6})
	tb, err := db.CreateTable("t", "a")
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.SetPolicy(Policy{Strategy: "fifo", Budget: 2}); err != nil {
		t.Fatal(err)
	}
	if err := tb.InsertColumn("a", []int64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != 2 {
		t.Fatalf("count = %v, want 2", res.Rows[0][0])
	}
}

func TestGroupByFacade(t *testing.T) {
	tbl := newTable(t, 1, 1, 12, 13, 25)
	byValue, err := tbl.GroupBy("a", All(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(byValue) != 4 || byValue[0].Count != 2 {
		t.Fatalf("by value = %+v", byValue)
	}
	byBucket, err := tbl.GroupBy("a", All(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(byBucket) != 3 || byBucket[1].Key != 10 || byBucket[1].Count != 2 {
		t.Fatalf("by bucket = %+v", byBucket)
	}
	if _, err := tbl.GroupBy("a", All(), -1); err == nil {
		t.Fatal("negative width accepted")
	}
}

func TestAdvisorRecommendsForWorkload(t *testing.T) {
	db := Open(Options{Seed: 14})
	tb, err := db.CreateTable("t", "a")
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 10; b++ {
		if err := tb.InsertColumn("a", seq(100)); err != nil {
			t.Fatal(err)
		}
	}
	adv, err := tb.NewAdvisor("a")
	if err != nil {
		t.Fatal(err)
	}
	// Aggregate-dominant workload.
	for q := 0; q < 20; q++ {
		if _, err := adv.Aggregate(All()); err != nil {
			t.Fatal(err)
		}
	}
	advice, err := adv.Advise(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if advice.Strategy != "pairwise" {
		t.Fatalf("aggregate workload advised %q (%s)", advice.Strategy, advice.Reason)
	}
	if advice.Budget <= 0 || advice.Reason == "" {
		t.Fatalf("advice = %+v", advice)
	}
	// The advised policy must actually be installable.
	if err := tb.SetPolicy(Policy{Strategy: advice.Strategy, Budget: advice.Budget}); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.NewAdvisor("zz"); err == nil {
		t.Fatal("unknown column accepted")
	}
}

func TestAdvisorSelectPath(t *testing.T) {
	db := Open(Options{Seed: 15})
	tb, err := db.CreateTable("t", "a")
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.InsertColumn("a", seq(100)); err != nil {
		t.Fatal(err)
	}
	adv, err := tb.NewAdvisor("a")
	if err != nil {
		t.Fatal(err)
	}
	res, err := adv.Select(Range(10, 20))
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 10 {
		t.Fatalf("advised select = %d rows", res.Count())
	}
	if _, err := adv.Advise(0.5); err != nil {
		t.Fatal(err)
	}
}

func TestMaxAgeRetentionWindow(t *testing.T) {
	db := Open(Options{Seed: 12})
	tb, err := db.CreateTable("t", "a")
	if err != nil {
		t.Fatal(err)
	}
	// Pure retention window, no budget: keep the last 2 batches.
	if err := tb.SetPolicy(Policy{MaxAgeBatches: 2}); err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 5; b++ {
		if err := tb.InsertColumn("a", []int64{int64(b), int64(b)}); err != nil {
			t.Fatal(err)
		}
	}
	active, _ := tb.ActivePerBatch()
	// Batches 0,1 are older than 2 batches at the end; 2,3,4 retained.
	if active[0] != 0 || active[1] != 0 {
		t.Fatalf("expired batches still active: %v", active)
	}
	if active[2] != 2 || active[3] != 2 || active[4] != 2 {
		t.Fatalf("in-window batches lost: %v", active)
	}
}

func TestMaxAgeComposesWithBudget(t *testing.T) {
	db := Open(Options{Seed: 13})
	tb, err := db.CreateTable("t", "a")
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.SetPolicy(Policy{Strategy: "uniform", Budget: 3, MaxAgeBatches: 1}); err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 4; b++ {
		if err := tb.InsertColumn("a", []int64{1, 2, 3, 4}); err != nil {
			t.Fatal(err)
		}
	}
	s := tb.Stats()
	if s.Active > 3 {
		t.Fatalf("budget exceeded: %d", s.Active)
	}
	active, _ := tb.ActivePerBatch()
	for b := 0; b < 2; b++ { // older than 1 batch
		if active[b] != 0 {
			t.Fatalf("expired batch %d still active: %v", b, active)
		}
	}
	if err := tb.SetPolicy(Policy{MaxAgeBatches: -1}); err == nil {
		t.Fatal("negative MaxAgeBatches accepted")
	}
}

func TestJoinViaFacade(t *testing.T) {
	db := Open(Options{Seed: 9})
	orders, err := db.CreateTable("orders", "cust")
	if err != nil {
		t.Fatal(err)
	}
	custs, err := db.CreateTable("customers", "id")
	if err != nil {
		t.Fatal(err)
	}
	if err := custs.InsertColumn("id", []int64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := orders.InsertColumn("cust", []int64{1, 1, 2, 9}); err != nil {
		t.Fatal(err)
	}
	rows, err := db.Join(orders, "cust", custs, "id", All())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("join pairs = %d, want 3", len(rows))
	}
	// Forget customer 1: its two orders drop out of the active join.
	if err := custs.SetPolicy(Policy{Strategy: "fifo", Budget: 2}); err != nil {
		t.Fatal(err)
	}
	if err := custs.EnforceBudget(); err != nil {
		t.Fatal(err)
	}
	rf, mf, pf, err := db.JoinPrecision(orders, "cust", custs, "id", All())
	if err != nil {
		t.Fatal(err)
	}
	if rf != 1 || mf != 2 || math.Abs(pf-1.0/3.0) > 1e-12 {
		t.Fatalf("join precision rf=%d mf=%d pf=%v", rf, mf, pf)
	}
}

func TestSelfJoin(t *testing.T) {
	db := Open(Options{Seed: 10})
	tb, err := db.CreateTable("t", "a")
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.InsertColumn("a", []int64{1, 2, 2}); err != nil {
		t.Fatal(err)
	}
	rows, err := db.Join(tb, "a", tb, "a", All())
	if err != nil {
		t.Fatal(err)
	}
	// 1-1 once; 2s pair 2x2 = 4: total 5.
	if len(rows) != 5 {
		t.Fatalf("self-join pairs = %d, want 5", len(rows))
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := Open(Options{Seed: 8})
	tb, err := db.CreateTable("t", "a")
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.SetPolicy(Policy{Strategy: "uniform", Budget: 60}); err != nil {
		t.Fatal(err)
	}
	if err := tb.InsertColumn("a", seq(100)); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Select("a", Range(0, 50)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tb.Save(&buf); err != nil {
		t.Fatal(err)
	}

	db2 := Open(Options{Seed: 8})
	back, err := db2.LoadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name() != "t" {
		t.Fatalf("name = %q", back.Name())
	}
	a, b := tb.Stats(), back.Stats()
	if a.Tuples != b.Tuples || a.Active != b.Active || a.Batches != b.Batches {
		t.Fatalf("stats differ: %+v vs %+v", a, b)
	}
	// The restored table answers queries identically.
	r1, err := tb.Select("a", Range(0, 100))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := back.Select("a", Range(0, 100))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Count() != r2.Count() {
		t.Fatalf("restored select %d rows, want %d", r2.Count(), r1.Count())
	}
	// Loading the same name twice fails.
	var buf2 bytes.Buffer
	if err := tb.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if _, err := db2.LoadTable(&buf2); err == nil {
		t.Fatal("duplicate load accepted")
	}
}

func TestPropertyBudgetNeverExceeded(t *testing.T) {
	f := func(batches []uint8, budgetRaw uint8, stratIdx uint8) bool {
		budget := int(budgetRaw)%100 + 1
		strat := Strategies()[int(stratIdx)%len(Strategies())]
		db := Open(Options{Seed: uint64(budgetRaw) + 1})
		tbl, err := db.CreateTable("t", "a")
		if err != nil {
			return false
		}
		if err := tbl.SetPolicy(Policy{Strategy: strat, Budget: budget}); err != nil {
			return false
		}
		for _, b := range batches {
			n := int(b)%50 + 1
			if err := tbl.InsertColumn("a", seq(n)); err != nil {
				return false
			}
			if tbl.Stats().Active > budget {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
