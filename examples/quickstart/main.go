// Quickstart: create a table, give it an amnesia policy, watch it forget.
//
//	go run ./examples/quickstart
//
// The example loads one million uniform readings into a table whose
// policy allows only 100k active tuples under the rot strategy, runs a
// query workload so the table learns what is interesting, and prints how
// precision degrades gracefully while the storage budget holds.
package main

import (
	"fmt"
	"log"

	"amnesiadb"
	"amnesiadb/internal/xrand"
)

func main() {
	db := amnesiadb.Open(amnesiadb.Options{Seed: 42})
	t, err := db.CreateTable("readings", "value")
	if err != nil {
		log.Fatal(err)
	}

	// Budget: at most 100k active tuples, forgotten by access frequency.
	if err := t.SetPolicy(amnesiadb.Policy{Strategy: "rot", Budget: 100_000}); err != nil {
		log.Fatal(err)
	}

	src := xrand.New(7)
	const batch = 20_000 // 20% volatility per round against the budget
	for round := 1; round <= 50; round++ {
		vals := make([]int64, batch)
		for i := range vals {
			vals[i] = src.Int63n(1_000_000)
		}
		// The workload runs before the insert, so the rot policy has
		// fresh frequencies when it must forget: the band [0, 100k) is
		// what we care about, and touching it teaches rot to keep it.
		if round > 1 {
			if _, err := t.Select("value", amnesiadb.Range(0, 100_000)); err != nil {
				log.Fatal(err)
			}
		}
		if err := t.InsertColumn("value", vals); err != nil {
			log.Fatal(err)
		}

		if round%10 != 0 {
			continue
		}
		rf, mf, pf, err := t.Precision("value", amnesiadb.Range(0, 100_000))
		if err != nil {
			log.Fatal(err)
		}
		overall := float64(t.Stats().Active) / float64(t.Stats().Tuples)
		s := t.Stats()
		fmt.Printf("round %2d: stored=%7d active=%6d  hot-band precision=%.3f (returned %d, missed %d; blind forgetting would give %.3f)\n",
			round, s.Tuples, s.Active, pf, rf, mf, overall)
	}

	// The budget held the whole time; show the final ledger.
	s := t.Stats()
	fmt.Printf("\nfinal: %d tuples stored, %d active (budget %d), %d forgotten\n",
		s.Tuples, s.Active, t.Policy().Budget, s.Forgotten)

	avg, err := t.Aggregate("value", amnesiadb.All())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AVG over active data: %.1f (count %d)\n", avg.Avg, avg.Count)
}
