// Partitioned: §4.4's adaptive partitioning driven end to end — a
// value-partitioned table served through the SQL catalog, with the
// pipelined shard fan-out and the shard-merge ORDER BY doing the work,
// and Adapt() steering per-shard budgets toward the queried range.
//
//	go run ./examples/partitioned
package main

import (
	"fmt"
	"log"

	"amnesiadb"
	"amnesiadb/internal/xrand"
)

func main() {
	db := amnesiadb.Open(amnesiadb.Options{Seed: 4})
	pt, err := db.CreatePartitionedTable("sensors", "reading", 10_000, 8, "uniform", 40_000)
	if err != nil {
		log.Fatal(err)
	}
	src := xrand.New(11)
	vals := make([]int64, 100_000)
	for i := range vals {
		vals[i] = src.Int63n(10_000)
	}
	if err := pt.Insert(vals); err != nil {
		log.Fatal(err)
	}

	// The pipelined shard fan-out: results stream shard by shard.
	qs, err := db.QueryStream("SELECT reading FROM sensors WHERE reading >= 2000 AND reading < 4000")
	if err != nil {
		log.Fatal(err)
	}
	n := 0
	for {
		rows, err := qs.Next()
		if err != nil {
			log.Fatal(err)
		}
		if rows == nil {
			break
		}
		n += len(rows)
	}
	fmt.Printf("range scan streamed %d readings\n", n)

	// Shard-merge ORDER BY: per-shard sorts, no global sort.
	res, err := db.Query("SELECT reading FROM sensors ORDER BY reading DESC LIMIT 3")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top readings: %v %v %v\n", res.Rows[0][0], res.Rows[1][0], res.Rows[2][0])

	// Focus the workload, adapt, and watch budgets follow it.
	for i := 0; i < 50; i++ {
		if _, err := pt.Select(2000, 3000); err != nil {
			log.Fatal(err)
		}
	}
	pt.Adapt()
	for _, p := range pt.Partitions() {
		fmt.Printf("shard [%4d,%5d) budget %5d active %5d\n", p.Lo, p.Hi, p.Budget, p.Active)
	}
}
