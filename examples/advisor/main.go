// Advisor: §2.2's statistics programme in action — "knowledge about all
// queries and their frequency ... would make it possible to identify if
// and how long a tuple is active before it can be safely forgotten.
// Collecting such statistics is a good start to assess what data amnesia
// an application can afford."
//
//	go run ./examples/advisor
//
// Two applications run the same dashboard database. One only ever looks
// at the most recent data; the other keeps re-reading one narrow slice of
// history. The advisor watches each workload, recommends the matching
// policy, and the example verifies the recommendation by measuring the
// precision each workload gets under its advised policy versus a naive
// uniform one.
package main

import (
	"errors"
	"fmt"
	"log"

	"amnesiadb"
	"amnesiadb/internal/xrand"
)

func main() {
	fresh := runWorkload("dashboard-fresh", func(adv *amnesiadb.Advisor, max int64) error {
		// Looks only at the newest 5% of the value range (serial data =
		// arrival order, so this is "the last few minutes").
		_, err := adv.Select(amnesiadb.Range(max*95/100, max+1))
		return err
	})
	slice := runWorkload("auditor-slice", func(adv *amnesiadb.Advisor, max int64) error {
		// Keeps re-reading one old, narrow slice.
		_, err := adv.Select(amnesiadb.Range(1000, 1200))
		return err
	})

	fmt.Println("workload          advised    budget  precision(advised)  precision(uniform)")
	for _, r := range []result{fresh, slice} {
		fmt.Printf("%-17s %-10s %6d  %18.3f  %18.3f\n",
			r.name, r.strategy, r.budget, r.advised, r.uniform)
	}
}

type result struct {
	name     string
	strategy string
	budget   int
	advised  float64
	uniform  float64
}

// runWorkload feeds serial data and the given query pattern to an
// advisor, installs its recommendation, continues the run, and measures
// precision of the workload's own queries against a uniform-policy twin.
func runWorkload(name string, query func(*amnesiadb.Advisor, int64) error) result {
	db := amnesiadb.Open(amnesiadb.Options{Seed: 7})
	tb, err := db.CreateTable(name, "ts")
	if err != nil {
		log.Fatal(err)
	}
	adv, err := tb.NewAdvisor("ts")
	if err != nil {
		log.Fatal(err)
	}

	src := xrand.New(3)
	_ = src
	next := int64(0)
	insert := func(t *amnesiadb.Table) {
		vals := make([]int64, 2000)
		base := next
		for i := range vals {
			vals[i] = base + int64(i)
		}
		if err := t.Insert(map[string][]int64{"ts": vals}); err != nil {
			log.Fatal(err)
		}
	}

	// Observation phase: 10 batches with the workload running.
	for round := 0; round < 10; round++ {
		insert(tb)
		next += 2000
		for q := 0; q < 20; q++ {
			if err := query(adv, next-1); err != nil && !errors.Is(err, amnesiadb.ErrNoRows) {
				log.Fatal(err)
			}
		}
	}
	advice, err := adv.Advise(0.9)
	if err != nil {
		log.Fatal(err)
	}

	// Verification phase: two twins under budget pressure, one advised,
	// one uniform, same continued workload.
	measure := func(strategy string) float64 {
		twin := amnesiadb.Open(amnesiadb.Options{Seed: 7})
		t2, err := twin.CreateTable(name, "ts")
		if err != nil {
			log.Fatal(err)
		}
		a2, err := t2.NewAdvisor("ts")
		if err != nil {
			log.Fatal(err)
		}
		if err := t2.SetPolicy(amnesiadb.Policy{Strategy: strategy, Budget: advice.Budget}); err != nil {
			log.Fatal(err)
		}
		n := int64(0)
		var lastPF float64 = 1
		for round := 0; round < 10; round++ {
			vals := make([]int64, 2000)
			for i := range vals {
				vals[i] = n + int64(i)
			}
			if err := t2.Insert(map[string][]int64{"ts": vals}); err != nil {
				log.Fatal(err)
			}
			n += 2000
			for q := 0; q < 20; q++ {
				if err := query(a2, n-1); err != nil && !errors.Is(err, amnesiadb.ErrNoRows) {
					log.Fatal(err)
				}
			}
		}
		// Final precision of the workload's own query shape.
		var rf, mf int
		if name == "dashboard-fresh" {
			rf, mf, lastPF, err = t2.Precision("ts", amnesiadb.Range(n*95/100, n+1))
		} else {
			rf, mf, lastPF, err = t2.Precision("ts", amnesiadb.Range(1000, 1200))
		}
		if err != nil {
			log.Fatal(err)
		}
		_, _ = rf, mf
		return lastPF
	}

	return result{
		name:     name,
		strategy: advice.Strategy,
		budget:   advice.Budget,
		advised:  measure(advice.Strategy),
		uniform:  measure("uniform"),
	}
}
