// Privacy: §1's regulatory motivation — "observations that are
// constrained by a Data Privacy Act should be forgotten within the
// legally defined time frame."
//
//	go run ./examples/privacy
//
// A user-activity table keeps at most 90 days of events via FIFO amnesia
// (the retention window), while aggregate summaries lawfully preserve
// anonymous statistics. At the end the example vacuums and proves the
// expired records are physically gone: even a complete scan (the
// forgotten-data escape hatch) no longer sees them.
package main

import (
	"fmt"
	"log"

	"amnesiadb"
	"amnesiadb/internal/xrand"
)

const (
	eventsPerDay  = 1_000
	retentionDays = 90
	simulatedDays = 365
)

func main() {
	db := amnesiadb.Open(amnesiadb.Options{Seed: 4})
	activity, err := db.CreateTable("activity", "day")
	if err != nil {
		log.Fatal(err)
	}
	// The legally defined time frame, expressed as a storage budget:
	// FIFO forgets anything older than the newest 90 days of events.
	err = activity.SetPolicy(amnesiadb.Policy{
		Strategy: "fifo",
		Budget:   retentionDays * eventsPerDay,
	})
	if err != nil {
		log.Fatal(err)
	}

	src := xrand.New(8)
	_ = src
	for day := 0; day < simulatedDays; day++ {
		vals := make([]int64, eventsPerDay)
		for i := range vals {
			vals[i] = int64(day)
		}
		if err := activity.InsertColumn("day", vals); err != nil {
			log.Fatal(err)
		}
		// Monthly compliance job: summarise (anonymous aggregates are
		// retainable), then physically erase the expired records.
		if day%30 == 29 {
			if _, err := activity.Summarize("day"); err != nil {
				log.Fatal(err)
			}
			activity.Vacuum()
		}
	}

	s := activity.Stats()
	fmt.Printf("after %d days: %d events stored, budget %d, %d summary segments\n",
		simulatedDays, s.Tuples, activity.Policy().Budget, s.Segments)

	// The active window holds only the last 90 days.
	oldest, err := activity.Aggregate("day", amnesiadb.All())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("visible days: %d..%d (retention window %d days)\n",
		oldest.Min, oldest.Max, retentionDays)

	// Compliance proof: day 0 must be gone even from a complete scan of
	// everything still physically stored.
	ghost, err := activity.SelectWithForgotten("day", amnesiadb.Eq(0))
	if err != nil {
		log.Fatal(err)
	}
	if ghost.Count() == 0 {
		fmt.Println("compliance check: day-0 records physically erased ✓")
	} else {
		fmt.Printf("compliance check FAILED: %d day-0 records still on disk\n", ghost.Count())
	}

	// Yet lawful anonymous statistics survive: the all-time average day
	// index is reconstructible from the 32-byte segments.
	avg, err := activity.ApproxAvg("day")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("all-time mean day (from summaries): %.1f over %d total events\n",
		avg, simulatedDays*eventsPerDay)
}
