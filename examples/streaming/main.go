// Streaming: the paper's §3.1 FIFO scenario — a stream buffer database.
//
//	go run ./examples/streaming
//
// Events arrive continuously; the table keeps a sliding window of the
// freshest 50k events (FIFO amnesia) and answers windowed analytics on
// them, while a summary book preserves the aggregate footprint of
// everything that scrolled out of the window.
package main

import (
	"fmt"
	"log"

	"amnesiadb"
	"amnesiadb/internal/xrand"
)

func main() {
	db := amnesiadb.Open(amnesiadb.Options{Seed: 7})
	events, err := db.CreateTable("events", "latency_us")
	if err != nil {
		log.Fatal(err)
	}
	const window = 50_000
	if err := events.SetPolicy(amnesiadb.Policy{Strategy: "fifo", Budget: window}); err != nil {
		log.Fatal(err)
	}

	src := xrand.New(99)
	// Latency regime shifts upward every epoch: the sliding window must
	// track the shift while the summaries remember the whole history.
	for epoch := 0; epoch < 5; epoch++ {
		base := int64(1000 * (epoch + 1))
		vals := make([]int64, 40_000)
		for i := range vals {
			vals[i] = base + src.Int63n(500)
		}
		if err := events.InsertColumn("latency_us", vals); err != nil {
			log.Fatal(err)
		}

		// Summarise what just scrolled out, then vacuum the hot store.
		absorbed, err := events.Summarize("latency_us")
		if err != nil {
			log.Fatal(err)
		}
		events.Vacuum()

		live, err := events.Aggregate("latency_us", amnesiadb.All())
		if err != nil {
			log.Fatal(err)
		}
		histAvg, err := events.ApproxAvg("latency_us")
		if err != nil {
			log.Fatal(err)
		}
		s := events.Stats()
		fmt.Printf("epoch %d: window avg=%6.0fus (n=%d)  all-time avg=%6.0fus  absorbed=%5d  stored=%d\n",
			epoch+1, live.Avg, live.Count, histAvg, absorbed, s.Tuples)
	}

	// The window only sees the most recent regime; history lives on in
	// 32-byte segments.
	s := events.Stats()
	fmt.Printf("\nwindow=%d tuples, summary segments=%d — history preserved at ~%d bytes\n",
		s.Active, s.Segments, s.Segments*32)
}
