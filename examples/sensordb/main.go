// Sensordb: the paper's §5 weather-database vision — domain-specific
// amnesia where "data from areas that have constant weather patterns can
// be forgotten in a few weeks time, where for areas that exhibit strange
// meteorological phenomena the data should be kept for longer periods".
//
//	go run ./examples/sensordb
//
// Two stations feed one database: a boring station (near-constant
// readings) and a volatile one. Each gets its own table and policy —
// pairwise (average-preserving) forgetting with a tight budget for the
// boring station, distribution-aligned forgetting with a generous budget
// for the volatile one. The example shows the boring station's average
// surviving aggressive forgetting while the volatile station keeps its
// distribution shape.
package main

import (
	"fmt"
	"log"
	"math"

	"amnesiadb"
	"amnesiadb/internal/xrand"
)

func main() {
	db := amnesiadb.Open(amnesiadb.Options{Seed: 2024})
	boring, err := db.CreateTable("station_constant", "temp_mc") // millidegrees
	if err != nil {
		log.Fatal(err)
	}
	volatile, err := db.CreateTable("station_volatile", "temp_mc")
	if err != nil {
		log.Fatal(err)
	}

	// Constant weather: remember almost nothing, preserve the average.
	if err := boring.SetPolicy(amnesiadb.Policy{Strategy: "pairwise", Budget: 2_000}); err != nil {
		log.Fatal(err)
	}
	// Strange weather: keep far more, and keep the histogram aligned.
	if err := volatile.SetPolicy(amnesiadb.Policy{Strategy: "distaligned", Budget: 40_000}); err != nil {
		log.Fatal(err)
	}

	src := xrand.New(5)
	var trueBoringSum, trueBoringN float64
	volatileHighN := 0
	const weeks = 8
	for w := 0; w < weeks; w++ {
		// Boring station: 18C with tiny noise.
		b := make([]int64, 20_000)
		for i := range b {
			b[i] = 18_000 + src.Int63n(400) - 200
			trueBoringSum += float64(b[i])
			trueBoringN++
		}
		// Volatile station: bimodal — cold snaps and heat bursts.
		v := make([]int64, 20_000)
		for i := range v {
			if src.Bool(0.25) {
				v[i] = 35_000 + src.Int63n(3_000) // heat burst
				volatileHighN++
			} else {
				v[i] = 5_000 + src.Int63n(3_000)
			}
		}
		if err := boring.InsertColumn("temp_mc", b); err != nil {
			log.Fatal(err)
		}
		if err := volatile.InsertColumn("temp_mc", v); err != nil {
			log.Fatal(err)
		}
	}

	// How well did each policy preserve what matters?
	bAgg, err := boring.Aggregate("temp_mc", amnesiadb.All())
	if err != nil {
		log.Fatal(err)
	}
	trueAvg := trueBoringSum / trueBoringN
	fmt.Printf("boring station: %d/%d tuples kept (%.1f%%)\n",
		bAgg.Count, weeks*20_000, 100*float64(bAgg.Count)/float64(weeks*20_000))
	fmt.Printf("  true avg %.1f  remembered avg %.1f  drift %.3f%%\n",
		trueAvg, bAgg.Avg, 100*math.Abs(bAgg.Avg-trueAvg)/trueAvg)

	hot, err := volatile.Select("temp_mc", amnesiadb.Ge(30_000))
	if err != nil {
		log.Fatal(err)
	}
	vAgg, err := volatile.Aggregate("temp_mc", amnesiadb.All())
	if err != nil {
		log.Fatal(err)
	}
	trueHotFrac := float64(volatileHighN) / float64(weeks*20_000)
	keptHotFrac := float64(hot.Count()) / float64(vAgg.Count)
	fmt.Printf("volatile station: %d tuples kept; heat-burst share %.1f%% (true %.1f%%)\n",
		vAgg.Count, 100*keptHotFrac, 100*trueHotFrac)

	// Finally, reclaim the space: the boring station's forgotten mass
	// collapses into summary segments before vacuuming.
	absorbed, err := boring.Summarize("temp_mc")
	if err != nil {
		log.Fatal(err)
	}
	boring.Vacuum()
	approx, err := boring.ApproxAvg("temp_mc")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after summarise(%d)+vacuum: all-time avg reconstructed as %.1f (true %.1f)\n",
		absorbed, approx, trueAvg)
}
