// Coldstorage: the §1 economics of forgotten data — demote cold tuples to
// a Glacier-priced tier, pay to bring some back.
//
//	go run ./examples/coldstorage
//
// An audit-log table forgets everything older than its budget (FIFO),
// demotes the forgotten tuples to the simulated cold tier, and vacuums
// the hot store. When an investigation needs one old value band back, the
// example recovers exactly that band and prints the latency and the bill.
package main

import (
	"fmt"
	"log"

	"amnesiadb"
	"amnesiadb/internal/xrand"
)

func main() {
	db := amnesiadb.Open(amnesiadb.Options{Seed: 11})
	audit, err := db.CreateTable("audit", "event_id")
	if err != nil {
		log.Fatal(err)
	}
	const hotBudget = 20_000
	if err := audit.SetPolicy(amnesiadb.Policy{Strategy: "fifo", Budget: hotBudget}); err != nil {
		log.Fatal(err)
	}

	// A year of audit events; ids are serial so value = arrival order.
	src := xrand.New(3)
	_ = src
	next := int64(0)
	for month := 0; month < 12; month++ {
		vals := make([]int64, 10_000)
		for i := range vals {
			vals[i] = next
			next++
		}
		if err := audit.InsertColumn("event_id", vals); err != nil {
			log.Fatal(err)
		}
		// Monthly maintenance: demote what FIFO forgot.
		moved, err := audit.DemoteForgotten()
		if err != nil {
			log.Fatal(err)
		}
		if moved > 0 {
			fmt.Printf("month %2d: demoted %6d events to cold storage\n", month+1, moved)
		}
	}
	s := audit.Stats()
	bill := audit.ColdBill()
	fmt.Printf("\nhot tier: %d active events; cold tier: %d events (storage $%.6f/yr)\n",
		s.Active, s.ColdTier, bill.StoragePerYear)

	// Hot queries only see the fresh window.
	fresh, err := audit.Select("event_id", amnesiadb.Range(0, int64(12*10_000)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query over all ids sees %d events (the hot window)\n", fresh.Count())

	// The investigation: recover events 30000-30500 from the cold tier.
	pos, latency, err := audit.RecoverRange("event_id", 30_000, 30_500)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered %d events after a simulated %v retrieval\n", len(pos), latency)

	again, err := audit.Select("event_id", amnesiadb.Range(30_000, 30_500))
	if err != nil {
		log.Fatal(err)
	}
	bill = audit.ColdBill()
	fmt.Printf("the band is queryable again: %d events; bill so far: $%.6f retrieval across %d retrievals\n",
		again.Count(), bill.RetrievalTotal, bill.Retrievals)
}
