package analyzers

import (
	"go/ast"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"amnesiadb/tools/amnesialint/analysis"
)

// WALExhaustive makes adding a WAL record kind without full plumbing a
// lint error: every switch whose tag is the wal package's Kind type
// must carry a case for every declared Kind constant (a default clause
// handles corruption, not missing plumbing), and inside the wal package
// each Kind must be referenced by a Record* encoder. Replay, apply,
// and any future snapshot-diff dispatch all hit the switch rule, so a
// new kind that only partially lands fails CI instead of silently
// skipping records at recovery.
var WALExhaustive = &analysis.Analyzer{
	Name: "walexhaustive",
	Doc:  "every wal record Kind must appear in every Kind switch and have a Record* encoder",
	Run:  runWALExhaustive,
}

var kindNameRe = regexp.MustCompile(`^Kind[A-Z]`)

func runWALExhaustive(pass *analysis.Pass) error {
	checkKindSwitches(pass)
	checkEncoders(pass)
	return nil
}

// kindType reports whether t is a named type Kind declared in a wal
// package.
func kindType(t types.Type) *types.Named {
	n, _ := t.(*types.Named)
	if n == nil || n.Obj().Name() != "Kind" || n.Obj().Pkg() == nil {
		return nil
	}
	if !pkgPathHasSuffix(n.Obj().Pkg(), "wal") {
		return nil
	}
	return n
}

// kindConsts returns every package-level constant of type kind whose
// name matches Kind[A-Z]*, keyed by name. For a foreign package only
// exported constants are visible, which is exactly the record-kind set
// (sentinels like kindMax stay internal).
func kindConsts(kind *types.Named) map[string]*types.Const {
	out := make(map[string]*types.Const)
	scope := kind.Obj().Pkg().Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !kindNameRe.MatchString(name) {
			continue
		}
		if types.Identical(c.Type(), kind) {
			out[name] = c
		}
	}
	return out
}

func checkKindSwitches(pass *analysis.Pass) {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			if pass.InTestFile(sw.Pos()) {
				return true
			}
			tv, ok := info.Types[sw.Tag]
			if !ok {
				return true
			}
			kind := kindType(tv.Type)
			if kind == nil {
				return true
			}
			universe := kindConsts(kind)
			if len(universe) == 0 {
				return true
			}
			for _, stmt := range sw.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, e := range cc.List {
					var id *ast.Ident
					switch x := ast.Unparen(e).(type) {
					case *ast.Ident:
						id = x
					case *ast.SelectorExpr:
						id = x.Sel
					default:
						continue
					}
					if c, ok := info.Uses[id].(*types.Const); ok {
						delete(universe, c.Name())
					}
				}
			}
			if len(universe) > 0 {
				missing := make([]string, 0, len(universe))
				for name := range universe {
					missing = append(missing, name)
				}
				sort.Strings(missing)
				pass.Reportf(sw.Pos(),
					"switch over %s.Kind is missing record kinds %s; a replayed log would skip those records",
					kind.Obj().Pkg().Name(), strings.Join(missing, ", "))
			}
			return true
		})
	}
}

// checkEncoders runs only when the pass analyzes the wal package
// itself: every Kind constant must be referenced from some Record*
// encoder, otherwise the kind can never be written and is dead
// plumbing (or, worse, awaiting an encoder that was forgotten).
func checkEncoders(pass *analysis.Pass) {
	if !pkgPathHasSuffix(pass.Pkg, "wal") {
		return
	}
	scope := pass.Pkg.Scope()
	pending := make(map[types.Object]*types.Const)
	for _, name := range scope.Names() {
		if c, ok := scope.Lookup(name).(*types.Const); ok && kindNameRe.MatchString(name) {
			pending[c] = c
		}
	}
	if len(pending) == 0 {
		return
	}
	info := pass.TypesInfo
	funcDecls(pass.Files, pass.Fset, func(fd *ast.FuncDecl) {
		if !strings.HasPrefix(fd.Name.Name, "Record") {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil {
					delete(pending, obj)
				}
			}
			return true
		})
	})
	for _, c := range pending {
		pass.Reportf(c.Pos(), "record kind %s has no Record* encoder; it can never be written to the log", c.Name())
	}
}
