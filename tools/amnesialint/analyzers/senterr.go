package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"amnesiadb/tools/amnesialint/analysis"
)

// SentErr protects the sentinel-error contracts the HTTP status mapping
// and the read-only degradation path rely on (sql.ErrInvalid,
// ErrUnknownTable, ErrReadOnly, engine.ErrNoRows, the wal recovery
// sentinels): once any layer wraps a sentinel with %w, identity
// comparison silently stops matching. So sentinels must be tested with
// errors.Is — never == / != — never matched by message string, and
// fmt.Errorf must wrap them with %w so errors.Is keeps seeing them
// through the wrap chain.
var SentErr = &analysis.Analyzer{
	Name: "senterr",
	Doc:  "sentinel errors must be wrapped with %w and tested with errors.Is, never == or string matching",
	Run:  runSentErr,
}

func runSentErr(pass *analysis.Pass) error {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BinaryExpr:
				if x.Op != token.EQL && x.Op != token.NEQ {
					return true
				}
				if isNil(info, x.X) || isNil(info, x.Y) {
					return true
				}
				if isErrorSentinel(info, x.X) || isErrorSentinel(info, x.Y) {
					pass.Reportf(x.OpPos,
						"sentinel error compared with %s; use errors.Is so wrapped sentinels still match", x.Op)
					return true
				}
				if isErrorStringCall(info, x.X) || isErrorStringCall(info, x.Y) {
					pass.Reportf(x.OpPos,
						"error matched by message string; use errors.Is against the sentinel instead")
				}
			case *ast.CallExpr:
				checkStringMatch(pass, x)
				checkErrorfWrap(pass, x)
			}
			return true
		})
	}
	return nil
}

// isErrorStringCall reports whether e is err.Error().
func isErrorStringCall(info *types.Info, e ast.Expr) bool { return isErrCall(info, e) }

func isErrCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" || len(call.Args) != 0 {
		return false
	}
	tv, ok := info.Types[sel.X]
	return ok && isErrorType(tv.Type)
}

// checkStringMatch flags strings.Contains/HasPrefix/HasSuffix over
// err.Error().
func checkStringMatch(pass *analysis.Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "strings" {
		return
	}
	switch fn.Name() {
	case "Contains", "HasPrefix", "HasSuffix", "EqualFold", "Index":
	default:
		return
	}
	for _, arg := range call.Args {
		if isErrCall(pass.TypesInfo, arg) {
			pass.Reportf(call.Pos(),
				"error matched by message substring (strings.%s on err.Error()); use errors.Is against the sentinel", fn.Name())
			return
		}
	}
}

// checkErrorfWrap flags fmt.Errorf calls that interpolate a sentinel
// with a verb other than %w.
func checkErrorfWrap(pass *analysis.Pass, call *ast.CallExpr) {
	info := pass.TypesInfo
	if !isFuncNamed(info, call, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	verbs, ok := formatVerbs(format)
	if !ok {
		return // indexed or otherwise exotic format; stay silent
	}
	for i, arg := range call.Args[1:] {
		if i >= len(verbs) {
			break
		}
		if verbs[i] != 'w' && isErrorSentinel(info, arg) {
			pass.Reportf(arg.Pos(),
				"sentinel error wrapped with %%%c; use %%w so errors.Is sees it through the wrap", verbs[i])
		}
	}
}

// formatVerbs returns the verb letter for each consumed argument of a
// Printf-style format, or ok=false when the format uses explicit
// argument indexes or * widths this simple scanner cannot map.
func formatVerbs(format string) ([]byte, bool) {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		for i < len(format) && strings.ContainsRune("+-# 0.0123456789", rune(format[i])) {
			i++
		}
		if i >= len(format) {
			break
		}
		switch format[i] {
		case '%':
			continue
		case '[', '*':
			return nil, false
		default:
			verbs = append(verbs, format[i])
		}
	}
	return verbs, true
}
