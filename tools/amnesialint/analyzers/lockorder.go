package analyzers

import (
	"sort"
	"strings"

	"amnesiadb/tools/amnesialint/analysis"
	"amnesiadb/tools/amnesialint/analysis/summary"
)

// LockOrder checks the whole-program lock-acquisition graph against the
// engine's documented hierarchy (docs/LOCKING.md): catalog → relation
// (name-ordered) → shard → sched. The per-package pass reports edges
// that descend the hierarchy or nest same-rank locks outside the
// relation name-order protocol; the finalize pass stitches every
// package's edges together and reports cycles — potential deadlocks —
// with the full acquisition path as the witness. Classes outside the
// hierarchy (RankOther) participate in cycle detection only.
var LockOrder = &analysis.Analyzer{
	Name:     "lockorder",
	Doc:      "lock acquisitions must follow the catalog → relation → shard → sched hierarchy (docs/LOCKING.md) and the global lock graph must be acyclic",
	Run:      runLockOrder,
	Finalize: finalizeLockOrder,
}

func runLockOrder(pass *analysis.Pass) error {
	for _, e := range pass.Sum.Edges {
		fr, to := e.From.RankOf(), e.To.RankOf()
		if fr == summary.RankOther || to == summary.RankOther {
			continue // unranked: cycle detection only
		}
		switch {
		case fr < to:
			// Ascending: legal.
		case fr > to:
			pass.Reportf(e.AtSite.Pos,
				"lock order violation: %s acquired while holding %s — descending the lock hierarchy (catalog → relation → shard → sched, docs/LOCKING.md)\n\t%s",
				e.To.Short(), e.From.Short(), strings.Join(e.Path, "\n\t"))
		default: // equal rank
			if fr == summary.RankRelation {
				// Relation locks nest under the name-ordered protocol
				// (docs/LOCKING.md §relation); liveness checks the order.
				continue
			}
			pass.Reportf(e.AtSite.Pos,
				"lock order violation: %s acquired while already holding %s of the same rank — no nesting protocol exists at rank %s (docs/LOCKING.md)\n\t%s",
				e.To.Short(), e.From.Short(), fr, strings.Join(e.Path, "\n\t"))
		}
	}
	return nil
}

// finalizeLockOrder reports every elementary cycle-carrying strongly
// connected component of the whole-program lock graph. Edges that
// already violate the rank order are excluded — their packages reported
// them in the per-package pass — so a cycle here is one the hierarchy
// check alone cannot see (it threads unranked classes or equal-rank
// relation pairs in inconsistent order).
func finalizeLockOrder(pass *analysis.FinalPass) error {
	edges := pass.Prog.Edges()
	adj := map[summary.ClassID][]summary.Edge{}
	for _, e := range edges {
		fr, to := e.From.RankOf(), e.To.RankOf()
		if fr != summary.RankOther && to != summary.RankOther && fr >= to {
			// Only strictly ascending ranked edges feed the cycle
			// graph: descents and protocol-free same-rank nesting were
			// reported per-package, and the sanctioned same-rank
			// protocols (relation name order, owner-internal nesting)
			// are serialized at finer granularity than lock classes, so
			// their class-level cycles are not deadlocks. Every cycle
			// left threads at least one unranked class.
			continue
		}
		adj[e.From] = append(adj[e.From], e)
	}

	var classes []summary.ClassID
	for c := range adj {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })

	seen := map[string]bool{}
	for _, start := range classes {
		if cyc := findCycle(adj, start); cyc != nil {
			key := cycleKey(cyc)
			if seen[key] {
				continue
			}
			seen[key] = true
			reportCycle(pass, cyc)
		}
	}
	return nil
}

// findCycle DFSes from start and returns the edges of the first cycle
// passing through start, or nil.
func findCycle(adj map[summary.ClassID][]summary.Edge, start summary.ClassID) []summary.Edge {
	var path []summary.Edge
	onPath := map[summary.ClassID]bool{start: true}
	visited := map[summary.ClassID]bool{}
	var dfs func(c summary.ClassID) bool
	dfs = func(c summary.ClassID) bool {
		for _, e := range adj[c] {
			if e.To == start {
				path = append(path, e)
				return true
			}
			if onPath[e.To] || visited[e.To] {
				continue
			}
			onPath[e.To] = true
			path = append(path, e)
			if dfs(e.To) {
				return true
			}
			path = path[:len(path)-1]
			onPath[e.To] = false
		}
		visited[c] = true
		return false
	}
	if dfs(start) {
		return path
	}
	return nil
}

// cycleKey canonicalizes a cycle (rotation-invariant) for dedup.
func cycleKey(cyc []summary.Edge) string {
	names := make([]string, len(cyc))
	for i, e := range cyc {
		names[i] = string(e.From)
	}
	min := 0
	for i := range names {
		if names[i] < names[min] {
			min = i
		}
	}
	rotated := append(append([]string(nil), names[min:]...), names[:min]...)
	return strings.Join(rotated, "->")
}

// reportCycle positions the diagnostic at an edge owned by one of this
// session's packages, so vet units sharing the program state report a
// shared cycle exactly once (the owner of the smallest owned edge).
func reportCycle(pass *analysis.FinalPass, cyc []summary.Edge) {
	var at *summary.Edge
	for i := range cyc {
		e := &cyc[i]
		if !pass.OwnPkgs[e.Owner] {
			continue
		}
		if at == nil || edgeLess(e, at) {
			at = e
		}
	}
	if at == nil {
		return // cycle lives wholly in dependencies; their units report it
	}
	var names []string
	var witness []string
	for _, e := range cyc {
		names = append(names, e.From.Short())
		witness = append(witness, e.Path...)
	}
	names = append(names, cyc[0].From.Short())
	pass.ReportSite(at.AtSite,
		"lock cycle (potential deadlock): %s — the lock graph must be acyclic (docs/LOCKING.md)\n\t%s",
		strings.Join(names, " -> "), strings.Join(witness, "\n\t"))
}

func edgeLess(a, b *summary.Edge) bool {
	if a.AtSite.File != b.AtSite.File {
		return a.AtSite.File < b.AtSite.File
	}
	if a.AtSite.Line != b.AtSite.Line {
		return a.AtSite.Line < b.AtSite.Line
	}
	return a.From < b.From
}
