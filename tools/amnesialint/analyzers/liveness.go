package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"amnesiadb/tools/amnesialint/analysis"
)

// Liveness enforces the facade's drop-safety protocol (PR 7): a
// relation handle (any type declaring a liveLocked method) can outlive
// its relation's drop, so every exported function that takes a handle's
// exclusive lock must call liveLocked before using the locked state —
// otherwise a mutation through a stale handle would enqueue WAL records
// against a relation that no longer exists and break replay. Functions
// that themselves mark the handle dropped (assign .dropped) are the
// drop path and are exempt.
//
// It also enforces the deadlock rule for multi-relation operations:
// when one function acquires locks on two or more distinct relation
// handles that can be held together, the acquisition must be ordered by
// relation name (a Name() comparison or a sort over the names), the
// same order Join and QueryStream use.
var Liveness = &analysis.Analyzer{
	Name: "liveness",
	Doc:  "exported relation mutators must check liveLocked under the exclusive lock, and multi-relation lock acquisition must be name-ordered",
	Run:  runLiveness,
}

type lockSite struct {
	call  *ast.CallExpr
	base  ast.Expr
	write bool
	stack []ast.Node
}

func runLiveness(pass *analysis.Pass) error {
	funcDecls(pass.Files, pass.Fset, func(fd *ast.FuncDecl) {
		sites := relationLockSites(pass.TypesInfo, fd)
		if len(sites) == 0 {
			return
		}
		checkLiveLocked(pass, fd, sites)
		checkLockOrder(pass, fd, sites)
	})
	return nil
}

// relationLockSites finds calls of the form X.mu.Lock()/RLock() where
// X's type declares liveLocked.
func relationLockSites(info *types.Info, fd *ast.FuncDecl) []lockSite {
	var sites []lockSite
	walkStack(fd, func(n ast.Node, stack []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return
		}
		mu, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok {
			return
		}
		if tv, ok := info.Types[sel.X]; !ok || !isMutexType(tv.Type) {
			return
		}
		if !hasMethod(info.Types[mu.X].Type, "liveLocked") {
			return
		}
		sites = append(sites, lockSite{
			call:  call,
			base:  mu.X,
			write: sel.Sel.Name == "Lock",
			stack: append([]ast.Node(nil), stack...),
		})
	})
	return sites
}

func isMutexType(t types.Type) bool {
	n := namedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	path, name := n.Obj().Pkg().Path(), n.Obj().Name()
	if path == "sync" && (name == "Mutex" || name == "RWMutex") {
		return true
	}
	// The engine's ranked locks are internal/lockrank wrappers; handle
	// types declare them as their canonical mu field.
	return strings.HasSuffix(path, "lockrank") &&
		(name == "Catalog" || name == "Relation" || name == "Shard")
}

func checkLiveLocked(pass *analysis.Pass, fd *ast.FuncDecl, sites []lockSite) {
	if !fd.Name.IsExported() {
		return
	}
	if assignsDropped(fd) {
		return
	}
	for _, s := range sites {
		if !s.write {
			continue
		}
		if !callsAfter(fd, s.call.Pos(), "liveLocked") {
			pass.Reportf(s.call.Pos(),
				"%s takes %s's exclusive lock without a liveLocked check; a dropped handle would mutate an orphaned relation",
				fd.Name.Name, types.ExprString(s.base))
		}
	}
}

// assignsDropped reports whether the function assigns a .dropped field
// — the signature of the drop path itself.
func assignsDropped(fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if sel, ok := lhs.(*ast.SelectorExpr); ok && sel.Sel.Name == "dropped" {
				found = true
			}
		}
		return true
	})
	return found
}

// callsAfter reports whether a method named name is called at a
// position after pos anywhere in fd.
func callsAfter(fd *ast.FuncDecl, pos token.Pos, name string) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == name && call.Pos() > pos {
			found = true
		}
		return true
	})
	return found
}

func checkLockOrder(pass *analysis.Pass, fd *ast.FuncDecl, sites []lockSite) {
	for i := 0; i < len(sites); i++ {
		for j := i + 1; j < len(sites); j++ {
			a, b := sites[i], sites[j]
			if types.ExprString(a.base) == types.ExprString(b.base) {
				continue // same handle (re-lock bugs are the race detector's turf)
			}
			if exclusiveBranches(a.stack, b.stack) {
				continue // only one acquisition runs
			}
			if hasNameOrderingEvidence(fd) {
				return // one ordering guard covers the whole function
			}
			pass.Reportf(b.call.Pos(),
				"%s locks %s and %s together without ordering them by relation name; unordered multi-relation locking can deadlock against Join/QueryStream",
				fd.Name.Name, types.ExprString(a.base), types.ExprString(b.base))
			return // one report per function is enough
		}
	}
}

// hasNameOrderingEvidence looks for a Name() comparison or a sort call
// — the two ways the repo orders relation lock acquisition.
func hasNameOrderingEvidence(fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.BinaryExpr:
			switch x.Op {
			case token.LSS, token.GTR, token.LEQ, token.GEQ:
				if containsNameCall(x.X) || containsNameCall(x.Y) {
					found = true
				}
			}
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok && (id.Name == "sort" || id.Name == "slices") {
					found = true
				}
			}
		}
		return true
	})
	return found
}

func containsNameCall(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Name" {
				found = true
			}
		}
		return true
	})
	return found
}
