package analyzers

import (
	"go/ast"
	"go/types"

	"amnesiadb/tools/amnesialint/analysis"
)

// NoFsyncSkip enforces the durability handshake: a mutator that
// enqueues a WAL record (logRecord) must not report success until the
// group-commit ack arrives. Concretely, any function calling logRecord
// must either await commitWait itself or hand the *durability.Pending
// back to its caller (the *Locked helper pattern: append under the
// lock, ack outside it); and a commitWait result must never be
// discarded — dropping it acknowledges a write that may still be
// sitting in an unsynced buffer when the process dies.
var NoFsyncSkip = &analysis.Analyzer{
	Name: "nofsyncskip",
	Doc:  "mutators that enqueue WAL records must await commitWait (or return the Pending); the commitWait error must be used",
	Run:  runNoFsyncSkip,
}

func runNoFsyncSkip(pass *analysis.Pass) error {
	info := pass.TypesInfo
	funcDecls(pass.Files, pass.Fset, func(fd *ast.FuncDecl) {
		var logCalls, waitCalls []*ast.CallExpr
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "logRecord":
					logCalls = append(logCalls, call)
				case "commitWait":
					waitCalls = append(waitCalls, call)
				}
			}
			return true
		})
		if len(logCalls) > 0 && len(waitCalls) == 0 && !returnsPending(info, fd) {
			pass.Reportf(logCalls[0].Pos(),
				"%s enqueues a WAL record but neither awaits commitWait nor returns the Pending; callers would see success before the fsync ack",
				fd.Name.Name)
		}
		reportDiscardedWaits(pass, fd, waitCalls)
	})
	return nil
}

// returnsPending reports whether fd's results include a
// *durability.Pending (or a slice of them) — the ownership-transfer
// signature of the *Locked helpers.
func returnsPending(info *types.Info, fd *ast.FuncDecl) bool {
	obj, _ := info.Defs[fd.Name].(*types.Func)
	if obj == nil {
		return false
	}
	sig := obj.Type().(*types.Signature)
	for i := 0; i < sig.Results().Len(); i++ {
		t := sig.Results().At(i).Type()
		if s, ok := t.Underlying().(*types.Slice); ok {
			t = s.Elem()
		}
		n := namedOf(t)
		if n != nil && n.Obj().Name() == "Pending" && pkgPathHasSuffix(n.Obj().Pkg(), "internal/durability") {
			return true
		}
	}
	return false
}

// reportDiscardedWaits flags commitWait calls whose error result is
// thrown away: bare expression statements, defers, and blank-assigns.
func reportDiscardedWaits(pass *analysis.Pass, fd *ast.FuncDecl, waits []*ast.CallExpr) {
	if len(waits) == 0 {
		return
	}
	discarded := make(map[*ast.CallExpr]string)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				discarded[call] = "discarded"
			}
		case *ast.DeferStmt:
			discarded[s.Call] = "deferred with its error discarded"
		case *ast.GoStmt:
			discarded[s.Call] = "launched async with its error discarded"
		case *ast.AssignStmt:
			if len(s.Rhs) == 1 && allBlank(s.Lhs) {
				if call, ok := s.Rhs[0].(*ast.CallExpr); ok {
					discarded[call] = "assigned to _"
				}
			}
		}
		return true
	})
	for _, w := range waits {
		if how, ok := discarded[w]; ok {
			pass.Reportf(w.Pos(),
				"commitWait %s in %s; the mutator would report success before the group-commit ack reaches disk", how, fd.Name.Name)
		}
	}
}

func allBlank(exprs []ast.Expr) bool {
	for _, e := range exprs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}
