package analyzers

import (
	"go/ast"
	"strings"

	"amnesiadb/tools/amnesialint/analysis"
)

// CtxFlow keeps cancellation wired through the request path. Two rules:
//
//  1. No context.Background()/context.TODO() below the entry layers
//     (server, cmd, tests). A fresh root context deep in the engine
//     detaches that work from the request: a disconnected client keeps
//     burning cores. Sanctioned public entry points (the facade's
//     ctx-less compatibility API) carry an audited lint:ignore.
//
//  2. A function outside the engine that calls one of the engine's
//     sched-pool dispatchers (names ending in "Sched") must itself
//     thread a context: either the call passes a context.Context
//     argument, or the enclosing function takes one (so the fan-out is
//     at least reachable by cancellation plumbing), or the function is
//     itself a *Sched primitive.
var CtxFlow = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "request-path code must thread context.Context; no context.Background()/TODO() below the server layer",
	Run:  runCtxFlow,
}

// ctxExemptPkg reports whether the package is an entry layer where
// creating root contexts is the point: HTTP server, binaries, the
// scheduler's own internals, and this linter's tooling.
func ctxExemptPkg(path string) bool {
	return pathHasSegment(path, "cmd") ||
		pathHasSegment(path, "examples") ||
		pathHasSegment(path, "tools") ||
		strings.HasSuffix(path, "/server") ||
		strings.HasSuffix(path, "/sched")
}

func runCtxFlow(pass *analysis.Pass) error {
	if ctxExemptPkg(pass.Pkg.Path()) {
		return nil
	}
	info := pass.TypesInfo
	engineLayer := pkgPathHasSuffix(pass.Pkg, enginePath)

	funcDecls(pass.Files, pass.Fset, func(fd *ast.FuncDecl) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			// Rule 1: fresh root contexts.
			if isFuncNamed(info, call, "context", "Background") || isFuncNamed(info, call, "context", "TODO") {
				pass.Reportf(call.Pos(),
					"%s below the server layer detaches this work from the request; thread the caller's context (entry-point shims need an audited lint:ignore)",
					calleeFunc(info, call).FullName()+"()")
				return true
			}
			// Rule 2: un-threaded sched-pool dispatch.
			if engineLayer {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || !strings.HasSuffix(fn.Name(), "Sched") || !pkgPathHasSuffix(fn.Pkg(), enginePath) {
				return true
			}
			if strings.HasSuffix(fd.Name.Name, "Sched") {
				return true
			}
			for _, arg := range call.Args {
				if tv, ok := info.Types[arg]; ok && isContextType(tv.Type) {
					return true
				}
			}
			if hasCtxParam(info, fd) {
				return true
			}
			pass.Reportf(call.Pos(),
				"%s dispatches onto the scheduler pool via %s but threads no context; a cancelled query would keep running this fan-out",
				fd.Name.Name, fn.Name())
			return true
		})
	})
	return nil
}
