// Package use exercises the batch lifecycle rules: leaks, clean
// releases, double releases, and ownership-transferring escapes.
package use

import "fixture/internal/engine"

// leak never returns its batch to the pool and never escapes it.
func leak(n int) int {
	b := engine.GetBatch() // want batchlifecycle "never returned to the pool"
	if n > len(b.Sel) {
		return 0
	}
	return len(b.Val)
}

// good releases on every path via defer.
func good() int {
	b := engine.GetBatch()
	defer engine.PutBatch(b)
	return len(b.Sel)
}

// recycled counts as released through RecycleChunk.
func recycled() {
	b := engine.GetBatch()
	engine.RecycleChunk(b)
}

// double returns the same batch to the pool twice on one path.
func double() {
	b := engine.GetBatch()
	engine.PutBatch(b)
	engine.PutBatch(b) // want batchlifecycle "returned to the pool twice"
}

// escape hands ownership to the caller; the pool return is their job.
func escape() *engine.Batch {
	b := engine.GetBatch()
	return b
}

// branches releases in both arms — distinct statement lists, so this is
// exactly-once, not a double release.
func branches(fast bool) {
	b := engine.GetBatch()
	if fast {
		engine.PutBatch(b)
	} else {
		engine.PutBatch(b)
	}
}

var (
	_ = leak
	_ = good
	_ = recycled
	_ = double
	_ = escape
	_ = branches
)
