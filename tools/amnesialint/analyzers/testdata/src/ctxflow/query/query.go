// Package query sits below the server layer: fresh root contexts and
// un-threaded scheduler dispatch are both violations here.
package query

import (
	"context"

	"fixture/internal/engine"
)

func freshRoot() context.Context {
	return context.Background() // want ctxflow "below the server layer"
}

func todoRoot() context.Context {
	return context.TODO() // want ctxflow "below the server layer"
}

func unthreaded(n int) {
	engine.ForEachTaskSched(nil, 1, n, func(int) {}) // want ctxflow "threads no context"
}

// threaded has cancellation plumbing in reach: the enclosing function
// takes a context, so the fan-out is wireable.
func threaded(ctx context.Context, n int) {
	_ = ctx
	engine.ForEachTaskSched(nil, 1, n, func(int) {})
}

// threadedCall passes the context into the dispatch itself.
func threadedCall(ctx context.Context, n int) error {
	return engine.ForEachTaskCtx(ctx, nil, 1, n, func(int) {})
}

// suppressed is the audited escape hatch.
func suppressed() context.Context {
	//lint:ignore ctxflow fixture-sanctioned root context for the suppression test.
	return context.Background()
}

var (
	_ = freshRoot
	_ = todoRoot
	_ = unthreaded
	_ = threaded
	_ = threadedCall
	_ = suppressed
)
