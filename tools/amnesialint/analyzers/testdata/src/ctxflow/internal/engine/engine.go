// Package engine stubs the scheduler-dispatch surface: the analyzer
// keys on *Sched functions under an import path ending in
// internal/engine.
package engine

import "context"

type Pool struct{}

func ForEachTaskSched(p *Pool, workers, n int, fn func(int)) {}

func ForEachTaskCtx(ctx context.Context, p *Pool, workers, n int, fn func(int)) error {
	return nil
}
