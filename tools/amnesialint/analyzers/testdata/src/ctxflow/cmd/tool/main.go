// Command tool is an entry layer: creating root contexts here is the
// point, so the analyzer stays silent.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = ctx
}
