// Package db is the liveness fixture: a relation handle type (declares
// liveLocked) with exported mutators that must check it under the
// exclusive lock, and multi-handle lockers that must order by name.
package db

import "sync"

type Table struct {
	mu      sync.RWMutex
	dropped bool
	name    string
}

func (t *Table) liveLocked() error { return nil }

func (t *Table) Name() string { return t.name }

// BadMutate takes the exclusive lock but never checks liveness.
func (t *Table) BadMutate() error {
	t.mu.Lock() // want liveness "without a liveLocked check"
	defer t.mu.Unlock()
	t.name = "x"
	return nil
}

// GoodMutate checks liveLocked under the lock.
func (t *Table) GoodMutate() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.liveLocked(); err != nil {
		return err
	}
	t.name = "y"
	return nil
}

// Drop is the drop path itself: assigning dropped exempts it.
func (t *Table) Drop() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.dropped = true
}

// rename is unexported; internal helpers are trusted to be called under
// the protocol.
func (t *Table) rename(n string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.name = n
}

// Peek takes only the read lock; reads through a dropped handle are
// sanctioned, so no liveness check is required.
func (t *Table) Peek() string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.name
}

// badPair acquires two handles' locks with no name ordering.
func badPair(a, b *Table) {
	a.mu.Lock()
	b.mu.Lock() // want liveness "without ordering them by relation name"
	b.mu.Unlock()
	a.mu.Unlock()
}

// goodPair orders the acquisition by relation name first.
func goodPair(a, b *Table) {
	if a.Name() > b.Name() {
		a, b = b, a
	}
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

// exclusivePair locks at most one handle per execution; the two sites
// can never be held together.
func exclusivePair(a, b *Table, left bool) {
	if left {
		a.mu.Lock()
		a.mu.Unlock()
	} else {
		b.mu.Lock()
		b.mu.Unlock()
	}
}
