// Package use exercises the governed-charge rules: release on every
// path, deferred release, amount-matched pairing, ownership handoff
// (struct stamp, closure capture, call argument), error-branch
// exemption, and discarded Acquire errors.
package use

import "fixture/internal/engine/governor"

// buf stands in for SelChunk: a buffer that carries its quota charge to
// a downstream recycler.
type buf struct {
	quota *governor.Quota
	rows  []int64
}

// goodDefer charges and settles through a defer: every exit path
// balances the ledger.
func goodDefer(q *governor.Quota, n int64) error {
	if err := q.Acquire(n); err != nil {
		return err
	}
	defer q.Release(n)
	return work()
}

// goodInline releases on the fall-through; the error branch never
// charged, so its bare return is exempt.
func goodInline(q *governor.Quota, n int64) error {
	if err := q.Acquire(n); err != nil {
		return err
	}
	if err := work(); err != nil {
		q.Release(n)
		return err
	}
	q.Release(n)
	return nil
}

// leakEarlyReturn forgets the release on the early-return path.
func leakEarlyReturn(q *governor.Quota, n int64, fast bool) error {
	if err := q.Acquire(n); err != nil { // want govflow "without a matching Release"
		return err
	}
	if fast {
		return nil
	}
	q.Release(n)
	return nil
}

// leakNoRelease never settles the charge at all.
func leakNoRelease(q *governor.Quota, n int64) error {
	if err := q.Acquire(n); err != nil { // want govflow "without a matching Release"
		return err
	}
	return work()
}

// branchedRelease settles in both arms: exactly one release per path.
func branchedRelease(q *governor.Quota, n int64, fast bool) {
	if err := q.Acquire(n); err != nil {
		return
	}
	if fast {
		q.Release(n)
	} else {
		q.Release(n)
	}
}

// leakOneOfTwo pairs charges and releases by amount identifier:
// releasing outBytes does not settle flatBytes, and the second
// acquire's error path returns with flatBytes still outstanding.
func leakOneOfTwo(q *governor.Quota, flatBytes, outBytes int64) error {
	if err := q.Acquire(flatBytes); err != nil { // want govflow "without a matching Release"
		return err
	}
	if err := q.Acquire(outBytes); err != nil {
		return err
	}
	q.Release(outBytes)
	return nil
}

// twoChargesBalanced is the clean variant: the transient output charge
// settles inline, the flat charge through its defer.
func twoChargesBalanced(q *governor.Quota, flatBytes, outBytes int64) error {
	if err := q.Acquire(flatBytes); err != nil {
		return err
	}
	defer q.Release(flatBytes)
	if err := q.Acquire(outBytes); err != nil {
		return err
	}
	q.Release(outBytes)
	return nil
}

// handoffStamp transfers the charge with the buffer that carries it —
// the SelChunk pattern; the downstream recycler settles it.
func handoffStamp(q *governor.Quota, n int64) *buf {
	if err := q.Acquire(n); err != nil {
		return nil
	}
	return &buf{quota: q, rows: make([]int64, n)}
}

// handoffClosure hands the charge to a goroutine that settles it.
func handoffClosure(q *governor.Quota, n int64, done chan struct{}) error {
	if err := q.Acquire(n); err != nil {
		return err
	}
	go func() {
		<-done
		q.Release(n)
	}()
	return nil
}

// handoffCall passes the quota (and its charge) to another function.
func handoffCall(q *governor.Quota, n int64) error {
	if err := q.Acquire(n); err != nil {
		return err
	}
	settle(q, n)
	return nil
}

func settle(q *governor.Quota, n int64) { q.Release(n) }

// discarded ignores Acquire's error: the kill latch is lost.
func discarded(q *governor.Quota, n int64) {
	q.Acquire(n) // want govflow "discarded"
	q.Release(n)
}

// discardedBlank is the underscore variant.
func discardedBlank(q *governor.Quota, n int64) {
	_ = q.Acquire(n) // want govflow "discarded"
	q.Release(n)
}

// separateCheck is the two-statement checked form; its error branch is
// exempt just like the init form.
func separateCheck(q *governor.Quota, n int64) error {
	err := q.Acquire(n)
	if err != nil {
		return err
	}
	defer q.Release(n)
	return nil
}

// loopCharge charges per iteration and settles before the back edge.
func loopCharge(q *governor.Quota, n int64, k int) error {
	for i := 0; i < k; i++ {
		if err := q.Acquire(n); err != nil {
			return err
		}
		if err := work(); err != nil {
			q.Release(n)
			return err
		}
		q.Release(n)
	}
	return nil
}

// loopLeak continues past the release on the even iterations.
func loopLeak(q *governor.Quota, n int64, k int) error {
	for i := 0; i < k; i++ {
		if err := q.Acquire(n); err != nil { // want govflow "without a matching Release"
			return err
		}
		if i%2 == 0 {
			continue
		}
		q.Release(n)
	}
	return nil
}

// litCharge mirrors the pipeline produce closure: the literal is its
// own unit, charging per chunk and stamping the quota into the buffer
// that carries the charge out.
func litCharge(q *governor.Quota, n int64, k int) func() ([]buf, error) {
	return func() ([]buf, error) {
		out := make([]buf, 0, k)
		for i := 0; i < k; i++ {
			if err := q.Acquire(n); err != nil {
				return nil, err
			}
			out = append(out, buf{quota: q})
		}
		return out, nil
	}
}

// litLeak is the closure variant of a missing release.
func litLeak(q *governor.Quota, n int64) func() error {
	return func() error {
		if err := q.Acquire(n); err != nil { // want govflow "without a matching Release"
			return err
		}
		return work()
	}
}

func work() error { return nil }

var (
	_ = goodDefer
	_ = goodInline
	_ = leakEarlyReturn
	_ = leakNoRelease
	_ = branchedRelease
	_ = leakOneOfTwo
	_ = twoChargesBalanced
	_ = handoffStamp
	_ = handoffClosure
	_ = handoffCall
	_ = discarded
	_ = discardedBlank
	_ = separateCheck
	_ = loopCharge
	_ = loopLeak
	_ = litCharge
	_ = litLeak
)
