// Package governor stubs the quota surface the govflow rule tracks:
// the method set and import-path shape match the real
// internal/engine/governor.
package governor

// Quota is one query's resource account.
type Quota struct{}

// Acquire charges n governed bytes.
func (q *Quota) Acquire(n int64) error { _ = n; return nil }

// Release returns n previously acquired bytes.
func (q *Quota) Release(n int64) { _ = n }

// Check reports the latched kill error.
func (q *Quota) Check() error { return nil }
