// Package durability stubs the group-commit handle: the analyzer keys
// on the Pending type under an import path ending in
// internal/durability.
package durability

type Pending struct{}
