// Package db exercises the durability handshake: a mutator enqueuing a
// WAL record must await commitWait or hand the Pending to its caller,
// and the commitWait error must reach somebody.
package db

import "fixture/internal/durability"

type DB struct{}

func (d *DB) logRecord(rec int) *durability.Pending { return nil }

func (d *DB) commitWait(p *durability.Pending) error { return nil }

// BadInsert acknowledges before the fsync ack exists.
func (d *DB) BadInsert(v int) error {
	pend := d.logRecord(v) // want nofsyncskip "neither awaits commitWait nor returns the Pending"
	_ = pend
	return nil
}

// GoodInsert awaits the group-commit ack.
func (d *DB) GoodInsert(v int) error {
	pend := d.logRecord(v)
	return d.commitWait(pend)
}

// insertLocked transfers Pending ownership to the caller — the
// append-under-lock, ack-outside-it pattern.
func (d *DB) insertLocked(v int) *durability.Pending {
	return d.logRecord(v)
}

// BadAck throws the ack result away.
func (d *DB) BadAck(v int) {
	pend := d.logRecord(v)
	_ = d.commitWait(pend) // want nofsyncskip "assigned to _"
}

// BadDefer defers the ack with its error discarded.
func (d *DB) BadDefer(v int) {
	pend := d.logRecord(v)
	defer d.commitWait(pend) // want nofsyncskip "deferred with its error discarded"
}
