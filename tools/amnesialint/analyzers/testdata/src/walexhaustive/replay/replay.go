// Package replay consumes the wal fixture from outside: its dispatch
// switch misses a kind, and a default clause does not excuse the gap.
package replay

import "fixture/wal"

func incomplete(k wal.Kind) int {
	switch k { // want walexhaustive "missing record kinds KindVacuum"
	case wal.KindInsert:
		return 1
	case wal.KindDrop:
		return 2
	default:
		return 0
	}
}

func complete(k wal.Kind) int {
	switch k {
	case wal.KindInsert, wal.KindDrop:
		return 1
	case wal.KindVacuum:
		return 3
	}
	return 0
}

var _ = incomplete
var _ = complete
