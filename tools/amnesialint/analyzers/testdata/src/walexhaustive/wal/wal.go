// Package wal stubs the real log package: a Kind enumeration whose
// constants the analyzer collects, each with a Record* encoder and a
// complete apply switch — the fully-plumbed, clean shape.
package wal

type Kind uint8

const (
	KindInsert Kind = iota + 1
	KindDrop
	KindVacuum
	kindMax
)

func RecordInsert() Kind { return KindInsert }

func RecordDrop() Kind { return KindDrop }

func RecordVacuum() Kind { return KindVacuum }

// apply covers every kind; the default clause handles corruption.
func apply(k Kind) int {
	switch k {
	case KindInsert:
		return 1
	case KindDrop:
		return 2
	case KindVacuum:
		return 3
	default:
		return 0
	}
}

var _ = apply
var _ = kindMax
