// Package wal (the bad twin) declares a record kind no Record* encoder
// ever references: dead plumbing the analyzer must surface.
package wal

type Kind uint8

const (
	KindPut    Kind = 1
	KindOrphan Kind = 2 // want walexhaustive "has no Record"
)

func RecordPut() Kind { return KindPut }

func apply(k Kind) int {
	switch k {
	case KindPut:
		return 1
	case KindOrphan:
		return 2
	}
	return 0
}

var _ = apply
