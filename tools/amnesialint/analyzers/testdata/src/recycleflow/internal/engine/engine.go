// Package engine stubs the real engine's batch pool: the analyzer keys
// on the GetBatch/PutBatch/RecycleChunk names under an import path
// ending in internal/engine, so this fixture engages it exactly like
// the real package.
package engine

type Batch struct {
	Sel []int32
	Val []int64
}

func GetBatch() *Batch { return new(Batch) }

func PutBatch(*Batch) {}

func RecycleChunk(*Batch) {}
