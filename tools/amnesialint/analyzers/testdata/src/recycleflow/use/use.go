// Package use exercises the path-sensitive batch rules: leaks, clean
// releases, double recycles (including through aliases and loops),
// use-after-recycle across branch merges, and ownership-transferring
// escapes.
package use

import "fixture/internal/engine"

// leak never returns its batch to the pool and never escapes it.
func leak(n int) int {
	b := engine.GetBatch() // want recycleflow "never returned to the pool"
	if n > len(b.Sel) {
		return 0
	}
	return len(b.Val)
}

// good releases on every path via defer.
func good() int {
	b := engine.GetBatch()
	defer engine.PutBatch(b)
	return len(b.Sel)
}

// recycled counts as released through RecycleChunk.
func recycled() {
	b := engine.GetBatch()
	engine.RecycleChunk(b)
}

// double returns the same batch to the pool twice on one path.
func double() {
	b := engine.GetBatch()
	engine.PutBatch(b)
	engine.PutBatch(b) // want recycleflow "already be recycled"
}

// escape hands ownership to the caller; the pool return is their job.
func escape() *engine.Batch {
	b := engine.GetBatch()
	return b
}

// branches releases in both arms — mutually exclusive paths, so this is
// exactly-once, not a double recycle.
func branches(fast bool) {
	b := engine.GetBatch()
	if fast {
		engine.PutBatch(b)
	} else {
		engine.PutBatch(b)
	}
}

// branchThenUse recycles on one branch and uses the batch after the
// merge: the recycled state flows around the branch.
func branchThenUse(fast bool) int {
	b := engine.GetBatch()
	if fast {
		engine.PutBatch(b)
	}
	return len(b.Sel) // want recycleflow "used after being recycled"
}

// branchReturnThenUse is the clean variant: the recycling branch
// returns, so the recycled state never reaches the use.
func branchReturnThenUse(fast bool) int {
	b := engine.GetBatch()
	if fast {
		engine.PutBatch(b)
		return 0
	}
	n := len(b.Sel)
	engine.PutBatch(b)
	return n
}

// aliasDouble recycles the same batch through two names.
func aliasDouble() {
	b := engine.GetBatch()
	c := b
	engine.PutBatch(b)
	engine.PutBatch(c) // want recycleflow "already be recycled"
}

// aliasUse reads through an alias after the original was recycled.
func aliasUse() int {
	b := engine.GetBatch()
	c := b
	engine.PutBatch(b)
	return len(c.Sel) // want recycleflow "used after being recycled"
}

// loopReacquire gets a fresh batch each iteration; the recycle at the
// bottom targets the current iteration's batch, not a stale one.
func loopReacquire(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		b := engine.GetBatch()
		total += len(b.Sel)
		engine.PutBatch(b)
	}
	return total
}

// loopRecycleNoReacquire recycles a pre-loop batch inside the loop: the
// second iteration recycles an already-recycled batch.
func loopRecycleNoReacquire(n int) {
	b := engine.GetBatch()
	for i := 0; i < n; i++ {
		engine.PutBatch(b) // want recycleflow "already be recycled"
	}
}

// deferPlusInline double-recycles on the path where done is true: once
// inline, once at exit through the defer.
func deferPlusInline(done bool) {
	b := engine.GetBatch()
	defer engine.PutBatch(b) // want recycleflow "already be recycled"
	if done {
		engine.PutBatch(b)
	}
}

// handoff passes the batch to another call: ownership transfers, later
// silence is correct even without a recycle here.
func handoff() {
	b := engine.GetBatch()
	consume(b)
}

func consume(*engine.Batch) {}

// wrapperGet returns a fresh pooled batch; summaries mark it a source,
// so wrapped acquisitions are tracked like direct ones.
func wrapperGet() *engine.Batch {
	return engine.GetBatch()
}

// wrapperPut recycles its parameter; summaries mark it a sink.
func wrapperPut(b *engine.Batch) {
	engine.PutBatch(b)
}

// viaWrappers uses a wrapper-recycled batch on one path.
func viaWrappers(fast bool) int {
	b := wrapperGet()
	n := len(b.Sel)
	wrapperPut(b)
	if fast {
		return n
	}
	return len(b.Val) // want recycleflow "used after being recycled"
}

// cleanWrappers balances the wrapper source with the wrapper sink.
func cleanWrappers() {
	b := wrapperGet()
	wrapperPut(b)
}

var (
	_ = leak
	_ = good
	_ = recycled
	_ = double
	_ = escape
	_ = branches
	_ = branchThenUse
	_ = branchReturnThenUse
	_ = aliasDouble
	_ = aliasUse
	_ = loopReacquire
	_ = loopRecycleNoReacquire
	_ = deferPlusInline
	_ = handoff
	_ = viaWrappers
	_ = cleanWrappers
)
