// Binaries own their goroutines' lifetimes: the same leak that fires
// in the worker package is exempt under cmd/.
package main

func main() {
	go func() {
		for i := 0; i < 10; i++ {
		}
	}()
}
