// Package worker exercises the goroutine-lifecycle rules in a
// non-exempt package: every spawn must be provably joined or
// completion-signalled, and looping bodies spawned from ctx-threaded
// functions must be cancellable.
package worker

import (
	"context"
	"sync"

	"fixture/lib"
)

func work() {}

// leak spawns a body with no join and no completion signal.
func leak() {
	go func() { // want goroutinelife "neither joined"
		work()
	}()
}

// wgJoined signals completion through a WaitGroup: clean.
func wgJoined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// closeSignalled signals completion by closing a channel: clean.
func closeSignalled() chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		work()
	}()
	return done
}

// watcher is a loop-free channel-gated body: it ends when the channel
// is served, clean.
func watcher(stop chan struct{}) {
	go func() {
		<-stop
		work()
	}()
}

// unstoppable loops forever with no select, receive, return or break:
// unjoined and unkillable at once.
func unstoppable() {
	go func() { // want goroutinelife "neither joined" goroutinelife "loops forever"
		for {
		}
	}()
}

// uncancellable is joined but spawned from a ctx-threaded function with
// a loop that never consults the ctx or a channel.
func uncancellable(ctx context.Context) error {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want goroutinelife "cancellation cannot reach it"
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			work()
		}
	}()
	wg.Wait()
	return ctx.Err()
}

// cancellable watches the ctx from inside the loop: clean.
func cancellable(ctx context.Context) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-ctx.Done():
				return
			default:
				work()
			}
		}
	}()
	wg.Wait()
}

// boundClean chases a local func-literal binding to a joined body:
// clean.
func boundClean() {
	var wg sync.WaitGroup
	wg.Add(1)
	w := func() {
		defer wg.Done()
		work()
	}
	go w()
	wg.Wait()
}

// boundLeak chases a local binding to an unjoined body.
func boundLeak() {
	w := func() {
		work()
	}
	go w() // want goroutinelife "neither joined"
}

// spin loops forever; samePackageNamed resolves it by declaration.
func spin() {
	for {
	}
}

func samePackageNamed() {
	go spin() // want goroutinelife "neither joined" goroutinelife "loops forever"
}

// crossPackageClean resolves lib.Run through its summary: a channel
// watcher, clean.
func crossPackageClean(stop chan struct{}) {
	go lib.Run(stop)
}

// crossPackageSpin resolves lib.Spin through its summary.
func crossPackageSpin() {
	go lib.Spin() // want goroutinelife "neither joined" goroutinelife "loops forever"
}

// unresolved spawns through a function value the analyzer cannot see
// into.
func unresolved(f func()) {
	go f() // want goroutinelife "cannot be resolved"
}

var (
	_ = leak
	_ = wgJoined
	_ = closeSignalled
	_ = watcher
	_ = unstoppable
	_ = uncancellable
	_ = cancellable
	_ = boundClean
	_ = boundLeak
	_ = samePackageNamed
	_ = crossPackageClean
	_ = crossPackageSpin
	_ = unresolved
)
