// Package lib provides cross-package spawn targets: the analyzer sees
// these only through their summaries.
package lib

// Run is a channel-gated watcher: loop-free, ends when the channel is
// served.
func Run(stop chan struct{}) {
	<-stop
}

// Spin loops forever with no exit.
func Spin() {
	for {
	}
}
