// Package errs exercises the sentinel-error contract: identity
// comparison, message matching and non-%w wrapping are violations;
// errors.Is, nil checks and %w wraps are clean.
package errs

import (
	"errors"
	"fmt"
	"strings"
)

// ErrMissing is a package-level sentinel.
var ErrMissing = errors.New("missing")

func badEq(err error) bool {
	return err == ErrMissing // want senterr "compared with =="
}

func badNe(err error) bool {
	return err != ErrMissing // want senterr "compared with !="
}

func good(err error) bool {
	return errors.Is(err, ErrMissing)
}

func nilCheck(err error) bool {
	return err == nil
}

func msgCompare(err error) bool {
	return err.Error() == "missing" // want senterr "matched by message string"
}

func msgSubstr(err error) bool {
	return strings.Contains(err.Error(), "missing") // want senterr "message substring"
}

func badWrap() error {
	return fmt.Errorf("lookup: %v", ErrMissing) // want senterr "use %w"
}

func goodWrap() error {
	return fmt.Errorf("lookup: %w", ErrMissing)
}

var (
	_ = badEq
	_ = badNe
	_ = good
	_ = nilCheck
	_ = msgCompare
	_ = msgSubstr
	_ = badWrap
	_ = goodWrap
)
