// Package db stubs the engine's ranked lock owners: the classifier
// keys on method shape — a type with Relations() owns the catalog
// lock, one with liveLocked() owns a relation lock — so these fixtures
// engage the rank rules exactly like the real catalog types.
package db

import "sync"

// DB owns the catalog lock (structural rank: has Relations).
type DB struct {
	mu     sync.RWMutex
	SrcMu  sync.Mutex // auxiliary field: unranked, cycle detection only
	tables map[string]*Table
}

func (d *DB) Relations() []string { return nil }

// Lock/Unlock expose the unexported mutex to the sibling fixture
// package without changing its classification (classify keys on the
// selector the lock call is made through, so helpers live here).
func (d *DB) Lock()    { d.mu.Lock() }
func (d *DB) Unlock()  { d.mu.Unlock() }
func (d *DB) RLock()   { d.mu.RLock() }
func (d *DB) RUnlock() { d.mu.RUnlock() }

// Table owns a relation lock (structural rank: has liveLocked).
type Table struct {
	mu      sync.RWMutex
	dropped bool
}

func (t *Table) liveLocked() error { _ = t.dropped; return nil }

func (t *Table) Lock()   { t.mu.Lock() }
func (t *Table) Unlock() { t.mu.Unlock() }

// PTable is a second relation-ranked class, for the name-order
// protocol cases.
type PTable struct {
	mu      sync.RWMutex
	dropped bool
}

func (p *PTable) liveLocked() error { _ = p.dropped; return nil }

func (p *PTable) Lock()   { p.mu.Lock() }
func (p *PTable) Unlock() { p.mu.Unlock() }
