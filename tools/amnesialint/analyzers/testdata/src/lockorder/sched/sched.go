// Package sched stubs the scheduler lock, the bottom of the hierarchy.
package sched

import "sync"

type Pool struct {
	mu sync.Mutex
}

func (s *Pool) Lock()   { s.mu.Lock() }
func (s *Pool) Unlock() { s.mu.Unlock() }
