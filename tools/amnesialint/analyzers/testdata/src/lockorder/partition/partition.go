// Package partition stubs the shard lock: classification falls back to
// the owning package's name when the owner type has no catalog/relation
// method shape.
package partition

import "sync"

type Partition struct {
	mu sync.Mutex
}

func (p *Partition) Lock()   { p.mu.Lock() }
func (p *Partition) Unlock() { p.mu.Unlock() }
