// Package use exercises the lock-order rules through the cross-package
// summaries: ascending chains are clean, descents and protocol-free
// same-rank nesting are violations, unlock-closure bindings release,
// and unranked classes participate in cycle detection only.
package use

import (
	"sync"

	"fixture/db"
	"fixture/partition"
	"fixture/sched"
)

// ascending walks the whole hierarchy top to bottom: clean.
func ascending(d *db.DB, t *db.Table, p *partition.Partition, s *sched.Pool) {
	d.RLock()
	t.Lock()
	p.Lock()
	s.Lock()
	s.Unlock()
	p.Unlock()
	t.Unlock()
	d.RUnlock()
}

// descending acquires the catalog lock under a relation lock.
func descending(d *db.DB, t *db.Table) {
	t.Lock()
	d.RLock() // want lockorder "descending"
	d.RUnlock()
	t.Unlock()
}

// sameRankShards nests two shard locks: no protocol exists at that rank.
func sameRankShards(a, b *partition.Partition) {
	a.Lock()
	b.Lock() // want lockorder "same rank"
	b.Unlock()
	a.Unlock()
}

// nameOrderedRelations nests two relation classes: sanctioned by the
// name-order protocol, clean in one direction...
func nameOrderedRelations(t *db.Table, p *db.PTable) {
	t.Lock()
	p.Lock()
	p.Unlock()
	t.Unlock()
}

// ...and in the other: the protocol orders by table name, not class.
func nameOrderedRelationsReversed(t *db.Table, p *db.PTable) {
	p.Lock()
	t.Lock()
	t.Unlock()
	p.Unlock()
}

// auxiliaryLeaf locks DB.SrcMu under a relation lock: auxiliary fields
// are unranked leaves, not the catalog lock, so this is clean.
func auxiliaryLeaf(d *db.DB, t *db.Table) {
	t.Lock()
	d.SrcMu.Lock()
	d.SrcMu.Unlock()
	t.Unlock()
}

// lockTable acquires through one helper hop; its summary returns
// holding the relation lock.
func lockTable(t *db.Table) {
	t.Lock()
}

// heldThenCatalog inherits the relation lock from lockTable's summary
// and then descends.
func heldThenCatalog(d *db.DB, t *db.Table) {
	lockTable(t)
	d.Lock() // want lockorder "descending"
	d.Unlock()
	t.Unlock()
}

// acquireTable returns holding the relation lock, handing back the
// release closure.
func acquireTable(t *db.Table) func() {
	t.Lock()
	return func() { t.Unlock() }
}

// releaseBeforeCatalog calls the bound unlock before touching the
// catalog: the binding releases the summary's held classes, clean.
func releaseBeforeCatalog(d *db.DB, t *db.Table) {
	unlock := acquireTable(t)
	unlock()
	d.Lock()
	d.Unlock()
}

// holdThenCatalog keeps the bound lock across the catalog acquisition.
func holdThenCatalog(d *db.DB, t *db.Table) {
	unlock := acquireTable(t)
	d.Lock() // want lockorder "descending"
	d.Unlock()
	unlock()
}

// aMu and bMu are unranked package-level locks: the hierarchy says
// nothing about them, so only the cycle check watches them.
var (
	aMu sync.Mutex
	bMu sync.Mutex
)

// cycleA and cycleB nest the unranked pair in opposite orders: a
// class-level cycle the rank rules cannot see.
func cycleA() {
	aMu.Lock()
	bMu.Lock() // want lockorder "lock cycle"
	bMu.Unlock()
	aMu.Unlock()
}

func cycleB() {
	bMu.Lock()
	aMu.Lock()
	aMu.Unlock()
	bMu.Unlock()
}

var (
	_ = ascending
	_ = descending
	_ = sameRankShards
	_ = nameOrderedRelations
	_ = nameOrderedRelationsReversed
	_ = auxiliaryLeaf
	_ = heldThenCatalog
	_ = releaseBeforeCatalog
	_ = holdThenCatalog
	_ = cycleA
	_ = cycleB
)
