package analyzers

import (
	"go/ast"
	"go/types"

	"amnesiadb/tools/amnesialint/analysis"
	"amnesiadb/tools/amnesialint/analysis/summary"
)

// GoroutineLife enforces goroutine accountability below the server
// layer: every `go` statement must either be the sched pool's own
// dispatch or spawn a body whose termination is provable — it joins a
// WaitGroup, closes a completion channel, or is a loop-free watcher
// gated on a channel receive. On top of that, a looping body spawned
// from a context-threaded function must be cancellable: it has to
// reference the ctx or wait on a channel, and a condition-less loop
// with no exit at all is flagged regardless. Bodies are resolved flow-
// lessly but cross-package: function literals are inspected directly,
// local `worker := func(){...}` bindings are chased, and named
// functions use the shared summaries, so `go pkg.Run()` is checked
// against Run's real shape.
var GoroutineLife = &analysis.Analyzer{
	Name: "goroutinelife",
	Doc:  "goroutines below the server layer must be sched dispatches or provably joined/completion-signalled, and cancellable when spawned from a ctx-threaded function",
	Run:  runGoroutineLife,
}

// goShape is the lifecycle evidence extracted from a spawned body.
type goShape struct {
	joins           bool
	closesChan      bool
	channelDriven   bool
	unstoppableLoop bool
	hasLoop         bool
	waitsOnChan     bool
	refsCtx         bool
	resolved        bool
}

func runGoroutineLife(pass *analysis.Pass) error {
	// Same boundary as ctxflow: binaries, examples and tooling own their
	// goroutines' lifetimes, the server layer hands them to net/http,
	// and sched *is* the dispatch mechanism this rule points at.
	if ctxExemptPkg(pass.Pkg.Path()) {
		return nil
	}
	funcDecls(pass.Files, pass.Fset, func(fd *ast.FuncDecl) {
		spawnerCtx := hasCtxParam(pass.TypesInfo, fd)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkSpawn(pass, fd, gs, spawnerCtx)
			return true
		})
	})
	return nil
}

func checkSpawn(pass *analysis.Pass, fd *ast.FuncDecl, gs *ast.GoStmt, spawnerCtx bool) {
	if pass.InTestFile(gs.Pos()) {
		return
	}
	shape := resolveSpawn(pass, fd, gs.Call)
	if !shape.resolved {
		pass.Reportf(gs.Pos(),
			"goroutine spawned in %s cannot be resolved to a body; route it through the sched pool or spawn a function the analyzer can see",
			fd.Name.Name)
		return
	}
	joined := shape.joins || shape.closesChan || shape.channelDriven
	if !joined {
		pass.Reportf(gs.Pos(),
			"goroutine spawned in %s is neither joined (WaitGroup.Done) nor completion-signalled (close(ch) / channel-gated watcher); it can outlive its owner — dispatch via the sched pool or add a join",
			fd.Name.Name)
	}
	if shape.unstoppableLoop {
		pass.Reportf(gs.Pos(),
			"goroutine spawned in %s loops forever with no select, channel receive, return or break; nothing can stop it",
			fd.Name.Name)
		return
	}
	if spawnerCtx && shape.hasLoop && !shape.refsCtx && !shape.waitsOnChan {
		pass.Reportf(gs.Pos(),
			"looping goroutine spawned from ctx-threaded %s neither references the ctx nor waits on a channel; cancellation cannot reach it",
			fd.Name.Name)
	}
}

// resolveSpawn finds the spawned body's lifecycle shape. Four shapes of
// spawn are understood: `go func(){...}()`, `go worker()` where worker
// is a local func-literal binding, `go f.m()` / `go f()` for named
// functions (via summaries), and `go p.run()` where run is declared in
// this package (direct body inspection, so unexported helpers work
// before their summary exists).
func resolveSpawn(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr) goShape {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return shapeOfBody(pass, lit.Body)
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if lit := localFuncLit(pass.TypesInfo, fd, id); lit != nil {
			return shapeOfBody(pass, lit.Body)
		}
	}
	if fn := calleeFunc(pass.TypesInfo, call); fn != nil {
		// Same-package functions: inspect the declaration directly.
		if body := declBody(pass, fn); body != nil {
			return shapeOfBody(pass, body)
		}
		if sum := pass.Prog.Func(fn.FullName()); sum != nil {
			return goShape{
				joins:           sum.Joins,
				closesChan:      sum.ClosesChan,
				channelDriven:   sum.ChannelDriven,
				unstoppableLoop: sum.UnstoppableLoop,
				hasLoop:         sum.HasLoop,
				waitsOnChan:     sum.WaitsOnChan,
				refsCtx:         sum.RefsCtx,
				resolved:        true,
			}
		}
	}
	return goShape{}
}

func shapeOfBody(pass *analysis.Pass, body *ast.BlockStmt) goShape {
	return goShape{
		joins:           summary.BodyJoins(pass.TypesInfo, body),
		closesChan:      summary.BodyClosesChan(body),
		channelDriven:   summary.BodyChannelDriven(body),
		unstoppableLoop: summary.BodyHasUnstoppableLoop(body),
		hasLoop:         summary.BodyHasLoop(body),
		waitsOnChan:     summary.BodyWaitsOnChan(pass.TypesInfo, body),
		refsCtx:         summary.BodyRefsCtx(pass.TypesInfo, body),
		resolved:        true,
	}
}

// localFuncLit chases `worker := func(){...}` bindings inside fd.
func localFuncLit(info *types.Info, fd *ast.FuncDecl, id *ast.Ident) *ast.FuncLit {
	obj := info.Uses[id]
	if obj == nil {
		return nil
	}
	var lit *ast.FuncLit
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			lid, ok := lhs.(*ast.Ident)
			if !ok || i >= len(as.Rhs) {
				continue
			}
			def := info.Defs[lid]
			if def == nil {
				def = info.Uses[lid]
			}
			if def != obj {
				continue
			}
			if l, ok := as.Rhs[i].(*ast.FuncLit); ok {
				lit = l
			}
		}
		return true
	})
	return lit
}

// declBody finds fn's declaration body when fn is declared in the
// package under analysis.
func declBody(pass *analysis.Pass, fn *types.Func) *ast.BlockStmt {
	if fn.Pkg() != pass.Pkg {
		return nil
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if pass.TypesInfo.Defs[fd.Name] == fn {
				return fd.Body
			}
		}
	}
	return nil
}
