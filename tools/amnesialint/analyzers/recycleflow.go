package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"amnesiadb/tools/amnesialint/analysis"
	"amnesiadb/tools/amnesialint/analysis/cfg"
)

// RecycleFlow tracks pooled engine.Batch values path-sensitively over
// the CFG. It subsumes the retired syntactic batchlifecycle check: a
// batch obtained from GetBatch (or any wrapper the summaries mark as
// returning one) must reach PutBatch/RecycleChunk (or a summarized
// recycling wrapper) exactly once on every path. Beyond the syntactic
// rules it sees paths and aliases: a batch recycled on one branch and
// used after the merge, a batch recycled twice through two names for
// the same value, and a recycle inside a loop without reacquisition are
// all reported with the earlier recycle site as the witness. A batch
// that escapes (returned, stored, captured by a closure, handed to
// another call) transfers ownership and is the consumer's
// responsibility from that point.
var RecycleFlow = &analysis.Analyzer{
	Name: "recycleflow",
	Doc:  "pooled engine.Batch values must reach PutBatch/RecycleChunk exactly once on every path, with no use after recycle and no double recycle through aliases",
	Run:  runRecycleFlow,
}

func runRecycleFlow(pass *analysis.Pass) error {
	funcDecls(pass.Files, pass.Fset, func(fd *ast.FuncDecl) {
		checkRecycleFlow(pass, fd)
	})
	return nil
}

// Per-cell state bits: a cell is one acquisition site; on any given
// path its value may be live, already recycled, or escaped.
const (
	stLive = 1 << iota
	stRecycled
	stEscaped
)

// rfState is the dataflow fact at a program point: which cells each
// tracked variable may name, and each cell's may-state.
type rfState struct {
	env  map[types.Object]map[int]bool
	bits map[int]uint8
}

func newRFState() *rfState {
	return &rfState{env: map[types.Object]map[int]bool{}, bits: map[int]uint8{}}
}

func (s *rfState) clone() *rfState {
	out := newRFState()
	for obj, cells := range s.env {
		cp := make(map[int]bool, len(cells))
		for c := range cells {
			cp[c] = true
		}
		out.env[obj] = cp
	}
	for c, b := range s.bits {
		out.bits[c] = b
	}
	return out
}

// union merges o into s, reporting change.
func (s *rfState) union(o *rfState) bool {
	changed := false
	for obj, cells := range o.env {
		have := s.env[obj]
		if have == nil {
			have = map[int]bool{}
			s.env[obj] = have
		}
		for c := range cells {
			if !have[c] {
				have[c] = true
				changed = true
			}
		}
	}
	for c, b := range o.bits {
		if s.bits[c]|b != s.bits[c] {
			s.bits[c] |= b
			changed = true
		}
	}
	return changed
}

// rfChecker runs the analysis for one function.
type rfChecker struct {
	pass *analysis.Pass
	fd   *ast.FuncDecl

	cellOf   map[*ast.CallExpr]int // acquisition call -> cell index
	acqIdent []*ast.Ident          // cell -> LHS ident of the acquisition
	// recycleAt remembers a witness recycle line per cell for messages.
	recycleAt map[int]int
	// everReleased/everEscaped feed the leak check (any-path facts).
	everReleased map[int]bool
	everEscaped  map[int]bool

	report   bool
	reported map[string]bool
}

func checkRecycleFlow(pass *analysis.Pass, fd *ast.FuncDecl) {
	c := &rfChecker{
		pass:         pass,
		fd:           fd,
		cellOf:       map[*ast.CallExpr]int{},
		recycleAt:    map[int]int{},
		everReleased: map[int]bool{},
		everEscaped:  map[int]bool{},
		reported:     map[string]bool{},
	}
	g := pass.Local.Graphs[fd]
	if g == nil {
		g = cfg.New(fd.Body)
	}

	// Pre-register every acquisition so cell indices are stable across
	// fixpoint iterations.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !c.isSource(call) {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		c.cellOf[call] = len(c.acqIdent)
		c.acqIdent = append(c.acqIdent, id)
		return true
	})
	if len(c.cellOf) == 0 {
		return
	}

	// Fixpoint quietly, then one reporting pass over the stable states.
	in := c.solve(g)
	c.report = true
	for _, blk := range g.Blocks {
		st := in[blk.Index].clone()
		for _, n := range blk.Nodes {
			c.transfer(n, st)
		}
	}
	exit := in[g.Exit.Index].clone()
	for i := len(g.Defers) - 1; i >= 0; i-- {
		c.walk(g.Defers[i].Call, exit)
	}

	// Leak: a cell never recycled and never escaped on any path.
	for cell, id := range c.acqIdent {
		if !c.everReleased[cell] && !c.everEscaped[cell] {
			pass.Reportf(id.Pos(),
				"pooled batch %s is never returned to the pool (PutBatch/RecycleChunk) and never escapes %s; every path leaks it",
				id.Name, fd.Name.Name)
		}
	}
}

func (c *rfChecker) solve(g *cfg.Graph) []*rfState {
	in := make([]*rfState, len(g.Blocks))
	for i := range in {
		in[i] = newRFState()
	}
	work := []*cfg.Block{g.Entry}
	seen := make([]bool, len(g.Blocks))
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		seen[blk.Index] = true
		out := in[blk.Index].clone()
		for _, n := range blk.Nodes {
			c.transfer(n, out)
		}
		for _, s := range blk.Succs {
			if in[s.Index].union(out) || !seen[s.Index] {
				work = append(work, s)
			}
		}
	}
	// Fold deferred calls into the exit state once so any-path
	// release/escape facts include them.
	exit := in[g.Exit.Index].clone()
	for i := len(g.Defers) - 1; i >= 0; i-- {
		c.walk(g.Defers[i].Call, exit)
	}
	return in
}

// transfer applies one CFG node. A defer statement's call is not
// executed here — it runs at exit, where the driver replays Defers LIFO
// against the exit state.
func (c *rfChecker) transfer(n ast.Node, st *rfState) {
	if _, ok := n.(*ast.DeferStmt); ok {
		return
	}
	c.walk(n, st)
}

// walk visits n in source order, classifying every appearance of a
// tracked value. Nested function literals are not descended into: a
// batch captured by a closure escapes (the closure runs elsewhere, on
// its own schedule).
func (c *rfChecker) walk(n ast.Node, st *rfState) {
	var stack []ast.Node
	ast.Inspect(n, func(sub ast.Node) bool {
		if sub == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if lit, ok := sub.(*ast.FuncLit); ok {
			c.escapeCaptured(lit, st)
			return false
		}
		if _, ok := sub.(*ast.DeferStmt); ok && sub != n {
			return false
		}
		switch x := sub.(type) {
		case *ast.AssignStmt:
			c.assign(x, st)
		case *ast.CallExpr:
			c.call(x, st)
		case *ast.Ident:
			c.use(x, st, stack)
		}
		stack = append(stack, sub)
		return true
	})
}

// escapeCaptured marks every tracked value referenced inside a closure
// as escaped.
func (c *rfChecker) escapeCaptured(lit *ast.FuncLit, st *rfState) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if cells := c.cellsOf(id, st); cells != nil {
				c.escape(cells, st)
			}
		}
		return true
	})
}

// assign handles acquisitions, aliases, and killed bindings; reads of
// tracked idents inside the RHS are classified by use().
func (c *rfChecker) assign(as *ast.AssignStmt, st *rfState) {
	if len(as.Rhs) != 1 || len(as.Lhs) != 1 {
		return
	}
	lhs, ok := as.Lhs[0].(*ast.Ident)
	if !ok || lhs.Name == "_" {
		return
	}
	obj := c.objOf(lhs)
	if obj == nil {
		return
	}
	if call, ok := as.Rhs[0].(*ast.CallExpr); ok {
		if cell, tracked := c.cellOf[call]; tracked {
			// (Re)acquisition: strong update — the name now means a fresh
			// batch, whatever earlier iterations did with the old one.
			st.env[obj] = map[int]bool{cell: true}
			st.bits[cell] = stLive
			return
		}
	}
	if rhs, ok := ast.Unparen(as.Rhs[0]).(*ast.Ident); ok {
		if cells := c.cellsOf(rhs, st); cells != nil {
			// Alias: both names now denote the same cells.
			cp := make(map[int]bool, len(cells))
			for cell := range cells {
				cp[cell] = true
			}
			st.env[obj] = cp
			return
		}
	}
	// Rebinding a tracked name to something untracked kills the binding.
	delete(st.env, obj)
}

// call applies a recycle sink: double-recycle detection plus the state
// flip to recycled.
func (c *rfChecker) call(call *ast.CallExpr, st *rfState) {
	if !c.isSink(call) {
		return
	}
	for _, arg := range call.Args {
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok {
			continue
		}
		cells := c.cellsOf(id, st)
		for cell := range cells {
			if st.bits[cell]&stEscaped != 0 {
				continue
			}
			if st.bits[cell]&stRecycled != 0 {
				c.reportf(call.Pos(), "double-recycle",
					"pooled batch %s may already be recycled (a recycle at line %d reaches this one); the pool would hand the same backing arrays to two scans",
					id.Name, c.recycleAt[cell])
			}
			st.bits[cell] = stRecycled
			c.everReleased[cell] = true
			if _, have := c.recycleAt[cell]; !have {
				c.recycleAt[cell] = c.pass.Fset.Position(call.Pos()).Line
			}
		}
	}
}

// use classifies one appearance of a tracked ident that is not an
// assignment LHS (handled by assign) or a recycle argument (handled by
// call).
func (c *rfChecker) use(id *ast.Ident, st *rfState, stack []ast.Node) {
	cells := c.cellsOf(id, st)
	if cells == nil || len(stack) == 0 {
		return
	}
	parent := stack[len(stack)-1]
	switch p := parent.(type) {
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if lhs == id {
				return // binding, handled by assign
			}
		}
		c.checkUse(id, cells, st) // RHS read (alias source): still a use
		return
	case *ast.SelectorExpr:
		if p.X == id {
			c.checkUse(id, cells, st) // field read b.Sel / b.Val
		}
		return
	case *ast.CallExpr:
		for _, arg := range p.Args {
			if ast.Unparen(arg) == id {
				if c.isSink(p) {
					return // the recycle itself, handled by call
				}
				c.checkUse(id, cells, st)
				// Handing the batch to any other call transfers ownership.
				c.escape(cells, st)
				return
			}
		}
		return
	}
	// Returns, composite literals, channel sends, index exprs, ...: the
	// batch leaves this function's custody.
	c.checkUse(id, cells, st)
	c.escape(cells, st)
}

func (c *rfChecker) checkUse(id *ast.Ident, cells map[int]bool, st *rfState) {
	for cell := range cells {
		b := st.bits[cell]
		if b&stRecycled != 0 && b&stEscaped == 0 {
			c.reportf(id.Pos(), "use-after-recycle",
				"pooled batch %s may be used after being recycled (recycled on a path through line %d); the pool may have handed its arrays to another scan",
				id.Name, c.recycleAt[cell])
		}
	}
}

func (c *rfChecker) escape(cells map[int]bool, st *rfState) {
	for cell := range cells {
		st.bits[cell] |= stEscaped
		c.everEscaped[cell] = true
	}
}

func (c *rfChecker) cellsOf(id *ast.Ident, st *rfState) map[int]bool {
	obj := c.objOf(id)
	if obj == nil {
		return nil
	}
	return st.env[obj]
}

func (c *rfChecker) objOf(id *ast.Ident) types.Object {
	if o := c.pass.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return c.pass.TypesInfo.Defs[id]
}

// reportf reports once per (kind, position), and only during the
// reporting pass — the fixpoint runs quietly.
func (c *rfChecker) reportf(pos token.Pos, kind, format string, args ...any) {
	if !c.report {
		return
	}
	key := fmt.Sprintf("%s@%d", kind, pos)
	if c.reported[key] {
		return
	}
	c.reported[key] = true
	c.pass.Reportf(pos, format, args...)
}

// isSource reports a call handing out a pooled batch: engine.GetBatch
// or a wrapper whose summary says it returns one.
func (c *rfChecker) isSource(call *ast.CallExpr) bool {
	if isFuncNamed(c.pass.TypesInfo, call, enginePath, "GetBatch") {
		return true
	}
	fn := calleeFunc(c.pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	if c.pass.Sum != nil {
		if fs, ok := c.pass.Sum.Funcs[fn.FullName()]; ok {
			return fs.ReturnsBatch
		}
	}
	if c.pass.Prog != nil {
		if fs := c.pass.Prog.Func(fn.FullName()); fs != nil {
			return fs.ReturnsBatch
		}
	}
	return false
}

// isSink reports a call recycling a pooled batch: the engine primitives
// or a wrapper whose summary recycles a parameter.
func (c *rfChecker) isSink(call *ast.CallExpr) bool {
	if isFuncNamed(c.pass.TypesInfo, call, enginePath, "PutBatch") ||
		isFuncNamed(c.pass.TypesInfo, call, enginePath, "RecycleChunk") {
		return true
	}
	fn := calleeFunc(c.pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	if c.pass.Sum != nil {
		if fs, ok := c.pass.Sum.Funcs[fn.FullName()]; ok {
			return len(fs.RecyclesParam) > 0
		}
	}
	if c.pass.Prog != nil {
		if fs := c.pass.Prog.Func(fn.FullName()); fs != nil {
			return len(fs.RecyclesParam) > 0
		}
	}
	return false
}
