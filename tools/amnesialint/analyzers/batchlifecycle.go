package analyzers

import (
	"go/ast"
	"go/types"

	"amnesiadb/tools/amnesialint/analysis"
)

// BatchLifecycle enforces pooled-batch hygiene around the engine's
// sync.Pool: a *engine.Batch obtained from GetBatch must be returned
// exactly once (PutBatch, or RecycleChunk on the chunk built from it)
// on every path. The check is intraprocedural and conservative: a
// batch that escapes the function (returned, appended into a result,
// captured by another call) transfers ownership and is the consumer's
// responsibility; a batch that stays local and never reaches a release
// call is a definite leak, and two releases in the same statement list
// are a definite double-free (the next GetBatch would hand the same
// backing arrays to two scans).
var BatchLifecycle = &analysis.Analyzer{
	Name: "batchlifecycle",
	Doc:  "pooled engine.Batch values must reach PutBatch/RecycleChunk exactly once on every path",
	Run:  runBatchLifecycle,
}

const enginePath = "internal/engine"

func runBatchLifecycle(pass *analysis.Pass) error {
	funcDecls(pass.Files, pass.Fset, func(fd *ast.FuncDecl) {
		checkBatches(pass, fd)
	})
	return nil
}

type batchUse struct {
	acquire  *ast.Ident // LHS of b := GetBatch()
	released bool
	escaped  bool
	// releaseBlocks maps a statement list (BlockStmt) to the release
	// statements directly inside it, for double-free detection.
	releases []releaseSite
}

type releaseSite struct {
	call  *ast.CallExpr
	block *ast.BlockStmt // nearest enclosing block reached via plain statements
}

func checkBatches(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	vars := make(map[types.Object]*batchUse)

	// Pass 1: find acquisitions b := engine.GetBatch().
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isFuncNamed(info, call, enginePath, "GetBatch") {
			return true
		}
		if len(as.Lhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj != nil {
			vars[obj] = &batchUse{acquire: id}
		}
		return true
	})
	if len(vars) == 0 {
		return
	}

	// Pass 2: classify every other use of each batch variable.
	walkStack(fd.Body, func(n ast.Node, stack []ast.Node) {
		id, ok := n.(*ast.Ident)
		if !ok {
			return
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		use, tracked := vars[obj]
		if !tracked || id == use.acquire {
			return
		}
		switch classifyUse(info, id, stack) {
		case useRelease:
			use.released = true
			call := stack[len(stack)-1].(*ast.CallExpr)
			use.releases = append(use.releases, releaseSite{call: call, block: directBlock(stack)})
		case useEscape:
			use.escaped = true
		}
	})

	for _, use := range vars {
		if !use.released && !use.escaped {
			pass.Reportf(use.acquire.Pos(),
				"pooled batch %s is never returned to the pool (PutBatch/RecycleChunk) and never escapes %s; every early return leaks it",
				use.acquire.Name, fd.Name.Name)
		}
		reportDoubleRelease(pass, fd, use)
	}
}

type useKind int

const (
	useBenign useKind = iota
	useRelease
	useEscape
)

// classifyUse decides what one appearance of a batch variable means:
// a field read (b.Sel, b.Val) is benign, an argument to a release
// function is a release, and anything else — another call's argument, a
// return value, a composite literal, a channel send, an alias
// assignment — makes the batch escape this function's responsibility.
func classifyUse(info *types.Info, id *ast.Ident, stack []ast.Node) useKind {
	if len(stack) == 0 {
		return useEscape
	}
	parent := stack[len(stack)-1]
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		if p.X == id {
			return useBenign // field access b.Sel / b.Val
		}
	case *ast.CallExpr:
		for _, arg := range p.Args {
			if arg == id {
				if isFuncNamed(info, p, enginePath, "PutBatch") || isFuncNamed(info, p, enginePath, "RecycleChunk") {
					return useRelease
				}
				return useEscape
			}
		}
	}
	return useEscape
}

// directBlock walks outward past expression statements and defers to
// the statement list the release call executes in.
func directBlock(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.BlockStmt:
			return n
		case *ast.ExprStmt, *ast.DeferStmt, *ast.CallExpr:
			continue
		default:
			return nil // release is nested in some larger expression
		}
	}
	return nil
}

func reportDoubleRelease(pass *analysis.Pass, fd *ast.FuncDecl, use *batchUse) {
	byBlock := make(map[*ast.BlockStmt]*releaseSite)
	for i := range use.releases {
		r := &use.releases[i]
		if r.block == nil {
			continue
		}
		if first, dup := byBlock[r.block]; dup {
			pass.Reportf(r.call.Pos(),
				"pooled batch %s is returned to the pool twice on the same path in %s (first release at line %d)",
				use.acquire.Name, fd.Name.Name, pass.Fset.Position(first.call.Pos()).Line)
		} else {
			byBlock[r.block] = r
		}
	}
}
