// Package analyzers holds amnesialint's invariant checks. Each
// analyzer matches repo constructs structurally (by type shape, method
// set and import path suffix) rather than by hard-coded file names, so
// the same rules run against the real tree and against the test
// fixtures under testdata/.
package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// walkStack is ast.Inspect with an ancestor stack; stack excludes n.
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

// calleeFunc resolves the called function or method, or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isFuncNamed reports whether call invokes a function named name whose
// defining package's import path ends in pathSuffix (an empty suffix
// matches any package, including the one under analysis).
func isFuncNamed(info *types.Info, call *ast.CallExpr, pathSuffix, name string) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Name() != name {
		return false
	}
	return pkgPathHasSuffix(fn.Pkg(), pathSuffix)
}

func pkgPathHasSuffix(pkg *types.Package, suffix string) bool {
	if suffix == "" {
		return true
	}
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	suffix = strings.TrimPrefix(suffix, "/")
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// pathHasSegment reports whether seg appears as a complete segment of
// the slash-separated import path.
func pathHasSegment(path, seg string) bool {
	for _, s := range strings.Split(path, "/") {
		if s == seg {
			return true
		}
	}
	return false
}

// namedOf unwraps pointers and returns the named type, or nil.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// hasMethod reports whether *T (or T) has a method named name,
// including unexported methods from T's own package.
func hasMethod(t types.Type, name string) bool {
	n := namedOf(t)
	if n == nil {
		return false
	}
	ms := types.NewMethodSet(types.NewPointer(n))
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == name {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, _ := t.(*types.Named)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// hasCtxParam reports whether the function declaration takes a
// context.Context parameter.
func hasCtxParam(info *types.Info, fd *ast.FuncDecl) bool {
	obj, _ := info.Defs[fd.Name].(*types.Func)
	if obj == nil {
		return false
	}
	sig, _ := obj.Type().(*types.Signature)
	if sig == nil {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// isErrorSentinel reports whether e resolves to an exported
// package-level variable of an error type — the shape of ErrNoRows,
// ErrReadOnly, sql.ErrInvalid and friends.
func isErrorSentinel(info *types.Info, e ast.Expr) bool {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return false
	}
	v, _ := info.Uses[id].(*types.Var)
	if v == nil || !v.Exported() || v.Pkg() == nil {
		return false
	}
	if v.Parent() != v.Pkg().Scope() {
		return false
	}
	return isErrorType(v.Type())
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return types.Implements(t, errorIface) || types.Implements(types.NewPointer(t), errorIface)
}

// isNil reports whether e is the predeclared nil.
func isNil(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNilObj := info.Uses[id].(*types.Nil)
	return isNilObj
}

// funcDecls yields every function declaration with a body across the
// pass's files, skipping _test.go files.
func funcDecls(files []*ast.File, fset *token.FileSet, fn func(*ast.FuncDecl)) {
	for _, f := range files {
		if tf := fset.File(f.Pos()); tf != nil && strings.HasSuffix(tf.Name(), "_test.go") {
			continue
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}

// exclusiveBranches reports whether two AST nodes, given their ancestor
// stacks, sit in mutually exclusive branches (if/else arms or distinct
// switch/select cases) so that at runtime only one executes.
func exclusiveBranches(stackA, stackB []ast.Node) bool {
	// Find the deepest common ancestor and the children through which
	// each path continues.
	common := -1
	for i := 0; i < len(stackA) && i < len(stackB); i++ {
		if stackA[i] != stackB[i] {
			break
		}
		common = i
	}
	if common < 0 || common+1 >= len(stackA) || common+1 >= len(stackB) {
		return false
	}
	childA, childB := stackA[common+1], stackB[common+1]
	if childA == childB {
		return false
	}
	switch stackA[common].(type) {
	case *ast.IfStmt:
		return true // body vs else
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		_, caseA := childA.(*ast.CaseClause)
		_, caseB := childB.(*ast.CaseClause)
		_, commA := childA.(*ast.CommClause)
		_, commB := childB.(*ast.CommClause)
		return (caseA && caseB) || (commA && commB)
	}
	return false
}

// enginePath is the import-path suffix of the engine package that owns
// the pooled-batch primitives.
const enginePath = "internal/engine"
