package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"amnesiadb/tools/amnesialint/analysis"
	"amnesiadb/tools/amnesialint/analysis/cfg"
)

// GovFlow tracks resource-governor charges path-sensitively over the
// CFG: every checked (*governor.Quota).Acquire must be balanced by a
// Release on the same quota — matched by amount identifier when both
// sides use one — on every path to function exit. The balance can be an
// inline Release, a deferred Release (replayed at exit), or an
// ownership handoff: stamping the quota into a struct literal (the
// pipeline's SelChunk carries its charge to RecycleChunk), capturing it
// in a closure, or passing it to another call all transfer the release
// obligation to the consumer. The error branch of a checked Acquire is
// exempt — a failed Acquire charges nothing. Each function literal is
// analyzed as its own unit, since the engine charges inside pipeline
// produce closures. A discarded Acquire error is reported too: the
// latched kill must stop the caller at that boundary.
var GovFlow = &analysis.Analyzer{
	Name: "govflow",
	Doc:  "every (*governor.Quota).Acquire charge must reach a matching Release (inline, deferred, or via ownership handoff) on all CFG paths, and its error must not be discarded",
	Run:  runGovFlow,
}

// governorPath is the import-path suffix of the resource-governor
// package whose Quota charges the rule tracks.
const governorPath = "internal/engine/governor"

func runGovFlow(pass *analysis.Pass) error {
	funcDecls(pass.Files, pass.Fset, func(fd *ast.FuncDecl) {
		g := pass.Local.Graphs[fd]
		if g == nil {
			g = cfg.New(fd.Body)
		}
		checkGovFlow(pass, fd.Name.Name, fd.Body, g)
		// Function literals are their own analysis units: the pipeline
		// charges inside its produce closures, and a charge acquired
		// there must balance there (or hand off) — the enclosing
		// function's paths say nothing about the closure's.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				checkGovFlow(pass, fd.Name.Name+" (func literal)", lit.Body, cfg.New(lit.Body))
			}
			return true
		})
	})
	return nil
}

// gfCell is one Acquire site: the charge's receiver object, the amount
// identifier when the amount is a simple name (flatBytes, sortBytes,
// ChunkQuotaBytes), and the error-check branch whose exits are exempt.
type gfCell struct {
	call     *ast.CallExpr
	recv     types.Object
	recvName string
	amt      types.Object   // nil when the amount is not an identifier
	errBody  *ast.BlockStmt // nil when the call's error is not branch-checked
}

// gfState is the dataflow fact at a program point: which acquire sites
// may have an outstanding (unreleased, un-handed-off) charge.
type gfState struct {
	charged map[int]bool
}

func newGFState() *gfState { return &gfState{charged: map[int]bool{}} }

func (s *gfState) clone() *gfState {
	out := newGFState()
	for c, b := range s.charged {
		if b {
			out.charged[c] = true
		}
	}
	return out
}

// union merges o into s (may-charged), reporting change.
func (s *gfState) union(o *gfState) bool {
	changed := false
	for c, b := range o.charged {
		if b && !s.charged[c] {
			s.charged[c] = true
			changed = true
		}
	}
	return changed
}

type gfChecker struct {
	pass  *analysis.Pass
	body  *ast.BlockStmt
	cells []gfCell
}

func checkGovFlow(pass *analysis.Pass, fname string, body *ast.BlockStmt, g *cfg.Graph) {
	c := &gfChecker{pass: pass, body: body}
	c.register()
	if len(c.cells) == 0 {
		return
	}
	in := c.solve(g)
	exit := in[g.Exit.Index].clone()
	for i := len(g.Defers) - 1; i >= 0; i-- {
		c.walk(g.Defers[i].Call, exit)
	}
	for i, cell := range c.cells {
		if exit.charged[i] {
			pass.Reportf(cell.call.Pos(),
				"charge from %s.Acquire may reach the exit of %s without a matching Release on some path; release it on every path, defer the release, or hand the quota off with the charged buffer",
				cell.recvName, fname)
		}
	}
}

// register pre-collects every Acquire site in this unit (not descending
// into nested function literals — they are their own units) so cell
// indices are stable across fixpoint iterations, and reports discarded
// Acquire errors on the way.
func (c *gfChecker) register() {
	var stack []ast.Node
	ast.Inspect(c.body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if recv := quotaMethodRecv(c.pass.TypesInfo, call, "Acquire"); recv != nil {
				c.registerAcquire(call, recv, stack)
			}
		}
		stack = append(stack, n)
		return true
	})
}

func (c *gfChecker) registerAcquire(call *ast.CallExpr, recv *ast.Ident, stack []ast.Node) {
	obj := infoObj(c.pass.TypesInfo, recv)
	if obj == nil {
		return
	}
	cell := gfCell{call: call, recv: obj, recvName: recv.Name}
	if len(call.Args) == 1 {
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			cell.amt = infoObj(c.pass.TypesInfo, id)
		}
	}
	if len(stack) > 0 {
		switch p := stack[len(stack)-1].(type) {
		case *ast.ExprStmt:
			c.pass.Reportf(call.Pos(),
				"the error from %s.Acquire is discarded; a failed Acquire latches the query's kill and the caller must stop at this boundary",
				recv.Name)
		case *ast.AssignStmt:
			if len(p.Rhs) == 1 && p.Rhs[0] == call && len(p.Lhs) == 1 {
				if lhs, ok := p.Lhs[0].(*ast.Ident); ok {
					if lhs.Name == "_" {
						c.pass.Reportf(call.Pos(),
							"the error from %s.Acquire is discarded; a failed Acquire latches the query's kill and the caller must stop at this boundary",
							recv.Name)
					} else {
						cell.errBody = errBranchOf(c.pass.TypesInfo, p, lhs, stack)
					}
				}
			}
		}
	}
	c.cells = append(c.cells, cell)
}

// errBranchOf finds the error-check branch of a checked Acquire: the
// `if err := q.Acquire(n); err != nil { ... }` init form, or the
// two-statement `err := q.Acquire(n)` / `if err != nil { ... }` form.
// Exits inside that branch carry no charge — a failed Acquire charges
// nothing.
func errBranchOf(info *types.Info, as *ast.AssignStmt, lhs *ast.Ident, stack []ast.Node) *ast.BlockStmt {
	errObj := infoObj(info, lhs)
	if errObj == nil || len(stack) < 2 {
		return nil
	}
	switch gp := stack[len(stack)-2].(type) {
	case *ast.IfStmt:
		if gp.Init == as && condIsErrNotNil(info, gp.Cond, errObj) {
			return gp.Body
		}
	case *ast.BlockStmt:
		for i, s := range gp.List {
			if s != ast.Stmt(as) || i+1 >= len(gp.List) {
				continue
			}
			if ifs, ok := gp.List[i+1].(*ast.IfStmt); ok && ifs.Init == nil &&
				condIsErrNotNil(info, ifs.Cond, errObj) {
				return ifs.Body
			}
		}
	}
	return nil
}

// condIsErrNotNil matches `err != nil` (either operand order) against
// the given error object.
func condIsErrNotNil(info *types.Info, cond ast.Expr, errObj types.Object) bool {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || be.Op != token.NEQ {
		return false
	}
	if isNil(info, be.Y) {
		return identResolves(info, be.X, errObj)
	}
	if isNil(info, be.X) {
		return identResolves(info, be.Y, errObj)
	}
	return false
}

func identResolves(info *types.Info, e ast.Expr, obj types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && infoObj(info, id) == obj
}

func (c *gfChecker) solve(g *cfg.Graph) []*gfState {
	in := make([]*gfState, len(g.Blocks))
	for i := range in {
		in[i] = newGFState()
	}
	work := []*cfg.Block{g.Entry}
	seen := make([]bool, len(g.Blocks))
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		seen[blk.Index] = true
		out := in[blk.Index].clone()
		for _, n := range blk.Nodes {
			c.transfer(n, out)
		}
		for _, s := range blk.Succs {
			if in[s.Index].union(out) || !seen[s.Index] {
				work = append(work, s)
			}
		}
	}
	return in
}

// transfer applies one CFG node. A defer statement's call is not
// executed here — it runs at exit, where the driver replays Defers LIFO
// against the exit state.
func (c *gfChecker) transfer(n ast.Node, st *gfState) {
	if _, ok := n.(*ast.DeferStmt); ok {
		return
	}
	c.walk(n, st)
}

// walk visits n in source order, applying charges, releases, exempt
// exits, and handoffs. Nested function literals are not descended into:
// a quota captured by a closure hands its outstanding charges to the
// closure (which is analyzed as its own unit).
func (c *gfChecker) walk(n ast.Node, st *gfState) {
	var stack []ast.Node
	ast.Inspect(n, func(sub ast.Node) bool {
		if sub == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if lit, ok := sub.(*ast.FuncLit); ok {
			c.handoffCaptured(lit, st)
			return false
		}
		if _, ok := sub.(*ast.DeferStmt); ok && sub != n {
			return false
		}
		switch x := sub.(type) {
		case *ast.CallExpr:
			c.call(x, st)
		case *ast.ReturnStmt:
			c.exempt(x, st)
		case *ast.Ident:
			c.use(x, st, stack)
		}
		stack = append(stack, sub)
		return true
	})
}

// call applies an Acquire (charge) or Release (settle) site; panic in
// an error branch counts as that branch's exit.
func (c *gfChecker) call(call *ast.CallExpr, st *gfState) {
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
		c.exempt(call, st)
		return
	}
	for i := range c.cells {
		if c.cells[i].call == call {
			st.charged[i] = true
			return
		}
	}
	if recv := quotaMethodRecv(c.pass.TypesInfo, call, "Release"); recv != nil {
		c.release(call, recv, st)
	}
}

// release settles charges on the same quota. When both the Acquire and
// the Release name their amount with an identifier, amounts must match
// — releasing outBytes does not settle flatBytes.
func (c *gfChecker) release(call *ast.CallExpr, recv *ast.Ident, st *gfState) {
	obj := infoObj(c.pass.TypesInfo, recv)
	if obj == nil {
		return
	}
	var amt types.Object
	if len(call.Args) == 1 {
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			amt = infoObj(c.pass.TypesInfo, id)
		}
	}
	for i, cell := range c.cells {
		if cell.recv != obj {
			continue
		}
		if amt != nil && cell.amt != nil && amt != cell.amt {
			continue
		}
		st.charged[i] = false
	}
}

// exempt clears charges whose error-check branch lexically contains
// this exit: on that path the Acquire failed and charged nothing.
func (c *gfChecker) exempt(n ast.Node, st *gfState) {
	pos := n.Pos()
	for i, cell := range c.cells {
		if cell.errBody != nil && cell.errBody.Pos() <= pos && pos <= cell.errBody.End() {
			st.charged[i] = false
		}
	}
}

// use classifies one appearance of a tracked quota. A method call on
// the quota is neutral; a binding position is handled by walk; anything
// else — struct literal stamp, call argument, return, channel send —
// hands the outstanding charges to the consumer.
func (c *gfChecker) use(id *ast.Ident, st *gfState, stack []ast.Node) {
	obj := infoObj(c.pass.TypesInfo, id)
	if obj == nil || !c.tracks(obj) || len(stack) == 0 {
		return
	}
	switch p := stack[len(stack)-1].(type) {
	case *ast.SelectorExpr:
		if p.X == id && len(stack) >= 2 {
			if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && call.Fun == p {
				return // method call on the quota, not a handoff
			}
		}
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if lhs == id {
				return // (re)binding the name
			}
		}
	}
	c.handoff(obj, st)
}

func (c *gfChecker) tracks(obj types.Object) bool {
	for _, cell := range c.cells {
		if cell.recv == obj {
			return true
		}
	}
	return false
}

// handoff transfers all of a quota's outstanding charges to whatever
// received the quota value: the release obligation leaves this unit.
func (c *gfChecker) handoff(obj types.Object, st *gfState) {
	for i, cell := range c.cells {
		if cell.recv == obj {
			st.charged[i] = false
		}
	}
}

// handoffCaptured hands every tracked quota referenced inside a closure
// to that closure.
func (c *gfChecker) handoffCaptured(lit *ast.FuncLit, st *gfState) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := infoObj(c.pass.TypesInfo, id); obj != nil && c.tracks(obj) {
				c.handoff(obj, st)
			}
		}
		return true
	})
}

// quotaMethodRecv reports whether call invokes the named method on a
// governor Quota receiver, returning the receiver identifier (nil when
// it is not a plain name — such receivers are not tracked).
func quotaMethodRecv(info *types.Info, call *ast.CallExpr, name string) *ast.Ident {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return nil
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn == nil {
		return nil
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return nil
	}
	named := namedOf(sig.Recv().Type())
	if named == nil || named.Obj().Name() != "Quota" || named.Obj().Pkg() == nil ||
		!pkgPathHasSuffix(named.Obj().Pkg(), governorPath) {
		return nil
	}
	id, _ := ast.Unparen(sel.X).(*ast.Ident)
	return id
}

// infoObj resolves an identifier to its object through either Uses or
// Defs.
func infoObj(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}
