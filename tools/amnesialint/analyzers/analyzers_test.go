package analyzers

import (
	"testing"

	"amnesiadb/tools/amnesialint/internal/linttest"
)

// Each fixture under testdata/src is a self-contained module carrying
// positive cases (want comments) and negative cases (clean lines the
// harness asserts stay silent).

func TestLiveness(t *testing.T) {
	linttest.Run(t, "testdata/src/liveness", Liveness)
}

func TestRecycleFlow(t *testing.T) {
	linttest.Run(t, "testdata/src/recycleflow", RecycleFlow)
}

func TestGovFlow(t *testing.T) {
	linttest.Run(t, "testdata/src/govflow", GovFlow)
}

func TestLockOrder(t *testing.T) {
	linttest.Run(t, "testdata/src/lockorder", LockOrder)
}

func TestGoroutineLife(t *testing.T) {
	linttest.Run(t, "testdata/src/goroutinelife", GoroutineLife)
}

func TestWALExhaustive(t *testing.T) {
	linttest.Run(t, "testdata/src/walexhaustive", WALExhaustive)
}

func TestCtxFlow(t *testing.T) {
	linttest.Run(t, "testdata/src/ctxflow", CtxFlow)
}

func TestSentErr(t *testing.T) {
	linttest.Run(t, "testdata/src/senterr", SentErr)
}

func TestNoFsyncSkip(t *testing.T) {
	linttest.Run(t, "testdata/src/nofsyncskip", NoFsyncSkip)
}
