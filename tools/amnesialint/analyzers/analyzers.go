package analyzers

import "amnesiadb/tools/amnesialint/analysis"

// All returns the full amnesialint suite in the order findings are
// reported. The flow-sensitive analyzers (lockorder, goroutinelife,
// recycleflow) run alongside the syntactic ones; recycleflow subsumes
// the retired batchlifecycle check.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Liveness,
		LockOrder,
		GoroutineLife,
		RecycleFlow,
		GovFlow,
		WALExhaustive,
		CtxFlow,
		SentErr,
		NoFsyncSkip,
	}
}
