package analyzers

import "amnesiadb/tools/amnesialint/analysis"

// All returns the full amnesialint suite in the order findings are
// reported.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Liveness,
		BatchLifecycle,
		WALExhaustive,
		CtxFlow,
		SentErr,
		NoFsyncSkip,
	}
}
