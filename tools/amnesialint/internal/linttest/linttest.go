// Package linttest is amnesialint's analysistest: it runs analyzers
// over a self-contained fixture module and compares the diagnostics
// against want comments in the fixture source. A want comment marks the
// line a diagnostic must land on:
//
//	err == ErrGone // want senterr "compared with =="
//
// The general form is `// want <analyzer> "<substring>"`, repeated for
// lines carrying several diagnostics. Every diagnostic must match a
// want and every want must be matched, so fixtures pin positives and
// negatives at once: a clean line with no want is an assertion too.
package linttest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"amnesiadb/tools/amnesialint/analysis"
	"amnesiadb/tools/amnesialint/internal/load"
)

// want is one expected diagnostic: analyzer name plus a message
// substring, anchored to a file line.
type want struct {
	analyzer string
	substr   string
	file     string
	line     int
	matched  bool
}

var (
	wantLineRe = regexp.MustCompile(`//\s*want\s+(.+)$`)
	wantPairRe = regexp.MustCompile(`([a-z]+)\s+"([^"]*)"`)
)

// Run analyzes the fixture module rooted at dir (relative to the test's
// working directory) with the given analyzers and fails the test on any
// mismatch between findings and want comments.
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	findings, files, err := analyze(dir, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	wants, err := parseWants(files)
	if err != nil {
		t.Fatal(err)
	}

	for _, f := range findings {
		if !consume(wants, f) {
			t.Errorf("unexpected diagnostic %s:%d: %s (%s)",
				filepath.Base(f.Pos.Filename), f.Pos.Line, f.Message, f.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("no diagnostic at %s:%d matching %s %q",
				filepath.Base(w.file), w.line, w.analyzer, w.substr)
		}
	}
}

// analyze loads and checks every package of the fixture module and runs
// the analyzers in one session (so cross-package summaries and
// whole-program finalize passes behave exactly as in the drivers),
// returning the findings plus the fixture's source files.
func analyze(dir string, analyzers []*analysis.Analyzer) ([]analysis.Finding, []string, error) {
	units, targets, err := load.List(dir, "./...")
	if err != nil {
		return nil, nil, err
	}
	checker := load.NewChecker(units)
	session := analysis.NewSession(analyzers)
	var files []string
	// `go list -deps` order lists dependencies first, so summaries are
	// always present before their consumers run.
	for _, u := range targets {
		checked, err := checker.Check(u)
		if err != nil {
			return nil, nil, err
		}
		if _, err := session.RunPackage(checked.Fset, checked.Files, checked.Pkg, checked.Info); err != nil {
			return nil, nil, err
		}
		for _, name := range u.GoFiles {
			if !filepath.IsAbs(name) {
				name = filepath.Join(u.Dir, name)
			}
			files = append(files, name)
		}
	}
	findings, err := session.Finalize()
	if err != nil {
		return nil, nil, err
	}
	return findings, files, nil
}

func parseWants(files []string) ([]*want, error) {
	var wants []*want
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantLineRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			pairs := wantPairRe.FindAllStringSubmatch(m[1], -1)
			if len(pairs) == 0 {
				return nil, fmt.Errorf("%s:%d: malformed want comment %q", file, i+1, m[1])
			}
			for _, p := range pairs {
				wants = append(wants, &want{analyzer: p[1], substr: p[2], file: file, line: i + 1})
			}
		}
	}
	return wants, nil
}

// consume marks the first unmatched want satisfied by f, if any.
func consume(wants []*want, f analysis.Finding) bool {
	for _, w := range wants {
		if w.matched || w.file != f.Pos.Filename || w.line != f.Pos.Line {
			continue
		}
		if w.analyzer == f.Analyzer && strings.Contains(f.Message, w.substr) {
			w.matched = true
			return true
		}
	}
	return false
}
