// Package load type-checks packages for amnesialint's standalone mode
// (and the analyzer test harness) without golang.org/x/tools: package
// metadata and compiled export data come from `go list -deps -export`,
// and the target packages themselves are parsed and type-checked from
// source so the analyzers see syntax.
package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
)

// A Unit is one `go list` package: a target to analyze (DepOnly false)
// or a dependency contributing export data only.
type Unit struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Imports    []string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// A Checked is one parsed, type-checked target package.
type Checked struct {
	Unit  *Unit
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// List runs `go list -e -deps -export -json` in dir over the patterns
// and returns every unit keyed by import path plus the analysis targets
// in listing order.
func List(dir string, patterns ...string) (map[string]*Unit, []*Unit, error) {
	args := append([]string{
		"list", "-e", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,Export,Imports,DepOnly,Standard,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	units := make(map[string]*Unit)
	var targets []*Unit
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		u := new(Unit)
		if err := dec.Decode(u); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("decoding go list output: %v", err)
		}
		units[u.ImportPath] = u
		if !u.DepOnly && !u.Standard {
			targets = append(targets, u)
		}
	}
	return units, targets, nil
}

// A Checker type-checks target units against the export data of every
// listed unit. One Checker shares a FileSet and importer cache across
// packages, so common dependencies are imported once. Check may be
// called from multiple goroutines: the FileSet is internally
// synchronized and the export-data importer is wrapped with a mutex
// (its package cache is a plain map).
type Checker struct {
	Fset  *token.FileSet
	units map[string]*Unit
	imp   types.Importer
}

// syncImporter serializes Import calls; the underlying gc importer's
// cache map is not safe for concurrent use.
type syncImporter struct {
	mu  sync.Mutex
	imp types.Importer
}

func (s *syncImporter) Import(path string) (*types.Package, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.imp.Import(path)
}

func NewChecker(units map[string]*Unit) *Checker {
	fset := token.NewFileSet()
	c := &Checker{Fset: fset, units: units}
	c.imp = &syncImporter{imp: importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		u, ok := units[path]
		if !ok || u.Export == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(u.Export)
	})}
	return c
}

// Check parses and type-checks one target unit from source.
func (c *Checker) Check(u *Unit) (*Checked, error) {
	if u.Error != nil && u.Error.Err != "" {
		return nil, fmt.Errorf("%s: %s", u.ImportPath, u.Error.Err)
	}
	var files []*ast.File
	for _, name := range u.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(u.Dir, name)
		}
		f, err := parser.ParseFile(c.Fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := &types.Config{
		Importer: c.imp,
		Sizes:    types.SizesFor("gc", build.Default.GOARCH),
	}
	pkg, err := conf.Check(u.ImportPath, c.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", u.ImportPath, err)
	}
	return &Checked{Unit: u, Fset: c.Fset, Files: files, Pkg: pkg, Info: info}, nil
}
