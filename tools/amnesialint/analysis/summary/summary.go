// Package summary computes cross-package function summaries for
// amnesialint's flow-sensitive analyzers. For every function in a
// package it records, bottom-up over the load graph:
//
//   - which lock classes the function may acquire (directly or through
//     callees), which it still holds when it returns, and every
//     held-while-acquiring pair — the edges of the whole-program
//     lock-acquisition graph that lockorder checks against the
//     hierarchy in docs/LOCKING.md;
//   - goroutine-lifecycle shape bits (joins a WaitGroup, closes a
//     channel at exit, is purely channel-driven, contains an
//     unstoppable loop) consumed by goroutinelife when a `go` statement
//     spawns a function from another package;
//   - pooled-batch wrapper shape (returns a fresh pooled batch,
//     recycles a parameter) consumed by recycleflow so wrappers around
//     GetBatch/PutBatch are tracked like the primitives.
//
// Summaries serialize to JSON: the standalone driver carries them
// in-process in dependency order, and the `go vet -vettool` driver
// writes them as the unit's .vetx facts file and reads dependencies'
// facts back, so both drivers see the same whole program.
package summary

import (
	"encoding/json"
	"fmt"
	"go/token"
	"sort"
	"strings"
	"sync"
)

// Rank is a lock class's position in the engine's documented hierarchy
// (docs/LOCKING.md). Locks must be acquired in ascending rank order;
// RankOther classes are outside the hierarchy and only participate in
// cycle detection.
type Rank int

const (
	RankOther Rank = iota
	RankCatalog
	RankRelation
	RankShard
	RankSched
)

func (r Rank) String() string {
	switch r {
	case RankCatalog:
		return "catalog"
	case RankRelation:
		return "relation"
	case RankShard:
		return "shard"
	case RankSched:
		return "sched"
	}
	return "other"
}

// A ClassID names one lock class: "<rank>:<owner-pkg>|<Type>.<field>"
// for struct-field mutexes, "<rank>:<owner-pkg>|<var>" for package-level
// ones, "<rank>:<owner-pkg>|local.<var>@<file>:<line>" for locals. The
// rank prefix makes hierarchy checks a string parse away from any
// serialized form; the '|' keeps the owner package unambiguous.
type ClassID string

// RankOf extracts the class's hierarchy rank.
func (c ClassID) RankOf() Rank {
	s := string(c)
	i := strings.IndexByte(s, ':')
	if i < 0 {
		return RankOther
	}
	switch s[:i] {
	case "catalog":
		return RankCatalog
	case "relation":
		return RankRelation
	case "shard":
		return RankShard
	case "sched":
		return RankSched
	}
	return RankOther
}

// OwnerPkg extracts the package path that declares the lock.
func (c ClassID) OwnerPkg() string {
	s := string(c)
	if i := strings.IndexByte(s, ':'); i >= 0 {
		s = s[i+1:]
	}
	if i := strings.LastIndexByte(s, '|'); i >= 0 {
		return s[:i]
	}
	return s
}

// Short renders the class without its owner-package prefix for
// diagnostics: "relation(Table.mu)".
func (c ClassID) Short() string {
	s := string(c)
	rank := "other"
	if i := strings.IndexByte(s, ':'); i >= 0 {
		rank, s = s[:i], s[i+1:]
	}
	if i := strings.LastIndexByte(s, '|'); i >= 0 {
		s = s[i+1:]
	}
	return fmt.Sprintf("%s(%s)", rank, s)
}

// A Site is a source position that survives serialization across
// packages.
type Site struct {
	File string `json:"file"`
	Line int    `json:"line"`
	// Pos is the in-process position; zero for foreign (deserialized)
	// sites.
	Pos token.Pos `json:"-"`
}

func (s Site) String() string {
	return fmt.Sprintf("%s:%d", s.File, s.Line)
}

// An Acq records that a function may acquire a lock class, with the
// witness chain that leads to the primitive Lock call.
type Acq struct {
	Class ClassID `json:"class"`
	Site  Site    `json:"site"`
	// Via is the call chain from the summarized function to the Lock
	// call, outermost first; empty for a direct acquisition.
	Via []string `json:"via,omitempty"`
}

// An Edge is one held-while-acquiring pair: while holding From
// (locked at FromSite), control reached an acquisition of To at AtSite
// inside Fn. Path is the human-readable witness chain.
type Edge struct {
	From     ClassID  `json:"from"`
	To       ClassID  `json:"to"`
	FromSite Site     `json:"fromSite"`
	AtSite   Site     `json:"atSite"`
	Fn       string   `json:"fn"`
	Owner    string   `json:"owner"` // package that contributed the edge
	Path     []string `json:"path"`
}

// A FuncSummary is the cross-package abstract of one function.
type FuncSummary struct {
	Name       string    `json:"name"`
	Acquires   []Acq     `json:"acquires,omitempty"`
	HeldAtExit []ClassID `json:"heldAtExit,omitempty"`

	// Goroutine lifecycle shape (see package goroutinelife rules).
	Joins           bool `json:"joins,omitempty"`           // calls Done() on a sync.WaitGroup
	ClosesChan      bool `json:"closesChan,omitempty"`      // closes a channel (possibly deferred)
	ChannelDriven   bool `json:"channelDriven,omitempty"`   // loop-free body gated on channel receives
	UnstoppableLoop bool `json:"unstoppableLoop,omitempty"` // cond-less loop with no exit or channel wait
	HasLoop         bool `json:"hasLoop,omitempty"`         // contains any for/range loop
	WaitsOnChan     bool `json:"waitsOnChan,omitempty"`     // contains a select or channel receive
	RefsCtx         bool `json:"refsCtx,omitempty"`         // references a context.Context value

	// Pooled-batch wrapper shape.
	ReturnsBatch  bool  `json:"returnsBatch,omitempty"`  // returns engine.GetBatch's result
	RecyclesParam []int `json:"recyclesParam,omitempty"` // param indices reaching PutBatch/RecycleChunk
}

// A Package is one package's summaries plus the lock-graph edges its
// functions contribute.
type Package struct {
	Path  string                  `json:"path"`
	Funcs map[string]*FuncSummary `json:"funcs,omitempty"`
	Edges []Edge                  `json:"edges,omitempty"`
}

// A Program accumulates packages across one driver run (or, under go
// vet, one unit plus its deps' facts). Safe for concurrent use by the
// parallel driver.
type Program struct {
	mu   sync.RWMutex
	pkgs map[string]*Package
	// funcs indexes every summary by full name for cross-package lookup.
	funcs map[string]*FuncSummary
}

func NewProgram() *Program {
	return &Program{pkgs: map[string]*Package{}, funcs: map[string]*FuncSummary{}}
}

// Add registers one package's summaries.
func (p *Program) Add(pkg *Package) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.pkgs[pkg.Path] = pkg
	for name, fs := range pkg.Funcs {
		p.funcs[name] = fs
	}
}

// Func looks a summary up by the types.Func full name.
func (p *Program) Func(name string) *FuncSummary {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.funcs[name]
}

// Package returns a package's summaries, nil when absent.
func (p *Program) Package(path string) *Package {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.pkgs[path]
}

// Edges returns every lock-graph edge across the program, deduplicated
// by (From, To) with the first witness kept, in deterministic order.
func (p *Program) Edges() []Edge {
	p.mu.RLock()
	defer p.mu.RUnlock()
	var paths []string
	for path := range p.pkgs {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	seen := map[[2]ClassID]bool{}
	var out []Edge
	for _, path := range paths {
		for _, e := range p.pkgs[path].Edges {
			k := [2]ClassID{e.From, e.To}
			if seen[k] {
				continue
			}
			seen[k] = true
			out = append(out, e)
		}
	}
	return out
}

// EncodePackage serializes one package's summaries (the vetx facts
// payload).
func EncodePackage(pkg *Package) ([]byte, error) {
	return json.Marshal(pkg)
}

// DecodePackage deserializes a facts payload; empty input yields nil
// (dependencies built by tools without facts write empty files).
func DecodePackage(data []byte) (*Package, error) {
	if len(data) == 0 {
		return nil, nil
	}
	pkg := new(Package)
	if err := json.Unmarshal(data, pkg); err != nil {
		return nil, err
	}
	return pkg, nil
}
