package summary

import (
	"encoding/json"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"amnesiadb/tools/amnesialint/analysis/cfg"
)

// Local is the non-serializable side product of Build: the CFGs and
// summary names of the package's own functions, for analyzers that walk
// flow themselves (recycleflow) or need a spawned function's body
// (goroutinelife).
type Local struct {
	// Graphs maps each *ast.FuncDecl and *ast.FuncLit to its CFG.
	Graphs map[ast.Node]*cfg.Graph
	// NameOf maps each *ast.FuncDecl to its summary (full) name.
	NameOf map[ast.Node]string
}

// Build computes one package's summaries. prog supplies dependency
// summaries (may be nil); the returned Package is not yet added to
// prog — drivers add it after diagnostics so a package never consumes
// its own half-built state.
func Build(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, prog *Program) (*Package, *Local) {
	b := &pkgBuilder{
		fset: fset, pkg: pkg, info: info, prog: prog,
		out:   &Package{Path: pkg.Path(), Funcs: map[string]*FuncSummary{}},
		local: &Local{Graphs: map[ast.Node]*cfg.Graph{}, NameOf: map[ast.Node]string{}},
	}
	var decls []*ast.FuncDecl
	for _, f := range files {
		if tf := fset.File(f.Pos()); tf != nil && strings.HasSuffix(tf.Name(), "_test.go") {
			continue
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				decls = append(decls, fd)
				b.local.Graphs[fd] = cfg.New(fd.Body)
				b.local.NameOf[fd] = b.funcName(fd)
			}
		}
	}
	// Bottom-up within the package: mutually recursive functions reach a
	// fixpoint in a few rounds (acquire sets only grow; the bound is the
	// hierarchy depth, and the cap keeps pathological recursion cheap).
	for round := 0; round < 4; round++ {
		changed := false
		for _, fd := range decls {
			name := b.local.NameOf[fd]
			fs := b.summarize(fd, name)
			if !sameSummary(b.out.Funcs[name], fs) {
				changed = true
			}
			b.out.Funcs[name] = fs
		}
		if !changed {
			break
		}
	}
	// Edges are collected once, after summaries stabilized, so witness
	// chains reflect the final call-graph knowledge. Closure bodies
	// contribute their internal edges as anonymous functions.
	b.edges = nil
	b.edgeSeen = map[string]bool{}
	for _, fd := range decls {
		b.collectEdges(fd.Body, b.local.Graphs[fd], b.local.NameOf[fd], true)
	}
	b.out.Edges = b.edges
	return b.out, b.local
}

type pkgBuilder struct {
	fset  *token.FileSet
	pkg   *types.Package
	info  *types.Info
	prog  *Program
	out   *Package
	local *Local

	edges    []Edge
	edgeSeen map[string]bool

	// binds maps a local func-typed variable to the lock classes it
	// releases when called: `unlock := db.lockCatalog()` stores the
	// callee's held-at-exit classes, and a later `unlock()` (or `defer
	// unlock()`) drops them again. Reset per flow run.
	binds map[types.Object][]ClassID
}

func (b *pkgBuilder) funcName(fd *ast.FuncDecl) string {
	if obj, ok := b.info.Defs[fd.Name].(*types.Func); ok {
		return obj.FullName()
	}
	return b.pkg.Path() + "." + fd.Name.Name
}

func (b *pkgBuilder) site(pos token.Pos) Site {
	p := b.fset.Position(pos)
	return Site{File: p.Filename, Line: p.Line, Pos: pos}
}

// lookup resolves a callee summary: current package first (in-progress
// fixpoint state), then the cross-package program.
func (b *pkgBuilder) lookup(name string) *FuncSummary {
	if fs, ok := b.out.Funcs[name]; ok {
		return fs
	}
	if b.prog != nil {
		return b.prog.Func(name)
	}
	return nil
}

func sameSummary(a, b *FuncSummary) bool {
	if a == nil || b == nil {
		return a == b
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	return string(aj) == string(bj)
}

// ---- per-function summarization ----

func (b *pkgBuilder) summarize(fd *ast.FuncDecl, name string) *FuncSummary {
	fs := &FuncSummary{Name: name}
	g := b.local.Graphs[fd]

	held := b.flowHeld(g, fd.Body, func(class ClassID, site Site, via []string) {
		addAcq(fs, Acq{Class: class, Site: site, Via: via})
	})
	// A lock whose unlock method is captured as a value — `unlocks =
	// append(unlocks, t.mu.RUnlock)` — is released through a dynamic
	// call the flow cannot see. The capture is the release protocol's
	// witness: treat those classes as handed off, not held at exit.
	for class := range b.dynReleases(fd.Body) {
		delete(held, class)
	}
	for class := range held {
		fs.HeldAtExit = append(fs.HeldAtExit, class)
	}
	sort.Slice(fs.HeldAtExit, func(i, j int) bool { return fs.HeldAtExit[i] < fs.HeldAtExit[j] })

	b.shapeBits(fd, fs)
	b.batchBits(fd, fs)
	return fs
}

func addAcq(fs *FuncSummary, a Acq) {
	for _, have := range fs.Acquires {
		if have.Class == a.Class {
			return // first witness wins
		}
	}
	fs.Acquires = append(fs.Acquires, a)
}

type heldInfo struct {
	site Site
	how  string // "<fn> locks <class> at <site>" or via-call provenance
}

type heldSet map[ClassID]heldInfo

func (h heldSet) clone() heldSet {
	out := make(heldSet, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

func (h heldSet) union(o heldSet) bool {
	changed := false
	for k, v := range o {
		if _, ok := h[k]; !ok {
			h[k] = v
			changed = true
		}
	}
	return changed
}

// flowHeld runs the may-hold dataflow over g and returns the held set
// at exit (after defers). onAcquire fires once per distinct class the
// function may acquire, with its witness.
func (b *pkgBuilder) flowHeld(g *cfg.Graph, body ast.Node, onAcquire func(ClassID, Site, []string)) heldSet {
	b.binds = map[types.Object][]ClassID{}
	in := make([]heldSet, len(g.Blocks))
	for i := range in {
		in[i] = heldSet{}
	}
	work := []*cfg.Block{g.Entry}
	seen := make([]bool, len(g.Blocks))
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		seen[blk.Index] = true
		out := in[blk.Index].clone()
		for _, n := range blk.Nodes {
			b.transfer(n, out, onAcquire)
		}
		for _, s := range blk.Succs {
			// Propagate on change; also visit untouched successors at
			// least once so straight-line nodes are processed.
			if in[s.Index].union(out) || !seen[s.Index] {
				if !contains(work, s) {
					work = append(work, s)
				}
			}
		}
	}
	// Exit: replay defers LIFO with the exit held set.
	exit := in[g.Exit.Index]
	for i := len(g.Defers) - 1; i >= 0; i-- {
		b.transferCall(g.Defers[i].Call, exit, onAcquire)
	}
	return exit
}

func contains(blocks []*cfg.Block, b *cfg.Block) bool {
	for _, have := range blocks {
		if have == b {
			return true
		}
	}
	return false
}

// transfer applies one CFG node's lock effects to held. Nested function
// literals are skipped — they execute on their own goroutine or at a
// call site the walker cannot see, and are analyzed separately with an
// empty held set.
func (b *pkgBuilder) transfer(n ast.Node, held heldSet, onAcquire func(ClassID, Site, []string)) {
	if _, ok := n.(*ast.DeferStmt); ok {
		return // applied at exit
	}
	if g, ok := n.(*ast.GoStmt); ok {
		_ = g
		return // runs on another goroutine; no same-thread nesting
	}
	ast.Inspect(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt, *ast.GoStmt:
			return false
		case *ast.AssignStmt:
			b.bindUnlocks(c)
		case *ast.CallExpr:
			b.transferCall(c, held, onAcquire)
		}
		return true
	})
}

// bindUnlocks records `unlock := db.lockCatalog()`-style bindings: a
// func-typed variable assigned from a call whose callee returns holding
// locks releases exactly those classes when invoked.
func (b *pkgBuilder) bindUnlocks(as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := b.callee(call)
	if fn == nil {
		return
	}
	sum := b.lookup(fn.FullName())
	if sum == nil || len(sum.HeldAtExit) == 0 {
		return
	}
	for _, lhs := range as.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			continue
		}
		obj := b.objOf(id)
		if obj == nil {
			continue
		}
		if _, isFunc := obj.Type().Underlying().(*types.Signature); isFunc {
			b.binds[obj] = sum.HeldAtExit
		}
	}
}

// releaseBound applies a call to a bound unlock variable, reporting
// whether the call was one.
func (b *pkgBuilder) releaseBound(call *ast.CallExpr, held heldSet) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	classes, ok := b.binds[b.objOf(id)]
	if !ok {
		return false
	}
	for _, class := range classes {
		delete(held, class)
	}
	return true
}

// dynReleases collects the lock classes whose Unlock/RUnlock method is
// referenced as a value (not called) anywhere in body, including inside
// nested closures: `unlocks = append(unlocks, t.mu.RUnlock)`.
func (b *pkgBuilder) dynReleases(body ast.Node) map[ClassID]bool {
	calledFuns := map[ast.Expr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			calledFuns[call.Fun] = true
		}
		return true
	})
	out := map[ClassID]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || calledFuns[sel] {
			return true
		}
		if sel.Sel.Name != "Unlock" && sel.Sel.Name != "RUnlock" {
			return true
		}
		tv, ok := b.info.Types[sel.X]
		if !ok {
			return true
		}
		rankName, isMutex := mutexTypeRank(tv.Type)
		if !isMutex {
			return true
		}
		if class, ok := b.classify(sel.X, rankName); ok {
			out[class] = true
		}
		return true
	})
	return out
}

// transferCall applies one call: a mutex Lock/Unlock mutates held
// directly; a static call to a summarized function contributes its
// acquisitions (edges against everything held here) and its
// held-at-exit classes.
func (b *pkgBuilder) transferCall(call *ast.CallExpr, held heldSet, onAcquire func(ClassID, Site, []string)) {
	if b.releaseBound(call, held) {
		return
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		// Immediately-invoked (or deferred) literal: runs right here
		// with the current held set.
		b.transfer(lit.Body, held, onAcquire)
		return
	}
	if op, ok := b.lockOp(call); ok {
		if op.acquire {
			onAcquire(op.class, op.site, nil)
			if _, have := held[op.class]; !have {
				held[op.class] = heldInfo{site: op.site, how: "locks " + op.class.Short() + " at " + op.site.String()}
			}
		} else {
			delete(held, op.class)
		}
		return
	}
	fn := b.callee(call)
	if fn == nil {
		return
	}
	sum := b.lookup(fn.FullName())
	if sum == nil {
		return
	}
	site := b.site(call.Pos())
	for _, acq := range sum.Acquires {
		via := append([]string{fn.FullName()}, acq.Via...)
		if len(via) > 8 {
			via = via[:8]
		}
		onAcquire(acq.Class, site, via)
	}
	for _, class := range sum.HeldAtExit {
		if _, have := held[class]; !have {
			held[class] = heldInfo{site: site, how: "calls " + fn.FullName() + " at " + site.String() + " which returns holding " + class.Short()}
		}
	}
}

// ---- lock-site classification ----

type lockOp struct {
	class   ClassID
	site    Site
	acquire bool
}

// lockOp classifies a call as a mutex acquisition/release and names its
// lock class, structurally: the rank comes from the lockrank wrapper
// type when one is used, else from the owning type's method set
// (Relations -> catalog, liveLocked -> relation) or the owning
// package's name (partition -> shard, sched -> sched).
func (b *pkgBuilder) lockOp(call *ast.CallExpr) (lockOp, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	var acquire bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		acquire = false
	default:
		return lockOp{}, false
	}
	tv, ok := b.info.Types[sel.X]
	if !ok {
		return lockOp{}, false
	}
	rankName, isMutex := mutexTypeRank(tv.Type)
	if !isMutex {
		return lockOp{}, false
	}
	class, ok := b.classify(sel.X, rankName)
	if !ok {
		return lockOp{}, false
	}
	return lockOp{class: class, site: b.site(call.Pos()), acquire: acquire}, true
}

// mutexTypeRank reports whether t is a mutex-shaped type, and the rank
// its type name implies when it is a lockrank wrapper ("" otherwise).
func mutexTypeRank(t types.Type) (string, bool) {
	n, _ := t.(*types.Named)
	if n == nil {
		if p, ok := t.(*types.Pointer); ok {
			n, _ = p.Elem().(*types.Named)
		}
	}
	if n == nil || n.Obj().Pkg() == nil {
		return "", false
	}
	path, name := n.Obj().Pkg().Path(), n.Obj().Name()
	if path == "sync" && (name == "Mutex" || name == "RWMutex") {
		return "", true
	}
	if strings.HasSuffix(path, "lockrank") {
		switch name {
		case "Catalog":
			return "catalog", true
		case "Relation":
			return "relation", true
		case "Shard":
			return "shard", true
		}
		return "", true
	}
	return "", false
}

// classify names the lock class of a mutex expression.
func (b *pkgBuilder) classify(mu ast.Expr, rankName string) (ClassID, bool) {
	switch x := ast.Unparen(mu).(type) {
	case *ast.SelectorExpr:
		// owner.field: class is (owner type, field).
		ownerT := b.info.Types[x.X].Type
		n := namedOf(ownerT)
		if n == nil {
			return "", false
		}
		ownerPkg := b.pkg.Path()
		if n.Obj().Pkg() != nil {
			ownerPkg = n.Obj().Pkg().Path()
		}
		rank := rankName
		if rank == "" && x.Sel.Name == "mu" {
			// Only the canonical `mu` field carries the owner's
			// structural rank; auxiliary mutexes on the same struct
			// (srcMu, snapMu, ...) are leaves or side protocols and
			// participate in cycle detection only.
			rank = structuralRank(n, ownerPkg)
		}
		if rank == "" {
			rank = "other"
		}
		return ClassID(rank + ":" + ownerPkg + "|" + n.Obj().Name() + "." + x.Sel.Name), true
	case *ast.Ident:
		v, _ := b.objOf(x).(*types.Var)
		if v == nil {
			return "", false
		}
		rank := rankName
		if rank == "" {
			rank = pkgRank(b.pkg.Path())
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return ClassID(rank + ":" + v.Pkg().Path() + "|" + v.Name()), true
		}
		// Function-local mutex: qualify by position to keep distinct
		// functions' locals distinct.
		p := b.fset.Position(v.Pos())
		return ClassID(rank + ":" + b.pkg.Path() + "|" + "local." + v.Name() + "@" + trimPath(p.Filename) + ":" + itoa(p.Line)), true
	}
	return "", false
}

func (b *pkgBuilder) objOf(id *ast.Ident) types.Object {
	if o := b.info.Uses[id]; o != nil {
		return o
	}
	return b.info.Defs[id]
}

func structuralRank(n *types.Named, ownerPkg string) string {
	if hasMethod(n, "Relations") {
		return "catalog"
	}
	if hasMethod(n, "liveLocked") {
		return "relation"
	}
	return pkgRank(ownerPkg)
}

func pkgRank(path string) string {
	switch {
	case strings.HasSuffix(path, "partition"):
		return "shard"
	case strings.HasSuffix(path, "sched"):
		return "sched"
	}
	return "other"
}

func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

func hasMethod(t types.Type, name string) bool {
	n := namedOf(t)
	if n == nil {
		return false
	}
	ms := types.NewMethodSet(types.NewPointer(n))
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == name {
			return true
		}
	}
	return false
}

func (b *pkgBuilder) callee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := b.info.Uses[id].(*types.Func)
	return fn
}

func trimPath(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// ---- edges ----

// collectEdges re-runs the held-flow over a function body, emitting
// lock-graph edges; topLevel distinguishes declared functions from
// closure sub-walks (closures start with an empty held set: they run on
// their own goroutine or at an unseen call site, so only their internal
// nesting is evidence).
func (b *pkgBuilder) collectEdges(body *ast.BlockStmt, g *cfg.Graph, fnName string, topLevel bool) {
	if g == nil {
		g = cfg.New(body)
	}
	b.flowEdges(g, fnName)
	// Closures (including go-statement bodies): independent walks.
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			sub := cfg.New(lit.Body)
			b.local.Graphs[lit] = sub
			b.collectEdges(lit.Body, sub, fnName+".func", false)
			return false
		}
		return true
	})
}

func (b *pkgBuilder) flowEdges(g *cfg.Graph, fnName string) {
	b.binds = map[types.Object][]ClassID{}
	in := make([]heldSet, len(g.Blocks))
	for i := range in {
		in[i] = heldSet{}
	}
	work := []*cfg.Block{g.Entry}
	seenBlock := make([]bool, len(g.Blocks))
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		seenBlock[blk.Index] = true
		out := in[blk.Index].clone()
		for _, n := range blk.Nodes {
			b.edgeTransfer(n, out, fnName)
		}
		for _, s := range blk.Succs {
			if in[s.Index].union(out) || !seenBlock[s.Index] {
				if !contains(work, s) {
					work = append(work, s)
				}
			}
		}
	}
	exit := in[g.Exit.Index]
	for i := len(g.Defers) - 1; i >= 0; i-- {
		b.edgeCall(g.Defers[i].Call, exit, fnName)
	}
}

func (b *pkgBuilder) edgeTransfer(n ast.Node, held heldSet, fnName string) {
	switch n.(type) {
	case *ast.DeferStmt, *ast.GoStmt:
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.FuncLit, *ast.DeferStmt, *ast.GoStmt:
			return false
		case *ast.AssignStmt:
			b.bindUnlocks(c)
		case *ast.CallExpr:
			b.edgeCall(c, held, fnName)
		}
		return true
	})
}

func (b *pkgBuilder) edgeCall(call *ast.CallExpr, held heldSet, fnName string) {
	if b.releaseBound(call, held) {
		return
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		b.edgeTransfer(lit.Body, held, fnName)
		return
	}
	if op, ok := b.lockOp(call); ok {
		if op.acquire {
			for from, info := range held {
				b.addEdge(Edge{
					From: from, To: op.class,
					FromSite: info.site, AtSite: op.site, Fn: fnName, Owner: b.pkg.Path(),
					Path: []string{
						fnName + " " + info.how,
						fnName + " locks " + op.class.Short() + " at " + op.site.String(),
					},
				})
			}
			if _, have := held[op.class]; !have {
				held[op.class] = heldInfo{site: op.site, how: "locks " + op.class.Short() + " at " + op.site.String()}
			}
		} else {
			delete(held, op.class)
		}
		return
	}
	fn := b.callee(call)
	if fn == nil {
		return
	}
	sum := b.lookup(fn.FullName())
	if sum == nil {
		return
	}
	site := b.site(call.Pos())
	for _, acq := range sum.Acquires {
		for from, info := range held {
			path := []string{
				fnName + " " + info.how,
				fnName + " calls " + fn.FullName() + " at " + site.String(),
				fn.FullName() + " acquires " + acq.Class.Short() + " at " + acq.Site.String(),
			}
			for _, v := range acq.Via {
				path = append(path, "  via "+v)
			}
			b.addEdge(Edge{
				From: from, To: acq.Class,
				FromSite: info.site, AtSite: site, Fn: fnName, Owner: b.pkg.Path(),
				Path: path,
			})
		}
	}
	for _, class := range sum.HeldAtExit {
		if _, have := held[class]; !have {
			held[class] = heldInfo{site: site, how: "calls " + fn.FullName() + " at " + site.String() + " which returns holding " + class.Short()}
		}
	}
}

func (b *pkgBuilder) addEdge(e Edge) {
	// The class owner's own package is allowed same-class nesting: its
	// internal hand-over-hand and condvar patterns (sched's runStep,
	// name-ordered relation batches) are the documented protocols the
	// hierarchy builds on, pinned by the repo's race tests instead.
	if e.From == e.To && e.From.OwnerPkg() == b.pkg.Path() {
		return
	}
	key := string(e.From) + "->" + string(e.To) + "@" + e.AtSite.String()
	if b.edgeSeen[key] {
		return
	}
	b.edgeSeen[key] = true
	b.edges = append(b.edges, e)
}

// ---- goroutine-lifecycle shape bits ----

func (b *pkgBuilder) shapeBits(fd *ast.FuncDecl, fs *FuncSummary) {
	fs.Joins = BodyJoins(b.info, fd.Body)
	fs.ClosesChan = BodyClosesChan(fd.Body)
	fs.ChannelDriven = BodyChannelDriven(fd.Body)
	fs.UnstoppableLoop = BodyHasUnstoppableLoop(fd.Body)
	fs.HasLoop = BodyHasLoop(fd.Body)
	fs.WaitsOnChan = BodyWaitsOnChan(b.info, fd.Body)
	fs.RefsCtx = BodyRefsCtx(b.info, fd.Body)
}

// BodyHasLoop reports whether the body contains any for/range loop
// (outside nested function literals).
func BodyHasLoop(body ast.Node) bool {
	found := false
	inspectShallow(body, func(n ast.Node) {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			found = true
		}
	})
	return found
}

// BodyWaitsOnChan reports whether the body contains a select statement,
// a channel receive, or a range over a channel at any depth (outside
// nested function literals) — the shapes through which close() or a
// send can end the goroutine's wait.
func BodyWaitsOnChan(info *types.Info, body ast.Node) bool {
	found := false
	inspectShallow(body, func(n ast.Node) {
		switch x := n.(type) {
		case *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[x.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		}
	})
	return found
}

// BodyRefsCtx reports whether the body references any context.Context
// value (outside nested function literals).
func BodyRefsCtx(info *types.Info, body ast.Node) bool {
	found := false
	inspectShallow(body, func(n ast.Node) {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return
		}
		obj := info.Uses[id]
		if obj == nil {
			return
		}
		if v, ok := obj.(*types.Var); ok && isContextType(v.Type()) {
			found = true
		}
	})
	return found
}

func isContextType(t types.Type) bool {
	n, _ := t.(*types.Named)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// BodyJoins reports whether the body calls Done() on a sync.WaitGroup
// (outside nested function literals).
func BodyJoins(info *types.Info, body ast.Node) bool {
	found := false
	inspectShallow(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Done" {
			return
		}
		if tv, ok := info.Types[sel.X]; ok && isWaitGroup(tv.Type) {
			found = true
		}
	})
	return found
}

func isWaitGroup(t types.Type) bool {
	n := namedOf(t)
	return n != nil && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync" && n.Obj().Name() == "WaitGroup"
}

// BodyClosesChan reports whether the body closes a channel (outside
// nested function literals) — the completion-signal shape.
func BodyClosesChan(body ast.Node) bool {
	found := false
	inspectShallow(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "close" {
			found = true
		}
	})
	return found
}

// BodyChannelDriven reports whether the body is a loop-free watcher:
// no for/range anywhere, and at least one channel receive or select.
func BodyChannelDriven(body ast.Node) bool {
	hasLoop, hasRecv := false, false
	inspectShallow(body, func(n ast.Node) {
		switch x := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			hasLoop = true
		case *ast.SelectStmt:
			hasRecv = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				hasRecv = true
			}
		}
	})
	return !hasLoop && hasRecv
}

// BodyHasUnstoppableLoop reports whether the body contains a
// condition-less for loop with no way out: no select, no channel
// receive, no return, no break/goto, no panic inside it.
func BodyHasUnstoppableLoop(body ast.Node) bool {
	found := false
	inspectShallow(body, func(n ast.Node) {
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil {
			return
		}
		escapes := false
		inspectShallow(loop.Body, func(in ast.Node) {
			switch x := in.(type) {
			case *ast.SelectStmt, *ast.ReturnStmt:
				escapes = true
			case *ast.UnaryExpr:
				if x.Op == token.ARROW {
					escapes = true
				}
			case *ast.BranchStmt:
				if x.Tok == token.BREAK || x.Tok == token.GOTO {
					escapes = true
				}
			case *ast.CallExpr:
				if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "panic" {
					escapes = true
				}
			}
		})
		if !escapes {
			found = true
		}
	})
	return found
}

// inspectShallow walks n without descending into nested function
// literals.
func inspectShallow(n ast.Node, fn func(ast.Node)) {
	ast.Inspect(n, func(c ast.Node) bool {
		if _, ok := c.(*ast.FuncLit); ok && c != n {
			return false
		}
		if c != nil {
			fn(c)
		}
		return true
	})
}

// ---- pooled-batch wrapper bits ----

func (b *pkgBuilder) batchBits(fd *ast.FuncDecl, fs *FuncSummary) {
	// ReturnsBatch: returns GetBatch() directly, or a variable assigned
	// from it.
	var fromGet []types.Object
	inspectShallow(fd.Body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 1 {
			return
		}
		if call, ok := as.Rhs[0].(*ast.CallExpr); ok && b.isBatchSource(call) {
			if id, ok := as.Lhs[0].(*ast.Ident); ok {
				if obj := b.objOf(id); obj != nil {
					fromGet = append(fromGet, obj)
				}
			}
		}
	})
	inspectShallow(fd.Body, func(n ast.Node) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return
		}
		for _, res := range ret.Results {
			if call, ok := ast.Unparen(res).(*ast.CallExpr); ok && b.isBatchSource(call) {
				fs.ReturnsBatch = true
			}
			if id, ok := ast.Unparen(res).(*ast.Ident); ok {
				obj := b.objOf(id)
				for _, have := range fromGet {
					if have == obj {
						fs.ReturnsBatch = true
					}
				}
			}
		}
	})

	// RecyclesParam: a parameter reaching PutBatch/RecycleChunk (or a
	// wrapper's recycling parameter) on some path.
	params := map[types.Object]int{}
	idx := 0
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if obj := b.info.Defs[name]; obj != nil {
					params[obj] = idx
				}
				idx++
			}
			if len(field.Names) == 0 {
				idx++
			}
		}
	}
	if len(params) == 0 {
		return
	}
	seen := map[int]bool{}
	inspectShallow(fd.Body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		for argIdx, arg := range call.Args {
			id, ok := ast.Unparen(arg).(*ast.Ident)
			if !ok {
				continue
			}
			pidx, isParam := params[b.objOf(id)]
			if !isParam {
				continue
			}
			if b.isBatchSink(call, argIdx) && !seen[pidx] {
				seen[pidx] = true
				fs.RecyclesParam = append(fs.RecyclesParam, pidx)
			}
		}
	})
	sort.Ints(fs.RecyclesParam)
}

// isBatchSource reports a call that hands out a pooled batch: the
// engine's GetBatch or a wrapper summarized as returning one.
func (b *pkgBuilder) isBatchSource(call *ast.CallExpr) bool {
	fn := b.callee(call)
	if fn == nil {
		return false
	}
	if fn.Name() == "GetBatch" && pkgPathHasSuffix(fn.Pkg(), "internal/engine") {
		return true
	}
	sum := b.lookup(fn.FullName())
	return sum != nil && sum.ReturnsBatch
}

// isBatchSink reports a call that recycles the given argument index:
// the engine's PutBatch/RecycleChunk (any position) or a wrapper whose
// summary recycles that parameter.
func (b *pkgBuilder) isBatchSink(call *ast.CallExpr, argIdx int) bool {
	fn := b.callee(call)
	if fn == nil {
		return false
	}
	if (fn.Name() == "PutBatch" || fn.Name() == "RecycleChunk") && pkgPathHasSuffix(fn.Pkg(), "internal/engine") {
		return true
	}
	sum := b.lookup(fn.FullName())
	if sum == nil {
		return false
	}
	for _, pidx := range sum.RecyclesParam {
		if pidx == argIdx {
			return true
		}
	}
	return false
}

func pkgPathHasSuffix(pkg *types.Package, suffix string) bool {
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}
