// Package analysis is a minimal, dependency-free take on the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// type-checked package and reports Diagnostics through its Pass. The
// repo cannot vendor x/tools, so amnesialint carries just the slice of
// the API its analyzers need; the shapes match upstream so the
// analyzers could migrate to the real framework wholesale.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore comments. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph invariant statement shown by `amnesialint help`.
	Doc string
	// Run inspects the package and reports findings via pass.Reportf.
	Run func(*Pass) error
}

// A Pass hands one type-checked package to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// A Diagnostic is one finding, positioned at Pos.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Analyzer: p.Analyzer.Name, Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos lies in a _test.go file. The
// invariants amnesialint enforces are production-path rules; tests get
// to break them (constructing torn WALs, comparing sentinels for
// identity, using context.Background freely).
func (p *Pass) InTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// A Finding is a Diagnostic resolved to a printable position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// ignoreRe matches an audited suppression: //lint:ignore <analyzers> <reason>.
// <analyzers> is a comma-separated list of analyzer names or "all"; the
// reason is mandatory — an unexplained suppression is itself reported.
var ignoreRe = regexp.MustCompile(`^//\s*lint:ignore\s+(\S+)\s*(.*)$`)

type suppression struct {
	analyzers string // comma-separated names, or "all"
	reason    string
	line      int // the comment's own line; it covers this line and the next
	pos       token.Pos
}

// Run applies every analyzer to one type-checked package and returns
// the surviving findings, sorted by position. Suppression comments are
// honoured here so every entry point (go vet protocol, standalone
// driver, the linttest harness) filters identically.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Finding, error) {
	sups := collectSuppressions(fset, files)

	var findings []Finding
	add := func(d Diagnostic) {
		pos := fset.Position(d.Pos)
		for _, s := range sups {
			if fset.Position(s.pos).Filename != pos.Filename {
				continue
			}
			if pos.Line != s.line && pos.Line != s.line+1 {
				continue
			}
			if matchesAnalyzer(s.analyzers, d.Analyzer) {
				return
			}
		}
		findings = append(findings, Finding{Analyzer: d.Analyzer, Pos: pos, Message: d.Message})
	}

	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			report:    add,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
	}

	// A suppression without a reason defeats the audit trail; flag it
	// unconditionally (it cannot suppress itself).
	for _, s := range sups {
		if s.reason == "" {
			findings = append(findings, Finding{
				Analyzer: "suppress",
				Pos:      fset.Position(s.pos),
				Message:  "lint:ignore needs a reason: //lint:ignore <analyzer> <why this is safe>",
			})
		}
	}

	sortFindings(findings)
	return findings, nil
}

func matchesAnalyzer(list, name string) bool {
	for _, n := range strings.Split(list, ",") {
		if n == name || n == "all" {
			return true
		}
	}
	return false
}

func collectSuppressions(fset *token.FileSet, files []*ast.File) []suppression {
	var out []suppression
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				out = append(out, suppression{
					analyzers: m[1],
					reason:    strings.TrimSpace(m[2]),
					line:      fset.Position(c.Pos()).Line,
					pos:       c.Pos(),
				})
			}
		}
	}
	return out
}

func sortFindings(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool { return less(fs[i], fs[j]) })
}

func less(a, b Finding) bool {
	if a.Pos.Filename != b.Pos.Filename {
		return a.Pos.Filename < b.Pos.Filename
	}
	if a.Pos.Line != b.Pos.Line {
		return a.Pos.Line < b.Pos.Line
	}
	if a.Pos.Column != b.Pos.Column {
		return a.Pos.Column < b.Pos.Column
	}
	return a.Analyzer < b.Analyzer
}
