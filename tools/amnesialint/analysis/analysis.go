// Package analysis is a minimal, dependency-free take on the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// type-checked package and reports Diagnostics through its Pass. The
// repo cannot vendor x/tools, so amnesialint carries just the slice of
// the API its analyzers need; the shapes match upstream so the
// analyzers could migrate to the real framework wholesale.
//
// Beyond the per-package shape, a Session threads cross-package state:
// every analyzed package contributes a summary.Package (lock classes
// acquired, lock-graph edges, goroutine/batch shape bits) to a shared
// summary.Program, and analyzers with a Finalize hook get a
// whole-program pass once every package has run — that is where
// lockorder's cycle detection lives. Under `go vet -vettool` the same
// flow happens per compilation unit, with dependency summaries read
// back from .vetx facts files.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
	"sync"

	"amnesiadb/tools/amnesialint/analysis/summary"
)

// An Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore comments. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph invariant statement shown by `amnesialint help`.
	Doc string
	// Run inspects the package and reports findings via pass.Reportf.
	Run func(*Pass) error
	// Finalize, if set, runs once after every package of the session has
	// been summarized — the whole-program hook. Under go vet it runs per
	// unit over that unit plus its dependencies' facts; OwnPkgs tells the
	// hook which packages this process owns so diagnostics are not
	// duplicated across units.
	Finalize func(*FinalPass) error
}

// A Pass hands one type-checked package to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Sum is the current package's flow summary; Local carries its CFGs.
	Sum   *summary.Package
	Local *summary.Local
	// Prog holds every dependency summary visible to this run (plus, in
	// standalone mode, all previously analyzed packages).
	Prog *summary.Program

	report func(Diagnostic)
}

// A FinalPass hands the whole-program state to an Analyzer's Finalize.
type FinalPass struct {
	Analyzer *Analyzer
	Prog     *summary.Program
	// OwnPkgs is the set of import paths analyzed by this session (as
	// opposed to loaded from dependency facts). Whole-program hooks
	// attribute each diagnostic to exactly one owning package so `go vet`
	// units do not multiply-report shared findings.
	OwnPkgs map[string]bool

	report func(Diagnostic)
}

// A Diagnostic is one finding, positioned at Pos.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
	// Site carries the position for whole-program diagnostics whose
	// token.Pos is foreign (deserialized from facts); when File is
	// non-empty it wins over Pos.
	Site summary.Site
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Analyzer: p.Analyzer.Name, Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ReportSite records a whole-program finding at a serialized site.
func (p *FinalPass) ReportSite(site summary.Site, format string, args ...any) {
	p.report(Diagnostic{Analyzer: p.Analyzer.Name, Site: site, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos lies in a _test.go file. The
// invariants amnesialint enforces are production-path rules; tests get
// to break them (constructing torn WALs, comparing sentinels for
// identity, using context.Background freely).
func (p *Pass) InTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// A Finding is a Diagnostic resolved to a printable position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// ignoreRe matches an audited suppression: //lint:ignore <analyzers> <reason>.
// <analyzers> is a comma-separated list of analyzer names or "all"; the
// reason is mandatory — an unexplained suppression is itself reported.
var ignoreRe = regexp.MustCompile(`^//\s*lint:ignore\s+(\S+)\s*(.*)$`)

// A Suppression is one //lint:ignore site. It covers its own line and
// the next. Exported so the -audit mode can inventory the tree's
// suppressions with the same parser the filter uses.
type Suppression struct {
	File      string
	Line      int
	Analyzers string // comma-separated names, or "all"
	Reason    string

	pos token.Pos
}

// ScanSuppressions extracts every suppression comment from the files.
func ScanSuppressions(fset *token.FileSet, files []*ast.File) []Suppression {
	var out []Suppression
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				out = append(out, Suppression{
					File:      pos.Filename,
					Line:      pos.Line,
					Analyzers: m[1],
					Reason:    strings.TrimSpace(m[2]),
					pos:       c.Pos(),
				})
			}
		}
	}
	return out
}

func matchesAnalyzer(list, name string) bool {
	for _, n := range strings.Split(list, ",") {
		if n == name || n == "all" {
			return true
		}
	}
	return false
}

// A Session runs the suite over many packages and accumulates the
// whole-program state. Safe for concurrent RunPackage calls as long as
// the caller respects dependency order (a package runs only after its
// in-module dependencies have).
type Session struct {
	Analyzers []*Analyzer
	Prog      *summary.Program

	mu       sync.Mutex
	findings []Finding
	sups     []Suppression
	ownPkgs  map[string]bool
}

func NewSession(analyzers []*Analyzer) *Session {
	return &Session{
		Analyzers: analyzers,
		Prog:      summary.NewProgram(),
		ownPkgs:   map[string]bool{},
	}
}

// AddFacts registers a dependency package's deserialized summaries.
func (s *Session) AddFacts(pkg *summary.Package) {
	if pkg != nil {
		s.Prog.Add(pkg)
	}
}

// Summarize computes and registers a package's summary without running
// the analyzers — the VetxOnly path, and the dependency pre-pass of the
// standalone driver.
func (s *Session) Summarize(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) *summary.Package {
	sum, _ := summary.Build(fset, files, pkg, info, s.Prog)
	s.Prog.Add(sum)
	return sum
}

// RunPackage summarizes one type-checked package, runs every analyzer's
// Run over it, and folds surviving findings into the session. Returns
// the package summary (callers serialize it as vet facts).
func (s *Session) RunPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) (*summary.Package, error) {
	sum, local := summary.Build(fset, files, pkg, info, s.Prog)

	sups := ScanSuppressions(fset, files)
	var pkgFindings []Finding
	add := func(d Diagnostic) {
		pos := fset.Position(d.Pos)
		if suppressed(sups, pos.Filename, pos.Line, d.Analyzer) {
			return
		}
		pkgFindings = append(pkgFindings, Finding{Analyzer: d.Analyzer, Pos: pos, Message: d.Message})
	}

	for _, a := range s.Analyzers {
		if a.Run == nil {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Sum:       sum,
			Local:     local,
			Prog:      s.Prog,
			report:    add,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
	}

	// A suppression without a reason defeats the audit trail; flag it
	// unconditionally (it cannot suppress itself).
	for _, sp := range sups {
		if sp.Reason == "" {
			pkgFindings = append(pkgFindings, Finding{
				Analyzer: "suppress",
				Pos:      fset.Position(sp.pos),
				Message:  "lint:ignore needs a reason: //lint:ignore <analyzer> <why this is safe>",
			})
		}
	}

	s.mu.Lock()
	s.findings = append(s.findings, pkgFindings...)
	s.sups = append(s.sups, sups...)
	s.ownPkgs[pkg.Path()] = true
	s.mu.Unlock()

	// Publish the summary only after analysis so a package never
	// consumes its own half-built state.
	s.Prog.Add(sum)
	return sum, nil
}

// Finalize runs every analyzer's whole-program hook and returns all
// session findings, sorted. Finalize diagnostics are filtered against
// the union of suppressions seen across the session's packages.
func (s *Session) Finalize() ([]Finding, error) {
	s.mu.Lock()
	sups := append([]Suppression(nil), s.sups...)
	own := make(map[string]bool, len(s.ownPkgs))
	for k, v := range s.ownPkgs {
		own[k] = v
	}
	s.mu.Unlock()

	var finals []Finding
	add := func(d Diagnostic) {
		pos := token.Position{Filename: d.Site.File, Line: d.Site.Line}
		if d.Site.File == "" {
			pos = token.Position{}
		}
		if suppressed(sups, pos.Filename, pos.Line, d.Analyzer) {
			return
		}
		finals = append(finals, Finding{Analyzer: d.Analyzer, Pos: pos, Message: d.Message})
	}
	for _, a := range s.Analyzers {
		if a.Finalize == nil {
			continue
		}
		fp := &FinalPass{Analyzer: a, Prog: s.Prog, OwnPkgs: own, report: add}
		if err := a.Finalize(fp); err != nil {
			return nil, fmt.Errorf("%s (finalize): %v", a.Name, err)
		}
	}

	s.mu.Lock()
	s.findings = append(s.findings, finals...)
	out := append([]Finding(nil), s.findings...)
	s.mu.Unlock()
	sortFindings(out)
	return out, nil
}

// Suppressions returns every //lint:ignore site seen across the
// session's packages, in deterministic order.
func (s *Session) Suppressions() []Suppression {
	s.mu.Lock()
	out := append([]Suppression(nil), s.sups...)
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out
}

func suppressed(sups []Suppression, file string, line int, analyzer string) bool {
	for _, sp := range sups {
		if sp.File != file {
			continue
		}
		if line != sp.Line && line != sp.Line+1 {
			continue
		}
		if matchesAnalyzer(sp.Analyzers, analyzer) {
			return true
		}
	}
	return false
}

// Run applies analyzers to one package in a throwaway session — the
// single-package convenience used by tests that do not need
// whole-program state. Finalize hooks still run, over just this
// package.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Finding, error) {
	s := NewSession(analyzers)
	if _, err := s.RunPackage(fset, files, pkg, info); err != nil {
		return nil, err
	}
	return s.Finalize()
}

func sortFindings(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool { return less(fs[i], fs[j]) })
}

func less(a, b Finding) bool {
	if a.Pos.Filename != b.Pos.Filename {
		return a.Pos.Filename < b.Pos.Filename
	}
	if a.Pos.Line != b.Pos.Line {
		return a.Pos.Line < b.Pos.Line
	}
	if a.Pos.Column != b.Pos.Column {
		return a.Pos.Column < b.Pos.Column
	}
	return a.Analyzer < b.Analyzer
}
