// Package cfg builds a lightweight per-function control-flow graph for
// amnesialint's flow-sensitive analyzers. It is deliberately smaller
// than golang.org/x/tools/go/cfg — blocks hold raw ast.Nodes and the
// builder covers exactly the shapes the repo's invariants depend on:
// if/else, for and range loops, switch/type-switch/select,
// short-circuit && and || (condition operands land in distinct blocks,
// so a lock taken in the left operand is visibly held in the right),
// labeled break/continue, goto, fallthrough, panic, and defer (deferred
// statements are collected in execution order and replayed LIFO at the
// Exit block by consumers).
//
// The graph over-approximates: every path in the program corresponds
// to a path in the graph, but not vice versa. That is the right
// direction for the analyses built on it — may-hold lock sets and
// may-be-recycled batch states err toward reporting.
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// A Block is one straight-line run of statements: control enters at the
// top, every node executes in order, and control leaves through one of
// Succs.
type Block struct {
	Index int
	// Nodes are the statements (and decomposed short-circuit condition
	// operands) executed in this block, in order.
	Nodes []ast.Node
	Succs []*Block
	// Kind is a debugging label ("entry", "exit", "if.then", "for.body",
	// ...); analyses must not depend on it.
	Kind string
}

func (b *Block) addSucc(s *Block) {
	if s == nil {
		return
	}
	for _, have := range b.Succs {
		if have == s {
			return
		}
	}
	b.Succs = append(b.Succs, s)
}

// A Graph is the CFG of one function body. Exit is the single synthetic
// exit block: returns, panics and falling off the end all lead there.
// Defers lists every defer statement encountered, in execution
// (encounter) order; consumers model function exit by replaying it in
// reverse.
type Graph struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
	Defers []*ast.DeferStmt
}

// builder carries loop/label context during construction.
type builder struct {
	g *Graph
	// break/continue targets for the innermost enclosing constructs.
	breakTarget, continueTarget *Block
	// labeled targets: label name -> (break, continue) blocks.
	labelBreak    map[string]*Block
	labelContinue map[string]*Block
	// goto handling: label name -> first block of the labeled statement,
	// plus unresolved jumps patched once the label is seen.
	labelBlock map[string]*Block
	gotoFixups map[string][]*Block
	// fallTarget is the next case body, while building a switch clause.
	fallTarget *Block
}

// New builds the CFG for one function body. A nil body yields a trivial
// entry->exit graph.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	b := &builder{
		g:             g,
		labelBreak:    map[string]*Block{},
		labelContinue: map[string]*Block{},
		labelBlock:    map[string]*Block{},
		gotoFixups:    map[string][]*Block{},
	}
	g.Entry = b.newBlock("entry")
	g.Exit = b.newBlock("exit")
	cur := g.Entry
	if body != nil {
		cur = b.stmts(cur, body.List)
	}
	if cur != nil {
		cur.addSucc(g.Exit)
	}
	// Unresolved gotos (labels later in the source were patched as they
	// appeared; a label that never appears is a compile error upstream,
	// but stay robust): route to exit.
	for _, pend := range b.gotoFixups {
		for _, blk := range pend {
			blk.addSucc(g.Exit)
		}
	}
	return g
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// stmts threads the statement list through cur; a nil return means the
// list ended in a terminating statement (return, goto, panic, ...).
func (b *builder) stmts(cur *Block, list []ast.Stmt) *Block {
	for _, s := range list {
		if cur == nil {
			// Dead code after a terminator still gets a block so its
			// nodes are visible to syntactic passes, but nothing flows in.
			cur = b.newBlock("dead")
		}
		cur = b.stmt(cur, s)
	}
	return cur
}

func (b *builder) stmt(cur *Block, s ast.Stmt) *Block {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmts(cur, s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		thenB := b.newBlock("if.then")
		var elseB *Block
		after := b.newBlock("if.after")
		if s.Else != nil {
			elseB = b.newBlock("if.else")
		} else {
			elseB = after
		}
		b.cond(cur, s.Cond, thenB, elseB)
		if out := b.stmts(thenB, s.Body.List); out != nil {
			out.addSucc(after)
		}
		if s.Else != nil {
			if out := b.stmt(elseB, s.Else); out != nil {
				out.addSucc(after)
			}
		}
		return after

	case *ast.ForStmt:
		return b.forStmt(cur, s, "")

	case *ast.RangeStmt:
		return b.rangeStmt(cur, s, "")

	case *ast.SwitchStmt:
		return b.switchStmt(cur, s, "")

	case *ast.TypeSwitchStmt:
		return b.typeSwitchStmt(cur, s, "")

	case *ast.SelectStmt:
		return b.selectStmt(cur, s, "")

	case *ast.LabeledStmt:
		// The labeled statement's first block is the goto target.
		head := b.newBlock("label." + s.Label.Name)
		cur.addSucc(head)
		b.labelBlock[s.Label.Name] = head
		for _, pend := range b.gotoFixups[s.Label.Name] {
			pend.addSucc(head)
		}
		delete(b.gotoFixups, s.Label.Name)
		switch inner := s.Stmt.(type) {
		case *ast.ForStmt:
			return b.forStmt(head, inner, s.Label.Name)
		case *ast.RangeStmt:
			return b.rangeStmt(head, inner, s.Label.Name)
		case *ast.SwitchStmt:
			return b.switchStmt(head, inner, s.Label.Name)
		case *ast.TypeSwitchStmt:
			return b.typeSwitchStmt(head, inner, s.Label.Name)
		case *ast.SelectStmt:
			return b.selectStmt(head, inner, s.Label.Name)
		default:
			return b.stmt(head, s.Stmt)
		}

	case *ast.BranchStmt:
		cur.Nodes = append(cur.Nodes, s)
		switch s.Tok {
		case token.BREAK:
			t := b.breakTarget
			if s.Label != nil {
				t = b.labelBreak[s.Label.Name]
			}
			cur.addSucc(t)
			return nil
		case token.CONTINUE:
			t := b.continueTarget
			if s.Label != nil {
				t = b.labelContinue[s.Label.Name]
			}
			cur.addSucc(t)
			return nil
		case token.GOTO:
			if s.Label != nil {
				if t, ok := b.labelBlock[s.Label.Name]; ok {
					cur.addSucc(t)
				} else {
					b.gotoFixups[s.Label.Name] = append(b.gotoFixups[s.Label.Name], cur)
				}
			}
			return nil
		case token.FALLTHROUGH:
			cur.addSucc(b.fallTarget)
			return nil
		}
		return cur

	case *ast.ReturnStmt:
		cur.Nodes = append(cur.Nodes, s)
		cur.addSucc(b.g.Exit)
		return nil

	case *ast.DeferStmt:
		cur.Nodes = append(cur.Nodes, s)
		b.g.Defers = append(b.g.Defers, s)
		return cur

	case *ast.ExprStmt:
		cur.Nodes = append(cur.Nodes, s)
		if isPanicCall(s.X) {
			cur.addSucc(b.g.Exit)
			return nil
		}
		return cur

	default:
		// Assignments, sends, incdec, go, decl, empty: straight-line.
		cur.Nodes = append(cur.Nodes, s)
		return cur
	}
}

// cond wires a condition expression from cur to the two targets,
// decomposing short-circuit operators so each operand evaluates in its
// own block: in `a() && b()`, b's block is reachable only through a's
// true edge.
func (b *builder) cond(cur *Block, e ast.Expr, t, f *Block) {
	switch x := ast.Unparen(e).(type) {
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND:
			mid := b.newBlock("cond.and")
			b.cond(cur, x.X, mid, f)
			b.cond(mid, x.Y, t, f)
			return
		case token.LOR:
			mid := b.newBlock("cond.or")
			b.cond(cur, x.X, t, mid)
			b.cond(mid, x.Y, t, f)
			return
		}
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			b.cond(cur, x.X, f, t)
			return
		}
	}
	cur.Nodes = append(cur.Nodes, e)
	cur.addSucc(t)
	cur.addSucc(f)
}

func (b *builder) forStmt(cur *Block, s *ast.ForStmt, label string) *Block {
	if s.Init != nil {
		cur.Nodes = append(cur.Nodes, s.Init)
	}
	head := b.newBlock("for.head")
	body := b.newBlock("for.body")
	post := b.newBlock("for.post")
	after := b.newBlock("for.after")
	cur.addSucc(head)
	if s.Cond != nil {
		b.cond(head, s.Cond, body, after)
	} else {
		head.addSucc(body) // for {}: only break/goto leave
	}
	out := b.inLoop(after, post, label, func() *Block {
		return b.stmts(body, s.Body.List)
	})
	if out != nil {
		out.addSucc(post)
	}
	if s.Post != nil {
		post.Nodes = append(post.Nodes, s.Post)
	}
	post.addSucc(head)
	return after
}

func (b *builder) rangeStmt(cur *Block, s *ast.RangeStmt, label string) *Block {
	head := b.newBlock("range.head")
	head.Nodes = append(head.Nodes, s.X)
	body := b.newBlock("range.body")
	after := b.newBlock("range.after")
	cur.addSucc(head)
	head.addSucc(body)
	head.addSucc(after) // empty range
	out := b.inLoop(after, head, label, func() *Block {
		return b.stmts(body, s.Body.List)
	})
	if out != nil {
		out.addSucc(head)
	}
	return after
}

// inLoop runs fn with break/continue targets installed (and the label's,
// when the loop is labeled).
func (b *builder) inLoop(brk, cont *Block, label string, fn func() *Block) *Block {
	savedB, savedC := b.breakTarget, b.continueTarget
	b.breakTarget, b.continueTarget = brk, cont
	if label != "" {
		b.labelBreak[label] = brk
		b.labelContinue[label] = cont
	}
	out := fn()
	b.breakTarget, b.continueTarget = savedB, savedC
	if label != "" {
		delete(b.labelBreak, label)
		delete(b.labelContinue, label)
	}
	return out
}

func (b *builder) switchStmt(cur *Block, s *ast.SwitchStmt, label string) *Block {
	if s.Init != nil {
		cur.Nodes = append(cur.Nodes, s.Init)
	}
	if s.Tag != nil {
		cur.Nodes = append(cur.Nodes, s.Tag)
	}
	return b.cases(cur, s.Body.List, label, true)
}

func (b *builder) typeSwitchStmt(cur *Block, s *ast.TypeSwitchStmt, label string) *Block {
	if s.Init != nil {
		cur.Nodes = append(cur.Nodes, s.Init)
	}
	cur.Nodes = append(cur.Nodes, s.Assign)
	return b.cases(cur, s.Body.List, label, false)
}

// cases wires switch/type-switch clauses: every clause is entered from
// the head, fallthrough (expression switches only) chains a clause body
// into the next clause's body, and a missing default adds a head->after
// edge.
func (b *builder) cases(head *Block, clauses []ast.Stmt, label string, allowFall bool) *Block {
	after := b.newBlock("switch.after")
	bodies := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		bodies[i] = b.newBlock("case")
		for _, e := range cc.List {
			bodies[i].Nodes = append(bodies[i].Nodes, e)
		}
		if cc.List == nil {
			hasDefault = true
		}
		head.addSucc(bodies[i])
	}
	if !hasDefault {
		head.addSucc(after)
	}
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		savedFall := b.fallTarget
		b.fallTarget = nil
		if allowFall && i+1 < len(clauses) {
			b.fallTarget = bodies[i+1]
		}
		out := b.inSwitch(after, label, func() *Block {
			return b.stmts(bodies[i], cc.Body)
		})
		b.fallTarget = savedFall
		if out != nil {
			out.addSucc(after)
		}
	}
	return after
}

func (b *builder) selectStmt(cur *Block, s *ast.SelectStmt, label string) *Block {
	after := b.newBlock("select.after")
	for _, c := range s.Body.List {
		comm := c.(*ast.CommClause)
		body := b.newBlock("select.case")
		if comm.Comm != nil {
			body.Nodes = append(body.Nodes, comm.Comm)
		}
		cur.addSucc(body)
		out := b.inSwitch(after, label, func() *Block {
			return b.stmts(body, comm.Body)
		})
		if out != nil {
			out.addSucc(after)
		}
	}
	if len(s.Body.List) == 0 {
		// select {} blocks forever; nothing reaches after.
		_ = after
	}
	return after
}

// inSwitch installs only the break target (continue passes through to
// the enclosing loop).
func (b *builder) inSwitch(brk *Block, label string, fn func() *Block) *Block {
	saved := b.breakTarget
	b.breakTarget = brk
	if label != "" {
		b.labelBreak[label] = brk
	}
	out := fn()
	b.breakTarget = saved
	if label != "" {
		delete(b.labelBreak, label)
	}
	return out
}

func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// Reachable reports whether dst is reachable from src (inclusive).
func (g *Graph) Reachable(src, dst *Block) bool {
	if src == dst {
		return true
	}
	seen := make([]bool, len(g.Blocks))
	stack := []*Block{src}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if b == dst {
			return true
		}
		if seen[b.Index] {
			continue
		}
		seen[b.Index] = true
		stack = append(stack, b.Succs...)
	}
	return false
}

// BlockOf returns the block whose Nodes contain n, or nil.
func (g *Graph) BlockOf(n ast.Node) *Block {
	for _, b := range g.Blocks {
		for _, have := range b.Nodes {
			if have == n {
				return b
			}
		}
	}
	return nil
}

// Dump renders the graph compactly for tests: one line per block with
// its kind, node kinds, and successor indices.
func (g *Graph) Dump() string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "b%d %s [", b.Index, b.Kind)
		for i, n := range b.Nodes {
			if i > 0 {
				sb.WriteString(" ")
			}
			sb.WriteString(nodeKind(n))
		}
		sb.WriteString("] ->")
		for _, s := range b.Succs {
			fmt.Fprintf(&sb, " b%d", s.Index)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func nodeKind(n ast.Node) string {
	s := fmt.Sprintf("%T", n)
	if i := strings.LastIndexByte(s, '.'); i >= 0 {
		s = s[i+1:]
	}
	return s
}
