package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// build parses a function body and returns its graph plus a lookup from
// marker-call name (`a()`, `b()`, ...) to the block containing it.
func build(t *testing.T, body string) (*Graph, map[string]*Block) {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	g := New(fd.Body)
	marks := map[string]*Block{}
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			ast.Inspect(n, func(c ast.Node) bool {
				call, ok := c.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok {
					marks[id.Name] = b
				}
				return true
			})
		}
	}
	return g, marks
}

// mustReach / mustNotReach assert path existence between marker blocks.
func mustReach(t *testing.T, g *Graph, marks map[string]*Block, from, to string) {
	t.Helper()
	if marks[from] == nil || marks[to] == nil {
		t.Fatalf("marker missing (%s=%v %s=%v)\n%s", from, marks[from], to, marks[to], g.Dump())
	}
	if !g.Reachable(marks[from], marks[to]) {
		t.Errorf("no path %s -> %s\n%s", from, to, g.Dump())
	}
}

func mustNotReach(t *testing.T, g *Graph, marks map[string]*Block, from, to string) {
	t.Helper()
	if marks[from] == nil || marks[to] == nil {
		t.Fatalf("marker missing (%s=%v %s=%v)\n%s", from, marks[from], to, marks[to], g.Dump())
	}
	if g.Reachable(marks[from], marks[to]) {
		t.Errorf("unexpected path %s -> %s\n%s", from, to, g.Dump())
	}
}

// nextMarks walks forward from a block, skipping empty join blocks, and
// returns the set of marker names in the first node-bearing blocks hit.
func nextMarks(b *Block) map[string]bool {
	out := map[string]bool{}
	seen := map[*Block]bool{b: true}
	var walk func(*Block)
	walk = func(cur *Block) {
		for _, s := range cur.Succs {
			if seen[s] {
				continue
			}
			seen[s] = true
			if len(s.Nodes) == 0 {
				walk(s)
				continue
			}
			for _, n := range s.Nodes {
				ast.Inspect(n, func(c ast.Node) bool {
					if call, ok := c.(*ast.CallExpr); ok {
						if id, ok := call.Fun.(*ast.Ident); ok {
							out[id.Name] = true
						}
					}
					return true
				})
			}
		}
	}
	walk(b)
	return out
}

func TestShortCircuitAnd(t *testing.T) {
	g, m := build(t, `
if a() && b() {
	then()
} else {
	els()
}
after()`)
	if m["a"] == m["b"] {
		t.Errorf("&& operands share a block; the right operand must be separately guarded\n%s", g.Dump())
	}
	mustReach(t, g, m, "a", "els") // a false: b never runs
	mustReach(t, g, m, "b", "then")
	mustReach(t, g, m, "b", "els")
	mustReach(t, g, m, "then", "after")
	mustReach(t, g, m, "els", "after")
	mustNotReach(t, g, m, "then", "els")
}

func TestShortCircuitOr(t *testing.T) {
	g, m := build(t, `
if a() || b() {
	then()
}
after()`)
	if m["a"] == m["b"] {
		t.Errorf("|| operands share a block\n%s", g.Dump())
	}
	mustReach(t, g, m, "a", "then") // a true: straight in
	mustReach(t, g, m, "b", "then")
	mustReach(t, g, m, "a", "after")
}

func TestLabeledBreak(t *testing.T) {
	g, m := build(t, `
outer:
for c1() {
	for c2() {
		if esc() {
			hit()
			break outer
		}
		inner()
	}
	mid()
}
after()`)
	mustReach(t, g, m, "hit", "after")
	// break outer jumps straight out: the very next statements after hit
	// are after(), not inner() or mid().
	next := nextMarks(m["hit"])
	if !next["after"] || next["inner"] || next["mid"] {
		t.Errorf("break outer should land on after, got %v\n%s", next, g.Dump())
	}
}

func TestLabeledContinue(t *testing.T) {
	g, m := build(t, `
outer:
for c1() {
	for c2() {
		if esc() {
			hit()
			continue outer
		}
		inner()
	}
	mid()
}
after()`)
	// continue outer re-tests the outer condition: c1 is next, not the
	// rest of the inner body and not mid.
	next := nextMarks(m["hit"])
	if !next["c1"] || next["inner"] || next["mid"] {
		t.Errorf("continue outer should land on c1, got %v\n%s", next, g.Dump())
	}
}

func TestGoto(t *testing.T) {
	g, m := build(t, `
a()
goto done
skipped()
done:
d()`)
	mustReach(t, g, m, "a", "d")
	next := nextMarks(m["a"])
	if !next["d"] || next["skipped"] {
		t.Errorf("goto done should land on d, got %v\n%s", next, g.Dump())
	}
	if g.Reachable(g.Entry, m["skipped"]) {
		t.Errorf("skipped() is unreachable over the goto\n%s", g.Dump())
	}
}

func TestGotoBackward(t *testing.T) {
	g, m := build(t, `
top:
a()
if c() {
	goto top
}
after()`)
	mustReach(t, g, m, "c", "a") // back edge through the label
	mustReach(t, g, m, "c", "after")
}

func TestRangeLoop(t *testing.T) {
	g, m := build(t, `
pre()
for range xs() {
	body()
}
after()`)
	mustReach(t, g, m, "pre", "body")
	mustReach(t, g, m, "body", "body") // back edge
	mustReach(t, g, m, "pre", "after") // zero-iteration path
	mustReach(t, g, m, "body", "after")
}

func TestDeferOrdering(t *testing.T) {
	g, m := build(t, `
defer d1()
if c() {
	defer d2()
}
for c2() {
	defer d3()
}
last()`)
	_ = m
	var names []string
	for _, d := range g.Defers {
		call := d.Call
		if id, ok := call.Fun.(*ast.Ident); ok {
			names = append(names, id.Name)
		}
	}
	// Encounter order; consumers replay it in reverse at Exit.
	want := []string{"d1", "d2", "d3"}
	if len(names) != len(want) {
		t.Fatalf("defers = %v, want %v\n%s", names, want, g.Dump())
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("defers = %v, want %v", names, want)
		}
	}
}

func TestPanicEndsPath(t *testing.T) {
	g, m := build(t, `
a()
panic("boom")
unreach()`)
	if g.Reachable(g.Entry, m["unreach"]) {
		t.Errorf("statements after panic must be unreachable\n%s", g.Dump())
	}
	if !g.Reachable(m["a"], g.Exit) {
		t.Errorf("panic must lead to exit\n%s", g.Dump())
	}
}

func TestPanicRecover(t *testing.T) {
	g, _ := build(t, `
defer func() {
	if recover() != nil {
		handled()
	}
}()
a()
panic("boom")`)
	if len(g.Defers) != 1 {
		t.Fatalf("recover defer not collected\n%s", g.Dump())
	}
}

func TestFallthrough(t *testing.T) {
	g, m := build(t, `
switch v() {
case 1:
	a()
	fallthrough
case 2:
	b()
case 3:
	c()
}
after()`)
	next := nextMarks(m["a"])
	if !next["b"] || next["c"] || next["after"] {
		t.Errorf("fallthrough from a should land on b only, got %v\n%s", next, g.Dump())
	}
	mustNotReach(t, g, m, "b", "c")
	mustReach(t, g, m, "c", "after")
}

func TestSelectBranches(t *testing.T) {
	g, m := build(t, `
select {
case <-ch1():
	a()
case <-ch2():
	b()
}
after()`)
	mustReach(t, g, m, "a", "after")
	mustReach(t, g, m, "b", "after")
	mustNotReach(t, g, m, "a", "b")
}

func TestBlockOf(t *testing.T) {
	g, m := build(t, `
a()
b()`)
	if m["a"] == nil {
		t.Fatal("marker a missing")
	}
	for _, n := range m["a"].Nodes {
		if g.BlockOf(n) != m["a"] {
			t.Errorf("BlockOf disagrees with containing block")
		}
	}
}
