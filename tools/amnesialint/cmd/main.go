// Command amnesialint runs the repo's invariant analyzers. It speaks
// two dialects:
//
//   - the `go vet -vettool` protocol (-V=full, -flags, unit .cfg files),
//     so CI runs it as `go vet -vettool=$(pwd)/amnesialint ./...` with
//     go's per-package caching;
//   - a standalone mode over package patterns for local use:
//     `go run ./tools/amnesialint/cmd ./...`.
//
// Exit status is 1 when any finding survives suppression, 0 otherwise.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"amnesiadb/tools/amnesialint/analysis"
	"amnesiadb/tools/amnesialint/analyzers"
	"amnesiadb/tools/amnesialint/internal/load"
)

func main() {
	args := os.Args[1:]
	switch {
	case len(args) >= 1 && strings.HasPrefix(args[0], "-V"):
		printVersion()
	case len(args) >= 1 && args[0] == "-flags":
		// The build system asks which flags we support before it
		// forwards user flags; amnesialint has none.
		fmt.Println("[]")
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		runVetUnit(args[0])
	default:
		runStandalone(args)
	}
}

// printVersion implements the -V=full handshake: the go command hashes
// the tool binary into its build cache key so analysis reruns only when
// the tool or the package changes.
func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		fatal(err)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fatal(err)
	}
	f.Close()
	fmt.Printf("%s version devel comments-go-here buildID=%x\n", exe, h.Sum(nil))
	os.Exit(0)
}

// vetConfig is the JSON compilation-unit description `go vet` hands a
// vettool (the unitchecker *.cfg contract).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runVetUnit(cfgFile string) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fatal(err)
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		fatal(fmt.Errorf("cannot decode vet config %s: %v", cfgFile, err))
	}
	// Dependencies are analyzed only for facts; amnesialint keeps no
	// facts, so just satisfy the protocol's output-file contract.
	if cfg.VetxOnly {
		writeVetx(cfg)
		os.Exit(0)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx(cfg)
				os.Exit(0)
			}
			fatal(err)
		}
		files = append(files, f)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	conf := &types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			path, ok := cfg.ImportMap[importPath]
			if !ok {
				return nil, fmt.Errorf("can't resolve import %q", importPath)
			}
			return imp.Import(path)
		}),
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx(cfg)
			os.Exit(0)
		}
		fatal(err)
	}

	findings, err := analysis.Run(fset, files, pkg, info, analyzers.All())
	if err != nil {
		fatal(err)
	}
	writeVetx(cfg)
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
	os.Exit(0)
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func writeVetx(cfg *vetConfig) {
	if cfg.VetxOutput == "" {
		return
	}
	if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
		fatal(err)
	}
}

// runStandalone analyzes package patterns (default ./...) using
// `go list` metadata, for local `make lint` runs and tests.
func runStandalone(patterns []string) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := Check(".", patterns...)
	if err != nil {
		fatal(err)
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// Check runs the full suite over the patterns rooted at dir and returns
// the surviving findings. Exposed for the tree-cleanliness test.
func Check(dir string, patterns ...string) ([]analysis.Finding, error) {
	units, targets, err := load.List(dir, patterns...)
	if err != nil {
		return nil, err
	}
	checker := load.NewChecker(units)
	var findings []analysis.Finding
	for _, u := range targets {
		checked, err := checker.Check(u)
		if err != nil {
			return nil, err
		}
		fs, err := analysis.Run(checked.Fset, checked.Files, checked.Pkg, checked.Info, analyzers.All())
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	return findings, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "amnesialint:", err)
	os.Exit(2)
}
