// Command amnesialint runs the repo's invariant analyzers. It speaks
// two dialects:
//
//   - the `go vet -vettool` protocol (-V=full, -flags, unit .cfg files),
//     so CI runs it as `go vet -vettool=$(pwd)/amnesialint ./...` with
//     go's per-package caching; cross-package summaries travel as the
//     unit's .vetx facts file;
//   - a standalone mode over package patterns for local use:
//     `go run ./tools/amnesialint/cmd ./...`. Packages are analyzed in
//     parallel, dependency-ordered, with summaries shared in-process.
//
// Standalone flags:
//
//	-json           emit findings as a JSON array on stdout
//	-audit          print the //lint:ignore inventory as a markdown table
//	-auditcheck F   fail unless F's lint-audit section matches the tree
//	-budget D       exit 3 when the run exceeds wall-time budget D
//	-p N            analysis parallelism (default GOMAXPROCS)
//
// Exit status is 1 when any finding survives suppression (or the audit
// drifted), 2 on internal error, 3 on budget breach, 0 otherwise.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"amnesiadb/tools/amnesialint/analysis"
	"amnesiadb/tools/amnesialint/analysis/summary"
	"amnesiadb/tools/amnesialint/analyzers"
	"amnesiadb/tools/amnesialint/internal/load"
)

// modulePrefix gates fact computation under `go vet`: dependency units
// outside the repo module (the standard library) get empty facts
// instead of a from-source type-check.
const modulePrefix = "amnesiadb"

func main() {
	args := os.Args[1:]
	switch {
	case len(args) >= 1 && strings.HasPrefix(args[0], "-V"):
		printVersion()
	case len(args) >= 1 && args[0] == "-flags":
		// The build system asks which flags we support before it
		// forwards user flags; amnesialint has none.
		fmt.Println("[]")
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		runVetUnit(args[0])
	default:
		runStandalone(args)
	}
}

// printVersion implements the -V=full handshake: the go command hashes
// the tool binary into its build cache key so analysis reruns only when
// the tool or the package changes.
func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		fatal(err)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fatal(err)
	}
	f.Close()
	fmt.Printf("%s version devel comments-go-here buildID=%x\n", exe, h.Sum(nil))
	os.Exit(0)
}

// vetConfig is the JSON compilation-unit description `go vet` hands a
// vettool (the unitchecker *.cfg contract). PackageVetx maps each
// dependency's import path to its facts file; VetxOutput is where this
// unit's facts go.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func inModule(importPath string) bool {
	return importPath == modulePrefix || strings.HasPrefix(importPath, modulePrefix+"/") ||
		strings.HasPrefix(importPath, modulePrefix+" ") || strings.HasPrefix(importPath, modulePrefix+".")
}

func runVetUnit(cfgFile string) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fatal(err)
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		fatal(fmt.Errorf("cannot decode vet config %s: %v", cfgFile, err))
	}
	// Dependencies outside the module carry no summaries worth
	// computing; satisfy the protocol's output-file contract and stop.
	if cfg.VetxOnly && !inModule(cfg.ImportPath) {
		writeVetx(cfg, nil)
		os.Exit(0)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx(cfg, nil)
				os.Exit(0)
			}
			fatal(err)
		}
		files = append(files, f)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	conf := &types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			path, ok := cfg.ImportMap[importPath]
			if !ok {
				return nil, fmt.Errorf("can't resolve import %q", importPath)
			}
			return imp.Import(path)
		}),
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx(cfg, nil)
			os.Exit(0)
		}
		fatal(err)
	}

	session := analysis.NewSession(analyzers.All())
	loadFacts(session, cfg.PackageVetx)

	// Facts-only pass for module dependencies: summarize, serialize, done.
	if cfg.VetxOnly {
		sum := session.Summarize(fset, files, pkg, info)
		facts, err := summary.EncodePackage(sum)
		if err != nil {
			fatal(err)
		}
		writeVetx(cfg, facts)
		os.Exit(0)
	}

	sum, err := session.RunPackage(fset, files, pkg, info)
	if err != nil {
		fatal(err)
	}
	findings, err := session.Finalize()
	if err != nil {
		fatal(err)
	}
	facts, err := summary.EncodePackage(sum)
	if err != nil {
		fatal(err)
	}
	writeVetx(cfg, facts)
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
	os.Exit(0)
}

// loadFacts decodes dependency summaries from .vetx files; absent or
// empty files (non-module deps, older tool runs) contribute nothing.
func loadFacts(session *analysis.Session, vetx map[string]string) {
	for _, file := range vetx {
		data, err := os.ReadFile(file)
		if err != nil {
			continue
		}
		p, err := summary.DecodePackage(data)
		if err != nil || p == nil {
			continue
		}
		session.AddFacts(p)
	}
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func writeVetx(cfg *vetConfig, data []byte) {
	if cfg.VetxOutput == "" {
		return
	}
	if data == nil {
		data = []byte{}
	}
	if err := os.WriteFile(cfg.VetxOutput, data, 0o666); err != nil {
		fatal(err)
	}
}

// runStandalone analyzes package patterns (default ./...) using
// `go list` metadata, for local `make lint` runs and tests.
func runStandalone(args []string) {
	fs := flag.NewFlagSet("amnesialint", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array on stdout")
	audit := fs.Bool("audit", false, "print the //lint:ignore inventory as a markdown table")
	auditCheck := fs.String("auditcheck", "", "fail unless the file's lint-audit section matches the tree")
	budget := fs.Duration("budget", 0, "exit 3 when the run exceeds this wall-time budget")
	par := fs.Int("p", runtime.GOMAXPROCS(0), "analysis parallelism")
	if err := fs.Parse(args); err != nil {
		fatal(err)
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	if *audit || *auditCheck != "" {
		runAudit(".", patterns, *auditCheck)
		return
	}

	start := time.Now()
	findings, pkgs, err := check(".", patterns, *par)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	if *jsonOut {
		emitJSON(findings)
	} else {
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, f)
		}
	}
	fmt.Fprintf(os.Stderr, "amnesialint: %d packages in %s (parallelism %d)\n",
		pkgs, elapsed.Round(time.Millisecond), *par)
	if *budget > 0 && elapsed > *budget {
		fmt.Fprintf(os.Stderr, "amnesialint: run took %s, over the %s budget\n", elapsed.Round(time.Millisecond), *budget)
		os.Exit(3)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func emitJSON(findings []analysis.Finding) {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			File: f.Pos.Filename, Line: f.Pos.Line, Column: f.Pos.Column,
			Analyzer: f.Analyzer, Message: f.Message,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatal(err)
	}
}

// Check runs the full suite over the patterns rooted at dir and returns
// the surviving findings. Exposed for the tree-cleanliness test.
func Check(dir string, patterns ...string) ([]analysis.Finding, error) {
	findings, _, err := check(dir, patterns, runtime.GOMAXPROCS(0))
	return findings, err
}

// check loads the patterns, analyzes every target package (and
// summarizes in-module dependencies) in parallel dependency order, and
// finalizes the whole-program passes.
func check(dir string, patterns []string, par int) ([]analysis.Finding, int, error) {
	units, targets, err := load.List(dir, patterns...)
	if err != nil {
		return nil, 0, err
	}
	checker := load.NewChecker(units)
	session := analysis.NewSession(analyzers.All())

	// Work set: every listed non-standard unit with sources — targets
	// get the analyzers, in-module dependencies contribute summaries.
	isTarget := map[string]bool{}
	for _, u := range targets {
		isTarget[u.ImportPath] = true
	}
	work := map[string]*load.Unit{}
	for path, u := range units {
		if u.Standard || len(u.GoFiles) == 0 {
			continue
		}
		if u.Error != nil && u.Error.Err != "" && !isTarget[path] {
			continue
		}
		work[path] = u
	}

	// Dependency counts restricted to the work set; a unit is ready when
	// every in-set import has been processed.
	waiting := map[string]int{}
	dependents := map[string][]string{}
	for path, u := range work {
		n := 0
		for _, imp := range u.Imports {
			if _, ok := work[imp]; ok && imp != path {
				n++
				dependents[imp] = append(dependents[imp], path)
			}
		}
		waiting[path] = n
	}

	if par < 1 {
		par = 1
	}
	var (
		mu       sync.Mutex
		firstErr error
		ready    = make(chan *load.Unit, len(work))
		wg       sync.WaitGroup
		pending  = len(work)
	)
	for path, n := range waiting {
		if n == 0 {
			ready <- work[path]
		}
	}
	done := func(path string) {
		mu.Lock()
		defer mu.Unlock()
		pending--
		for _, dep := range dependents[path] {
			waiting[dep]--
			if waiting[dep] == 0 {
				ready <- work[dep]
			}
		}
		if pending == 0 {
			close(ready)
		}
	}
	fail := func(err error) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr == nil {
			firstErr = err
		}
	}
	for i := 0; i < par; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range ready {
				mu.Lock()
				stop := firstErr != nil
				mu.Unlock()
				if !stop {
					if err := analyzeUnit(session, checker, u, isTarget[u.ImportPath]); err != nil {
						fail(err)
					}
				}
				done(u.ImportPath)
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, 0, firstErr
	}
	findings, err := session.Finalize()
	if err != nil {
		return nil, 0, err
	}
	return findings, len(targets), nil
}

func analyzeUnit(session *analysis.Session, checker *load.Checker, u *load.Unit, target bool) error {
	checked, err := checker.Check(u)
	if err != nil {
		if !target {
			return nil // a dependency that cannot re-check from source just loses its summaries
		}
		return err
	}
	if target {
		_, err = session.RunPackage(checked.Fset, checked.Files, checked.Pkg, checked.Info)
		return err
	}
	session.Summarize(checked.Fset, checked.Files, checked.Pkg, checked.Info)
	return nil
}

// ---- suppression audit ----

const (
	auditBegin = "<!-- lint-audit:begin -->"
	auditEnd   = "<!-- lint-audit:end -->"
)

// runAudit prints (or verifies) the inventory of //lint:ignore sites.
func runAudit(dir string, patterns []string, checkFile string) {
	table, err := AuditTable(dir, patterns...)
	if err != nil {
		fatal(err)
	}
	if checkFile == "" {
		fmt.Print(table)
		return
	}
	data, err := os.ReadFile(checkFile)
	if err != nil {
		fatal(err)
	}
	committed, ok := between(string(data), auditBegin, auditEnd)
	if !ok {
		fmt.Fprintf(os.Stderr, "amnesialint: %s has no %s/%s section\n", checkFile, auditBegin, auditEnd)
		os.Exit(1)
	}
	if strings.TrimSpace(committed) != strings.TrimSpace(table) {
		fmt.Fprintf(os.Stderr, "amnesialint: suppression audit in %s is stale; regenerate with `go run ./tools/amnesialint/cmd -audit ./...` and paste between the markers\n", checkFile)
		fmt.Fprintf(os.Stderr, "--- expected ---\n%s", table)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "amnesialint: suppression audit in %s is up to date\n", checkFile)
}

func between(s, begin, end string) (string, bool) {
	i := strings.Index(s, begin)
	if i < 0 {
		return "", false
	}
	s = s[i+len(begin):]
	j := strings.Index(s, end)
	if j < 0 {
		return "", false
	}
	return s[:j], true
}

// AuditTable renders the tree's //lint:ignore inventory as a markdown
// table, one row per (file, analyzer, reason), with a site count. Rows
// carry no line numbers so the committed table survives unrelated
// edits. Exposed for the audit drift test.
func AuditTable(dir string, patterns ...string) (string, error) {
	_, targets, err := load.List(dir, patterns...)
	if err != nil {
		return "", err
	}
	absDir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	type key struct{ file, analyzer, reason string }
	count := map[key]int{}
	fset := token.NewFileSet()
	for _, u := range targets {
		for _, name := range u.GoFiles {
			path := name
			if !filepath.IsAbs(path) {
				path = filepath.Join(u.Dir, name)
			}
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return "", err
			}
			for _, sup := range analysis.ScanSuppressions(fset, []*ast.File{f}) {
				rel, err := filepath.Rel(absDir, sup.File)
				if err != nil {
					rel = sup.File
				}
				for _, a := range strings.Split(sup.Analyzers, ",") {
					count[key{filepath.ToSlash(rel), a, sup.Reason}]++
				}
			}
		}
	}
	keys := make([]key, 0, len(count))
	for k := range count {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.analyzer != b.analyzer {
			return a.analyzer < b.analyzer
		}
		return a.reason < b.reason
	})
	var sb strings.Builder
	sb.WriteString("| File | Analyzer | Sites | Reason |\n")
	sb.WriteString("|---|---|---|---|\n")
	for _, k := range keys {
		fmt.Fprintf(&sb, "| `%s` | %s | %d | %s |\n", k.file, k.analyzer, count[k], k.reason)
	}
	return sb.String(), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "amnesialint:", err)
	os.Exit(2)
}
