package main

import "testing"

// TestTreeIsClean runs the full suite over the repository: the tree
// must stay free of findings (modulo audited lint:ignore suppressions),
// so a regression anywhere fails `go test` as well as the CI lint job.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-tree lint is not a short test")
	}
	findings, err := Check("../../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
