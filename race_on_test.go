//go:build race

package amnesiadb_test

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = true
