package amnesiadb_test

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"amnesiadb"
	"amnesiadb/internal/xrand"
)

// servingDB builds one database in the given configuration with a
// deterministic catalog: a multi-morsel flat table, a join pair, and a
// partitioned table whose budget is wide enough that nothing forgets —
// so two instances built with different execution options hold
// identical data.
func servingDB(t *testing.T, opts amnesiadb.Options) *amnesiadb.DB {
	t.Helper()
	db := amnesiadb.Open(opts)
	big, err := db.CreateTable("big", "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	const n = 300_000
	src := xrand.New(11)
	av := make([]int64, n)
	bv := make([]int64, n)
	for i := range av {
		av[i] = src.Int63n(1 << 18)
		bv[i] = int64(i)
	}
	if err := big.Insert(map[string][]int64{"a": av, "b": bv}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"jx", "jy"} {
		jt, err := db.CreateTable(name, "k", "v")
		if err != nil {
			t.Fatal(err)
		}
		kv := make([]int64, 20_000)
		vv := make([]int64, 20_000)
		for i := range kv {
			kv[i] = int64(i % 997)
			vv[i] = int64(i)
		}
		if err := jt.Insert(map[string][]int64{"k": kv, "v": vv}); err != nil {
			t.Fatal(err)
		}
	}
	pt, err := db.CreatePartitionedTable("pt", "p", 1<<16, 8, "fifo", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	pv := make([]int64, 50_000)
	psrc := xrand.New(13)
	for i := range pv {
		pv[i] = psrc.Int63n(1 << 16)
	}
	if err := pt.Insert(pv); err != nil {
		t.Fatal(err)
	}
	return db
}

// servingQueries is the mixed workload the stress test pins: flat
// scans, streamed ORDER BY, aggregates, a two-table join and
// partitioned-table queries — every execution shape the scheduler
// dispatches.
var servingQueries = []string{
	"SELECT a FROM big WHERE a < 2048",
	"SELECT a, b FROM big WHERE a < 1024 ORDER BY b DESC LIMIT 50",
	"SELECT AVG(a) FROM big WHERE a < 131072",
	"SELECT COUNT(*) FROM big",
	"SELECT SUM(a) FROM big WHERE a >= 65536",
	"SELECT jx.v, jy.v FROM jx JOIN jy ON jx.k = jy.k WHERE jx.k < 3",
	"SELECT p FROM pt WHERE p < 4096",
	"SELECT COUNT(*) FROM pt WHERE p >= 32768",
	"SELECT a FROM big WHERE a < 512 ORDER BY a LIMIT 20",
	"SELECT MIN(b) FROM big",
}

// TestConcurrentMixedQueriesByteIdentical is the tentpole stress pin:
// 64 goroutines hammer one pooled database (shared scheduler, result
// cache on) with a mixed workload while a serial, pool-less,
// cache-less reference database defines the expected answer for every
// statement. Any scheduling, merging or caching bug that perturbs
// ordering or content fails DeepEqual; the -race CI job runs this
// fully instrumented.
func TestConcurrentMixedQueriesByteIdentical(t *testing.T) {
	ref := servingDB(t, amnesiadb.Options{Seed: 5, Parallelism: 1, PoolSize: -1})
	pooled := servingDB(t, amnesiadb.Options{Seed: 5, CacheEntries: 32})
	defer pooled.Close()

	want := make(map[string]*amnesiadb.QueryResult, len(servingQueries))
	for _, q := range servingQueries {
		res, err := ref.Query(q)
		if err != nil {
			t.Fatalf("reference %q: %v", q, err)
		}
		want[q] = res
	}

	const workers = 64
	const itersPerWorker = 8
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < itersPerWorker; i++ {
				q := servingQueries[(w+i)%len(servingQueries)]
				got, err := pooled.Query(q)
				if err != nil {
					errc <- fmt.Errorf("%q: %v", q, err)
					return
				}
				exp := want[q]
				if !reflect.DeepEqual(got.Rows, exp.Rows) || !reflect.DeepEqual(got.Columns, exp.Columns) || !reflect.DeepEqual(got.Ints, exp.Ints) {
					errc <- fmt.Errorf("%q: pooled result differs from serial reference (got %d rows, want %d)", q, len(got.Rows), len(exp.Rows))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if t.Failed() {
		return
	}
	ps := pooled.PoolStats()
	if ps.Workers < 1 {
		t.Fatalf("pooled DB reports no workers: %+v", ps)
	}
	cs := pooled.CacheStats()
	if cs.ResultHits == 0 {
		t.Fatalf("stress run never hit the result cache: %+v", cs)
	}
}

// TestResultCacheHitAndInvalidation pins the serving-path cache
// contract end to end: a repeated statement is served from the cache
// (Cached() reports it), a mutation on any referenced relation —
// an insert, a budget enforcement that forgets, a partitioned insert —
// invalidates exactly that statement's entry, and the post-mutation
// answer reflects the new data.
func TestResultCacheHitAndInvalidation(t *testing.T) {
	db := amnesiadb.Open(amnesiadb.Options{Seed: 9, CacheEntries: 16})
	defer db.Close()
	tab, err := db.CreateTable("t", "a")
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.InsertColumn("a", []int64{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}

	runStream := func(q string) (*amnesiadb.QueryStream, [][]float64) {
		t.Helper()
		qs, err := db.QueryStream(q)
		if err != nil {
			t.Fatal(err)
		}
		var rows [][]float64
		for {
			chunk, err := qs.Next()
			if err != nil {
				t.Fatal(err)
			}
			if chunk == nil {
				break
			}
			rows = append(rows, chunk...)
		}
		return qs, rows
	}

	const q = "SELECT COUNT(*) FROM t"
	qs1, rows1 := runStream(q)
	if qs1.Cached() {
		t.Fatal("first execution claimed a cache hit")
	}
	// Whitespace variants normalize to the same key.
	qs2, rows2 := runStream("SELECT   COUNT(*)   FROM t")
	if !qs2.Cached() {
		t.Fatal("repeat execution missed the cache")
	}
	if !reflect.DeepEqual(rows1, rows2) {
		t.Fatalf("cached rows differ: %v vs %v", rows1, rows2)
	}
	if rows1[0][0] != 5 {
		t.Fatalf("count = %v, want 5", rows1[0][0])
	}

	// Insert invalidates: the next run scans and sees the new tuple.
	if err := tab.InsertColumn("a", []int64{6}); err != nil {
		t.Fatal(err)
	}
	qs3, rows3 := runStream(q)
	if qs3.Cached() {
		t.Fatal("post-insert execution served a stale cache entry")
	}
	if rows3[0][0] != 6 {
		t.Fatalf("post-insert count = %v, want 6", rows3[0][0])
	}
	if qs4, _ := runStream(q); !qs4.Cached() {
		t.Fatal("recomputed entry not re-cached")
	}

	// Forgetting invalidates too: budget enforcement drops tuples, so
	// the cached count would be wrong.
	if err := tab.SetPolicy(amnesiadb.Policy{Strategy: "fifo", Budget: 3}); err != nil {
		t.Fatal(err)
	}
	if err := tab.EnforceBudget(); err != nil {
		t.Fatal(err)
	}
	qs5, rows5 := runStream(q)
	if qs5.Cached() {
		t.Fatal("post-forget execution served a stale cache entry")
	}
	if rows5[0][0] != 3 {
		t.Fatalf("post-forget count = %v, want 3", rows5[0][0])
	}

	// Partitioned relations carry epochs the same way.
	pt, err := db.CreatePartitionedTable("pp", "p", 1024, 4, "fifo", 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := pt.Insert([]int64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	const pq = "SELECT COUNT(*) FROM pp"
	runStream(pq)
	if qsp, _ := runStream(pq); !qsp.Cached() {
		t.Fatal("partitioned repeat missed the cache")
	}
	if err := pt.Insert([]int64{4}); err != nil {
		t.Fatal(err)
	}
	qsp2, prows := runStream(pq)
	if qsp2.Cached() {
		t.Fatal("partitioned insert did not invalidate")
	}
	if prows[0][0] != 4 {
		t.Fatalf("partitioned count = %v, want 4", prows[0][0])
	}
}

// TestOversizedResultsNotCached pins the cache's size bound at the
// facade: a projection wider than one stream chunk streams normally
// but never becomes a cache entry, so a repeat run scans again.
func TestOversizedResultsNotCached(t *testing.T) {
	db := amnesiadb.Open(amnesiadb.Options{Seed: 3, CacheEntries: 8})
	defer db.Close()
	tab, err := db.CreateTable("w", "a")
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]int64, 10_000)
	for i := range vals {
		vals[i] = int64(i)
	}
	if err := tab.InsertColumn("a", vals); err != nil {
		t.Fatal(err)
	}
	const q = "SELECT a FROM w"
	if res, err := db.Query(q); err != nil || len(res.Rows) != len(vals) {
		t.Fatalf("first run: %v rows=%d", err, len(res.Rows))
	}
	qs, err := db.QueryStream(q)
	if err != nil {
		t.Fatal(err)
	}
	defer qs.Close()
	if qs.Cached() {
		t.Fatal("oversized result was cached")
	}
}
