package amnesiadb_test

// Regression tests for the behaviour-visible fixes that came out of the
// amnesialint sweep (tools/amnesialint): auxiliary operations on a
// dropped handle used to bypass the liveness check and operate on a
// relation the catalog no longer knows.

import (
	"errors"
	"io"
	"testing"

	"amnesiadb"
)

// TestDroppedHandleAuxiliaryOpsFail pins the liveness fixes flagged by
// the liveness analyzer: DemoteForgotten, Summarize, Save, NewAdvisor
// and the Advisor methods all take the handle's exclusive lock, so they
// must refuse a handle that outlived its relation's DropTable exactly
// like the mutators do.
func TestDroppedHandleAuxiliaryOpsFail(t *testing.T) {
	dir := t.TempDir()
	db, err := amnesiadb.OpenDir(dir, amnesiadb.Options{Seed: 21, Fsync: "off"})
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	defer db.Close()
	tb, err := db.CreateTable("aux", "v")
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	if err := tb.InsertColumn("v", []int64{1, 2, 3}); err != nil {
		t.Fatalf("insert: %v", err)
	}
	// An advisor created while the relation was live must also notice
	// the drop: it holds the same handle.
	adv, err := tb.NewAdvisor("v")
	if err != nil {
		t.Fatalf("NewAdvisor: %v", err)
	}
	if err := db.DropTable("aux"); err != nil {
		t.Fatalf("DropTable: %v", err)
	}

	if _, err := tb.DemoteForgotten(); !errors.Is(err, amnesiadb.ErrUnknownTable) {
		t.Errorf("DemoteForgotten on dropped handle: err = %v, want ErrUnknownTable", err)
	}
	if _, err := tb.Summarize("v"); !errors.Is(err, amnesiadb.ErrUnknownTable) {
		t.Errorf("Summarize on dropped handle: err = %v, want ErrUnknownTable", err)
	}
	if err := tb.Save(io.Discard); !errors.Is(err, amnesiadb.ErrUnknownTable) {
		t.Errorf("Save on dropped handle: err = %v, want ErrUnknownTable", err)
	}
	if _, err := tb.NewAdvisor("v"); !errors.Is(err, amnesiadb.ErrUnknownTable) {
		t.Errorf("NewAdvisor on dropped handle: err = %v, want ErrUnknownTable", err)
	}
	if _, err := adv.Select(amnesiadb.Range(0, 10)); !errors.Is(err, amnesiadb.ErrUnknownTable) {
		t.Errorf("Advisor.Select on dropped handle: err = %v, want ErrUnknownTable", err)
	}
	if _, err := adv.Aggregate(amnesiadb.Range(0, 10)); !errors.Is(err, amnesiadb.ErrUnknownTable) {
		t.Errorf("Advisor.Aggregate on dropped handle: err = %v, want ErrUnknownTable", err)
	}
	if _, err := adv.Advise(0.5); !errors.Is(err, amnesiadb.ErrUnknownTable) {
		t.Errorf("Advisor.Advise on dropped handle: err = %v, want ErrUnknownTable", err)
	}
}

// TestQueryConcurrentSnapshotNoDeadlock pins the lockorder fix in
// QueryStreamCtx: it used to re-enter db.mu inside its per-table loop
// while already holding earlier relations' read locks, which inverts
// the catalog → relation hierarchy and deadlocks against Snapshot's
// lockCatalog (db.mu held exclusively, relation locks taken in the
// same name order). Queries over two tables racing snapshots hit that
// window; with the fix the catalog lookup completes before any
// relation lock is taken, so this must run to completion.
func TestQueryConcurrentSnapshotNoDeadlock(t *testing.T) {
	dir := t.TempDir()
	db, err := amnesiadb.OpenDir(dir, amnesiadb.Options{Seed: 7, Fsync: "off"})
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	defer db.Close()
	for _, name := range []string{"qa", "qb"} {
		tb, err := db.CreateTable(name, "v")
		if err != nil {
			t.Fatalf("CreateTable %s: %v", name, err)
		}
		if err := tb.InsertColumn("v", []int64{1, 2, 3, 4}); err != nil {
			t.Fatalf("insert %s: %v", name, err)
		}
	}
	const iters = 400
	const queryWorkers = 3
	done := make(chan error, 1+queryWorkers)
	go func() {
		for i := 0; i < iters; i++ {
			if err := db.Snapshot(); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for w := 0; w < queryWorkers; w++ {
		go func() {
			for i := 0; i < iters; i++ {
				rows, err := db.Query("SELECT qa.v, qb.v FROM qa JOIN qb ON qa.v = qb.v")
				if err != nil {
					done <- err
					return
				}
				_ = rows
			}
			done <- nil
		}()
	}
	for i := 0; i < 1+queryWorkers; i++ {
		if err := <-done; err != nil {
			t.Fatalf("concurrent query/snapshot: %v", err)
		}
	}
}
