package amnesiadb_test

import (
	"fmt"

	"amnesiadb"
)

// ExampleDB shows the minimal lifecycle: create, set a policy, insert
// past the budget, observe the forgetting.
func ExampleDB() {
	db := amnesiadb.Open(amnesiadb.Options{Seed: 42})
	t, _ := db.CreateTable("readings", "value")
	_ = t.SetPolicy(amnesiadb.Policy{Strategy: "fifo", Budget: 3})

	_ = t.InsertColumn("value", []int64{10, 20, 30, 40, 50})

	res, _ := t.Select("value", amnesiadb.All())
	fmt.Println("active values:", res.Values)
	s := t.Stats()
	fmt.Printf("stored %d, active %d, forgotten %d\n", s.Tuples, s.Active, s.Forgotten)
	// Output:
	// active values: [30 40 50]
	// stored 5, active 3, forgotten 2
}

// ExampleDB_Query shows the SQL dialect over an amnesiac table.
func ExampleDB_Query() {
	db := amnesiadb.Open(amnesiadb.Options{Seed: 1})
	t, _ := db.CreateTable("t", "a")
	_ = t.InsertColumn("a", []int64{1, 2, 3, 4, 5})

	res, _ := db.Query("SELECT AVG(a) FROM t WHERE a >= 2 AND a < 5")
	fmt.Printf("%s = %v\n", res.Columns[0], res.Rows[0][0])
	// Output:
	// AVG(a) = 3
}

// ExampleTable_Precision shows the paper's PF(Q) metric: how much of the
// true answer amnesia cost a query.
func ExampleTable_Precision() {
	db := amnesiadb.Open(amnesiadb.Options{Seed: 1})
	t, _ := db.CreateTable("t", "a")
	_ = t.SetPolicy(amnesiadb.Policy{Strategy: "fifo", Budget: 2})
	_ = t.InsertColumn("a", []int64{1, 2, 3, 4})

	rf, mf, pf, _ := t.Precision("a", amnesiadb.All())
	fmt.Printf("returned %d, missed %d, precision %.2f\n", rf, mf, pf)
	// Output:
	// returned 2, missed 2, precision 0.50
}

// ExampleTable_Summarize shows the summary fate: forgotten mass collapses
// to segments, the all-time average survives a physical vacuum.
func ExampleTable_Summarize() {
	db := amnesiadb.Open(amnesiadb.Options{Seed: 1})
	t, _ := db.CreateTable("t", "a")
	_ = t.SetPolicy(amnesiadb.Policy{Strategy: "fifo", Budget: 2})
	_ = t.InsertColumn("a", []int64{10, 20, 30, 40})

	absorbed, _ := t.Summarize("a")
	t.Vacuum()
	avg, _ := t.ApproxAvg("a")
	fmt.Printf("absorbed %d, stored now %d, all-time avg %.0f\n",
		absorbed, t.Stats().Tuples, avg)
	// Output:
	// absorbed 2, stored now 2, all-time avg 25
}
