package amnesiadb_test

import (
	"fmt"

	"amnesiadb"
)

// ExampleDB shows the minimal lifecycle: create, set a policy, insert
// past the budget, observe the forgetting.
func ExampleDB() {
	db := amnesiadb.Open(amnesiadb.Options{Seed: 42})
	t, _ := db.CreateTable("readings", "value")
	_ = t.SetPolicy(amnesiadb.Policy{Strategy: "fifo", Budget: 3})

	_ = t.InsertColumn("value", []int64{10, 20, 30, 40, 50})

	res, _ := t.Select("value", amnesiadb.All())
	fmt.Println("active values:", res.Values)
	s := t.Stats()
	fmt.Printf("stored %d, active %d, forgotten %d\n", s.Tuples, s.Active, s.Forgotten)
	// Output:
	// active values: [30 40 50]
	// stored 5, active 3, forgotten 2
}

// ExampleDB_Query shows the SQL dialect over an amnesiac table.
func ExampleDB_Query() {
	db := amnesiadb.Open(amnesiadb.Options{Seed: 1})
	t, _ := db.CreateTable("t", "a")
	_ = t.InsertColumn("a", []int64{1, 2, 3, 4, 5})

	res, _ := db.Query("SELECT AVG(a) FROM t WHERE a >= 2 AND a < 5")
	fmt.Printf("%s = %v\n", res.Columns[0], res.Rows[0][0])
	// Output:
	// AVG(a) = 3
}

// ExampleDB_Query_join shows the SQL JOIN surface: an equi-join with
// qualified projection riding the parallel hash join — identical rows
// to DB.Join, served through the unified relation catalog.
func ExampleDB_Query_join() {
	db := amnesiadb.Open(amnesiadb.Options{Seed: 1})
	users, _ := db.CreateTable("users", "id", "age")
	orders, _ := db.CreateTable("orders", "uid", "total")
	_ = users.Insert(map[string][]int64{"id": {1, 2, 3}, "age": {30, 40, 50}})
	_ = orders.Insert(map[string][]int64{"uid": {2, 3, 3}, "total": {25, 60, 15}})

	res, _ := db.Query("SELECT users.age, orders.total FROM users JOIN orders ON users.id = orders.uid ORDER BY orders.total DESC")
	for _, row := range res.Rows {
		fmt.Println(row[0], row[1])
	}
	// Output:
	// 50 60
	// 40 25
	// 50 15
}

// ExampleDB_Query_partitioned shows that partitioned tables are
// first-class catalog entries: SQL routes to the shard fan-out, so the
// §4.4 adaptive-partitioning store serves the same /query surface.
func ExampleDB_Query_partitioned() {
	db := amnesiadb.Open(amnesiadb.Options{Seed: 1})
	pt, _ := db.CreatePartitionedTable("sensors", "v", 100, 4, "fifo", 100)
	_ = pt.Insert([]int64{5, 30, 55, 80, 31})

	res, _ := db.Query("SELECT v FROM sensors WHERE v >= 25 AND v < 75")
	for _, row := range res.Rows {
		fmt.Println(row[0])
	}
	// Output:
	// 30
	// 31
	// 55
}

// ExampleDB_QueryStream shows the chunked result form the HTTP server
// serializes incrementally; Collecting by hand is just draining Next.
func ExampleDB_QueryStream() {
	db := amnesiadb.Open(amnesiadb.Options{Seed: 1})
	t, _ := db.CreateTable("t", "a")
	_ = t.InsertColumn("a", []int64{1, 2, 3})

	qs, _ := db.QueryStream("SELECT a FROM t")
	defer qs.Close()
	for {
		rows, err := qs.Next()
		if err != nil || rows == nil {
			break
		}
		fmt.Println("chunk of", len(rows), "rows")
	}
	// Output:
	// chunk of 3 rows
}

// ExampleTable_Precision shows the paper's PF(Q) metric: how much of the
// true answer amnesia cost a query.
func ExampleTable_Precision() {
	db := amnesiadb.Open(amnesiadb.Options{Seed: 1})
	t, _ := db.CreateTable("t", "a")
	_ = t.SetPolicy(amnesiadb.Policy{Strategy: "fifo", Budget: 2})
	_ = t.InsertColumn("a", []int64{1, 2, 3, 4})

	rf, mf, pf, _ := t.Precision("a", amnesiadb.All())
	fmt.Printf("returned %d, missed %d, precision %.2f\n", rf, mf, pf)
	// Output:
	// returned 2, missed 2, precision 0.50
}

// ExampleTable_Summarize shows the summary fate: forgotten mass collapses
// to segments, the all-time average survives a physical vacuum.
func ExampleTable_Summarize() {
	db := amnesiadb.Open(amnesiadb.Options{Seed: 1})
	t, _ := db.CreateTable("t", "a")
	_ = t.SetPolicy(amnesiadb.Policy{Strategy: "fifo", Budget: 2})
	_ = t.InsertColumn("a", []int64{10, 20, 30, 40})

	absorbed, _ := t.Summarize("a")
	t.Vacuum()
	avg, _ := t.ApproxAvg("a")
	fmt.Printf("absorbed %d, stored now %d, all-time avg %.0f\n",
		absorbed, t.Stats().Tuples, avg)
	// Output:
	// absorbed 2, stored now 2, all-time avg 25
}
