module amnesiadb

go 1.24
