package amnesiadb_test

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"amnesiadb"
)

// joinDB builds two joinable tables with forgotten tuples on both sides.
func joinDB(t *testing.T) (*amnesiadb.DB, *amnesiadb.Table, *amnesiadb.Table) {
	t.Helper()
	db := amnesiadb.Open(amnesiadb.Options{Seed: 3})
	a, err := db.CreateTable("a", "k", "v")
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.CreateTable("b", "k", "w")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Insert(map[string][]int64{
		"k": {1, 2, 2, 3, 4, 5, 7},
		"v": {10, 20, 21, 30, 40, 50, 70},
	}); err != nil {
		t.Fatal(err)
	}
	if err := b.Insert(map[string][]int64{
		"k": {2, 3, 3, 5, 7, 9},
		"w": {200, 300, 301, 500, 700, 900},
	}); err != nil {
		t.Fatal(err)
	}
	// FIFO budget 5 forgets the two oldest rows of a: keys 1 and 2.
	if err := a.SetPolicy(amnesiadb.Policy{Strategy: "fifo", Budget: 5}); err != nil {
		t.Fatal(err)
	}
	if err := a.EnforceBudget(); err != nil {
		t.Fatal(err)
	}
	return db, a, b
}

// joinRowsToValues projects DB.Join output through the two tables'
// columns — the ground truth SQL joins must reproduce byte-identically.
func joinRowsToValues(t *testing.T, left, right *amnesiadb.Table, lcol, rcol string, rows []amnesiadb.JoinRow) [][]float64 {
	t.Helper()
	lv, err := left.SelectWithForgotten(lcol, amnesiadb.All())
	if err != nil {
		t.Fatal(err)
	}
	rv, err := right.SelectWithForgotten(rcol, amnesiadb.All())
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]float64, len(rows))
	for i, r := range rows {
		out[i] = []float64{float64(lv.Values[r.LeftRow]), float64(rv.Values[r.RightRow])}
	}
	return out
}

// TestSQLJoinMatchesDBJoin pins the acceptance criterion: SQL JOIN
// results are byte-identical to DB.Join — both table orders, with and
// without predicates.
func TestSQLJoinMatchesDBJoin(t *testing.T) {
	db, a, b := joinDB(t)
	cases := []struct {
		sql         string
		left, right *amnesiadb.Table
		lproj, rpoj string
		pred        amnesiadb.Pred
	}{
		{"SELECT a.v, b.w FROM a JOIN b ON a.k = b.k", a, b, "v", "w", amnesiadb.All()},
		{"SELECT b.w, a.v FROM b JOIN a ON b.k = a.k", b, a, "w", "v", amnesiadb.All()},
		{"SELECT a.v, b.w FROM a JOIN b ON a.k = b.k WHERE a.k >= 3", a, b, "v", "w", amnesiadb.Ge(3)},
		{"SELECT a.v, b.w FROM a JOIN b ON a.k = b.k WHERE a.k >= 3 AND a.k < 6", a, b, "v", "w", amnesiadb.Range(3, 6)},
	}
	for _, tc := range cases {
		jr, err := db.Join(tc.left, "k", tc.right, "k", tc.pred)
		if err != nil {
			t.Fatalf("%s: join: %v", tc.sql, err)
		}
		want := joinRowsToValues(t, tc.left, tc.right, tc.lproj, tc.rpoj, jr)
		res, err := db.Query(tc.sql)
		if err != nil {
			t.Fatalf("%s: query: %v", tc.sql, err)
		}
		if len(res.Rows) == 0 {
			t.Fatalf("%s: empty join result", tc.sql)
		}
		if !reflect.DeepEqual(res.Rows, want) {
			t.Fatalf("%s:\n got %v\nwant %v", tc.sql, res.Rows, want)
		}
	}
}

// TestSQLJoinOrderLimitMatchesDBJoin pins LIMIT and ORDER BY applied to
// joined output: LIMIT alone is a prefix of DB.Join's probe order, and
// ORDER BY ... LIMIT is the top-k of the stably sorted pairs.
func TestSQLJoinOrderLimitMatchesDBJoin(t *testing.T) {
	db, a, b := joinDB(t)
	jr, err := db.Join(a, "k", b, "k", amnesiadb.All())
	if err != nil {
		t.Fatal(err)
	}
	want := joinRowsToValues(t, a, b, "v", "w", jr)

	res, err := db.Query("SELECT a.v, b.w FROM a JOIN b ON a.k = b.k LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Rows, want[:2]) {
		t.Fatalf("limit prefix diverges: %v vs %v", res.Rows, want[:2])
	}

	full, err := db.Query("SELECT a.v, b.w FROM a JOIN b ON a.k = b.k ORDER BY b.w DESC")
	if err != nil {
		t.Fatal(err)
	}
	topk, err := db.Query("SELECT a.v, b.w FROM a JOIN b ON a.k = b.k ORDER BY b.w DESC LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(topk.Rows, full.Rows[:3]) {
		t.Fatalf("top-k diverges from full sort: %v vs %v", topk.Rows, full.Rows[:3])
	}
	for i := 1; i < len(full.Rows); i++ {
		if full.Rows[i-1][1] < full.Rows[i][1] {
			t.Fatalf("not descending at %d: %v", i, full.Rows)
		}
	}
}

// TestSQLPartitionedMatchesSelect pins the other acceptance criterion:
// a SQL SELECT against a partitioned table returns exactly
// PartitionedTable.Select's values, in the same order.
func TestSQLPartitionedMatchesSelect(t *testing.T) {
	db := amnesiadb.Open(amnesiadb.Options{Seed: 8})
	pt, err := db.CreatePartitionedTable("readings", "v", 10000, 8, "uniform", 2000)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]int64, 3000)
	for i := range vals {
		vals[i] = int64((i * 37) % 10000)
	}
	if err := pt.Insert(vals); err != nil {
		t.Fatal(err)
	}
	for _, rng := range [][2]int64{{0, 10000}, {500, 2500}, {9000, 9500}} {
		want, err := pt.Select(rng[0], rng[1])
		if err != nil {
			t.Fatal(err)
		}
		res, err := db.Query(fmt.Sprintf(
			"SELECT v FROM readings WHERE v >= %d AND v < %d", rng[0], rng[1]))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != len(want) {
			t.Fatalf("[%d,%d): %d rows, want %d", rng[0], rng[1], len(res.Rows), len(want))
		}
		for i, w := range want {
			if res.Rows[i][0] != float64(w) {
				t.Fatalf("[%d,%d): row %d = %v, want %d", rng[0], rng[1], i, res.Rows[i][0], w)
			}
		}
	}
	// COUNT routes through the shard fan-out too.
	res, err := db.Query("SELECT COUNT(*) FROM readings")
	if err != nil {
		t.Fatal(err)
	}
	if int(res.Rows[0][0]) != pt.Stats().Active {
		t.Fatalf("COUNT = %v, want %d", res.Rows[0][0], pt.Stats().Active)
	}
}

// TestLoadTableRejectsPartitionedName pins the unified namespace on the
// snapshot path: a restore may not shadow a partitioned catalog entry.
func TestLoadTableRejectsPartitionedName(t *testing.T) {
	src := amnesiadb.Open(amnesiadb.Options{Seed: 1})
	flat, err := src.CreateTable("x", "a")
	if err != nil {
		t.Fatal(err)
	}
	if err := flat.InsertColumn("a", []int64{1, 2}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := flat.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst := amnesiadb.Open(amnesiadb.Options{Seed: 2})
	if _, err := dst.CreatePartitionedTable("x", "v", 100, 2, "uniform", 10); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.LoadTable(&buf); err == nil {
		t.Fatal("LoadTable shadowed a partitioned table's name")
	}
}

// TestQueryStreamReleasesLocks pins the stream's locking contract: a
// drained (or closed) stream releases its read locks so writers can
// proceed, and an abandoned stream holds them until Close.
func TestQueryStreamReleasesLocks(t *testing.T) {
	db := amnesiadb.Open(amnesiadb.Options{Seed: 1})
	tab, err := db.CreateTable("t", "a")
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.InsertColumn("a", []int64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	qs, err := db.QueryStream("SELECT a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	for {
		rows, err := qs.Next()
		if err != nil {
			t.Fatal(err)
		}
		if rows == nil {
			break
		}
	}
	// The drained stream auto-closed; an insert must not deadlock.
	done := make(chan error, 1)
	go func() { done <- tab.InsertColumn("a", []int64{4}) }()
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// Early Close on an unconsumed stream releases too (idempotent).
	qs2, err := db.QueryStream("SELECT a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	qs2.Close()
	qs2.Close()
	if err := tab.InsertColumn("a", []int64{5}); err != nil {
		t.Fatal(err)
	}
}
