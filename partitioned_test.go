package amnesiadb

import (
	"sync"
	"testing"

	"amnesiadb/internal/xrand"
)

func TestPartitionedTableLifecycle(t *testing.T) {
	db := Open(Options{Seed: 1})
	pt, err := db.CreatePartitionedTable("pt", "a", 1000, 4, "uniform", 400)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Name() != "pt" {
		t.Fatalf("name = %q", pt.Name())
	}
	src := xrand.New(2)
	vals := make([]int64, 2000)
	for i := range vals {
		vals[i] = src.Int63n(1000)
	}
	if err := pt.Insert(vals); err != nil {
		t.Fatal(err)
	}
	s := pt.Stats()
	if s.Tuples != 2000 || s.Active > 400 {
		t.Fatalf("stats = %+v", s)
	}
	got, err := pt.Select(0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != s.Active {
		t.Fatalf("full select = %d values, active = %d", len(got), s.Active)
	}
	rf, mf, pf, err := pt.Precision(0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if rf+mf != 2000 || pf <= 0 || pf > 1 {
		t.Fatalf("precision rf=%d mf=%d pf=%v", rf, mf, pf)
	}
}

func TestPartitionedAdaptMovesBudget(t *testing.T) {
	db := Open(Options{Seed: 3})
	pt, err := db.CreatePartitionedTable("pt", "a", 1000, 4, "uniform", 400)
	if err != nil {
		t.Fatal(err)
	}
	src := xrand.New(4)
	vals := make([]int64, 3000)
	for i := range vals {
		vals[i] = src.Int63n(1000)
	}
	if err := pt.Insert(vals); err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 40; q++ {
		if _, err := pt.Select(750, 1000); err != nil {
			t.Fatal(err)
		}
	}
	pt.Adapt()
	parts := pt.Partitions()
	hot := parts[3]
	if hot.Budget <= parts[0].Budget {
		t.Fatalf("hot shard budget %d not above cold %d", hot.Budget, parts[0].Budget)
	}
	total := 0
	for _, p := range parts {
		total += p.Budget
		if p.Active > p.Budget {
			t.Fatalf("shard over budget: %+v", p)
		}
	}
	if total != 400 {
		t.Fatalf("budget total drifted: %d", total)
	}
}

func TestPartitionedNameCollision(t *testing.T) {
	db := Open(Options{Seed: 5})
	if _, err := db.CreateTable("x", "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreatePartitionedTable("x", "a", 100, 2, "fifo", 10); err == nil {
		t.Fatal("name collision accepted")
	}
	if _, err := db.CreatePartitionedTable("y", "a", 100, 2, "bogus", 10); err == nil {
		t.Fatal("bad strategy accepted")
	}
	// Reserved name also blocks flat tables.
	if _, err := db.CreatePartitionedTable("z", "a", 100, 2, "fifo", 10); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("z", "a"); err == nil {
		t.Fatal("flat table over partitioned name accepted")
	}
}

// TestPartitionedConcurrentInsertSelectAdapt interleaves inserts,
// parallel fan-out selects, precision sweeps and online Adapts on one
// partitioned table. Run under -race: it pins both the facade's
// read/write locking and the partition layer's atomic budgets.
func TestPartitionedConcurrentInsertSelectAdapt(t *testing.T) {
	db := Open(Options{Seed: 11, Parallelism: 4})
	pt, err := db.CreatePartitionedTable("pt", "a", 1000, 8, "uniform", 800)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			src := xrand.New(uint64(20 + g))
			for i := 0; i < 30; i++ {
				vals := make([]int64, 50)
				for j := range vals {
					vals[j] = src.Int63n(1000)
				}
				if err := pt.Insert(vals); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			lo := int64(g * 300)
			for i := 0; i < 60; i++ {
				if _, err := pt.Select(lo, lo+400); err != nil {
					t.Error(err)
					return
				}
				if _, _, _, err := pt.Precision(lo, lo+400); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			pt.Adapt()
		}
	}()
	wg.Wait()
	pt.Adapt()
	total := 0
	for _, p := range pt.Partitions() {
		total += p.Budget
		if p.Active > p.Budget {
			t.Fatalf("shard over budget: %+v", p)
		}
	}
	if total != 800 {
		t.Fatalf("budget total drifted: %d", total)
	}
}
