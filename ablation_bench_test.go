// Ablation benchmarks for the design choices DESIGN.md calls out: the
// anterograde recency bias, the rot high-water mark, the area mold count,
// index pruning, and summary accuracy. Each reports a domain metric so a
// parameter's effect is visible next to its cost.
package amnesiadb_test

import (
	"strconv"
	"testing"

	"amnesiadb/internal/amnesia"
	"amnesiadb/internal/dist"
	"amnesiadb/internal/engine"
	"amnesiadb/internal/index"
	"amnesiadb/internal/summary"
	"amnesiadb/internal/table"
	"amnesiadb/internal/workload"
	"amnesiadb/internal/xrand"
)

// runMapOnce drives a strategy through the Figure 1 loop and returns the
// batch-0 retention percentage.
func runMapOnce(b *testing.B, strat amnesia.Strategy, seed uint64) float64 {
	b.Helper()
	root := xrand.New(seed)
	tb := table.New("t", "a")
	gen := dist.NewGenerator(dist.Uniform, 100000, root.Split())
	ex := engine.New(tb)
	rg := workload.NewRangeGen(root.Split(), "a")
	if _, err := tb.AppendSingleColumn(gen.Batch(nil, 1000)); err != nil {
		b.Fatal(err)
	}
	for batch := 1; batch <= 10; batch++ {
		if _, err := workload.RunRangeBatch(ex, rg, 100); err != nil {
			b.Fatal(err)
		}
		if _, err := tb.AppendSingleColumn(gen.Batch(nil, 200)); err != nil {
			b.Fatal(err)
		}
		strat.Forget(tb, tb.ActiveCount()-1000)
	}
	active, total := tb.ActivePerBatch()
	return 100 * float64(active[0]) / float64(total[0])
}

// BenchmarkAblationAnteBias sweeps the anterograde recency-bias exponent
// and reports initial-batch retention: the knob behind Figure 1's bright
// point 0.
func BenchmarkAblationAnteBias(b *testing.B) {
	for _, bias := range []float64{3, 6, 12, 24} {
		b.Run(name("bias", bias), func(b *testing.B) {
			var retention float64
			for i := 0; i < b.N; i++ {
				retention = runMapOnce(b, amnesia.NewAnterograde(xrand.New(1), bias), benchSeed)
			}
			b.ReportMetric(retention, "batch0-%active")
		})
	}
}

// BenchmarkAblationRotHWM sweeps the rot high-water mark. A mark of 0
// lets rot degenerate toward anterograde behaviour; larger marks protect
// fresh batches and push forgetting onto cold history.
func BenchmarkAblationRotHWM(b *testing.B) {
	for _, age := range []int{0, 1, 2, 4} {
		age := age
		b.Run(name("minAge", float64(age)), func(b *testing.B) {
			var retention float64
			for i := 0; i < b.N; i++ {
				retention = runMapOnce(b, amnesia.NewRot(xrand.New(1), age), benchSeed)
			}
			b.ReportMetric(retention, "batch0-%active")
		})
	}
}

// BenchmarkAblationAreaK sweeps the number of concurrent mold areas and
// reports how fragmented the forgotten set ends up (fewer, larger holes
// versus many small ones).
func BenchmarkAblationAreaK(b *testing.B) {
	for _, k := range []int{1, 2, 4, 8, 16} {
		k := k
		b.Run(name("K", float64(k)), func(b *testing.B) {
			var runs float64
			for i := 0; i < b.N; i++ {
				tb := table.New("t", "a")
				src := xrand.New(1)
				vals := make([]int64, 10000)
				for j := range vals {
					vals[j] = src.Int63n(100000)
				}
				if _, err := tb.AppendSingleColumn(vals); err != nil {
					b.Fatal(err)
				}
				amnesia.NewArea(xrand.New(2), k).Forget(tb, 4000)
				// Count forgotten runs along the timeline.
				n, inRun := 0, false
				for j := 0; j < tb.Len(); j++ {
					if !tb.IsActive(j) {
						if !inRun {
							n++
							inRun = true
						}
					} else {
						inRun = false
					}
				}
				runs = float64(n)
			}
			b.ReportMetric(runs, "forgotten-runs")
		})
	}
}

// BenchmarkIndexPruning measures the §4.4 claim that dropping forgotten
// tuples from indexes reclaims space: it builds a sorted index over a
// half-forgotten table, prunes, and reports the byte savings alongside
// the prune cost.
func BenchmarkIndexPruning(b *testing.B) {
	src := xrand.New(1)
	var saved float64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tb := table.New("t", "a")
		vals := make([]int64, 100000)
		for j := range vals {
			vals[j] = src.Int63n(1 << 20)
		}
		if _, err := tb.AppendSingleColumn(vals); err != nil {
			b.Fatal(err)
		}
		idx, err := index.NewSorted(tb, "a")
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < len(vals); j += 2 {
			tb.Forget(j)
		}
		before := idx.SizeBytes()
		b.StartTimer()
		idx.PruneForgotten(tb)
		b.StopTimer()
		saved = float64(before - idx.SizeBytes())
	}
	b.ReportMetric(saved, "bytes-reclaimed")
}

// BenchmarkSummaryAccuracy measures the summary fate: absorb a forgotten
// majority into segments and report the exactness of the reconstructed
// all-time average (relative error; 0 means lossless).
func BenchmarkSummaryAccuracy(b *testing.B) {
	src := xrand.New(1)
	var relErr float64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tb := table.New("t", "a")
		vals := make([]int64, 100000)
		var sum float64
		for j := range vals {
			vals[j] = src.Int63n(1 << 20)
			sum += float64(vals[j])
		}
		trueAvg := sum / float64(len(vals))
		if _, err := tb.AppendSingleColumn(vals); err != nil {
			b.Fatal(err)
		}
		for j := 0; j < len(vals)*9/10; j++ {
			tb.Forget(j)
		}
		book, err := summary.NewBook(tb, "a")
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		book.Absorb()
		est, err := book.FullAvg()
		b.StopTimer()
		if err != nil {
			b.Fatal(err)
		}
		relErr = abs(est.Avg-trueAvg) / trueAvg
	}
	b.ReportMetric(relErr, "avg-rel-err")
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func name(prefix string, v float64) string {
	return prefix + "=" + strconv.FormatFloat(v, 'g', -1, 64)
}
