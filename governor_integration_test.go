package amnesiadb_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"amnesiadb"
	"amnesiadb/internal/xrand"
)

// TestOverBudgetJoinFailsAlone pins per-query blast-radius isolation:
// a join whose build-side working set exceeds -max-query-bytes dies
// with ErrResourceExhausted, while concurrent small queries on the same
// instance complete byte-identically to their serial runs.
func TestOverBudgetJoinFailsAlone(t *testing.T) {
	db := amnesiadb.Open(amnesiadb.Options{Seed: 11, MaxQueryBytes: 256 << 10})
	defer db.Close()

	mk := func(name string, n int, mod int64) {
		t.Helper()
		tab, err := db.CreateTable(name, "k", "v")
		if err != nil {
			t.Fatal(err)
		}
		src := xrand.New(uint64(n))
		ks := make([]int64, n)
		vs := make([]int64, n)
		for i := range ks {
			ks[i] = src.Int63n(mod)
			vs[i] = int64(i)
		}
		if err := tab.Insert(map[string][]int64{"k": ks, "v": vs}); err != nil {
			t.Fatal(err)
		}
	}
	// The join sides: ~50k rows each means ~600 KB of pooled chunks per
	// side just to gather the build input — far over the 256 KB budget.
	mk("jl", 50_000, 1<<20)
	mk("jr", 50_000, 1<<20)
	// The bystander table is two batches; its queries stay well under
	// budget.
	mk("small", 2_000, 64)

	smalls := []string{
		"SELECT COUNT(*) FROM small",
		"SELECT SUM(k) FROM small WHERE k < 32",
		"SELECT v FROM small WHERE k < 4 LIMIT 50",
		"SELECT AVG(k) FROM small",
	}
	serial := make([]*amnesiadb.QueryResult, len(smalls))
	for i, q := range smalls {
		r, err := db.Query(q)
		if err != nil {
			t.Fatalf("serial %q: %v", q, err)
		}
		serial[i] = r
	}

	join := "SELECT jl.v, jr.v FROM jl JOIN jr ON jl.k = jr.k"
	var wg sync.WaitGroup
	joinErrs := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := db.Query(join)
			joinErrs <- err
		}()
	}
	smallErrs := make(chan error, len(smalls)*8)
	for round := 0; round < 8; round++ {
		for i, q := range smalls {
			wg.Add(1)
			go func(i int, q string) {
				defer wg.Done()
				r, err := db.Query(q)
				if err != nil {
					smallErrs <- fmt.Errorf("%q: %w", q, err)
					return
				}
				if !reflect.DeepEqual(r, serial[i]) {
					smallErrs <- fmt.Errorf("%q diverged from serial run", q)
					return
				}
				smallErrs <- nil
			}(i, q)
		}
	}
	wg.Wait()
	close(joinErrs)
	close(smallErrs)
	for err := range joinErrs {
		if !errors.Is(err, amnesiadb.ErrResourceExhausted) {
			t.Fatalf("over-budget join: got %v, want ErrResourceExhausted", err)
		}
	}
	for err := range smallErrs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// The failed joins must not leak charges: the ledger drains to zero
	// once no queries are live.
	st := db.GovernorStats()
	if st.ActiveQueries != 0 || st.UsedBytes != 0 {
		t.Fatalf("governor ledger not drained: %+v", st)
	}
	if st.PeakBytes == 0 {
		t.Fatal("governor never observed any usage")
	}
}

// TestOverBudgetOrderByFails covers the sort path: the ORDER BY working
// set charges the quota, so an unclustered sort over a big qualifying
// set dies with ErrResourceExhausted instead of allocating its runs.
func TestOverBudgetOrderByFails(t *testing.T) {
	db := amnesiadb.Open(amnesiadb.Options{Seed: 12, MaxQueryBytes: 64 << 10})
	defer db.Close()
	tab, err := db.CreateTable("t", "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	src := xrand.New(5)
	n := 100_000
	av := make([]int64, n)
	bv := make([]int64, n)
	for i := range av {
		av[i] = src.Int63n(1 << 20)
		bv[i] = int64(i)
	}
	if err := tab.Insert(map[string][]int64{"a": av, "b": bv}); err != nil {
		t.Fatal(err)
	}
	// ~100k qualifying rows × 8 bytes of sort permutation ≈ 800 KB.
	_, err = db.Query("SELECT a FROM t ORDER BY a LIMIT 10")
	if !errors.Is(err, amnesiadb.ErrResourceExhausted) {
		t.Fatalf("over-budget ORDER BY: got %v, want ErrResourceExhausted", err)
	}
	// A selective sort fits and still works on the same instance.
	if _, err := db.Query("SELECT a FROM t WHERE a < 2048 ORDER BY a LIMIT 10"); err != nil {
		t.Fatalf("small ORDER BY after kill: %v", err)
	}
}

// TestQueryDeadlineExpires pins the per-query wall-clock bound: a query
// running past MaxQueryDuration is cancelled at a morsel boundary with
// the typed deadline error (or the context's own deadline, whichever
// surfaces first) while an instance without the bound runs it fine.
func TestQueryDeadlineExpires(t *testing.T) {
	db := amnesiadb.Open(amnesiadb.Options{Seed: 13, MaxQueryDuration: time.Nanosecond})
	defer db.Close()
	tab, err := db.CreateTable("t", "a")
	if err != nil {
		t.Fatal(err)
	}
	src := xrand.New(9)
	n := 1 << 20
	av := make([]int64, n)
	for i := range av {
		av[i] = src.Int63n(1 << 20)
	}
	if err := tab.InsertColumn("a", av); err != nil {
		t.Fatal(err)
	}
	_, err = db.Query("SELECT SUM(a) FROM t")
	if err == nil {
		t.Fatal("1ns deadline produced a full result")
	}
	if !errors.Is(err, amnesiadb.ErrQueryDeadline) && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired query: got %v, want deadline error", err)
	}
}

// TestStalledStreamSpillsAndReleasesLocks pins spill-on-stall: an
// unselective value-only stream whose backlog far exceeds the
// pipeline's bounded buffers normally holds its table read lock
// hostage to the consumer. With StallDetach armed, a consumer idle past
// the threshold gets its remaining chunks drained into a governed heap
// buffer, the scan completes, the lock drops (writer makes progress),
// and the tail is still delivered byte-identically.
func TestStalledStreamSpillsAndReleasesLocks(t *testing.T) {
	db := amnesiadb.Open(amnesiadb.Options{Seed: 14, StallDetach: 50 * time.Millisecond})
	defer db.Close()
	tab, err := db.CreateTable("big", "a")
	if err != nil {
		t.Fatal(err)
	}
	const n = 262_144 // 256 chunks — far beyond the pipeline buffer
	src := xrand.New(3)
	av := make([]int64, n)
	for i := range av {
		av[i] = src.Int63n(1 << 18)
	}
	if err := tab.InsertColumn("a", av); err != nil {
		t.Fatal(err)
	}

	// The expected rows, from a plain materialized run.
	want, err := db.Query("SELECT a FROM big")
	if err != nil {
		t.Fatal(err)
	}

	qs, err := db.QueryStream("SELECT a FROM big")
	if err != nil {
		t.Fatal(err)
	}
	defer qs.Close()
	// Consume one chunk, then stall. The first Next also proves the
	// pipeline was live before the detach.
	first, err := qs.Next()
	if err != nil || first == nil {
		t.Fatalf("first chunk: %v %v", first, err)
	}

	// A writer must get through while the consumer stalls: the monitor
	// spills the backlog, the scan finishes, the lock drops.
	done := make(chan error, 1)
	go func() { done <- tab.InsertColumn("a", []int64{1 << 19}) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("writer still blocked: stalled stream never spilled and released its lock")
	}

	// Drain the tail; rows must be byte-identical to the serial result.
	got := make([][]float64, 0, n)
	got = append(got, first...)
	for {
		rows, err := qs.Next()
		if err != nil {
			t.Fatal(err)
		}
		if rows == nil {
			break
		}
		got = append(got, rows...)
	}
	if len(got) != len(want.Rows) {
		t.Fatalf("spilled stream delivered %d rows, want %d", len(got), len(want.Rows))
	}
	if !reflect.DeepEqual(got, want.Rows) {
		t.Fatal("spilled stream diverged from the serial result")
	}

	// Spilled buffers were recycled on drain: the ledger is empty.
	if st := db.GovernorStats(); st.ActiveQueries != 0 || st.UsedBytes != 0 {
		t.Fatalf("governor ledger not drained after spill: %+v", st)
	}
}

// TestStalledOrderedStreamSpills runs the same stall through the
// clustered-ascending ORDER BY path — the other early-release stream
// shape that arms spill-on-stall.
func TestStalledOrderedStreamSpills(t *testing.T) {
	db := amnesiadb.Open(amnesiadb.Options{Seed: 15, StallDetach: 50 * time.Millisecond})
	defer db.Close()
	tab, err := db.CreateTable("big", "a")
	if err != nil {
		t.Fatal(err)
	}
	const n = 131_072
	av := make([]int64, n)
	for i := range av {
		av[i] = int64(i) // clustered ascending: ORDER BY streams without a sort
	}
	if err := tab.InsertColumn("a", av); err != nil {
		t.Fatal(err)
	}
	want, err := db.Query("SELECT a FROM big ORDER BY a")
	if err != nil {
		t.Fatal(err)
	}
	qs, err := db.QueryStream("SELECT a FROM big ORDER BY a")
	if err != nil {
		t.Fatal(err)
	}
	defer qs.Close()
	first, err := qs.Next()
	if err != nil || first == nil {
		t.Fatalf("first chunk: %v %v", first, err)
	}
	done := make(chan error, 1)
	go func() { done <- tab.InsertColumn("a", []int64{n}) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("writer still blocked behind a stalled ORDER BY stream")
	}
	got := append([][]float64{}, first...)
	for {
		rows, err := qs.Next()
		if err != nil {
			t.Fatal(err)
		}
		if rows == nil {
			break
		}
		got = append(got, rows...)
	}
	if !reflect.DeepEqual(got, want.Rows) {
		t.Fatalf("spilled ORDER BY stream diverged: %d rows vs %d", len(got), len(want.Rows))
	}
}
