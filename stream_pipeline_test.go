package amnesiadb_test

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"amnesiadb"
	"amnesiadb/internal/xrand"
)

// pipelineDB builds a database with one large table (several morsels)
// and one partitioned table, both populated.
func pipelineDB(t *testing.T, par int) (*amnesiadb.DB, *amnesiadb.Table) {
	t.Helper()
	db := amnesiadb.Open(amnesiadb.Options{Seed: 5, Parallelism: par})
	tab, err := db.CreateTable("big", "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	const n = 300_000
	src := xrand.New(3)
	av := make([]int64, n)
	bv := make([]int64, n)
	for i := range av {
		av[i] = src.Int63n(1 << 18)
		bv[i] = int64(i)
	}
	if err := tab.Insert(map[string][]int64{"a": av, "b": bv}); err != nil {
		t.Fatal(err)
	}
	return db, tab
}

// TestQueryStreamCtxCancelStopsProducers pins the satellite contract: a
// cancelled request context stops the morsel producers mid-scan — the
// stream errors with the cancellation, table writers are not blocked
// afterwards, and no goroutine outlives the query (the -race job runs
// this fully instrumented).
func TestQueryStreamCtxCancelStopsProducers(t *testing.T) {
	db, tab := pipelineDB(t, 4)
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	qs, err := db.QueryStreamCtx(ctx, "SELECT a FROM big")
	if err != nil {
		t.Fatal(err)
	}
	if rows, err := qs.Next(); err != nil || rows == nil {
		t.Fatalf("first chunk: rows=%v err=%v", rows != nil, err)
	}
	cancel()
	sawCancel := false
	for i := 0; i < 1_000_000; i++ {
		rows, err := qs.Next()
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("post-cancel error = %v, want context.Canceled", err)
			}
			sawCancel = true
			break
		}
		if rows == nil {
			break
		}
	}
	if !sawCancel {
		t.Fatal("cancelled stream drained cleanly; producers were not stopped")
	}
	qs.Close()
	// Producers are gone: a writer acquires the exclusive lock promptly.
	done := make(chan error, 1)
	go func() { done <- tab.Insert(map[string][]int64{"a": {1}, "b": {1}}) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("insert blocked after cancelled stream closed")
	}
	waitGoroutines(t, baseline)
}

// TestQueryStreamAbandonedCloseCancelsScan pins Close as a teardown for
// a stream the client walked away from: producers stop and locks
// release without draining.
func TestQueryStreamAbandonedCloseCancelsScan(t *testing.T) {
	db, tab := pipelineDB(t, 4)
	baseline := runtime.NumGoroutine()
	qs, err := db.QueryStream("SELECT a, b FROM big")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := qs.Next(); err != nil {
		t.Fatal(err)
	}
	qs.Close()
	qs.Close() // idempotent
	if err := tab.Insert(map[string][]int64{"a": {7}, "b": {7}}); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, baseline)
}

// TestQueryStreamPipelinedByteIdentity pins the end-to-end equivalence
// acceptance criterion at the facade: the pipelined stream's
// concatenation equals the materialized Query result for SELECT, JOIN
// and partitioned ORDER BY, at serial and parallel settings.
func TestQueryStreamPipelinedByteIdentity(t *testing.T) {
	for _, par := range []int{1, 0} {
		db := amnesiadb.Open(amnesiadb.Options{Seed: 9, Parallelism: par})
		tab, err := db.CreateTable("t", "k", "v")
		if err != nil {
			t.Fatal(err)
		}
		src := xrand.New(21)
		const n = 150_000
		kv := make([]int64, n)
		vv := make([]int64, n)
		for i := range kv {
			kv[i] = src.Int63n(5000)
			vv[i] = src.Int63n(1 << 20)
		}
		if err := tab.Insert(map[string][]int64{"k": kv, "v": vv}); err != nil {
			t.Fatal(err)
		}
		other, err := db.CreateTable("u", "k")
		if err != nil {
			t.Fatal(err)
		}
		if err := other.InsertColumn("k", kv[:20000]); err != nil {
			t.Fatal(err)
		}
		pt, err := db.CreatePartitionedTable("p", "w", 10000, 8, "uniform", 100000)
		if err != nil {
			t.Fatal(err)
		}
		pw := make([]int64, 40000)
		for i := range pw {
			pw[i] = src.Int63n(10000)
		}
		if err := pt.Insert(pw); err != nil {
			t.Fatal(err)
		}
		queries := []string{
			"SELECT k FROM t WHERE k >= 100 AND k < 4000",
			"SELECT k, v FROM t WHERE k < 2500 LIMIT 31000",
			"SELECT t.v, u.k FROM t JOIN u ON t.k = u.k WHERE t.k < 800",
			"SELECT w FROM p WHERE w >= 500 AND w < 9000",
			"SELECT w FROM p ORDER BY w",
			"SELECT w FROM p ORDER BY w DESC LIMIT 5000",
		}
		for _, q := range queries {
			want, err := db.Query(q)
			if err != nil {
				t.Fatalf("par=%d %s: %v", par, q, err)
			}
			qs, err := db.QueryStream(q)
			if err != nil {
				t.Fatalf("par=%d %s: %v", par, q, err)
			}
			var got [][]float64
			for {
				rows, err := qs.Next()
				if err != nil {
					t.Fatalf("par=%d %s: %v", par, q, err)
				}
				if rows == nil {
					break
				}
				got = append(got, rows...)
			}
			if len(got) != len(want.Rows) {
				t.Fatalf("par=%d %s: streamed %d rows, materialized %d", par, q, len(got), len(want.Rows))
			}
			for i := range got {
				if !reflect.DeepEqual(got[i], want.Rows[i]) {
					t.Fatalf("par=%d %s: row %d = %v, want %v", par, q, i, got[i], want.Rows[i])
				}
			}
			if len(got) == 0 {
				t.Fatalf("par=%d %s: degenerate empty result", par, q)
			}
		}
	}
}

// TestQueryStreamStalledConsumerAllowsWrites pins the scan-side lock
// release: a value-only stream whose consumer never drains must not
// block writers once the scan itself has finished. The query is
// selective enough that its whole backlog fits the pipeline's bounded
// buffers, so the producers run to completion with the consumer stalled
// — at which point the read locks drop even though the stream still
// holds undelivered rows.
func TestQueryStreamStalledConsumerAllowsWrites(t *testing.T) {
	db := amnesiadb.Open(amnesiadb.Options{Seed: 5})
	tab, err := db.CreateTable("big", "a")
	if err != nil {
		t.Fatal(err)
	}
	const n = 262_144 // four base morsels
	src := xrand.New(3)
	av := make([]int64, n)
	for i := range av {
		av[i] = src.Int63n(1 << 18)
	}
	if err := tab.InsertColumn("a", av); err != nil {
		t.Fatal(err)
	}
	// ~0.3% selectivity: a handful of batch-sized chunks, all of which
	// fit in the pipeline's channel buffer.
	qs, err := db.QueryStream("SELECT a FROM big WHERE a < 700")
	if err != nil {
		t.Fatal(err)
	}
	defer qs.Close()
	done := make(chan error, 1)
	go func() { done <- tab.InsertColumn("a", []int64{42}) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("writer still blocked by a stalled value-only stream whose scan finished")
	}
	// The stalled stream still delivers its rows afterwards.
	total := 0
	for {
		rows, err := qs.Next()
		if err != nil {
			t.Fatal(err)
		}
		if rows == nil {
			break
		}
		total += len(rows)
	}
	if total == 0 {
		t.Fatal("degenerate case: no qualifying rows")
	}
}

// waitGoroutines polls until the goroutine count settles near baseline.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
