package amnesiadb_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"amnesiadb"
	"amnesiadb/internal/durability/failpoint"
	"amnesiadb/internal/engine/governor"
)

// relationFingerprint captures everything queries can observe about a
// flat table: full active contents plus the §2.3 precision triple over
// a few ranges, and the stats counters.
func relationFingerprint(t *testing.T, db *amnesiadb.DB, table string) string {
	t.Helper()
	res, err := db.Query(fmt.Sprintf("SELECT v FROM %s ORDER BY v", table))
	if err != nil {
		t.Fatalf("fingerprint query: %v", err)
	}
	tb, ok := db.Table(table)
	if !ok {
		t.Fatalf("table %q missing", table)
	}
	st := tb.Stats()
	return fmt.Sprintf("%v|%+v", res.Rows, st)
}

func partFingerprint(t *testing.T, db *amnesiadb.DB, name string, domain int64) string {
	t.Helper()
	pt, ok := db.Partitioned(name)
	if !ok {
		t.Fatalf("partitioned table %q missing", name)
	}
	vals, err := pt.Select(0, domain)
	if err != nil {
		t.Fatalf("fingerprint select: %v", err)
	}
	return fmt.Sprintf("%v|%+v|%+v", vals, pt.Partitions(), pt.Stats())
}

// seedFlat populates a flat table with enough churn to exercise every
// WAL record kind: inserts past budget (stochastic forgets), an
// explicit policy change, and a vacuum.
func seedFlat(t *testing.T, db *amnesiadb.DB) {
	t.Helper()
	tb, err := db.CreateTable("events", "v")
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	if err := tb.SetPolicy(amnesiadb.Policy{Strategy: "uniform", Budget: 64}); err != nil {
		t.Fatalf("SetPolicy: %v", err)
	}
	for b := 0; b < 8; b++ {
		vals := make([]int64, 32)
		for i := range vals {
			vals[i] = int64(b*32 + i)
		}
		if err := tb.InsertColumn("v", vals); err != nil {
			t.Fatalf("insert batch %d: %v", b, err)
		}
	}
	if err := tb.Vacuum(); err != nil {
		t.Fatalf("Vacuum: %v", err)
	}
	for b := 8; b < 12; b++ {
		vals := make([]int64, 32)
		for i := range vals {
			vals[i] = int64(b*32 + i)
		}
		if err := tb.InsertColumn("v", vals); err != nil {
			t.Fatalf("insert batch %d: %v", b, err)
		}
	}
}

func TestDurableReopenReplaysFlatTable(t *testing.T) {
	dir := t.TempDir()
	db, err := amnesiadb.OpenDir(dir, amnesiadb.Options{Seed: 7, Fsync: "off"})
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	seedFlat(t, db)
	want := relationFingerprint(t, db, "events")
	db.Close()

	re, err := amnesiadb.OpenDir(dir, amnesiadb.Options{Seed: 7, Fsync: "off"})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if got := relationFingerprint(t, re, "events"); got != want {
		t.Fatalf("replayed state diverged\n got %s\nwant %s", got, want)
	}
	// The recovered database must stay writable and keep forgetting.
	tb, _ := re.Table("events")
	if err := tb.InsertColumn("v", []int64{9999}); err != nil {
		t.Fatalf("post-recovery insert: %v", err)
	}
	if got := tb.Stats().Active; got > 64 {
		t.Fatalf("budget not enforced after recovery: %d active", got)
	}
}

func TestDurableReopenReplaysPartitionedTable(t *testing.T) {
	const domain = 1000
	dir := t.TempDir()
	db, err := amnesiadb.OpenDir(dir, amnesiadb.Options{Seed: 11, Fsync: "off"})
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	pt, err := db.CreatePartitionedTable("metrics", "m", domain, 4, "uniform", 120)
	if err != nil {
		t.Fatalf("CreatePartitionedTable: %v", err)
	}
	vals := make([]int64, 400)
	for i := range vals {
		vals[i] = int64((i * 37) % domain)
	}
	if err := pt.Insert(vals); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	// Skew the workload toward the first quarter, then adapt so the
	// budgets move and enforcement forgets in the starved shards.
	for i := 0; i < 50; i++ {
		if _, err := pt.Select(0, domain/4); err != nil {
			t.Fatalf("Select: %v", err)
		}
	}
	if err := pt.Adapt(); err != nil {
		t.Fatalf("Adapt: %v", err)
	}
	if err := pt.Insert(vals[:100]); err != nil {
		t.Fatalf("Insert after adapt: %v", err)
	}
	want := partFingerprint(t, db, "metrics", domain)
	db.Close()

	re, err := amnesiadb.OpenDir(dir, amnesiadb.Options{Seed: 11, Fsync: "off"})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if got := partFingerprint(t, re, "metrics", domain); got != want {
		t.Fatalf("replayed partitioned state diverged\n got %s\nwant %s", got, want)
	}
}

func TestDurableSnapshotTruncatesLog(t *testing.T) {
	dir := t.TempDir()
	db, err := amnesiadb.OpenDir(dir, amnesiadb.Options{Seed: 3, Fsync: "off"})
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	seedFlat(t, db)
	if err := db.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	// Mutations after the snapshot land in the new segment and must
	// replay on top of it.
	tb, _ := db.Table("events")
	if err := tb.InsertColumn("v", []int64{5000, 5001}); err != nil {
		t.Fatalf("post-snapshot insert: %v", err)
	}
	want := relationFingerprint(t, db, "events")
	db.Close()

	re, err := amnesiadb.OpenDir(dir, amnesiadb.Options{Seed: 3, Fsync: "off"})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if got := relationFingerprint(t, re, "events"); got != want {
		t.Fatalf("post-snapshot state diverged\n got %s\nwant %s", got, want)
	}
}

func TestDurableTornTailIsCrashBoundary(t *testing.T) {
	dir := t.TempDir()
	db, err := amnesiadb.OpenDir(dir, amnesiadb.Options{Seed: 5, Fsync: "off"})
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	seedFlat(t, db)
	want := relationFingerprint(t, db, "events")
	db.Close()

	// Append a partial record to the newest segment — the on-disk image
	// of a process that died mid-write. Recovery must stop at the
	// boundary and keep everything acknowledged before it.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segments: %v", err)
	}
	newest := segs[len(segs)-1]
	f, err := os.OpenFile(newest, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatalf("open segment: %v", err)
	}
	if _, err := f.Write([]byte{0x01, 0xff, 0x00}); err != nil {
		t.Fatalf("append torn bytes: %v", err)
	}
	f.Close()

	re, err := amnesiadb.OpenDir(dir, amnesiadb.Options{Seed: 5, Fsync: "off"})
	if err != nil {
		t.Fatalf("reopen across torn tail: %v", err)
	}
	defer re.Close()
	if got := relationFingerprint(t, re, "events"); got != want {
		t.Fatalf("torn-tail recovery diverged\n got %s\nwant %s", got, want)
	}
}

func TestDurableCorruptSnapshotFallsBackAGeneration(t *testing.T) {
	dir := t.TempDir()
	db, err := amnesiadb.OpenDir(dir, amnesiadb.Options{Seed: 9, Fsync: "off"})
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	seedFlat(t, db)
	db.Close()

	// Second session: another snapshot generation plus more WAL.
	db, err = amnesiadb.OpenDir(dir, amnesiadb.Options{Seed: 9, Fsync: "off"})
	if err != nil {
		t.Fatalf("second open: %v", err)
	}
	tb, _ := db.Table("events")
	if err := tb.InsertColumn("v", []int64{7000, 7001, 7002}); err != nil {
		t.Fatalf("second-session insert: %v", err)
	}
	want := relationFingerprint(t, db, "events")
	db.Close()

	// Corrupt the newest snapshot; recovery must fall back to the
	// previous generation and replay the longer WAL chain to the same
	// state.
	snaps, err := filepath.Glob(filepath.Join(dir, "snap-*.db"))
	if err != nil || len(snaps) < 2 {
		t.Fatalf("want >= 2 snapshots, have %v (%v)", snaps, err)
	}
	newest := snaps[len(snaps)-1]
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatalf("read snapshot: %v", err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatalf("corrupt snapshot: %v", err)
	}

	re, err := amnesiadb.OpenDir(dir, amnesiadb.Options{Seed: 9, Fsync: "off"})
	if err != nil {
		t.Fatalf("reopen with corrupt snapshot: %v", err)
	}
	defer re.Close()
	if got := relationFingerprint(t, re, "events"); got != want {
		t.Fatalf("generation fallback diverged\n got %s\nwant %s", got, want)
	}
}

func TestDurableFsyncFailureDegradesToReadOnly(t *testing.T) {
	dir := t.TempDir()
	db, err := amnesiadb.OpenDir(dir, amnesiadb.Options{Seed: 1, Fsync: "always"})
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	defer db.Close()
	tb, err := db.CreateTable("t", "v")
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	if err := tb.InsertColumn("v", []int64{1, 2, 3}); err != nil {
		t.Fatalf("healthy insert: %v", err)
	}

	// Block the healing probe too: degradation must stay latched — not
	// self-heal — for as long as the probe keeps failing.
	failpoint.Enable(governor.FailpointProbe, failpoint.Error(failpoint.ErrInjected))
	failpoint.Enable("wal.fsync", failpoint.Error(failpoint.ErrInjected))
	defer failpoint.DisableAll()
	if err := tb.InsertColumn("v", []int64{4}); !errors.Is(err, amnesiadb.ErrReadOnly) {
		t.Fatalf("insert during fsync failure: got %v, want ErrReadOnly", err)
	}
	failpoint.Disable("wal.fsync")

	// Latched: the disk being healthy again does not lift read-only mode
	// until a probe succeeds, and every mutator sees it.
	if deg, cause := db.Degraded(); !deg || cause == nil {
		t.Fatalf("Degraded() = %v, %v; want true with a cause", deg, cause)
	}
	if err := tb.InsertColumn("v", []int64{5}); !errors.Is(err, amnesiadb.ErrReadOnly) {
		t.Fatalf("insert after degradation: got %v, want ErrReadOnly", err)
	}
	if _, err := db.CreateTable("t2", "v"); !errors.Is(err, amnesiadb.ErrReadOnly) {
		t.Fatalf("create after degradation: got %v, want ErrReadOnly", err)
	}
	if err := tb.Vacuum(); !errors.Is(err, amnesiadb.ErrReadOnly) {
		t.Fatalf("vacuum after degradation: got %v, want ErrReadOnly", err)
	}
	// Reads keep serving.
	if _, err := db.Query("SELECT COUNT(*) FROM t"); err != nil {
		t.Fatalf("read in degraded mode: %v", err)
	}
	st := db.DurabilityStatus()
	if !st.Durable || !st.Degraded || st.Cause == "" || st.NextProbe.IsZero() {
		t.Fatalf("DurabilityStatus during degradation = %+v, want degraded with cause and a scheduled probe", st)
	}
}

// TestDurableDegradedModeSelfHeals pins the self-healing loop: a
// transient fsync failure degrades the database, and once the probe
// finds the directory healthy again the instance restores write
// service — fresh segment, fresh snapshot — without a restart, and a
// reopen recovers everything including post-heal writes.
func TestDurableDegradedModeSelfHeals(t *testing.T) {
	dir := t.TempDir()
	db, err := amnesiadb.OpenDir(dir, amnesiadb.Options{Seed: 7, Fsync: "always"})
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	defer db.Close()
	tb, err := db.CreateTable("t", "v")
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	if err := tb.InsertColumn("v", []int64{1, 2, 3}); err != nil {
		t.Fatalf("healthy insert: %v", err)
	}

	failpoint.Enable("wal.fsync", failpoint.Error(failpoint.ErrInjected))
	defer failpoint.DisableAll()
	if err := tb.InsertColumn("v", []int64{4}); !errors.Is(err, amnesiadb.ErrReadOnly) {
		t.Fatalf("insert during fsync failure: got %v, want ErrReadOnly", err)
	}
	failpoint.DisableAll()

	// The disk is healthy again; the prober should clear the latch.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if deg, _ := db.Degraded(); !deg {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("still degraded after %v: %+v", 10*time.Second, db.DurabilityStatus())
		}
		time.Sleep(10 * time.Millisecond)
	}
	st := db.DurabilityStatus()
	if st.Heals != 1 {
		t.Fatalf("Heals = %d, want 1 (%+v)", st.Heals, st)
	}

	// Write service is restored and post-heal mutations are durable.
	if err := tb.InsertColumn("v", []int64{10, 11}); err != nil {
		t.Fatalf("insert after heal: %v", err)
	}
	want := relationFingerprint(t, db, "t")
	db.Close()
	re, err := amnesiadb.OpenDir(dir, amnesiadb.Options{Seed: 7, Fsync: "always"})
	if err != nil {
		t.Fatalf("reopen after heal: %v", err)
	}
	defer re.Close()
	if got := relationFingerprint(t, re, "t"); got != want {
		t.Fatalf("post-heal recovery diverged\n got %s\nwant %s", got, want)
	}
}

func TestDurableTornWriteLosesOnlyUnacknowledged(t *testing.T) {
	dir := t.TempDir()
	db, err := amnesiadb.OpenDir(dir, amnesiadb.Options{Seed: 2, Fsync: "always"})
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	tb, err := db.CreateTable("t", "v")
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	if err := tb.InsertColumn("v", []int64{1, 2, 3}); err != nil {
		t.Fatalf("acknowledged insert: %v", err)
	}
	want := relationFingerprint(t, db, "t")

	// The next batch dies mid-write: a few bytes land, the rest do not,
	// and the mutation is NOT acknowledged.
	failpoint.Enable("wal.write", failpoint.Torn(3))
	if err := tb.InsertColumn("v", []int64{100, 200}); err == nil {
		t.Fatal("torn insert unexpectedly acknowledged")
	}
	failpoint.DisableAll()
	db.Close()

	re, err := amnesiadb.OpenDir(dir, amnesiadb.Options{Seed: 2, Fsync: "always"})
	if err != nil {
		t.Fatalf("reopen across torn write: %v", err)
	}
	defer re.Close()
	if got := relationFingerprint(t, re, "t"); got != want {
		t.Fatalf("acknowledged state lost or phantom rows appeared\n got %s\nwant %s", got, want)
	}
}

// TestDurableSnapshotConcurrentWithInserts pins the snapshot barrier:
// the catalog must be serialized while every relation is locked, so a
// mutation can never land in both snap-K and wal-K (which replay would
// double-apply) and the serializer never reads a table an Insert is
// appending to (a data race under -race).
func TestDurableSnapshotConcurrentWithInserts(t *testing.T) {
	dir := t.TempDir()
	db, err := amnesiadb.OpenDir(dir, amnesiadb.Options{Seed: 6, Fsync: "off"})
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	tb, err := db.CreateTable("s", "v")
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	const n = 200
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			if err := tb.InsertColumn("v", []int64{int64(i)}); err != nil {
				t.Errorf("insert %d: %v", i, err)
				return
			}
		}
	}()
	for i := 0; i < 10; i++ {
		if err := db.Snapshot(); err != nil {
			t.Errorf("snapshot %d: %v", i, err)
		}
	}
	<-done
	db.Close()

	re, err := amnesiadb.OpenDir(dir, amnesiadb.Options{Seed: 6, Fsync: "off"})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	res, err := re.Query("SELECT v FROM s ORDER BY v")
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if len(res.Rows) != n {
		t.Fatalf("recovered %d rows, want %d (lost or duplicated mutations)", len(res.Rows), n)
	}
	for i, row := range res.Rows {
		if row[0] != float64(i) {
			t.Fatalf("row %d = %v, want %d (double-applied or lost mutation)", i, row[0], i)
		}
	}
}

// TestDurableMidSegmentCorruptionRejectsGeneration pins the crash
// boundary discrimination: damage in the middle of acknowledged
// history — valid records still follow the corrupt one — must fail
// recovery rather than silently truncate everything after the flip.
func TestDurableMidSegmentCorruptionRejectsGeneration(t *testing.T) {
	dir := t.TempDir()
	db, err := amnesiadb.OpenDir(dir, amnesiadb.Options{Seed: 8, Fsync: "always"})
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	tb, err := db.CreateTable("t", "v")
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	for b := 0; b < 20; b++ {
		if err := tb.InsertColumn("v", []int64{int64(b * 3), int64(b*3 + 1), int64(b*3 + 2)}); err != nil {
			t.Fatalf("insert %d: %v", b, err)
		}
	}
	db.Close()

	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segments: %v", err)
	}
	newest := segs[len(segs)-1]
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	// Flip a bit mid-stream: roughly the 10th of 20+ records, so plenty
	// of acknowledged records follow the damage.
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatalf("corrupt segment: %v", err)
	}

	re, err := amnesiadb.OpenDir(dir, amnesiadb.Options{Seed: 8, Fsync: "always"})
	if err == nil {
		re.Close()
		t.Fatal("mid-segment corruption silently accepted as a crash boundary")
	}
}

// TestDroppedHandleMutationsFail pins the drop/mutate race fix: a
// handle that outlived its relation's DropTable must refuse to mutate
// (and so never log), or replay would see a mutation record after the
// drop record and refuse to reopen the database.
func TestDroppedHandleMutationsFail(t *testing.T) {
	dir := t.TempDir()
	db, err := amnesiadb.OpenDir(dir, amnesiadb.Options{Seed: 12, Fsync: "off"})
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	tb, err := db.CreateTable("flat", "v")
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	if err := tb.InsertColumn("v", []int64{1, 2}); err != nil {
		t.Fatalf("insert: %v", err)
	}
	pt, err := db.CreatePartitionedTable("parted", "m", 100, 2, "uniform", 50)
	if err != nil {
		t.Fatalf("CreatePartitionedTable: %v", err)
	}
	if err := pt.Insert([]int64{3, 40, 80}); err != nil {
		t.Fatalf("part insert: %v", err)
	}
	if err := db.DropTable("flat"); err != nil {
		t.Fatalf("drop flat: %v", err)
	}
	if err := db.DropTable("parted"); err != nil {
		t.Fatalf("drop parted: %v", err)
	}

	if err := tb.InsertColumn("v", []int64{99}); !errors.Is(err, amnesiadb.ErrUnknownTable) {
		t.Fatalf("insert on dropped handle: got %v, want ErrUnknownTable", err)
	}
	if err := tb.SetPolicy(amnesiadb.Policy{Strategy: "uniform", Budget: 4}); !errors.Is(err, amnesiadb.ErrUnknownTable) {
		t.Fatalf("setpolicy on dropped handle: got %v, want ErrUnknownTable", err)
	}
	if err := tb.Vacuum(); !errors.Is(err, amnesiadb.ErrUnknownTable) {
		t.Fatalf("vacuum on dropped handle: got %v, want ErrUnknownTable", err)
	}
	if err := pt.Insert([]int64{5}); !errors.Is(err, amnesiadb.ErrUnknownTable) {
		t.Fatalf("part insert on dropped handle: got %v, want ErrUnknownTable", err)
	}
	if err := pt.Adapt(); !errors.Is(err, amnesiadb.ErrUnknownTable) {
		t.Fatalf("adapt on dropped handle: got %v, want ErrUnknownTable", err)
	}

	db.Close()
	re, err := amnesiadb.OpenDir(dir, amnesiadb.Options{Seed: 12, Fsync: "off"})
	if err != nil {
		t.Fatalf("reopen after drops: %v", err)
	}
	defer re.Close()
	if _, ok := re.Table("flat"); ok {
		t.Fatal("dropped flat table resurrected")
	}
	if _, ok := re.Partitioned("parted"); ok {
		t.Fatal("dropped partitioned table resurrected")
	}
}

// TestDropConcurrentWithInsertStaysRecoverable races DropTable against
// a mutator that already holds a handle: whatever interleaving wins,
// the WAL must stay replayable (no insert record after the drop
// record) and the database must reopen.
func TestDropConcurrentWithInsertStaysRecoverable(t *testing.T) {
	dir := t.TempDir()
	db, err := amnesiadb.OpenDir(dir, amnesiadb.Options{Seed: 13, Fsync: "off"})
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	tb, err := db.CreateTable("r", "v")
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			if err := tb.InsertColumn("v", []int64{int64(i)}); err != nil {
				if !errors.Is(err, amnesiadb.ErrUnknownTable) {
					t.Errorf("racing insert: %v", err)
				}
				return
			}
		}
	}()
	if err := db.DropTable("r"); err != nil {
		t.Fatalf("drop: %v", err)
	}
	<-done
	db.Close()

	re, err := amnesiadb.OpenDir(dir, amnesiadb.Options{Seed: 13, Fsync: "off"})
	if err != nil {
		t.Fatalf("reopen after racing drop: %v", err)
	}
	re.Close()
}

// TestLoadTableSnapshotFailureUnregisters pins the half-loaded-table
// fix: when persisting a LoadTable fails, the table must not stay
// registered (and queryable) in a catalog that disk knows nothing
// about.
func TestLoadTableSnapshotFailureUnregisters(t *testing.T) {
	other := amnesiadb.Open(amnesiadb.Options{Seed: 1})
	otb, err := other.CreateTable("x", "v")
	if err != nil {
		t.Fatalf("other create: %v", err)
	}
	if err := otb.InsertColumn("v", []int64{7}); err != nil {
		t.Fatalf("other insert: %v", err)
	}
	tmp := filepath.Join(t.TempDir(), "x.snap")
	f, err := os.Create(tmp)
	if err != nil {
		t.Fatalf("create snap: %v", err)
	}
	if err := otb.Save(f); err != nil {
		t.Fatalf("save: %v", err)
	}
	f.Close()
	other.Close()

	db, err := amnesiadb.OpenDir(t.TempDir(), amnesiadb.Options{Seed: 2, Fsync: "always"})
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	defer db.Close()

	failpoint.Enable("wal.fsync", failpoint.Error(failpoint.ErrInjected))
	defer failpoint.DisableAll()
	rf, err := os.Open(tmp)
	if err != nil {
		t.Fatalf("open snap: %v", err)
	}
	defer rf.Close()
	if _, err := db.LoadTable(rf); err == nil {
		t.Fatal("LoadTable succeeded despite failing snapshot")
	}
	if _, ok := db.Table("x"); ok {
		t.Fatal("half-loaded table left registered after snapshot failure")
	}
}

func TestDurableDropAndDDLReplay(t *testing.T) {
	dir := t.TempDir()
	db, err := amnesiadb.OpenDir(dir, amnesiadb.Options{Seed: 4, Fsync: "off"})
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	if _, err := db.CreateTable("keep", "v"); err != nil {
		t.Fatalf("create keep: %v", err)
	}
	if _, err := db.CreateTable("tmp", "v"); err != nil {
		t.Fatalf("create tmp: %v", err)
	}
	if err := db.DropTable("tmp"); err != nil {
		t.Fatalf("drop tmp: %v", err)
	}
	tb, _ := db.Table("keep")
	if err := tb.InsertColumn("v", []int64{42}); err != nil {
		t.Fatalf("insert: %v", err)
	}
	db.Close()

	re, err := amnesiadb.OpenDir(dir, amnesiadb.Options{Seed: 4, Fsync: "off"})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if _, ok := re.Table("tmp"); ok {
		t.Fatal("dropped table resurrected by replay")
	}
	if got := relationFingerprint(t, re, "keep"); got != relationFingerprint(t, re, "keep") {
		t.Fatal("unstable fingerprint")
	}
	res, err := re.Query("SELECT v FROM keep")
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0] != 42 {
		t.Fatalf("keep contents wrong: %v %v", res, err)
	}
}

// TestDropRecreateInvalidatesResultCache pins the incarnation fix: a
// dropped table's cached results must never serve for a new same-named
// table, even though both start life at table epoch zero.
func TestDropRecreateInvalidatesResultCache(t *testing.T) {
	db := amnesiadb.Open(amnesiadb.Options{Seed: 1})
	defer db.Close()
	tb, err := db.CreateTable("t", "v")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := tb.InsertColumn("v", []int64{1, 2, 3}); err != nil {
		t.Fatalf("insert: %v", err)
	}
	const q = "SELECT SUM(v) FROM t"
	first, err := db.Query(q)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	// Query again so the result is cached at the current signature.
	if _, err := db.Query(q); err != nil {
		t.Fatalf("cache-filling query: %v", err)
	}
	if err := db.DropTable("t"); err != nil {
		t.Fatalf("drop: %v", err)
	}
	tb2, err := db.CreateTable("t", "v")
	if err != nil {
		t.Fatalf("recreate: %v", err)
	}
	if err := tb2.InsertColumn("v", []int64{10, 20, 30}); err != nil {
		t.Fatalf("insert: %v", err)
	}
	second, err := db.Query(q)
	if err != nil {
		t.Fatalf("query after recreate: %v", err)
	}
	if reflect.DeepEqual(first.Rows, second.Rows) {
		t.Fatalf("stale cached result served across drop/recreate: %v", second.Rows)
	}
	if second.Rows[0][0] != 60 {
		t.Fatalf("SUM after recreate = %v, want 60", second.Rows[0][0])
	}
}

// TestLoadTableInvalidatesResultCache pins the same fix on the
// Save/LoadTable path: a loaded snapshot starts at epoch zero too.
func TestLoadTableInvalidatesResultCache(t *testing.T) {
	db := amnesiadb.Open(amnesiadb.Options{Seed: 1})
	defer db.Close()
	tb, err := db.CreateTable("t", "v")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := tb.InsertColumn("v", []int64{5, 6}); err != nil {
		t.Fatalf("insert: %v", err)
	}

	// Snapshot a DIFFERENT state to load under the same name later.
	other := amnesiadb.Open(amnesiadb.Options{Seed: 1})
	otb, err := other.CreateTable("t", "v")
	if err != nil {
		t.Fatalf("other create: %v", err)
	}
	if err := otb.InsertColumn("v", []int64{100}); err != nil {
		t.Fatalf("other insert: %v", err)
	}
	tmp := filepath.Join(t.TempDir(), "t.snap")
	f, err := os.Create(tmp)
	if err != nil {
		t.Fatalf("create snap: %v", err)
	}
	if err := otb.Save(f); err != nil {
		t.Fatalf("save: %v", err)
	}
	f.Close()
	other.Close()

	const q = "SELECT COUNT(*) FROM t"
	if _, err := db.Query(q); err != nil {
		t.Fatalf("query: %v", err)
	}
	if _, err := db.Query(q); err != nil {
		t.Fatalf("cache-filling query: %v", err)
	}
	if err := db.DropTable("t"); err != nil {
		t.Fatalf("drop: %v", err)
	}
	rf, err := os.Open(tmp)
	if err != nil {
		t.Fatalf("open snap: %v", err)
	}
	if _, err := db.LoadTable(rf); err != nil {
		t.Fatalf("load: %v", err)
	}
	rf.Close()
	res, err := db.Query(q)
	if err != nil {
		t.Fatalf("query after load: %v", err)
	}
	if res.Rows[0][0] != 1 {
		t.Fatalf("COUNT after load = %v, want 1 (stale cache?)", res.Rows[0][0])
	}
}
