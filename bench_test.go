// Benchmarks regenerating every figure and table of the paper's
// evaluation (§4). Each benchmark runs the corresponding experiment from
// the internal/exp registry end to end and reports domain metrics
// (final-batch precision, retention percentages) alongside timing, so
// `go test -bench=.` both exercises the full pipeline and exposes whether
// the reproduced shapes still hold. EXPERIMENTS.md records the series.
package amnesiadb_test

import (
	"io"
	"testing"

	"amnesiadb"
	"amnesiadb/internal/dist"
	"amnesiadb/internal/engine"
	"amnesiadb/internal/exp"
	"amnesiadb/internal/expr"
	"amnesiadb/internal/sim"
	"amnesiadb/internal/table"
	"amnesiadb/internal/xrand"
)

// benchSeed keeps benchmark runs comparable across invocations.
const benchSeed = 1

// BenchmarkFig1AmnesiaMap regenerates Figure 1 (amnesia map after 10
// update batches; dbsize=1000, upd-perc=0.20, strategies
// fifo/uniform/ante/area) and reports the initial-batch retention of the
// anterograde strategy — the feature the figure highlights.
func BenchmarkFig1AmnesiaMap(b *testing.B) {
	var anteBatch0 float64
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig()
		cfg.Seed = benchSeed
		cfg.UpdatePerc = 0.20
		results, err := sim.RunAll(cfg, exp.MapStrategies)
		if err != nil {
			b.Fatal(err)
		}
		anteBatch0 = results[2].ActivePercent()[0]
	}
	b.ReportMetric(anteBatch0, "ante-batch0-%active")
}

// BenchmarkFig2RotMap regenerates Figure 2 (rot map per data
// distribution) and reports how differently rot retains serial vs zipfian
// data, the figure's headline contrast.
func BenchmarkFig2RotMap(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		var batch0 []float64
		for _, d := range dist.Kinds {
			cfg := sim.DefaultConfig()
			cfg.Seed = benchSeed
			cfg.UpdatePerc = 0.20
			cfg.Strategy = "rot"
			cfg.Distribution = d
			r, err := sim.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			batch0 = append(batch0, r.ActivePercent()[0])
		}
		min, max := batch0[0], batch0[0]
		for _, v := range batch0 {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		spread = max - min
	}
	b.ReportMetric(spread, "batch0-retention-spread-pts")
}

// BenchmarkFig3RangePrecision regenerates both panels of Figure 3 (range
// query precision under 80% volatility, normal and zipfian data, all five
// strategies) and reports the final-batch precision of the best (area)
// and worst (fifo) lines.
func BenchmarkFig3RangePrecision(b *testing.B) {
	for _, d := range []dist.Kind{dist.Normal, dist.Zipf} {
		b.Run(d.String(), func(b *testing.B) {
			var fifoLast, areaLast float64
			for i := 0; i < b.N; i++ {
				cfg := sim.DefaultConfig()
				cfg.Seed = benchSeed
				cfg.UpdatePerc = 0.80
				cfg.Distribution = d
				results, err := sim.RunAll(cfg, exp.PaperStrategies)
				if err != nil {
					b.Fatal(err)
				}
				fp := results[0].Series.Precisions()
				ap := results[4].Series.Precisions()
				fifoLast, areaLast = fp[len(fp)-1], ap[len(ap)-1]
			}
			b.ReportMetric(fifoLast, "fifo-final-precision")
			b.ReportMetric(areaLast, "area-final-precision")
		})
	}
}

// BenchmarkAggPrecision regenerates the §4.3 aggregate experiment
// (SELECT AVG(a) FROM t, doubled run length) and reports the final mean
// relative AVG error of the uniform baseline — the paper found it
// "marginal", i.e. the curve mirrors Figure 3's envelope.
func BenchmarkAggPrecision(b *testing.B) {
	var avgErr float64
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig()
		cfg.Seed = benchSeed
		cfg.UpdatePerc = 0.80
		cfg.Batches = 20
		cfg.Queries = sim.AggQueries
		cfg.QueriesPerBatch = 200
		cfg.Strategy = "uniform"
		r, err := sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		pts := r.Series.Points
		avgErr = pts[len(pts)-1].AggregateErr
	}
	b.ReportMetric(avgErr, "uniform-final-avg-rel-err")
}

// BenchmarkVolatilitySweep regenerates the §4.2 volatility contrast and
// reports the precision gap between 10% and 80% update volatility for the
// uniform strategy at the final batch.
func BenchmarkVolatilitySweep(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		finals := map[float64]float64{}
		for _, pct := range []float64{0.10, 0.80} {
			cfg := sim.DefaultConfig()
			cfg.Seed = benchSeed
			cfg.UpdatePerc = pct
			cfg.Strategy = "uniform"
			cfg.QueriesPerBatch = 500
			r, err := sim.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			ps := r.Series.Precisions()
			finals[pct] = ps[len(ps)-1]
		}
		gap = finals[0.10] - finals[0.80]
	}
	b.ReportMetric(gap, "low-vs-high-volatility-gap")
}

// BenchmarkSelectivitySweep regenerates the §4.2 selectivity claim and
// reports the precision difference between S=0.01 and S=1.0 for uniform
// amnesia (the paper: increasing S does not improve precision).
func BenchmarkSelectivitySweep(b *testing.B) {
	var delta float64
	for i := 0; i < b.N; i++ {
		finals := map[float64]float64{}
		for _, s := range []float64{0.01, 1.0} {
			cfg := sim.DefaultConfig()
			cfg.Seed = benchSeed
			cfg.UpdatePerc = 0.80
			cfg.Strategy = "uniform"
			cfg.Selectivity = s
			cfg.QueriesPerBatch = 300
			r, err := sim.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			ps := r.Series.Precisions()
			finals[s] = ps[len(ps)-1]
		}
		delta = finals[1.0] - finals[0.01]
	}
	b.ReportMetric(delta, "S1.0-minus-S0.01-precision")
}

// BenchmarkExperimentsEndToEnd runs every registered experiment through
// its figure renderer, timing the complete regeneration path used by
// cmd/amnesiasim.
func BenchmarkExperimentsEndToEnd(b *testing.B) {
	for _, e := range exp.Registry() {
		b.Run(e.ID, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := e.Run(io.Discard, benchSeed); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Vectorized execution benchmarks -----------------------------------
//
// The benchmarks below measure the batch/selection-vector path against an
// inline row-at-a-time baseline equivalent to the pre-vectorization
// engine (ScanRangeActive materializing a fresh position slice, then one
// Get per row). ReportAllocs makes the allocation win visible next to
// the timing: the fused aggregate path allocates O(1) per query while
// the baseline allocates the full intermediate result.

// benchTable builds a budget-constrained table with a realistic
// active/forgotten mix for scan benchmarks.
func benchTable(b *testing.B, n int) *amnesiadb.Table {
	b.Helper()
	db := amnesiadb.Open(amnesiadb.Options{Seed: benchSeed})
	tb, err := db.CreateTable("bench", "a")
	if err != nil {
		b.Fatal(err)
	}
	if err := tb.SetPolicy(amnesiadb.Policy{Strategy: "uniform", Budget: n / 2}); err != nil {
		b.Fatal(err)
	}
	src := xrand.New(benchSeed)
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = src.Int63n(100000)
	}
	if err := tb.InsertColumn("a", vals); err != nil {
		b.Fatal(err)
	}
	return tb
}

// benchEngineTable builds the same shape directly on the internal layers
// so baseline comparisons bypass facade locking.
func benchEngineTable(b *testing.B, n int) *table.Table {
	b.Helper()
	src := xrand.New(benchSeed)
	tb := table.New("bench", "a")
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = src.Int63n(100000)
	}
	if _, err := tb.AppendSingleColumn(vals); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i += 2 {
		tb.Forget(i)
	}
	return tb
}

// BenchmarkActiveScanVectorized measures the batch pipeline end to end
// through the facade: zone-pruned block scan, pooled batches, one touch
// flush.
func BenchmarkActiveScanVectorized(b *testing.B) {
	tb := benchTable(b, 100000)
	p := amnesiadb.Range(20000, 40000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tb.Select("a", p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkActiveScanRowAtATime is the pre-vectorization baseline: an
// unbounded ScanRangeActive materialization followed by one Get per row.
func BenchmarkActiveScanRowAtATime(b *testing.B) {
	tb := benchEngineTable(b, 100000)
	c := tb.MustColumn("a")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := c.ScanRangeActive(20000, 40000, tb.Active(), nil)
		values := make([]int64, 0, len(rows))
		for _, r := range rows {
			values = append(values, c.Get(int(r)))
		}
		tb.TouchMany(rows)
		_ = values
	}
}

// BenchmarkFusedAggregate measures the one-pass vectorized aggregate: no
// intermediate Result, batches folded straight into the accumulator.
func BenchmarkFusedAggregate(b *testing.B) {
	tb := benchEngineTable(b, 100000)
	ex := engine.NewSilent(tb)
	pred := expr.NewRange(20000, 40000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Aggregate("a", pred, engine.ScanActive); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAggregateRowAtATime is the baseline the fused pass replaced:
// materialize the full selection, then reduce it.
func BenchmarkAggregateRowAtATime(b *testing.B) {
	tb := benchEngineTable(b, 100000)
	c := tb.MustColumn("a")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := c.ScanRangeActive(20000, 40000, tb.Active(), nil)
		values := make([]int64, 0, len(rows))
		for _, r := range rows {
			values = append(values, c.Get(int(r)))
		}
		var count int
		var sum int64
		for _, v := range values {
			count++
			sum += v
		}
		if count == 0 {
			b.Fatal("empty aggregate")
		}
	}
}

// BenchmarkParallelActiveScan measures read-path scaling under the
// RWMutex facade: all procs hammer Select on one table concurrently.
func BenchmarkParallelActiveScan(b *testing.B) {
	tb := benchTable(b, 100000)
	p := amnesiadb.Range(20000, 40000)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := tb.Select("a", p); err != nil {
				// Fatal must not run off the benchmark goroutine.
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkPrecisionVectorized measures the §2.3 metric path whose
// ground-truth pass now runs in counting mode (no materialization).
func BenchmarkPrecisionVectorized(b *testing.B) {
	tb := benchEngineTable(b, 100000)
	ex := engine.New(tb)
	pred := expr.NewRange(20000, 40000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := ex.Precision("a", pred); err != nil {
			b.Fatal(err)
		}
	}
}
