package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"amnesiadb"
	"amnesiadb/internal/server"
	"amnesiadb/internal/xrand"
)

// serveResult is one closed-loop serving-bench cell: fixed concurrency,
// every client immediately issuing the next query when its previous one
// drains, so QPS reflects the server's capacity at that offered load
// and the percentiles its latency under it.
type serveResult struct {
	Bench       string  `json:"bench"`
	Rows        int     `json:"rows"`
	Concurrency int     `json:"concurrency"`
	Requests    int     `json:"requests"`
	QPS         float64 `json:"qps"`
	P50Ms       float64 `json:"p50_ms"`
	P95Ms       float64 `json:"p95_ms"`
	P99Ms       float64 `json:"p99_ms"`
	// CacheHitRatio is the result-cache hit fraction over this cell's
	// requests (from the DB's cumulative counters, differenced).
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	// PoolWorkers is the engine pool width bounding scan concurrency
	// regardless of client count.
	PoolWorkers int `json:"pool_workers"`
	// PeakGoroutines is the process-wide goroutine high-water mark
	// sampled during the cell — evidence the engine does not spawn
	// per-query worker armies under load.
	PeakGoroutines int `json:"peak_goroutines"`
	Errors         int `json:"errors"`
	// Retries counts backoff-then-retry transitions the client took on
	// 429/503 responses; ShedRate is shed responses over total HTTP
	// attempts (0 on an unsaturated server).
	Retries  int64   `json:"retries"`
	ShedRate float64 `json:"shed_rate"`
	// BudgetKills counts 413 responses — queries the resource governor
	// cancelled for exceeding -max-query-bytes. Always 0 without that
	// flag; under an overload soak it is the shed traffic whose
	// survivors the latency numbers describe.
	BudgetKills int64 `json:"budget_kills,omitempty"`
}

// hotResult contrasts the first (scanning) execution of a hot query
// with its cached replays — the repeated-query speedup the result
// cache exists for.
type hotResult struct {
	Bench      string  `json:"bench"`
	Rows       int     `json:"rows"`
	ColdMs     float64 `json:"cold_ms"`
	CachedP50  float64 `json:"cached_p50_ms"`
	Speedup    float64 `json:"speedup"`
	CacheHits  uint64  `json:"cache_hits"`
	CacheMiss  uint64  `json:"cache_misses"`
	PlanHits   uint64  `json:"plan_hits"`
	PlanMisses uint64  `json:"plan_misses"`
}

// runServeBench stands up the HTTP serving stack in-process (shared
// worker pool, admission off so saturation shows up as queueing, result
// cache on) over an n-row table and drives POST /query closed-loop at
// several client counts with a mixed workload: a hot cacheable
// aggregate, a rotating set of aggregate variants, and a selective
// projection. One JSON line per concurrency cell, plus one contrasting
// cold-vs-cached latency on the hot statement.
//
// A non-zero maxQueryBytes turns the run into an overload soak: every
// query gets that memory budget, over-budget ones answer 413 (counted
// under Errors/BudgetKills), and the cell's numbers then describe the
// surviving traffic — CI runs this under a low GOMEMLIMIT to prove the
// governor sheds queries instead of the process OOMing.
func runServeBench(n int, maxQueryBytes int64) error {
	db := amnesiadb.Open(amnesiadb.Options{Seed: 1, CacheEntries: 256, MaxQueryBytes: maxQueryBytes})
	defer db.Close()
	t, err := db.CreateTable("big", "a", "b")
	if err != nil {
		return err
	}
	src := xrand.New(7)
	as := make([]int64, n)
	bs := make([]int64, n)
	for i := range as {
		as[i] = src.Int63n(1 << 20)
		bs[i] = int64(i)
	}
	if err := t.Insert(map[string][]int64{"a": as, "b": bs}); err != nil {
		return err
	}

	ts := httptest.NewServer(server.New(db))
	defer ts.Close()
	rc := newRetryClient(&http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 512}}, 99)

	// The workload: index i picks a statement. Half the traffic is the
	// same hot aggregate (cache-friendly); the rest rotates through
	// variants so the cache sees a realistic hit/miss mix, including a
	// selective projection that streams real rows.
	statement := func(i int) string {
		switch {
		case maxQueryBytes > 0 && i%4 == 3:
			// Soak mode: an unclustered ORDER BY whose sort working set
			// (~8 bytes per qualifying row) dwarfs a tight budget, so the
			// governor has something real to kill while the small
			// statements around it keep answering.
			return "SELECT a FROM big WHERE a < 524288 ORDER BY a LIMIT 100"
		case i%2 == 0:
			return "SELECT AVG(a) FROM big WHERE a < 524288"
		case i%4 == 1:
			return fmt.Sprintf("SELECT SUM(a) FROM big WHERE a < %d", 1<<(10+i%8))
		default:
			return "SELECT a, b FROM big WHERE a < 1024 LIMIT 100"
		}
	}
	var budgetKills atomic.Int64
	post := func(sqlText string) (time.Duration, error) {
		body, _ := json.Marshal(map[string]string{"sql": sqlText})
		start := time.Now()
		resp, err := rc.Post(context.Background(), ts.URL+"/query", body)
		if err != nil {
			return 0, err
		}
		_, err = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if err != nil {
			return 0, err
		}
		if resp.StatusCode == http.StatusRequestEntityTooLarge {
			budgetKills.Add(1)
		}
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("status %d", resp.StatusCode)
		}
		return time.Since(start), nil
	}

	enc := json.NewEncoder(os.Stdout)
	for _, conc := range []int{1, 16, 64, 256} {
		reqs := 40 * conc
		if reqs < 400 {
			reqs = 400
		}
		hits0, miss0 := cacheCounters(db)
		retries0, shed0, kills0 := rc.Retries.Load(), rc.Shed.Load(), budgetKills.Load()
		lat := make([]time.Duration, reqs)
		var next, errs atomic.Int64
		var peak atomic.Int64
		stopSample := make(chan struct{})
		go func() {
			for {
				select {
				case <-stopSample:
					return
				case <-time.After(5 * time.Millisecond):
					g := int64(runtime.NumGoroutine())
					for {
						old := peak.Load()
						if g <= old || peak.CompareAndSwap(old, g) {
							break
						}
					}
				}
			}
		}()
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < conc; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1) - 1)
					if i >= reqs {
						return
					}
					d, err := post(statement(i))
					if err != nil {
						errs.Add(1)
						continue
					}
					lat[i] = d
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		close(stopSample)
		hits1, miss1 := cacheCounters(db)
		ok := lat[:0:len(lat)]
		for _, d := range lat {
			if d > 0 {
				ok = append(ok, d)
			}
		}
		sort.Slice(ok, func(i, j int) bool { return ok[i] < ok[j] })
		dh, dm := float64(hits1-hits0), float64(miss1-miss0)
		ratio := 0.0
		if dh+dm > 0 {
			ratio = dh / (dh + dm)
		}
		cellRetries := rc.Retries.Load() - retries0
		cellShed := rc.Shed.Load() - shed0
		shedRate := 0.0
		if attempts := int64(reqs) + cellShed; attempts > 0 {
			shedRate = float64(cellShed) / float64(attempts)
		}
		if err := enc.Encode(serveResult{
			Bench:          "serve_mixed",
			Rows:           n,
			Concurrency:    conc,
			Requests:       reqs,
			QPS:            float64(reqs) / elapsed.Seconds(),
			P50Ms:          pctMs(ok, 0.50),
			P95Ms:          pctMs(ok, 0.95),
			P99Ms:          pctMs(ok, 0.99),
			CacheHitRatio:  ratio,
			PoolWorkers:    db.PoolStats().Workers,
			PeakGoroutines: int(peak.Load()),
			Errors:         int(errs.Load()),
			Retries:        cellRetries,
			ShedRate:       shedRate,
			BudgetKills:    budgetKills.Load() - kills0,
		}); err != nil {
			return err
		}
	}

	// Cold-vs-cached: a fresh statement's first run scans; replays hit.
	hot := "SELECT SUM(a) FROM big WHERE a < 917504"
	coldDur, err := post(hot)
	if err != nil {
		return err
	}
	var reps []time.Duration
	for i := 0; i < 50; i++ {
		d, err := post(hot)
		if err != nil {
			return err
		}
		reps = append(reps, d)
	}
	sort.Slice(reps, func(i, j int) bool { return reps[i] < reps[j] })
	cs := db.CacheStats()
	cold := float64(coldDur.Nanoseconds()) / 1e6
	cachedP50 := pctMs(reps, 0.50)
	speedup := 0.0
	if cachedP50 > 0 {
		speedup = cold / cachedP50
	}
	return enc.Encode(hotResult{
		Bench:      "serve_hot_cached",
		Rows:       n,
		ColdMs:     cold,
		CachedP50:  cachedP50,
		Speedup:    speedup,
		CacheHits:  cs.ResultHits,
		CacheMiss:  cs.ResultMisses,
		PlanHits:   cs.PlanHits,
		PlanMisses: cs.PlanMisses,
	})
}

func cacheCounters(db *amnesiadb.DB) (hits, misses uint64) {
	cs := db.CacheStats()
	return cs.ResultHits, cs.ResultMisses
}

// pctMs returns the p-quantile of sorted durations in milliseconds.
func pctMs(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return float64(sorted[i].Nanoseconds()) / 1e6
}
