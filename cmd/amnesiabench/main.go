// Command amnesiabench sweeps the simulator's parameter space beyond the
// paper's fixed configurations: strategy × distribution × volatility ×
// database size, reporting final-batch precision for each cell. Use it to
// explore where strategies cross over.
//
// Usage:
//
//	amnesiabench [-dbsize 1000] [-batches 10] [-queries 300] [-seed 1] \
//	             [-strategies fifo,uniform,ante,rot,area] \
//	             [-dists serial,uniform,normal,zipfian] \
//	             [-volatility 0.1,0.2,0.5,0.8]
//
// With -scan N it instead micro-benchmarks the engine's scan path over
// an N-row table, serial and morsel-parallel, printing one JSON line
// per cell (rows/sec, allocs/op, workers) so CI can track the perf
// trajectory machine-readably:
//
//	amnesiabench -scan 4000000 [-workers 0]
//
// -join N does the same for the hash join (N-row probe side, N/8 build
// side), -sqljoin N for the SQL JOIN front-end versus the direct DB.Join
// call (reporting the parse+plan+projection overhead), and -partscan N
// for the partitioned fan-out (N rows over 16 value-range shards):
//
//	amnesiabench -join 4000000 [-workers 0]
//	amnesiabench -sqljoin 2000000 [-workers 0]
//	amnesiabench -partscan 4000000 [-workers 0]
//
// -stream N measures the pipelined streaming path end to end at the DB
// facade: time-to-first-chunk versus total drain time for an N-row
// streaming SELECT, serial and pipelined — the wall-clock win of
// overlapping scan with serialization:
//
//	amnesiabench -stream 4000000 [-workers 0]
//
// -serve N benchmarks the whole serving stack: an in-process HTTP
// server over an N-row table, driven closed-loop with a mixed /query
// workload at 1/16/64/256 concurrent clients (p50/p95/p99 latency,
// QPS, result-cache hit ratio, engine pool width, peak goroutines),
// plus a cold-versus-cached contrast on one hot statement:
//
//	amnesiabench -serve 1000000
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"amnesiadb/internal/amnesia"
	"amnesiadb/internal/dist"
	"amnesiadb/internal/sim"
)

func main() {
	var (
		dbsize     = flag.Int("dbsize", 1000, "active tuple budget")
		batches    = flag.Int("batches", 10, "update batches")
		queries    = flag.Int("queries", 300, "queries per batch")
		seed       = flag.Uint64("seed", 1, "random seed")
		strategies = flag.String("strategies", strings.Join(amnesia.Names(), ","), "comma-separated strategies")
		dists      = flag.String("dists", "serial,uniform,normal,zipfian", "comma-separated distributions")
		volatility = flag.String("volatility", "0.1,0.2,0.5,0.8", "comma-separated update percentages")
		scanRows   = flag.Int("scan", 0, "run the scan micro-benchmark over this many rows instead of the sweep")
		joinRows   = flag.Int("join", 0, "run the hash-join micro-benchmark over this many probe rows instead of the sweep")
		sqlJoin    = flag.Int("sqljoin", 0, "benchmark the SQL JOIN path against the direct DB.Join over this many probe rows")
		partRows   = flag.Int("partscan", 0, "run the partitioned fan-out micro-benchmark over this many rows instead of the sweep")
		streamRows = flag.Int("stream", 0, "benchmark time-to-first-chunk vs total drain of a streaming SELECT over this many rows")
		serveRows  = flag.Int("serve", 0, "benchmark the HTTP serving stack closed-loop (mixed /query workload at concurrency 1/16/64/256, plus cold-vs-cached hot query) over this many rows")
		recRows    = flag.Int("recover", 0, "benchmark the durability layer over this many rows: WAL insert-path overhead per fsync policy vs in-memory, plus cold-start recovery (snapshot restore + WAL replay)")
		workers    = flag.Int("workers", 0, "parallelism knob for -scan/-join/-sqljoin/-partscan/-stream (0 = auto/GOMAXPROCS)")
		maxQueryB  = flag.Int64("max-query-bytes", 0, "with -serve: per-query memory budget for the in-process server; over-budget queries answer 413 and count as errors (overload soak mode)")
	)
	flag.Parse()

	if *scanRows > 0 {
		if err := runScanBench(*scanRows, *workers); err != nil {
			fatal(err)
		}
		return
	}
	if *joinRows > 0 {
		if err := runJoinBench(*joinRows, *workers); err != nil {
			fatal(err)
		}
		return
	}
	if *sqlJoin > 0 {
		if err := runSQLJoinBench(*sqlJoin, *workers); err != nil {
			fatal(err)
		}
		return
	}
	if *partRows > 0 {
		if err := runPartScanBench(*partRows, *workers); err != nil {
			fatal(err)
		}
		return
	}
	if *streamRows > 0 {
		if err := runStreamBench(*streamRows, *workers); err != nil {
			fatal(err)
		}
		return
	}
	if *serveRows > 0 {
		if err := runServeBench(*serveRows, *maxQueryB); err != nil {
			fatal(err)
		}
		return
	}
	if *recRows > 0 {
		if err := runRecoverBench(*recRows); err != nil {
			fatal(err)
		}
		return
	}

	vols, err := parseFloats(*volatility)
	if err != nil {
		fatal(err)
	}
	var kinds []dist.Kind
	for _, name := range strings.Split(*dists, ",") {
		k, err := dist.ParseKind(strings.TrimSpace(name))
		if err != nil {
			fatal(err)
		}
		kinds = append(kinds, k)
	}
	stratNames := strings.Split(*strategies, ",")

	fmt.Println("strategy,distribution,volatility,final_precision,mean_precision")
	for _, s := range stratNames {
		s = strings.TrimSpace(s)
		for _, d := range kinds {
			for _, v := range vols {
				cfg := sim.DefaultConfig()
				cfg.DBSize = *dbsize
				cfg.Batches = *batches
				cfg.QueriesPerBatch = *queries
				cfg.Seed = *seed
				cfg.Strategy = s
				cfg.Distribution = d
				cfg.UpdatePerc = v
				r, err := sim.Run(cfg)
				if err != nil {
					fatal(err)
				}
				ps := r.Series.Precisions()
				var mean float64
				for _, p := range ps {
					mean += p
				}
				mean /= float64(len(ps))
				fmt.Printf("%s,%s,%.2f,%.4f,%.4f\n", s, d, v, ps[len(ps)-1], mean)
			}
		}
	}
}

func parseFloats(csv string) ([]float64, error) {
	var out []float64
	for _, s := range strings.Split(csv, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "amnesiabench:", err)
	os.Exit(1)
}
