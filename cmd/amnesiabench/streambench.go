package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"amnesiadb"
	"amnesiadb/internal/xrand"
)

// streamBenchResult is the machine-readable cell for the pipelined
// streaming path: how long until the first chunk of a huge SELECT is in
// the consumer's hands versus how long the whole drain takes. The
// pipeline's reason to exist is ttfc_speedup — without it, first-chunk
// time equals total time because the scan runs to completion before
// the first row moves (the "materialized" baseline cell, where DB.Query
// returns everything at once and ttfc_ns == total_ns by construction).
type streamBenchResult struct {
	Bench   string `json:"bench"`
	Rows    int    `json:"rows"`
	Workers int    `json:"workers"`
	// TTFCNs is the time-to-first-chunk: QueryStream construction plus
	// the first Next (for the materialized baseline, the full Query).
	TTFCNs float64 `json:"ttfc_ns"`
	// TotalNs is the full construction-to-drain wall time.
	TotalNs float64 `json:"total_ns"`
	// TTFCSpeedup is TotalNs / TTFCNs — how much sooner a consumer
	// starts seeing rows than it would if the scan ran to completion
	// first.
	TTFCSpeedup float64 `json:"ttfc_speedup"`
}

// benchLoop runs op until half a second has elapsed (at least 3 times)
// and returns the iteration count.
func benchLoop(op func() error) (int, error) {
	start := time.Now()
	iters := 0
	for elapsed := time.Duration(0); iters < 3 || elapsed < 500*time.Millisecond; elapsed = time.Since(start) {
		if err := op(); err != nil {
			return 0, err
		}
		iters++
	}
	return iters, nil
}

// runStreamBench measures time-to-first-chunk against total query time
// for a streaming SELECT over an n-row table — the materialized
// DB.Query drain as the unpipelined baseline, then the pipelined
// QueryStream — and prints one JSON line per cell.
func runStreamBench(n, workers int) error {
	src := xrand.New(1)
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = src.Int63n(1 << 20)
	}
	db := amnesiadb.Open(amnesiadb.Options{Seed: 1, Parallelism: workers})
	tb, err := db.CreateTable("s", "a")
	if err != nil {
		return err
	}
	if err := tb.InsertColumn("a", vals); err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)

	// Baseline: the one-shot Query materializes the whole result before
	// the caller sees a single row, so its time-to-first-row is its
	// total time.
	var matTotal time.Duration
	matIters, err := benchLoop(func() error {
		t0 := time.Now()
		res, err := db.Query("SELECT a FROM s")
		if err != nil {
			return err
		}
		if len(res.Rows) != n {
			return fmt.Errorf("streambench: materialized %d rows, want %d", len(res.Rows), n)
		}
		matTotal += time.Since(t0)
		return nil
	})
	if err != nil {
		return err
	}
	mat := streamBenchResult{
		Bench:       "materialized",
		Rows:        n,
		Workers:     workers,
		TTFCNs:      float64(matTotal.Nanoseconds()) / float64(matIters),
		TotalNs:     float64(matTotal.Nanoseconds()) / float64(matIters),
		TTFCSpeedup: 1,
	}
	if err := enc.Encode(mat); err != nil {
		return err
	}

	// Pipelined: the stream's first chunk arrives after the first
	// morsel, while later morsels are still scanning.
	var ttfc, total time.Duration
	iters, err := benchLoop(func() error {
		t0 := time.Now()
		qs, err := db.QueryStream("SELECT a FROM s")
		if err != nil {
			return err
		}
		rows, err := qs.Next()
		if err != nil {
			return err
		}
		if rows == nil {
			return fmt.Errorf("streambench: empty first chunk")
		}
		ttfc += time.Since(t0)
		for rows != nil {
			rows, err = qs.Next()
			if err != nil {
				return err
			}
		}
		total += time.Since(t0)
		qs.Close()
		return nil
	})
	if err != nil {
		return err
	}
	res := streamBenchResult{
		Bench:   "pipelined_stream",
		Rows:    n,
		Workers: workers,
		TTFCNs:  float64(ttfc.Nanoseconds()) / float64(iters),
		TotalNs: float64(total.Nanoseconds()) / float64(iters),
	}
	res.TTFCSpeedup = res.TotalNs / res.TTFCNs
	return enc.Encode(res)
}
