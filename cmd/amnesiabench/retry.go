package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"amnesiadb/internal/xrand"
)

const (
	// retryLimit bounds attempts per request: the client backs off, it
	// does not hammer a shedding server forever.
	retryLimit = 5
	// retryBase/retryCap bound the exponential backoff when the server
	// sent no Retry-After.
	retryBase = 2 * time.Millisecond
	retryCap  = 500 * time.Millisecond
	// retryBudget caps one logical request's total wall time across all
	// attempts and backoffs. Without it a server answering Retry-After
	// on every attempt could pin a bench worker for retryLimit times
	// that hint — minutes — long after the measurement window closed.
	retryBudget = 3 * time.Second
)

// retryClient posts JSON with bounded retry on 429 (admission shed) and
// 503 (draining or durability-degraded): exponential backoff with full
// jitter, honoring the server's Retry-After when present but never
// exceeding the per-request wall-time budget, and abandoning the
// attempt — including mid-backoff — the moment the caller's context is
// done. Counters accumulate across requests so benches can report how
// much of the offered load was shed and retried.
type retryClient struct {
	c *http.Client

	mu  sync.Mutex
	src *xrand.Source

	// Retries counts backoff-then-retry transitions; Shed counts 429/503
	// responses received (including ones that exhausted the budget).
	Retries atomic.Int64
	Shed    atomic.Int64
}

func newRetryClient(c *http.Client, seed uint64) *retryClient {
	return &retryClient{c: c, src: xrand.New(seed)}
}

// jitter returns a uniform duration in [1ms/4, d].
func (rc *retryClient) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return time.Millisecond
	}
	rc.mu.Lock()
	n := rc.src.Int63n(int64(d))
	rc.mu.Unlock()
	return time.Duration(n) + time.Millisecond/4
}

// Post issues one logical request, retrying shed responses until the
// attempt limit, the retry wall-time budget, or ctx expires — whichever
// comes first. The returned response's body is unconsumed; any shed
// response consumed on the way is drained and closed.
func (rc *retryClient) Post(ctx context.Context, url string, body []byte) (*http.Response, error) {
	deadline := time.Now().Add(retryBudget)
	delay := retryBase
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := rc.c.Do(req)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusTooManyRequests && resp.StatusCode != http.StatusServiceUnavailable {
			return resp, nil
		}
		rc.Shed.Add(1)
		ra := resp.Header.Get("Retry-After")
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if attempt >= retryLimit {
			return nil, fmt.Errorf("gave up after %d attempts: status %d", attempt+1, resp.StatusCode)
		}
		sleep := delay
		if s, err := strconv.Atoi(ra); err == nil && s > 0 {
			// The server named its price; jitter below it so retries
			// from many clients do not re-arrive in one thundering herd.
			sleep = time.Duration(s) * time.Second
		}
		sleep = rc.jitter(sleep)
		if remain := time.Until(deadline); sleep >= remain {
			return nil, fmt.Errorf("retry budget %v exhausted after %d attempts: status %d", retryBudget, attempt+1, resp.StatusCode)
		}
		rc.Retries.Add(1)
		t := time.NewTimer(sleep)
		select {
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		case <-t.C:
		}
		if delay *= 2; delay > retryCap {
			delay = retryCap
		}
	}
}
