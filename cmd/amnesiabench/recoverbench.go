package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"time"

	"amnesiadb"
)

// walOverheadResult is one insert-path cell: the same workload run
// in-memory (baseline) and against a durable directory under one fsync
// policy; Overhead is the durable/baseline wall-clock ratio — the price
// of group-commit WAL acknowledgement.
type walOverheadResult struct {
	Bench      string  `json:"bench"`
	Rows       int     `json:"rows"`
	Fsync      string  `json:"fsync"` // "none" = in-memory baseline
	Ms         float64 `json:"ms"`
	RowsPerSec float64 `json:"rows_per_sec"`
	Overhead   float64 `json:"overhead"` // 1.0 for the baseline
}

// recoverResult measures cold-start recovery: closing a WAL-heavy
// directory and reopening it (snapshot restore + full tail replay).
type recoverResult struct {
	Bench     string  `json:"bench"`
	Rows      int     `json:"rows"`
	WalBytes  int64   `json:"wal_bytes"`
	RecoverMs float64 `json:"recover_ms"`
}

// insertWorkload drives the shared workload: one table under a uniform
// budget (so the WAL carries forget records too, not just inserts),
// n rows in 1024-row batches.
func insertWorkload(db *amnesiadb.DB, n int) error {
	t, err := db.CreateTable("events", "v")
	if err != nil {
		return err
	}
	if err := t.SetPolicy(amnesiadb.Policy{Strategy: "uniform", Budget: n / 2}); err != nil {
		return err
	}
	const batch = 1024
	buf := make([]int64, 0, batch)
	for i := 0; i < n; i++ {
		buf = append(buf, int64(i))
		if len(buf) == batch || i == n-1 {
			if err := t.InsertColumn("v", buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	return nil
}

// runRecoverBench reports the WAL's insert-path overhead per fsync
// policy against an in-memory baseline, then kills the warmest durable
// directory (close without snapshot) and times recovery on reopen.
func runRecoverBench(n int) error {
	enc := json.NewEncoder(os.Stdout)

	base := amnesiadb.Open(amnesiadb.Options{Seed: 1})
	start := time.Now()
	if err := insertWorkload(base, n); err != nil {
		return err
	}
	baseMs := float64(time.Since(start).Nanoseconds()) / 1e6
	base.Close()
	if err := enc.Encode(walOverheadResult{
		Bench: "wal_insert_overhead", Rows: n, Fsync: "none",
		Ms: baseMs, RowsPerSec: float64(n) / (baseMs / 1e3), Overhead: 1.0,
	}); err != nil {
		return err
	}

	var recoverDir string
	for _, fsync := range []string{"off", "group", "always"} {
		dir, err := os.MkdirTemp("", "amnesia-recover-*")
		if err != nil {
			return err
		}
		db, err := amnesiadb.OpenDir(dir, amnesiadb.Options{Seed: 1, Fsync: fsync})
		if err != nil {
			return err
		}
		start := time.Now()
		if err := insertWorkload(db, n); err != nil {
			return err
		}
		ms := float64(time.Since(start).Nanoseconds()) / 1e6
		db.Close()
		if err := enc.Encode(walOverheadResult{
			Bench: "wal_insert_overhead", Rows: n, Fsync: fsync,
			Ms: ms, RowsPerSec: float64(n) / (ms / 1e3), Overhead: ms / baseMs,
		}); err != nil {
			return err
		}
		if fsync == "always" {
			recoverDir = dir
		} else {
			os.RemoveAll(dir)
		}
	}

	// Recovery: the directory holds the initial (empty) snapshot plus
	// the whole workload as WAL tail — the worst-case replay for this
	// size. Close left no fresh snapshot, so reopen replays everything.
	var walBytes int64
	segs, _ := filepath.Glob(filepath.Join(recoverDir, "wal-*.log"))
	for _, s := range segs {
		if st, err := os.Stat(s); err == nil {
			walBytes += st.Size()
		}
	}
	start = time.Now()
	db, err := amnesiadb.OpenDir(recoverDir, amnesiadb.Options{Seed: 1, Fsync: "always"})
	if err != nil {
		return err
	}
	recoverMs := float64(time.Since(start).Nanoseconds()) / 1e6
	db.Close()
	os.RemoveAll(recoverDir)
	return enc.Encode(recoverResult{
		Bench: "recover", Rows: n, WalBytes: walBytes, RecoverMs: recoverMs,
	})
}
