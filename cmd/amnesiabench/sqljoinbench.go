package main

import (
	"encoding/json"
	"fmt"
	"os"

	"amnesiadb"
	"amnesiadb/internal/engine"
	"amnesiadb/internal/sql"
	"amnesiadb/internal/xrand"
)

// runSQLJoinBench measures the SQL JOIN path against the direct DB.Join
// call over the same data — an n-row probe side joined with an n/8 build
// side sharing one key domain — and reports the front-end's overhead:
// one JSON line each for the direct join, the SQL join, the parse step
// alone, and the derived sql-minus-direct delta. The SQL path pays for
// parse, plan/validation and float64 projection on top of the identical
// HashJoinPar call, so the delta is the end-to-end cost of the SQL
// surface, with parse_ns isolating the front half.
func runSQLJoinBench(n, workers int) error {
	db := amnesiadb.Open(amnesiadb.Options{Seed: 1, Parallelism: workers})
	src := xrand.New(1)
	mk := func(name string, rows int) (*amnesiadb.Table, error) {
		t, err := db.CreateTable(name, "k")
		if err != nil {
			return nil, err
		}
		vals := make([]int64, rows)
		for i := range vals {
			vals[i] = src.Int63n(1 << 20)
		}
		if err := t.InsertColumn("k", vals); err != nil {
			return nil, err
		}
		return t, nil
	}
	probe, err := mk("probe", n)
	if err != nil {
		return err
	}
	build, err := mk("build", n/8)
	if err != nil {
		return err
	}
	total := n + n/8
	const query = "SELECT probe.k, build.k FROM probe JOIN build ON probe.k = build.k"
	w := engine.Workers(workers, total)
	enc := json.NewEncoder(os.Stdout)
	emit := func(bench string, ns, allocs float64) error {
		return enc.Encode(scanResult{
			Bench:       bench,
			Rows:        total,
			Workers:     w,
			NsPerOp:     ns,
			RowsPerSec:  float64(total) / (ns / 1e9),
			AllocsPerOp: allocs,
		})
	}

	directNs, directAllocs, err := measure(func() error {
		rows, err := db.Join(probe, "k", build, "k", amnesiadb.All())
		if err != nil {
			return err
		}
		if len(rows) == 0 {
			return fmt.Errorf("sqljoin: empty direct join")
		}
		return nil
	})
	if err != nil {
		return err
	}
	if err := emit("direct_join", directNs, directAllocs); err != nil {
		return err
	}

	sqlNs, sqlAllocs, err := measure(func() error {
		res, err := db.Query(query)
		if err != nil {
			return err
		}
		if len(res.Rows) == 0 {
			return fmt.Errorf("sqljoin: empty SQL join")
		}
		return nil
	})
	if err != nil {
		return err
	}
	if err := emit("sql_join", sqlNs, sqlAllocs); err != nil {
		return err
	}

	parseNs, parseAllocs, err := measure(func() error {
		_, err := sql.Parse(query)
		return err
	})
	if err != nil {
		return err
	}
	if err := emit("sql_parse", parseNs, parseAllocs); err != nil {
		return err
	}

	// The overhead line is the headline number: what the SQL surface
	// costs per query on top of the identical engine join. A rows/sec
	// rate over a time delta is meaningless (and noise can make the
	// delta negative), so the line carries the deltas alone.
	return enc.Encode(scanResult{
		Bench:       "sql_join_overhead",
		Rows:        total,
		Workers:     w,
		NsPerOp:     sqlNs - directNs,
		AllocsPerOp: sqlAllocs - directAllocs,
	})
}
