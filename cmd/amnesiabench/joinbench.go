package main

import (
	"encoding/json"
	"fmt"
	"os"

	"amnesiadb/internal/engine"
	"amnesiadb/internal/partition"
	"amnesiadb/internal/table"
	"amnesiadb/internal/xrand"
)

// runJoinBench measures the hash join — parallel collect, radix build,
// morsel probe — over an n-row probe side and an n/8 build side sharing
// one key domain, once serial and once morsel-parallel, printing one
// JSON line per cell. Rows/sec counts tuples entering the join (both
// sides), the throughput the parallel build/probe is meant to scale.
func runJoinBench(n, workers int) error {
	src := xrand.New(1)
	mk := func(name string, rows int) (*table.Table, error) {
		tb := table.New(name, "k")
		vals := make([]int64, rows)
		for i := range vals {
			vals[i] = src.Int63n(1 << 20)
		}
		if _, err := tb.AppendSingleColumn(vals); err != nil {
			return nil, err
		}
		return tb, nil
	}
	probe, err := mk("probe", n)
	if err != nil {
		return err
	}
	build, err := mk("build", n/8)
	if err != nil {
		return err
	}
	for i := 0; i < n; i += 2 {
		probe.Forget(i)
	}
	total := n + n/8
	// The probe fans out over qualifying rows (half the probe side is
	// forgotten), so the reported worker count is clamped to the probe
	// morsels actually available, like -scan clamps to column morsels.
	probeMorsels := (n/2 + engine.ProbeMorselRows - 1) / engine.ProbeMorselRows
	enc := json.NewEncoder(os.Stdout)
	for _, cell := range []struct {
		name string
		par  int
	}{{"serial", 1}, {"parallel", workers}} {
		op := func() error {
			res, err := engine.HashJoinPar(probe, "k", build, "k", nil, engine.ScanActive, cell.par)
			if err != nil {
				return err
			}
			if res.Count() == 0 {
				return fmt.Errorf("joinbench: empty join")
			}
			return nil
		}
		ns, allocs, err := measure(op)
		if err != nil {
			return err
		}
		w := engine.Workers(cell.par, total)
		if w > probeMorsels {
			w = probeMorsels
		}
		if err := enc.Encode(scanResult{
			Bench:       cell.name + "_join",
			Rows:        total,
			Workers:     w,
			NsPerOp:     ns,
			RowsPerSec:  float64(total) / (ns / 1e9),
			AllocsPerOp: allocs,
		}); err != nil {
			return err
		}
	}
	return nil
}

// partScanShards is the shard count for -partscan: enough that the
// fan-out has real concurrency to exploit, few enough that every shard
// still holds a meaningful slice of the n rows.
const partScanShards = 16

// runPartScanBench measures the partitioned fan-out: n rows spread over
// partScanShards value-range shards, full-domain selects once with a
// serial fan-out and once concurrent, one JSON line per cell.
func runPartScanBench(n, workers int) error {
	const domain = 1 << 20
	build := func(par int) (*partition.Set, error) {
		s, err := partition.New("a", domain, partScanShards, "uniform", n, xrand.New(1))
		if err != nil {
			return nil, err
		}
		s.SetParallelism(par)
		src := xrand.New(2)
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = src.Int63n(domain)
		}
		if err := s.Insert(vals); err != nil {
			return nil, err
		}
		return s, nil
	}
	enc := json.NewEncoder(os.Stdout)
	for _, cell := range []struct {
		name string
		par  int
	}{{"serial", 1}, {"parallel", workers}} {
		s, err := build(cell.par)
		if err != nil {
			return err
		}
		op := func() error {
			got, err := s.Select(0, domain)
			if err != nil {
				return err
			}
			if len(got) == 0 {
				return fmt.Errorf("partscan: empty select")
			}
			return nil
		}
		ns, allocs, err := measure(op)
		if err != nil {
			return err
		}
		if err := enc.Encode(scanResult{
			Bench:       cell.name + "_partscan",
			Rows:        n,
			Workers:     s.FanWorkers(partScanShards),
			NsPerOp:     ns,
			RowsPerSec:  float64(n) / (ns / 1e9),
			AllocsPerOp: allocs,
		}); err != nil {
			return err
		}
	}
	return nil
}
