package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"amnesiadb/internal/column"
	"amnesiadb/internal/engine"
	"amnesiadb/internal/engine/sched"
	"amnesiadb/internal/expr"
	"amnesiadb/internal/table"
	"amnesiadb/internal/xrand"
)

// scanResult is one machine-readable benchmark cell.
type scanResult struct {
	Bench       string  `json:"bench"`
	Rows        int     `json:"rows"`
	Workers     int     `json:"workers"`
	NsPerOp     float64 `json:"ns_per_op"`
	RowsPerSec  float64 `json:"rows_per_sec"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// MorselBlocks is the effective morsel stride (in blocks) the
	// adaptive scheduler settled on — reported for the chunk-stream
	// cells, where the stride is observable. The base stride is
	// engine.MorselBlocks; growth beyond it means the scan's morsels
	// completed fast enough that the scheduler coarsened them.
	MorselBlocks int `json:"morsel_blocks,omitempty"`
}

// runScanBench measures the engine's select and aggregate paths over an
// n-row half-forgotten table, once serial and once morsel-parallel, and
// prints one JSON line per cell. Rows/sec counts rows scanned (the
// whole table per op), the throughput the morsel scheduler is meant to
// scale.
func runScanBench(n, workers int) error {
	src := xrand.New(1)
	tb := table.New("bench", "a")
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = src.Int63n(1 << 20)
	}
	if _, err := tb.AppendSingleColumn(vals); err != nil {
		return err
	}
	for i := 0; i < n; i += 2 {
		tb.Forget(i)
	}
	pred := expr.NewRange(1<<18, 1<<19) // ~12% selectivity

	// Resolve the knob the way the engine will, so the JSON reports the
	// workers that actually ran: no scan uses more workers than it has
	// morsels, and forced counts clamp to the shared pool's width —
	// asking for 64 workers on an 8-wide pool runs 8.
	pool := sched.Default()
	rowsPerMorsel := engine.MorselBlocks * column.DefaultBlockSize
	numMorsels := (n + rowsPerMorsel - 1) / rowsPerMorsel
	resolved := engine.WorkersSched(pool, workers, n)
	if resolved > numMorsels {
		resolved = numMorsels
	}
	cells := []struct {
		name string
		par  int
		got  int
	}{
		{"serial", 1, 1},
		{"parallel", workers, resolved},
	}
	enc := json.NewEncoder(os.Stdout)
	for _, cell := range cells {
		ex := engine.NewSilent(tb)
		ex.SetParallelism(cell.par)
		ex.SetScheduler(pool)
		selOp := func() error {
			_, err := ex.Select("a", pred, engine.ScanActive)
			return err
		}
		aggOp := func() error {
			_, err := ex.Aggregate("a", pred, engine.ScanActive)
			return err
		}
		// The chunk-stream cell drains the pipelined scan and records
		// the adaptive scheduler's effective stride, so the -scan JSON
		// makes adaptive morsel sizing observable across runs.
		stride := 0
		streamOp := func() error {
			st, err := ex.SelectChunkStream(context.Background(), "a", pred, engine.ScanActive)
			if err != nil {
				return err
			}
			for {
				_, ok, err := st.Next()
				if err != nil {
					return err
				}
				if !ok {
					break
				}
			}
			stride = st.Stride()
			return nil
		}
		for _, b := range []struct {
			kind string
			op   func() error
		}{{"select", selOp}, {"aggregate", aggOp}, {"stream", streamOp}} {
			ns, allocs, err := measure(b.op)
			if err != nil {
				return err
			}
			res := scanResult{
				Bench:       fmt.Sprintf("%s_%s", cell.name, b.kind),
				Rows:        n,
				Workers:     cell.got,
				NsPerOp:     ns,
				RowsPerSec:  float64(n) / (ns / 1e9),
				AllocsPerOp: allocs,
			}
			if b.kind == "stream" {
				res.MorselBlocks = stride
			}
			if err := enc.Encode(res); err != nil {
				return err
			}
		}
	}
	return nil
}

// measure runs op until half a second has elapsed (at least 3 times)
// and reports mean ns/op and heap allocations/op.
func measure(op func() error) (nsPerOp, allocsPerOp float64, err error) {
	if err := op(); err != nil { // warm pools and caches
		return 0, 0, err
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	iters := 0
	for elapsed := time.Duration(0); iters < 3 || elapsed < 500*time.Millisecond; elapsed = time.Since(start) {
		if err := op(); err != nil {
			return 0, 0, err
		}
		iters++
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	nsPerOp = float64(elapsed.Nanoseconds()) / float64(iters)
	allocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(iters)
	return nsPerOp, allocsPerOp, nil
}
