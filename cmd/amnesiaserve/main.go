// Command amnesiaserve runs an amnesiadb HTTP server.
//
//	amnesiaserve -addr :8080 -seed 1 -max-queries 64 -cache-entries 256
//	amnesiaserve -addr :8080 -dir /var/lib/amnesiadb -fsync always
//
// Endpoints (see internal/server): POST /query, POST /insert,
// POST /policy, POST /partitioned, GET /stats, GET /tables,
// GET /precision, GET /healthz.
//
//	curl -s localhost:8080/insert -d '{"table":"t","create":["a"],"columns":{"a":[1,2,3]}}'
//	curl -s localhost:8080/policy -d '{"table":"t","strategy":"fifo","budget":2}'
//	curl -s localhost:8080/query  -d '{"sql":"SELECT COUNT(*) FROM t"}'
//	curl -s localhost:8080/healthz
//
// With -dir the catalog is durable: recovery (snapshot restore + WAL
// replay) runs before the listener opens, every mutation is
// acknowledged only after its WAL batch reaches disk per -fsync, and a
// persistence failure degrades the instance to read-only (mutations
// answer 503 + Retry-After, /healthz reports degraded). A background
// probe re-verifies the WAL directory with exponential backoff and
// restores write service without a restart once it is healthy; see
// docs/ROBUSTNESS.md. Without -dir the database is in-memory, as
// before.
//
// Per-query resource limits: -max-query-bytes budgets each query's
// pooled memory (over-budget queries answer 413, neighbors unaffected)
// and -max-query-ms bounds wall time (408). Under GOMEMLIMIT the
// governor additionally sheds the most expensive in-flight query when
// total charged bytes cross the high-water mark.
//
// Queries execute on a shared worker pool (GOMAXPROCS wide by default),
// so engine concurrency stays bounded no matter how many clients
// connect; -max-queries bounds concurrently executing queries, with a
// bounded wait queue beyond which requests are shed with 429 and a
// Retry-After header. SIGINT/SIGTERM starts a graceful drain: new
// queries get 503, in-flight ones finish (up to -write-timeout), then
// the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"amnesiadb"
	"amnesiadb/internal/durability/failpoint"
	"amnesiadb/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		seed         = flag.Uint64("seed", 1, "seed for amnesia decisions")
		dir          = flag.String("dir", "", "durable data directory; empty = in-memory")
		fsync        = flag.String("fsync", "group", "WAL fsync policy with -dir: always | group | off")
		writeTimeout = flag.Duration("write-timeout", 2*time.Minute, "max time to stream one response; a query stream that projects lazily holds its table read lock until the response finishes, so this bounds how long a stalled client can block writers")
		maxQueries   = flag.Int("max-queries", 64, "queries allowed to execute concurrently before new arrivals queue; 0 = unlimited")
		queueDepth   = flag.Int("queue-depth", 0, "queued queries beyond which arrivals are shed with 429; 0 = 2x max-queries")
		cacheEntries = flag.Int("cache-entries", 256, "result-cache capacity (small materialized results, invalidated by mutation epochs); 0 disables")
		poolSize     = flag.Int("pool", 0, "engine worker-pool width: 0 = shared GOMAXPROCS pool, n>0 = dedicated pool of n workers, n<0 = per-query goroutines")
		maxQueryB    = flag.Int64("max-query-bytes", 0, "per-query memory budget: pooled batches, join build tables and sort runs charge it; an over-budget query fails alone with 413 while its neighbors keep running; 0 = unlimited")
		maxQueryMS   = flag.Int64("max-query-ms", 0, "per-query deadline in milliseconds, enforced at morsel boundaries (expired queries answer 408); 0 = none")
		stallDetach  = flag.Duration("stall-detach", 0, "how long a streaming consumer may stall before its remaining chunks are spilled to a governed buffer and the query's table read locks are released; 0 = default (1s), negative = never")
	)
	flag.Parse()

	// Fault injection for the crash/recovery suites; a no-op unless
	// AMNESIADB_FAILPOINTS is set.
	if err := failpoint.ArmFromEnv(); err != nil {
		log.Fatalf("failpoints: %v", err)
	}

	opts := amnesiadb.Options{
		Seed:             *seed,
		PoolSize:         *poolSize,
		MaxQueries:       *maxQueries,
		CacheEntries:     *cacheEntries,
		Fsync:            *fsync,
		MaxQueryBytes:    *maxQueryB,
		MaxQueryDuration: time.Duration(*maxQueryMS) * time.Millisecond,
		StallDetach:      *stallDetach,
	}
	var db *amnesiadb.DB
	if *dir != "" {
		start := time.Now()
		var err error
		db, err = amnesiadb.OpenDir(*dir, opts)
		if err != nil {
			log.Fatalf("recovery: %v", err)
		}
		fmt.Printf("amnesiaserve recovered %s in %dms (fsync=%s)\n", *dir, time.Since(start).Milliseconds(), *fsync)
	} else {
		db = amnesiadb.Open(opts)
	}
	defer db.Close()
	h := server.NewConfigured(db, server.Config{MaxQueries: *maxQueries, QueueDepth: *queueDepth})
	srv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      *writeTimeout,
	}

	// Listen explicitly so ":0" resolves to a real port before the ready
	// line prints — the crash-kill harness (and humans scripting
	// against ephemeral ports) parse it.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Printf("amnesiaserve listening on %s\n", ln.Addr())

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	// Graceful drain: refuse new queries first, then let http.Server
	// wait out in-flight responses, bounded by the same budget a single
	// stalled stream gets.
	fmt.Println("amnesiaserve draining...")
	h.StartDraining()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *writeTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	fmt.Println("amnesiaserve stopped")
}
