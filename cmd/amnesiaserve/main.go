// Command amnesiaserve runs an amnesiadb HTTP server.
//
//	amnesiaserve -addr :8080 -seed 1
//
// Endpoints (see internal/server): POST /query, POST /insert,
// POST /policy, GET /stats, GET /tables, GET /precision.
//
//	curl -s localhost:8080/insert -d '{"table":"t","create":["a"],"columns":{"a":[1,2,3]}}'
//	curl -s localhost:8080/policy -d '{"table":"t","strategy":"fifo","budget":2}'
//	curl -s localhost:8080/query  -d '{"sql":"SELECT COUNT(*) FROM t"}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"amnesiadb"
	"amnesiadb/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		seed         = flag.Uint64("seed", 1, "seed for amnesia decisions")
		writeTimeout = flag.Duration("write-timeout", 2*time.Minute, "max time to stream one response; a query stream that projects lazily holds its table read lock until the response finishes, so this bounds how long a stalled client can block writers")
	)
	flag.Parse()

	db := amnesiadb.Open(amnesiadb.Options{Seed: *seed})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(db),
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      *writeTimeout,
	}
	fmt.Printf("amnesiaserve listening on %s\n", *addr)
	log.Fatal(srv.ListenAndServe())
}
