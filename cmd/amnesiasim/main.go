// Command amnesiasim regenerates the paper's figures and tables.
//
// Usage:
//
//	amnesiasim -list
//	amnesiasim -exp fig1 [-seed 7] [-o fig1.csv]
//	amnesiasim -exp all
//
// Each experiment prints its data as CSV followed by an ASCII rendering
// of the figure. See DESIGN.md for the experiment index and EXPERIMENTS.md
// for recorded output.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"amnesiadb/internal/exp"
)

func main() {
	var (
		id     = flag.String("exp", "", "experiment id (see -list), or 'all'")
		seed   = flag.Uint64("seed", 1, "random seed for the run")
		out    = flag.String("o", "", "write output to file instead of stdout")
		pngOut = flag.String("png", "", "also render the figure as a PNG to this path (fig1/fig2/fig3a/fig3b/fig3x)")
		list   = flag.Bool("list", false, "list available experiments")
	)
	flag.Parse()

	if *pngOut != "" {
		if *id == "" || *id == "all" {
			fatal(fmt.Errorf("-png needs a single figure experiment id"))
		}
		f, err := os.Create(*pngOut)
		if err != nil {
			fatal(err)
		}
		if err := exp.RenderPNG(f, *id, *seed); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *pngOut)
	}

	if *list {
		for _, e := range exp.Registry() {
			fmt.Printf("%-6s %s\n", e.ID, e.Title)
		}
		return
	}
	if *id == "" {
		fmt.Fprintln(os.Stderr, "amnesiasim: -exp required (use -list to see experiments)")
		flag.Usage()
		os.Exit(2)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}

	if *id == "all" {
		for _, e := range exp.Registry() {
			fmt.Fprintf(w, "## %s — %s\n\n", e.ID, e.Title)
			if err := e.Run(w, *seed); err != nil {
				fatal(err)
			}
			fmt.Fprintln(w)
		}
		return
	}
	e, err := exp.Lookup(*id)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(w, "## %s — %s\n\n", e.ID, e.Title)
	if err := e.Run(w, *seed); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "amnesiasim:", err)
	os.Exit(1)
}
