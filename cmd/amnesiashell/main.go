// Command amnesiashell is an interactive shell over an amnesiac database.
// It seeds a demo table, lets you query it in the paper's SQL subspace,
// and exposes the amnesia machinery through dot-commands, so the effect
// of forgetting can be watched live.
//
//	$ go run ./cmd/amnesiashell
//	amnesia> SELECT COUNT(*) FROM readings
//	amnesia> .policy readings rot 5000
//	amnesia> .insert readings 10000
//	amnesia> SELECT AVG(value) FROM readings WHERE value < 1000
//	amnesia> .stats readings
//
// Commands: .help, .tables, .stats <table>, .policy <table> <strategy>
// <budget>, .insert <table> <n> (uniform demo data), .precision <table>
// <lo> <hi>, .quit
package main

import (
	"bufio"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"amnesiadb"
	"amnesiadb/internal/xrand"
)

func main() {
	db := amnesiadb.Open(amnesiadb.Options{Seed: 1})
	if _, err := db.CreateTable("readings", "value"); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	src := xrand.New(2)
	sh := &shell{db: db, src: src, out: os.Stdout}
	if err := sh.insert("readings", 1000); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(`amnesiadb shell — table "readings" seeded with 1000 uniform values; .help for commands`)

	in := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("amnesia> ")
		if !in.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(in.Text())
		if line == "" {
			continue
		}
		if line == ".quit" || line == ".exit" {
			return
		}
		if err := sh.dispatch(line); err != nil {
			fmt.Println("error:", err)
		}
	}
}

type shell struct {
	db  *amnesiadb.DB
	src *xrand.Source
	out *os.File
}

func (s *shell) dispatch(line string) error {
	if !strings.HasPrefix(line, ".") {
		return s.query(line)
	}
	fields := strings.Fields(line)
	switch fields[0] {
	case ".help":
		fmt.Fprintln(s.out, `SQL:  SELECT col|*|AGG(col) FROM table [WHERE ...] [ORDER BY col] [LIMIT n]
      SELECT a.col, b.col FROM a JOIN b ON a.k = b.k [WHERE ...]
.tables                         list tables
.stats <table>                  tuple counters
.policy <table> <strategy> <n>  set amnesia policy (strategies: `+strings.Join(amnesiadb.Strategies(), " ")+`)
.insert <table> <n>             insert n uniform demo values
.precision <table> <lo> <hi>    PF of the range [lo, hi)
.quit`)
		return nil
	case ".tables":
		for _, n := range s.db.TableNames() {
			fmt.Fprintln(s.out, n)
		}
		return nil
	case ".stats":
		if len(fields) != 2 {
			return fmt.Errorf("usage: .stats <table>")
		}
		t, ok := s.db.Table(fields[1])
		if !ok {
			return fmt.Errorf("unknown table %q", fields[1])
		}
		st := t.Stats()
		fmt.Fprintf(s.out, "tuples=%d active=%d forgotten=%d batches=%d cold=%d segments=%d\n",
			st.Tuples, st.Active, st.Forgotten, st.Batches, st.ColdTier, st.Segments)
		return nil
	case ".policy":
		if len(fields) != 4 {
			return fmt.Errorf("usage: .policy <table> <strategy> <budget>")
		}
		t, ok := s.db.Table(fields[1])
		if !ok {
			return fmt.Errorf("unknown table %q", fields[1])
		}
		budget, err := strconv.Atoi(fields[3])
		if err != nil {
			return fmt.Errorf("bad budget %q", fields[3])
		}
		if err := t.SetPolicy(amnesiadb.Policy{Strategy: fields[2], Budget: budget}); err != nil {
			return err
		}
		return t.EnforceBudget()
	case ".insert":
		if len(fields) != 3 {
			return fmt.Errorf("usage: .insert <table> <n>")
		}
		n, err := strconv.Atoi(fields[2])
		if err != nil || n <= 0 {
			return fmt.Errorf("bad count %q", fields[2])
		}
		return s.insert(fields[1], n)
	case ".precision":
		if len(fields) != 4 {
			return fmt.Errorf("usage: .precision <table> <lo> <hi>")
		}
		t, ok := s.db.Table(fields[1])
		if !ok {
			return fmt.Errorf("unknown table %q", fields[1])
		}
		lo, err1 := strconv.ParseInt(fields[2], 10, 64)
		hi, err2 := strconv.ParseInt(fields[3], 10, 64)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("bad bounds")
		}
		rf, mf, pf, err := t.Precision(t.Columns()[0], amnesiadb.Range(lo, hi))
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "PF=%.4f (returned %d, missed %d)\n", pf, rf, mf)
		return nil
	default:
		return fmt.Errorf("unknown command %s (try .help)", fields[0])
	}
}

func (s *shell) insert(tableName string, n int) error {
	t, ok := s.db.Table(tableName)
	if !ok {
		return fmt.Errorf("unknown table %q", tableName)
	}
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = s.src.Int63n(1_000_000)
	}
	return t.Insert(map[string][]int64{t.Columns()[0]: vals})
}

func (s *shell) query(q string) error {
	res, err := s.db.Query(q)
	if err != nil {
		return err
	}
	fmt.Fprintln(s.out, strings.Join(res.Columns, "\t"))
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			switch {
			case math.IsNaN(v):
				// NULL-style cell: an empty-set aggregate.
				parts[i] = "NULL"
			case res.Ints[i]:
				parts[i] = strconv.FormatInt(int64(v), 10)
			default:
				parts[i] = strconv.FormatFloat(v, 'f', 4, 64)
			}
		}
		fmt.Fprintln(s.out, strings.Join(parts, "\t"))
	}
	fmt.Fprintf(s.out, "(%d rows)\n", len(res.Rows))
	return nil
}
