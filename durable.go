package amnesiadb

import (
	"bytes"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"amnesiadb/internal/durability"
	"amnesiadb/internal/durability/failpoint"
	"amnesiadb/internal/engine"
	"amnesiadb/internal/engine/governor"
	"amnesiadb/internal/partition"
	"amnesiadb/internal/snapshot"
	"amnesiadb/internal/wal"
)

// ErrReadOnly is wrapped by every mutation attempted after a
// persistence failure degraded the database to read-only mode. Queries
// keep working; the serving layer maps this to 503 + Retry-After.
var ErrReadOnly = errors.New("amnesiadb: read-only (durability degraded)")

// durableState is the durability wiring OpenDir attaches to a DB: the
// group-commit segment log, the background snapshotter, the sticky
// degraded flag, and the self-healing prober that clears it.
type durableState struct {
	dir  string
	opts durability.Options
	// log is the live segment log. It is an atomic pointer because the
	// healer swaps in a fresh log while committers may be reading it; a
	// committer that loses the race enqueues into the old (closed) log
	// and gets ErrClosed back, never a torn write.
	log atomic.Pointer[durability.Log]

	// degraded latches the first persistence failure; once set, every
	// mutator returns ErrReadOnly and the server reports degraded:true.
	// The background prober re-verifies the WAL directory with
	// exponential backoff and, once a probe succeeds, atomically
	// restores write service (fresh segment + snapshot + manifest)
	// without a restart.
	degraded atomicErr

	// snapMu serialises snapshots; seq (guarded by it) is the live
	// segment's sequence number.
	snapMu sync.Mutex
	seq    int

	snapCh    chan struct{}
	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once

	// Prober state. probeMu guards probing (a prober goroutine is live)
	// and stopped (closeDurable ran; no new prober may start — the
	// wg.Add would race its Wait). nextProbe is the unixnano of the next
	// scheduled probe, 0 when none; heals counts successful recoveries;
	// lastHeal and backoff0 implement flap suppression: a heal arriving
	// within healFlapWindow of the previous one doubles the next
	// degradation's initial backoff instead of resetting it, so a disk
	// oscillating between healthy and broken converges to the slow
	// probe cadence rather than thrashing segment creation.
	probeMu   sync.Mutex
	probing   bool
	stopped   bool
	nextProbe atomic.Int64
	heals     atomic.Uint64
	lastHeal  atomic.Int64
	backoff0  atomic.Int64
}

// atomicErr is a latch-style error slot: the first Store wins and only
// an explicit Clear (the healer, after restoring service) resets it.
type atomicErr struct{ p atomic.Pointer[error] }

func (a *atomicErr) Load() error {
	if e := a.p.Load(); e != nil {
		return *e
	}
	return nil
}

func (a *atomicErr) Store(err error) { a.p.CompareAndSwap(nil, &err) }

func (a *atomicErr) Clear() { a.p.Store(nil) }

// OpenDir opens (or creates) a durable database rooted at dir.
// Recovery runs first: the newest valid catalog snapshot is restored
// and the WAL tail behind it replayed, a torn trailing record marking
// the crash boundary; a corrupt snapshot falls back to the previous
// generation. Then a fresh segment and a fresh snapshot are written —
// the engine never appends to a possibly-torn segment — and the
// group-commit log attaches, so every subsequent mutation is
// acknowledged only after its batch reaches disk under Options.Fsync.
// Close flushes and detaches the log without snapshotting, so a
// reopen exercises WAL replay.
func OpenDir(dir string, opts Options) (*DB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	pol := durability.FsyncGroup
	if opts.Fsync != "" {
		var err error
		if pol, err = durability.ParsePolicy(opts.Fsync); err != nil {
			return nil, err
		}
	}
	dopts := durability.Options{
		Policy:       pol,
		GroupWindow:  opts.GroupCommitWindow,
		SegmentBytes: opts.SegmentBytes,
	}
	gens, nextSeq, err := durability.Plan(dir)
	if err != nil {
		return nil, err
	}
	var db *DB
	var lastErr error
	for _, g := range gens {
		cand := Open(opts)
		if err := cand.restoreGeneration(g); err != nil {
			lastErr = err
			cand.Close()
			continue
		}
		db = cand
		break
	}
	if db == nil {
		return nil, fmt.Errorf("amnesiadb: recovery failed for every generation in %s: %w", dir, lastErr)
	}
	log, err := durability.CreateLog(dir, nextSeq, dopts)
	if err != nil {
		db.Close()
		return nil, err
	}
	ds := &durableState{
		dir: dir, opts: dopts, seq: nextSeq,
		snapCh: make(chan struct{}, 1),
		stop:   make(chan struct{}),
	}
	ds.log.Store(log)
	ds.backoff0.Store(int64(probeInitialBackoff))
	db.dur = ds
	// Snapshot the recovered state, paired with the fresh segment:
	// recovery next time restores this snapshot and replays only the
	// new segment, and everything older becomes prunable.
	if err := db.writeSnapshot(nextSeq); err != nil {
		db.dur = nil
		log.Close()
		db.Close()
		return nil, err
	}
	durability.Prune(dir)
	ds.wg.Add(1)
	go db.snapshotLoop()
	return db, nil
}

// Dir returns the durable directory, "" for an in-memory database.
func (db *DB) Dir() string {
	if db.dur == nil {
		return ""
	}
	return db.dur.dir
}

// Degraded reports whether a persistence failure has latched the
// database read-only, and the failure that did.
func (db *DB) Degraded() (bool, error) {
	if db.dur == nil {
		return false, nil
	}
	err := db.dur.degraded.Load()
	return err != nil, err
}

// writable gates every mutator: nil for in-memory databases and
// healthy durable ones, ErrReadOnly after degradation.
func (db *DB) writable() error {
	if db.dur == nil {
		return nil
	}
	if err := db.dur.degraded.Load(); err != nil {
		return fmt.Errorf("%w: %v", ErrReadOnly, err)
	}
	return nil
}

// degrade latches read-only mode on the first persistence failure and
// starts the healing prober.
func (db *DB) degrade(err error) {
	if db.dur != nil {
		db.dur.degraded.Store(err)
		db.startProber()
	}
}

// logRecord enqueues one framed WAL record; nil-safe for in-memory
// databases. Callers enqueue under the mutated relation's exclusive
// lock (preserving per-relation log order) and Wait after unlocking.
func (db *DB) logRecord(rec []byte) *durability.Pending {
	if db.dur == nil {
		return nil
	}
	return db.dur.log.Load().Enqueue(rec)
}

// commitWait blocks until every pending record's batch is fsynced (per
// policy). A failure degrades the database and surfaces ErrReadOnly;
// success checks whether the segment has outgrown its threshold and
// pokes the background snapshotter.
func (db *DB) commitWait(ps ...*durability.Pending) error {
	if db.dur == nil {
		return nil
	}
	var err error
	for _, p := range ps {
		if p == nil {
			continue
		}
		if e := p.Wait(); e != nil && err == nil {
			err = e
		}
	}
	if err != nil {
		db.degrade(err)
		return fmt.Errorf("%w: %v", ErrReadOnly, err)
	}
	if db.dur.log.Load().Size() > db.dur.opts.SegmentThreshold() {
		select {
		case db.dur.snapCh <- struct{}{}:
		default:
		}
	}
	return nil
}

// snapshotLoop is the background snapshotter: when the committer
// signals an oversized segment, rotate and snapshot so the old
// segments become prunable.
func (db *DB) snapshotLoop() {
	defer db.dur.wg.Done()
	for {
		select {
		case <-db.dur.stop:
			return
		case <-db.dur.snapCh:
			db.Snapshot()
		}
	}
}

// Snapshot rotates to a fresh WAL segment and writes a catalog
// snapshot paired with it, truncating the replayable history to the
// new segment. The rotation AND the catalog serialization both run
// under a full-catalog barrier (every relation locked exclusively), so
// the encoded bytes are exactly the state at the moment the new
// segment opened — mutations block until the encoding is complete and
// can never land in both the snapshot and the new segment. Only the
// file write happens after mutations resume. Safe to call
// concurrently; calls serialise.
func (db *DB) Snapshot() error {
	if db.dur == nil {
		return errors.New("amnesiadb: Snapshot on an in-memory database")
	}
	if err := db.writable(); err != nil {
		return err
	}
	db.dur.snapMu.Lock()
	defer db.dur.snapMu.Unlock()
	seq := db.dur.seq + 1
	unlock := db.lockCatalog()
	if err := db.dur.log.Load().Rotate(db.dur.dir, seq); err != nil {
		unlock()
		db.degrade(err)
		return fmt.Errorf("%w: %v", ErrReadOnly, err)
	}
	db.dur.seq = seq
	var buf bytes.Buffer
	encErr := snapshot.WriteCatalog(&buf, db.buildCatalogLocked())
	unlock()
	if encErr != nil {
		db.degrade(encErr)
		return fmt.Errorf("%w: %v", ErrReadOnly, encErr)
	}
	if err := durability.WriteSnapshot(db.dur.dir, seq, buf.Bytes()); err != nil {
		// The rotation already happened, so recovery still works from
		// the previous snapshot plus the full segment chain; an
		// unwritable snapshot still means persistence is failing.
		db.degrade(err)
		return fmt.Errorf("%w: %v", ErrReadOnly, err)
	}
	if err := durability.RefreshManifest(db.dur.dir, seq); err != nil {
		db.degrade(err)
		return fmt.Errorf("%w: %v", ErrReadOnly, err)
	}
	durability.Prune(db.dur.dir)
	return nil
}

// writeSnapshot writes catalog snapshot seq without rotating (OpenDir
// pairs it with the just-created segment). Like Snapshot, the catalog
// is encoded under the barrier and only file I/O runs outside it.
func (db *DB) writeSnapshot(seq int) error {
	unlock := db.lockCatalog()
	var buf bytes.Buffer
	err := snapshot.WriteCatalog(&buf, db.buildCatalogLocked())
	unlock()
	if err != nil {
		return err
	}
	if err := durability.WriteSnapshot(db.dur.dir, seq, buf.Bytes()); err != nil {
		return err
	}
	return durability.RefreshManifest(db.dur.dir, seq)
}

// Probe cadence for the self-healing prober: exponential backoff from
// probeInitialBackoff to probeMaxBackoff. A heal landing within
// healFlapWindow of the previous one doubles the next degradation's
// starting backoff (flap suppression).
const (
	probeInitialBackoff = 100 * time.Millisecond
	probeMaxBackoff     = 30 * time.Second
	healFlapWindow      = 5 * time.Second
)

// DurabilityStatus is the durable layer's health as reported by
// DB.DurabilityStatus and surfaced on /healthz.
type DurabilityStatus struct {
	// Durable is false for in-memory databases; the remaining fields
	// are then zero.
	Durable bool
	// Degraded reports read-only mode; Cause is the latched failure.
	Degraded bool
	Cause    string
	// NextProbe is when the healing prober will next re-verify the WAL
	// directory; zero when no probe is scheduled.
	NextProbe time.Time
	// Heals counts successful degraded-to-writable recoveries.
	Heals uint64
}

// DurabilityStatus snapshots the durable layer's health.
func (db *DB) DurabilityStatus() DurabilityStatus {
	ds := db.dur
	if ds == nil {
		return DurabilityStatus{}
	}
	st := DurabilityStatus{Durable: true, Heals: ds.heals.Load()}
	if err := ds.degraded.Load(); err != nil {
		st.Degraded = true
		st.Cause = err.Error()
	}
	if np := ds.nextProbe.Load(); np != 0 {
		st.NextProbe = time.Unix(0, np)
	}
	return st
}

// startProber launches the healing prober unless one is already
// running or the state is closed. Called on every degradation; the
// probeMu/stopped handshake with closeDurable keeps the wg.Add ordered
// before any Wait.
func (db *DB) startProber() {
	ds := db.dur
	ds.probeMu.Lock()
	defer ds.probeMu.Unlock()
	if ds.stopped || ds.probing {
		return
	}
	ds.probing = true
	// Stamp the schedule before the goroutine exists so a status read
	// immediately after degradation already sees a pending probe; the
	// loop refines it each round.
	backoff := time.Duration(ds.backoff0.Load())
	if backoff < probeInitialBackoff {
		backoff = probeInitialBackoff
	}
	ds.nextProbe.Store(time.Now().Add(backoff).UnixNano())
	ds.wg.Add(1)
	go db.probeLoop()
}

// probeLoop sleeps with exponential backoff, probing the WAL directory
// each wake until a heal succeeds or the database closes.
func (db *DB) probeLoop() {
	ds := db.dur
	defer ds.wg.Done()
	backoff := time.Duration(ds.backoff0.Load())
	if backoff < probeInitialBackoff {
		backoff = probeInitialBackoff
	}
	for {
		ds.nextProbe.Store(time.Now().Add(backoff).UnixNano())
		select {
		case <-ds.stop:
			ds.nextProbe.Store(0)
			return
		case <-time.After(backoff):
		}
		if err := db.tryHeal(); err == nil {
			break
		}
		backoff *= 2
		if backoff > probeMaxBackoff {
			backoff = probeMaxBackoff
		}
	}
	ds.nextProbe.Store(0)
	ds.probeMu.Lock()
	ds.probing = false
	stopped := ds.stopped
	ds.probeMu.Unlock()
	// A failure arriving between the heal and the probing=false store
	// above saw probing=true and declined to start a prober; re-check so
	// that degradation is not left unattended.
	if !stopped && ds.degraded.Load() != nil {
		db.startProber()
	}
}

// tryHeal attempts one degraded-to-writable recovery. The probe first
// verifies the WAL directory accepts durable writes (create + write +
// fsync of a scratch file — the same syscalls a commit needs). On
// success it builds a complete fresh generation BEFORE restoring
// service: new segment at seq+1, a catalog snapshot encoded under the
// full-catalog barrier (no mutations can race it — writers are still
// fenced by the degraded latch), and a manifest refresh. Only once all
// three are durable does it swap the live log and clear the latch; any
// failure removes the partial generation so recovery after a crash
// never sees a header-only segment masking the torn tail of the old
// one. The old log is closed after the swap — late committers racing
// the swap land on whichever log their load saw and either way get a
// resolved error, never a torn write.
func (db *DB) tryHeal() error {
	ds := db.dur
	if err := failpoint.Eval(governor.FailpointProbe); err != nil {
		return err
	}
	if err := probeDir(ds.dir); err != nil {
		return err
	}
	ds.snapMu.Lock()
	defer ds.snapMu.Unlock()
	if ds.degraded.Load() == nil {
		return nil // already healed
	}
	seq := ds.seq + 1
	newLog, err := durability.CreateLog(ds.dir, seq, ds.opts)
	if err != nil {
		return err
	}
	abort := func() {
		newLog.Close()
		os.Remove(durability.SegmentPath(ds.dir, seq))
		os.Remove(durability.SnapshotPath(ds.dir, seq))
	}
	unlock := db.lockCatalog()
	var buf bytes.Buffer
	encErr := snapshot.WriteCatalog(&buf, db.buildCatalogLocked())
	unlock()
	if encErr != nil {
		abort()
		return encErr
	}
	if err := durability.WriteSnapshot(ds.dir, seq, buf.Bytes()); err != nil {
		abort()
		return err
	}
	if err := durability.RefreshManifest(ds.dir, seq); err != nil {
		abort()
		return err
	}
	old := ds.log.Swap(newLog)
	ds.seq = seq
	ds.degraded.Clear()
	now := time.Now().UnixNano()
	if last := ds.lastHeal.Swap(now); last != 0 && now-last < int64(healFlapWindow) {
		b := ds.backoff0.Load() * 2
		if b > int64(probeMaxBackoff) {
			b = int64(probeMaxBackoff)
		}
		ds.backoff0.Store(b)
	} else {
		ds.backoff0.Store(int64(probeInitialBackoff))
	}
	ds.heals.Add(1)
	if old != nil {
		old.Close() // usually already broken; the error is the latched cause
	}
	durability.Prune(ds.dir)
	log.Printf("amnesiadb: durability healed: writable again on segment %d", seq)
	return nil
}

// probeDir verifies dir accepts durable writes: create, write, fsync
// and remove a scratch file.
func probeDir(dir string) error {
	f, err := os.CreateTemp(dir, ".probe-*")
	if err != nil {
		return err
	}
	name := f.Name()
	_, werr := f.Write([]byte("amnesiadb probe"))
	serr := f.Sync()
	cerr := f.Close()
	os.Remove(name)
	if werr != nil {
		return werr
	}
	if serr != nil {
		return serr
	}
	return cerr
}

// lockCatalog takes db.mu plus every relation's exclusive lock in
// name order (the same order QueryStreamCtx locks in) and returns the
// matching unlock.
func (db *DB) lockCatalog() func() {
	db.mu.Lock()
	names := make([]string, 0, len(db.tables)+len(db.parts))
	for n := range db.tables {
		names = append(names, n)
	}
	for n := range db.parts {
		names = append(names, n)
	}
	sort.Strings(names)
	var unlocks []func()
	for _, n := range names {
		if t, ok := db.tables[n]; ok {
			t.mu.Lock()
			unlocks = append(unlocks, t.mu.Unlock)
		} else if p, ok := db.parts[n]; ok {
			p.mu.Lock()
			unlocks = append(unlocks, p.mu.Unlock)
		}
	}
	return func() {
		for i := len(unlocks) - 1; i >= 0; i-- {
			unlocks[i]()
		}
		db.mu.Unlock()
	}
}

// buildCatalogLocked assembles the snapshot catalog; the caller holds
// the full barrier from lockCatalog.
func (db *DB) buildCatalogLocked() *snapshot.Catalog {
	var cat snapshot.Catalog
	for _, t := range db.tables {
		cat.Tables = append(cat.Tables, snapshot.TableEntry{
			Table: t.tbl,
			Policy: snapshot.Policy{
				Strategy:      t.policy.Strategy,
				Budget:        t.policy.Budget,
				Column:        t.policy.Column,
				MaxAgeBatches: t.policy.MaxAgeBatches,
			},
		})
	}
	for name, p := range db.parts {
		pe := snapshot.PartEntry{
			Name:     name,
			Column:   p.set.Column(),
			Strategy: p.set.Strategy(),
			Domain:   p.set.Domain(),
		}
		for _, sp := range p.set.Partitions() {
			pe.Shards = append(pe.Shards, snapshot.ShardEntry{
				Lo: sp.Lo, Hi: sp.Hi, Budget: sp.Budget(), Table: sp.Table(),
			})
		}
		cat.Parts = append(cat.Parts, pe)
	}
	// Deterministic section order keeps snapshots byte-comparable.
	sort.Slice(cat.Tables, func(i, j int) bool { return cat.Tables[i].Table.Name() < cat.Tables[j].Table.Name() })
	sort.Slice(cat.Parts, func(i, j int) bool { return cat.Parts[i].Name < cat.Parts[j].Name })
	return &cat
}

// restoreGeneration rebuilds the catalog from one recovery candidate:
// restore its snapshot (if any), then replay its WAL segments in
// order. A truncated — or corrupt-with-nothing-decodable-after —
// record at the tail of the LAST segment is the crash boundary:
// everything before it is state the engine acknowledged or was about
// to; everything after was never acknowledged. Any other failure
// (damage in an earlier segment, a valid record following the corrupt
// one, a record the catalog rejects) rejects the generation so OpenDir
// can fall back.
func (db *DB) restoreGeneration(g durability.Generation) error {
	if g.SnapshotPath != "" {
		f, err := os.Open(g.SnapshotPath)
		if err != nil {
			return err
		}
		cat, err := snapshot.ReadCatalog(f)
		f.Close()
		if err != nil {
			return err
		}
		for _, te := range cat.Tables {
			if err := db.registerRestoredTable(te); err != nil {
				return err
			}
		}
		for _, pe := range cat.Parts {
			if err := db.registerRestoredPart(pe); err != nil {
				return err
			}
		}
	}
	for i, seg := range g.Segments {
		f, err := os.Open(seg)
		if err != nil {
			return err
		}
		off, rerr := wal.ReplayOffset(f, recoveryApplier{db})
		f.Close()
		if rerr == nil {
			continue
		}
		if i < len(g.Segments)-1 || errors.Is(rerr, wal.ErrApply) {
			// Damage before the newest segment, or a fully-written
			// record the catalog rejects, is never a crash artifact;
			// reject the generation so OpenDir can fall back.
			return rerr
		}
		switch {
		case errors.Is(rerr, wal.ErrTruncated):
			// Torn trailing record: the classic crash boundary. The
			// prefix replayed cleanly and nothing past the boundary was
			// ever acknowledged under fsync=always/group semantics.
		case errors.Is(rerr, wal.ErrCorrupt):
			// A corrupt record in the newest segment is the crash
			// boundary only when it sits at the physical tail. A
			// decodable record after it means acknowledged history was
			// damaged mid-segment — silently truncating there would
			// drop every acknowledged write behind the damage, so
			// reject the generation instead.
			data, err := os.ReadFile(seg)
			if err != nil {
				return err
			}
			if int64(len(data)) > off+1 && wal.ContainsRecord(data[off+1:]) {
				return fmt.Errorf("mid-segment corruption at offset %d of %s: %w", off, filepath.Base(seg), rerr)
			}
		default:
			return rerr
		}
		if st, err := os.Stat(seg); err == nil && st.Size() > off {
			log.Printf("amnesiadb: recovery: %s: crash boundary at offset %d, dropping %d trailing bytes",
				filepath.Base(seg), off, st.Size()-off)
		}
		return nil
	}
	return nil
}

// registerRestoredTable installs a snapshotted flat table (and its
// policy) into the catalog.
func (db *DB) registerRestoredTable(te snapshot.TableEntry) error {
	db.mu.Lock()
	if db.taken(te.Table.Name()) {
		db.mu.Unlock()
		return fmt.Errorf("amnesiadb: snapshot names %q twice", te.Table.Name())
	}
	ex := engine.New(te.Table)
	ex.SetParallelism(db.par)
	ex.SetScheduler(db.pool)
	t := &Table{db: db, tbl: te.Table, ex: ex}
	te.Table.AdvanceEpoch(db.nextIncarnation())
	db.tables[te.Table.Name()] = t
	db.mu.Unlock()
	if te.Policy.Budget != 0 || te.Policy.MaxAgeBatches != 0 {
		return t.SetPolicy(Policy{
			Strategy:      te.Policy.Strategy,
			Budget:        te.Policy.Budget,
			Column:        te.Policy.Column,
			MaxAgeBatches: te.Policy.MaxAgeBatches,
		})
	}
	return nil
}

// registerRestoredPart installs a snapshotted partition set.
func (db *DB) registerRestoredPart(pe snapshot.PartEntry) error {
	shards := make([]partition.RestoredShard, len(pe.Shards))
	for i, sh := range pe.Shards {
		shards[i] = partition.RestoredShard{Lo: sh.Lo, Hi: sh.Hi, Budget: sh.Budget, Table: sh.Table}
	}
	set, err := partition.Restore(pe.Column, pe.Domain, pe.Strategy, shards, db.splitSrc())
	if err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.taken(pe.Name) {
		return fmt.Errorf("amnesiadb: snapshot names %q twice", pe.Name)
	}
	set.SetParallelism(db.par)
	set.SetScheduler(db.pool)
	set.AdvanceEpoch(db.nextIncarnation())
	db.parts[pe.Name] = &PartitionedTable{db: db, name: pe.Name, set: set}
	return nil
}

// nextIncarnation returns an epoch advance that stamps a relation
// incarnation into its own disjoint 2^32 epoch range, so a restored or
// recreated same-named relation can never collide with a dropped
// predecessor's result-cache signatures.
func (db *DB) nextIncarnation() uint64 { return db.incarnation.Add(1) << 32 }

// DropTable removes a relation — either kind — from the catalog. The
// tuple storage is released; result-cache entries for the old table
// die with its epoch signature (new same-named tables start in a fresh
// incarnation epoch range). The handle is killed under its exclusive
// lock before the drop record is enqueued: an in-flight mutation
// holding the lock gets its WAL record sequenced before the drop, and
// any later one sees the dead handle and fails without logging — so no
// mutation record can ever follow its relation's drop record.
func (db *DB) DropTable(name string) error {
	if err := db.writable(); err != nil {
		return err
	}
	db.mu.Lock()
	t, okT := db.tables[name]
	pt, okP := db.parts[name]
	if !okT && !okP {
		db.mu.Unlock()
		return fmt.Errorf("amnesiadb: %w %q", ErrUnknownTable, name)
	}
	var p *durability.Pending
	if okT {
		t.mu.Lock()
		t.dropped = true
		delete(db.tables, name)
		p = db.logRecord(wal.RecordDrop(name))
		t.mu.Unlock()
	} else {
		pt.mu.Lock()
		pt.dropped = true
		delete(db.parts, name)
		p = db.logRecord(wal.RecordDrop(name))
		pt.mu.Unlock()
	}
	db.mu.Unlock()
	return db.commitWait(p)
}

// recoveryApplier replays WAL records into the DB raw: appends without
// budget enforcement, forgets by logged position — the log records
// *what* was forgotten, never why, so replay reproduces state
// bit-for-bit without re-running any stochastic strategy. db.dur is
// nil during replay, so nothing re-logs.
type recoveryApplier struct{ db *DB }

func (a recoveryApplier) table(name string) (*Table, error) {
	a.db.mu.RLock()
	t, ok := a.db.tables[name]
	a.db.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("replay references unknown table %q", name)
	}
	return t, nil
}

func (a recoveryApplier) part(name string) (*PartitionedTable, error) {
	a.db.mu.RLock()
	p, ok := a.db.parts[name]
	a.db.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("replay references unknown partitioned table %q", name)
	}
	return p, nil
}

func (a recoveryApplier) CreateTable(name string, columns []string) error {
	_, err := a.db.CreateTable(name, columns...)
	return err
}

func (a recoveryApplier) CreatePartitioned(name, column string, domain int64, parts int, strategy string, totalBudget int) error {
	_, err := a.db.CreatePartitionedTable(name, column, domain, parts, strategy, totalBudget)
	return err
}

func (a recoveryApplier) Drop(name string) error { return a.db.DropTable(name) }

func (a recoveryApplier) Insert(name string, vals map[string][]int64) error {
	t, err := a.table(name)
	if err != nil {
		return err
	}
	_, err = t.tbl.AppendBatch(vals)
	return err
}

func (a recoveryApplier) positions(name string, ps []int, remember bool) error {
	t, err := a.table(name)
	if err != nil {
		return err
	}
	for _, p := range ps {
		if p < 0 || p >= t.tbl.Len() {
			return fmt.Errorf("replay position %d outside %q (%d tuples)", p, name, t.tbl.Len())
		}
	}
	if remember {
		for _, p := range ps {
			t.tbl.Remember(p)
		}
		return nil
	}
	t.tbl.ForgetMany(ps)
	return nil
}

func (a recoveryApplier) Forget(name string, ps []int) error {
	return a.positions(name, ps, false)
}

func (a recoveryApplier) Remember(name string, ps []int) error {
	return a.positions(name, ps, true)
}

func (a recoveryApplier) Vacuum(name string) error {
	t, err := a.table(name)
	if err != nil {
		return err
	}
	t.tbl.Vacuum()
	if t.book != nil {
		t.book.Rebase()
	}
	return nil
}

func (a recoveryApplier) PartInsert(name string, shards []wal.ShardMutation) error {
	p, err := a.part(name)
	if err != nil {
		return err
	}
	for _, s := range shards {
		if err := p.set.ReplayShard(s.Shard, s.Values, s.Forgotten); err != nil {
			return err
		}
	}
	return nil
}

func (a recoveryApplier) PartAdapt(name string, shards []wal.ShardAdapt) error {
	p, err := a.part(name)
	if err != nil {
		return err
	}
	for _, s := range shards {
		if err := p.set.SetShardBudget(s.Shard, s.Budget); err != nil {
			return err
		}
		if err := p.set.ReplayShard(s.Shard, nil, s.Forgotten); err != nil {
			return err
		}
	}
	return nil
}

func (a recoveryApplier) SetPolicy(name string, spec wal.PolicySpec) error {
	t, err := a.table(name)
	if err != nil {
		return err
	}
	return t.SetPolicy(Policy{
		Strategy:      spec.Strategy,
		Budget:        spec.Budget,
		Column:        spec.Column,
		MaxAgeBatches: spec.MaxAgeBatches,
	})
}

// closeDurable flushes and detaches the log. Deliberately no snapshot:
// a clean Close and a crash recover through the identical replay path,
// which keeps that path honest.
func (db *DB) closeDurable() {
	ds := db.dur
	if ds == nil {
		return
	}
	ds.closeOnce.Do(func() {
		ds.probeMu.Lock()
		ds.stopped = true
		ds.probeMu.Unlock()
		close(ds.stop)
		ds.wg.Wait()
		ds.log.Load().Close()
	})
}
