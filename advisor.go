package amnesiadb

import (
	"amnesiadb/internal/advisor"
	"amnesiadb/internal/engine"
)

// Advisor observes a table's query stream and recommends an amnesia
// policy — the §2.2 statistics-collection programme. Create one with
// Table.NewAdvisor, route queries through its Select/Aggregate wrappers,
// then call Advise.
type Advisor struct {
	t   *Table
	col string
	c   *advisor.Collector
}

// NewAdvisor returns an advisor observing queries against column col.
func (t *Table) NewAdvisor(col string) (*Advisor, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.liveLocked(); err != nil {
		return nil, err
	}
	c, err := advisor.NewCollector(t.tbl, col)
	if err != nil {
		return nil, err
	}
	return &Advisor{t: t, col: col, c: c}, nil
}

// Select runs the query through the table and records it.
func (a *Advisor) Select(p Pred) (*Result, error) {
	a.t.mu.Lock()
	defer a.t.mu.Unlock()
	if err := a.t.liveLocked(); err != nil {
		return nil, err
	}
	res, err := a.t.ex.Select(a.col, p.expr(), engine.ScanActive)
	if err != nil {
		return nil, err
	}
	lo, hi, _ := p.expr().Bounds()
	a.c.ObserveRange(lo, hi, res.Rows)
	return &Result{Rows: res.Rows, Values: res.Values}, nil
}

// Aggregate runs the aggregate through the table and records it.
func (a *Advisor) Aggregate(p Pred) (Agg, error) {
	a.t.mu.Lock()
	defer a.t.mu.Unlock()
	if err := a.t.liveLocked(); err != nil {
		return Agg{}, err
	}
	agg, err := a.t.ex.Aggregate(a.col, p.expr(), engine.ScanActive)
	if err != nil {
		return Agg{}, err
	}
	a.c.ObserveAggregate(agg.Rower)
	return Agg{Count: agg.Rows, Sum: agg.Sum, Min: agg.Min, Max: agg.Max, Avg: agg.Avg}, nil
}

// Advice is the advisor's recommendation.
type Advice struct {
	// Strategy is the recommended policy strategy name.
	Strategy string
	// Reason explains the choice in one sentence.
	Reason string
	// Budget estimates the smallest affordable active-tuple budget for
	// the target precision.
	Budget int
	// MeanSelectivity and FreshFocus summarise the observed workload.
	MeanSelectivity float64
	FreshFocus      float64
}

// Advise analyses the observed workload for the target precision
// (0 < target <= 1) and returns a policy recommendation.
func (a *Advisor) Advise(target float64) (Advice, error) {
	a.t.mu.Lock()
	defer a.t.mu.Unlock()
	if err := a.t.liveLocked(); err != nil {
		return Advice{}, err
	}
	r, err := a.c.Analyze(target)
	if err != nil {
		return Advice{}, err
	}
	return Advice{
		Strategy:        r.Strategy,
		Reason:          r.Reason,
		Budget:          r.AffordableBudget,
		MeanSelectivity: r.MeanSelectivity,
		FreshFocus:      r.FreshFocus,
	}, nil
}
