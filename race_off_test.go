//go:build !race

package amnesiadb_test

// raceEnabled reports whether the race detector instruments this build.
// Scale tests skip themselves under the detector: its ~10x slowdown on
// million-tuple loops adds nothing to race coverage the concurrency
// tests don't already provide.
const raceEnabled = false
