package amnesiadb_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// crashServer is one live amnesiaserve process under test.
type crashServer struct {
	cmd  *exec.Cmd
	url  string
	wait chan error
	// ready is the wall-clock from Start to the listening line — the
	// kill-to-ready recovery metric when the directory has state.
	ready time.Duration
}

func buildServe(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "amnesiaserve")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/amnesiaserve")
	cmd.Dir = "."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build amnesiaserve: %v\n%s", err, out)
	}
	return bin
}

// startServe launches amnesiaserve on an ephemeral port over dir and
// waits for the ready line (recovery happens before the listener
// opens, so ready time includes replay).
func startServe(t *testing.T, bin, dir string) *crashServer {
	t.Helper()
	return startServeEnv(t, bin, dir, nil)
}

func (s *crashServer) kill(t *testing.T) {
	t.Helper()
	if err := s.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	<-s.wait
}

func postJSON(url string, v any) (int, []byte, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return 0, nil, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return resp.StatusCode, data, err
}

func mustPost(t *testing.T, url string, v any) []byte {
	t.Helper()
	code, data, err := postJSON(url, v)
	if err != nil || code != http.StatusOK {
		t.Fatalf("POST %s: %d %v %s", url, code, err, data)
	}
	return data
}

// queryBytes returns the raw response body of a SQL query — the
// byte-identical unit the crash test compares across restarts.
func queryBytes(t *testing.T, base, sqlText string) []byte {
	t.Helper()
	return mustPost(t, base+"/query", map[string]string{"sql": sqlText})
}

// TestCrashKillRecovery is the headline durability test: a real server
// process is SIGKILLed mid-workload under -fsync=always; on restart,
// every acknowledged write must have survived, and query results must
// be byte-identical across a further (clean) kill/restart pair — flat
// and partitioned tables both.
func TestCrashKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills real server processes")
	}
	bin := buildServe(t)
	dir := t.TempDir()

	// ---- Session A: seed state, then die mid-workload. ----
	a := startServe(t, bin, dir)
	// Flat table without a policy: nothing is ever forgotten, so every
	// acknowledged row must be present after recovery.
	mustPost(t, a.url+"/insert", map[string]any{
		"table": "acked", "create": []string{"v"},
		"columns": map[string][]int64{"v": {0}},
	})
	// Partitioned table with budgets: survival here means the logged
	// per-shard outcomes replay, not that every row stays active.
	mustPost(t, a.url+"/partitioned", map[string]any{
		"table": "m", "column": "v", "domain": 1000, "parts": 4,
		"strategy": "uniform", "budget": 200,
	})

	var acked atomic.Int64
	acked.Store(1) // the seed row above
	var sent atomic.Int64
	sent.Store(1)
	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		next := int64(1)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			batch := []int64{next, next + 1, next + 2}
			sent.Add(3)
			code, _, err := postJSON(a.url+"/insert", map[string]any{
				"table": "acked", "columns": map[string][]int64{"v": batch},
			})
			if err == nil && code == http.StatusOK {
				acked.Add(3)
			}
			next += 3
			pv := make([]int64, 20)
			for j := range pv {
				pv[j] = (next*7 + int64(j)*37) % 1000
			}
			code, _, err = postJSON(a.url+"/insert", map[string]any{
				"table": "m", "columns": map[string][]int64{"v": pv},
			})
			_ = code
			_ = err
		}
	}()
	// Let a healthy stream of acknowledgements build up, then kill the
	// process out from under the writer.
	for acked.Load() < 60 {
		time.Sleep(5 * time.Millisecond)
	}
	a.kill(t)
	close(stop)
	<-writerDone
	ackedRows, sentRows := acked.Load(), sent.Load()

	// ---- Session B: recover; every acknowledged write survived. ----
	b := startServe(t, bin, dir)
	t.Logf("kill-to-ready: %dms (acked %d rows before kill)", b.ready.Milliseconds(), ackedRows)
	var count struct {
		Rows [][]float64 `json:"rows"`
	}
	if err := json.Unmarshal(queryBytes(t, b.url, "SELECT COUNT(*) FROM acked"), &count); err != nil {
		t.Fatalf("count response: %v", err)
	}
	got := int64(count.Rows[0][0])
	if got < ackedRows {
		t.Fatalf("lost acknowledged writes: %d rows after recovery, %d were acked", got, ackedRows)
	}
	if got > sentRows {
		t.Fatalf("phantom rows: %d after recovery, only %d ever sent", got, sentRows)
	}
	// Contiguity check: rows are the prefix 0..count-1 of the value
	// stream, so SUM pins exact contents, not just cardinality.
	var sum struct {
		Rows [][]float64 `json:"rows"`
	}
	if err := json.Unmarshal(queryBytes(t, b.url, "SELECT SUM(v) FROM acked"), &sum); err != nil {
		t.Fatalf("sum response: %v", err)
	}
	if want := float64(got*(got-1)) / 2; sum.Rows[0][0] != want {
		t.Fatalf("recovered contents are not the acknowledged prefix: SUM=%v want %v", sum.Rows[0][0], want)
	}

	fingerprints := func(base string) [][]byte {
		return [][]byte{
			queryBytes(t, base, "SELECT v FROM acked ORDER BY v"),
			queryBytes(t, base, "SELECT SUM(v) FROM acked"),
			queryBytes(t, base, "SELECT MAX(v) FROM acked"),
			queryBytes(t, base, "SELECT v FROM m ORDER BY v"),
			queryBytes(t, base, "SELECT SUM(v) FROM m"),
			queryBytes(t, base, "SELECT COUNT(*) FROM m"),
		}
	}
	before := fingerprints(b.url)
	b.kill(t)

	// ---- Session C: a second recovery must reproduce results byte-identically. ----
	c := startServe(t, bin, dir)
	defer c.kill(t)
	after := fingerprints(c.url)
	for i := range before {
		if !bytes.Equal(before[i], after[i]) {
			t.Fatalf("query %d diverged across restart:\n before: %s\n after:  %s", i, before[i], after[i])
		}
	}
}

// TestCrashKillWithFailpointTornWrite arms the torn-write failpoint in
// the child process via the environment, drives it until the WAL tears,
// and verifies the restarted server recovers everything acknowledged
// before the tear.
func TestCrashKillWithFailpointTornWrite(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills real server processes")
	}
	bin := buildServe(t)
	dir := t.TempDir()

	cmdEnv := append(os.Environ(), "AMNESIADB_FAILPOINTS=wal.write=torn:7:after:12")
	a := startServeEnv(t, bin, dir, cmdEnv)
	mustPost(t, a.url+"/insert", map[string]any{
		"table": "t", "create": []string{"v"},
		"columns": map[string][]int64{"v": {1}},
	})
	acked := int64(1)
	for i := int64(0); i < 100; i++ {
		code, _, err := postJSON(a.url+"/insert", map[string]any{
			"table": "t", "columns": map[string][]int64{"v": {100 + i}},
		})
		if err != nil || code != http.StatusOK {
			break // the tear hit: this write was NOT acknowledged
		}
		acked++
	}
	if acked == 101 {
		t.Fatal("failpoint never fired; torn-write path untested")
	}
	a.kill(t)

	b := startServe(t, bin, dir) // no failpoints in the recovered process
	defer b.kill(t)
	var count struct {
		Rows [][]float64 `json:"rows"`
	}
	if err := json.Unmarshal(queryBytes(t, b.url, "SELECT COUNT(*) FROM t"), &count); err != nil {
		t.Fatalf("count response: %v", err)
	}
	if got := int64(count.Rows[0][0]); got < acked {
		t.Fatalf("torn write lost acknowledged rows: %d recovered, %d acked", got, acked)
	}
}

// startServeEnv is startServe with an explicit child environment.
func startServeEnv(t *testing.T, bin, dir string, env []string) *crashServer {
	t.Helper()
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-dir", dir, "-fsync", "always")
	cmd.Env = env
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("stdout pipe: %v", err)
	}
	cmd.Stderr = os.Stderr
	start := time.Now()
	if err := cmd.Start(); err != nil {
		t.Fatalf("start server: %v", err)
	}
	s := &crashServer{cmd: cmd, wait: make(chan error, 1)}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				select {
				case addrCh <- strings.TrimSpace(line[i+len("listening on "):]):
				default:
				}
			}
		}
	}()
	go func() { s.wait <- cmd.Wait() }()
	select {
	case addr := <-addrCh:
		s.ready = time.Since(start)
		s.url = "http://" + addr
	case err := <-s.wait:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatal("server never printed its listening line")
	}
	return s
}
