GO ?= go
BIN := bin

.PHONY: all build test race lint lint-audit lint-audit-check fmt vet fuzz-smoke clean

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race builds with the amnesiadebug tag so internal/lockrank's runtime
# lock-order assertions run alongside the race detector.
race:
	$(GO) test -race -tags amnesiadebug -timeout 25m ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# lint runs the repo's own go/analysis suite (tools/amnesialint) over
# the whole tree twice, after stock go vet: once through the vettool
# protocol (facts flow through .vetx files exactly as `go vet` users
# see them) and once through the parallel standalone driver, which
# prints packages analyzed, wall time and parallelism, and enforces
# LINT_BUDGET (exit 3 past it). The suite enforces the engine's
# cross-cutting invariants: the lock-order hierarchy and cycle freedom,
# goroutine lifecycle accountability, path-sensitive pooled-batch
# recycling, liveness checks under handle locks, WAL kind
# exhaustiveness, context threading below the server layer, sentinel
# error hygiene, and the group-commit fsync handshake. Suppress a
# finding only with an audited `//lint:ignore <analyzer> <reason>`
# comment (see `make lint-audit`).
LINT_BUDGET ?= 120s
lint: vet
	$(GO) build -o $(BIN)/amnesialint ./tools/amnesialint/cmd
	$(GO) vet -vettool=$(abspath $(BIN)/amnesialint) ./...
	$(BIN)/amnesialint -budget $(LINT_BUDGET) ./...

# lint-audit regenerates the //lint:ignore inventory; paste the output
# between the lint-audit markers in README.md. CI fails on drift.
lint-audit:
	$(GO) run ./tools/amnesialint/cmd -audit ./...

lint-audit-check:
	$(GO) run ./tools/amnesialint/cmd -auditcheck README.md ./...

# fuzz-smoke runs both fuzzers briefly under the race detector with a
# shared local corpus dir, mirroring the CI step.
FUZZTIME ?= 30s
fuzz-smoke:
	$(GO) test -race -run '^$$' -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/sql
	$(GO) test -race -run '^$$' -fuzz FuzzReplay -fuzztime $(FUZZTIME) ./internal/wal

clean:
	rm -rf $(BIN)
