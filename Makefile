GO ?= go
BIN := bin

.PHONY: all build test race lint fmt vet fuzz-smoke clean

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 25m ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# lint runs the repo's own go/analysis suite (tools/amnesialint) over
# the whole tree through the vettool protocol, after stock go vet. The
# suite enforces the engine's cross-cutting invariants: liveness checks
# under handle locks, batch pool lifecycle, WAL kind exhaustiveness,
# context threading below the server layer, sentinel error hygiene, and
# the group-commit fsync handshake. Suppress a finding only with an
# audited `//lint:ignore <analyzer> <reason>` comment.
lint: vet
	$(GO) build -o $(BIN)/amnesialint ./tools/amnesialint/cmd
	$(GO) vet -vettool=$(abspath $(BIN)/amnesialint) ./...

# fuzz-smoke runs both fuzzers briefly under the race detector with a
# shared local corpus dir, mirroring the CI step.
FUZZTIME ?= 30s
fuzz-smoke:
	$(GO) test -race -run '^$$' -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/sql
	$(GO) test -race -run '^$$' -fuzz FuzzReplay -fuzztime $(FUZZTIME) ./internal/wal

clean:
	rm -rf $(BIN)
