// Integration tests exercising flows that cross module boundaries: the
// full simulator pipeline against facade-level behaviour, index
// consistency under amnesia churn, the four fates of forgotten data
// working together on one table, and SQL over an amnesiac store.
package amnesiadb_test

import (
	"bytes"
	"math"
	"testing"

	"amnesiadb"
	"amnesiadb/internal/amnesia"
	"amnesiadb/internal/index"
	"amnesiadb/internal/sim"
	"amnesiadb/internal/table"
	"amnesiadb/internal/xrand"
)

// TestSimulatorAndFacadeAgree drives the same FIFO workload through the
// low-level simulator and through the public facade and checks they
// forget identically (the facade is a veneer, not a fork).
func TestSimulatorAndFacadeAgree(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Strategy = "fifo"
	cfg.QueriesPerBatch = 0
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	db := amnesiadb.Open(amnesiadb.Options{Seed: cfg.Seed})
	tb, err := db.CreateTable("t", "a")
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.SetPolicy(amnesiadb.Policy{Strategy: "fifo", Budget: cfg.DBSize}); err != nil {
		t.Fatal(err)
	}
	// Replay the same insert sizes (values differ; FIFO ignores them).
	if err := tb.InsertColumn("a", make([]int64, cfg.DBSize)); err != nil {
		t.Fatal(err)
	}
	step := int(cfg.UpdatePerc * float64(cfg.DBSize))
	for b := 0; b < cfg.Batches; b++ {
		if err := tb.InsertColumn("a", make([]int64, step)); err != nil {
			t.Fatal(err)
		}
	}
	fa, _ := tb.ActivePerBatch()
	for i := range fa {
		if fa[i] != res.MapActive[i] {
			t.Fatalf("facade and simulator maps diverge at batch %d: %d vs %d", i, fa[i], res.MapActive[i])
		}
	}
}

// TestIndexConsistencyUnderChurn rebuilds and prunes indexes across many
// amnesia rounds and checks BRIN, sorted index, and raw scans always
// agree.
func TestIndexConsistencyUnderChurn(t *testing.T) {
	src := xrand.New(3)
	tb := table.New("t", "a")
	strat := amnesia.NewUniform(src.Split())
	for round := 0; round < 8; round++ {
		vals := make([]int64, 500)
		for i := range vals {
			vals[i] = src.Int63n(10000)
		}
		if _, err := tb.AppendSingleColumn(vals); err != nil {
			t.Fatal(err)
		}
		if over := tb.ActiveCount() - 1000; over > 0 {
			strat.Forget(tb, over)
		}
		brin, err := index.NewBRIN(tb, "a", 64)
		if err != nil {
			t.Fatal(err)
		}
		sorted, err := index.NewSorted(tb, "a")
		if err != nil {
			t.Fatal(err)
		}
		sorted.PruneForgotten(tb)
		for q := 0; q < 20; q++ {
			lo := src.Int63n(10000)
			hi := lo + src.Int63n(2000)
			bres, err := brin.Scan(tb, lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			sres := sorted.Scan(tb, lo, hi)
			want := tb.MustColumn("a").ScanRangeActive(lo, hi, tb.Active(), nil)
			if len(bres) != len(want) || len(sres) != len(want) {
				t.Fatalf("round %d [%d,%d): brin=%d sorted=%d raw=%d", round, lo, hi, len(bres), len(sres), len(want))
			}
			for i := range want {
				if bres[i] != want[i] || sres[i] != want[i] {
					t.Fatalf("round %d: index row mismatch at %d", round, i)
				}
			}
		}
	}
}

// TestFourFatesCompose runs mark → summarise → demote → vacuum on one
// table and checks each fate's artefact stays coherent.
func TestFourFatesCompose(t *testing.T) {
	db := amnesiadb.Open(amnesiadb.Options{Seed: 11})
	tb, err := db.CreateTable("t", "a")
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.SetPolicy(amnesiadb.Policy{Strategy: "fifo", Budget: 100}); err != nil {
		t.Fatal(err)
	}
	vals := make([]int64, 1000)
	var sum float64
	for i := range vals {
		vals[i] = int64(i)
		sum += float64(i)
	}
	trueAvg := sum / 1000
	if err := tb.InsertColumn("a", vals); err != nil {
		t.Fatal(err)
	}

	// Fate 4 first: summarise the forgotten mass.
	absorbed, err := tb.Summarize("a")
	if err != nil {
		t.Fatal(err)
	}
	if absorbed != 900 {
		t.Fatalf("absorbed %d", absorbed)
	}
	// Fate 3: also demote the same tuples to cold storage.
	moved, err := tb.DemoteForgotten()
	if err != nil {
		t.Fatal(err)
	}
	if moved != 900 {
		t.Fatalf("demoted %d", moved)
	}
	// Fate 1 is the default (marked; complete scan still sees them).
	all, err := tb.SelectWithForgotten("a", amnesiadb.All())
	if err != nil {
		t.Fatal(err)
	}
	if all.Count() != 1000 {
		t.Fatalf("complete scan saw %d", all.Count())
	}
	// Fate: physically vacuum the hot store.
	tb.Vacuum()
	if tb.Stats().Tuples != 100 {
		t.Fatalf("post-vacuum tuples = %d", tb.Stats().Tuples)
	}
	// The summary still reconstructs the all-time average exactly.
	got, err := tb.ApproxAvg("a")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-trueAvg) > 1e-9 {
		t.Fatalf("approx avg %v, want %v", got, trueAvg)
	}
	// And the cold tier still serves recovery... of tuples that were
	// vacuumed from the hot store, the snapshot lives on in the cold
	// tier's ledger.
	if tb.Stats().ColdTier != 900 {
		t.Fatalf("cold tier = %d", tb.Stats().ColdTier)
	}
}

// TestSnapshotMidExperiment saves a table halfway through an amnesia run,
// restores it, continues both, and checks the restored table's precision
// metrics match the original exactly (the strategy state is external, so
// the same policy+seed continues identically only when re-seeded — here
// we assert restored state equality, then independent progress).
func TestSnapshotMidExperiment(t *testing.T) {
	db := amnesiadb.Open(amnesiadb.Options{Seed: 21})
	tb, err := db.CreateTable("run", "a")
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.SetPolicy(amnesiadb.Policy{Strategy: "uniform", Budget: 300}); err != nil {
		t.Fatal(err)
	}
	src := xrand.New(5)
	for round := 0; round < 5; round++ {
		vals := make([]int64, 200)
		for i := range vals {
			vals[i] = src.Int63n(100000)
		}
		if err := tb.InsertColumn("a", vals); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := tb.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2 := amnesiadb.Open(amnesiadb.Options{Seed: 99})
	back, err := db2.LoadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rf1, mf1, pf1, err := tb.Precision("a", amnesiadb.Range(0, 50000))
	if err != nil {
		t.Fatal(err)
	}
	rf2, mf2, pf2, err := back.Precision("a", amnesiadb.Range(0, 50000))
	if err != nil {
		t.Fatal(err)
	}
	if rf1 != rf2 || mf1 != mf2 || pf1 != pf2 {
		t.Fatalf("restored precision differs: (%d,%d,%v) vs (%d,%d,%v)", rf2, mf2, pf2, rf1, mf1, pf1)
	}
	// The restored table accepts a policy and keeps forgetting.
	if err := back.SetPolicy(amnesiadb.Policy{Strategy: "fifo", Budget: 100}); err != nil {
		t.Fatal(err)
	}
	if err := back.EnforceBudget(); err != nil {
		t.Fatal(err)
	}
	if back.Stats().Active != 100 {
		t.Fatalf("restored table active = %d", back.Stats().Active)
	}
}

// TestSQLOverAmnesiacStore checks the SQL layer and the facade policy
// machinery compose: the same query's COUNT shrinks as the policy bites.
func TestSQLOverAmnesiacStore(t *testing.T) {
	db := amnesiadb.Open(amnesiadb.Options{Seed: 31})
	tb, err := db.CreateTable("logs", "sev")
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.InsertColumn("sev", []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}); err != nil {
		t.Fatal(err)
	}
	before, err := db.Query("SELECT COUNT(*) FROM logs WHERE sev >= 5")
	if err != nil {
		t.Fatal(err)
	}
	if before.Rows[0][0] != 6 {
		t.Fatalf("pre-amnesia count = %v", before.Rows[0][0])
	}
	if err := tb.SetPolicy(amnesiadb.Policy{Strategy: "fifo", Budget: 4}); err != nil {
		t.Fatal(err)
	}
	if err := tb.EnforceBudget(); err != nil {
		t.Fatal(err)
	}
	after, err := db.Query("SELECT COUNT(*) FROM logs WHERE sev >= 5")
	if err != nil {
		t.Fatal(err)
	}
	if after.Rows[0][0] != 4 { // FIFO keeps 7,8,9,10
		t.Fatalf("post-amnesia count = %v", after.Rows[0][0])
	}
}
