package failpoint

import (
	"errors"
	"strings"
	"testing"
)

// TestArmValidSpecs pins the spec grammar end to end: each clause arms
// its site with the behavior the directive names, observable through
// Eval/TornAt.
func TestArmValidSpecs(t *testing.T) {
	t.Cleanup(DisableAll)

	DisableAll()
	if err := Arm("wal.fsync=error"); err != nil {
		t.Fatalf("Arm(error): %v", err)
	}
	if err := Eval("wal.fsync"); !errors.Is(err, ErrInjected) {
		t.Fatalf("Eval after error directive = %v, want ErrInjected", err)
	}

	DisableAll()
	if err := Arm("wal.fsync=error:after:2"); err != nil {
		t.Fatalf("Arm(error:after:2): %v", err)
	}
	for i := 0; i < 2; i++ {
		if err := Eval("wal.fsync"); err != nil {
			t.Fatalf("Eval %d under after:2 = %v, want nil", i, err)
		}
	}
	if err := Eval("wal.fsync"); !errors.Is(err, ErrInjected) {
		t.Fatalf("Eval 3 under after:2 = %v, want ErrInjected", err)
	}

	DisableAll()
	if err := Arm("wal.write=torn:17"); err != nil {
		t.Fatalf("Arm(torn:17): %v", err)
	}
	if off, ok := TornAt("wal.write"); !ok || off != 17 {
		t.Fatalf("TornAt = %d, %v; want 17, true", off, ok)
	}
	// A torn directive never returns an error from Eval.
	if err := Eval("wal.write"); err != nil {
		t.Fatalf("Eval on torn site = %v, want nil", err)
	}

	DisableAll()
	if err := Arm("wal.write=torn:7:after:1"); err != nil {
		t.Fatalf("Arm(torn:7:after:1): %v", err)
	}
	if _, ok := TornAt("wal.write"); ok {
		t.Fatal("TornAt fired before its after count")
	}
	if off, ok := TornAt("wal.write"); !ok || off != 7 {
		t.Fatalf("TornAt = %d, %v; want 7, true", off, ok)
	}

	// Multiple clauses, whitespace and empty segments tolerated.
	DisableAll()
	if err := Arm(" wal.fsync=error ; governor.probe=error:after:1 ;; "); err != nil {
		t.Fatalf("Arm(multi): %v", err)
	}
	if err := Eval("wal.fsync"); !errors.Is(err, ErrInjected) {
		t.Fatalf("multi-clause site 1 = %v, want ErrInjected", err)
	}
	if err := Eval("governor.probe"); err != nil {
		t.Fatalf("governor.probe first eval = %v, want nil (after:1)", err)
	}
	if err := Eval("governor.probe"); !errors.Is(err, ErrInjected) {
		t.Fatalf("governor.probe second eval = %v, want ErrInjected", err)
	}
}

// TestArmMalformedSpecsErrorLoudly pins the operator surface: a typo in
// AMNESIADB_FAILPOINTS must fail with an error naming the bad clause —
// never arm half a directive silently.
func TestArmMalformedSpecsErrorLoudly(t *testing.T) {
	t.Cleanup(DisableAll)
	cases := []struct {
		spec string
		want string // substring of the error
	}{
		{"wal.fsync", "bad clause"},                        // no '='
		{"wal.fsync=explode", "unknown directive"},         // unknown verb
		{"wal.fsync=error:after:x", "bad after count"},     // non-numeric after
		{"wal.fsync=error:later:3", "bad error directive"}, // wrong keyword
		{"wal.fsync=error:3", "bad error directive"},       // missing 'after'
		{"wal.write=torn", "torn needs an offset"},         // no offset
		{"wal.write=torn:x", "bad torn offset"},            // non-numeric offset
		{"wal.write=torn:-1", "bad torn offset"},           // negative offset
		{"wal.write=torn:7:later:2", "torn needs an offset"},
		{"wal.write=torn:7:after:x", "bad after count"},
		{"wal.write=torn:7:after:-2", "bad after count"},
		{"ok=error;bad", "bad clause"}, // failure names the bad clause
	}
	for _, tc := range cases {
		DisableAll()
		err := Arm(tc.spec)
		if err == nil {
			t.Errorf("Arm(%q) = nil, want error containing %q", tc.spec, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Arm(%q) = %v, want error containing %q", tc.spec, err, tc.want)
		}
	}
}

// TestArmFromEnv pins the environment entry point amnesiaserve uses: a
// malformed variable must abort startup-arming with an error, not be
// ignored.
func TestArmFromEnv(t *testing.T) {
	t.Cleanup(DisableAll)
	t.Setenv(EnvVar, "wal.fsync=error")
	if err := ArmFromEnv(); err != nil {
		t.Fatalf("ArmFromEnv(valid): %v", err)
	}
	if err := Eval("wal.fsync"); !errors.Is(err, ErrInjected) {
		t.Fatalf("Eval after ArmFromEnv = %v, want ErrInjected", err)
	}
	DisableAll()
	t.Setenv(EnvVar, "wal.fsync=bogus")
	if err := ArmFromEnv(); err == nil {
		t.Fatal("ArmFromEnv(malformed) = nil, want loud error")
	}
}
