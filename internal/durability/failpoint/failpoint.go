// Package failpoint is a tiny fault-injection registry for the
// durability subsystem, modeled on etcd's gofail pattern: named sites
// in the write/fsync path call Eval, and tests (or an operator via the
// AMNESIADB_FAILPOINTS environment variable) arm those sites with an
// error or a torn-write directive. Disarmed sites cost one atomic load,
// so the hooks stay in production builds.
//
// Arming syntax, programmatic or via the environment:
//
//	failpoint.Enable("wal.write", failpoint.Error(io.ErrShortWrite))
//	failpoint.Enable("wal.fsync", failpoint.ErrorAfter(3, errDiskGone))
//	failpoint.Enable("wal.write", failpoint.Torn(17))
//
//	AMNESIADB_FAILPOINTS="wal.fsync=error;wal.write=torn:17"
//	AMNESIADB_FAILPOINTS="wal.write=torn:7:after:12"   # 12 healthy writes, then tear
//
// A torn directive does not return an error by itself: the site asks
// TornAt for the byte offset to cut a write at and simulates the
// partial write, which is how the recovery tests produce a torn
// trailing record without killing the process.
package failpoint

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// EnvVar names the environment variable ArmFromEnv parses.
const EnvVar = "AMNESIADB_FAILPOINTS"

// ErrInjected is the default error an "error" directive returns.
var ErrInjected = errors.New("failpoint: injected error")

// Action is what an armed failpoint does when evaluated.
type Action struct {
	// err, when non-nil, is returned by Eval.
	err error
	// after delays the fault: the first `after` evaluations pass.
	after int64
	// torn >= 0 cuts writes at this byte offset (see TornAt).
	torn int64
}

// Error arms a site to return err from Eval.
func Error(err error) Action {
	if err == nil {
		err = ErrInjected
	}
	return Action{err: err, torn: -1}
}

// ErrorAfter arms a site to pass n evaluations and then return err.
func ErrorAfter(n int, err error) Action {
	a := Error(err)
	a.after = int64(n)
	return a
}

// Torn arms a write site to cut the batch at byte offset n (the bytes
// before n are written, the rest vanish), simulating a crash mid-write.
func Torn(n int) Action { return Action{torn: int64(n)} }

// TornAfter arms a write site to pass k evaluations and then tear at
// byte offset n — a process that ran healthily for a while before
// dying mid-write.
func TornAfter(k, n int) Action { return Action{torn: int64(n), after: int64(k)} }

// site is one armed failpoint.
type site struct {
	action Action
	hits   atomic.Int64
}

var (
	mu    sync.RWMutex
	armed = map[string]*site{}
	// count is the number of armed sites; a zero fast-path keeps
	// disarmed Eval calls at one atomic load.
	count atomic.Int64
)

// Enable arms the named site. Re-arming replaces the previous action.
func Enable(name string, a Action) {
	mu.Lock()
	if _, ok := armed[name]; !ok {
		count.Add(1)
	}
	armed[name] = &site{action: a}
	mu.Unlock()
}

// Disable disarms the named site; unknown names are a no-op.
func Disable(name string) {
	mu.Lock()
	if _, ok := armed[name]; ok {
		delete(armed, name)
		count.Add(-1)
	}
	mu.Unlock()
}

// DisableAll disarms every site (test cleanup).
func DisableAll() {
	mu.Lock()
	armed = map[string]*site{}
	count.Store(0)
	mu.Unlock()
}

// Eval returns the injected error for an armed error site, nil
// otherwise. Disarmed sites cost one atomic load.
func Eval(name string) error {
	if count.Load() == 0 {
		return nil
	}
	mu.RLock()
	s := armed[name]
	mu.RUnlock()
	if s == nil || s.action.err == nil {
		return nil
	}
	if s.hits.Add(1) <= s.action.after {
		return nil
	}
	return s.action.err
}

// TornAt returns (offset, true) when the named site is armed with a
// torn-write directive: the caller should write only the first offset
// bytes of its batch and then fail as if the process died. Offsets
// beyond the batch length should be clamped by the caller.
func TornAt(name string) (int, bool) {
	if count.Load() == 0 {
		return 0, false
	}
	mu.RLock()
	s := armed[name]
	mu.RUnlock()
	if s == nil || s.action.torn < 0 {
		return 0, false
	}
	if s.hits.Add(1) <= s.action.after {
		return 0, false
	}
	return int(s.action.torn), true
}

// ArmFromEnv parses EnvVar ("site=error;site=torn:N;site=torn:N:after:K;site=error:after:N")
// and arms the listed sites. Called once by the durability layer at
// startup; parse failures return an error naming the bad clause.
func ArmFromEnv() error {
	return Arm(os.Getenv(EnvVar))
}

// Arm parses a failpoint spec string (the EnvVar syntax) and arms the
// listed sites. Empty input is a no-op.
func Arm(spec string) error {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil
	}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		name, directive, ok := strings.Cut(clause, "=")
		if !ok {
			return fmt.Errorf("failpoint: bad clause %q (want name=directive)", clause)
		}
		parts := strings.Split(directive, ":")
		switch parts[0] {
		case "error":
			a := Error(nil)
			if len(parts) == 3 && parts[1] == "after" {
				n, err := strconv.Atoi(parts[2])
				if err != nil {
					return fmt.Errorf("failpoint: bad after count in %q", clause)
				}
				a = ErrorAfter(n, nil)
			} else if len(parts) != 1 {
				return fmt.Errorf("failpoint: bad error directive %q", clause)
			}
			Enable(name, a)
		case "torn":
			if len(parts) != 2 && !(len(parts) == 4 && parts[2] == "after") {
				return fmt.Errorf("failpoint: torn needs an offset in %q (torn:N or torn:N:after:K)", clause)
			}
			n, err := strconv.Atoi(parts[1])
			if err != nil || n < 0 {
				return fmt.Errorf("failpoint: bad torn offset in %q", clause)
			}
			a := Torn(n)
			if len(parts) == 4 {
				k, err := strconv.Atoi(parts[3])
				if err != nil || k < 0 {
					return fmt.Errorf("failpoint: bad after count in %q", clause)
				}
				a = TornAfter(k, n)
			}
			Enable(name, a)
		default:
			return fmt.Errorf("failpoint: unknown directive %q in %q", parts[0], clause)
		}
	}
	return nil
}
