// Package durability turns the WAL record format (internal/wal) and the
// catalog snapshot format (internal/snapshot) into a crash-safe store:
// a group-commit segment log that acknowledges mutations only after
// their batch is fsynced, snapshot-paired segment rotation so the log
// stays truncatable, a MANIFEST recording the lineage, and a recovery
// planner that picks the newest valid snapshot generation and replays
// the WAL tail behind it. The facade (amnesiadb.OpenDir) wires these
// pieces to the catalog; this package knows only files and bytes.
package durability

import "fmt"

// FsyncPolicy selects when the committer fsyncs the segment.
type FsyncPolicy int

const (
	// FsyncAlways syncs every batch before acknowledging it: an
	// acknowledged mutation survives kill -9. Group commit still
	// batches whatever queued during the previous sync, so concurrent
	// writers share fsyncs.
	FsyncAlways FsyncPolicy = iota
	// FsyncGroup waits a short window (Options.GroupWindow) to coalesce
	// a larger batch before the sync — higher throughput, bounded
	// acknowledgement latency, same survives-kill guarantee.
	FsyncGroup
	// FsyncOff writes without syncing: the OS decides when bytes reach
	// the disk, so a machine crash can lose the tail. Process crashes
	// (including SIGKILL) still lose nothing the kernel accepted.
	FsyncOff
)

// ParsePolicy maps the -fsync flag values to a policy.
func ParsePolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "group":
		return FsyncGroup, nil
	case "off":
		return FsyncOff, nil
	}
	return 0, fmt.Errorf("durability: unknown fsync policy %q (want always, group or off)", s)
}

// String renders the flag form.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncGroup:
		return "group"
	case FsyncOff:
		return "off"
	}
	return fmt.Sprintf("FsyncPolicy(%d)", int(p))
}
