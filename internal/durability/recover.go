package durability

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// On-disk layout of a durable directory:
//
//	wal-000001.log   WAL segments (AppendHeader + framed records)
//	snap-000002.db   catalog snapshots; snap-K pairs with segment wal-K:
//	                 the snapshot captures everything up to the moment
//	                 segment K was opened, so recovery = restore snap-K,
//	                 replay wal-K, wal-K+1, ...
//	MANIFEST         JSON lineage record (informative; the directory
//	                 scan is authoritative, so a lost MANIFEST never
//	                 blocks recovery)
//
// Retention keeps the current and previous snapshot generations so a
// corrupt newest snapshot still recovers from the one before it plus
// the longer WAL tail.

// SegmentPath names WAL segment seq in dir.
func SegmentPath(dir string, seq int) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%06d.log", seq))
}

// SnapshotPath names catalog snapshot seq in dir.
func SnapshotPath(dir string, seq int) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%06d.db", seq))
}

// ManifestPath names the manifest file in dir.
func ManifestPath(dir string) string { return filepath.Join(dir, "MANIFEST") }

// Manifest records the directory's lineage for operators and, later,
// snapshot-ship replication.
type Manifest struct {
	// SnapshotSeq is the newest snapshot generation, 0 when none.
	SnapshotSeq int `json:"snapshot_seq"`
	// SegmentSeq is the live (currently appended) WAL segment.
	SegmentSeq int `json:"segment_seq"`
	// Snapshots and Segments list the retained files in order.
	Snapshots []string `json:"snapshots"`
	Segments  []string `json:"segments"`
}

// WriteManifest atomically replaces the manifest (tmp, fsync, rename).
func WriteManifest(dir string, m Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := ManifestPath(dir) + ".tmp"
	if err := writeFileSync(tmp, data); err != nil {
		return err
	}
	if err := os.Rename(tmp, ManifestPath(dir)); err != nil {
		return err
	}
	return syncDir(dir)
}

// ReadManifest loads the manifest; a missing file returns a zero
// manifest and no error.
func ReadManifest(dir string) (Manifest, error) {
	var m Manifest
	data, err := os.ReadFile(ManifestPath(dir))
	if os.IsNotExist(err) {
		return m, nil
	}
	if err != nil {
		return m, err
	}
	err = json.Unmarshal(data, &m)
	return m, err
}

// Generation is one recovery candidate: a snapshot (possibly none, for
// the replay-from-genesis fallback) plus the WAL segments behind it in
// replay order.
type Generation struct {
	// SnapshotPath is the catalog snapshot to restore first, "" for
	// the no-snapshot fallback.
	SnapshotPath string
	// SnapshotSeq is the generation number, 0 for the fallback.
	SnapshotSeq int
	// Segments are the WAL segment paths to replay after the
	// snapshot, ascending.
	Segments []string
}

// Plan scans dir and returns recovery candidates, newest snapshot
// first. The caller tries each in order: restore the snapshot, replay
// the segments, accept a torn tail in the newest segment as the crash
// boundary, and fall back to the next generation on corruption.
// NextSeq is the first unused sequence number (1 on a fresh
// directory).
func Plan(dir string) (gens []Generation, nextSeq int, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, err
	}
	var snapSeqs, walSeqs []int
	for _, e := range entries {
		var seq int
		switch {
		case parseSeq(e.Name(), "wal-", ".log", &seq):
			walSeqs = append(walSeqs, seq)
		case parseSeq(e.Name(), "snap-", ".db", &seq):
			snapSeqs = append(snapSeqs, seq)
		}
	}
	sort.Ints(walSeqs)
	sort.Sort(sort.Reverse(sort.IntSlice(snapSeqs)))
	nextSeq = 1
	if n := len(walSeqs); n > 0 && walSeqs[n-1] >= nextSeq {
		nextSeq = walSeqs[n-1] + 1
	}
	if len(snapSeqs) > 0 && snapSeqs[0] >= nextSeq {
		nextSeq = snapSeqs[0] + 1
	}
	tail := func(from int) []string {
		var out []string
		for _, s := range walSeqs {
			if s >= from {
				out = append(out, SegmentPath(dir, s))
			}
		}
		return out
	}
	for _, s := range snapSeqs {
		gens = append(gens, Generation{
			SnapshotPath: SnapshotPath(dir, s),
			SnapshotSeq:  s,
			Segments:     tail(s),
		})
	}
	// Full replay from genesis is only sound when the log still starts
	// at segment 1 (pruning removes that option once snapshots exist).
	if len(walSeqs) == 0 || walSeqs[0] == 1 {
		gens = append(gens, Generation{Segments: tail(0)})
	}
	return gens, nextSeq, nil
}

func parseSeq(name, prefix, suffix string, out *int) bool {
	if len(name) != len(prefix)+6+len(suffix) ||
		name[:len(prefix)] != prefix || name[len(name)-len(suffix):] != suffix {
		return false
	}
	n := 0
	for _, c := range name[len(prefix) : len(name)-len(suffix)] {
		if c < '0' || c > '9' {
			return false
		}
		n = n*10 + int(c-'0')
	}
	*out = n
	return true
}

// WriteSnapshot atomically writes catalog snapshot seq (tmp, fsync,
// rename, dir sync). It takes the snapshot pre-serialized: the owner
// encodes the catalog while holding its consistency barrier and hands
// the bytes here, so file I/O never overlaps live mutation.
func WriteSnapshot(dir string, seq int, data []byte) error {
	tmp := SnapshotPath(dir, seq) + ".tmp"
	if err := writeFileSync(tmp, data); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, SnapshotPath(dir, seq)); err != nil {
		return err
	}
	return syncDir(dir)
}

// Prune removes snapshots older than the two newest generations and
// the WAL segments no retained generation needs. Best-effort: removal
// errors are ignored (a leftover file only wastes space).
func Prune(dir string) {
	gens, _, err := Plan(dir)
	if err != nil {
		return
	}
	var snapSeqs []int
	for _, g := range gens {
		if g.SnapshotSeq > 0 {
			snapSeqs = append(snapSeqs, g.SnapshotSeq)
		}
	}
	if len(snapSeqs) < 2 {
		return
	}
	// Plan returns snapshots newest-first; keep the first two.
	keepFrom := snapSeqs[1]
	for _, s := range snapSeqs[2:] {
		os.Remove(SnapshotPath(dir, s))
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		var seq int
		if parseSeq(e.Name(), "wal-", ".log", &seq) && seq < keepFrom {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

// RefreshManifest rewrites the manifest from a directory scan.
func RefreshManifest(dir string, segmentSeq int) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	m := Manifest{SegmentSeq: segmentSeq}
	for _, e := range entries {
		var seq int
		switch {
		case parseSeq(e.Name(), "wal-", ".log", &seq):
			m.Segments = append(m.Segments, e.Name())
		case parseSeq(e.Name(), "snap-", ".db", &seq):
			m.Snapshots = append(m.Snapshots, e.Name())
			if seq > m.SnapshotSeq {
				m.SnapshotSeq = seq
			}
		}
	}
	sort.Strings(m.Segments)
	sort.Strings(m.Snapshots)
	return WriteManifest(dir, m)
}

func writeFileSync(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so renames inside it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	cerr := d.Close()
	if err != nil {
		return err
	}
	return cerr
}
