package durability

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"amnesiadb/internal/durability/failpoint"
	"amnesiadb/internal/wal"
)

// ErrClosed reports an Enqueue after Close.
var ErrClosed = errors.New("durability: log closed")

// Options tunes the segment log.
type Options struct {
	// Policy selects the fsync discipline; see FsyncPolicy.
	Policy FsyncPolicy
	// GroupWindow is how long FsyncGroup coalesces before syncing.
	// Zero means the 2ms default.
	GroupWindow time.Duration
	// SegmentBytes is the size past which the owner should snapshot
	// and rotate. Zero means 64 MiB. The log only reports (Size); the
	// owner decides when to rotate, because rotation pairs with a
	// snapshot.
	SegmentBytes int64
}

func (o *Options) window() time.Duration {
	if o.GroupWindow <= 0 {
		return 2 * time.Millisecond
	}
	return o.GroupWindow
}

// SegmentThreshold resolves the rotation threshold.
func (o *Options) SegmentThreshold() int64 {
	if o.SegmentBytes <= 0 {
		return 64 << 20
	}
	return o.SegmentBytes
}

// Pending is one mutation's place in the commit queue. Wait blocks
// until the batch containing the record has been written and (per
// policy) fsynced; its error is the write/sync failure, after which
// the log is sticky-broken and the owner should degrade to read-only.
type Pending struct {
	data []byte
	err  error
	done chan struct{}
}

// Wait blocks until the record's batch is durable (or failed).
func (p *Pending) Wait() error {
	<-p.done
	return p.err
}

// Log is a single WAL segment with a group-commit writer: Enqueue
// appends a framed record to an in-memory queue and returns a Pending;
// a dedicated committer goroutine drains the queue in batches, writes
// them with one syscall, fsyncs per policy, and wakes every waiter in
// the batch. One fsync therefore commits every mutation that queued
// while the previous one ran — the classic group commit.
type Log struct {
	opts Options

	mu     sync.Mutex
	cond   *sync.Cond
	f      *os.File
	path   string
	seq    int
	size   int64
	queue  []*Pending
	err    error // sticky: first write/sync failure
	closed bool
	done   chan struct{}
}

// CreateLog opens (creating if absent) segment seq in dir, writes the
// WAL header if the file is new, and starts the committer. The caller
// owns rotation and close.
func CreateLog(dir string, seq int, opts Options) (*Log, error) {
	l := &Log{opts: opts, done: make(chan struct{})}
	l.cond = sync.NewCond(&l.mu)
	if err := l.openSegment(dir, seq); err != nil {
		return nil, err
	}
	go l.run()
	return l, nil
}

// openSegment opens wal-<seq>.log for append, writing and syncing the
// header when the file is empty. Callers hold l.mu or have not yet
// started the committer.
func (l *Log) openSegment(dir string, seq int) error {
	path := SegmentPath(dir, seq)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	size := st.Size()
	if size == 0 {
		hdr := wal.AppendHeader(nil)
		if _, err := f.Write(hdr); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		size = int64(len(hdr))
	}
	l.f, l.path, l.seq, l.size = f, path, seq, size
	return nil
}

// Seq returns the current segment's sequence number.
func (l *Log) Seq() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Size returns the current segment's byte size including queued
// records, the owner's rotation signal.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Err returns the sticky error, nil while the log is healthy.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Enqueue appends one framed record to the commit queue. The returned
// Pending resolves when the record's batch is durable. On a broken or
// closed log the Pending resolves immediately with the sticky error.
func (l *Log) Enqueue(rec []byte) *Pending {
	p := &Pending{done: make(chan struct{})}
	l.mu.Lock()
	switch {
	case l.err != nil:
		p.err = l.err
	case l.closed:
		p.err = ErrClosed
	default:
		p.data = rec
		l.queue = append(l.queue, p)
		l.size += int64(len(rec))
		l.cond.Signal()
		l.mu.Unlock()
		return p
	}
	l.mu.Unlock()
	close(p.done)
	return p
}

// Sync blocks until everything enqueued before the call is durable.
func (l *Log) Sync() error {
	return l.Enqueue(nil).Wait()
}

// Rotate fsyncs and closes the current segment and opens segment seq.
// The owner must guarantee no concurrent Enqueue (the facade holds its
// snapshot barrier); Rotate drains the queue first regardless.
func (l *Log) Rotate(dir string, seq int) error {
	if err := l.Sync(); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if err := l.f.Sync(); err != nil {
		l.err = err
		return err
	}
	if err := l.f.Close(); err != nil {
		l.err = err
		return err
	}
	if err := l.openSegment(dir, seq); err != nil {
		l.err = err
		return err
	}
	return nil
}

// Close drains the queue, fsyncs and closes the segment, and stops the
// committer. Safe to call once.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return l.err
	}
	l.closed = true
	l.cond.Signal()
	l.mu.Unlock()
	<-l.done

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f != nil {
		if err := l.f.Sync(); err != nil && l.err == nil {
			l.err = err
		}
		if err := l.f.Close(); err != nil && l.err == nil {
			l.err = err
		}
		l.f = nil
	}
	return l.err
}

// run is the committer: batch, write, sync, wake.
func (l *Log) run() {
	defer close(l.done)
	l.mu.Lock()
	for {
		for len(l.queue) == 0 && !l.closed {
			l.cond.Wait()
		}
		if len(l.queue) == 0 && l.closed {
			l.mu.Unlock()
			return
		}
		if l.opts.Policy == FsyncGroup && !l.closed {
			// Coalesce: let more mutators queue before paying the sync.
			l.mu.Unlock()
			time.Sleep(l.opts.window())
			l.mu.Lock()
		}
		batch := l.queue
		l.queue = nil
		f, err := l.f, l.err
		l.mu.Unlock()

		if err == nil {
			err = writeBatch(f, batch, l.opts.Policy)
		}
		if err != nil {
			l.mu.Lock()
			if l.err == nil {
				l.err = err
			}
			l.mu.Unlock()
		}
		for _, p := range batch {
			p.err = err
			close(p.done)
		}
		l.mu.Lock()
	}
}

// writeBatch concatenates the batch and lands it with one write, then
// syncs per policy. The failpoint sites "wal.write" and "wal.fsync"
// live here: an error directive fails the batch, a torn directive
// writes only a prefix — the injected equivalent of dying mid-write.
func writeBatch(f *os.File, batch []*Pending, policy FsyncPolicy) error {
	var buf []byte
	for _, p := range batch {
		buf = append(buf, p.data...)
	}
	if len(buf) > 0 {
		if cut, ok := failpoint.TornAt("wal.write"); ok {
			if cut > len(buf) {
				cut = len(buf)
			}
			if _, err := f.Write(buf[:cut]); err != nil {
				return err
			}
			f.Sync()
			return fmt.Errorf("wal.write: %w (torn at %d)", failpoint.ErrInjected, cut)
		}
		if err := failpoint.Eval("wal.write"); err != nil {
			return fmt.Errorf("wal.write: %w", err)
		}
		if _, err := f.Write(buf); err != nil {
			return err
		}
	}
	if policy == FsyncOff {
		return nil
	}
	if err := failpoint.Eval("wal.fsync"); err != nil {
		return fmt.Errorf("wal.fsync: %w", err)
	}
	return f.Sync()
}
