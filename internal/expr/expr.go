// Package expr models the predicate subspace the paper carves out of
// SELECT-PROJECT-JOIN (§2.2): comparisons and half-open ranges over a
// single integer attribute, with conjunction, disjunction and negation.
// Every expression can report a bounding interval so the engine can push
// the predicate into zone-map-pruned column scans.
package expr

import (
	"fmt"
	"math"
)

// Expr is a boolean predicate over one attribute value.
type Expr interface {
	// Eval reports whether value v satisfies the predicate.
	Eval(v int64) bool
	// Bounds returns an interval [lo, hi) that contains every satisfying
	// value, where hi == math.MaxInt64 means "no upper bound, MaxInt64
	// included" (a half-open interval could never admit MaxInt64 itself;
	// the scan kernels honour the same convention). exact reports whether
	// the predicate is precisely membership in that interval, enabling a
	// pure range scan with no per-row re-check.
	Bounds() (lo, hi int64, exact bool)
	// String renders the predicate in SQL-ish syntax.
	String() string
}

// Range is the predicate lo <= v < hi.
type Range struct {
	Lo, Hi int64
}

// NewRange returns the predicate lo <= v < hi. It panics if lo > hi.
func NewRange(lo, hi int64) Range {
	if lo > hi {
		panic(fmt.Sprintf("expr: inverted range [%d, %d)", lo, hi))
	}
	return Range{Lo: lo, Hi: hi}
}

// Eval implements Expr.
func (r Range) Eval(v int64) bool { return v >= r.Lo && v < r.Hi }

// Bounds implements Expr. A range reaching MaxInt64 is inexact: the
// scan's unbounded upper end would include MaxInt64, which the half-open
// predicate excludes, so a per-row re-check is required.
func (r Range) Bounds() (int64, int64, bool) { return r.Lo, r.Hi, r.Hi != math.MaxInt64 }

// String implements Expr.
func (r Range) String() string { return fmt.Sprintf("attr >= %d AND attr < %d", r.Lo, r.Hi) }

// Op enumerates comparison operators.
type Op int

// Comparison operators.
const (
	LT Op = iota // <
	LE           // <=
	GT           // >
	GE           // >=
	EQ           // =
	NE           // <>
)

// String returns the SQL spelling of the operator.
func (o Op) String() string {
	switch o {
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	case EQ:
		return "="
	case NE:
		return "<>"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Cmp is the predicate "attr <op> Val".
type Cmp struct {
	Op  Op
	Val int64
}

// Eval implements Expr.
func (c Cmp) Eval(v int64) bool {
	switch c.Op {
	case LT:
		return v < c.Val
	case LE:
		return v <= c.Val
	case GT:
		return v > c.Val
	case GE:
		return v >= c.Val
	case EQ:
		return v == c.Val
	case NE:
		return v != c.Val
	default:
		panic(fmt.Sprintf("expr: invalid op %d", int(c.Op)))
	}
}

// Bounds implements Expr.
func (c Cmp) Bounds() (int64, int64, bool) {
	switch c.Op {
	case LT:
		// v < MaxInt64 cannot be expressed exactly: a MaxInt64 upper
		// bound means unbounded-inclusive to the scan kernels.
		return math.MinInt64, c.Val, c.Val != math.MaxInt64
	case LE:
		return math.MinInt64, satInc(c.Val), true
	case GT:
		return satInc(c.Val), math.MaxInt64, c.Val != math.MaxInt64
	case GE:
		return c.Val, math.MaxInt64, true // MaxInt64 upper bound is inclusive
	case EQ:
		return c.Val, satInc(c.Val), c.Val != math.MaxInt64
	case NE:
		return math.MinInt64, math.MaxInt64, false
	default:
		panic(fmt.Sprintf("expr: invalid op %d", int(c.Op)))
	}
}

// String implements Expr.
func (c Cmp) String() string { return fmt.Sprintf("attr %s %d", c.Op, c.Val) }

func satInc(v int64) int64 {
	if v == math.MaxInt64 {
		return v
	}
	return v + 1
}

// And is the conjunction of its children.
type And struct {
	L, R Expr
}

// Eval implements Expr.
func (a And) Eval(v int64) bool { return a.L.Eval(v) && a.R.Eval(v) }

// Bounds implements Expr.
func (a And) Bounds() (int64, int64, bool) {
	llo, lhi, lex := a.L.Bounds()
	rlo, rhi, rex := a.R.Bounds()
	lo, hi := max64(llo, rlo), min64(lhi, rhi)
	if lo > hi {
		lo, hi = 0, 0
	}
	return lo, hi, lex && rex
}

// String implements Expr.
func (a And) String() string { return fmt.Sprintf("(%s AND %s)", a.L, a.R) }

// Or is the disjunction of its children.
type Or struct {
	L, R Expr
}

// Eval implements Expr.
func (o Or) Eval(v int64) bool { return o.L.Eval(v) || o.R.Eval(v) }

// Bounds implements Expr.
func (o Or) Bounds() (int64, int64, bool) {
	llo, lhi, _ := o.L.Bounds()
	rlo, rhi, _ := o.R.Bounds()
	return min64(llo, rlo), max64(lhi, rhi), false
}

// String implements Expr.
func (o Or) String() string { return fmt.Sprintf("(%s OR %s)", o.L, o.R) }

// Not negates its child.
type Not struct {
	X Expr
}

// Eval implements Expr.
func (n Not) Eval(v int64) bool { return !n.X.Eval(v) }

// Bounds implements Expr. The complement of an interval is unbounded, so
// Not never prunes.
func (n Not) Bounds() (int64, int64, bool) {
	return math.MinInt64, math.MaxInt64, false
}

// String implements Expr.
func (n Not) String() string { return fmt.Sprintf("NOT %s", n.X) }

// True is the always-satisfied predicate (a full scan).
type True struct{}

// Eval implements Expr.
func (True) Eval(int64) bool { return true }

// Bounds implements Expr. The unbounded-inclusive interval is exactly
// the always-true predicate, so full scans skip the filter kernel.
func (True) Bounds() (int64, int64, bool) { return math.MinInt64, math.MaxInt64, true }

// String implements Expr.
func (True) String() string { return "TRUE" }

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
