package expr

import (
	"math"
	"testing"

	"amnesiadb/internal/xrand"
)

// oddExpr is an Expr the Filter type switch does not know, forcing the
// interface fallback path.
type oddExpr struct{}

func (oddExpr) Eval(v int64) bool            { return v%2 != 0 }
func (oddExpr) Bounds() (int64, int64, bool) { return math.MinInt64, math.MaxInt64, false }
func (oddExpr) String() string               { return "odd" }

// TestFilterMatchesEval compacts a pseudo-random batch through Filter for
// every predicate shape and checks the result equals row-at-a-time Eval.
func TestFilterMatchesEval(t *testing.T) {
	exprs := []Expr{
		True{},
		NewRange(-50, 50),
		NewRange(10, 10), // empty
		Cmp{Op: LT, Val: 0},
		Cmp{Op: LE, Val: 17},
		Cmp{Op: GT, Val: -3},
		Cmp{Op: GE, Val: 90},
		Cmp{Op: EQ, Val: 5},
		Cmp{Op: NE, Val: 5},
		And{L: Cmp{Op: GE, Val: -20}, R: Cmp{Op: LT, Val: 20}},
		And{L: NewRange(-100, 100), R: Cmp{Op: NE, Val: 0}},
		Or{L: Cmp{Op: LT, Val: -80}, R: Cmp{Op: GT, Val: 80}},
		Not{X: NewRange(-10, 10)},
		Not{X: Or{L: Cmp{Op: EQ, Val: 1}, R: Cmp{Op: EQ, Val: 2}}},
		oddExpr{},
		And{L: oddExpr{}, R: Cmp{Op: GT, Val: 0}},
	}
	src := xrand.New(99)
	const n = 512
	baseSel := make([]int32, n)
	baseVal := make([]int64, n)
	for i := 0; i < n; i++ {
		baseSel[i] = int32(i * 2)
		baseVal[i] = src.Int63n(201) - 100
	}
	for _, e := range exprs {
		t.Run(e.String(), func(t *testing.T) {
			sel := append([]int32(nil), baseSel...)
			val := append([]int64(nil), baseVal...)
			k := Filter(e, sel, val, n)

			var wantSel []int32
			var wantVal []int64
			for i := 0; i < n; i++ {
				if e.Eval(baseVal[i]) {
					wantSel = append(wantSel, baseSel[i])
					wantVal = append(wantVal, baseVal[i])
				}
			}
			if k != len(wantSel) {
				t.Fatalf("Filter kept %d rows, want %d", k, len(wantSel))
			}
			for i := 0; i < k; i++ {
				if sel[i] != wantSel[i] || val[i] != wantVal[i] {
					t.Fatalf("row %d: got (%d, %d), want (%d, %d)", i, sel[i], val[i], wantSel[i], wantVal[i])
				}
			}
		})
	}
}

// TestFilterPartialBatch checks Filter honours n and ignores buffer tails.
func TestFilterPartialBatch(t *testing.T) {
	sel := []int32{0, 1, 2, 3, 4, 5}
	val := []int64{10, 20, 30, 40, 50, 60}
	k := Filter(Cmp{Op: GE, Val: 20}, sel, val, 3)
	if k != 2 {
		t.Fatalf("kept %d rows, want 2", k)
	}
	if sel[0] != 1 || sel[1] != 2 || val[0] != 20 || val[1] != 30 {
		t.Fatalf("compacted buffers wrong: %v %v", sel[:k], val[:k])
	}
	if sel[3] != 3 || val[5] != 60 {
		t.Fatal("Filter wrote past n")
	}
}
