package expr

// Filter is the vectorized predicate kernel: it compacts the first n
// entries of the parallel selection/value buffers in place, keeping only
// rows whose value satisfies e, and returns the new count. Concrete
// predicate shapes (Range, Cmp, True, And, Or, Not) run as tight
// monomorphic loops over the value slice; unknown Expr implementations
// fall back to one interface call per row.
//
// The engine calls Filter once per batch after the column scan kernel has
// applied the predicate's bounding interval, so Filter only runs for
// predicates whose Bounds are inexact.
func Filter(e Expr, sel []int32, val []int64, n int) int {
	switch p := e.(type) {
	case True:
		return n
	case Range:
		k := 0
		for i := 0; i < n; i++ {
			if v := val[i]; v >= p.Lo && v < p.Hi {
				sel[k], val[k] = sel[i], val[i]
				k++
			}
		}
		return k
	case Cmp:
		return filterCmp(p, sel, val, n)
	case And:
		n = Filter(p.L, sel, val, n)
		return Filter(p.R, sel, val, n)
	case Or:
		// Disjunctions do not decompose into sequential passes; evaluate
		// the whole predicate per row, still over the flat buffers.
		k := 0
		for i := 0; i < n; i++ {
			if p.L.Eval(val[i]) || p.R.Eval(val[i]) {
				sel[k], val[k] = sel[i], val[i]
				k++
			}
		}
		return k
	case Not:
		k := 0
		for i := 0; i < n; i++ {
			if !p.X.Eval(val[i]) {
				sel[k], val[k] = sel[i], val[i]
				k++
			}
		}
		return k
	default:
		k := 0
		for i := 0; i < n; i++ {
			if e.Eval(val[i]) {
				sel[k], val[k] = sel[i], val[i]
				k++
			}
		}
		return k
	}
}

// filterCmp runs one branch-free-comparison loop per operator so the
// operator switch happens once per batch, not once per row.
func filterCmp(c Cmp, sel []int32, val []int64, n int) int {
	k := 0
	switch c.Op {
	case LT:
		for i := 0; i < n; i++ {
			if val[i] < c.Val {
				sel[k], val[k] = sel[i], val[i]
				k++
			}
		}
	case LE:
		for i := 0; i < n; i++ {
			if val[i] <= c.Val {
				sel[k], val[k] = sel[i], val[i]
				k++
			}
		}
	case GT:
		for i := 0; i < n; i++ {
			if val[i] > c.Val {
				sel[k], val[k] = sel[i], val[i]
				k++
			}
		}
	case GE:
		for i := 0; i < n; i++ {
			if val[i] >= c.Val {
				sel[k], val[k] = sel[i], val[i]
				k++
			}
		}
	case EQ:
		for i := 0; i < n; i++ {
			if val[i] == c.Val {
				sel[k], val[k] = sel[i], val[i]
				k++
			}
		}
	case NE:
		for i := 0; i < n; i++ {
			if val[i] != c.Val {
				sel[k], val[k] = sel[i], val[i]
				k++
			}
		}
	default:
		for i := 0; i < n; i++ {
			if c.Eval(val[i]) {
				sel[k], val[k] = sel[i], val[i]
				k++
			}
		}
	}
	return k
}
