package expr

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRangeEval(t *testing.T) {
	r := NewRange(10, 20)
	cases := map[int64]bool{9: false, 10: true, 15: true, 19: true, 20: false}
	for v, want := range cases {
		if r.Eval(v) != want {
			t.Fatalf("Range.Eval(%d) = %v", v, !want)
		}
	}
}

func TestRangePanicsInverted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("inverted range did not panic")
		}
	}()
	NewRange(5, 4)
}

func TestCmpEval(t *testing.T) {
	cases := []struct {
		op   Op
		val  int64
		in   int64
		want bool
	}{
		{LT, 5, 4, true}, {LT, 5, 5, false},
		{LE, 5, 5, true}, {LE, 5, 6, false},
		{GT, 5, 6, true}, {GT, 5, 5, false},
		{GE, 5, 5, true}, {GE, 5, 4, false},
		{EQ, 5, 5, true}, {EQ, 5, 4, false},
		{NE, 5, 4, true}, {NE, 5, 5, false},
	}
	for _, c := range cases {
		got := Cmp{Op: c.op, Val: c.val}.Eval(c.in)
		if got != c.want {
			t.Fatalf("Cmp{%v %d}.Eval(%d) = %v", c.op, c.val, c.in, got)
		}
	}
}

func TestBoundsContainSatisfyingValues(t *testing.T) {
	exprs := []Expr{
		NewRange(3, 9),
		Cmp{LT, 5},
		Cmp{LE, 5},
		Cmp{GT, 5},
		Cmp{GE, 5},
		Cmp{EQ, 5},
		Cmp{NE, 5},
		And{NewRange(0, 10), Cmp{GE, 5}},
		Or{NewRange(0, 3), NewRange(7, 9)},
		Not{NewRange(2, 4)},
		True{},
	}
	for _, e := range exprs {
		lo, hi, _ := e.Bounds()
		for v := int64(-20); v <= 20; v++ {
			if e.Eval(v) && (v < lo || v >= hi) {
				// hi == MaxInt64 is treated as inclusive infinity
				if !(hi == math.MaxInt64 && v >= lo) {
					t.Fatalf("%s: satisfying value %d outside bounds [%d, %d)", e, v, lo, hi)
				}
			}
		}
	}
}

func TestBoundsExactMeansEquivalence(t *testing.T) {
	exprs := []Expr{
		NewRange(3, 9),
		Cmp{LT, 5},
		Cmp{LE, 5},
		Cmp{EQ, 5},
		And{NewRange(0, 10), NewRange(5, 20)},
	}
	for _, e := range exprs {
		lo, hi, exact := e.Bounds()
		if !exact {
			continue
		}
		for v := int64(-20); v <= 20; v++ {
			inBounds := v >= lo && v < hi
			if e.Eval(v) != inBounds {
				t.Fatalf("%s claims exact bounds [%d,%d) but disagrees at %d", e, lo, hi, v)
			}
		}
	}
}

func TestAndBoundsIntersect(t *testing.T) {
	e := And{NewRange(0, 10), NewRange(5, 20)}
	lo, hi, exact := e.Bounds()
	if lo != 5 || hi != 10 || !exact {
		t.Fatalf("And bounds = [%d, %d) exact=%v", lo, hi, exact)
	}
}

func TestAndDisjointBoundsEmpty(t *testing.T) {
	e := And{NewRange(0, 5), NewRange(10, 20)}
	lo, hi, _ := e.Bounds()
	if lo != hi {
		t.Fatalf("disjoint And bounds = [%d, %d)", lo, hi)
	}
	for v := int64(-5); v < 25; v++ {
		if e.Eval(v) {
			t.Fatalf("disjoint And satisfied at %d", v)
		}
	}
}

func TestOrBoundsUnion(t *testing.T) {
	e := Or{NewRange(0, 3), NewRange(7, 9)}
	lo, hi, exact := e.Bounds()
	if lo != 0 || hi != 9 || exact {
		t.Fatalf("Or bounds = [%d, %d) exact=%v", lo, hi, exact)
	}
}

func TestNotEval(t *testing.T) {
	e := Not{NewRange(2, 4)}
	if e.Eval(2) || e.Eval(3) || !e.Eval(4) || !e.Eval(1) {
		t.Fatal("Not evaluation wrong")
	}
}

func TestStrings(t *testing.T) {
	cases := map[string]Expr{
		"attr >= 1 AND attr < 5":     NewRange(1, 5),
		"attr <= 9":                  Cmp{LE, 9},
		"(attr > 1 AND attr < 5)":    And{Cmp{GT, 1}, Cmp{LT, 5}},
		"(attr = 1 OR attr <> 2)":    Or{Cmp{EQ, 1}, Cmp{NE, 2}},
		"NOT attr >= 0 AND attr < 1": Not{NewRange(0, 1)},
		"TRUE":                       True{},
	}
	for want, e := range cases {
		if got := e.String(); got != want {
			t.Fatalf("String = %q, want %q", got, want)
		}
	}
}

func TestPropertyDeMorgan(t *testing.T) {
	f := func(lo1, w1, lo2, w2 int32, v int64) bool {
		a := NewRange(int64(lo1), int64(lo1)+int64(abs32(w1)))
		b := NewRange(int64(lo2), int64(lo2)+int64(abs32(w2)))
		lhs := Not{And{a, b}}.Eval(v)
		rhs := Or{Not{a}, Not{b}}.Eval(v)
		return lhs == rhs
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func abs32(v int32) int32 {
	if v < 0 {
		if v == math.MinInt32 {
			return math.MaxInt32
		}
		return -v
	}
	return v
}
