// Package table binds columns to the per-tuple metadata the amnesia
// machinery needs: the batch each tuple arrived in (the paper's timeline),
// its access frequency (for query-based amnesia, §3.2), and an active bit
// (§2.1: "For each table T, we keep a record of active and forgotten
// tuples"). Forgetting marks tuples inactive; Vacuum physically removes
// them, which is the most radical of the four fates §1 enumerates.
package table

import (
	"fmt"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"amnesiadb/internal/bitvec"
	"amnesiadb/internal/column"
)

// Table is a fixed-schema collection of int64 columns plus tuple metadata.
// All columns have identical length.
//
// Concurrency contract: structural mutation (appends, forgetting,
// vacuuming) requires external exclusive locking, but any number of
// concurrent readers may scan the table — and those readers may call
// Touch/TouchMany, which serialise the access-frequency updates behind
// an internal mutex. That split is what lets the facade run ScanActive
// queries under a shared read lock while preserving the §3.2
// query-based-amnesia feedback loop.
//
// The read surface the engine's morsel workers need — Column, Active,
// Len — takes no locks and returns stable references while the
// table's external lock is held shared, so any number of intra-query
// worker goroutines may scan concurrently with zero coordination
// through the table itself; only their single per-query TouchMany
// flush meets the internal mutex.
type Table struct {
	name    string
	colName []string
	cols    []*column.Int64
	byName  map[string]int

	active      *bitvec.Vector
	insertBatch []int32 // batch id each tuple arrived in
	batches     int     // number of batches appended so far

	// touchMu guards accessCount against concurrent readers flushing
	// their touch buffers. Readers of accessCount (strategies, snapshots)
	// run under the facade's exclusive lock, so they need no extra
	// synchronisation here.
	touchMu     sync.Mutex
	accessCount []uint32 // times the tuple appeared in a query result

	// epoch counts result-changing mutations: appends, forgetting,
	// remembering, vacuuming. Touches do not bump it — access counts
	// never change what a query returns. The SQL layer's result cache
	// keys on it; see Epoch.
	epoch atomic.Uint64

	// scanStride remembers the last effective adaptive-morsel stride a
	// full scan of this table settled on (in blocks; 0 = none yet), so
	// the next query's cursor skips the warm-up doublings. A hint only:
	// results are stride-independent by construction.
	scanStride atomic.Int32
}

// New creates an empty table with the given column names. It panics on an
// empty or duplicated column list.
func New(name string, columns ...string) *Table {
	if len(columns) == 0 {
		panic("table: New with no columns")
	}
	t := &Table{
		name:    name,
		colName: append([]string(nil), columns...),
		byName:  make(map[string]int, len(columns)),
		active:  bitvec.New(0),
	}
	for i, c := range columns {
		if _, dup := t.byName[c]; dup {
			panic(fmt.Sprintf("table: duplicate column %q", c))
		}
		t.byName[c] = i
		t.cols = append(t.cols, column.New())
	}
	return t
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Columns returns the column names in declaration order.
func (t *Table) Columns() []string { return append([]string(nil), t.colName...) }

// Column returns the storage for the named column, or an error if unknown.
func (t *Table) Column(name string) (*column.Int64, error) {
	i, ok := t.byName[name]
	if !ok {
		return nil, fmt.Errorf("table %s: unknown column %q", t.name, name)
	}
	return t.cols[i], nil
}

// MustColumn is Column but panics on unknown names; for internal call sites
// where the schema is static.
func (t *Table) MustColumn(name string) *column.Int64 {
	c, err := t.Column(name)
	if err != nil {
		panic(err)
	}
	return c
}

// Len returns the total number of tuples, active and forgotten.
func (t *Table) Len() int { return len(t.insertBatch) }

// ActiveCount returns the number of active tuples.
func (t *Table) ActiveCount() int { return t.active.Count() }

// ForgottenCount returns the number of forgotten tuples still stored.
func (t *Table) ForgottenCount() int { return t.Len() - t.ActiveCount() }

// Batches returns the number of update batches appended so far.
func (t *Table) Batches() int { return t.batches }

// Epoch returns the table's mutation epoch: a counter bumped by every
// result-changing mutation (AppendBatch, Forget, ForgetMany, Remember,
// Vacuum) under the caller's exclusive lock. Readers holding the
// shared lock see a stable value, so (query, epoch) identifies a
// result: any later mutation makes the pair stale. Touch feedback
// does not bump it.
func (t *Table) Epoch() uint64 { return t.epoch.Load() }

// bumpEpoch marks a result-changing mutation.
func (t *Table) bumpEpoch() { t.epoch.Add(1) }

// AdvanceEpoch jumps the mutation epoch forward by delta. The facade
// uses it to stamp each relation incarnation into a disjoint epoch
// range, so a restored or recreated table of the same name can never
// reproduce a (query, epoch) pair a dropped predecessor already put in
// the result cache.
func (t *Table) AdvanceEpoch(delta uint64) { t.epoch.Add(delta) }

// ActiveSnapshot appends the active bitmap's words to dst and returns
// the extended slice plus the current tuple count. Together with
// ForgottenSince it lets the durability layer capture exactly which
// positions a stochastic decay strategy forgot — the WAL logs *what*
// was forgotten, never why — by diffing the bitmap around the
// enforcement call instead of instrumenting every strategy.
func (t *Table) ActiveSnapshot(dst []uint64) ([]uint64, int) {
	n := t.Len()
	for wi := 0; wi < (n+63)/64; wi++ {
		dst = append(dst, t.active.Word(wi))
	}
	return dst, n
}

// ForgottenSince returns the positions that flipped from active (or did
// not exist) in the snapshot to forgotten now: a tuple counts when its
// bit is clear and it was either set at snapshot time or appended after
// it (appended-then-immediately-forgotten). Positions ascend. Must not
// span a Vacuum, which renumbers positions.
func (t *Table) ForgottenSince(words []uint64, oldLen int) []int {
	var out []int
	n := t.Len()
	for i := 0; i < n; i++ {
		if t.active.Test(i) {
			continue
		}
		if i >= oldLen || words[i/64]&(1<<(uint(i)%64)) != 0 {
			out = append(out, i)
		}
	}
	return out
}

// ScanStrideHint returns the last recorded effective morsel stride in
// blocks, 0 when no scan has recorded one yet.
func (t *Table) ScanStrideHint() int { return int(t.scanStride.Load()) }

// RecordScanStride stores the effective morsel stride a completed scan
// settled on, seeding the next query's adaptive cursor.
func (t *Table) RecordScanStride(blocks int) {
	if blocks > 0 {
		t.scanStride.Store(int32(blocks))
	}
}

// Active exposes the activity bitmap. Callers must not mutate it directly;
// use Forget/Remember so metadata stays consistent. Strategies and scans
// read it.
func (t *Table) Active() *bitvec.Vector { return t.active }

// InsertBatch returns the batch id tuple i arrived in.
func (t *Table) InsertBatch(i int) int32 { return t.insertBatch[i] }

// AccessCount returns the query access frequency of tuple i.
func (t *Table) AccessCount(i int) uint32 { return t.accessCount[i] }

// AppendBatch appends one update batch. vals maps column name to a slice of
// equal length; every schema column must be present. New tuples arrive
// active. The assigned batch id is returned.
func (t *Table) AppendBatch(vals map[string][]int64) (int, error) {
	if len(vals) != len(t.cols) {
		return 0, fmt.Errorf("table %s: batch has %d columns, schema has %d", t.name, len(vals), len(t.cols))
	}
	n := -1
	for _, name := range t.colName {
		vs, ok := vals[name]
		if !ok {
			return 0, fmt.Errorf("table %s: batch missing column %q", t.name, name)
		}
		if n == -1 {
			n = len(vs)
		} else if len(vs) != n {
			return 0, fmt.Errorf("table %s: ragged batch: column %q has %d values, want %d", t.name, name, len(vs), n)
		}
	}
	batch := t.batches
	t.batches++
	for i, name := range t.colName {
		t.cols[i].AppendSlice(vals[name])
	}
	// Bulk-extend the per-tuple metadata: one grow per slice, then a
	// flat fill, instead of 2n appends.
	old := t.Len()
	t.insertBatch = slices.Grow(t.insertBatch, n)[:old+n]
	t.accessCount = slices.Grow(t.accessCount, n)[:old+n]
	fill := t.insertBatch[old:]
	for i := range fill {
		fill[i] = int32(batch)
	}
	clear(t.accessCount[old:])
	t.active.GrowSet(old + n)
	t.bumpEpoch()
	return batch, nil
}

// AppendSingleColumn is a convenience for the simulator's one-column tables.
func (t *Table) AppendSingleColumn(vs []int64) (int, error) {
	if len(t.colName) != 1 {
		return 0, fmt.Errorf("table %s: AppendSingleColumn on %d-column schema", t.name, len(t.colName))
	}
	return t.AppendBatch(map[string][]int64{t.colName[0]: vs})
}

// Forget marks tuple i inactive. Forgetting an already-forgotten tuple is a
// no-op. It panics if i is out of range.
func (t *Table) Forget(i int) {
	t.active.Clear(i)
	t.bumpEpoch()
}

// ForgetMany marks all given tuples inactive.
func (t *Table) ForgetMany(idx []int) {
	if len(idx) == 0 {
		return
	}
	for _, i := range idx {
		t.active.Clear(i)
	}
	t.bumpEpoch()
}

// Remember reactivates tuple i (used by cold-storage recovery).
func (t *Table) Remember(i int) {
	t.active.Set(i)
	t.bumpEpoch()
}

// IsActive reports whether tuple i is active.
func (t *Table) IsActive(i int) bool { return t.active.Test(i) }

// Touch increments the access count of tuple i, saturating at the uint32
// ceiling. It is safe to call from concurrent readers.
func (t *Table) Touch(i int) {
	t.touchMu.Lock()
	t.touchOne(i)
	t.touchMu.Unlock()
}

// TouchMany increments the access count for each listed tuple. Query
// execution accumulates the positions a query returned and flushes them
// here in one call, so concurrent readers contend on the touch mutex
// once per query instead of once per tuple.
func (t *Table) TouchMany(idx []int32) {
	if len(idx) == 0 {
		return
	}
	t.touchMu.Lock()
	for _, i := range idx {
		t.touchOne(int(i))
	}
	t.touchMu.Unlock()
}

// touchOne is the lock-free core of Touch; callers hold touchMu.
func (t *Table) touchOne(i int) {
	if t.accessCount[i] != ^uint32(0) {
		t.accessCount[i]++
	}
}

// ActiveIndices returns the positions of all active tuples in insertion
// order.
func (t *Table) ActiveIndices() []int { return t.active.SetIndices() }

// ForgottenIndices returns the positions of all forgotten tuples.
func (t *Table) ForgottenIndices() []int { return t.active.ClearIndices() }

// Stats summarises the table for reporting and strategy decisions.
type Stats struct {
	Tuples    int
	Active    int
	Forgotten int
	Batches   int
}

// Stats returns current counters.
func (t *Table) Stats() Stats {
	a := t.ActiveCount()
	return Stats{Tuples: t.Len(), Active: a, Forgotten: t.Len() - a, Batches: t.batches}
}

// Vacuum physically removes forgotten tuples from every column and from the
// metadata arrays, compacting storage. It returns the remapping from old to
// new positions (-1 for removed tuples). This implements the paper's "as
// radical as to delete all data being forgotten".
func (t *Table) Vacuum() []int32 {
	keep := t.active
	var remap []int32
	for _, c := range t.cols {
		remap = c.Compact(keep)
	}
	nActive := keep.Count()
	newBatch := make([]int32, 0, nActive)
	newAccess := make([]uint32, 0, nActive)
	for i := 0; i < t.Len(); i++ {
		if keep.Test(i) {
			newBatch = append(newBatch, t.insertBatch[i])
			newAccess = append(newAccess, t.accessCount[i])
		}
	}
	t.insertBatch = newBatch
	t.accessCount = newAccess
	t.active = bitvec.NewSet(nActive)
	t.bumpEpoch()
	return remap
}

// ActivePerBatch returns, for each batch id, (active, total) tuple counts.
// This is the raw series behind the paper's amnesia maps (Figures 1 and 2).
func (t *Table) ActivePerBatch() (active, total []int) {
	active = make([]int, t.batches)
	total = make([]int, t.batches)
	for i, b := range t.insertBatch {
		total[b]++
		if t.active.Test(i) {
			active[b]++
		}
	}
	return active, total
}

// OldestActive returns the position of the oldest (lowest index) active
// tuple, or -1 when none are active.
func (t *Table) OldestActive() int { return t.active.NextSet(0) }

// ActiveValueQuantiles returns the q evenly spaced quantile values of the
// named column over active tuples (q >= 1); used by distribution-aligned
// amnesia. Returns nil when no tuples are active.
func (t *Table) ActiveValueQuantiles(col string, q int) ([]int64, error) {
	c, err := t.Column(col)
	if err != nil {
		return nil, err
	}
	idx := t.ActiveIndices()
	if len(idx) == 0 {
		return nil, nil
	}
	vals := make([]int64, len(idx))
	for i, r := range idx {
		vals[i] = c.Get(r)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	out := make([]int64, q)
	for i := 0; i < q; i++ {
		pos := (i + 1) * len(vals) / (q + 1)
		if pos >= len(vals) {
			pos = len(vals) - 1
		}
		out[i] = vals[pos]
	}
	return out, nil
}
