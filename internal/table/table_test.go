package table

import (
	"testing"
	"testing/quick"

	"amnesiadb/internal/xrand"
)

func single(t *testing.T, batches ...[]int64) *Table {
	t.Helper()
	tb := New("t", "a")
	for _, b := range batches {
		if _, err := tb.AppendSingleColumn(b); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func TestNewValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"no columns": func() { New("t") },
		"dup column": func() { New("t", "a", "a") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestAppendBatchGrowsActive(t *testing.T) {
	tb := single(t, []int64{1, 2, 3}, []int64{4, 5})
	if tb.Len() != 5 || tb.ActiveCount() != 5 {
		t.Fatalf("len=%d active=%d", tb.Len(), tb.ActiveCount())
	}
	if tb.Batches() != 2 {
		t.Fatalf("batches = %d", tb.Batches())
	}
	if tb.InsertBatch(0) != 0 || tb.InsertBatch(3) != 1 {
		t.Fatalf("insertBatch wrong: %d %d", tb.InsertBatch(0), tb.InsertBatch(3))
	}
}

func TestAppendBatchErrors(t *testing.T) {
	tb := New("t", "a", "b")
	if _, err := tb.AppendBatch(map[string][]int64{"a": {1}}); err == nil {
		t.Fatal("missing column accepted")
	}
	if _, err := tb.AppendBatch(map[string][]int64{"a": {1}, "c": {2}}); err == nil {
		t.Fatal("wrong column name accepted")
	}
	if _, err := tb.AppendBatch(map[string][]int64{"a": {1, 2}, "b": {3}}); err == nil {
		t.Fatal("ragged batch accepted")
	}
	if _, err := tb.AppendSingleColumn([]int64{1}); err == nil {
		t.Fatal("AppendSingleColumn on 2-column table accepted")
	}
}

func TestColumnLookup(t *testing.T) {
	tb := New("t", "a", "b")
	if _, err := tb.Column("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Column("zz"); err == nil {
		t.Fatal("unknown column accepted")
	}
	cols := tb.Columns()
	if len(cols) != 2 || cols[0] != "a" || cols[1] != "b" {
		t.Fatalf("Columns = %v", cols)
	}
}

func TestForgetRememberCounts(t *testing.T) {
	tb := single(t, []int64{1, 2, 3, 4})
	tb.Forget(1)
	tb.Forget(2)
	if tb.ActiveCount() != 2 || tb.ForgottenCount() != 2 {
		t.Fatalf("active=%d forgotten=%d", tb.ActiveCount(), tb.ForgottenCount())
	}
	if tb.IsActive(1) || !tb.IsActive(0) {
		t.Fatal("IsActive wrong")
	}
	tb.Remember(1)
	if tb.ActiveCount() != 3 {
		t.Fatalf("active after Remember = %d", tb.ActiveCount())
	}
	tb.Forget(1)
	tb.Forget(1) // double-forget is a no-op
	if tb.ForgottenCount() != 2 {
		t.Fatalf("double forget changed count: %d", tb.ForgottenCount())
	}
}

func TestTouchSaturates(t *testing.T) {
	tb := single(t, []int64{9})
	for i := 0; i < 5; i++ {
		tb.Touch(0)
	}
	if tb.AccessCount(0) != 5 {
		t.Fatalf("access count = %d", tb.AccessCount(0))
	}
	tb.TouchMany([]int32{0, 0})
	if tb.AccessCount(0) != 7 {
		t.Fatalf("access count after TouchMany = %d", tb.AccessCount(0))
	}
}

func TestActiveForgottenIndices(t *testing.T) {
	tb := single(t, []int64{1, 2, 3, 4, 5})
	tb.ForgetMany([]int{0, 4})
	a := tb.ActiveIndices()
	f := tb.ForgottenIndices()
	if len(a) != 3 || a[0] != 1 || a[2] != 3 {
		t.Fatalf("ActiveIndices = %v", a)
	}
	if len(f) != 2 || f[0] != 0 || f[1] != 4 {
		t.Fatalf("ForgottenIndices = %v", f)
	}
}

func TestActivePerBatch(t *testing.T) {
	tb := single(t, []int64{1, 2}, []int64{3, 4, 5})
	tb.Forget(0)
	tb.Forget(4)
	active, total := tb.ActivePerBatch()
	if total[0] != 2 || total[1] != 3 {
		t.Fatalf("total = %v", total)
	}
	if active[0] != 1 || active[1] != 2 {
		t.Fatalf("active = %v", active)
	}
}

func TestVacuumCompactsEverything(t *testing.T) {
	tb := single(t, []int64{10, 20}, []int64{30, 40, 50})
	tb.Touch(2)
	tb.Touch(2)
	tb.ForgetMany([]int{0, 3})
	remap := tb.Vacuum()
	if tb.Len() != 3 || tb.ActiveCount() != 3 {
		t.Fatalf("post-vacuum len=%d active=%d", tb.Len(), tb.ActiveCount())
	}
	c := tb.MustColumn("a")
	want := []int64{20, 30, 50}
	for i, w := range want {
		if c.Get(i) != w {
			t.Fatalf("value %d = %d, want %d", i, c.Get(i), w)
		}
	}
	// metadata must move with the tuples
	if tb.InsertBatch(0) != 0 || tb.InsertBatch(1) != 1 {
		t.Fatalf("insert batches = %d %d", tb.InsertBatch(0), tb.InsertBatch(1))
	}
	if tb.AccessCount(1) != 2 {
		t.Fatalf("access count moved wrong: %d", tb.AccessCount(1))
	}
	if remap[0] != -1 || remap[2] != 1 || remap[4] != 2 {
		t.Fatalf("remap = %v", remap)
	}
}

func TestOldestActive(t *testing.T) {
	tb := single(t, []int64{1, 2, 3})
	if tb.OldestActive() != 0 {
		t.Fatalf("OldestActive = %d", tb.OldestActive())
	}
	tb.Forget(0)
	tb.Forget(1)
	if tb.OldestActive() != 2 {
		t.Fatalf("OldestActive = %d", tb.OldestActive())
	}
	tb.Forget(2)
	if tb.OldestActive() != -1 {
		t.Fatalf("OldestActive on empty = %d", tb.OldestActive())
	}
}

func TestActiveValueQuantiles(t *testing.T) {
	tb := single(t, []int64{50, 10, 40, 20, 30})
	qs, err := tb.ActiveValueQuantiles("a", 3)
	if err != nil {
		t.Fatal(err)
	}
	// sorted: 10 20 30 40 50; quartile positions 1, 2, 3 -> 20, 30, 40
	if len(qs) != 3 || qs[0] != 20 || qs[1] != 30 || qs[2] != 40 {
		t.Fatalf("quantiles = %v", qs)
	}
	if _, err := tb.ActiveValueQuantiles("nope", 2); err == nil {
		t.Fatal("unknown column accepted")
	}
}

func TestActiveValueQuantilesEmpty(t *testing.T) {
	tb := single(t, []int64{1})
	tb.Forget(0)
	qs, err := tb.ActiveValueQuantiles("a", 4)
	if err != nil || qs != nil {
		t.Fatalf("empty quantiles = %v, %v", qs, err)
	}
}

func TestPropertyForgetNeverChangesLen(t *testing.T) {
	f := func(vals []int64, forget []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		tb := New("t", "a")
		if _, err := tb.AppendSingleColumn(vals); err != nil {
			return false
		}
		for _, fi := range forget {
			tb.Forget(int(fi) % len(vals))
		}
		return tb.Len() == len(vals) &&
			tb.ActiveCount()+tb.ForgottenCount() == tb.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyVacuumKeepsActiveValues(t *testing.T) {
	src := xrand.New(77)
	f := func(vals []int64, forget []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		tb := New("t", "a")
		if _, err := tb.AppendSingleColumn(vals); err != nil {
			return false
		}
		for _, fi := range forget {
			tb.Forget(int(fi) % len(vals))
		}
		var want []int64
		for i, v := range vals {
			if tb.IsActive(i) {
				want = append(want, v)
			}
		}
		tb.Vacuum()
		if tb.Len() != len(want) {
			return false
		}
		c := tb.MustColumn("a")
		for i, w := range want {
			if c.Get(i) != w {
				return false
			}
		}
		_ = src
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAppendBatch(b *testing.B) {
	vals := make([]int64, 1000)
	for i := range vals {
		vals[i] = int64(i)
	}
	b.ResetTimer()
	tb := New("t", "a")
	for i := 0; i < b.N; i++ {
		if _, err := tb.AppendSingleColumn(vals); err != nil {
			b.Fatal(err)
		}
	}
}
