package sql

import "sync"

// StreamChunkRows is the output granularity of a ResultStream: Next
// assembles at most this many projected rows per call. Large enough to
// amortise per-chunk serialization, small enough that the server's
// incremental flushes keep first-byte latency and peak memory bounded
// by a chunk rather than the whole result.
const StreamChunkRows = 4096

// ResultStream yields one SELECT's output incrementally: the header is
// known up front, rows arrive in chunks handed from the engine's scan
// (or join) through projection on demand. Streams are single-consumer
// and not safe for concurrent use. Collect drains into the one-shot
// Result for callers that want the old materialized form.
type ResultStream struct {
	// Columns are the output column headers.
	Columns []string
	// Ints is true per column when values are exact integers (projection
	// columns, COUNT/SUM/MIN/MAX); AVG reports a float.
	Ints []bool
	// Detached reports that every later Next call works off buffers the
	// stream already owns — no relation storage is read again. The
	// executor sets it for value-only projections (single scan-column
	// results, including every partitioned-table select) and for
	// already-computed aggregates; catalog holders can then drop their
	// read locks as soon as the stream is built instead of pinning the
	// relation for the consumer's lifetime.
	Detached bool

	next func() ([][]float64, error)
	done bool
	err  error
	// closeFn tears down the stream's pipelined producers (cancelling
	// in-flight scans); nil for materialized streams.
	closeFn func()
	// scanDone is closed once the stream's producers have exited; nil
	// for materialized streams with no producers. Lock holders must
	// wait on it after Close before dropping read locks — a cancelled
	// worker may still be mid-morsel.
	scanDone <-chan struct{}
	// earlyRelease reports that Next never reads relation storage —
	// only buffers the stream owns — once scanDone closes: value-only
	// projections. Lazily gathering streams (multi-column projections,
	// joins) keep it false and pin their relations until Close.
	earlyRelease bool
	// cleanup runs once when the stream ends — drained, errored or
	// closed, whichever comes first. ExecStream hooks the deadline
	// timer's cancel here so an early finish releases it.
	cleanup     func()
	cleanupOnce sync.Once
}

// addCleanup chains fn onto the stream-end hook.
func (s *ResultStream) addCleanup(fn func()) {
	if prev := s.cleanup; prev != nil {
		s.cleanup = func() { prev(); fn() }
		return
	}
	s.cleanup = fn
}

func (s *ResultStream) runCleanup() {
	if s.cleanup != nil {
		s.cleanupOnce.Do(s.cleanup)
	}
}

// Close cancels the stream's producers, if it has live ones. Idempotent;
// a drained stream needs no Close, but abandoning an unconsumed stream
// without one leaks the producers until their scan completes.
func (s *ResultStream) Close() {
	if s.closeFn != nil {
		s.closeFn()
	}
	s.runCleanup()
}

// ScanDone returns the scan-completion channel: closed once the
// stream's producers have exited, nil when the stream never had any.
// After Close, lock holders must wait on it before dropping read locks.
func (s *ResultStream) ScanDone() <-chan struct{} { return s.scanDone }

// EarlyRelease reports that the stream stops reading relation storage
// as soon as ScanDone closes — catalog holders can then release read
// locks mid-stream, even with a slow consumer still draining.
func (s *ResultStream) EarlyRelease() bool { return s.earlyRelease }

// NewResultStream builds a stream over a generator. next returns the
// next non-empty chunk of rows, a nil slice once drained, or an error;
// after an error or nil the generator is not called again. Exported so
// servers and tests can stream from sources other than the executor.
func NewResultStream(columns []string, ints []bool, next func() ([][]float64, error)) *ResultStream {
	return &ResultStream{Columns: columns, Ints: ints, next: next}
}

// emptyStream is a drained stream with just the header — LIMIT 0 and
// friends.
func emptyStream(columns []string, ints []bool) *ResultStream {
	st := NewResultStream(columns, ints, func() ([][]float64, error) { return nil, nil })
	st.Detached = true
	return st
}

// oneChunkStream yields rows as a single chunk, then drains. The rows
// are already computed, so the stream is detached.
func oneChunkStream(columns []string, ints []bool, rows [][]float64) *ResultStream {
	sent := false
	st := NewResultStream(columns, ints, func() ([][]float64, error) {
		if sent || len(rows) == 0 {
			return nil, nil
		}
		sent = true
		return rows, nil
	})
	st.Detached = true
	return st
}

// Next returns the next chunk of rows. A nil slice means the stream is
// drained; an error ends the stream (subsequent calls repeat it).
func (s *ResultStream) Next() ([][]float64, error) {
	if s.done {
		return nil, s.err
	}
	rows, err := s.next()
	if err != nil {
		s.done, s.err = true, err
		s.runCleanup()
		return nil, err
	}
	if len(rows) == 0 {
		s.done = true
		s.runCleanup()
		return nil, nil
	}
	return rows, nil
}

// Collect drains the stream into the one-shot Result form.
func (s *ResultStream) Collect() (*Result, error) {
	res := &Result{Columns: s.Columns, Ints: s.Ints}
	for {
		rows, err := s.Next()
		if err != nil {
			return nil, err
		}
		if rows == nil {
			return res, nil
		}
		res.Rows = append(res.Rows, rows...)
	}
}
