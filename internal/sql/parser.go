package sql

import (
	"fmt"
	"strconv"

	"amnesiadb/internal/engine"
	"amnesiadb/internal/expr"
)

// ColRef names one column, optionally qualified by its table:
// "v" or "a.v". The zero value means "no column".
type ColRef struct {
	// Table is the qualifier; empty when the reference is unqualified.
	Table string
	// Name is the column name.
	Name string
}

// String renders the reference as written: "t.c" or "c".
func (c ColRef) String() string {
	if c.Table == "" {
		return c.Name
	}
	return c.Table + "." + c.Name
}

// JoinSpec is a parsed JOIN clause: the right-hand table and the two key
// columns of the equi-join condition, already assigned to their sides.
type JoinSpec struct {
	// Table is the right-hand (JOIN) table; Query.Table holds the left.
	Table string
	// LeftCol and RightCol are the join-key columns of Query.Table and
	// Table respectively.
	LeftCol, RightCol string
}

// Query is the parsed form of a SELECT statement.
type Query struct {
	// Columns to project; empty when Aggregate is set or Star is true.
	// In a join, references must resolve unambiguously to one side.
	Columns []ColRef
	// Star is SELECT *.
	Star bool
	// Aggregate is set for SELECT AGG(col): the function and its column
	// (column "*" for COUNT(*)).
	Aggregate    *engine.AggKind
	AggregateCol string
	// Table is the FROM target (the left side when Join is set).
	Table string
	// Join is the equi-join clause, nil for single-table queries.
	Join *JoinSpec
	// Where is the predicate over the single queried attribute (nil for
	// no WHERE clause). WhereCol names that attribute; in a join it must
	// resolve to the join key.
	Where    expr.Expr
	WhereCol ColRef
	// OrderBy names the column to sort result rows by; a zero ColRef
	// keeps insertion order. OrderDesc reverses the order.
	OrderBy   ColRef
	OrderDesc bool
	// Limit caps result rows when HasLimit is set. LIMIT 0 is a valid
	// query returning zero rows, so presence is tracked explicitly
	// rather than through a sentinel value.
	Limit    int
	HasLimit bool
}

// Tables returns the distinct table names the query references, FROM
// side first — what a catalog must resolve (and a facade must lock)
// before executing.
func (q *Query) Tables() []string {
	if q.Join == nil || q.Join.Table == q.Table {
		return []string{q.Table}
	}
	return []string{q.Table, q.Join.Table}
}

// Parse turns one SELECT statement into a Query.
func Parse(input string) (*Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: input}
	q, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if !p.at(tkEOF, "") {
		return nil, p.errf("trailing input starting with %q", p.cur().text)
	}
	return q, nil
}

type parser struct {
	toks []token
	i    int
	src  string
}

func (p *parser) cur() token { return p.toks[p.i] }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) eat(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text, what string) (token, error) {
	if p.at(kind, text) {
		t := p.cur()
		p.i++
		return t, nil
	}
	return token{}, p.errf("expected %s, found %q", what, p.cur().text)
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("%w: offset %d: %s", ErrInvalid, p.cur().pos, fmt.Sprintf(format, args...))
}

// parseColRef parses an identifier with an optional table qualifier:
// "c" or "t.c".
func (p *parser) parseColRef() (ColRef, error) {
	id, err := p.expect(tkIdent, "", "column name")
	if err != nil {
		return ColRef{}, err
	}
	if !p.eat(tkSymbol, ".") {
		return ColRef{Name: id.text}, nil
	}
	col, err := p.expect(tkIdent, "", "column name after '.'")
	if err != nil {
		return ColRef{}, err
	}
	return ColRef{Table: id.text, Name: col.text}, nil
}

func (p *parser) parseSelect() (*Query, error) {
	if _, err := p.expect(tkKeyword, "SELECT", "SELECT"); err != nil {
		return nil, err
	}
	q := &Query{}
	if err := p.parseSelectList(q); err != nil {
		return nil, err
	}
	if _, err := p.expect(tkKeyword, "FROM", "FROM"); err != nil {
		return nil, err
	}
	tbl, err := p.expect(tkIdent, "", "table name")
	if err != nil {
		return nil, err
	}
	q.Table = tbl.text
	if p.eat(tkKeyword, "JOIN") {
		if err := p.parseJoin(q); err != nil {
			return nil, err
		}
	}
	if p.eat(tkKeyword, "WHERE") {
		e, col, err := p.parseOr(ColRef{})
		if err != nil {
			return nil, err
		}
		q.Where, q.WhereCol = e, col
	}
	if p.eat(tkKeyword, "ORDER") {
		if _, err := p.expect(tkKeyword, "BY", "BY"); err != nil {
			return nil, err
		}
		ref, err := p.parseColRef()
		if err != nil {
			return nil, err
		}
		q.OrderBy = ref
		if p.eat(tkKeyword, "DESC") {
			q.OrderDesc = true
		} else {
			p.eat(tkKeyword, "ASC")
		}
	}
	if p.eat(tkKeyword, "LIMIT") {
		n, err := p.expect(tkNumber, "", "limit count")
		if err != nil {
			return nil, err
		}
		lim, err := strconv.Atoi(n.text)
		if err != nil || lim < 0 {
			return nil, p.errf("bad LIMIT %q", n.text)
		}
		q.Limit, q.HasLimit = lim, true
	}
	return q, nil
}

// parseJoin parses "<table> ON <t.c> = <t.c>" after the JOIN keyword and
// assigns the two qualified key references to their sides.
func (p *parser) parseJoin(q *Query) error {
	tbl, err := p.expect(tkIdent, "", "join table name")
	if err != nil {
		return err
	}
	if _, err := p.expect(tkKeyword, "ON", "ON"); err != nil {
		return err
	}
	a, err := p.parseColRef()
	if err != nil {
		return err
	}
	if _, err := p.expect(tkOp, "=", "'='"); err != nil {
		return err
	}
	b, err := p.parseColRef()
	if err != nil {
		return err
	}
	if a.Table == "" || b.Table == "" {
		return p.errf("ON condition must qualify both columns (%s = %s)", a, b)
	}
	j := &JoinSpec{Table: tbl.text}
	switch {
	case a.Table == q.Table && b.Table == tbl.text:
		j.LeftCol, j.RightCol = a.Name, b.Name
	case a.Table == tbl.text && b.Table == q.Table:
		j.LeftCol, j.RightCol = b.Name, a.Name
	default:
		return p.errf("ON condition must equate a %s column with a %s column", q.Table, tbl.text)
	}
	q.Join = j
	return nil
}

// aggKinds maps keyword to engine aggregate.
var aggKinds = map[string]engine.AggKind{
	"COUNT": engine.Count, "SUM": engine.Sum, "AVG": engine.Avg,
	"MIN": engine.Min, "MAX": engine.Max,
}

func (p *parser) parseSelectList(q *Query) error {
	if p.eat(tkSymbol, "*") {
		q.Star = true
		return nil
	}
	if t := p.cur(); t.kind == tkKeyword {
		if kind, ok := aggKinds[t.text]; ok {
			p.i++
			if _, err := p.expect(tkSymbol, "(", "("); err != nil {
				return err
			}
			var col string
			if p.eat(tkSymbol, "*") {
				if kind != engine.Count {
					return p.errf("only COUNT accepts *")
				}
				col = "*"
			} else {
				id, err := p.expect(tkIdent, "", "column name")
				if err != nil {
					return err
				}
				col = id.text
			}
			if _, err := p.expect(tkSymbol, ")", ")"); err != nil {
				return err
			}
			q.Aggregate, q.AggregateCol = &kind, col
			return nil
		}
	}
	for {
		ref, err := p.parseColRef()
		if err != nil {
			return err
		}
		q.Columns = append(q.Columns, ref)
		if !p.eat(tkSymbol, ",") {
			return nil
		}
	}
}

// parseOr handles OR-chains; col threads the single attribute the WHERE
// clause is allowed to reference (§2.2's one-attribute subspace).
func (p *parser) parseOr(col ColRef) (expr.Expr, ColRef, error) {
	left, col, err := p.parseAnd(col)
	if err != nil {
		return nil, ColRef{}, err
	}
	for p.eat(tkKeyword, "OR") {
		right, c, err := p.parseAnd(col)
		if err != nil {
			return nil, ColRef{}, err
		}
		col = c
		left = expr.Or{L: left, R: right}
	}
	return left, col, nil
}

func (p *parser) parseAnd(col ColRef) (expr.Expr, ColRef, error) {
	left, col, err := p.parseUnary(col)
	if err != nil {
		return nil, ColRef{}, err
	}
	for p.eat(tkKeyword, "AND") {
		right, c, err := p.parseUnary(col)
		if err != nil {
			return nil, ColRef{}, err
		}
		col = c
		left = expr.And{L: left, R: right}
	}
	return left, col, nil
}

func (p *parser) parseUnary(col ColRef) (expr.Expr, ColRef, error) {
	if p.eat(tkKeyword, "NOT") {
		inner, c, err := p.parseUnary(col)
		if err != nil {
			return nil, ColRef{}, err
		}
		return expr.Not{X: inner}, c, nil
	}
	if p.eat(tkSymbol, "(") {
		inner, c, err := p.parseOr(col)
		if err != nil {
			return nil, ColRef{}, err
		}
		if _, err := p.expect(tkSymbol, ")", ")"); err != nil {
			return nil, ColRef{}, err
		}
		return inner, c, nil
	}
	return p.parseComparison(col)
}

// cmpOps maps operator text to expr.Op.
var cmpOps = map[string]expr.Op{
	"=": expr.EQ, "<>": expr.NE, "<": expr.LT, "<=": expr.LE, ">": expr.GT, ">=": expr.GE,
}

// mergeRefs unifies two references to the WHERE attribute: names must
// match, an absent qualifier matches a present one (so "a > 1 AND
// t.a < 5" reads one attribute), and the qualified form becomes the
// canonical reference. ok is false when they name different attributes.
func mergeRefs(col, ref ColRef) (ColRef, bool) {
	if col.Name == "" {
		return ref, true
	}
	if col.Name != ref.Name {
		return ColRef{}, false
	}
	switch {
	case col.Table == ref.Table:
		return col, true
	case col.Table == "":
		return ref, true
	case ref.Table == "":
		return col, true
	default:
		return ColRef{}, false
	}
}

func (p *parser) parseComparison(col ColRef) (expr.Expr, ColRef, error) {
	ref, err := p.parseColRef()
	if err != nil {
		return nil, ColRef{}, err
	}
	merged, ok := mergeRefs(col, ref)
	if !ok {
		return nil, ColRef{}, p.errf("WHERE may reference only one attribute (%q), found %q", col, ref)
	}
	ref = merged
	opTok, err := p.expect(tkOp, "", "comparison operator")
	if err != nil {
		return nil, ColRef{}, err
	}
	numTok, err := p.expect(tkNumber, "", "integer literal")
	if err != nil {
		return nil, ColRef{}, err
	}
	v, err := strconv.ParseInt(numTok.text, 10, 64)
	if err != nil {
		return nil, ColRef{}, p.errf("bad integer %q", numTok.text)
	}
	return expr.Cmp{Op: cmpOps[opTok.text], Val: v}, ref, nil
}
