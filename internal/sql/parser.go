package sql

import (
	"fmt"
	"strconv"

	"amnesiadb/internal/engine"
	"amnesiadb/internal/expr"
)

// Query is the parsed form of a SELECT statement.
type Query struct {
	// Columns to project; empty when Aggregate is set or Star is true.
	Columns []string
	// Star is SELECT *.
	Star bool
	// Aggregate is set for SELECT AGG(col): the function and its column
	// (column "*" for COUNT(*)).
	Aggregate    *engine.AggKind
	AggregateCol string
	// Table is the FROM target.
	Table string
	// Where is the predicate over the single queried attribute (nil for
	// no WHERE clause). WhereCol names that attribute.
	Where    expr.Expr
	WhereCol string
	// OrderBy names the column to sort result rows by; empty keeps
	// insertion order. OrderDesc reverses the order.
	OrderBy   string
	OrderDesc bool
	// Limit caps result rows when HasLimit is set. LIMIT 0 is a valid
	// query returning zero rows, so presence is tracked explicitly
	// rather than through a sentinel value.
	Limit    int
	HasLimit bool
}

// Parse turns one SELECT statement into a Query.
func Parse(input string) (*Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: input}
	q, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if !p.at(tkEOF, "") {
		return nil, p.errf("trailing input starting with %q", p.cur().text)
	}
	return q, nil
}

type parser struct {
	toks []token
	i    int
	src  string
}

func (p *parser) cur() token { return p.toks[p.i] }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) eat(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text, what string) (token, error) {
	if p.at(kind, text) {
		t := p.cur()
		p.i++
		return t, nil
	}
	return token{}, p.errf("expected %s, found %q", what, p.cur().text)
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("%w: offset %d: %s", ErrInvalid, p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) parseSelect() (*Query, error) {
	if _, err := p.expect(tkKeyword, "SELECT", "SELECT"); err != nil {
		return nil, err
	}
	q := &Query{}
	if err := p.parseSelectList(q); err != nil {
		return nil, err
	}
	if _, err := p.expect(tkKeyword, "FROM", "FROM"); err != nil {
		return nil, err
	}
	tbl, err := p.expect(tkIdent, "", "table name")
	if err != nil {
		return nil, err
	}
	q.Table = tbl.text
	if p.eat(tkKeyword, "WHERE") {
		e, col, err := p.parseOr("")
		if err != nil {
			return nil, err
		}
		q.Where, q.WhereCol = e, col
	}
	if p.eat(tkKeyword, "ORDER") {
		if _, err := p.expect(tkKeyword, "BY", "BY"); err != nil {
			return nil, err
		}
		id, err := p.expect(tkIdent, "", "column name")
		if err != nil {
			return nil, err
		}
		q.OrderBy = id.text
		if p.eat(tkKeyword, "DESC") {
			q.OrderDesc = true
		} else {
			p.eat(tkKeyword, "ASC")
		}
	}
	if p.eat(tkKeyword, "LIMIT") {
		n, err := p.expect(tkNumber, "", "limit count")
		if err != nil {
			return nil, err
		}
		lim, err := strconv.Atoi(n.text)
		if err != nil || lim < 0 {
			return nil, p.errf("bad LIMIT %q", n.text)
		}
		q.Limit, q.HasLimit = lim, true
	}
	return q, nil
}

// aggKinds maps keyword to engine aggregate.
var aggKinds = map[string]engine.AggKind{
	"COUNT": engine.Count, "SUM": engine.Sum, "AVG": engine.Avg,
	"MIN": engine.Min, "MAX": engine.Max,
}

func (p *parser) parseSelectList(q *Query) error {
	if p.eat(tkSymbol, "*") {
		q.Star = true
		return nil
	}
	if t := p.cur(); t.kind == tkKeyword {
		if kind, ok := aggKinds[t.text]; ok {
			p.i++
			if _, err := p.expect(tkSymbol, "(", "("); err != nil {
				return err
			}
			var col string
			if p.eat(tkSymbol, "*") {
				if kind != engine.Count {
					return p.errf("only COUNT accepts *")
				}
				col = "*"
			} else {
				id, err := p.expect(tkIdent, "", "column name")
				if err != nil {
					return err
				}
				col = id.text
			}
			if _, err := p.expect(tkSymbol, ")", ")"); err != nil {
				return err
			}
			q.Aggregate, q.AggregateCol = &kind, col
			return nil
		}
	}
	for {
		id, err := p.expect(tkIdent, "", "column name")
		if err != nil {
			return err
		}
		q.Columns = append(q.Columns, id.text)
		if !p.eat(tkSymbol, ",") {
			return nil
		}
	}
}

// parseOr handles OR-chains; col threads the single attribute the WHERE
// clause is allowed to reference (§2.2's one-attribute subspace).
func (p *parser) parseOr(col string) (expr.Expr, string, error) {
	left, col, err := p.parseAnd(col)
	if err != nil {
		return nil, "", err
	}
	for p.eat(tkKeyword, "OR") {
		right, c, err := p.parseAnd(col)
		if err != nil {
			return nil, "", err
		}
		col = c
		left = expr.Or{L: left, R: right}
	}
	return left, col, nil
}

func (p *parser) parseAnd(col string) (expr.Expr, string, error) {
	left, col, err := p.parseUnary(col)
	if err != nil {
		return nil, "", err
	}
	for p.eat(tkKeyword, "AND") {
		right, c, err := p.parseUnary(col)
		if err != nil {
			return nil, "", err
		}
		col = c
		left = expr.And{L: left, R: right}
	}
	return left, col, nil
}

func (p *parser) parseUnary(col string) (expr.Expr, string, error) {
	if p.eat(tkKeyword, "NOT") {
		inner, c, err := p.parseUnary(col)
		if err != nil {
			return nil, "", err
		}
		return expr.Not{X: inner}, c, nil
	}
	if p.eat(tkSymbol, "(") {
		inner, c, err := p.parseOr(col)
		if err != nil {
			return nil, "", err
		}
		if _, err := p.expect(tkSymbol, ")", ")"); err != nil {
			return nil, "", err
		}
		return inner, c, nil
	}
	return p.parseComparison(col)
}

// cmpOps maps operator text to expr.Op.
var cmpOps = map[string]expr.Op{
	"=": expr.EQ, "<>": expr.NE, "<": expr.LT, "<=": expr.LE, ">": expr.GT, ">=": expr.GE,
}

func (p *parser) parseComparison(col string) (expr.Expr, string, error) {
	id, err := p.expect(tkIdent, "", "column name")
	if err != nil {
		return nil, "", err
	}
	if col != "" && id.text != col {
		return nil, "", p.errf("WHERE may reference only one attribute (%q), found %q", col, id.text)
	}
	opTok, err := p.expect(tkOp, "", "comparison operator")
	if err != nil {
		return nil, "", err
	}
	numTok, err := p.expect(tkNumber, "", "integer literal")
	if err != nil {
		return nil, "", err
	}
	v, err := strconv.ParseInt(numTok.text, 10, 64)
	if err != nil {
		return nil, "", p.errf("bad integer %q", numTok.text)
	}
	return expr.Cmp{Op: cmpOps[opTok.text], Val: v}, id.text, nil
}
