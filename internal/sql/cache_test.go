package sql

import (
	"reflect"
	"testing"
)

func TestNormalizeSQL(t *testing.T) {
	a := NormalizeSQL("  SELECT a FROM t\n WHERE a < 5  ")
	b := NormalizeSQL("SELECT a FROM t WHERE a < 5")
	if a != b {
		t.Fatalf("normalization differs: %q vs %q", a, b)
	}
}

// TestPlanCacheReuse pins that a hot statement parses once and the
// cached plan executes identically.
func TestPlanCacheReuse(t *testing.T) {
	c := NewPlanCache(4)
	q1, err := c.Parse("SELECT a FROM t WHERE a < 5")
	if err != nil {
		t.Fatal(err)
	}
	q2, err := c.Parse("SELECT a FROM t WHERE a < 5")
	if err != nil {
		t.Fatal(err)
	}
	if q1 != q2 {
		t.Fatal("second Parse did not return the cached plan")
	}
	hits, misses := c.Counters()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", hits, misses)
	}
	if _, err := c.Parse("SELEKT nonsense"); err == nil {
		t.Fatal("bad statement parsed")
	}
	if c.Len() != 1 {
		t.Fatalf("error cached: len=%d", c.Len())
	}
}

// TestPlanCacheEviction pins the LRU bound.
func TestPlanCacheEviction(t *testing.T) {
	c := NewPlanCache(2)
	stmts := []string{
		"SELECT a FROM t WHERE a < 1",
		"SELECT a FROM t WHERE a < 2",
		"SELECT a FROM t WHERE a < 3",
	}
	for _, q := range stmts {
		if _, err := c.Parse(q); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("len=%d, want 2", c.Len())
	}
	// The first statement was evicted: re-parsing it is a miss.
	_, missesBefore := c.Counters()
	if _, err := c.Parse(stmts[0]); err != nil {
		t.Fatal(err)
	}
	if _, misses := c.Counters(); misses != missesBefore+1 {
		t.Fatal("evicted statement did not miss")
	}
}

// TestResultCacheEpochInvalidation pins the tentpole invalidation
// rule: an entry is served only at the signature it was stored under,
// and a lookup at any other signature evicts it.
func TestResultCacheEpochInvalidation(t *testing.T) {
	c := NewResultCache(4)
	res := &CachedResult{Columns: []string{"a"}, Ints: []bool{true}, Rows: [][]float64{{1}, {2}}}
	c.Put("q", "t:1;", res)
	if got, ok := c.Get("q", "t:1;"); !ok || got != res {
		t.Fatal("fresh entry not served")
	}
	if _, ok := c.Get("q", "t:2;"); ok {
		t.Fatal("stale entry served after epoch bump")
	}
	if c.Len() != 0 {
		t.Fatalf("stale entry not evicted: len=%d", c.Len())
	}
	if _, ok := c.Get("q", "t:1;"); ok {
		t.Fatal("evicted entry served")
	}
}

// TestResultCacheRowCap pins that oversized results are not cached.
func TestResultCacheRowCap(t *testing.T) {
	c := NewResultCache(4)
	big := &CachedResult{Rows: make([][]float64, MaxCachedResultRows+1)}
	c.Put("big", "s", big)
	if c.Len() != 0 {
		t.Fatal("oversized result cached")
	}
}

// TestCachedStreamCopies pins that a cache hit's rows are copies: a
// consumer scribbling on them must not corrupt later hits.
func TestCachedStreamCopies(t *testing.T) {
	res := &CachedResult{Columns: []string{"a"}, Ints: []bool{true}, Rows: [][]float64{{7}}}
	st := NewCachedStream(res)
	rows, err := st.Next()
	if err != nil || len(rows) != 1 {
		t.Fatalf("rows=%v err=%v", rows, err)
	}
	rows[0][0] = 99
	st2 := NewCachedStream(res)
	rows2, _ := st2.Next()
	if !reflect.DeepEqual(rows2, [][]float64{{7}}) {
		t.Fatalf("cache corrupted by consumer mutation: %v", rows2)
	}
	if !st2.Detached {
		t.Fatal("cached stream not detached")
	}
}
