package sql

import (
	"context"
	"sort"

	"amnesiadb/internal/engine"
	"amnesiadb/internal/engine/governor"
	"amnesiadb/internal/engine/sched"
)

// sortRunRows is the run granularity for ORDER BY: qualifying rows are
// split into contiguous runs of this many entries, each sorted
// independently (in parallel when the knob allows) and merged with a
// k-way heap. Runs are morsel-sized so the sort pipelines with the
// morsel-parallel scan that produced the rows.
const sortRunRows = 64 * 1024

// orderPerm returns the permutation that orders keys — ascending, or
// descending when desc — truncated to limit when limit >= 0 (limit < 0
// means no LIMIT clause). Ties keep input order (keys is in insertion
// order on entry), matching what a stable full sort produces, so every
// (parallelism, limit) combination returns a byte-identical prefix of
// the same total order. Callers apply the permutation to whatever runs
// parallel to keys — selection vectors, value vectors, join rows — so
// one sort serves scans and joins alike.
//
// The shape is the classic external-sort one, run in memory: contiguous
// runs are sorted independently — in parallel when the knob allows —
// and a k-way heap merges the run heads. A LIMIT turns the merge into
// top-k: each sorted run is clipped to its first limit entries (a run
// cannot contribute more than that to the global top) and the merge
// stops after emitting limit rows.
//
// The sort is a barrier, so it honours request cancellation: a
// cancelled ctx abandons runs not yet started and returns ctx.Err().
func orderPerm(ctx context.Context, keys []int64, desc bool, limit, par int, sp *sched.Pool) ([]int, error) {
	n := len(keys)
	k := n
	if limit >= 0 && limit < n {
		k = limit
	}
	if k == 0 {
		return nil, nil
	}

	// The sort's working set — per-run permutations plus the merged
	// output — is charged against the query's quota for the barrier's
	// duration, so an ORDER BY over an over-budget qualifying set dies
	// here instead of allocating the runs.
	quota := governor.FromContext(ctx)
	sortBytes := int64(n+k) * 8
	if err := quota.Acquire(sortBytes); err != nil {
		return nil, err
	}
	defer quota.Release(sortBytes)

	nRuns := (n + sortRunRows - 1) / sortRunRows
	runs := make([][]int, nRuns) // per-run permutations of global indices
	err := engine.ForEachTaskCtx(ctx, sp, engine.WorkersSched(sp, par, n), nRuns, func(r int) {
		start := r * sortRunRows
		end := start + sortRunRows
		if end > n {
			end = n
		}
		perm := make([]int, end-start)
		for i := range perm {
			perm[i] = start + i
		}
		sort.Slice(perm, func(a, b int) bool {
			ka, kb := keys[perm[a]], keys[perm[b]]
			if ka != kb {
				if desc {
					return ka > kb
				}
				return ka < kb
			}
			return perm[a] < perm[b] // unique indices: stable and exact
		})
		if limit >= 0 && limit < len(perm) {
			perm = perm[:limit]
		}
		runs[r] = perm
	})
	if err != nil {
		return nil, err
	}

	if nRuns == 1 {
		return runs[0], nil
	}

	// K-way merge: a binary heap of run cursors ordered by head key,
	// ties broken by run index — runs are position-ordered, so this
	// preserves the global insertion-order tie-break.
	h := &runHeap{keys: keys, desc: desc}
	for r, perm := range runs {
		if len(perm) > 0 {
			h.push(runCursor{run: r, perm: perm})
		}
	}
	out := make([]int, 0, k)
	for len(out) < k && h.len() > 0 {
		top := &h.cur[0]
		out = append(out, top.perm[0])
		top.perm = top.perm[1:]
		if len(top.perm) == 0 {
			h.pop()
		} else {
			h.fix()
		}
	}
	return out, nil
}

// runCursor is one sorted run's remaining entries.
type runCursor struct {
	run  int
	perm []int
}

// runHeap is a hand-rolled binary min-heap (max-heap under desc) over
// run heads; small enough that container/heap's interface indirection
// is not worth it.
type runHeap struct {
	cur  []runCursor
	keys []int64
	desc bool
}

func (h *runHeap) len() int { return len(h.cur) }

// less orders cursor heads: by key, then by run index for stability.
func (h *runHeap) less(a, b runCursor) bool {
	ka, kb := h.keys[a.perm[0]], h.keys[b.perm[0]]
	if ka != kb {
		if h.desc {
			return ka > kb
		}
		return ka < kb
	}
	return a.run < b.run
}

func (h *runHeap) push(c runCursor) {
	h.cur = append(h.cur, c)
	i := len(h.cur) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.cur[i], h.cur[parent]) {
			break
		}
		h.cur[i], h.cur[parent] = h.cur[parent], h.cur[i]
		i = parent
	}
}

func (h *runHeap) pop() {
	last := len(h.cur) - 1
	h.cur[0] = h.cur[last]
	h.cur = h.cur[:last]
	h.fix()
}

// fix restores the heap property after the root's head advanced.
func (h *runHeap) fix() {
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.cur) && h.less(h.cur[l], h.cur[smallest]) {
			smallest = l
		}
		if r < len(h.cur) && h.less(h.cur[r], h.cur[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.cur[i], h.cur[smallest] = h.cur[smallest], h.cur[i]
		i = smallest
	}
}
