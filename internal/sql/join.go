package sql

import (
	"amnesiadb/internal/engine"
	"amnesiadb/internal/expr"
)

// joinSide pairs a join input's name with its relation; side 0 is the
// FROM table, side 1 the JOIN table.
type joinSide struct {
	name string
	rel  *TableRelation
	key  string
}

// joinCol is one projected column of a join, resolved to its side.
type joinCol struct {
	side int
	name string
}

// resolveJoinRef maps a column reference to one of the two join sides:
// by qualifier when present (the FROM side wins a self-join tie), by
// unambiguous column membership otherwise.
func resolveJoinRef(sides [2]joinSide, ref ColRef) (joinCol, error) {
	if ref.Table != "" {
		for s, js := range sides {
			if ref.Table == js.name {
				if !hasColumn(js.rel, ref.Name) {
					return joinCol{}, badQueryf("relation %q has no column %q", js.name, ref.Name)
				}
				return joinCol{side: s, name: ref.Name}, nil
			}
		}
		return joinCol{}, badQueryf("unknown table qualifier %q in %q", ref.Table, ref)
	}
	inL, inR := hasColumn(sides[0].rel, ref.Name), hasColumn(sides[1].rel, ref.Name)
	switch {
	case inL && inR:
		return joinCol{}, badQueryf("column %q is ambiguous between %q and %q", ref.Name, sides[0].name, sides[1].name)
	case inL:
		return joinCol{side: 0, name: ref.Name}, nil
	case inR:
		return joinCol{side: 1, name: ref.Name}, nil
	default:
		return joinCol{}, badQueryf("no joined relation has column %q", ref.Name)
	}
}

// execJoinStream executes SELECT ... FROM a JOIN b ON a.x = b.y riding
// the morsel-parallel hash join: both sides are collected by the
// parallel scan, the join runs at the configured parallelism, and the
// matched pairs stream through per-window projection — each output
// window gathers its qualified columns from the owning side's table.
// Output order is HashJoinPar's probe order, so results are
// byte-identical to the engine's direct join at every parallelism.
func execJoinStream(cat Catalog, q *Query, o Opts) (*ResultStream, error) {
	if q.Aggregate != nil {
		return nil, badQueryf("aggregates over JOIN are not supported")
	}
	if q.Star {
		return nil, badQueryf("JOIN projection must name qualified columns, not *")
	}
	var sides [2]joinSide
	for s, name := range []string{q.Table, q.Join.Table} {
		rel, err := cat.Lookup(name)
		if err != nil {
			return nil, err
		}
		tr, ok := rel.(*TableRelation)
		if !ok {
			return nil, badQueryf("JOIN requires flat tables; %q is %s", name, rel.Kind())
		}
		sides[s] = joinSide{name: name, rel: tr}
	}
	sides[0].key, sides[1].key = q.Join.LeftCol, q.Join.RightCol
	for _, js := range sides {
		if !hasColumn(js.rel, js.key) {
			return nil, badQueryf("relation %q has no join key column %q", js.name, js.key)
		}
	}
	proj := make([]joinCol, len(q.Columns))
	headers := make([]string, len(q.Columns))
	ints := make([]bool, len(q.Columns))
	for i, ref := range q.Columns {
		jc, err := resolveJoinRef(sides, ref)
		if err != nil {
			return nil, err
		}
		proj[i] = jc
		headers[i] = ref.String()
		ints[i] = true
	}
	pred := q.Where
	if pred == nil {
		pred = expr.True{}
	} else {
		// The predicate restricts the join key (the §2.2 one-attribute
		// subspace lifted to joins): HashJoinPar applies it to both
		// sides' key collection, so WHERE must name the key.
		jc, err := resolveJoinRef(sides, q.WhereCol)
		if err != nil {
			return nil, err
		}
		if jc.name != sides[jc.side].key {
			return nil, badQueryf("JOIN WHERE may reference only the join key, not %q", q.WhereCol)
		}
	}
	var order joinCol
	hasOrder := q.OrderBy.Name != ""
	if hasOrder {
		jc, err := resolveJoinRef(sides, q.OrderBy)
		if err != nil {
			return nil, err
		}
		order = jc
	}
	limit := queryLimit(q)
	if limit == 0 {
		return emptyStream(headers, ints), nil
	}

	// The join pipelines internally: both side collections stream
	// concurrently and the predicted build side scatters as chunks
	// arrive. A cancelled request context tears the collections down.
	jr, err := engine.HashJoinSched(o.context(), o.Sched, sides[0].rel.tbl, sides[0].key, sides[1].rel.tbl, sides[1].key, pred, engine.ScanActive, o.Parallelism)
	if err != nil {
		return nil, err
	}
	rows := jr.Rows
	if hasOrder {
		keys, err := sides[order.side].rel.Gather(order.name, sidePositions(rows, order.side, nil), nil)
		if err != nil {
			return nil, err
		}
		perm, err := orderPerm(o.context(), keys, q.OrderDesc, limit, o.Parallelism, o.Sched)
		if err != nil {
			return nil, err
		}
		sorted := make([]engine.JoinRow, len(perm))
		for i, p := range perm {
			sorted[i] = rows[p]
		}
		rows = sorted
	} else if limit > 0 && limit < len(rows) {
		rows = rows[:limit]
	}

	pos := 0
	var posBuf [2][]int32
	var valBuf []int64
	next := func() ([][]float64, error) {
		if pos >= len(rows) {
			return nil, nil
		}
		end := pos + StreamChunkRows
		if end > len(rows) {
			end = len(rows)
		}
		window := rows[pos:end]
		pos = end
		out := make([][]float64, len(window))
		for i := range out {
			out[i] = make([]float64, len(proj))
		}
		// Gather each projected column from its side over the window's
		// positions; the two position vectors are built at most once
		// per window.
		var havePos [2]bool
		for ci, jc := range proj {
			if !havePos[jc.side] {
				posBuf[jc.side] = sidePositions(window, jc.side, posBuf[jc.side][:0])
				havePos[jc.side] = true
			}
			var err error
			valBuf, err = sides[jc.side].rel.Gather(jc.name, posBuf[jc.side], valBuf)
			if err != nil {
				return nil, err
			}
			for i, v := range valBuf {
				out[i][ci] = float64(v)
			}
		}
		return out, nil
	}
	return NewResultStream(headers, ints, next), nil
}

// sidePositions extracts one side's tuple positions from joined rows.
func sidePositions(rows []engine.JoinRow, side int, buf []int32) []int32 {
	for _, r := range rows {
		if side == 0 {
			buf = append(buf, r.Left)
		} else {
			buf = append(buf, r.Right)
		}
	}
	return buf
}
