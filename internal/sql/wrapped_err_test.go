package sql

// Regression test for the senterr fix in execAggregateStream: relations
// may wrap engine.ErrNoRows with shard context (partitioned fan-outs
// do), so the empty-set detection must use errors.Is, not ==. Before the
// fix a wrapped sentinel surfaced as a query error instead of the SQL
// empty-set semantics.

import (
	"fmt"
	"math"
	"testing"

	"amnesiadb/internal/engine"
	"amnesiadb/internal/expr"
)

// wrappedNoRowsRel decorates a Relation so Aggregate reports the empty
// qualifying set the way a partitioned shard does: sentinel wrapped in
// positional context.
type wrappedNoRowsRel struct{ Relation }

func (r wrappedNoRowsRel) Aggregate(col string, pred expr.Expr, par int) (*engine.AggResult, error) {
	return nil, fmt.Errorf("shard 3: %w", engine.ErrNoRows)
}

func TestAggregateWrappedErrNoRows(t *testing.T) {
	base := catalog(t, 10, 20, 30)
	cat := CatalogFunc(func(name string) (Relation, error) {
		rel, err := base.Lookup(name)
		if err != nil {
			return nil, err
		}
		return wrappedNoRowsRel{rel}, nil
	})

	res, err := Run(cat, "SELECT COUNT(*) FROM t WHERE a > 100")
	if err != nil {
		t.Fatalf("COUNT over wrapped ErrNoRows: %v", err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != 0 {
		t.Fatalf("COUNT rows = %v, want [[0]]", res.Rows)
	}

	res, err = Run(cat, "SELECT AVG(a) FROM t WHERE a > 100")
	if err != nil {
		t.Fatalf("AVG over wrapped ErrNoRows: %v", err)
	}
	if len(res.Rows) != 1 || !math.IsNaN(res.Rows[0][0]) {
		t.Fatalf("AVG rows = %v, want one NaN row", res.Rows)
	}
}
