package sql

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"amnesiadb/internal/engine"
	"amnesiadb/internal/table"
)

func catalog(t *testing.T, vals ...int64) Catalog {
	t.Helper()
	tb := table.New("t", "a")
	if len(vals) > 0 {
		if _, err := tb.AppendSingleColumn(vals); err != nil {
			t.Fatal(err)
		}
	}
	return CatalogFunc(func(name string) (*table.Table, error) {
		if name != "t" {
			return nil, fmt.Errorf("unknown table %q", name)
		}
		return tb, nil
	})
}

func TestLexBasics(t *testing.T) {
	toks, err := lex("SELECT a FROM t WHERE a >= -5 AND a <> 10")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, tok := range toks {
		kinds = append(kinds, tok.text)
	}
	want := "SELECT a FROM t WHERE a >= -5 AND a <> 10 "
	if got := strings.Join(kinds, " "); got != want {
		t.Fatalf("lex = %q, want %q", got, want)
	}
}

func TestLexErrors(t *testing.T) {
	for _, bad := range []string{"a ; b", "a - b", "€"} {
		if _, err := lex(bad); err == nil {
			t.Fatalf("lex(%q) succeeded", bad)
		}
	}
}

func TestParseProjection(t *testing.T) {
	q, err := Parse("SELECT a, b FROM events WHERE a < 5 LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Columns) != 2 || q.Columns[0] != "a" || q.Columns[1] != "b" {
		t.Fatalf("columns = %v", q.Columns)
	}
	if q.Table != "events" || q.Limit != 3 || q.Where == nil || q.WhereCol != "a" {
		t.Fatalf("query = %+v", q)
	}
}

func TestParseStar(t *testing.T) {
	q, err := Parse("select * from t")
	if err != nil {
		t.Fatal(err)
	}
	if !q.Star {
		t.Fatal("star not set")
	}
}

func TestParseAggregates(t *testing.T) {
	cases := map[string]engine.AggKind{
		"SELECT COUNT(*) FROM t": engine.Count,
		"SELECT SUM(a) FROM t":   engine.Sum,
		"SELECT AVG(a) FROM t":   engine.Avg,
		"SELECT MIN(a) FROM t":   engine.Min,
		"SELECT MAX(a) FROM t":   engine.Max,
	}
	for src, want := range cases {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if q.Aggregate == nil || *q.Aggregate != want {
			t.Fatalf("%s parsed to %+v", src, q)
		}
	}
}

func TestParsePrecedenceAndParens(t *testing.T) {
	// NOT binds tighter than AND, AND tighter than OR.
	q, err := Parse("SELECT a FROM t WHERE a < 2 OR a > 5 AND NOT a = 7")
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate: 1 -> true; 6 -> true; 7 -> false (7>5 but NOT 7=7 fails); 3 -> false.
	checks := map[int64]bool{1: true, 6: true, 7: false, 3: false}
	for v, want := range checks {
		if got := q.Where.Eval(v); got != want {
			t.Fatalf("Eval(%d) = %v, want %v", v, got, want)
		}
	}
	q2, err := Parse("SELECT a FROM t WHERE (a < 2 OR a > 5) AND NOT a = 7")
	if err != nil {
		t.Fatal(err)
	}
	if q2.Where.Eval(7) {
		t.Fatal("parenthesised Eval(7) = true")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t WHERE a",
		"SELECT a FROM t WHERE a >",
		"SELECT a FROM t WHERE a > b",
		"SELECT a FROM t WHERE a > 1 AND b < 2", // two attributes
		"SELECT SUM(*) FROM t",
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM t garbage",
		"INSERT INTO t",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Fatalf("Parse(%q) succeeded", src)
		}
	}
}

func TestRunProjection(t *testing.T) {
	cat := catalog(t, 5, 15, 25, 35)
	res, err := Run(cat, "SELECT a FROM t WHERE a >= 10 AND a < 30")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0] != 15 || res.Rows[1][0] != 25 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if len(res.Columns) != 1 || res.Columns[0] != "a" || !res.Ints[0] {
		t.Fatalf("meta = %+v", res)
	}
}

func TestRunLimit(t *testing.T) {
	cat := catalog(t, 1, 2, 3, 4, 5)
	res, err := Run(cat, "SELECT a FROM t LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestOrderBy(t *testing.T) {
	cat := catalog(t, 30, 10, 20)
	res, err := Run(cat, "SELECT a FROM t ORDER BY a")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != 10 || res.Rows[1][0] != 20 || res.Rows[2][0] != 30 {
		t.Fatalf("asc rows = %v", res.Rows)
	}
	res, err = Run(cat, "SELECT a FROM t ORDER BY a DESC LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0] != 30 || res.Rows[1][0] != 20 {
		t.Fatalf("desc rows = %v", res.Rows)
	}
	res, err = Run(cat, "SELECT a FROM t ORDER BY a ASC LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != 10 {
		t.Fatalf("asc-limit rows = %v", res.Rows)
	}
}

func TestOrderByErrors(t *testing.T) {
	cat := catalog(t, 1)
	for _, bad := range []string{
		"SELECT a FROM t ORDER a",
		"SELECT a FROM t ORDER BY",
		"SELECT a FROM t ORDER BY zz",
	} {
		if _, err := Run(cat, bad); err == nil {
			t.Fatalf("Run(%q) succeeded", bad)
		}
	}
}

func TestRunAggregates(t *testing.T) {
	cat := catalog(t, 10, 20, 30)
	cases := map[string]float64{
		"SELECT COUNT(*) FROM t":              3,
		"SELECT SUM(a) FROM t":                60,
		"SELECT AVG(a) FROM t":                20,
		"SELECT MIN(a) FROM t":                10,
		"SELECT MAX(a) FROM t":                30,
		"SELECT COUNT(*) FROM t WHERE a > 10": 2,
		"SELECT AVG(a) FROM t WHERE a <= 20":  15,
	}
	for src, want := range cases {
		res, err := Run(cat, src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if len(res.Rows) != 1 || math.Abs(res.Rows[0][0]-want) > 1e-9 {
			t.Fatalf("%s = %v, want %v", src, res.Rows, want)
		}
	}
}

func TestRunCountEmptyIsZero(t *testing.T) {
	cat := catalog(t, 1)
	res, err := Run(cat, "SELECT COUNT(*) FROM t WHERE a > 100")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != 0 {
		t.Fatalf("empty count = %v", res.Rows[0][0])
	}
}

func TestRunAvgEmptyErrors(t *testing.T) {
	cat := catalog(t, 1)
	if _, err := Run(cat, "SELECT AVG(a) FROM t WHERE a > 100"); err == nil {
		t.Fatal("empty AVG succeeded")
	}
}

func TestRunRespectsAmnesia(t *testing.T) {
	tb := table.New("t", "a")
	if _, err := tb.AppendSingleColumn([]int64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	tb.Forget(0)
	tb.Forget(1)
	cat := CatalogFunc(func(string) (*table.Table, error) { return tb, nil })
	res, err := Run(cat, "SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != 2 {
		t.Fatalf("amnesiac count = %v, want 2", res.Rows[0][0])
	}
}

func TestRunErrors(t *testing.T) {
	cat := catalog(t, 1)
	for _, src := range []string{
		"SELECT a FROM missing",
		"SELECT zz FROM t",
		"SELECT SUM(zz) FROM t",
		"SELECT SUM(a) FROM t WHERE zz > 1",
	} {
		if _, err := Run(cat, src); err == nil {
			t.Fatalf("Run(%q) succeeded", src)
		}
	}
}

func TestRunAggregateColumnMismatch(t *testing.T) {
	tb := table.New("t", "a", "b")
	if _, err := tb.AppendBatch(map[string][]int64{"a": {1}, "b": {2}}); err != nil {
		t.Fatal(err)
	}
	cat := CatalogFunc(func(string) (*table.Table, error) { return tb, nil })
	if _, err := Run(cat, "SELECT SUM(b) FROM t WHERE a > 0"); err == nil {
		t.Fatal("cross-column aggregate accepted in single-attribute subspace")
	}
}

func TestRunMultiColumnProjection(t *testing.T) {
	tb := table.New("t", "ts", "val")
	err := func() error {
		_, err := tb.AppendBatch(map[string][]int64{"ts": {1, 2, 3}, "val": {10, 20, 30}})
		return err
	}()
	if err != nil {
		t.Fatal(err)
	}
	cat := CatalogFunc(func(string) (*table.Table, error) { return tb, nil })
	res, err := Run(cat, "SELECT ts, val FROM t WHERE ts >= 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][1] != 20 || res.Rows[1][0] != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
}
