package sql

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"amnesiadb/internal/engine"
	"amnesiadb/internal/table"
	"amnesiadb/internal/xrand"
)

func catalog(t *testing.T, vals ...int64) Catalog {
	t.Helper()
	tb := table.New("t", "a")
	if len(vals) > 0 {
		if _, err := tb.AppendSingleColumn(vals); err != nil {
			t.Fatal(err)
		}
	}
	return CatalogFunc(func(name string) (Relation, error) {
		if name != "t" {
			return nil, fmt.Errorf("unknown table %q", name)
		}
		return NewTableRelation(tb), nil
	})
}

// tableCatalog builds a catalog over the given named tables.
func tableCatalog(tbs ...*table.Table) Catalog {
	return CatalogFunc(func(name string) (Relation, error) {
		for _, tb := range tbs {
			if tb.Name() == name {
				return NewTableRelation(tb), nil
			}
		}
		return nil, fmt.Errorf("unknown table %q", name)
	})
}

func TestLexBasics(t *testing.T) {
	toks, err := lex("SELECT a FROM t WHERE a >= -5 AND a <> 10")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, tok := range toks {
		kinds = append(kinds, tok.text)
	}
	want := "SELECT a FROM t WHERE a >= -5 AND a <> 10 "
	if got := strings.Join(kinds, " "); got != want {
		t.Fatalf("lex = %q, want %q", got, want)
	}
}

func TestLexErrors(t *testing.T) {
	for _, bad := range []string{"a ; b", "a - b", "€"} {
		if _, err := lex(bad); err == nil {
			t.Fatalf("lex(%q) succeeded", bad)
		}
	}
}

func TestParseProjection(t *testing.T) {
	q, err := Parse("SELECT a, b FROM events WHERE a < 5 LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Columns) != 2 || q.Columns[0].Name != "a" || q.Columns[1].Name != "b" {
		t.Fatalf("columns = %v", q.Columns)
	}
	if q.Table != "events" || q.Limit != 3 || q.Where == nil || q.WhereCol.Name != "a" {
		t.Fatalf("query = %+v", q)
	}
}

func TestParseStar(t *testing.T) {
	q, err := Parse("select * from t")
	if err != nil {
		t.Fatal(err)
	}
	if !q.Star {
		t.Fatal("star not set")
	}
}

func TestParseAggregates(t *testing.T) {
	cases := map[string]engine.AggKind{
		"SELECT COUNT(*) FROM t": engine.Count,
		"SELECT SUM(a) FROM t":   engine.Sum,
		"SELECT AVG(a) FROM t":   engine.Avg,
		"SELECT MIN(a) FROM t":   engine.Min,
		"SELECT MAX(a) FROM t":   engine.Max,
	}
	for src, want := range cases {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if q.Aggregate == nil || *q.Aggregate != want {
			t.Fatalf("%s parsed to %+v", src, q)
		}
	}
}

func TestParsePrecedenceAndParens(t *testing.T) {
	// NOT binds tighter than AND, AND tighter than OR.
	q, err := Parse("SELECT a FROM t WHERE a < 2 OR a > 5 AND NOT a = 7")
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate: 1 -> true; 6 -> true; 7 -> false (7>5 but NOT 7=7 fails); 3 -> false.
	checks := map[int64]bool{1: true, 6: true, 7: false, 3: false}
	for v, want := range checks {
		if got := q.Where.Eval(v); got != want {
			t.Fatalf("Eval(%d) = %v, want %v", v, got, want)
		}
	}
	q2, err := Parse("SELECT a FROM t WHERE (a < 2 OR a > 5) AND NOT a = 7")
	if err != nil {
		t.Fatal(err)
	}
	if q2.Where.Eval(7) {
		t.Fatal("parenthesised Eval(7) = true")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t WHERE a",
		"SELECT a FROM t WHERE a >",
		"SELECT a FROM t WHERE a > b",
		"SELECT a FROM t WHERE a > 1 AND b < 2", // two attributes
		"SELECT SUM(*) FROM t",
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM t garbage",
		"INSERT INTO t",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Fatalf("Parse(%q) succeeded", src)
		}
	}
}

func TestRunProjection(t *testing.T) {
	cat := catalog(t, 5, 15, 25, 35)
	res, err := Run(cat, "SELECT a FROM t WHERE a >= 10 AND a < 30")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0] != 15 || res.Rows[1][0] != 25 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if len(res.Columns) != 1 || res.Columns[0] != "a" || !res.Ints[0] {
		t.Fatalf("meta = %+v", res)
	}
}

func TestRunLimit(t *testing.T) {
	cat := catalog(t, 1, 2, 3, 4, 5)
	res, err := Run(cat, "SELECT a FROM t LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestOrderBy(t *testing.T) {
	cat := catalog(t, 30, 10, 20)
	res, err := Run(cat, "SELECT a FROM t ORDER BY a")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != 10 || res.Rows[1][0] != 20 || res.Rows[2][0] != 30 {
		t.Fatalf("asc rows = %v", res.Rows)
	}
	res, err = Run(cat, "SELECT a FROM t ORDER BY a DESC LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0] != 30 || res.Rows[1][0] != 20 {
		t.Fatalf("desc rows = %v", res.Rows)
	}
	res, err = Run(cat, "SELECT a FROM t ORDER BY a ASC LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != 10 {
		t.Fatalf("asc-limit rows = %v", res.Rows)
	}
}

func TestOrderByErrors(t *testing.T) {
	cat := catalog(t, 1)
	for _, bad := range []string{
		"SELECT a FROM t ORDER a",
		"SELECT a FROM t ORDER BY",
		"SELECT a FROM t ORDER BY zz",
	} {
		if _, err := Run(cat, bad); err == nil {
			t.Fatalf("Run(%q) succeeded", bad)
		}
	}
}

func TestRunAggregates(t *testing.T) {
	cat := catalog(t, 10, 20, 30)
	cases := map[string]float64{
		"SELECT COUNT(*) FROM t":              3,
		"SELECT SUM(a) FROM t":                60,
		"SELECT AVG(a) FROM t":                20,
		"SELECT MIN(a) FROM t":                10,
		"SELECT MAX(a) FROM t":                30,
		"SELECT COUNT(*) FROM t WHERE a > 10": 2,
		"SELECT AVG(a) FROM t WHERE a <= 20":  15,
	}
	for src, want := range cases {
		res, err := Run(cat, src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if len(res.Rows) != 1 || math.Abs(res.Rows[0][0]-want) > 1e-9 {
			t.Fatalf("%s = %v, want %v", src, res.Rows, want)
		}
	}
}

func TestRunCountEmptyIsZero(t *testing.T) {
	cat := catalog(t, 1)
	res, err := Run(cat, "SELECT COUNT(*) FROM t WHERE a > 100")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != 0 {
		t.Fatalf("empty count = %v", res.Rows[0][0])
	}
}

func TestRunEmptyAggregateIsNullRow(t *testing.T) {
	// SQL semantics: non-COUNT aggregates over an empty qualifying set
	// return one NULL-style row (NaN), not an error.
	cat := catalog(t, 1)
	for _, src := range []string{
		"SELECT AVG(a) FROM t WHERE a > 100",
		"SELECT SUM(a) FROM t WHERE a > 100",
		"SELECT MIN(a) FROM t WHERE a > 100",
		"SELECT MAX(a) FROM t WHERE a > 100",
	} {
		res, err := Run(cat, src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if len(res.Rows) != 1 || !math.IsNaN(res.Rows[0][0]) {
			t.Fatalf("%s = %v, want one NaN row", src, res.Rows)
		}
	}
}

func TestRunRespectsAmnesia(t *testing.T) {
	tb := table.New("t", "a")
	if _, err := tb.AppendSingleColumn([]int64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	tb.Forget(0)
	tb.Forget(1)
	cat := CatalogFunc(func(string) (Relation, error) { return NewTableRelation(tb), nil })
	res, err := Run(cat, "SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != 2 {
		t.Fatalf("amnesiac count = %v, want 2", res.Rows[0][0])
	}
}

func TestRunErrors(t *testing.T) {
	cat := catalog(t, 1)
	for _, src := range []string{
		"SELECT a FROM missing",
		"SELECT zz FROM t",
		"SELECT SUM(zz) FROM t",
		"SELECT SUM(a) FROM t WHERE zz > 1",
	} {
		if _, err := Run(cat, src); err == nil {
			t.Fatalf("Run(%q) succeeded", src)
		}
	}
}

func TestRunAggregateColumnMismatch(t *testing.T) {
	tb := table.New("t", "a", "b")
	if _, err := tb.AppendBatch(map[string][]int64{"a": {1}, "b": {2}}); err != nil {
		t.Fatal(err)
	}
	cat := CatalogFunc(func(string) (Relation, error) { return NewTableRelation(tb), nil })
	if _, err := Run(cat, "SELECT SUM(b) FROM t WHERE a > 0"); err == nil {
		t.Fatal("cross-column aggregate accepted in single-attribute subspace")
	}
}

func TestRunMultiColumnProjection(t *testing.T) {
	tb := table.New("t", "ts", "val")
	err := func() error {
		_, err := tb.AppendBatch(map[string][]int64{"ts": {1, 2, 3}, "val": {10, 20, 30}})
		return err
	}()
	if err != nil {
		t.Fatal(err)
	}
	cat := CatalogFunc(func(string) (Relation, error) { return NewTableRelation(tb), nil })
	res, err := Run(cat, "SELECT ts, val FROM t WHERE ts >= 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][1] != 20 || res.Rows[1][0] != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestParseLimitPresence(t *testing.T) {
	q, err := Parse("SELECT a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if q.HasLimit {
		t.Fatal("HasLimit set without LIMIT clause")
	}
	q, err = Parse("SELECT a FROM t LIMIT 0")
	if err != nil {
		t.Fatal(err)
	}
	if !q.HasLimit || q.Limit != 0 {
		t.Fatalf("LIMIT 0 parsed to %+v", q)
	}
}

func TestRunLimitZero(t *testing.T) {
	// Regression: 0 used to double as the "no limit" sentinel, so
	// LIMIT 0 silently returned every row.
	cat := catalog(t, 1, 2, 3, 4, 5)
	for _, src := range []string{
		"SELECT a FROM t LIMIT 0",
		"SELECT a FROM t WHERE a > 1 LIMIT 0",
		"SELECT a FROM t ORDER BY a DESC LIMIT 0",
		"SELECT COUNT(*) FROM t LIMIT 0",
		"SELECT AVG(a) FROM t LIMIT 0",
	} {
		res, err := Run(cat, src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if len(res.Rows) != 0 {
			t.Fatalf("%s returned %d rows, want 0", src, len(res.Rows))
		}
	}
}

func TestErrInvalidWrapsBadQueries(t *testing.T) {
	cat := catalog(t, 1)
	for _, src := range []string{
		"SELEC a FROM t",    // parse error
		"SELECT a FROM t ;", // lex error
		"SELECT zz FROM t",  // unknown projection column
		"SELECT SUM(zz) FROM t",
		"SELECT a FROM t ORDER BY zz",
	} {
		_, err := Run(cat, src)
		if !errors.Is(err, ErrInvalid) {
			t.Fatalf("Run(%q) error %v does not wrap ErrInvalid", src, err)
		}
	}
}

// TestWhereMixedQualification pins the single-attribute check across
// qualified and unqualified spellings: "a" and "t.a" are one attribute,
// two different qualifiers are not.
func TestWhereMixedQualification(t *testing.T) {
	cat := catalog(t, 1, 2, 3, 4, 5)
	res, err := Run(cat, "SELECT a FROM t WHERE a > 1 AND t.a < 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 || res.Rows[0][0] != 2 || res.Rows[2][0] != 4 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// The canonical (qualified) form must still pass qualifier checks.
	if _, err := Run(cat, "SELECT a FROM t WHERE a > 1 AND u.a < 5"); !errors.Is(err, ErrInvalid) {
		t.Fatalf("foreign qualifier error = %v", err)
	}
	if _, err := Run(cat, "SELECT a FROM t WHERE t.a > 1 AND a < 5"); err != nil {
		t.Fatalf("qualified-first form: %v", err)
	}
}

// TestDetachedStreams pins which streams release their relations early:
// value-only projections and aggregates stop reading storage once their
// scan side completes — either born detached (materialized results) or
// advertising the pipeline's ScanDone signal — while projections that
// gather other columns lazily pin their relations until Close.
func TestDetachedStreams(t *testing.T) {
	tb := table.New("t", "a", "b")
	if _, err := tb.AppendBatch(map[string][]int64{"a": {1, 2}, "b": {10, 20}}); err != nil {
		t.Fatal(err)
	}
	cat := CatalogFunc(func(string) (Relation, error) { return NewTableRelation(tb), nil })
	cases := map[string]bool{
		"SELECT a FROM t":            true,
		"SELECT a, a FROM t":         true,
		"SELECT a FROM t ORDER BY a": true,
		"SELECT COUNT(*) FROM t":     true,
		"SELECT a FROM t LIMIT 0":    true,
		// ORDER BY gathers its keys eagerly, so a value-only projection
		// stays detached even when sorted by another column.
		"SELECT a FROM t ORDER BY b":     true,
		"SELECT a, b FROM t":             false,
		"SELECT b FROM t WHERE a > 0":    false,
		"SELECT t.a, t.b FROM t LIMIT 1": false,
	}
	for src, want := range cases {
		st, err := RunStream(cat, src, Opts{})
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if got := st.Detached || (st.EarlyRelease() && st.ScanDone() != nil); got != want {
			t.Fatalf("%s: early release = %v (Detached=%v, EarlyRelease=%v), want %v",
				src, got, st.Detached, st.EarlyRelease(), want)
		}
		if _, err := st.Collect(); err != nil {
			t.Fatalf("%s: collect: %v", src, err)
		}
	}
}

// TestOrderByLimitTopKEquivalence pins the run-sort + k-way-merge path
// (serial and parallel) against the naive full sort across limits,
// directions and duplicate-heavy keys.
func TestOrderByLimitTopKEquivalence(t *testing.T) {
	const n = 5000
	vals := make([]int64, n)
	src := xrand.New(12)
	for i := range vals {
		vals[i] = src.Int63n(200) // ~25 duplicates per key: ties matter
	}
	tb := table.New("t", "a")
	if _, err := tb.AppendSingleColumn(vals); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i += 5 {
		tb.Forget(i)
	}
	cat := CatalogFunc(func(string) (Relation, error) { return NewTableRelation(tb), nil })
	for _, q := range []string{
		"SELECT a FROM t ORDER BY a",
		"SELECT a FROM t ORDER BY a DESC",
		"SELECT a FROM t ORDER BY a LIMIT 1",
		"SELECT a FROM t ORDER BY a LIMIT 17",
		"SELECT a FROM t ORDER BY a DESC LIMIT 4000",
		"SELECT a FROM t WHERE a >= 50 ORDER BY a DESC LIMIT 100",
	} {
		serial, err := RunOpts(cat, q, Opts{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{2, 4} {
			got, err := RunOpts(cat, q, Opts{Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serial.Rows, got.Rows) {
				t.Fatalf("%s: par=%d rows diverge from serial", q, par)
			}
		}
		// Cross-check ordering and limit against first principles.
		prev := serial.Rows
		for i := 1; i < len(prev); i++ {
			asc := prev[i-1][0] <= prev[i][0]
			if strings.Contains(q, "DESC") {
				asc = prev[i-1][0] >= prev[i][0]
			}
			if !asc {
				t.Fatalf("%s: rows out of order at %d: %v then %v", q, i, prev[i-1], prev[i])
			}
		}
	}
}

// TestOrderByStabilityOnTies checks equal keys keep insertion order —
// the stable-sort contract the k-way merge must preserve.
func TestOrderByStabilityOnTies(t *testing.T) {
	tb := table.New("t", "k", "seq")
	ks := make([]int64, 400)
	seq := make([]int64, 400)
	for i := range ks {
		ks[i] = int64(i % 3) // heavy ties
		seq[i] = int64(i)
	}
	if _, err := tb.AppendBatch(map[string][]int64{"k": ks, "seq": seq}); err != nil {
		t.Fatal(err)
	}
	cat := CatalogFunc(func(string) (Relation, error) { return NewTableRelation(tb), nil })
	for _, par := range []int{1, 4} {
		res, err := RunOpts(cat, "SELECT k, seq FROM t ORDER BY k", Opts{Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		var lastKey, lastSeq float64 = -1, -1
		for _, row := range res.Rows {
			if row[0] == lastKey && row[1] <= lastSeq {
				t.Fatalf("par=%d: tie broke insertion order: seq %v after %v", par, row[1], lastSeq)
			}
			if row[0] != lastKey {
				lastKey = row[0]
				lastSeq = -1
			} else {
				lastSeq = row[1]
			}
		}
	}
}

// TestValidationSurvivesLimitZeroAndWhere pins two review regressions:
// the LIMIT 0 fast path must still validate every referenced column,
// and an unknown WHERE column must map to ErrInvalid (bad SQL), not an
// internal error.
func TestValidationSurvivesLimitZeroAndWhere(t *testing.T) {
	cat := catalog(t, 1, 2, 3)
	for _, src := range []string{
		"SELECT a FROM t WHERE zz > 1",
		"SELECT COUNT(*) FROM t WHERE zz > 1",
		"SELECT a FROM t ORDER BY zz LIMIT 0",
		"SELECT a FROM t WHERE zz > 1 LIMIT 0",
	} {
		_, err := Run(cat, src)
		if !errors.Is(err, ErrInvalid) {
			t.Fatalf("Run(%q) error %v, want ErrInvalid", src, err)
		}
	}
}

// TestOrderByMultiRunMergeEquivalence drives orderRows past sortRunRows
// so the runHeap k-way merge and the per-run LIMIT clip actually
// execute (the smaller tests above stay within one run). 200K rows =
// four sorted runs; heavy ties pin merge stability via the seq column.
func TestOrderByMultiRunMergeEquivalence(t *testing.T) {
	const n = 200_000
	ks := make([]int64, n)
	seq := make([]int64, n)
	src := xrand.New(13)
	for i := range ks {
		ks[i] = src.Int63n(500)
		seq[i] = int64(i)
	}
	tb := table.New("t", "k", "seq")
	if _, err := tb.AppendBatch(map[string][]int64{"k": ks, "seq": seq}); err != nil {
		t.Fatal(err)
	}
	cat := CatalogFunc(func(string) (Relation, error) { return NewTableRelation(tb), nil })
	for _, q := range []string{
		"SELECT k, seq FROM t ORDER BY k",
		"SELECT k, seq FROM t ORDER BY k DESC LIMIT 37",
		"SELECT k, seq FROM t ORDER BY k LIMIT 100000",
	} {
		serial, err := RunOpts(cat, q, Opts{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := RunOpts(cat, q, Opts{Parallelism: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial.Rows, parallel.Rows) {
			t.Fatalf("%s: parallel rows diverge from serial", q)
		}
		desc := strings.Contains(q, "DESC")
		for i := 1; i < len(serial.Rows); i++ {
			prev, cur := serial.Rows[i-1], serial.Rows[i]
			ordered := prev[0] <= cur[0]
			if desc {
				ordered = prev[0] >= cur[0]
			}
			if !ordered {
				t.Fatalf("%s: keys out of order at %d", q, i)
			}
			if prev[0] == cur[0] && prev[1] >= cur[1] {
				t.Fatalf("%s: tie at %d broke insertion order (seq %v then %v)", q, i, prev[1], cur[1])
			}
		}
	}
}
