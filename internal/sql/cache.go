package sql

import (
	"container/list"
	"strings"
	"sync"
	"sync/atomic"
)

// This file is the SQL layer's caching tier for the serving path: a
// parsed-plan LRU that skips the lexer/parser on hot statements, and a
// bounded result cache keyed by (normalized SQL, relation epochs) that
// serves repeated hot queries without scanning at all. Both are
// correctness-transparent: plans are immutable after Parse, and a
// result entry is only ever served while every underlying relation
// still has the epoch it was computed at — any insert, forget,
// remember or vacuum bumps an epoch and the stale entry is evicted on
// its next lookup. Access-frequency touches do not bump epochs (they
// cannot change a result), which also means a cache hit skips the
// §3.2 touch feedback; see the facade docs for that trade-off.

// NormalizeSQL canonicalizes a statement for cache keying: whitespace
// runs collapse to single spaces and the ends are trimmed. The grammar
// has no string literals, so whitespace is never significant and the
// normalized text parses identically to the original.
func NormalizeSQL(query string) string {
	return strings.Join(strings.Fields(query), " ")
}

// MaxCachedResultRows bounds which results are cacheable: only small,
// fully-materialized results — aggregates, point lookups, tight LIMITs
// — are worth pinning; anything larger is cheaper to re-stream than to
// hold resident. One stream chunk is the natural cut-off.
const MaxCachedResultRows = StreamChunkRows

// PlanCache is an LRU of parsed statements keyed by normalized SQL
// text. Parsed Query values are never mutated after Parse, so one
// cached plan may serve any number of concurrent executions.
type PlanCache struct {
	mu   sync.Mutex
	cap  int
	m    map[string]*list.Element
	lru  list.List // front = most recent; values are *planEntry
	hits atomic.Uint64
	miss atomic.Uint64
}

type planEntry struct {
	key string
	q   *Query
}

// NewPlanCache builds a plan cache holding up to capacity statements;
// capacity < 1 returns nil, and a nil cache parses straight through.
func NewPlanCache(capacity int) *PlanCache {
	if capacity < 1 {
		return nil
	}
	return &PlanCache{cap: capacity, m: make(map[string]*list.Element, capacity)}
}

// Parse returns the parsed form of query, from cache when hot. Parse
// errors are not cached; a hot bad statement re-parses (and re-fails)
// each time, which keeps error messages exact and the cache clean.
func (c *PlanCache) Parse(query string) (*Query, error) {
	if c == nil {
		return Parse(query)
	}
	c.mu.Lock()
	if el, ok := c.m[query]; ok {
		c.lru.MoveToFront(el)
		q := el.Value.(*planEntry).q
		c.mu.Unlock()
		c.hits.Add(1)
		return q, nil
	}
	c.mu.Unlock()
	c.miss.Add(1)
	q, err := Parse(query)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if _, ok := c.m[query]; !ok {
		c.m[query] = c.lru.PushFront(&planEntry{key: query, q: q})
		if c.lru.Len() > c.cap {
			old := c.lru.Back()
			c.lru.Remove(old)
			delete(c.m, old.Value.(*planEntry).key)
		}
	}
	c.mu.Unlock()
	return q, nil
}

// Len returns the number of cached plans.
func (c *PlanCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Counters returns cumulative hit/miss counts.
func (c *PlanCache) Counters() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.miss.Load()
}

// CachedResult is one fully-materialized query result as the stream
// layer shapes it. Rows are shared between the cache and every hit;
// consumers receive per-row copies so cached data stays immutable.
type CachedResult struct {
	Columns []string
	Ints    []bool
	Rows    [][]float64
}

// resultEntry pairs a cached result with the epoch signature it was
// computed at.
type resultEntry struct {
	key string // normalized SQL
	sig string // relation epoch signature at compute time
	res *CachedResult
}

// ResultCache is a bounded LRU of materialized results keyed by
// normalized SQL, each entry stamped with the epoch signature of every
// relation the query read. A lookup whose current signature differs
// finds the entry stale and evicts it on the spot — that eviction is
// exactly how an Insert/Adapt/forget invalidates cached answers.
type ResultCache struct {
	mu   sync.Mutex
	cap  int
	m    map[string]*list.Element
	lru  list.List // front = most recent; values are *resultEntry
	hits atomic.Uint64
	miss atomic.Uint64
}

// NewResultCache builds a result cache holding up to capacity results;
// capacity < 1 returns nil, and a nil cache never hits.
func NewResultCache(capacity int) *ResultCache {
	if capacity < 1 {
		return nil
	}
	return &ResultCache{cap: capacity, m: make(map[string]*list.Element, capacity)}
}

// Get returns the cached result for key if present and computed at the
// given epoch signature. A present entry with any other signature is
// stale — some relation mutated since — and is evicted immediately.
func (c *ResultCache) Get(key, sig string) (*CachedResult, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	el, ok := c.m[key]
	if !ok {
		c.mu.Unlock()
		c.miss.Add(1)
		return nil, false
	}
	ent := el.Value.(*resultEntry)
	if ent.sig != sig {
		c.lru.Remove(el)
		delete(c.m, key)
		c.mu.Unlock()
		c.miss.Add(1)
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.mu.Unlock()
	c.hits.Add(1)
	return ent.res, true
}

// Put stores a result computed at the given epoch signature,
// displacing any entry under the same key (a concurrent writer may
// have stored a staler one; signatures disambiguate at Get time) and
// the least-recently-used entry past capacity. Oversized results are
// rejected — see MaxCachedResultRows.
func (c *ResultCache) Put(key, sig string, res *CachedResult) {
	if c == nil || len(res.Rows) > MaxCachedResultRows {
		return
	}
	c.mu.Lock()
	if el, ok := c.m[key]; ok {
		el.Value = &resultEntry{key: key, sig: sig, res: res}
		c.lru.MoveToFront(el)
		c.mu.Unlock()
		return
	}
	c.m[key] = c.lru.PushFront(&resultEntry{key: key, sig: sig, res: res})
	if c.lru.Len() > c.cap {
		old := c.lru.Back()
		c.lru.Remove(old)
		delete(c.m, old.Value.(*resultEntry).key)
	}
	c.mu.Unlock()
}

// Len returns the number of cached results.
func (c *ResultCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Counters returns cumulative hit/miss counts (stale evictions count
// as misses).
func (c *ResultCache) Counters() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.miss.Load()
}

// NewCachedStream replays a cached result as a detached ResultStream,
// chunked like a live one. Rows are copied per chunk so consumers that
// mutate their rows (or hold them past the next query) cannot corrupt
// the cache.
func NewCachedStream(res *CachedResult) *ResultStream {
	pos := 0
	st := NewResultStream(res.Columns, res.Ints, func() ([][]float64, error) {
		if pos >= len(res.Rows) {
			return nil, nil
		}
		end := pos + StreamChunkRows
		if end > len(res.Rows) {
			end = len(res.Rows)
		}
		out := make([][]float64, end-pos)
		for i, row := range res.Rows[pos:end] {
			out[i] = append([]float64(nil), row...)
		}
		pos = end
		return out, nil
	})
	st.Detached = true
	return st
}
