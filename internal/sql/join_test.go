package sql

import (
	"errors"
	"reflect"
	"testing"

	"amnesiadb/internal/engine"
	"amnesiadb/internal/expr"
	"amnesiadb/internal/table"
	"amnesiadb/internal/xrand"
)

// joinFixture builds two joinable tables with overlapping keys and a
// few forgotten tuples, so join results depend on the active view.
func joinFixture(t *testing.T) (*table.Table, *table.Table, Catalog) {
	t.Helper()
	a := table.New("a", "k", "v")
	if _, err := a.AppendBatch(map[string][]int64{
		"k": {1, 2, 2, 3, 4, 7},
		"v": {10, 20, 21, 30, 40, 70},
	}); err != nil {
		t.Fatal(err)
	}
	b := table.New("b", "k", "w")
	if _, err := b.AppendBatch(map[string][]int64{
		"k": {2, 3, 3, 5, 7, 7},
		"w": {200, 300, 301, 500, 700, 701},
	}); err != nil {
		t.Fatal(err)
	}
	a.Forget(5) // a.k = 7 forgotten: 7-matches must vanish
	b.Forget(3)
	return a, b, tableCatalog(a, b)
}

func TestParseJoin(t *testing.T) {
	q, err := Parse("SELECT a.v, b.w FROM a JOIN b ON a.k = b.k WHERE a.k > 1 ORDER BY b.w DESC LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	if q.Join == nil || q.Join.Table != "b" || q.Join.LeftCol != "k" || q.Join.RightCol != "k" {
		t.Fatalf("join = %+v", q.Join)
	}
	if len(q.Columns) != 2 || q.Columns[0] != (ColRef{Table: "a", Name: "v"}) || q.Columns[1] != (ColRef{Table: "b", Name: "w"}) {
		t.Fatalf("columns = %v", q.Columns)
	}
	if q.WhereCol != (ColRef{Table: "a", Name: "k"}) || q.OrderBy != (ColRef{Table: "b", Name: "w"}) || !q.OrderDesc || q.Limit != 5 {
		t.Fatalf("query = %+v", q)
	}
	if got := q.Tables(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("tables = %v", got)
	}
	// Reversed ON order maps to the same sides.
	q2, err := Parse("SELECT a.v FROM a JOIN b ON b.k = a.k")
	if err != nil {
		t.Fatal(err)
	}
	if q2.Join.LeftCol != "k" || q2.Join.RightCol != "k" || q2.Join.Table != "b" {
		t.Fatalf("reversed join = %+v", q2.Join)
	}
}

func TestParseJoinErrors(t *testing.T) {
	for _, bad := range []string{
		"SELECT a.v FROM a JOIN",
		"SELECT a.v FROM a JOIN b",
		"SELECT a.v FROM a JOIN b ON",
		"SELECT a.v FROM a JOIN b ON a.k = c.k",                           // qualifier not a join table
		"SELECT a.v FROM a JOIN b ON k = b.k",                             // unqualified ON
		"SELECT a.v FROM a JOIN b ON a.k < b.k",                           // not an equi-join
		"SELECT a.v FROM a JOIN b ON a.k = b.k WHERE a.k > 1 AND b.k < 9", // two WHERE attributes
		"SELECT x.y.z FROM t",
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) succeeded", bad)
		}
	}
}

// TestJoinMatchesEngineJoin pins the SQL join against the engine's
// direct HashJoin: same pairs, same probe order, projected values
// byte-identical — in both FROM orders and with a key predicate.
func TestJoinMatchesEngineJoin(t *testing.T) {
	a, b, cat := joinFixture(t)
	cases := []struct {
		sql         string
		left, right *table.Table
		lcol, rcol  string
		lproj, rpoj string
		pred        expr.Expr
	}{
		{"SELECT a.v, b.w FROM a JOIN b ON a.k = b.k", a, b, "k", "k", "v", "w", nil},
		{"SELECT b.w, a.v FROM b JOIN a ON b.k = a.k", b, a, "k", "k", "w", "v", nil},
		{"SELECT a.v, b.w FROM a JOIN b ON a.k = b.k WHERE a.k > 2", a, b, "k", "k", "v", "w", expr.Cmp{Op: expr.GT, Val: 2}},
	}
	for _, tc := range cases {
		res, err := Run(cat, tc.sql)
		if err != nil {
			t.Fatalf("%s: %v", tc.sql, err)
		}
		pred := tc.pred
		if pred == nil {
			pred = expr.True{}
		}
		jr, err := engine.HashJoin(tc.left, tc.lcol, tc.right, tc.rcol, pred, engine.ScanActive)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != len(jr.Rows) {
			t.Fatalf("%s: %d rows, engine %d", tc.sql, len(res.Rows), len(jr.Rows))
		}
		lc, rc := tc.left.MustColumn(tc.lproj), tc.right.MustColumn(tc.rpoj)
		for i, r := range jr.Rows {
			wantL := float64(lc.Gather([]int32{r.Left}, nil)[0])
			wantR := float64(rc.Gather([]int32{r.Right}, nil)[0])
			if res.Rows[i][0] != wantL || res.Rows[i][1] != wantR {
				t.Fatalf("%s: row %d = %v, want (%v, %v)", tc.sql, i, res.Rows[i], wantL, wantR)
			}
		}
	}
}

// TestJoinOrderByLimit pins ORDER BY and LIMIT over joined output,
// including the unqualified-but-unambiguous column form.
func TestJoinOrderByLimit(t *testing.T) {
	_, _, cat := joinFixture(t)
	res, err := Run(cat, "SELECT a.v, w FROM a JOIN b ON a.k = b.k ORDER BY w DESC LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][1] < res.Rows[1][1] {
		t.Fatalf("not descending: %v", res.Rows)
	}
	full, err := Run(cat, "SELECT a.v, w FROM a JOIN b ON a.k = b.k ORDER BY w DESC")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Rows, full.Rows[:2]) {
		t.Fatalf("top-k diverges from full sort: %v vs %v", res.Rows, full.Rows[:2])
	}
	// LIMIT 0 still returns the header with no rows.
	zero, err := Run(cat, "SELECT a.v FROM a JOIN b ON a.k = b.k LIMIT 0")
	if err != nil {
		t.Fatal(err)
	}
	if len(zero.Rows) != 0 || len(zero.Columns) != 1 {
		t.Fatalf("limit 0 = %+v", zero)
	}
}

// TestJoinParallelEquivalence checks the SQL join is byte-identical at
// every parallelism, riding HashJoinPar's determinism.
func TestJoinParallelEquivalence(t *testing.T) {
	const n = 40000
	src := xrand.New(7)
	a := table.New("a", "k")
	b := table.New("b", "k")
	av := make([]int64, n)
	bv := make([]int64, n/4)
	for i := range av {
		av[i] = src.Int63n(1 << 12)
	}
	for i := range bv {
		bv[i] = src.Int63n(1 << 12)
	}
	if _, err := a.AppendSingleColumn(av); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AppendSingleColumn(bv); err != nil {
		t.Fatal(err)
	}
	cat := tableCatalog(a, b)
	const q = "SELECT a.k, b.k FROM a JOIN b ON a.k = b.k WHERE a.k < 512 LIMIT 10000"
	serial, err := RunOpts(cat, q, Opts{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 4} {
		got, err := RunOpts(cat, q, Opts{Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial.Rows, got.Rows) {
			t.Fatalf("par=%d join rows diverge from serial", par)
		}
	}
}

// TestJoinValidation pins the executor-level join checks: ambiguous and
// unknown projections, WHERE off the join key, aggregates and star.
func TestJoinValidation(t *testing.T) {
	_, _, cat := joinFixture(t)
	for _, bad := range []string{
		"SELECT k FROM a JOIN b ON a.k = b.k",                 // ambiguous
		"SELECT a.zz FROM a JOIN b ON a.k = b.k",              // unknown column
		"SELECT c.v FROM a JOIN b ON a.k = b.k",               // unknown qualifier
		"SELECT a.v FROM a JOIN b ON a.v = b.w WHERE a.k > 1", // WHERE not the key
		"SELECT a.v FROM a JOIN b ON a.k = b.k WHERE v > 1",   // WHERE not the key (unqualified)
		"SELECT COUNT(*) FROM a JOIN b ON a.k = b.k",          // aggregate over join
		"SELECT * FROM a JOIN b ON a.k = b.k",                 // star over join
		"SELECT a.v FROM a JOIN b ON a.k = b.k ORDER BY c.w",  // unknown order qualifier
		"SELECT a.v FROM a JOIN b ON a.zz = b.k",              // unknown join key
	} {
		_, err := Run(cat, bad)
		if !errors.Is(err, ErrInvalid) {
			t.Fatalf("Run(%q) error %v, want ErrInvalid", bad, err)
		}
	}
}
