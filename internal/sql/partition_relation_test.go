package sql

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"slices"
	"testing"

	"amnesiadb/internal/expr"
	"amnesiadb/internal/partition"
	"amnesiadb/internal/xrand"
)

// partFixture builds a partitioned set over [0, 1000) with a catalog
// entry named "p".
func partFixture(t *testing.T, shards int) (*partition.Set, Catalog) {
	t.Helper()
	set, err := partition.New("v", 1000, shards, "uniform", 1000, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]int64, 600)
	src := xrand.New(9)
	for i := range vals {
		vals[i] = src.Int63n(1000)
	}
	if err := set.Insert(vals); err != nil {
		t.Fatal(err)
	}
	cat := CatalogFunc(func(name string) (Relation, error) {
		if name != "p" {
			return nil, errors.New("unknown")
		}
		return NewPartitionRelation(set), nil
	})
	return set, cat
}

// TestPartitionedSelectMatchesSet pins SQL over a partitioned relation
// against the set's direct Select: identical values in identical order.
func TestPartitionedSelectMatchesSet(t *testing.T) {
	set, cat := partFixture(t, 4)
	want, err := set.Select(100, 700)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cat, "SELECT v FROM p WHERE v >= 100 AND v < 700")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(want))
	}
	for i, w := range want {
		if res.Rows[i][0] != float64(w) {
			t.Fatalf("row %d = %v, want %d", i, res.Rows[i][0], w)
		}
	}
	// SELECT * projects the single column too.
	star, err := Run(cat, "SELECT * FROM p WHERE v >= 100 AND v < 700")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Rows, star.Rows) {
		t.Fatal("star projection diverges")
	}
}

// TestPartitionedAggregatesAndOrder pins aggregates, ORDER BY and LIMIT
// over the partitioned relation against first principles.
func TestPartitionedAggregatesAndOrder(t *testing.T) {
	set, cat := partFixture(t, 8)
	all, err := set.Select(0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, v := range all {
		sum += v
	}
	cases := map[string]float64{
		"SELECT COUNT(*) FROM p": float64(len(all)),
		"SELECT SUM(v) FROM p":   float64(sum),
		"SELECT AVG(v) FROM p":   float64(sum) / float64(len(all)),
	}
	for src, want := range cases {
		res, err := Run(cat, src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if math.Abs(res.Rows[0][0]-want) > 1e-9 {
			t.Fatalf("%s = %v, want %v", src, res.Rows[0][0], want)
		}
	}
	res, err := Run(cat, "SELECT v FROM p ORDER BY v DESC LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 || res.Rows[0][0] < res.Rows[1][0] || res.Rows[1][0] < res.Rows[2][0] {
		t.Fatalf("ordered rows = %v", res.Rows)
	}
	// Empty qualifying set: NULL-style aggregate, zero COUNT.
	null, err := Run(cat, "SELECT MAX(v) FROM p WHERE v > 5000")
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(null.Rows[0][0]) {
		t.Fatalf("empty MAX = %v, want NaN", null.Rows[0][0])
	}
	// Unknown column is bad SQL, not an internal error.
	if _, err := Run(cat, "SELECT zz FROM p"); !errors.Is(err, ErrInvalid) {
		t.Fatalf("unknown column error = %v", err)
	}
}

// TestStreamChunking pins the ResultStream contract: a large result
// arrives in multiple chunks whose concatenation equals Collect, and a
// LIMIT cuts across chunk boundaries.
func TestStreamChunking(t *testing.T) {
	n := 3*StreamChunkRows + 123
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i)
	}
	cat := catalog(t, vals...)
	st, err := RunStream(cat, "SELECT a FROM t", Opts{})
	if err != nil {
		t.Fatal(err)
	}
	chunks, total := 0, 0
	for {
		rows, err := st.Next()
		if err != nil {
			t.Fatal(err)
		}
		if rows == nil {
			break
		}
		if len(rows) > StreamChunkRows {
			t.Fatalf("chunk of %d rows exceeds StreamChunkRows", len(rows))
		}
		chunks++
		total += len(rows)
	}
	if chunks < 4 || total != n {
		t.Fatalf("chunks = %d, rows = %d, want >= 4 chunks of %d total", chunks, total, n)
	}
	// LIMIT falling mid-chunk.
	lim := StreamChunkRows + 7
	res, err := RunOpts(cat, fmt.Sprintf("SELECT a FROM t LIMIT %d", lim), Opts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != lim {
		t.Fatalf("limit rows = %d, want %d", len(res.Rows), lim)
	}
	for i := range res.Rows {
		if res.Rows[i][0] != float64(i) {
			t.Fatalf("row %d = %v", i, res.Rows[i])
		}
	}
}

// TestPartitionedStreamMatchesScanChunks pins the pipelined shard
// fan-out: concatenating ScanChunkStream's chunks must reproduce
// ScanChunks (and with it the set's Select) exactly — shard order,
// value order, every shard.
func TestPartitionedStreamMatchesScanChunks(t *testing.T) {
	set, _ := partFixture(t, 8)
	pred := expr.NewRange(50, 900)
	chunks, err := set.ScanChunks(pred)
	if err != nil {
		t.Fatal(err)
	}
	var want []int64
	for _, c := range chunks {
		want = append(want, c.Values...)
	}
	st, err := set.ScanChunkStream(context.Background(), pred)
	if err != nil {
		t.Fatal(err)
	}
	var got []int64
	for {
		c, ok, err := st.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, c.Values...)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("streamed fan-out = %d values, want %d (order or content diverged)", len(got), len(want))
	}
	if len(want) == 0 {
		t.Fatal("degenerate case: empty fan-out")
	}
}

// TestClusteredOrderByMatchesGlobalSort pins the shard-merge ORDER BY:
// per-shard sorts emitted in (reverse) shard order must equal the
// global stable sort of the whole fan-out, across directions, limits
// and parallelism.
func TestClusteredOrderByMatchesGlobalSort(t *testing.T) {
	set, cat := partFixture(t, 8)
	// The reference order is computed directly: sort the unordered scan.
	base, err := set.Select(0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	asc := append([]int64(nil), base...)
	slices.Sort(asc)
	desc := make([]int64, len(asc))
	for i, v := range asc {
		desc[len(asc)-1-i] = v
	}
	cases := []struct {
		q    string
		want []int64
	}{
		{"SELECT v FROM p ORDER BY v", asc},
		{"SELECT v FROM p ORDER BY v DESC", desc},
		{"SELECT v FROM p ORDER BY v LIMIT 7", asc[:7]},
		{"SELECT v FROM p ORDER BY v DESC LIMIT 7", desc[:7]},
		{"SELECT v, v FROM p ORDER BY v LIMIT 3", asc[:3]},
		{"SELECT v FROM p WHERE v >= 1000 ORDER BY v", nil},
		{"SELECT v FROM p ORDER BY v LIMIT 0", nil},
	}
	for _, tc := range cases {
		for _, par := range []int{1, 4} {
			res, err := RunOpts(cat, tc.q, Opts{Parallelism: par})
			if err != nil {
				t.Fatalf("%s: %v", tc.q, err)
			}
			if len(res.Rows) != len(tc.want) {
				t.Fatalf("%s par=%d: %d rows, want %d", tc.q, par, len(res.Rows), len(tc.want))
			}
			for i, row := range res.Rows {
				for _, cell := range row {
					if cell != float64(tc.want[i]) {
						t.Fatalf("%s par=%d: row %d = %v, want %d", tc.q, par, i, row, tc.want[i])
					}
				}
			}
		}
	}
}
