// Package sql implements a small SQL front-end for the query subspace the
// paper carves out (§2.2): SELECT with projection or one of the
// aggregates COUNT/SUM/AVG/MIN/MAX, WHERE clauses built from integer
// comparisons combined with AND/OR/NOT, and two-table equi-joins with
// qualified column projection. It exists so the examples and the shell
// can talk to amnesiadb the way the paper's prose does:
//
//	SELECT AVG(a) FROM t
//	SELECT a FROM t WHERE a >= 10 AND a < 20
//	SELECT COUNT(*) FROM t WHERE NOT (a = 5 OR a > 100)
//	SELECT a.v, b.v FROM a JOIN b ON a.k = b.k WHERE a.k < 100
//
// Queries execute against a Catalog of Relations — flat tables and
// partitioned sets alike — and results come back as a chunked
// ResultStream whose Collect gives the one-shot form.
package sql

import (
	"errors"
	"fmt"
	"strings"
	"unicode"
)

// ErrInvalid is wrapped by every lexer, parser and validation error, so
// callers (notably the HTTP server's status mapping) can distinguish a
// bad query from an internal failure with errors.Is.
var ErrInvalid = errors.New("sql: invalid query")

// tokenKind classifies lexer output.
type tokenKind int

const (
	tkEOF tokenKind = iota
	tkIdent
	tkNumber
	tkSymbol  // ( ) , * .
	tkOp      // = <> < <= > >=
	tkKeyword // SELECT FROM WHERE AND OR NOT + aggregate names
)

// token is one lexical unit.
type token struct {
	kind tokenKind
	text string // keywords upper-cased, identifiers as written
	pos  int    // byte offset, for error messages
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true,
	"AND": true, "OR": true, "NOT": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"LIMIT": true, "ORDER": true, "BY": true, "ASC": true, "DESC": true,
	"JOIN": true, "ON": true,
}

// lex tokenises the input or returns a positioned error.
func lex(input string) ([]token, error) {
	var out []token
	i := 0
	for i < len(input) {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(' || c == ')' || c == ',' || c == '*' || c == '.':
			out = append(out, token{kind: tkSymbol, text: string(c), pos: i})
			i++
		case c == '=':
			out = append(out, token{kind: tkOp, text: "=", pos: i})
			i++
		case c == '<':
			switch {
			case i+1 < len(input) && input[i+1] == '=':
				out = append(out, token{kind: tkOp, text: "<=", pos: i})
				i += 2
			case i+1 < len(input) && input[i+1] == '>':
				out = append(out, token{kind: tkOp, text: "<>", pos: i})
				i += 2
			default:
				out = append(out, token{kind: tkOp, text: "<", pos: i})
				i++
			}
		case c == '>':
			if i+1 < len(input) && input[i+1] == '=' {
				out = append(out, token{kind: tkOp, text: ">=", pos: i})
				i += 2
			} else {
				out = append(out, token{kind: tkOp, text: ">", pos: i})
				i++
			}
		case c == '!' && i+1 < len(input) && input[i+1] == '=':
			out = append(out, token{kind: tkOp, text: "<>", pos: i})
			i += 2
		case c == '-' || c >= '0' && c <= '9':
			start := i
			i++
			for i < len(input) && input[i] >= '0' && input[i] <= '9' {
				i++
			}
			if input[start] == '-' && i == start+1 {
				return nil, fmt.Errorf("%w: stray '-' at offset %d", ErrInvalid, start)
			}
			out = append(out, token{kind: tkNumber, text: input[start:i], pos: start})
		case isIdentStart(rune(c)):
			start := i
			for i < len(input) && isIdentPart(rune(input[i])) {
				i++
			}
			word := input[start:i]
			if up := strings.ToUpper(word); keywords[up] {
				out = append(out, token{kind: tkKeyword, text: up, pos: start})
			} else {
				out = append(out, token{kind: tkIdent, text: word, pos: start})
			}
		default:
			return nil, fmt.Errorf("%w: unexpected character %q at offset %d", ErrInvalid, c, i)
		}
	}
	out = append(out, token{kind: tkEOF, pos: len(input)})
	return out, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
