package sql

import (
	"testing"

	"amnesiadb/internal/table"
)

// FuzzParse checks the parser never panics and that accepted statements
// execute without panicking against a small catalog of joinable tables.
// Run the seeds with plain `go test`; extend with
// `go test -fuzz=FuzzParse ./internal/sql`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT a FROM t",
		"SELECT * FROM t WHERE a >= 1 AND a < 10",
		"SELECT AVG(a) FROM t WHERE NOT (a = 5 OR a > 100) LIMIT 3",
		"SELECT COUNT(*) FROM t",
		"select min(a) from t where a <> -9223372036854775808",
		"SELECT a, a FROM t LIMIT 0",
		"SELECT",
		"((((",
		"SELECT a FROM t WHERE a > 99999999999999999999999999",
		"\x00\x01\x02",
		// Qualified-column and JOIN grammar.
		"SELECT t.a FROM t WHERE t.a < 4 ORDER BY t.a DESC",
		"SELECT a.v, b.v FROM a JOIN b ON a.k = b.k",
		"SELECT a.v FROM a JOIN b ON b.k = a.k WHERE a.k > 2 ORDER BY b.v LIMIT 3",
		"SELECT v FROM a JOIN b ON a.k = b.k",
		"SELECT a.v FROM a JOIN b ON a.k = c.k",
		"SELECT a.v FROM a JOIN b ON k = b.k",
		"SELECT * FROM a JOIN b ON a.k = b.k",
		"SELECT COUNT(*) FROM a JOIN b ON a.k = b.k",
		"SELECT x.y.z FROM t",
		"SELECT a. FROM t",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	tb := table.New("t", "a")
	if _, err := tb.AppendSingleColumn([]int64{1, 2, 3, 4, 5}); err != nil {
		f.Fatal(err)
	}
	mk := func(name string) *table.Table {
		jt := table.New(name, "k", "v")
		if _, err := jt.AppendBatch(map[string][]int64{"k": {1, 2, 3}, "v": {10, 20, 30}}); err != nil {
			f.Fatal(err)
		}
		return jt
	}
	ta, tbJoin := mk("a"), mk("b")
	cat := CatalogFunc(func(name string) (Relation, error) {
		switch name {
		case "a":
			return NewTableRelation(ta), nil
		case "b":
			return NewTableRelation(tbJoin), nil
		default:
			return NewTableRelation(tb), nil
		}
	})
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input)
		if err != nil {
			return // rejection is fine; panicking is not
		}
		// Accepted statements must execute cleanly (any error, no panic).
		_, _ = Exec(cat, q)
	})
}
