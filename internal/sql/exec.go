package sql

import (
	"fmt"
	"sort"

	"amnesiadb/internal/engine"
	"amnesiadb/internal/expr"
	"amnesiadb/internal/table"
)

// Result is the tabular output of Run.
type Result struct {
	// Columns are the output column headers.
	Columns []string
	// Rows holds one slice per result row, aligned with Columns.
	// Aggregate results have exactly one row.
	Rows [][]float64
	// Ints is true per column when values are exact integers (projection
	// columns, COUNT/SUM/MIN/MAX); AVG reports a float.
	Ints []bool
}

// Catalog resolves table names; the amnesiadb facade and the tests both
// satisfy it.
type Catalog interface {
	// LookupTable returns the named table or an error.
	LookupTable(name string) (*table.Table, error)
}

// CatalogFunc adapts a function to Catalog.
type CatalogFunc func(name string) (*table.Table, error)

// LookupTable implements Catalog.
func (f CatalogFunc) LookupTable(name string) (*table.Table, error) { return f(name) }

// Opts tunes query execution.
type Opts struct {
	// Parallelism is the engine's intra-query parallelism knob: 0 auto
	// (morsel-parallel scans for large tables), 1 serial, n > 1 forces
	// n workers. See engine.Exec.SetParallelism.
	Parallelism int
}

// Run parses and executes one SELECT against the catalog, querying active
// tuples only (the amnesiac view).
func Run(cat Catalog, query string) (*Result, error) {
	return RunOpts(cat, query, Opts{})
}

// RunOpts is Run with execution options.
func RunOpts(cat Catalog, query string, o Opts) (*Result, error) {
	q, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return ExecOpts(cat, q, o)
}

// Exec executes a parsed query with default options.
func Exec(cat Catalog, q *Query) (*Result, error) {
	return ExecOpts(cat, q, Opts{})
}

// ExecOpts executes a parsed query.
func ExecOpts(cat Catalog, q *Query, o Opts) (*Result, error) {
	t, err := cat.LookupTable(q.Table)
	if err != nil {
		return nil, err
	}
	ex := engine.New(t)
	ex.SetParallelism(o.Parallelism)
	pred := q.Where
	if pred == nil {
		pred = expr.True{}
	}

	if q.Aggregate != nil {
		return execAggregate(t, ex, q, pred)
	}

	cols := q.Columns
	if q.Star {
		cols = t.Columns()
	}
	for _, c := range cols {
		if _, err := t.Column(c); err != nil {
			return nil, err
		}
	}
	// The predicate runs over WhereCol (or the first projected column
	// for predicate-free queries).
	scanCol := q.WhereCol
	if scanCol == "" {
		scanCol = cols[0]
	}
	sel, err := ex.Select(scanCol, pred, engine.ScanActive)
	if err != nil {
		return nil, err
	}
	rows := sel.Rows
	if q.OrderBy != "" {
		oc, err := t.Column(q.OrderBy)
		if err != nil {
			return nil, err
		}
		// Gather the sort keys once so the comparator works over a flat
		// slice instead of re-reading the column per comparison.
		keys := oc.Gather(rows, nil)
		perm := make([]int, len(rows))
		for i := range perm {
			perm[i] = i
		}
		sort.SliceStable(perm, func(i, j int) bool {
			if q.OrderDesc {
				return keys[perm[i]] > keys[perm[j]]
			}
			return keys[perm[i]] < keys[perm[j]]
		})
		ordered := make([]int32, len(rows))
		for i, p := range perm {
			ordered[i] = rows[p]
		}
		rows = ordered
	}
	if q.Limit > 0 && len(rows) > q.Limit {
		rows = rows[:q.Limit]
	}
	res := &Result{Columns: cols, Ints: make([]bool, len(cols))}
	for i := range res.Ints {
		res.Ints[i] = true
	}
	if len(rows) == 0 {
		return res, nil
	}
	// Materialize column-at-a-time: one Gather per projected column over
	// the post-limit selection vector, then transpose into output rows.
	res.Rows = make([][]float64, len(rows))
	for i := range res.Rows {
		res.Rows[i] = make([]float64, len(cols))
	}
	var vals []int64
	for ci, cn := range cols {
		vals = t.MustColumn(cn).Gather(rows, vals)
		for ri, v := range vals {
			res.Rows[ri][ci] = float64(v)
		}
	}
	return res, nil
}

func execAggregate(t *table.Table, ex *engine.Exec, q *Query, pred expr.Expr) (*Result, error) {
	kind := *q.Aggregate
	col := q.AggregateCol
	if col == "*" {
		// COUNT(*): count over the predicate column, or any column for
		// predicate-free counting.
		col = q.WhereCol
		if col == "" {
			col = t.Columns()[0]
		}
	} else if _, err := t.Column(col); err != nil {
		return nil, err
	}
	if q.WhereCol != "" && q.AggregateCol != "*" && q.WhereCol != q.AggregateCol {
		return nil, fmt.Errorf("sql: aggregate column %q must match WHERE column %q in the single-attribute subspace", q.AggregateCol, q.WhereCol)
	}
	header := fmt.Sprintf("%s(%s)", kind, q.AggregateCol)
	agg, err := ex.Aggregate(col, pred, engine.ScanActive)
	if err == engine.ErrNoRows {
		if kind == engine.Count {
			return &Result{Columns: []string{header}, Rows: [][]float64{{0}}, Ints: []bool{true}}, nil
		}
		return nil, err
	}
	if err != nil {
		return nil, err
	}
	return &Result{
		Columns: []string{header},
		Rows:    [][]float64{{agg.Value(kind)}},
		Ints:    []bool{kind != engine.Avg},
	}, nil
}
