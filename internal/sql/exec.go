package sql

import (
	"context"
	"errors"
	"fmt"
	"math"
	"slices"
	"time"

	"amnesiadb/internal/engine"
	"amnesiadb/internal/engine/governor"
	"amnesiadb/internal/engine/sched"
	"amnesiadb/internal/expr"
)

// Result is the materialized tabular output of Run — ResultStream's
// Collect form, kept for tests and one-shot callers.
type Result struct {
	// Columns are the output column headers.
	Columns []string
	// Rows holds one slice per result row, aligned with Columns.
	// Aggregate results have exactly one row. A NaN cell is the
	// NULL-style value a non-COUNT aggregate reports over an empty
	// qualifying set.
	Rows [][]float64
	// Ints is true per column when values are exact integers (projection
	// columns, COUNT/SUM/MIN/MAX); AVG reports a float.
	Ints []bool
}

// Opts tunes query execution.
type Opts struct {
	// Parallelism is the engine's intra-query parallelism knob: 0 auto
	// (morsel-parallel scans, sorts and joins for large inputs),
	// 1 serial, n > 1 forces n workers. See engine.Exec.SetParallelism.
	Parallelism int
	// Ctx, when non-nil, scopes the query's producers: cancelling it
	// tears down in-flight morsel workers, shard fan-outs and join
	// collections mid-scan. The HTTP server threads the request context
	// through here so a disconnected client stops paying for its query.
	Ctx context.Context
	// Sched, when non-nil, dispatches the query's parallel work — sort
	// runs and join phases — through a shared worker pool; relation
	// scans use the scheduler stamped on the relation itself. A forced
	// Parallelism above the pool width is clamped to it.
	Sched *sched.Pool
	// Quota, when non-nil, is the query's resource account: every
	// pooled chunk the pipeline keeps in flight, join build table and
	// sort permutation charges it, and exhausting it cancels this query
	// alone with governor.ErrResourceExhausted. The quota rides the
	// execution context, so it reaches scans, joins and sorts without
	// further plumbing. Lifecycle (registration with a process
	// Governor, removal at stream end) is the caller's.
	Quota *governor.Quota
	// MaxDuration, when positive, is the query's deadline: execution is
	// wrapped in a timeout context whose cancellation cause is
	// governor.ErrDeadlineExceeded, and the same deadline is stamped on
	// Quota so morsel-boundary checks fire even between channel waits.
	MaxDuration time.Duration
	// StallDetach, when positive, arms spill-on-stall on streaming
	// value-only selects: a consumer idle past this threshold has the
	// pipeline's remaining chunks drained to a governed heap buffer so
	// the producers exit and relation read locks release, with the tail
	// served from the buffer byte-identically.
	StallDetach time.Duration
}

// context resolves the optional Ctx.
func (o Opts) context() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	//lint:ignore ctxflow Opts.Ctx is optional by contract; this is the one sanctioned fallback root for ctx-less callers.
	return context.Background()
}

// Run parses and executes one SELECT against the catalog, querying active
// tuples only (the amnesiac view), and materializes the full result.
func Run(cat Catalog, query string) (*Result, error) {
	return RunOpts(cat, query, Opts{})
}

// RunOpts is Run with execution options.
func RunOpts(cat Catalog, query string, o Opts) (*Result, error) {
	st, err := RunStream(cat, query, o)
	if err != nil {
		return nil, err
	}
	return st.Collect()
}

// RunStream parses and executes one SELECT, returning the chunked
// result stream instead of a materialized Result.
func RunStream(cat Catalog, query string, o Opts) (*ResultStream, error) {
	q, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return ExecStream(cat, q, o)
}

// Exec executes a parsed query with default options.
func Exec(cat Catalog, q *Query) (*Result, error) {
	return ExecOpts(cat, q, Opts{})
}

// ExecOpts executes a parsed query and materializes the result.
func ExecOpts(cat Catalog, q *Query, o Opts) (*Result, error) {
	st, err := ExecStream(cat, q, o)
	if err != nil {
		return nil, err
	}
	return st.Collect()
}

// badQuery wraps a semantic validation failure (unknown column,
// cross-column aggregate, unsupported join shape) so it maps to "bad
// SQL" rather than an internal error.
func badQuery(err error) error { return fmt.Errorf("%w: %v", ErrInvalid, err) }

func badQueryf(format string, args ...any) error {
	return badQuery(fmt.Errorf(format, args...))
}

// ExecStream executes a parsed query. Validation — catalog lookups,
// column resolution, join-shape checks — happens before the stream is
// returned, so an error here is a rejected query; errors from the
// stream's Next are mid-flight execution failures.
func ExecStream(cat Catalog, q *Query, o Opts) (*ResultStream, error) {
	o, cancel := o.arm()
	st, err := execStream(cat, q, o)
	if err != nil {
		if cancel != nil {
			cancel()
		}
		return nil, err
	}
	if cancel != nil {
		st.addCleanup(cancel)
	}
	return st, nil
}

// arm applies the governance knobs: the quota is threaded into the
// execution context, and a MaxDuration wraps it in a timeout whose
// cancellation cause is the typed deadline error. The returned cancel
// (nil when no deadline) releases the timer; ExecStream hooks it into
// the stream's cleanup.
func (o Opts) arm() (Opts, context.CancelFunc) {
	if o.Quota == nil && o.MaxDuration <= 0 {
		return o, nil
	}
	ctx := o.context()
	if o.Quota != nil {
		ctx = governor.WithQuota(ctx, o.Quota)
	}
	var cancel context.CancelFunc
	if o.MaxDuration > 0 {
		// Stamp the quota too: the morsel-boundary Check fires even on
		// compute-bound stretches between channel operations, keeping
		// cancellation prompt.
		o.Quota.SetDeadline(time.Now().Add(o.MaxDuration))
		ctx, cancel = context.WithTimeoutCause(ctx, o.MaxDuration, governor.ErrDeadlineExceeded)
	}
	o.Ctx = ctx
	return o, cancel
}

func execStream(cat Catalog, q *Query, o Opts) (*ResultStream, error) {
	if q.Join != nil {
		return execJoinStream(cat, q, o)
	}
	rel, err := cat.Lookup(q.Table)
	if err != nil {
		return nil, err
	}
	if q.Aggregate != nil {
		return execAggregateStream(rel, q, o)
	}
	return execSelectStream(rel, q, o)
}

// hasColumn reports whether the relation projects the named column.
func hasColumn(rel Relation, name string) bool {
	for _, c := range rel.Columns() {
		if c == name {
			return true
		}
	}
	return false
}

// resolveRef validates a column reference against a single-table query:
// the qualifier, when present, must name the queried table, and the
// column must exist.
func resolveRef(rel Relation, tableName string, ref ColRef) (string, error) {
	if ref.Table != "" && ref.Table != tableName {
		return "", badQueryf("unknown table qualifier %q in %q", ref.Table, ref)
	}
	if !hasColumn(rel, ref.Name) {
		return "", badQueryf("relation %q has no column %q", tableName, ref.Name)
	}
	return ref.Name, nil
}

// queryLimit resolves the LIMIT clause: -1 means unlimited.
func queryLimit(q *Query) int {
	if q.HasLimit {
		return q.Limit
	}
	return -1
}

// execSelectStream streams a single-relation projection as a true
// pipeline: the engine's morsel workers (or the partition layer's shard
// fan-out) push scan chunks into a bounded channel while they are still
// scanning, and Next projects whatever has arrived — so the first rows
// reach the server after the first morsel, not the full scan, with
// backpressure from a slow consumer halting the producers. ORDER BY is
// the one barrier — the qualifying set materializes for the sort —
// except over clustered (partitioned) relations, where ascending sorts
// stream shard by shard through per-shard sorts.
func execSelectStream(rel Relation, q *Query, o Opts) (*ResultStream, error) {
	var cols []string    // plain column names to project
	var headers []string // output headers as written
	if q.Star {
		cols = rel.Columns()
		headers = cols
	} else {
		for _, ref := range q.Columns {
			name, err := resolveRef(rel, q.Table, ref)
			if err != nil {
				return nil, err
			}
			cols = append(cols, name)
			headers = append(headers, ref.String())
		}
	}
	pred := q.Where
	if pred == nil {
		pred = expr.True{}
	}
	// The predicate runs over WhereCol (or the first projected column
	// for predicate-free queries).
	scanCol := cols[0]
	if q.WhereCol.Name != "" {
		name, err := resolveRef(rel, q.Table, q.WhereCol)
		if err != nil {
			return nil, err
		}
		scanCol = name
	}
	orderCol := ""
	if q.OrderBy.Name != "" {
		name, err := resolveRef(rel, q.Table, q.OrderBy)
		if err != nil {
			return nil, err
		}
		orderCol = name
	}
	ints := make([]bool, len(cols))
	for i := range ints {
		ints[i] = true
	}
	limit := queryLimit(q)
	if limit == 0 {
		// LIMIT 0 asks for zero rows; skip the scan (every referenced
		// column is validated above, so an invalid query still errors).
		return emptyStream(headers, ints), nil
	}
	// A value-only projection (every output column is the scan column —
	// notably every partitioned-table select) never reads relation
	// storage after the scan side completes: the stream advertises the
	// pipeline's scan-completion signal so catalog holders can release
	// their locks as soon as the producers finish, even while a slow
	// consumer is still draining.
	valueOnly := true
	for _, c := range cols {
		if c != scanCol {
			valueOnly = false
			break
		}
	}
	cs, err := rel.ScanChunkStream(o.context(), scanCol, pred, o.Parallelism)
	if err != nil {
		return nil, err
	}
	if orderCol != "" {
		if rel.Clustered() && orderCol == scanCol && valueOnly {
			if !q.OrderDesc && o.StallDetach > 0 {
				// The ascending clustered sort streams shard by shard and
				// releases locks at scan completion — the same stall
				// exposure as the unordered pipeline, same remedy.
				cs.DetachOnStall(o.StallDetach)
			}
			return clusteredOrderedStream(o.context(), headers, ints, len(cols), cs, q.OrderDesc, limit, o.Parallelism, o.Sched)
		}
		// The sort is a barrier: drain the pipeline, then sort.
		chunks, err := cs.Collect()
		if err != nil {
			return nil, err
		}
		return orderedSelectStream(o.context(), rel, headers, ints, cols, scanCol, orderCol, chunks, q.OrderDesc, limit, o.Parallelism, o.Sched, valueOnly)
	}

	// Unordered pipelined path: pull chunks off the bounded channel as
	// the producers emit them, assembling up to StreamChunkRows projected
	// rows per Next and counting the LIMIT down across chunks.
	if valueOnly && o.StallDetach > 0 {
		// Spill-on-stall applies exactly where early lock release does:
		// a value-only stream whose locks drop at ScanDone. Lazily
		// projecting streams must pin their relations until Close
		// regardless, so detaching their scan would buy nothing.
		cs.DetachOnStall(o.StallDetach)
	}
	cursor := &chunkCursor{cs: cs, rem: limit,
		emit: func(out [][]float64, c engine.SelChunk, off, end int) ([][]float64, error) {
			// Relations without global positions (partitioned sets)
			// carry nil Rows; they project by value only.
			var span []int32
			if c.Rows != nil {
				span = c.Rows[off:end]
			}
			return projectSpan(rel, cols, scanCol, span, c.Values[off:end], out)
		},
	}
	st := NewResultStream(headers, ints, cursor.next)
	st.closeFn = cs.Close
	st.scanDone = cs.ScanDone()
	st.earlyRelease = valueOnly
	return st, nil
}

// chunkCursor walks a pipelined chunk stream window by window: it pulls
// chunks as the producers emit them, assembles up to StreamChunkRows
// output rows per next call through emit, counts the LIMIT down across
// chunks, closes the producers the moment the LIMIT is satisfied
// (cancelling still-running scans), and returns fully consumed chunks
// to the engine's batch pool. Both pipelined select paths — unordered
// projection and the clustered per-shard sort — drive this one state
// machine, so the LIMIT/teardown/recycle interplay cannot drift between
// them.
type chunkCursor struct {
	cs *engine.ChunkStream
	// onChunk, when set, hooks each chunk as it arrives (the clustered
	// path sorts shard values in place).
	onChunk func(c engine.SelChunk)
	// emit appends rows for c's [off, end) span to out.
	emit func(out [][]float64, c engine.SelChunk, off, end int) ([][]float64, error)

	cur     engine.SelChunk
	off     int
	rem     int // LIMIT countdown; -1 = unlimited
	drained bool
}

func (k *chunkCursor) next() ([][]float64, error) {
	if k.drained {
		return nil, nil
	}
	var out [][]float64
	for len(out) < StreamChunkRows && k.rem != 0 {
		if k.off >= len(k.cur.Values) {
			engine.RecycleChunk(k.cur)
			k.cur, k.off = engine.SelChunk{}, 0
			c, ok, err := k.cs.Next()
			if err != nil {
				k.drained = true
				return nil, err
			}
			if !ok {
				k.drained = true
				break
			}
			if k.onChunk != nil {
				k.onChunk(c)
			}
			k.cur = c
			continue
		}
		take := len(k.cur.Values) - k.off
		if n := StreamChunkRows - len(out); take > n {
			take = n
		}
		if k.rem > 0 && take > k.rem {
			take = k.rem
		}
		var err error
		out, err = k.emit(out, k.cur, k.off, k.off+take)
		if err != nil {
			k.drained = true
			k.cs.Close()
			return nil, err
		}
		k.off += take
		if k.rem > 0 {
			k.rem -= take
		}
	}
	if k.rem == 0 && !k.drained {
		// LIMIT satisfied: stop the producers; the stream ends here.
		k.drained = true
		engine.RecycleChunk(k.cur)
		k.cs.Close()
	}
	return out, nil
}

// clusteredOrderedStream serves ORDER BY over a clustered relation: the
// fan-out's chunks arrive one per shard, in ascending shard order, and
// shard value ranges are disjoint — so sorting each shard independently
// and emitting shards in order (reverse order for DESC) reproduces the
// global stable sort exactly, without ever sorting the concatenation.
// Ascending sorts stream: the first shard's sorted rows flush while
// later shards are still scanning, so even ORDER BY has morsel-level
// time-to-first-chunk. Descending needs the last shard first, so it
// drains the fan-out, sorts the shards in parallel, and streams the
// buffered output in reverse. Clustered relations are value-only (one
// stored attribute), so every output cell is the sort key itself.
func clusteredOrderedStream(ctx context.Context, headers []string, ints []bool, ncols int, cs *engine.ChunkStream, desc bool, limit, par int, sp *sched.Pool) (*ResultStream, error) {
	emit := func(out [][]float64, v int64) [][]float64 {
		row := make([]float64, ncols)
		for i := range row {
			row[i] = float64(v)
		}
		return append(out, row)
	}
	if !desc {
		cursor := &chunkCursor{cs: cs, rem: limit,
			onChunk: func(c engine.SelChunk) { slices.Sort(c.Values) },
			emit: func(out [][]float64, c engine.SelChunk, off, end int) ([][]float64, error) {
				for _, v := range c.Values[off:end] {
					out = emit(out, v)
				}
				return out, nil
			},
		}
		st := NewResultStream(headers, ints, cursor.next)
		st.closeFn = cs.Close
		st.scanDone = cs.ScanDone()
		st.earlyRelease = true
		return st, nil
	}

	// DESC: barrier on the fan-out, per-shard sorts in parallel, then
	// stream shards in reverse, each walked back to front.
	chunks, err := cs.Collect()
	if err != nil {
		return nil, err
	}
	total := 0
	for _, c := range chunks {
		total += len(c.Values)
	}
	if err := engine.ForEachTaskCtx(ctx, sp, engine.WorkersSched(sp, par, total), len(chunks), func(i int) {
		slices.Sort(chunks[i].Values)
	}); err != nil {
		for _, c := range chunks {
			engine.RecycleChunk(c)
		}
		return nil, err
	}
	si := len(chunks) - 1
	off, rem := 0, limit
	next := func() ([][]float64, error) {
		var out [][]float64
		for len(out) < StreamChunkRows && rem != 0 && si >= 0 {
			vals := chunks[si].Values
			if off >= len(vals) {
				si, off = si-1, 0
				continue
			}
			out = emit(out, vals[len(vals)-1-off])
			off++
			if rem > 0 {
				rem--
			}
		}
		return out, nil
	}
	st := NewResultStream(headers, ints, next)
	st.Detached = true
	return st, nil
}

// orderedSelectStream sorts the qualifying set and streams the sorted
// projection window by window.
func orderedSelectStream(ctx context.Context, rel Relation, headers []string, ints []bool, cols []string, scanCol, orderCol string, chunks []engine.SelChunk, desc bool, limit, par int, sp *sched.Pool, valueOnly bool) (*ResultStream, error) {
	total := 0
	for _, c := range chunks {
		total += len(c.Values)
	}
	rows := make([]int32, 0, total)
	vals := make([]int64, 0, total)
	for _, c := range chunks {
		rows = append(rows, c.Rows...)
		vals = append(vals, c.Values...)
		engine.RecycleChunk(c)
	}
	// Relations without global positions (partitioned sets) carry nil
	// chunk Rows; their single column projects — and sorts — by value.
	hasRows := len(rows) == total
	keys := vals
	if orderCol != scanCol {
		if !hasRows {
			return nil, badQueryf("relation has no column %q to order by", orderCol)
		}
		var err error
		keys, err = rel.Gather(orderCol, rows, nil)
		if err != nil {
			return nil, err
		}
	}
	perm, err := orderPerm(ctx, keys, desc, limit, par, sp)
	if err != nil {
		return nil, err
	}
	pos := 0
	wrows := make([]int32, 0, StreamChunkRows)
	wvals := make([]int64, 0, StreamChunkRows)
	next := func() ([][]float64, error) {
		if pos >= len(perm) {
			return nil, nil
		}
		end := pos + StreamChunkRows
		if end > len(perm) {
			end = len(perm)
		}
		wrows, wvals = wrows[:0], wvals[:0]
		for _, p := range perm[pos:end] {
			if hasRows {
				wrows = append(wrows, rows[p])
			}
			wvals = append(wvals, vals[p])
		}
		pos = end
		var span []int32
		if hasRows {
			span = wrows
		}
		return projectSpan(rel, cols, scanCol, span, wvals, nil)
	}
	// The sort keys were gathered above, so after construction a
	// value-only projection touches no relation storage.
	st := NewResultStream(headers, ints, next)
	st.Detached = valueOnly
	return st, nil
}

// projectSpan appends one span of qualifying tuples to out as projected
// rows, column-at-a-time: the scan column's values are already in hand,
// every other column is gathered over the span's positions.
func projectSpan(rel Relation, cols []string, scanCol string, rows []int32, vals []int64, out [][]float64) ([][]float64, error) {
	base := len(out)
	for range vals {
		out = append(out, make([]float64, len(cols)))
	}
	var buf []int64
	for ci, cn := range cols {
		src := vals
		if cn != scanCol {
			var err error
			buf, err = rel.Gather(cn, rows, buf)
			if err != nil {
				return nil, err
			}
			src = buf
		}
		for i, v := range src {
			out[base+i][ci] = float64(v)
		}
	}
	return out, nil
}

func execAggregateStream(rel Relation, q *Query, o Opts) (*ResultStream, error) {
	kind := *q.Aggregate
	col := q.AggregateCol
	if col == "*" {
		// COUNT(*): count over the predicate column, or any column for
		// predicate-free counting.
		col = q.WhereCol.Name
		if col == "" {
			col = rel.Columns()[0]
		}
	}
	if !hasColumn(rel, col) {
		return nil, badQueryf("relation %q has no column %q", q.Table, col)
	}
	if q.WhereCol.Name != "" {
		if _, err := resolveRef(rel, q.Table, q.WhereCol); err != nil {
			return nil, err
		}
		if q.AggregateCol != "*" && q.WhereCol.Name != q.AggregateCol {
			return nil, badQueryf("aggregate column %q must match WHERE column %q in the single-attribute subspace", q.AggregateCol, q.WhereCol.Name)
		}
	}
	pred := q.Where
	if pred == nil {
		pred = expr.True{}
	}
	header := fmt.Sprintf("%s(%s)", kind, q.AggregateCol)
	headers := []string{header}
	ints := []bool{kind != engine.Avg}
	if q.HasLimit && q.Limit == 0 {
		// LIMIT 0 caps even the aggregate's single row.
		return emptyStream(headers, ints), nil
	}
	// The aggregate is one barrier computation inside the engine, with
	// no morsel boundaries this layer can check mid-flight — so enforce
	// the quota's deadline (and any pressure kill) at admission.
	if gq := governor.FromContext(o.context()); gq != nil {
		if err := gq.Check(); err != nil {
			return nil, err
		}
	}
	agg, err := rel.Aggregate(col, pred, o.Parallelism)
	if errors.Is(err, engine.ErrNoRows) {
		// SQL semantics over an empty qualifying set: COUNT is 0, every
		// other aggregate is NULL (one row, NaN standing in for NULL).
		if kind == engine.Count {
			return oneChunkStream(headers, ints, [][]float64{{0}}), nil
		}
		return oneChunkStream(headers, ints, [][]float64{{math.NaN()}}), nil
	}
	if err != nil {
		return nil, err
	}
	return oneChunkStream(headers, ints, [][]float64{{agg.Value(kind)}}), nil
}
