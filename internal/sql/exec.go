package sql

import (
	"fmt"
	"math"

	"amnesiadb/internal/engine"
	"amnesiadb/internal/expr"
)

// Result is the materialized tabular output of Run — ResultStream's
// Collect form, kept for tests and one-shot callers.
type Result struct {
	// Columns are the output column headers.
	Columns []string
	// Rows holds one slice per result row, aligned with Columns.
	// Aggregate results have exactly one row. A NaN cell is the
	// NULL-style value a non-COUNT aggregate reports over an empty
	// qualifying set.
	Rows [][]float64
	// Ints is true per column when values are exact integers (projection
	// columns, COUNT/SUM/MIN/MAX); AVG reports a float.
	Ints []bool
}

// Opts tunes query execution.
type Opts struct {
	// Parallelism is the engine's intra-query parallelism knob: 0 auto
	// (morsel-parallel scans, sorts and joins for large inputs),
	// 1 serial, n > 1 forces n workers. See engine.Exec.SetParallelism.
	Parallelism int
}

// Run parses and executes one SELECT against the catalog, querying active
// tuples only (the amnesiac view), and materializes the full result.
func Run(cat Catalog, query string) (*Result, error) {
	return RunOpts(cat, query, Opts{})
}

// RunOpts is Run with execution options.
func RunOpts(cat Catalog, query string, o Opts) (*Result, error) {
	st, err := RunStream(cat, query, o)
	if err != nil {
		return nil, err
	}
	return st.Collect()
}

// RunStream parses and executes one SELECT, returning the chunked
// result stream instead of a materialized Result.
func RunStream(cat Catalog, query string, o Opts) (*ResultStream, error) {
	q, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return ExecStream(cat, q, o)
}

// Exec executes a parsed query with default options.
func Exec(cat Catalog, q *Query) (*Result, error) {
	return ExecOpts(cat, q, Opts{})
}

// ExecOpts executes a parsed query and materializes the result.
func ExecOpts(cat Catalog, q *Query, o Opts) (*Result, error) {
	st, err := ExecStream(cat, q, o)
	if err != nil {
		return nil, err
	}
	return st.Collect()
}

// badQuery wraps a semantic validation failure (unknown column,
// cross-column aggregate, unsupported join shape) so it maps to "bad
// SQL" rather than an internal error.
func badQuery(err error) error { return fmt.Errorf("%w: %v", ErrInvalid, err) }

func badQueryf(format string, args ...any) error {
	return badQuery(fmt.Errorf(format, args...))
}

// ExecStream executes a parsed query. Validation — catalog lookups,
// column resolution, join-shape checks — happens before the stream is
// returned, so an error here is a rejected query; errors from the
// stream's Next are mid-flight execution failures.
func ExecStream(cat Catalog, q *Query, o Opts) (*ResultStream, error) {
	if q.Join != nil {
		return execJoinStream(cat, q, o)
	}
	rel, err := cat.Lookup(q.Table)
	if err != nil {
		return nil, err
	}
	if q.Aggregate != nil {
		return execAggregateStream(rel, q, o)
	}
	return execSelectStream(rel, q, o)
}

// hasColumn reports whether the relation projects the named column.
func hasColumn(rel Relation, name string) bool {
	for _, c := range rel.Columns() {
		if c == name {
			return true
		}
	}
	return false
}

// resolveRef validates a column reference against a single-table query:
// the qualifier, when present, must name the queried table, and the
// column must exist.
func resolveRef(rel Relation, tableName string, ref ColRef) (string, error) {
	if ref.Table != "" && ref.Table != tableName {
		return "", badQueryf("unknown table qualifier %q in %q", ref.Table, ref)
	}
	if !hasColumn(rel, ref.Name) {
		return "", badQueryf("relation %q has no column %q", tableName, ref.Name)
	}
	return ref.Name, nil
}

// queryLimit resolves the LIMIT clause: -1 means unlimited.
func queryLimit(q *Query) int {
	if q.HasLimit {
		return q.Limit
	}
	return -1
}

// execSelectStream streams a single-relation projection: scan chunks
// come straight from the engine (per morsel for tables, per shard for
// partitioned sets) and are projected on demand, so the server can
// serialize incrementally. ORDER BY is the one barrier — the qualifying
// set materializes for the sort — after which the sorted output streams
// in StreamChunkRows windows.
func execSelectStream(rel Relation, q *Query, o Opts) (*ResultStream, error) {
	var cols []string    // plain column names to project
	var headers []string // output headers as written
	if q.Star {
		cols = rel.Columns()
		headers = cols
	} else {
		for _, ref := range q.Columns {
			name, err := resolveRef(rel, q.Table, ref)
			if err != nil {
				return nil, err
			}
			cols = append(cols, name)
			headers = append(headers, ref.String())
		}
	}
	pred := q.Where
	if pred == nil {
		pred = expr.True{}
	}
	// The predicate runs over WhereCol (or the first projected column
	// for predicate-free queries).
	scanCol := cols[0]
	if q.WhereCol.Name != "" {
		name, err := resolveRef(rel, q.Table, q.WhereCol)
		if err != nil {
			return nil, err
		}
		scanCol = name
	}
	orderCol := ""
	if q.OrderBy.Name != "" {
		name, err := resolveRef(rel, q.Table, q.OrderBy)
		if err != nil {
			return nil, err
		}
		orderCol = name
	}
	ints := make([]bool, len(cols))
	for i := range ints {
		ints[i] = true
	}
	limit := queryLimit(q)
	if limit == 0 {
		// LIMIT 0 asks for zero rows; skip the scan (every referenced
		// column is validated above, so an invalid query still errors).
		return emptyStream(headers, ints), nil
	}
	chunks, err := rel.ScanChunks(scanCol, pred, o.Parallelism)
	if err != nil {
		return nil, err
	}
	// A value-only projection (every output column is the scan column —
	// notably every partitioned-table select) never reads relation
	// storage again after the scan: the stream is detached and catalog
	// holders can release their locks immediately.
	valueOnly := true
	for _, c := range cols {
		if c != scanCol {
			valueOnly = false
			break
		}
	}
	if orderCol != "" {
		return orderedSelectStream(rel, headers, ints, cols, scanCol, orderCol, chunks, q.OrderDesc, limit, o.Parallelism, valueOnly)
	}

	// Unordered path: walk the scan chunks with a cursor, assembling up
	// to StreamChunkRows projected rows per Next and counting the LIMIT
	// down across chunks.
	ci, off, rem := 0, 0, limit
	next := func() ([][]float64, error) {
		var out [][]float64
		for len(out) < StreamChunkRows && ci < len(chunks) && rem != 0 {
			c := chunks[ci]
			if off >= len(c.Values) {
				ci, off = ci+1, 0
				continue
			}
			take := len(c.Values) - off
			if n := StreamChunkRows - len(out); take > n {
				take = n
			}
			if rem > 0 && take > rem {
				take = rem
			}
			// Relations without global positions (partitioned sets)
			// carry nil Rows; they project by value only.
			var span []int32
			if c.Rows != nil {
				span = c.Rows[off : off+take]
			}
			var perr error
			out, perr = projectSpan(rel, cols, scanCol, span, c.Values[off:off+take], out)
			if perr != nil {
				return nil, perr
			}
			off += take
			if rem > 0 {
				rem -= take
			}
		}
		return out, nil
	}
	st := NewResultStream(headers, ints, next)
	st.Detached = valueOnly
	return st, nil
}

// orderedSelectStream sorts the qualifying set and streams the sorted
// projection window by window.
func orderedSelectStream(rel Relation, headers []string, ints []bool, cols []string, scanCol, orderCol string, chunks []engine.SelChunk, desc bool, limit, par int, valueOnly bool) (*ResultStream, error) {
	total := 0
	for _, c := range chunks {
		total += len(c.Values)
	}
	rows := make([]int32, 0, total)
	vals := make([]int64, 0, total)
	for _, c := range chunks {
		rows = append(rows, c.Rows...)
		vals = append(vals, c.Values...)
	}
	// Relations without global positions (partitioned sets) carry nil
	// chunk Rows; their single column projects — and sorts — by value.
	hasRows := len(rows) == total
	keys := vals
	if orderCol != scanCol {
		if !hasRows {
			return nil, badQueryf("relation has no column %q to order by", orderCol)
		}
		var err error
		keys, err = rel.Gather(orderCol, rows, nil)
		if err != nil {
			return nil, err
		}
	}
	perm := orderPerm(keys, desc, limit, par)
	pos := 0
	wrows := make([]int32, 0, StreamChunkRows)
	wvals := make([]int64, 0, StreamChunkRows)
	next := func() ([][]float64, error) {
		if pos >= len(perm) {
			return nil, nil
		}
		end := pos + StreamChunkRows
		if end > len(perm) {
			end = len(perm)
		}
		wrows, wvals = wrows[:0], wvals[:0]
		for _, p := range perm[pos:end] {
			if hasRows {
				wrows = append(wrows, rows[p])
			}
			wvals = append(wvals, vals[p])
		}
		pos = end
		var span []int32
		if hasRows {
			span = wrows
		}
		return projectSpan(rel, cols, scanCol, span, wvals, nil)
	}
	// The sort keys were gathered above, so after construction a
	// value-only projection touches no relation storage.
	st := NewResultStream(headers, ints, next)
	st.Detached = valueOnly
	return st, nil
}

// projectSpan appends one span of qualifying tuples to out as projected
// rows, column-at-a-time: the scan column's values are already in hand,
// every other column is gathered over the span's positions.
func projectSpan(rel Relation, cols []string, scanCol string, rows []int32, vals []int64, out [][]float64) ([][]float64, error) {
	base := len(out)
	for range vals {
		out = append(out, make([]float64, len(cols)))
	}
	var buf []int64
	for ci, cn := range cols {
		src := vals
		if cn != scanCol {
			var err error
			buf, err = rel.Gather(cn, rows, buf)
			if err != nil {
				return nil, err
			}
			src = buf
		}
		for i, v := range src {
			out[base+i][ci] = float64(v)
		}
	}
	return out, nil
}

func execAggregateStream(rel Relation, q *Query, o Opts) (*ResultStream, error) {
	kind := *q.Aggregate
	col := q.AggregateCol
	if col == "*" {
		// COUNT(*): count over the predicate column, or any column for
		// predicate-free counting.
		col = q.WhereCol.Name
		if col == "" {
			col = rel.Columns()[0]
		}
	}
	if !hasColumn(rel, col) {
		return nil, badQueryf("relation %q has no column %q", q.Table, col)
	}
	if q.WhereCol.Name != "" {
		if _, err := resolveRef(rel, q.Table, q.WhereCol); err != nil {
			return nil, err
		}
		if q.AggregateCol != "*" && q.WhereCol.Name != q.AggregateCol {
			return nil, badQueryf("aggregate column %q must match WHERE column %q in the single-attribute subspace", q.AggregateCol, q.WhereCol.Name)
		}
	}
	pred := q.Where
	if pred == nil {
		pred = expr.True{}
	}
	header := fmt.Sprintf("%s(%s)", kind, q.AggregateCol)
	headers := []string{header}
	ints := []bool{kind != engine.Avg}
	if q.HasLimit && q.Limit == 0 {
		// LIMIT 0 caps even the aggregate's single row.
		return emptyStream(headers, ints), nil
	}
	agg, err := rel.Aggregate(col, pred, o.Parallelism)
	if err == engine.ErrNoRows {
		// SQL semantics over an empty qualifying set: COUNT is 0, every
		// other aggregate is NULL (one row, NaN standing in for NULL).
		if kind == engine.Count {
			return oneChunkStream(headers, ints, [][]float64{{0}}), nil
		}
		return oneChunkStream(headers, ints, [][]float64{{math.NaN()}}), nil
	}
	if err != nil {
		return nil, err
	}
	return oneChunkStream(headers, ints, [][]float64{{agg.Value(kind)}}), nil
}
