package sql

import (
	"fmt"
	"math"

	"amnesiadb/internal/column"
	"amnesiadb/internal/engine"
	"amnesiadb/internal/expr"
	"amnesiadb/internal/table"
)

// Result is the tabular output of Run.
type Result struct {
	// Columns are the output column headers.
	Columns []string
	// Rows holds one slice per result row, aligned with Columns.
	// Aggregate results have exactly one row. A NaN cell is the
	// NULL-style value a non-COUNT aggregate reports over an empty
	// qualifying set.
	Rows [][]float64
	// Ints is true per column when values are exact integers (projection
	// columns, COUNT/SUM/MIN/MAX); AVG reports a float.
	Ints []bool
}

// Catalog resolves table names; the amnesiadb facade and the tests both
// satisfy it.
type Catalog interface {
	// LookupTable returns the named table or an error.
	LookupTable(name string) (*table.Table, error)
}

// CatalogFunc adapts a function to Catalog.
type CatalogFunc func(name string) (*table.Table, error)

// LookupTable implements Catalog.
func (f CatalogFunc) LookupTable(name string) (*table.Table, error) { return f(name) }

// Opts tunes query execution.
type Opts struct {
	// Parallelism is the engine's intra-query parallelism knob: 0 auto
	// (morsel-parallel scans and sorts for large tables), 1 serial,
	// n > 1 forces n workers. See engine.Exec.SetParallelism.
	Parallelism int
}

// Run parses and executes one SELECT against the catalog, querying active
// tuples only (the amnesiac view).
func Run(cat Catalog, query string) (*Result, error) {
	return RunOpts(cat, query, Opts{})
}

// RunOpts is Run with execution options.
func RunOpts(cat Catalog, query string, o Opts) (*Result, error) {
	q, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return ExecOpts(cat, q, o)
}

// Exec executes a parsed query with default options.
func Exec(cat Catalog, q *Query) (*Result, error) {
	return ExecOpts(cat, q, Opts{})
}

// badQuery wraps a semantic validation failure (unknown column,
// cross-column aggregate) so it maps to "bad SQL" rather than an
// internal error.
func badQuery(err error) error { return fmt.Errorf("%w: %v", ErrInvalid, err) }

// ExecOpts executes a parsed query.
func ExecOpts(cat Catalog, q *Query, o Opts) (*Result, error) {
	t, err := cat.LookupTable(q.Table)
	if err != nil {
		return nil, err
	}
	ex := engine.New(t)
	ex.SetParallelism(o.Parallelism)
	pred := q.Where
	if pred == nil {
		pred = expr.True{}
	}

	if q.Aggregate != nil {
		return execAggregate(t, ex, q, pred)
	}

	cols := q.Columns
	if q.Star {
		cols = t.Columns()
	}
	for _, c := range cols {
		if _, err := t.Column(c); err != nil {
			return nil, badQuery(err)
		}
	}
	// The predicate runs over WhereCol (or the first projected column
	// for predicate-free queries).
	scanCol := q.WhereCol
	if scanCol == "" {
		scanCol = cols[0]
	}
	if _, err := t.Column(scanCol); err != nil {
		return nil, badQuery(err)
	}
	var orderCol *column.Int64
	if q.OrderBy != "" {
		oc, err := t.Column(q.OrderBy)
		if err != nil {
			return nil, badQuery(err)
		}
		orderCol = oc
	}
	limit := -1
	if q.HasLimit {
		limit = q.Limit
	}
	res := &Result{Columns: cols, Ints: make([]bool, len(cols))}
	for i := range res.Ints {
		res.Ints[i] = true
	}
	if limit == 0 {
		// LIMIT 0 asks for zero rows; skip the scan (every referenced
		// column is validated above, so an invalid query still errors).
		return res, nil
	}
	sel, err := ex.Select(scanCol, pred, engine.ScanActive)
	if err != nil {
		return nil, err
	}
	rows := sel.Rows
	if orderCol != nil {
		// Gather the sort keys once, then sort morsel-sized runs (in
		// parallel past the auto threshold) and merge them with a k-way
		// heap — top-k when a LIMIT caps the output.
		keys := orderCol.Gather(rows, nil)
		rows = orderRows(rows, keys, q.OrderDesc, limit, o.Parallelism)
	} else if limit > 0 && len(rows) > limit {
		rows = rows[:limit]
	}
	if len(rows) == 0 {
		return res, nil
	}
	// Materialize column-at-a-time: one Gather per projected column over
	// the post-limit selection vector, then transpose into output rows.
	res.Rows = make([][]float64, len(rows))
	for i := range res.Rows {
		res.Rows[i] = make([]float64, len(cols))
	}
	var vals []int64
	for ci, cn := range cols {
		vals = t.MustColumn(cn).Gather(rows, vals)
		for ri, v := range vals {
			res.Rows[ri][ci] = float64(v)
		}
	}
	return res, nil
}

func execAggregate(t *table.Table, ex *engine.Exec, q *Query, pred expr.Expr) (*Result, error) {
	kind := *q.Aggregate
	col := q.AggregateCol
	if col == "*" {
		// COUNT(*): count over the predicate column, or any column for
		// predicate-free counting.
		col = q.WhereCol
		if col == "" {
			col = t.Columns()[0]
		}
	}
	if _, err := t.Column(col); err != nil {
		return nil, badQuery(err)
	}
	if q.WhereCol != "" && q.AggregateCol != "*" && q.WhereCol != q.AggregateCol {
		return nil, badQuery(fmt.Errorf("aggregate column %q must match WHERE column %q in the single-attribute subspace", q.AggregateCol, q.WhereCol))
	}
	header := fmt.Sprintf("%s(%s)", kind, q.AggregateCol)
	res := &Result{Columns: []string{header}, Ints: []bool{kind != engine.Avg}}
	if q.HasLimit && q.Limit == 0 {
		// LIMIT 0 caps even the aggregate's single row.
		return res, nil
	}
	agg, err := ex.Aggregate(col, pred, engine.ScanActive)
	if err == engine.ErrNoRows {
		// SQL semantics over an empty qualifying set: COUNT is 0, every
		// other aggregate is NULL (one row, NaN standing in for NULL).
		if kind == engine.Count {
			res.Rows = [][]float64{{0}}
		} else {
			res.Rows = [][]float64{{math.NaN()}}
		}
		return res, nil
	}
	if err != nil {
		return nil, err
	}
	res.Rows = [][]float64{{agg.Value(kind)}}
	return res, nil
}
