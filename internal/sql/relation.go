package sql

import (
	"context"
	"fmt"

	"amnesiadb/internal/engine"
	"amnesiadb/internal/engine/sched"
	"amnesiadb/internal/expr"
	"amnesiadb/internal/partition"
	"amnesiadb/internal/table"
)

// Relation is one queryable catalog entry. Flat tables and partitioned
// sets implement it (via TableRelation and PartitionRelation), so the
// executor — and through it the HTTP /query endpoint — routes to either
// kind transparently: the §4.4 serving loop over one unified catalog.
type Relation interface {
	// Kind reports the relation flavour: "table" or "partitioned".
	Kind() string
	// Columns lists the projectable column names in declaration order.
	Columns() []string
	// ScanChunks returns the active tuples of col matching pred as
	// chunks in deterministic order (insertion order for tables, value
	// order for partitioned sets). par is the engine's intra-query
	// parallelism knob; relations with their own stamped knob may
	// ignore it.
	ScanChunks(col string, pred expr.Expr, par int) ([]engine.SelChunk, error)
	// ScanChunkStream is the pipelined form of ScanChunks: chunks
	// arrive over a bounded channel, in the same deterministic order,
	// while producers are still scanning. Cancelling ctx tears the
	// producers down; the stream's ScanDone reports when relation
	// storage is no longer read.
	ScanChunkStream(ctx context.Context, col string, pred expr.Expr, par int) (*engine.ChunkStream, error)
	// Clustered reports that scan chunks arrive as disjoint, ascending
	// value ranges (partitioned sets: one chunk per shard, in shard
	// order). ORDER BY exploits it to sort shard-locally and merge
	// instead of sorting the whole fan-out.
	Clustered() bool
	// Gather materializes col at the given scan positions. Relations
	// without a global position space (partitioned sets) reject it;
	// the executor projects their scan values directly.
	Gather(col string, rows []int32, buf []int64) ([]int64, error)
	// Aggregate folds col under pred in one pass; engine.ErrNoRows
	// reports an empty qualifying set.
	Aggregate(col string, pred expr.Expr, par int) (*engine.AggResult, error)
	// Precision reports the §2.3 metrics for pred over col.
	Precision(col string, pred expr.Expr, par int) (rf, mf int, pf float64, err error)
	// Stats sums the relation's tuple counters.
	Stats() table.Stats
	// Epoch returns the relation's monotonic mutation epoch: it changes
	// whenever a mutation (insert, forget, remember, vacuum — anywhere
	// in the relation) could change a query result, and is stable while
	// the caller holds the relation's read lock. The result cache keys
	// on it.
	Epoch() uint64
}

// Catalog resolves relation names; the amnesiadb facade and the tests
// both satisfy it.
type Catalog interface {
	// Lookup returns the named relation or an error.
	Lookup(name string) (Relation, error)
}

// CatalogFunc adapts a function to Catalog.
type CatalogFunc func(name string) (Relation, error)

// Lookup implements Catalog.
func (f CatalogFunc) Lookup(name string) (Relation, error) { return f(name) }

// TableRelation adapts a flat table to the catalog. It is the only
// relation kind the join executor accepts, since hash joins need the
// table's global position space.
type TableRelation struct {
	tbl   *table.Table
	sched *sched.Pool
}

// NewTableRelation wraps t as a catalog Relation.
func NewTableRelation(t *table.Table) *TableRelation { return &TableRelation{tbl: t} }

// SetScheduler routes the relation's scans through a shared worker
// pool; nil (the default) keeps per-query goroutines.
func (r *TableRelation) SetScheduler(p *sched.Pool) { r.sched = p }

// Kind implements Relation.
func (r *TableRelation) Kind() string { return "table" }

// Columns implements Relation.
func (r *TableRelation) Columns() []string { return r.tbl.Columns() }

// exec builds a touching executor at the given parallelism; scans feed
// the §3.2 access-frequency loop exactly like the facade's direct path.
func (r *TableRelation) exec(par int) *engine.Exec {
	ex := engine.New(r.tbl)
	ex.SetParallelism(par)
	ex.SetScheduler(r.sched)
	return ex
}

// ScanChunks implements Relation.
func (r *TableRelation) ScanChunks(col string, pred expr.Expr, par int) ([]engine.SelChunk, error) {
	return r.exec(par).SelectChunks(col, pred, engine.ScanActive)
}

// ScanChunkStream implements Relation: the engine's pipelined morsel
// scan, touching access frequencies like every catalog scan.
func (r *TableRelation) ScanChunkStream(ctx context.Context, col string, pred expr.Expr, par int) (*engine.ChunkStream, error) {
	return r.exec(par).SelectChunkStream(ctx, col, pred, engine.ScanActive)
}

// Clustered implements Relation: table chunks are insertion-ordered,
// not value-ordered.
func (r *TableRelation) Clustered() bool { return false }

// Gather implements Relation.
func (r *TableRelation) Gather(col string, rows []int32, buf []int64) ([]int64, error) {
	c, err := r.tbl.Column(col)
	if err != nil {
		return nil, err
	}
	return c.Gather(rows, buf), nil
}

// Aggregate implements Relation.
func (r *TableRelation) Aggregate(col string, pred expr.Expr, par int) (*engine.AggResult, error) {
	return r.exec(par).Aggregate(col, pred, engine.ScanActive)
}

// Precision implements Relation.
func (r *TableRelation) Precision(col string, pred expr.Expr, par int) (rf, mf int, pf float64, err error) {
	return r.exec(par).Precision(col, pred)
}

// Stats implements Relation.
func (r *TableRelation) Stats() table.Stats { return r.tbl.Stats() }

// Epoch implements Relation.
func (r *TableRelation) Epoch() uint64 { return r.tbl.Epoch() }

// PartitionRelation adapts a partitioned set to the catalog: scans fan
// out per shard (chunks come back one per shard, in value order) and
// project by value, since shard-local positions mean nothing globally.
type PartitionRelation struct {
	set *partition.Set
}

// NewPartitionRelation wraps s as a catalog Relation.
func NewPartitionRelation(s *partition.Set) *PartitionRelation { return &PartitionRelation{set: s} }

// Kind implements Relation.
func (r *PartitionRelation) Kind() string { return "partitioned" }

// Columns implements Relation. A partitioned set stores one attribute.
func (r *PartitionRelation) Columns() []string { return []string{r.set.Column()} }

// checkCol validates the column reference against the single attribute.
func (r *PartitionRelation) checkCol(col string) error {
	if col != r.set.Column() {
		return fmt.Errorf("partitioned relation: unknown column %q", col)
	}
	return nil
}

// ScanChunks implements Relation. The set's own fan-out knob governs
// concurrency, so par is ignored.
func (r *PartitionRelation) ScanChunks(col string, pred expr.Expr, _ int) ([]engine.SelChunk, error) {
	if err := r.checkCol(col); err != nil {
		return nil, err
	}
	return r.set.ScanChunks(pred)
}

// ScanChunkStream implements Relation: the set's pipelined shard
// fan-out, one chunk per shard in value order.
func (r *PartitionRelation) ScanChunkStream(ctx context.Context, col string, pred expr.Expr, _ int) (*engine.ChunkStream, error) {
	if err := r.checkCol(col); err != nil {
		return nil, err
	}
	return r.set.ScanChunkStream(ctx, pred)
}

// Clustered implements Relation: shards are contiguous value ranges
// scanned in range order, so chunk values are disjoint and ascending
// across chunks.
func (r *PartitionRelation) Clustered() bool { return true }

// Gather implements Relation. Positions are shard-local, so partitioned
// relations cannot project by position; the executor never asks, since
// every projectable column is the scan column whose values the chunks
// already carry.
func (r *PartitionRelation) Gather(string, []int32, []int64) ([]int64, error) {
	return nil, fmt.Errorf("partitioned relation: no global positions to gather")
}

// Aggregate implements Relation.
func (r *PartitionRelation) Aggregate(col string, pred expr.Expr, _ int) (*engine.AggResult, error) {
	if err := r.checkCol(col); err != nil {
		return nil, err
	}
	return r.set.AggregateExpr(pred)
}

// Precision implements Relation.
func (r *PartitionRelation) Precision(col string, pred expr.Expr, _ int) (rf, mf int, pf float64, err error) {
	if err := r.checkCol(col); err != nil {
		return 0, 0, 0, err
	}
	return r.set.PrecisionExpr(pred)
}

// Stats implements Relation.
func (r *PartitionRelation) Stats() table.Stats { return r.set.Stats() }

// Epoch implements Relation: the sum of the shard epochs, monotonic
// and mutation-sensitive like the flat-table one.
func (r *PartitionRelation) Epoch() uint64 { return r.set.Epoch() }
