package amnesia

import (
	"math"
	"sort"

	"amnesiadb/internal/table"
	"amnesiadb/internal/xrand"
)

// Pairwise implements the §4.4 extension: "the average query could be used
// to identify pairs of tuples to be forgotten instead of a single one. It
// would retain the precision as long as possible." It forgets pairs of
// active tuples whose values are antipodal around the current active mean,
// so AVG over the active set is disturbed as little as possible.
type Pairwise struct {
	src *xrand.Source
	col string
}

// NewPairwise returns the average-preserving strategy operating on column
// col.
func NewPairwise(src *xrand.Source, col string) *Pairwise {
	if src == nil {
		panic("amnesia: NewPairwise with nil source")
	}
	if col == "" {
		panic("amnesia: NewPairwise with empty column name")
	}
	return &Pairwise{src: src, col: col}
}

// Name implements Strategy.
func (*Pairwise) Name() string { return "pairwise" }

// Forget implements Strategy.
func (p *Pairwise) Forget(t *table.Table, n int) int {
	n = clampBudget(t, n)
	if n == 0 {
		return 0
	}
	c, err := t.Column(p.col)
	if err != nil {
		panic(err)
	}
	active := t.ActiveIndices()
	// Order active tuples by value; pair extremes inward. The pair
	// (smallest, largest) has the sum closest to 2*mean among available
	// extremes when the distribution is roughly symmetric, and pairing
	// inward keeps the running mean anchored for skewed data too.
	order := make([]int, len(active))
	copy(order, active)
	sort.Slice(order, func(a, b int) bool { return c.Get(order[a]) < c.Get(order[b]) })

	lo, hi := 0, len(order)-1
	forgotten := 0
	for forgotten+2 <= n && lo < hi {
		t.Forget(order[lo])
		t.Forget(order[hi])
		forgotten += 2
		lo++
		hi--
	}
	if forgotten < n && lo <= hi {
		// Odd remainder: forget the tuple whose value is closest to the
		// active mean, the single choice with least impact on AVG.
		var sum float64
		for i := lo; i <= hi; i++ {
			sum += float64(c.Get(order[i]))
		}
		mean := sum / float64(hi-lo+1)
		best, bestDist := lo, math.Inf(1)
		for i := lo; i <= hi; i++ {
			if d := math.Abs(float64(c.Get(order[i])) - mean); d < bestDist {
				best, bestDist = i, d
			}
		}
		t.Forget(order[best])
		forgotten++
	}
	return forgotten
}

// DefaultAlignBins is the histogram resolution used by New for the
// distribution-aligned strategy.
const DefaultAlignBins = 32

// DistAligned implements the §4.4 extension of forgetting tuples "that do
// not change the data distribution for all active records": it maintains
// an equi-width histogram of every value ever inserted (the evolving
// ground-truth distribution) and forgets from the bins where the active
// histogram most exceeds its target share, keeping the two aligned — the
// goal database sampling techniques aim for [7].
type DistAligned struct {
	src  *xrand.Source
	col  string
	bins int

	totalHist []int64 // all values ever inserted, including forgotten
	totalN    int64
	binWidth  int64
	maxSeen   int64
}

// NewDistAligned returns the distribution-aligned strategy with the given
// histogram resolution over column col.
func NewDistAligned(src *xrand.Source, col string, bins int) *DistAligned {
	if src == nil {
		panic("amnesia: NewDistAligned with nil source")
	}
	if col == "" {
		panic("amnesia: NewDistAligned with empty column name")
	}
	if bins < 2 {
		panic("amnesia: NewDistAligned needs at least 2 bins")
	}
	return &DistAligned{src: src, col: col, bins: bins}
}

// Name implements Strategy.
func (*DistAligned) Name() string { return "distaligned" }

// Forget implements Strategy.
func (d *DistAligned) Forget(t *table.Table, n int) int {
	n = clampBudget(t, n)
	if n == 0 {
		return 0
	}
	c, err := t.Column(d.col)
	if err != nil {
		panic(err)
	}
	d.refresh(c.Values())

	// Bin the active tuples.
	active := t.ActiveIndices()
	byBin := make([][]int, d.bins)
	for _, i := range active {
		b := d.bin(c.Get(i))
		byBin[b] = append(byBin[b], i)
	}

	forgotten := 0
	for forgotten < n {
		// Find the bin with the largest surplus of active tuples over
		// its target share of the post-forget active count.
		targetTotal := float64(len(active) - forgotten - 1)
		best, bestSurplus := -1, math.Inf(-1)
		for b := 0; b < d.bins; b++ {
			if len(byBin[b]) == 0 {
				continue
			}
			want := targetTotal * float64(d.totalHist[b]) / float64(d.totalN)
			surplus := float64(len(byBin[b])) - want
			if surplus > bestSurplus {
				best, bestSurplus = b, surplus
			}
		}
		if best < 0 {
			break // nothing active anywhere
		}
		members := byBin[best]
		pick := d.src.Intn(len(members))
		t.Forget(members[pick])
		members[pick] = members[len(members)-1]
		byBin[best] = members[:len(members)-1]
		forgotten++
	}
	return forgotten
}

// refresh rebuilds the ground-truth histogram when the observed value
// range has grown, then folds in values appended since the last call.
func (d *DistAligned) refresh(all []int64) {
	var max int64 = 1
	for _, v := range all {
		if v > max {
			max = v
		}
	}
	width := max/int64(d.bins) + 1
	if d.totalHist == nil || width != d.binWidth {
		d.totalHist = make([]int64, d.bins)
		d.binWidth = width
		d.totalN = 0
		for _, v := range all {
			d.totalHist[d.bin(v)]++
		}
		d.totalN = int64(len(all))
		d.maxSeen = max
		return
	}
	for i := d.totalN; i < int64(len(all)); i++ {
		d.totalHist[d.bin(all[i])]++
	}
	d.totalN = int64(len(all))
	d.maxSeen = max
}

func (d *DistAligned) bin(v int64) int {
	if v < 0 {
		return 0
	}
	b := int(v / d.binWidth)
	if b >= d.bins {
		b = d.bins - 1
	}
	return b
}
