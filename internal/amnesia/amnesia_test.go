package amnesia

import (
	"math"
	"testing"
	"testing/quick"

	"amnesiadb/internal/table"
	"amnesiadb/internal/xrand"
)

// mkTable builds a single-column table of nBatches batches with batchSize
// serial values each.
func mkTable(t *testing.T, nBatches, batchSize int) *table.Table {
	t.Helper()
	tb := table.New("t", "a")
	v := int64(0)
	for b := 0; b < nBatches; b++ {
		vals := make([]int64, batchSize)
		for i := range vals {
			vals[i] = v
			v++
		}
		if _, err := tb.AppendSingleColumn(vals); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func allStrategies(src *xrand.Source) []Strategy {
	out := make([]Strategy, 0, len(Names()))
	for _, n := range Names() {
		s, err := New(n, "a", src.Split())
		if err != nil {
			panic(err)
		}
		out = append(out, s)
	}
	return out
}

func TestNewKnownAndUnknown(t *testing.T) {
	src := xrand.New(1)
	for _, n := range Names() {
		s, err := New(n, "a", src)
		if err != nil {
			t.Fatalf("New(%q): %v", n, err)
		}
		if s.Name() != n {
			t.Fatalf("New(%q).Name() = %q", n, s.Name())
		}
	}
	if _, err := New("bogus", "a", src); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestAllStrategiesForgetExactBudget(t *testing.T) {
	for _, s := range allStrategies(xrand.New(2)) {
		tb := mkTable(t, 5, 100)
		got := s.Forget(tb, 123)
		if got != 123 {
			t.Fatalf("%s returned %d, want 123", s.Name(), got)
		}
		if tb.ActiveCount() != 500-123 {
			t.Fatalf("%s left %d active, want %d", s.Name(), tb.ActiveCount(), 500-123)
		}
	}
}

func TestAllStrategiesClampToActive(t *testing.T) {
	for _, s := range allStrategies(xrand.New(3)) {
		tb := mkTable(t, 1, 10)
		got := s.Forget(tb, 50)
		if got != 10 {
			t.Fatalf("%s returned %d, want 10 (clamped)", s.Name(), got)
		}
		if tb.ActiveCount() != 0 {
			t.Fatalf("%s left %d active", s.Name(), tb.ActiveCount())
		}
	}
}

func TestAllStrategiesZeroBudgetNoop(t *testing.T) {
	for _, s := range allStrategies(xrand.New(4)) {
		tb := mkTable(t, 2, 50)
		if got := s.Forget(tb, 0); got != 0 {
			t.Fatalf("%s forgot %d on zero budget", s.Name(), got)
		}
		if tb.ActiveCount() != 100 {
			t.Fatalf("%s changed active count on zero budget", s.Name())
		}
	}
}

func TestAllStrategiesNeverReactivate(t *testing.T) {
	for _, s := range allStrategies(xrand.New(5)) {
		tb := mkTable(t, 4, 50)
		tb.ForgetMany([]int{0, 10, 199})
		s.Forget(tb, 40)
		if tb.IsActive(0) || tb.IsActive(10) || tb.IsActive(199) {
			t.Fatalf("%s reactivated a forgotten tuple", s.Name())
		}
	}
}

func TestFIFOForgetsOldestFirst(t *testing.T) {
	tb := mkTable(t, 3, 10)
	NewFIFO().Forget(tb, 15)
	for i := 0; i < 15; i++ {
		if tb.IsActive(i) {
			t.Fatalf("tuple %d still active after FIFO", i)
		}
	}
	for i := 15; i < 30; i++ {
		if !tb.IsActive(i) {
			t.Fatalf("tuple %d lost by FIFO", i)
		}
	}
}

func TestFIFOSkipsAlreadyForgotten(t *testing.T) {
	tb := mkTable(t, 1, 10)
	tb.Forget(0)
	tb.Forget(2)
	NewFIFO().Forget(tb, 2)
	// Oldest active were 1 and 3.
	if tb.IsActive(1) || tb.IsActive(3) {
		t.Fatal("FIFO did not forget oldest active")
	}
	if !tb.IsActive(4) {
		t.Fatal("FIFO overshot")
	}
}

func TestUniformSpreadsForgetting(t *testing.T) {
	// Across many trials every tuple should be forgotten a similar
	// number of times.
	const n, budget, trials = 100, 20, 3000
	counts := make([]int, n)
	src := xrand.New(6)
	for tr := 0; tr < trials; tr++ {
		tb := mkTable(t, 1, n)
		NewUniform(src.Split()).Forget(tb, budget)
		for i := 0; i < n; i++ {
			if !tb.IsActive(i) {
				counts[i]++
			}
		}
	}
	want := float64(trials) * budget / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.2 {
			t.Fatalf("tuple %d forgotten %d times, want ~%.0f", i, c, want)
		}
	}
}

func TestAnterogradeTargetsRecentTuples(t *testing.T) {
	const trials = 300
	oldHalf, newHalf := 0, 0
	src := xrand.New(7)
	for tr := 0; tr < trials; tr++ {
		tb := mkTable(t, 2, 100)
		NewAnterograde(src.Split(), DefaultAnteBias).Forget(tb, 50)
		for i := 0; i < 100; i++ {
			if !tb.IsActive(i) {
				oldHalf++
			}
		}
		for i := 100; i < 200; i++ {
			if !tb.IsActive(i) {
				newHalf++
			}
		}
	}
	if newHalf < oldHalf*3 {
		t.Fatalf("anterograde not recency-biased: old=%d new=%d", oldHalf, newHalf)
	}
}

func TestRotProtectsFrequentlyAccessed(t *testing.T) {
	src := xrand.New(8)
	hot, cold := 0, 0
	const trials = 200
	for tr := 0; tr < trials; tr++ {
		tb := mkTable(t, 5, 40) // batches 0..4; current batch = 4
		// Tuples 0..19 are heavily accessed, everything else cold.
		for i := 0; i < 20; i++ {
			for k := 0; k < 50; k++ {
				tb.Touch(i)
			}
		}
		NewRot(src.Split(), 2).Forget(tb, 60)
		for i := 0; i < 20; i++ {
			if !tb.IsActive(i) {
				hot++
			}
		}
		for i := 20; i < 120; i++ { // old enough, cold
			if !tb.IsActive(i) {
				cold++
			}
		}
	}
	// Per-tuple forgetting rate should be far higher for cold tuples.
	hotRate := float64(hot) / (20 * trials)
	coldRate := float64(cold) / (100 * trials)
	if coldRate < hotRate*5 {
		t.Fatalf("rot ignored access frequency: hotRate=%.3f coldRate=%.3f", hotRate, coldRate)
	}
}

func TestRotHonoursHighWaterMark(t *testing.T) {
	src := xrand.New(9)
	const trials = 100
	youngForgotten, totalYoung := 0, 0
	for tr := 0; tr < trials; tr++ {
		tb := mkTable(t, 5, 40) // batch ids 0..4, current = 4
		// minAge 2 protects batches 3 and 4 (ages 1 and 0) while the
		// 120 older tuples can cover the budget of 40.
		NewRot(src.Split(), 2).Forget(tb, 40)
		for i := 120; i < 200; i++ {
			totalYoung++
			if !tb.IsActive(i) {
				youngForgotten++
			}
		}
	}
	if youngForgotten != 0 {
		t.Fatalf("rot forgot %d/%d protected young tuples", youngForgotten, totalYoung)
	}
}

func TestRotFallsBackWhenHWMExhausted(t *testing.T) {
	tb := mkTable(t, 2, 10) // current batch 1; minAge 5 protects everything
	got := NewRot(xrand.New(10), 5).Forget(tb, 7)
	if got != 7 || tb.ActiveCount() != 13 {
		t.Fatalf("rot fallback forgot %d, active %d", got, tb.ActiveCount())
	}
}

func TestFrequentTargetsHotTuples(t *testing.T) {
	src := xrand.New(11)
	hot, cold := 0, 0
	const trials = 200
	for tr := 0; tr < trials; tr++ {
		tb := mkTable(t, 1, 100)
		for i := 0; i < 20; i++ {
			for k := 0; k < 50; k++ {
				tb.Touch(i)
			}
		}
		NewFrequent(src.Split()).Forget(tb, 30)
		for i := 0; i < 20; i++ {
			if !tb.IsActive(i) {
				hot++
			}
		}
		for i := 20; i < 100; i++ {
			if !tb.IsActive(i) {
				cold++
			}
		}
	}
	hotRate := float64(hot) / (20 * trials)
	coldRate := float64(cold) / (80 * trials)
	if hotRate < coldRate*5 {
		t.Fatalf("frequent ignored access frequency: hotRate=%.3f coldRate=%.3f", hotRate, coldRate)
	}
}

func TestAreaGrowsContiguousHoles(t *testing.T) {
	tb := mkTable(t, 10, 100)
	a := NewArea(xrand.New(12), 3)
	a.Forget(tb, 400)
	// Count maximal runs of forgotten tuples. New molds seed with
	// probability 1/(K+1) per step, so some scatter is inherent, but the
	// forgotten set must form far fewer runs than uniform forgetting
	// would (uniform expectation ~ 400*(600/1000) = 240 runs).
	runs := 0
	inRun := false
	for i := 0; i < tb.Len(); i++ {
		if !tb.IsActive(i) {
			if !inRun {
				runs++
				inRun = true
			}
		} else {
			inRun = false
		}
	}
	if runs > 120 {
		t.Fatalf("area produced %d forgotten runs; holes not contiguous", runs)
	}
	if tb.ActiveCount() != 600 {
		t.Fatalf("active = %d", tb.ActiveCount())
	}
}

func TestAreaExposesExtents(t *testing.T) {
	tb := mkTable(t, 2, 100)
	a := NewArea(xrand.New(13), 2)
	a.Forget(tb, 20)
	areas := a.Areas()
	if len(areas) == 0 {
		t.Fatal("no areas recorded")
	}
	for _, e := range areas {
		if e[0] > e[1] || e[0] < 0 || e[1] >= tb.Len() {
			t.Fatalf("invalid extent %v", e)
		}
	}
}

func TestPairwisePreservesAverage(t *testing.T) {
	src := xrand.New(14)
	tb := table.New("t", "a")
	vals := make([]int64, 1000)
	for i := range vals {
		vals[i] = src.Int63n(10000)
	}
	if _, err := tb.AppendSingleColumn(vals); err != nil {
		t.Fatal(err)
	}
	mean := func() float64 {
		c := tb.MustColumn("a")
		var sum float64
		n := 0
		for i := 0; i < tb.Len(); i++ {
			if tb.IsActive(i) {
				sum += float64(c.Get(i))
				n++
			}
		}
		return sum / float64(n)
	}
	before := mean()
	NewPairwise(src, "a").Forget(tb, 600)
	after := mean()
	if rel := math.Abs(after-before) / before; rel > 0.05 {
		t.Fatalf("pairwise shifted mean by %.2f%% (%.1f -> %.1f)", rel*100, before, after)
	}
}

func TestPairwiseBeatsUniformOnAvgDrift(t *testing.T) {
	// The §4.4 claim: pairwise retains AVG precision longer than naive
	// forgetting. Compare drift over many trials.
	src := xrand.New(15)
	drift := func(s Strategy) float64 {
		var total float64
		const trials = 30
		for tr := 0; tr < trials; tr++ {
			tb := table.New("t", "a")
			vals := make([]int64, 500)
			for i := range vals {
				vals[i] = src.Int63n(10000)
			}
			if _, err := tb.AppendSingleColumn(vals); err != nil {
				t.Fatal(err)
			}
			c := tb.MustColumn("a")
			meanOf := func() float64 {
				var sum float64
				n := 0
				for i := 0; i < tb.Len(); i++ {
					if tb.IsActive(i) {
						sum += float64(c.Get(i))
						n++
					}
				}
				return sum / float64(n)
			}
			before := meanOf()
			s.Forget(tb, 300)
			total += math.Abs(meanOf() - before)
		}
		return total / trials
	}
	pw := drift(NewPairwise(src.Split(), "a"))
	un := drift(NewUniform(src.Split()))
	if pw > un {
		t.Fatalf("pairwise drift %.2f not better than uniform %.2f", pw, un)
	}
}

func TestDistAlignedKeepsHistogramShape(t *testing.T) {
	src := xrand.New(16)
	tb := table.New("t", "a")
	// Bimodal data: 70% low values, 30% high values.
	vals := make([]int64, 2000)
	for i := range vals {
		if src.Bool(0.7) {
			vals[i] = src.Int63n(1000)
		} else {
			vals[i] = 9000 + src.Int63n(1000)
		}
	}
	if _, err := tb.AppendSingleColumn(vals); err != nil {
		t.Fatal(err)
	}
	NewDistAligned(src, "a", 16).Forget(tb, 1500)
	c := tb.MustColumn("a")
	low, high := 0, 0
	for i := 0; i < tb.Len(); i++ {
		if !tb.IsActive(i) {
			continue
		}
		if c.Get(i) < 5000 {
			low++
		} else {
			high++
		}
	}
	frac := float64(low) / float64(low+high)
	if math.Abs(frac-0.7) > 0.08 {
		t.Fatalf("post-forget low fraction %.3f, want ~0.70", frac)
	}
}

func TestForgetOlderThan(t *testing.T) {
	tb := mkTable(t, 5, 10) // batches 0..4, current = 4
	n := ForgetOlderThan(tb, 2)
	// Ages: batch 0 -> 4, 1 -> 3, 2 -> 2, 3 -> 1, 4 -> 0. Older than 2
	// means batches 0 and 1: 20 tuples.
	if n != 20 {
		t.Fatalf("forgot %d, want 20", n)
	}
	for i := 0; i < 20; i++ {
		if tb.IsActive(i) {
			t.Fatalf("expired tuple %d active", i)
		}
	}
	for i := 20; i < 50; i++ {
		if !tb.IsActive(i) {
			t.Fatalf("in-window tuple %d forgotten", i)
		}
	}
	// Idempotent.
	if n := ForgetOlderThan(tb, 2); n != 0 {
		t.Fatalf("second pass forgot %d", n)
	}
}

func TestForgetOlderThanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative maxAge did not panic")
		}
	}()
	ForgetOlderThan(mkTable(t, 1, 1), -1)
}

func TestWeightedSampleKDistinct(t *testing.T) {
	src := xrand.New(17)
	w := make([]float64, 50)
	for i := range w {
		w[i] = float64(i + 1)
	}
	got := weightedSampleK(src, w, 20)
	seen := map[int]bool{}
	for _, i := range got {
		if i < 0 || i >= 50 || seen[i] {
			t.Fatalf("invalid or duplicate index %d in %v", i, got)
		}
		seen[i] = true
	}
}

func TestWeightedSampleKBias(t *testing.T) {
	src := xrand.New(18)
	// Item 1 has 9x the weight of item 0; over many single draws it must
	// win roughly 9x as often.
	w := []float64{1, 9}
	c0, c1 := 0, 0
	for i := 0; i < 20000; i++ {
		if weightedSampleK(src, w, 1)[0] == 0 {
			c0++
		} else {
			c1++
		}
	}
	ratio := float64(c1) / float64(c0)
	if ratio < 7 || ratio > 11 {
		t.Fatalf("weight ratio 9 sampled at %.2f", ratio)
	}
}

func TestWeightedSampleKZeroWeightsLast(t *testing.T) {
	src := xrand.New(19)
	w := []float64{0, 1, 0, 1}
	got := weightedSampleK(src, w, 2)
	for _, i := range got {
		if i == 0 || i == 2 {
			t.Fatalf("zero-weight index %d chosen while positive weights remained", i)
		}
	}
	// But with k = 4 the zero-weight items must still be returned.
	got = weightedSampleK(src, w, 4)
	if len(got) != 4 {
		t.Fatalf("full sample returned %d items", len(got))
	}
}

func TestPropertyBudgetInvariant(t *testing.T) {
	// For every strategy: after Forget(n), active == max(0, before-n).
	src := xrand.New(20)
	f := func(nBatches, batchSize, budget uint8) bool {
		nb := int(nBatches)%5 + 1
		bs := int(batchSize)%50 + 1
		n := int(budget) % (nb*bs + 10)
		for _, s := range allStrategies(src.Split()) {
			tb := table.New("t", "a")
			v := int64(0)
			for b := 0; b < nb; b++ {
				vals := make([]int64, bs)
				for i := range vals {
					vals[i] = v
					v++
				}
				if _, err := tb.AppendSingleColumn(vals); err != nil {
					return false
				}
			}
			before := tb.ActiveCount()
			s.Forget(tb, n)
			want := before - n
			if want < 0 {
				want = 0
			}
			if tb.ActiveCount() != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestConstructorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"uniform nil src":    func() { NewUniform(nil) },
		"ante nil src":       func() { NewAnterograde(nil, 1) },
		"ante bad bias":      func() { NewAnterograde(xrand.New(1), 0) },
		"rot nil src":        func() { NewRot(nil, 1) },
		"rot negative age":   func() { NewRot(xrand.New(1), -1) },
		"area nil src":       func() { NewArea(nil, 1) },
		"area k=0":           func() { NewArea(xrand.New(1), 0) },
		"frequent nil src":   func() { NewFrequent(nil) },
		"pairwise nil src":   func() { NewPairwise(nil, "a") },
		"pairwise empty col": func() { NewPairwise(xrand.New(1), "") },
		"aligned nil src":    func() { NewDistAligned(nil, "a", 4) },
		"aligned 1 bin":      func() { NewDistAligned(xrand.New(1), "a", 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkStrategies(b *testing.B) {
	for _, name := range Names() {
		b.Run(name, func(b *testing.B) {
			src := xrand.New(1)
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				tb := table.New("t", "a")
				vals := make([]int64, 10000)
				for j := range vals {
					vals[j] = src.Int63n(100000)
				}
				if _, err := tb.AppendSingleColumn(vals); err != nil {
					b.Fatal(err)
				}
				s, err := New(name, "a", src.Split())
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				s.Forget(tb, 2000)
			}
		})
	}
}
