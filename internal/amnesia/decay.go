package amnesia

import (
	"math"

	"amnesiadb/internal/table"
	"amnesiadb/internal/xrand"
)

// DefaultDecayHalfLife is the memory half-life, in batches, used by New
// for the decay strategy.
const DefaultDecayHalfLife = 3.0

// Decay is the human-forgetting heuristic §5 points to (Ebbinghaus-style
// retention, following the spirit of Bahr & Wood [2] and Freedman &
// Adams [6]): each tuple carries a memory strength that decays
// exponentially with age and is reinforced by every access (rehearsal).
// Tuples are forgotten with probability inversely proportional to their
// current strength, combining the temporal bias of FIFO with the
// query bias of rot in one curve:
//
//	strength(i) = (1 + accesses(i)) * 2^(-age(i)/halfLife)
type Decay struct {
	src      *xrand.Source
	halfLife float64
}

// NewDecay returns the decay strategy with the given half-life in batches
// (> 0).
func NewDecay(src *xrand.Source, halfLife float64) *Decay {
	if src == nil {
		panic("amnesia: NewDecay with nil source")
	}
	if halfLife <= 0 {
		panic("amnesia: NewDecay with non-positive half-life")
	}
	return &Decay{src: src, halfLife: halfLife}
}

// Name implements Strategy.
func (*Decay) Name() string { return "decay" }

// Forget implements Strategy.
func (d *Decay) Forget(t *table.Table, n int) int {
	n = clampBudget(t, n)
	if n == 0 {
		return 0
	}
	current := float64(t.Batches() - 1)
	active := t.ActiveIndices()
	w := make([]float64, len(active))
	for j, i := range active {
		age := current - float64(t.InsertBatch(i))
		strength := (1 + float64(t.AccessCount(i))) * math.Exp2(-age/d.halfLife)
		w[j] = 1 / strength
	}
	for _, j := range weightedSampleK(d.src, w, n) {
		t.Forget(active[j])
	}
	return n
}
