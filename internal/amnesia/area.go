package amnesia

import (
	"amnesiadb/internal/table"
	"amnesiadb/internal/xrand"
)

// DefaultAreaCount is the number of concurrently growing mold areas (K in
// §3.3) used by New.
const DefaultAreaCount = 4

// Area is the spatially biased strategy of §3.3: forgetting mimics mold
// growing on the storage surface. The strategy keeps a list of K areas of
// forgotten tuples. For each tuple to forget it draws n in 1..K+1; n = K+1
// seeds a new mold at a random active tuple, otherwise the n-th area is
// extended in either direction to the nearest active tuple. The bias
// toward existing holes mirrors the spatial correlation of magnetic-disk
// errors the paper cites.
type Area struct {
	src *xrand.Source
	k   int
	// areas holds the inclusive tuple-position extent of each mold.
	// Extents only grow; they are kept across update batches so mold
	// persists on the timeline.
	areas []extent
}

type extent struct {
	lo, hi int
}

// NewArea returns the area strategy with k concurrent mold areas (K >= 1).
func NewArea(src *xrand.Source, k int) *Area {
	if src == nil {
		panic("amnesia: NewArea with nil source")
	}
	if k < 1 {
		panic("amnesia: NewArea with k < 1")
	}
	return &Area{src: src, k: k}
}

// Name implements Strategy.
func (*Area) Name() string { return "area" }

// Areas returns a copy of the current mold extents as (lo, hi) inclusive
// position pairs; exposed for tests and visualisation.
func (a *Area) Areas() [][2]int {
	out := make([][2]int, len(a.areas))
	for i, e := range a.areas {
		out[i] = [2]int{e.lo, e.hi}
	}
	return out
}

// Forget implements Strategy.
func (a *Area) Forget(t *table.Table, n int) int {
	n = clampBudget(t, n)
	forgotten := 0
	for forgotten < n {
		if a.forgetOne(t) {
			forgotten++
		}
	}
	return forgotten
}

// forgetOne performs one mold step: seed or extend. It reports whether a
// tuple was actually forgotten; a false return means the chosen extension
// direction was exhausted and the caller should retry.
func (a *Area) forgetOne(t *table.Table) bool {
	pick := a.src.Intn(a.k + 1) // 0..k-1 extend, k seed
	if pick >= len(a.areas) {
		return a.seed(t)
	}
	return a.extend(t, pick)
}

// seed starts a new mold at a uniformly chosen active tuple.
func (a *Area) seed(t *table.Table) bool {
	active := t.ActiveIndices()
	if len(active) == 0 {
		return false
	}
	p := active[a.src.Intn(len(active))]
	t.Forget(p)
	a.areas = append(a.areas, extent{lo: p, hi: p})
	// Respect the configured K by dropping the oldest area once K molds
	// exist; the dropped area's tuples stay forgotten, it just stops
	// growing ("old mold dries out").
	if len(a.areas) > a.k {
		a.areas = a.areas[1:]
	}
	return true
}

// extend grows area i by one active tuple in a random direction, falling
// back to the other direction at the timeline edges.
func (a *Area) extend(t *table.Table, i int) bool {
	e := &a.areas[i]
	dirFirst := a.src.Bool(0.5)
	for attempt := 0; attempt < 2; attempt++ {
		left := dirFirst == (attempt == 0)
		if left {
			// nearest active tuple strictly before the extent
			if p := prevActive(t, e.lo-1); p >= 0 {
				t.Forget(p)
				e.lo = p
				return true
			}
		} else {
			if p := t.Active().NextSet(e.hi + 1); p >= 0 {
				t.Forget(p)
				e.hi = p
				return true
			}
		}
	}
	// Both directions blocked (area swallowed the whole table side);
	// seed elsewhere instead so progress is guaranteed.
	return a.seed(t)
}

// prevActive returns the largest active position <= i, or -1.
func prevActive(t *table.Table, i int) int {
	for ; i >= 0; i-- {
		if t.IsActive(i) {
			return i
		}
	}
	return -1
}
