package amnesia

import (
	"sort"

	"amnesiadb/internal/table"
	"amnesiadb/internal/xrand"
)

// AreaValue is the value-space reading of the §3.3 area strategy: mold
// grows over the *value domain* rather than over tuple insertion
// positions (the paper's "database tiling" is ambiguous between the two;
// Area implements the position reading that matches Figure 1's timeline
// holes, AreaValue the reading that produces §4.2's "a smaller fragment
// of range queries is affected").
//
// Forgetting clusters into K contiguous value intervals, so range queries
// either fall inside a hole (rare when query candidates follow the active
// data) or see an almost intact neighbourhood. See the fig3x ablation
// experiment.
type AreaValue struct {
	src *xrand.Source
	col string
	k   int
	// areas holds the inclusive value extents of each mold.
	areas []vextent
}

type vextent struct {
	lo, hi int64
}

// NewAreaValue returns the value-space area strategy with k concurrent
// molds over column col.
func NewAreaValue(src *xrand.Source, col string, k int) *AreaValue {
	if src == nil {
		panic("amnesia: NewAreaValue with nil source")
	}
	if col == "" {
		panic("amnesia: NewAreaValue with empty column name")
	}
	if k < 1 {
		panic("amnesia: NewAreaValue with k < 1")
	}
	return &AreaValue{src: src, col: col, k: k}
}

// Name implements Strategy.
func (*AreaValue) Name() string { return "areav" }

// Areas returns a copy of the current mold value extents.
func (a *AreaValue) Areas() [][2]int64 {
	out := make([][2]int64, len(a.areas))
	for i, e := range a.areas {
		out[i] = [2]int64{e.lo, e.hi}
	}
	return out
}

// valEntry is one active tuple in value order.
type valEntry struct {
	val  int64
	pos  int
	used bool
}

// Forget implements Strategy.
func (a *AreaValue) Forget(t *table.Table, n int) int {
	n = clampBudget(t, n)
	if n == 0 {
		return 0
	}
	c, err := t.Column(a.col)
	if err != nil {
		panic(err)
	}
	active := t.ActiveIndices()
	arr := make([]valEntry, len(active))
	for i, p := range active {
		arr[i] = valEntry{val: c.Get(p), pos: p}
	}
	sort.Slice(arr, func(i, j int) bool { return arr[i].val < arr[j].val })

	remaining := len(arr)
	forgotten := 0
	for forgotten < n && remaining > 0 {
		if a.step(t, arr, &remaining) {
			forgotten++
		}
	}
	return forgotten
}

// step performs one mold action and reports whether a tuple was
// forgotten.
func (a *AreaValue) step(t *table.Table, arr []valEntry, remaining *int) bool {
	pick := a.src.Intn(a.k + 1)
	if pick >= len(a.areas) {
		return a.seedValue(t, arr, remaining)
	}
	return a.extendValue(t, arr, remaining, pick)
}

// seedValue starts a new mold at a random still-active entry.
func (a *AreaValue) seedValue(t *table.Table, arr []valEntry, remaining *int) bool {
	if *remaining == 0 {
		return false
	}
	for {
		i := a.src.Intn(len(arr))
		if arr[i].used {
			continue
		}
		a.consume(t, arr, i, remaining)
		a.areas = append(a.areas, vextent{lo: arr[i].val, hi: arr[i].val})
		if len(a.areas) > a.k {
			a.areas = a.areas[1:]
		}
		return true
	}
}

// extendValue grows mold i by the nearest unused entry just outside its
// value extent, trying a random direction first.
func (a *AreaValue) extendValue(t *table.Table, arr []valEntry, remaining *int, i int) bool {
	e := &a.areas[i]
	dirFirst := a.src.Bool(0.5)
	for attempt := 0; attempt < 2; attempt++ {
		left := dirFirst == (attempt == 0)
		if left {
			// Last unused entry with val <= e.lo, scanning downward
			// from the first entry >= e.lo.
			j := sort.Search(len(arr), func(k int) bool { return arr[k].val >= e.lo })
			for j--; j >= 0; j-- {
				if !arr[j].used {
					a.consume(t, arr, j, remaining)
					e.lo = arr[j].val
					return true
				}
			}
		} else {
			j := sort.Search(len(arr), func(k int) bool { return arr[k].val > e.hi })
			for ; j < len(arr); j++ {
				if !arr[j].used {
					a.consume(t, arr, j, remaining)
					e.hi = arr[j].val
					return true
				}
			}
		}
	}
	// Both directions exhausted; consume interior duplicates still
	// active inside the extent, else seed elsewhere.
	lo := sort.Search(len(arr), func(k int) bool { return arr[k].val >= e.lo })
	hi := sort.Search(len(arr), func(k int) bool { return arr[k].val > e.hi })
	for j := lo; j < hi; j++ {
		if !arr[j].used {
			a.consume(t, arr, j, remaining)
			return true
		}
	}
	return a.seedValue(t, arr, remaining)
}

func (a *AreaValue) consume(t *table.Table, arr []valEntry, i int, remaining *int) {
	t.Forget(arr[i].pos)
	arr[i].used = true
	*remaining--
}
