// Package amnesia implements the paper's controlled-forgetting strategies
// (§3): the temporally biased FIFO, Uniform (reservoir-style) and
// Anterograde algorithms, the query-based Rot algorithm with its
// high-water-mark guard, the spatially biased Area ("mold") algorithm, and
// the extensions sketched in §3.2 and §4.4 — Frequent (forget over-used
// data), Pairwise (average-preserving forgetting) and DistAligned
// (distribution-preserving forgetting).
//
// A Strategy is invoked after every update batch with the number of tuples
// that must be forgotten to restore the storage budget (§2.1 keeps the
// active set at exactly DBSIZE tuples). Strategies see only table metadata
// — insertion order, access frequency, stored values — matching the
// paper's requirement that amnesia be "closely tied with the DBMS itself".
package amnesia

import (
	"fmt"
	"math"
	"sort"

	"amnesiadb/internal/table"
	"amnesiadb/internal/xrand"
)

// Strategy selects tuples to forget.
type Strategy interface {
	// Name returns the paper's label for the algorithm (used in figure
	// legends).
	Name() string
	// Forget marks up to n active tuples of t inactive and returns the
	// number actually forgotten (less than n only when fewer than n
	// tuples are active). Implementations must not reactivate tuples.
	Forget(t *table.Table, n int) int
}

// New constructs a registered strategy by name. Names match the paper's
// figure legends: fifo, uniform, ante, rot, area; extensions: areav
// (value-space area), frequent, pairwise, distaligned. col is the
// attribute column used by value-aware strategies; others ignore it.
func New(name, col string, src *xrand.Source) (Strategy, error) {
	switch name {
	case "fifo":
		return NewFIFO(), nil
	case "uniform":
		return NewUniform(src), nil
	case "ante":
		return NewAnterograde(src, DefaultAnteBias), nil
	case "rot":
		return NewRot(src, DefaultRotMinAge), nil
	case "area":
		return NewArea(src, DefaultAreaCount), nil
	case "areav":
		return NewAreaValue(src, col, DefaultAreaCount), nil
	case "decay":
		return NewDecay(src, DefaultDecayHalfLife), nil
	case "frequent":
		return NewFrequent(src), nil
	case "pairwise":
		return NewPairwise(src, col), nil
	case "distaligned":
		return NewDistAligned(src, col, DefaultAlignBins), nil
	}
	return nil, fmt.Errorf("amnesia: unknown strategy %q", name)
}

// Names lists the strategy names accepted by New, paper strategies first.
func Names() []string {
	return []string{"fifo", "uniform", "ante", "rot", "area", "areav", "decay", "frequent", "pairwise", "distaligned"}
}

// ForgetOlderThan marks inactive every active tuple whose age exceeds
// maxAge batches (age 0 = the current batch) and returns how many were
// forgotten. It is not a Strategy — it enforces a hard retention window
// (the paper's §1 "forgotten within the legally defined time frame" and
// the §5 vacuuming lineage) and composes with any budget strategy.
func ForgetOlderThan(t *table.Table, maxAge int) int {
	if maxAge < 0 {
		panic("amnesia: ForgetOlderThan with negative maxAge")
	}
	current := int32(t.Batches() - 1)
	n := 0
	for _, i := range t.ActiveIndices() {
		if current-t.InsertBatch(i) > int32(maxAge) {
			t.Forget(i)
			n++
		}
	}
	return n
}

// clampBudget bounds n to the number of active tuples.
func clampBudget(t *table.Table, n int) int {
	if a := t.ActiveCount(); n > a {
		return a
	}
	return n
}

// FIFO forgets the oldest active tuples first, so the active set is a
// sliding buffer at the head of the timeline — the streaming-database
// scenario of §3.1 and the canonical retrograde amnesia.
type FIFO struct{}

// NewFIFO returns the FIFO-amnesia strategy.
func NewFIFO() *FIFO { return &FIFO{} }

// Name implements Strategy.
func (*FIFO) Name() string { return "fifo" }

// Forget implements Strategy.
func (*FIFO) Forget(t *table.Table, n int) int {
	n = clampBudget(t, n)
	forgotten := 0
	i := t.OldestActive()
	for forgotten < n && i >= 0 {
		t.Forget(i)
		forgotten++
		i = t.Active().NextSet(i + 1)
	}
	return forgotten
}

// Uniform forgets tuples chosen uniformly at random among the active set —
// the reservoir-sampling-like baseline of §3.1. Every round each active
// tuple has the same forgetting probability, so older tuples accumulate
// more exposure and fade gradually.
type Uniform struct {
	src *xrand.Source
}

// NewUniform returns the Uniform-amnesia strategy.
func NewUniform(src *xrand.Source) *Uniform {
	if src == nil {
		panic("amnesia: NewUniform with nil source")
	}
	return &Uniform{src: src}
}

// Name implements Strategy.
func (*Uniform) Name() string { return "uniform" }

// Forget implements Strategy.
func (u *Uniform) Forget(t *table.Table, n int) int {
	n = clampBudget(t, n)
	if n == 0 {
		return 0
	}
	active := t.ActiveIndices()
	for _, k := range u.src.SampleK(n, len(active)) {
		t.Forget(active[k])
	}
	return n
}

// DefaultAnteBias is the recency-bias exponent used by New for the
// anterograde strategy. Higher values concentrate forgetting more sharply
// on recently inserted tuples; 12 reproduces the Figure 1 shape (initial
// load largely retained, updates forming the growing "black hole").
const DefaultAnteBias = 12.0

// Anterograde models the inability to accumulate new memories (§3.1):
// forgetting probability grows steeply with recency of insertion, so
// historical data is prioritised and "a new piece of information is only
// remembered if it appears too often". The weight of the i-th active tuple
// (in insertion order, rank r of a) is (r/a)^bias.
type Anterograde struct {
	src  *xrand.Source
	bias float64
}

// NewAnterograde returns the anterograde strategy with the given recency
// bias exponent (> 0).
func NewAnterograde(src *xrand.Source, bias float64) *Anterograde {
	if src == nil {
		panic("amnesia: NewAnterograde with nil source")
	}
	if bias <= 0 {
		panic("amnesia: NewAnterograde with non-positive bias")
	}
	return &Anterograde{src: src, bias: bias}
}

// Name implements Strategy.
func (*Anterograde) Name() string { return "ante" }

// Forget implements Strategy.
func (a *Anterograde) Forget(t *table.Table, n int) int {
	n = clampBudget(t, n)
	if n == 0 {
		return 0
	}
	active := t.ActiveIndices() // ascending = oldest first
	w := make([]float64, len(active))
	for r := range active {
		rel := (float64(r) + 1) / float64(len(active))
		w[r] = math.Pow(rel, a.bias)
	}
	for _, k := range weightedSampleK(a.src, w, n) {
		t.Forget(active[k])
	}
	return n
}

// DefaultRotMinAge is the high-water-mark age (in batches) below which the
// rot strategy refuses to forget a tuple, preventing it from degenerating
// into anterograde behaviour (§3.2).
const DefaultRotMinAge = 2

// Rot is the query-based strategy of §3.2: tuples are forgotten with
// probability inversely proportional to their access frequency, but only
// once they have "been part of the database long enough" (the high-water
// mark). Data the workload keeps returning stays; data nobody asks for
// rots away.
type Rot struct {
	src    *xrand.Source
	minAge int
}

// NewRot returns the rot strategy. minAge is the high-water mark in
// batches; tuples younger than that are protected while older eligible
// tuples remain.
func NewRot(src *xrand.Source, minAge int) *Rot {
	if src == nil {
		panic("amnesia: NewRot with nil source")
	}
	if minAge < 0 {
		panic("amnesia: NewRot with negative minAge")
	}
	return &Rot{src: src, minAge: minAge}
}

// Name implements Strategy.
func (*Rot) Name() string { return "rot" }

// Forget implements Strategy.
func (r *Rot) Forget(t *table.Table, n int) int {
	n = clampBudget(t, n)
	if n == 0 {
		return 0
	}
	current := int32(t.Batches() - 1)
	active := t.ActiveIndices()
	eligible := make([]int, 0, len(active))
	for _, i := range active {
		if int32(r.minAge) <= current-t.InsertBatch(i) {
			eligible = append(eligible, i)
		}
	}
	forgotten := 0
	if len(eligible) > 0 {
		k := n
		if k > len(eligible) {
			k = len(eligible)
		}
		w := make([]float64, len(eligible))
		for j, i := range eligible {
			w[j] = 1 / (1 + float64(t.AccessCount(i)))
		}
		for _, j := range weightedSampleK(r.src, w, k) {
			t.Forget(eligible[j])
		}
		forgotten = k
	}
	// High-water mark exhausted: fall back to uniform over what remains
	// so the storage budget is always met.
	if forgotten < n {
		rest := t.ActiveIndices()
		for _, k := range r.src.SampleK(n-forgotten, len(rest)) {
			t.Forget(rest[k])
		}
		forgotten = n
	}
	return forgotten
}

// Frequent is the "totally opposite approach" of §3.2's final paragraph:
// forget data that has been accessed too often, on the theory that
// anything consumed that many times has served its purpose and should be
// transformed or summarised rather than linger in results.
type Frequent struct {
	src *xrand.Source
}

// NewFrequent returns the frequent-forget strategy.
func NewFrequent(src *xrand.Source) *Frequent {
	if src == nil {
		panic("amnesia: NewFrequent with nil source")
	}
	return &Frequent{src: src}
}

// Name implements Strategy.
func (*Frequent) Name() string { return "frequent" }

// Forget implements Strategy.
func (f *Frequent) Forget(t *table.Table, n int) int {
	n = clampBudget(t, n)
	if n == 0 {
		return 0
	}
	active := t.ActiveIndices()
	w := make([]float64, len(active))
	for j, i := range active {
		w[j] = 1 + float64(t.AccessCount(i))
	}
	for _, j := range weightedSampleK(f.src, w, n) {
		t.Forget(active[j])
	}
	return n
}

// weightedSampleK draws k distinct indices from [0, len(w)) with
// probability proportional to w[i], via the Efraimidis–Spirakis exponent
// trick: each item gets key u^(1/w) and the k largest keys win. O(n log n)
// worst case; exact weights, no rejection loops.
func weightedSampleK(src *xrand.Source, w []float64, k int) []int {
	if k > len(w) {
		panic("amnesia: weightedSampleK with k > len(w)")
	}
	type kv struct {
		key float64
		idx int
	}
	keys := make([]kv, len(w))
	for i, wi := range w {
		if wi <= 0 {
			// Zero-weight items get the worst possible key but stay
			// eligible so the budget can always be met.
			keys[i] = kv{key: -1, idx: i}
			continue
		}
		u := src.Float64()
		for u == 0 {
			u = src.Float64()
		}
		keys[i] = kv{key: math.Pow(u, 1/wi), idx: i}
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a].key > keys[b].key })
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = keys[i].idx
	}
	return out
}
