package amnesia

import (
	"testing"

	"amnesiadb/internal/xrand"
)

func TestDecayRegistered(t *testing.T) {
	s, err := New("decay", "a", xrand.New(1))
	if err != nil || s.Name() != "decay" {
		t.Fatalf("New(decay) = %v, %v", s, err)
	}
}

func TestDecayPrefersOldColdTuples(t *testing.T) {
	src := xrand.New(2)
	oldCold, oldHot, fresh := 0, 0, 0
	const trials = 200
	for tr := 0; tr < trials; tr++ {
		tb := mkTable(t, 6, 50) // batches 0..5
		// Old but rehearsed: tuples 0..24 (batch 0) accessed heavily.
		for i := 0; i < 25; i++ {
			for k := 0; k < 200; k++ {
				tb.Touch(i)
			}
		}
		NewDecay(src.Split(), 2).Forget(tb, 100)
		for i := 0; i < 25; i++ {
			if !tb.IsActive(i) {
				oldHot++
			}
		}
		for i := 25; i < 100; i++ { // batches 0-1, cold
			if !tb.IsActive(i) {
				oldCold++
			}
		}
		for i := 250; i < 300; i++ { // batch 5, cold but fresh
			if !tb.IsActive(i) {
				fresh++
			}
		}
	}
	oldHotRate := float64(oldHot) / (25 * trials)
	oldColdRate := float64(oldCold) / (75 * trials)
	freshRate := float64(fresh) / (50 * trials)
	if oldColdRate < 2*oldHotRate {
		t.Fatalf("rehearsal not protective: hot=%.3f cold=%.3f", oldHotRate, oldColdRate)
	}
	if oldColdRate < 2*freshRate {
		t.Fatalf("age not decaying: oldCold=%.3f fresh=%.3f", oldColdRate, freshRate)
	}
}

func TestDecayHalfLifeControlsTemporalBias(t *testing.T) {
	// A short half-life must concentrate forgetting on old tuples far
	// more than a long one.
	bias := func(halfLife float64) float64 {
		src := xrand.New(3)
		oldN, newN := 0, 0
		for tr := 0; tr < 100; tr++ {
			tb := mkTable(t, 10, 30)
			NewDecay(src.Split(), halfLife).Forget(tb, 100)
			for i := 0; i < 150; i++ {
				if !tb.IsActive(i) {
					oldN++
				}
			}
			for i := 150; i < 300; i++ {
				if !tb.IsActive(i) {
					newN++
				}
			}
		}
		return float64(oldN) / float64(oldN+newN)
	}
	short, long := bias(0.5), bias(50)
	if short <= long {
		t.Fatalf("short half-life old-bias %.3f not above long %.3f", short, long)
	}
}

func TestDecayConstructorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"nil src":     func() { NewDecay(nil, 1) },
		"halfLife<=0": func() { NewDecay(xrand.New(1), 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
