package amnesia

import (
	"sort"
	"testing"

	"amnesiadb/internal/table"
	"amnesiadb/internal/xrand"
)

func randomValueTable(t *testing.T, n int, seed uint64) *table.Table {
	t.Helper()
	src := xrand.New(seed)
	tb := table.New("t", "a")
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = src.Int63n(100000)
	}
	if _, err := tb.AppendSingleColumn(vals); err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestAreaValueBudget(t *testing.T) {
	tb := randomValueTable(t, 1000, 1)
	a := NewAreaValue(xrand.New(2), "a", 3)
	if got := a.Forget(tb, 400); got != 400 {
		t.Fatalf("forgot %d", got)
	}
	if tb.ActiveCount() != 600 {
		t.Fatalf("active = %d", tb.ActiveCount())
	}
}

func TestAreaValueClustersInValueSpace(t *testing.T) {
	tb := randomValueTable(t, 1000, 3)
	a := NewAreaValue(xrand.New(4), "a", 3)
	a.Forget(tb, 400)
	// Sort all tuples by value and count forgotten runs in value order;
	// clustering must produce far fewer runs than the ~240 expected from
	// uniform forgetting.
	c := tb.MustColumn("a")
	type vp struct {
		v      int64
		active bool
	}
	arr := make([]vp, tb.Len())
	for i := range arr {
		arr[i] = vp{v: c.Get(i), active: tb.IsActive(i)}
	}
	sort.Slice(arr, func(i, j int) bool { return arr[i].v < arr[j].v })
	runs, inRun := 0, false
	for _, e := range arr {
		if !e.active {
			if !inRun {
				runs++
				inRun = true
			}
		} else {
			inRun = false
		}
	}
	if runs > 120 {
		t.Fatalf("value-space forgotten runs = %d; not clustered", runs)
	}
}

func TestAreaValueExtentsValid(t *testing.T) {
	tb := randomValueTable(t, 500, 5)
	a := NewAreaValue(xrand.New(6), "a", 2)
	a.Forget(tb, 100)
	areas := a.Areas()
	if len(areas) == 0 {
		t.Fatal("no areas recorded")
	}
	for _, e := range areas {
		if e[0] > e[1] {
			t.Fatalf("inverted extent %v", e)
		}
	}
}

func TestAreaValueAcrossBatchesKeepsGrowing(t *testing.T) {
	tb := randomValueTable(t, 500, 7)
	a := NewAreaValue(xrand.New(8), "a", 2)
	a.Forget(tb, 100)
	first := a.Areas()
	a.Forget(tb, 100)
	second := a.Areas()
	if len(second) == 0 {
		t.Fatal("areas vanished")
	}
	// Extents never shrink for surviving areas.
	for i := range first {
		found := false
		for j := range second {
			if second[j][0] <= first[i][0] && second[j][1] >= first[i][1] {
				found = true
				break
			}
		}
		_ = found // areas may be rotated out when K is exceeded; no hard claim
	}
}

func TestAreaValueConstructorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"nil src":   func() { NewAreaValue(nil, "a", 1) },
		"empty col": func() { NewAreaValue(xrand.New(1), "", 1) },
		"k=0":       func() { NewAreaValue(xrand.New(1), "a", 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
