// Package quantile implements the Greenwald–Khanna ε-approximate
// streaming quantile sketch. Summaries of forgotten data (§1 keeps only
// min/max/avg) can carry one of these to answer median/percentile
// queries over tuples that no longer exist, at a few hundred bytes per
// absorbed region — a middle ground between the paper's "few aggregated
// values" and its §5 micro-models.
package quantile

import (
	"fmt"
	"math"
)

// tuple is one GK summary entry: value v, gap g to the previous entry's
// minimum rank, and rank uncertainty delta.
type tuple struct {
	v     int64
	g     int64
	delta int64
}

// Sketch is an ε-approximate quantile summary: Query(phi) returns a value
// whose rank is within ε·n of phi·n. The zero value is unusable; call New.
type Sketch struct {
	eps     float64
	n       int64
	entries []tuple // sorted by v
}

// New returns a sketch with the given error bound (0 < eps < 1).
func New(eps float64) *Sketch {
	if eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("quantile: eps %v outside (0, 1)", eps))
	}
	return &Sketch{eps: eps}
}

// Count returns how many values the sketch has absorbed.
func (s *Sketch) Count() int64 { return s.n }

// Entries returns the current summary size (for space accounting; the
// GK bound is O(log(εn)/ε)).
func (s *Sketch) Entries() int { return len(s.entries) }

// SizeBytes estimates the sketch footprint: three 8-byte words per entry.
func (s *Sketch) SizeBytes() int { return len(s.entries) * 24 }

// Insert adds one value to the sketch.
func (s *Sketch) Insert(v int64) {
	// Find insertion position (first entry with value >= v).
	pos := 0
	for pos < len(s.entries) && s.entries[pos].v < v {
		pos++
	}
	var delta int64
	if pos > 0 && pos < len(s.entries) {
		delta = int64(2*s.eps*float64(s.n)) - 1
		if delta < 0 {
			delta = 0
		}
	}
	s.entries = append(s.entries, tuple{})
	copy(s.entries[pos+1:], s.entries[pos:])
	s.entries[pos] = tuple{v: v, g: 1, delta: delta}
	s.n++
	if s.n%int64(1/(2*s.eps)) == 0 {
		s.compress()
	}
}

// compress merges adjacent entries whose combined uncertainty stays
// within the 2εn band.
func (s *Sketch) compress() {
	if len(s.entries) < 3 {
		return
	}
	limit := int64(2 * s.eps * float64(s.n))
	out := s.entries[:1]
	for i := 1; i < len(s.entries)-1; i++ {
		e := s.entries[i]
		next := &s.entries[i+1]
		if e.g+next.g+next.delta <= limit {
			next.g += e.g
			continue
		}
		out = append(out, e)
	}
	out = append(out, s.entries[len(s.entries)-1])
	s.entries = out
}

// Query returns a value whose rank is within ε·n of phi·n, for
// phi ∈ [0, 1]. It returns an error when the sketch is empty.
func (s *Sketch) Query(phi float64) (int64, error) {
	if s.n == 0 {
		return 0, fmt.Errorf("quantile: empty sketch")
	}
	if phi < 0 {
		phi = 0
	}
	if phi > 1 {
		phi = 1
	}
	target := int64(math.Ceil(phi * float64(s.n)))
	bound := int64(math.Ceil(s.eps * float64(s.n)))
	var rmin int64
	for i, e := range s.entries {
		rmin += e.g
		rmax := rmin + e.delta
		if target-rmin <= bound && rmax-target <= bound {
			return e.v, nil
		}
		_ = i
	}
	return s.entries[len(s.entries)-1].v, nil
}

// Median is Query(0.5).
func (s *Sketch) Median() (int64, error) { return s.Query(0.5) }
