package quantile

import (
	"sort"
	"testing"

	"amnesiadb/internal/xrand"
)

// exactRank returns the true rank (1-based) of value v in sorted vals.
func checkQuantiles(t *testing.T, s *Sketch, vals []int64, eps float64) {
	t.Helper()
	sorted := append([]int64(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	n := float64(len(sorted))
	for _, phi := range []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		got, err := s.Query(phi)
		if err != nil {
			t.Fatal(err)
		}
		// rank of got in sorted data
		lo := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= got })
		hi := sort.Search(len(sorted), func(i int) bool { return sorted[i] > got })
		target := phi * n
		slack := eps*n + 1
		if float64(hi) < target-slack || float64(lo) > target+slack {
			t.Fatalf("phi=%.2f: value %d has rank [%d,%d], want within %.0f of %.0f",
				phi, got, lo, hi, slack, target)
		}
	}
}

func TestSketchUniform(t *testing.T) {
	src := xrand.New(1)
	s := New(0.01)
	vals := make([]int64, 20000)
	for i := range vals {
		vals[i] = src.Int63n(1 << 30)
		s.Insert(vals[i])
	}
	checkQuantiles(t, s, vals, 0.01)
}

func TestSketchSorted(t *testing.T) {
	s := New(0.01)
	vals := make([]int64, 10000)
	for i := range vals {
		vals[i] = int64(i)
		s.Insert(vals[i])
	}
	checkQuantiles(t, s, vals, 0.01)
}

func TestSketchReverseSorted(t *testing.T) {
	s := New(0.01)
	var vals []int64
	for i := 9999; i >= 0; i-- {
		vals = append(vals, int64(i))
		s.Insert(int64(i))
	}
	checkQuantiles(t, s, vals, 0.01)
}

func TestSketchSkewed(t *testing.T) {
	src := xrand.New(2)
	z := xrand.NewZipf(src, 1000, 1.1)
	s := New(0.02)
	vals := make([]int64, 20000)
	for i := range vals {
		vals[i] = int64(z.Next())
		s.Insert(vals[i])
	}
	checkQuantiles(t, s, vals, 0.02)
}

func TestSketchDuplicates(t *testing.T) {
	s := New(0.01)
	vals := make([]int64, 5000)
	for i := range vals {
		vals[i] = int64(i % 3)
		s.Insert(vals[i])
	}
	checkQuantiles(t, s, vals, 0.01)
}

func TestSketchCompressBoundsSpace(t *testing.T) {
	src := xrand.New(3)
	s := New(0.01)
	for i := 0; i < 100000; i++ {
		s.Insert(src.Int63n(1 << 40))
	}
	// GK space is O(log(eps*n)/eps); allow a generous constant.
	if s.Entries() > 4000 {
		t.Fatalf("sketch grew to %d entries for 100k inserts", s.Entries())
	}
	if s.SizeBytes() != s.Entries()*24 {
		t.Fatal("size accounting wrong")
	}
	if s.Count() != 100000 {
		t.Fatalf("count = %d", s.Count())
	}
}

func TestEmptySketch(t *testing.T) {
	s := New(0.01)
	if _, err := s.Query(0.5); err == nil {
		t.Fatal("empty query succeeded")
	}
}

func TestMedianSmall(t *testing.T) {
	s := New(0.1)
	for _, v := range []int64{5, 1, 9, 3, 7} {
		s.Insert(v)
	}
	m, err := s.Median()
	if err != nil {
		t.Fatal(err)
	}
	if m < 3 || m > 7 {
		t.Fatalf("median of {1,3,5,7,9} = %d", m)
	}
}

func TestPhiClamping(t *testing.T) {
	s := New(0.1)
	s.Insert(42)
	for _, phi := range []float64{-1, 0, 1, 2} {
		if v, err := s.Query(phi); err != nil || v != 42 {
			t.Fatalf("Query(%v) = %d, %v", phi, v, err)
		}
	}
}

func TestNewPanics(t *testing.T) {
	for _, eps := range []float64{0, 1, -0.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("eps=%v did not panic", eps)
				}
			}()
			New(eps)
		}()
	}
}

func BenchmarkInsert(b *testing.B) {
	src := xrand.New(1)
	s := New(0.01)
	for i := 0; i < b.N; i++ {
		s.Insert(src.Int63n(1 << 40))
	}
}
