package histogram

import (
	"math"
	"testing"
	"testing/quick"

	"amnesiadb/internal/xrand"
)

func TestAddCountFraction(t *testing.T) {
	h := New(4, 99) // buckets of width 25
	h.Add(0)
	h.Add(24)
	h.Add(25)
	h.Add(99)
	if h.Total() != 4 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Count(0) != 2 || h.Count(1) != 1 || h.Count(3) != 1 {
		t.Fatalf("counts = %d %d %d %d", h.Count(0), h.Count(1), h.Count(2), h.Count(3))
	}
	if h.Fraction(0) != 0.5 {
		t.Fatalf("fraction = %v", h.Fraction(0))
	}
}

func TestClamping(t *testing.T) {
	h := New(4, 99)
	h.Add(-5)
	h.Add(1000)
	if h.Count(0) != 1 || h.Count(3) != 1 {
		t.Fatal("clamping wrong")
	}
}

func TestRemove(t *testing.T) {
	h := New(2, 9)
	h.Add(3)
	h.Remove(3)
	if h.Total() != 0 || h.Count(0) != 0 {
		t.Fatal("remove failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("removing from empty bin did not panic")
		}
	}()
	h.Remove(3)
}

func TestConstructorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"bins=0":  func() { New(0, 10) },
		"max=-1":  func() { New(4, -1) },
		"binMism": func() { New(4, 10).TVDistance(New(5, 10)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestDistancesIdentical(t *testing.T) {
	src := xrand.New(1)
	h := New(16, 999)
	for i := 0; i < 10000; i++ {
		h.Add(src.Int63n(1000))
	}
	o := h.Clone()
	if d := h.TVDistance(o); d != 0 {
		t.Fatalf("TV distance of identical = %v", d)
	}
	if d := h.KSStatistic(o); d != 0 {
		t.Fatalf("KS of identical = %v", d)
	}
}

func TestDistancesDisjoint(t *testing.T) {
	a, b := New(4, 99), New(4, 99)
	a.Add(0)
	b.Add(99)
	if d := a.TVDistance(b); math.Abs(d-1) > 1e-12 {
		t.Fatalf("TV of disjoint = %v", d)
	}
	if d := a.KSStatistic(b); math.Abs(d-1) > 1e-12 {
		t.Fatalf("KS of disjoint = %v", d)
	}
}

func TestTVDistanceOrdersDrift(t *testing.T) {
	// A sample missing 40% of one mode must be further from the truth
	// than a sample missing 10%.
	src := xrand.New(2)
	truth := New(8, 999)
	mild := New(8, 999)
	severe := New(8, 999)
	for i := 0; i < 50000; i++ {
		v := src.Int63n(1000)
		truth.Add(v)
		low := v < 500
		if !low || src.Bool(0.9) {
			mild.Add(v)
		}
		if !low || src.Bool(0.6) {
			severe.Add(v)
		}
	}
	if truth.TVDistance(severe) <= truth.TVDistance(mild) {
		t.Fatalf("TV ordering broken: severe %v <= mild %v",
			truth.TVDistance(severe), truth.TVDistance(mild))
	}
}

func TestChiSquareZeroForProportionalSample(t *testing.T) {
	truth := New(4, 99)
	sample := New(4, 99)
	for b := 0; b < 100; b++ {
		truth.Add(int64(b))
		truth.Add(int64(b))
		sample.Add(int64(b)) // exactly half of every bucket
	}
	if x := sample.ChiSquare(truth); x > 1e-9 {
		t.Fatalf("proportional sample chi2 = %v", x)
	}
}

func TestFromValues(t *testing.T) {
	h := FromValues([]int64{0, 10, 20, 30}, 4)
	if h.Total() != 4 || h.Bins() != 4 {
		t.Fatalf("h = %+v", h)
	}
	empty := FromValues(nil, 4)
	if empty.Total() != 0 {
		t.Fatal("empty FromValues wrong")
	}
}

func TestPropertyDistanceBoundsAndSymmetry(t *testing.T) {
	f := func(aRaw, bRaw []uint16) bool {
		a, b := New(8, 1<<16), New(8, 1<<16)
		for _, v := range aRaw {
			a.Add(int64(v))
		}
		for _, v := range bRaw {
			b.Add(int64(v))
		}
		tv, ks := a.TVDistance(b), a.KSStatistic(b)
		if tv < 0 || tv > 1+1e-12 || ks < 0 || ks > 1+1e-12 {
			return false
		}
		return math.Abs(tv-b.TVDistance(a)) < 1e-12 &&
			math.Abs(ks-b.KSStatistic(a)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
