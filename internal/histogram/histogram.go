// Package histogram provides equi-width histograms and the
// distribution-distance measures amnesiadb uses to quantify how far an
// amnesiac active set has drifted from the full data distribution — the
// concern behind §4.4's "we attempt to forget tuples that do not change
// the data distribution for all active records" and the paper's remark
// that the data distribution itself evolves as tuples are ingested and
// forgotten.
package histogram

import (
	"fmt"
	"math"
)

// Hist is a fixed-bucket equi-width histogram over [0, max].
type Hist struct {
	counts []int64
	total  int64
	width  float64
	max    int64
}

// New returns a histogram with buckets bins over the value range
// [0, max]. It panics if bins < 1 or max < 0.
func New(bins int, max int64) *Hist {
	if bins < 1 {
		panic("histogram: need at least one bin")
	}
	if max < 0 {
		panic("histogram: negative max")
	}
	return &Hist{
		counts: make([]int64, bins),
		width:  float64(max+1) / float64(bins),
		max:    max,
	}
}

// FromValues builds a histogram of vals with the given bin count; the
// range is [0, max(vals)] (or [0,0] for empty input).
func FromValues(vals []int64, bins int) *Hist {
	var max int64
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	h := New(bins, max)
	for _, v := range vals {
		h.Add(v)
	}
	return h
}

// Bins returns the bucket count.
func (h *Hist) Bins() int { return len(h.counts) }

// Total returns the number of values added.
func (h *Hist) Total() int64 { return h.total }

// Add counts one value. Values outside [0, max] clamp to the edge
// buckets.
func (h *Hist) Add(v int64) {
	h.counts[h.bin(v)]++
	h.total++
}

// Remove un-counts a previously added value; it panics if the bucket is
// already empty (a sign the caller's bookkeeping broke).
func (h *Hist) Remove(v int64) {
	b := h.bin(v)
	if h.counts[b] == 0 {
		panic(fmt.Sprintf("histogram: removing from empty bin %d", b))
	}
	h.counts[b]--
	h.total--
}

func (h *Hist) bin(v int64) int {
	if v < 0 {
		return 0
	}
	b := int(float64(v) / h.width)
	if b >= len(h.counts) {
		b = len(h.counts) - 1
	}
	return b
}

// Count returns bucket b's tally.
func (h *Hist) Count(b int) int64 { return h.counts[b] }

// Fraction returns bucket b's share of the mass, 0 for an empty
// histogram.
func (h *Hist) Fraction(b int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[b]) / float64(h.total)
}

// sameShape panics unless the two histograms are comparable.
func (h *Hist) sameShape(o *Hist) {
	if len(h.counts) != len(o.counts) {
		panic(fmt.Sprintf("histogram: bin mismatch %d vs %d", len(h.counts), len(o.counts)))
	}
}

// TVDistance returns the total-variation distance between the two
// normalised histograms: ½·Σ|p_i − q_i| ∈ [0, 1]. 0 means identical
// shapes, 1 disjoint support.
func (h *Hist) TVDistance(o *Hist) float64 {
	h.sameShape(o)
	var d float64
	for b := range h.counts {
		d += math.Abs(h.Fraction(b) - o.Fraction(b))
	}
	return d / 2
}

// ChiSquare returns Pearson's chi-square statistic of h against the
// expected shape of o, scaled by h's total. Buckets empty in o are
// skipped (no expectation).
func (h *Hist) ChiSquare(o *Hist) float64 {
	h.sameShape(o)
	var x float64
	for b := range h.counts {
		exp := o.Fraction(b) * float64(h.total)
		if exp == 0 {
			continue
		}
		d := float64(h.counts[b]) - exp
		x += d * d / exp
	}
	return x
}

// KSStatistic returns the Kolmogorov–Smirnov statistic (max CDF gap)
// between the two normalised histograms, ∈ [0, 1].
func (h *Hist) KSStatistic(o *Hist) float64 {
	h.sameShape(o)
	var cdfH, cdfO, max float64
	for b := range h.counts {
		cdfH += h.Fraction(b)
		cdfO += o.Fraction(b)
		if d := math.Abs(cdfH - cdfO); d > max {
			max = d
		}
	}
	return max
}

// Clone returns a deep copy.
func (h *Hist) Clone() *Hist {
	c := &Hist{counts: make([]int64, len(h.counts)), total: h.total, width: h.width, max: h.max}
	copy(c.counts, h.counts)
	return c
}
