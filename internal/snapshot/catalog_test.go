package snapshot

import (
	"bytes"
	"errors"
	"testing"

	"amnesiadb/internal/table"
)

// buildCatalog assembles a namespace with the awkward cases: a flat
// table carrying forgotten tuples and nonzero access counts (in-flight
// decay state), a multi-batch table, and a partition set with adapted
// per-shard budgets and a forgotten tuple inside one shard.
func buildCatalog(t *testing.T) *Catalog {
	t.Helper()
	ev := table.New("events", "ts", "v")
	if _, err := ev.AppendBatch(map[string][]int64{"ts": {1, 2, 3}, "v": {10, 20, 30}}); err != nil {
		t.Fatal(err)
	}
	if _, err := ev.AppendBatch(map[string][]int64{"ts": {4, 5}, "v": {40, 50}}); err != nil {
		t.Fatal(err)
	}
	ev.Forget(1)
	ev.Forget(3)
	ev.Touch(0)
	ev.Touch(0)
	ev.Touch(4)

	s0 := table.New("metrics/p0", "m")
	if _, err := s0.AppendSingleColumn([]int64{5, 6, 7}); err != nil {
		t.Fatal(err)
	}
	s0.Forget(2)
	s1 := table.New("metrics/p1", "m")
	if _, err := s1.AppendSingleColumn([]int64{600}); err != nil {
		t.Fatal(err)
	}

	return &Catalog{
		Tables: []TableEntry{{
			Table:  ev,
			Policy: Policy{Strategy: "lru", Budget: 4, Column: "v", MaxAgeBatches: 9},
		}},
		Parts: []PartEntry{{
			Name: "metrics", Column: "m", Strategy: "fifo", Domain: 1000,
			Shards: []ShardEntry{
				{Lo: 0, Hi: 500, Budget: 70, Table: s0},
				{Lo: 500, Hi: 1000, Budget: 30, Table: s1},
			},
		}},
	}
}

func sameTable(t *testing.T, got, want *table.Table) {
	t.Helper()
	if got.Name() != want.Name() {
		t.Fatalf("name %q != %q", got.Name(), want.Name())
	}
	if got.Len() != want.Len() || got.Batches() != want.Batches() {
		t.Fatalf("%s: shape (%d,%d) != (%d,%d)", want.Name(), got.Len(), got.Batches(), want.Len(), want.Batches())
	}
	for _, col := range want.Columns() {
		g, w := got.MustColumn(col).Values(), want.MustColumn(col).Values()
		for i := range w {
			if g[i] != w[i] {
				t.Fatalf("%s.%s[%d] = %d, want %d", want.Name(), col, i, g[i], w[i])
			}
		}
	}
	for i := 0; i < want.Len(); i++ {
		if got.IsActive(i) != want.IsActive(i) {
			t.Fatalf("%s: active bit %d diverged", want.Name(), i)
		}
		if got.InsertBatch(i) != want.InsertBatch(i) {
			t.Fatalf("%s: batch id %d diverged", want.Name(), i)
		}
		if got.AccessCount(i) != want.AccessCount(i) {
			t.Fatalf("%s: access count %d diverged", want.Name(), i)
		}
	}
}

func TestCatalogRoundTrip(t *testing.T) {
	want := buildCatalog(t)
	var buf bytes.Buffer
	if err := WriteCatalog(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCatalog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Tables) != 1 || len(got.Parts) != 1 {
		t.Fatalf("catalog shape: %d tables, %d parts", len(got.Tables), len(got.Parts))
	}
	sameTable(t, got.Tables[0].Table, want.Tables[0].Table)
	if got.Tables[0].Policy != want.Tables[0].Policy {
		t.Fatalf("policy diverged: %+v != %+v", got.Tables[0].Policy, want.Tables[0].Policy)
	}
	gp, wp := got.Parts[0], want.Parts[0]
	if gp.Name != wp.Name || gp.Column != wp.Column || gp.Strategy != wp.Strategy || gp.Domain != wp.Domain {
		t.Fatalf("part header diverged: %+v", gp)
	}
	if len(gp.Shards) != len(wp.Shards) {
		t.Fatalf("shard count %d != %d", len(gp.Shards), len(wp.Shards))
	}
	for i := range wp.Shards {
		if gp.Shards[i].Lo != wp.Shards[i].Lo || gp.Shards[i].Hi != wp.Shards[i].Hi || gp.Shards[i].Budget != wp.Shards[i].Budget {
			t.Fatalf("shard %d bounds/budget diverged: %+v", i, gp.Shards[i])
		}
		sameTable(t, gp.Shards[i].Table, wp.Shards[i].Table)
	}
}

func TestCatalogCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCatalog(&buf, buildCatalog(t)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Flip a body byte well past the header: the section CRC must trip.
	flip := append([]byte(nil), raw...)
	flip[len(flip)/2] ^= 0x01
	if _, err := ReadCatalog(bytes.NewReader(flip)); !errors.Is(err, ErrCatalogCorrupt) {
		t.Fatalf("bit flip: got %v, want ErrCatalogCorrupt", err)
	}

	// Truncation at any point is corruption (snapshots are atomic files,
	// unlike the WAL there is no clean-crash-boundary reading).
	for _, cut := range []int{0, 5, 24, len(raw) / 3, len(raw) - 1} {
		if _, err := ReadCatalog(bytes.NewReader(raw[:cut])); !errors.Is(err, ErrCatalogCorrupt) {
			t.Fatalf("cut %d: got %v, want ErrCatalogCorrupt", cut, err)
		}
	}

	// Bad magic.
	bad := append([]byte(nil), raw...)
	bad[0] ^= 0xff
	if _, err := ReadCatalog(bytes.NewReader(bad)); !errors.Is(err, ErrCatalogCorrupt) {
		t.Fatalf("bad magic: got %v, want ErrCatalogCorrupt", err)
	}
}
