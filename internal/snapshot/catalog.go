package snapshot

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"amnesiadb/internal/table"
)

// Catalog snapshots cover the whole namespace — every flat table and
// every partition set, with the policy and budget state that the WAL's
// amnesia records assume — so recovery can restore one file and replay
// the log tail. Layout: a header (magic, version, section count)
// followed by self-delimiting sections, each kind-tagged,
// length-prefixed, and closed by a CRC-32 of its body so a torn or
// bit-rotted snapshot is detected section-by-section and recovery can
// fall back to the previous generation.
const (
	catalogMagic   = 0x414d4e43 // "AMNC"
	catalogVersion = 1

	sectionTable = 1
	sectionPart  = 2
)

// ErrCatalogCorrupt reports a snapshot that fails validation — bad
// magic, bad CRC, or an undecodable section. Recovery treats it as
// "try the previous generation".
var ErrCatalogCorrupt = errors.New("snapshot: corrupt catalog")

// Policy is the decay policy attached to a flat table, recorded so a
// restored table keeps forgetting the way it was told to.
type Policy struct {
	Strategy      string
	Budget        int
	Column        string
	MaxAgeBatches int
}

// TableEntry is one flat table plus its policy.
type TableEntry struct {
	Table  *table.Table
	Policy Policy
}

// ShardEntry is one partition of a set: its key range, its current
// (possibly adapted) budget, and its tuple store.
type ShardEntry struct {
	Lo, Hi int64
	Budget int
	Table  *table.Table
}

// PartEntry is one partition set.
type PartEntry struct {
	Name     string
	Column   string
	Strategy string
	Domain   int64
	Shards   []ShardEntry
}

// Catalog is the full namespace a snapshot captures.
type Catalog struct {
	Tables []TableEntry
	Parts  []PartEntry
}

// WriteCatalog serialises the catalog.
func WriteCatalog(w io.Writer, c *Catalog) error {
	bw := bufio.NewWriter(w)
	for _, v := range []uint64{catalogMagic, catalogVersion, uint64(len(c.Tables) + len(c.Parts))} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	var body bytes.Buffer
	for _, te := range c.Tables {
		body.Reset()
		if err := encodeTableSection(&body, te); err != nil {
			return err
		}
		if err := writeSection(bw, sectionTable, body.Bytes()); err != nil {
			return err
		}
	}
	for _, pe := range c.Parts {
		body.Reset()
		if err := encodePartSection(&body, pe); err != nil {
			return err
		}
		if err := writeSection(bw, sectionPart, body.Bytes()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeSection(w io.Writer, kind byte, body []byte) error {
	if _, err := w.Write([]byte{kind}); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(len(body))); err != nil {
		return err
	}
	if _, err := w.Write(body); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, crc32.ChecksumIEEE(body))
}

func encodeTableSection(w io.Writer, te TableEntry) error {
	if err := writeString(w, te.Policy.Strategy); err != nil {
		return err
	}
	if err := writeString(w, te.Policy.Column); err != nil {
		return err
	}
	for _, v := range []uint64{uint64(te.Policy.Budget), uint64(te.Policy.MaxAgeBatches)} {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	var tbl bytes.Buffer
	if err := Write(&tbl, te.Table); err != nil {
		return err
	}
	return writeBytes(w, tbl.Bytes())
}

func encodePartSection(w io.Writer, pe PartEntry) error {
	for _, s := range []string{pe.Name, pe.Column, pe.Strategy} {
		if err := writeString(w, s); err != nil {
			return err
		}
	}
	for _, v := range []uint64{uint64(pe.Domain), uint64(len(pe.Shards))} {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, sh := range pe.Shards {
		for _, v := range []uint64{uint64(sh.Lo), uint64(sh.Hi), uint64(sh.Budget)} {
			if err := binary.Write(w, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		var tbl bytes.Buffer
		if err := Write(&tbl, sh.Table); err != nil {
			return err
		}
		if err := writeBytes(w, tbl.Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// ReadCatalog restores a catalog written by WriteCatalog. Any
// validation failure — truncation included, since a snapshot is
// written whole and fsynced before its manifest entry — reports
// ErrCatalogCorrupt.
func ReadCatalog(r io.Reader) (*Catalog, error) {
	br := bufio.NewReader(r)
	var hdr [3]uint64
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("%w: short header: %v", ErrCatalogCorrupt, err)
		}
	}
	if hdr[0] != catalogMagic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrCatalogCorrupt, hdr[0])
	}
	if hdr[1] != catalogVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCatalogCorrupt, hdr[1])
	}
	nSections := int(hdr[2])
	if nSections < 0 || nSections > 1<<24 {
		return nil, fmt.Errorf("%w: implausible section count %d", ErrCatalogCorrupt, nSections)
	}
	var c Catalog
	for i := 0; i < nSections; i++ {
		kind, body, err := readSection(br)
		if err != nil {
			return nil, err
		}
		switch kind {
		case sectionTable:
			te, err := decodeTableSection(bytes.NewReader(body))
			if err != nil {
				return nil, err
			}
			c.Tables = append(c.Tables, te)
		case sectionPart:
			pe, err := decodePartSection(bytes.NewReader(body))
			if err != nil {
				return nil, err
			}
			c.Parts = append(c.Parts, pe)
		default:
			return nil, fmt.Errorf("%w: unknown section kind %d", ErrCatalogCorrupt, kind)
		}
	}
	return &c, nil
}

func readSection(r io.Reader) (byte, []byte, error) {
	var kind [1]byte
	if _, err := io.ReadFull(r, kind[:]); err != nil {
		return 0, nil, fmt.Errorf("%w: short section kind: %v", ErrCatalogCorrupt, err)
	}
	var n uint64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return 0, nil, fmt.Errorf("%w: short section length: %v", ErrCatalogCorrupt, err)
	}
	if n > 1<<33 {
		return 0, nil, fmt.Errorf("%w: implausible section length %d", ErrCatalogCorrupt, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, fmt.Errorf("%w: short section body: %v", ErrCatalogCorrupt, err)
	}
	var sum uint32
	if err := binary.Read(r, binary.LittleEndian, &sum); err != nil {
		return 0, nil, fmt.Errorf("%w: short section crc: %v", ErrCatalogCorrupt, err)
	}
	if sum != crc32.ChecksumIEEE(body) {
		return 0, nil, fmt.Errorf("%w: section crc mismatch", ErrCatalogCorrupt)
	}
	return kind[0], body, nil
}

func decodeTableSection(r io.Reader) (TableEntry, error) {
	var te TableEntry
	var err error
	if te.Policy.Strategy, err = readString(r); err != nil {
		return te, fmt.Errorf("%w: %v", ErrCatalogCorrupt, err)
	}
	if te.Policy.Column, err = readString(r); err != nil {
		return te, fmt.Errorf("%w: %v", ErrCatalogCorrupt, err)
	}
	var nums [2]uint64
	for i := range nums {
		if err := binary.Read(r, binary.LittleEndian, &nums[i]); err != nil {
			return te, fmt.Errorf("%w: short policy: %v", ErrCatalogCorrupt, err)
		}
	}
	te.Policy.Budget, te.Policy.MaxAgeBatches = int(nums[0]), int(nums[1])
	tblBytes, err := readBytes(r)
	if err != nil {
		return te, fmt.Errorf("%w: %v", ErrCatalogCorrupt, err)
	}
	if te.Table, err = Read(bytes.NewReader(tblBytes)); err != nil {
		return te, fmt.Errorf("%w: %v", ErrCatalogCorrupt, err)
	}
	return te, nil
}

func decodePartSection(r io.Reader) (PartEntry, error) {
	var pe PartEntry
	var err error
	for _, dst := range []*string{&pe.Name, &pe.Column, &pe.Strategy} {
		if *dst, err = readString(r); err != nil {
			return pe, fmt.Errorf("%w: %v", ErrCatalogCorrupt, err)
		}
	}
	var nums [2]uint64
	for i := range nums {
		if err := binary.Read(r, binary.LittleEndian, &nums[i]); err != nil {
			return pe, fmt.Errorf("%w: short part header: %v", ErrCatalogCorrupt, err)
		}
	}
	pe.Domain = int64(nums[0])
	nShards := int(nums[1])
	if nShards <= 0 || nShards > 1<<16 {
		return pe, fmt.Errorf("%w: implausible shard count %d", ErrCatalogCorrupt, nShards)
	}
	for s := 0; s < nShards; s++ {
		var hdr [3]uint64
		for i := range hdr {
			if err := binary.Read(r, binary.LittleEndian, &hdr[i]); err != nil {
				return pe, fmt.Errorf("%w: short shard header: %v", ErrCatalogCorrupt, err)
			}
		}
		tblBytes, err := readBytes(r)
		if err != nil {
			return pe, fmt.Errorf("%w: %v", ErrCatalogCorrupt, err)
		}
		tbl, err := Read(bytes.NewReader(tblBytes))
		if err != nil {
			return pe, fmt.Errorf("%w: %v", ErrCatalogCorrupt, err)
		}
		pe.Shards = append(pe.Shards, ShardEntry{
			Lo: int64(hdr[0]), Hi: int64(hdr[1]), Budget: int(hdr[2]), Table: tbl,
		})
	}
	return pe, nil
}
