// Package snapshot persists table state to an io.Writer and restores it,
// the mechanism behind §5's "recover a backup version of the database from
// cold storage explicitly". The format is a versioned little-endian binary
// layout: header, schema, per-column values (compressed with the Auto
// codec), and the tuple metadata (active bitmap, insert batches, access
// counts) — everything a strategy needs survives the round trip.
package snapshot

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"amnesiadb/internal/compress"
	"amnesiadb/internal/table"
)

// magic identifies snapshot streams; version gates layout changes.
const (
	magic   = 0x414d4e53 // "AMNS"
	version = 1
)

// Write serialises t.
func Write(w io.Writer, t *table.Table) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, t); err != nil {
		return err
	}
	cols := t.Columns()
	codec := compress.Auto{}
	for _, name := range cols {
		c := t.MustColumn(name)
		if err := writeString(bw, name); err != nil {
			return err
		}
		enc := codec.Compress(nil, c.Values())
		if err := writeBytes(bw, enc); err != nil {
			return err
		}
	}
	// Tuple metadata.
	n := t.Len()
	activeBits := make([]byte, (n+7)/8)
	for i := 0; i < n; i++ {
		if t.IsActive(i) {
			activeBits[i/8] |= 1 << (i % 8)
		}
	}
	if err := writeBytes(bw, activeBits); err != nil {
		return err
	}
	batches := make([]int64, n)
	access := make([]int64, n)
	for i := 0; i < n; i++ {
		batches[i] = int64(t.InsertBatch(i))
		access[i] = int64(t.AccessCount(i))
	}
	if err := writeBytes(bw, codec.Compress(nil, batches)); err != nil {
		return err
	}
	if err := writeBytes(bw, codec.Compress(nil, access)); err != nil {
		return err
	}
	return bw.Flush()
}

func writeHeader(w io.Writer, t *table.Table) error {
	for _, v := range []uint64{magic, version, uint64(t.Len()), uint64(t.Batches()), uint64(len(t.Columns()))} {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return writeString(w, t.Name())
}

func writeString(w io.Writer, s string) error { return writeBytes(w, []byte(s)) }

func writeBytes(w io.Writer, b []byte) error {
	if err := binary.Write(w, binary.LittleEndian, uint64(len(b))); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

// Read restores a table previously serialised by Write.
func Read(r io.Reader) (*table.Table, error) {
	br := bufio.NewReader(r)
	var hdr [5]uint64
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("snapshot: short header: %w", err)
		}
	}
	if hdr[0] != magic {
		return nil, fmt.Errorf("snapshot: bad magic %#x", hdr[0])
	}
	if hdr[1] != version {
		return nil, fmt.Errorf("snapshot: unsupported version %d", hdr[1])
	}
	n, nBatches, nCols := int(hdr[2]), int(hdr[3]), int(hdr[4])
	name, err := readString(br)
	if err != nil {
		return nil, err
	}

	codec := compress.Auto{}
	colNames := make([]string, nCols)
	colVals := make([][]int64, nCols)
	for i := 0; i < nCols; i++ {
		colNames[i], err = readString(br)
		if err != nil {
			return nil, err
		}
		enc, err := readBytes(br)
		if err != nil {
			return nil, err
		}
		colVals[i], err = codec.Decompress(nil, enc)
		if err != nil {
			return nil, err
		}
		if len(colVals[i]) != n {
			return nil, fmt.Errorf("snapshot: column %q has %d values, header says %d", colNames[i], len(colVals[i]), n)
		}
	}
	activeBits, err := readBytes(br)
	if err != nil {
		return nil, err
	}
	if len(activeBits) != (n+7)/8 {
		return nil, fmt.Errorf("snapshot: active bitmap %d bytes for %d tuples", len(activeBits), n)
	}
	batchEnc, err := readBytes(br)
	if err != nil {
		return nil, err
	}
	batches, err := codec.Decompress(nil, batchEnc)
	if err != nil {
		return nil, err
	}
	accessEnc, err := readBytes(br)
	if err != nil {
		return nil, err
	}
	access, err := codec.Decompress(nil, accessEnc)
	if err != nil {
		return nil, err
	}
	if len(batches) != n || len(access) != n {
		return nil, fmt.Errorf("snapshot: metadata length mismatch")
	}

	// Rebuild: replay batch by batch so insert-batch ids and the batch
	// counter come out identical.
	t := table.New(name, colNames...)
	start := 0
	for b := 0; b < nBatches; b++ {
		end := start
		for end < n && batches[end] == int64(b) {
			end++
		}
		vals := make(map[string][]int64, nCols)
		for ci, cn := range colNames {
			vals[cn] = colVals[ci][start:end]
		}
		if _, err := t.AppendBatch(vals); err != nil {
			return nil, err
		}
		start = end
	}
	if start != n {
		return nil, fmt.Errorf("snapshot: batch ids do not partition the tuples (replayed %d of %d)", start, n)
	}
	for i := 0; i < n; i++ {
		if activeBits[i/8]&(1<<(i%8)) == 0 {
			t.Forget(i)
		}
		for k := int64(0); k < access[i]; k++ {
			t.Touch(i)
		}
	}
	return t, nil
}

func readString(r io.Reader) (string, error) {
	b, err := readBytes(r)
	return string(b), err
}

func readBytes(r io.Reader) ([]byte, error) {
	var n uint64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("snapshot: short length: %w", err)
	}
	if n > 1<<33 {
		return nil, fmt.Errorf("snapshot: implausible field length %d", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, fmt.Errorf("snapshot: short field: %w", err)
	}
	return b, nil
}
