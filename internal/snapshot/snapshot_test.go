package snapshot

import (
	"bytes"
	"testing"

	"amnesiadb/internal/table"
	"amnesiadb/internal/xrand"
)

func buildTable(t *testing.T) *table.Table {
	t.Helper()
	src := xrand.New(1)
	tb := table.New("events", "ts", "val")
	for b := 0; b < 5; b++ {
		n := 100 + b*10
		ts := make([]int64, n)
		val := make([]int64, n)
		for i := range ts {
			ts[i] = int64(b*1000 + i)
			val[i] = src.Int63n(10000)
		}
		if _, err := tb.AppendBatch(map[string][]int64{"ts": ts, "val": val}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < tb.Len(); i += 3 {
		tb.Forget(i)
	}
	for i := 0; i < 50; i++ {
		tb.Touch(i)
		tb.Touch(i)
	}
	return tb
}

func roundTrip(t *testing.T, tb *table.Table) *table.Table {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, tb); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return back
}

func TestRoundTripPreservesEverything(t *testing.T) {
	tb := buildTable(t)
	back := roundTrip(t, tb)

	if back.Name() != tb.Name() {
		t.Fatalf("name = %q", back.Name())
	}
	if back.Len() != tb.Len() || back.Batches() != tb.Batches() {
		t.Fatalf("len=%d batches=%d, want %d/%d", back.Len(), back.Batches(), tb.Len(), tb.Batches())
	}
	cols := tb.Columns()
	bcols := back.Columns()
	if len(cols) != len(bcols) {
		t.Fatalf("columns = %v", bcols)
	}
	for ci, cn := range cols {
		if bcols[ci] != cn {
			t.Fatalf("column %d = %q, want %q", ci, bcols[ci], cn)
		}
		a, b := tb.MustColumn(cn), back.MustColumn(cn)
		for i := 0; i < tb.Len(); i++ {
			if a.Get(i) != b.Get(i) {
				t.Fatalf("column %s row %d: %d vs %d", cn, i, b.Get(i), a.Get(i))
			}
		}
	}
	for i := 0; i < tb.Len(); i++ {
		if tb.IsActive(i) != back.IsActive(i) {
			t.Fatalf("active bit %d differs", i)
		}
		if tb.InsertBatch(i) != back.InsertBatch(i) {
			t.Fatalf("insert batch %d differs", i)
		}
		if tb.AccessCount(i) != back.AccessCount(i) {
			t.Fatalf("access count %d: %d vs %d", i, back.AccessCount(i), tb.AccessCount(i))
		}
	}
}

func TestRoundTripEmptyBatch(t *testing.T) {
	// A zero-tuple batch still advances the batch counter; the snapshot
	// must replay it so later insert-batch ids line up.
	tb := table.New("t", "a")
	if _, err := tb.AppendSingleColumn(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.AppendSingleColumn([]int64{7}); err != nil {
		t.Fatal(err)
	}
	back := roundTrip(t, tb)
	if back.Batches() != 2 {
		t.Fatalf("batches = %d, want 2", back.Batches())
	}
	if back.InsertBatch(0) != 1 {
		t.Fatalf("insert batch = %d, want 1", back.InsertBatch(0))
	}
}

func TestRoundTripEmptyTable(t *testing.T) {
	tb := table.New("empty", "a")
	back := roundTrip(t, tb)
	if back.Len() != 0 || back.Name() != "empty" {
		t.Fatalf("empty round trip: len=%d name=%q", back.Len(), back.Name())
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a snapshot at all........"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestReadRejectsTruncation(t *testing.T) {
	tb := buildTable(t)
	var buf bytes.Buffer
	if err := Write(&buf, tb); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{1, len(full) / 2, len(full) - 1} {
		if _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestReadRejectsWrongVersion(t *testing.T) {
	tb := table.New("t", "a")
	var buf bytes.Buffer
	if err := Write(&buf, tb); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[8] = 99 // version field
	if _, err := Read(bytes.NewReader(b)); err == nil {
		t.Fatal("wrong version accepted")
	}
}

func TestSnapshotIsCompact(t *testing.T) {
	// Serial + bounded-random data must land well below 16 bytes/tuple
	// thanks to the Auto codec.
	tb := buildTable(t)
	var buf bytes.Buffer
	if err := Write(&buf, tb); err != nil {
		t.Fatal(err)
	}
	raw := tb.Len() * 16
	if buf.Len() >= raw {
		t.Fatalf("snapshot %d bytes for %d bytes of raw data", buf.Len(), raw)
	}
}
