package advisor

import (
	"testing"

	"amnesiadb/internal/engine"
	"amnesiadb/internal/expr"
	"amnesiadb/internal/table"
	"amnesiadb/internal/xrand"
)

// build populates a table with nBatches x 100 serial tuples.
func build(t *testing.T, nBatches int) *table.Table {
	t.Helper()
	tb := table.New("t", "a")
	v := int64(0)
	for b := 0; b < nBatches; b++ {
		vals := make([]int64, 100)
		for i := range vals {
			vals[i] = v
			v++
		}
		if _, err := tb.AppendSingleColumn(vals); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func TestCollectorValidation(t *testing.T) {
	tb := build(t, 1)
	if _, err := NewCollector(tb, "zz"); err == nil {
		t.Fatal("unknown column accepted")
	}
	c, err := NewCollector(tb, "a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Analyze(0.9); err == nil {
		t.Fatal("analysis without queries accepted")
	}
	c.ObserveRange(0, 1, nil)
	if _, err := c.Analyze(0); err == nil {
		t.Fatal("zero target accepted")
	}
	if _, err := c.Analyze(1.5); err == nil {
		t.Fatal("target > 1 accepted")
	}
}

func TestFreshWorkloadRecommendsFIFO(t *testing.T) {
	tb := build(t, 10)
	c, err := NewCollector(tb, "a")
	if err != nil {
		t.Fatal(err)
	}
	ex := engine.NewSilent(tb)
	// Only query the newest batch's values (900..999).
	for q := 0; q < 50; q++ {
		res, err := ex.Select("a", expr.NewRange(900, 1000), engine.ScanActive)
		if err != nil {
			t.Fatal(err)
		}
		c.ObserveRange(900, 1000, res.Rows)
	}
	r, err := c.Analyze(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if r.Strategy != "fifo" {
		t.Fatalf("fresh workload recommended %q (%s)", r.Strategy, r.Reason)
	}
	if r.FreshFocus < 0.9 {
		t.Fatalf("fresh focus = %v", r.FreshFocus)
	}
	// Window workloads afford tight budgets.
	if r.AffordableBudget >= tb.ActiveCount() {
		t.Fatalf("fifo budget not tightened: %d", r.AffordableBudget)
	}
}

func TestAggregateWorkloadRecommendsPairwise(t *testing.T) {
	tb := build(t, 5)
	c, err := NewCollector(tb, "a")
	if err != nil {
		t.Fatal(err)
	}
	ex := engine.NewSilent(tb)
	for q := 0; q < 20; q++ {
		res, err := ex.Select("a", expr.True{}, engine.ScanActive)
		if err != nil {
			t.Fatal(err)
		}
		c.ObserveAggregate(res.Rows)
	}
	r, err := c.Analyze(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if r.Strategy != "pairwise" {
		t.Fatalf("aggregate workload recommended %q (%s)", r.Strategy, r.Reason)
	}
	if r.Aggregates != 20 {
		t.Fatalf("aggregates = %d", r.Aggregates)
	}
}

func TestNarrowRepeatedWorkloadRecommendsRot(t *testing.T) {
	tb := build(t, 10)
	c, err := NewCollector(tb, "a")
	if err != nil {
		t.Fatal(err)
	}
	ex := engine.NewSilent(tb)
	// Narrow band in the middle of the history: old + tiny selectivity.
	for q := 0; q < 50; q++ {
		res, err := ex.Select("a", expr.NewRange(100, 110), engine.ScanActive)
		if err != nil {
			t.Fatal(err)
		}
		c.ObserveRange(100, 110, res.Rows)
	}
	r, err := c.Analyze(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if r.Strategy != "rot" {
		t.Fatalf("narrow workload recommended %q (%s)", r.Strategy, r.Reason)
	}
	if r.MeanSelectivity > 0.05 {
		t.Fatalf("selectivity = %v", r.MeanSelectivity)
	}
}

func TestBroadScansRecommendDistAligned(t *testing.T) {
	tb := build(t, 10)
	c, err := NewCollector(tb, "a")
	if err != nil {
		t.Fatal(err)
	}
	ex := engine.NewSilent(tb)
	src := xrand.New(1)
	for q := 0; q < 50; q++ {
		lo := src.Int63n(500)
		res, err := ex.Select("a", expr.NewRange(lo, lo+400), engine.ScanActive)
		if err != nil {
			t.Fatal(err)
		}
		c.ObserveRange(lo, lo+400, res.Rows)
	}
	r, err := c.Analyze(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if r.Strategy != "distaligned" {
		t.Fatalf("broad workload recommended %q (%s)", r.Strategy, r.Reason)
	}
}

func TestAgeProfileSumsToOne(t *testing.T) {
	tb := build(t, 4)
	c, err := NewCollector(tb, "a")
	if err != nil {
		t.Fatal(err)
	}
	ex := engine.NewSilent(tb)
	res, err := ex.Select("a", expr.True{}, engine.ScanActive)
	if err != nil {
		t.Fatal(err)
	}
	c.ObserveRange(0, 1000, res.Rows)
	var sum float64
	for _, f := range c.AgeProfile() {
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("age profile sums to %v", sum)
	}
	top := c.TopAges()
	if len(top) != ageBuckets {
		t.Fatalf("top ages = %v", top)
	}
}

func TestAgeProfileEmpty(t *testing.T) {
	tb := build(t, 1)
	c, err := NewCollector(tb, "a")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range c.AgeProfile() {
		if f != 0 {
			t.Fatal("empty profile nonzero")
		}
	}
}
