// Package advisor implements the §2.2 programme: "ideally, knowledge
// about all queries and their frequency to be ran against a database
// would make it possible to identify if and how long a tuple is active
// before it can be safely forgotten. Collecting such statistics is a good
// start to assess what data amnesia an application can afford."
//
// A Collector observes a query stream (ranges, aggregates, their
// selectivities and the age of the tuples they touch) and produces a
// Report: which amnesia strategy fits the workload, and how tight a
// budget it can afford at a target precision.
package advisor

import (
	"fmt"
	"sort"

	"amnesiadb/internal/table"
)

// Collector accumulates workload statistics against one table.
type Collector struct {
	t   *table.Table
	col string

	queries      int64
	aggregates   int64
	sumSel       float64 // selectivity = touched / active
	ageHist      []int64 // age (batches) of touched tuples, bucketed
	touchedTotal int64
	valueLo      int64 // observed query-range envelope
	valueHi      int64
	envelopeSet  bool
}

// ageBuckets is the resolution of the tuple-age histogram.
const ageBuckets = 16

// NewCollector returns a collector for the named column of t.
func NewCollector(t *table.Table, col string) (*Collector, error) {
	if _, err := t.Column(col); err != nil {
		return nil, err
	}
	return &Collector{t: t, col: col, ageHist: make([]int64, ageBuckets)}, nil
}

// ObserveRange records one range query and the positions it returned.
func (c *Collector) ObserveRange(lo, hi int64, rows []int32) {
	c.queries++
	c.observeRows(rows)
	if !c.envelopeSet {
		c.valueLo, c.valueHi, c.envelopeSet = lo, hi, true
		return
	}
	if lo < c.valueLo {
		c.valueLo = lo
	}
	if hi > c.valueHi {
		c.valueHi = hi
	}
}

// ObserveAggregate records one aggregate query and its contributing rows.
func (c *Collector) ObserveAggregate(rows []int32) {
	c.queries++
	c.aggregates++
	c.observeRows(rows)
}

func (c *Collector) observeRows(rows []int32) {
	active := c.t.ActiveCount()
	if active > 0 {
		c.sumSel += float64(len(rows)) / float64(active)
	}
	current := c.t.Batches() - 1
	span := current + 1
	for _, r := range rows {
		age := current - int(c.t.InsertBatch(int(r)))
		b := 0
		if span > 0 {
			b = age * ageBuckets / span
		}
		if b >= ageBuckets {
			b = ageBuckets - 1
		}
		c.ageHist[b]++
		c.touchedTotal++
	}
}

// Report is the advisor's output.
type Report struct {
	// Queries observed, and how many were aggregates.
	Queries, Aggregates int64
	// MeanSelectivity is the average fraction of active tuples a query
	// touches.
	MeanSelectivity float64
	// FreshFocus is the fraction of touched tuples younger than a
	// quarter of the table's lifetime: near 1 means the workload only
	// cares about recent data.
	FreshFocus float64
	// Strategy is the recommended amnesia strategy.
	Strategy string
	// Reason explains the recommendation.
	Reason string
	// AffordableBudget estimates the smallest active-tuple budget that
	// keeps expected precision above the target used in Analyze.
	AffordableBudget int
}

// Analyze produces a recommendation for the observed workload. target is
// the desired precision in (0, 1]; the affordable budget assumes the
// recommended strategy concentrates retention on what the workload asks
// for with the measured focus.
func (c *Collector) Analyze(target float64) (Report, error) {
	if c.queries == 0 {
		return Report{}, fmt.Errorf("advisor: no queries observed")
	}
	if target <= 0 || target > 1 {
		return Report{}, fmt.Errorf("advisor: target precision %v outside (0, 1]", target)
	}
	r := Report{Queries: c.queries, Aggregates: c.aggregates}
	r.MeanSelectivity = c.sumSel / float64(c.queries)

	// Fraction of touches landing in the youngest quarter of the
	// age histogram.
	var young, total int64
	for b, n := range c.ageHist {
		total += n
		if b < ageBuckets/4 {
			young += n
		}
	}
	if total > 0 {
		r.FreshFocus = float64(young) / float64(total)
	}

	aggShare := float64(c.aggregates) / float64(c.queries)
	switch {
	case r.FreshFocus > 0.9:
		r.Strategy = "fifo"
		r.Reason = "the workload touches almost exclusively fresh data; a sliding window loses nothing it asks for"
	case aggShare > 0.8:
		r.Strategy = "pairwise"
		r.Reason = "the workload is aggregate-dominant; average-preserving forgetting keeps AVG exact at any budget"
	case r.MeanSelectivity < 0.05:
		r.Strategy = "rot"
		r.Reason = "queries are narrow and repeated; access-frequency rot retains exactly the tuples the workload returns"
	default:
		r.Strategy = "distaligned"
		r.Reason = "broad scans over all history; distribution-aligned forgetting keeps the active set representative"
	}

	// Expected precision under a focused strategy ~ budget covering the
	// workload's touched mass: budget >= target * touched-per-query
	// scaled to the active set. Conservatively: budget = target * active.
	active := c.t.ActiveCount()
	r.AffordableBudget = int(target * float64(active))
	if r.FreshFocus > 0.9 {
		// A window only needs the fresh fraction.
		r.AffordableBudget = int(target * float64(active) / 4)
	}
	if r.AffordableBudget < 1 {
		r.AffordableBudget = 1
	}
	return r, nil
}

// AgeProfile returns the touched-tuple age histogram (youngest bucket
// first) normalised to fractions; useful for plotting "how far back does
// this workload actually look".
func (c *Collector) AgeProfile() []float64 {
	out := make([]float64, ageBuckets)
	if c.touchedTotal == 0 {
		return out
	}
	for b, n := range c.ageHist {
		out[b] = float64(n) / float64(c.touchedTotal)
	}
	return out
}

// TopAges returns the histogram buckets in descending touch order; for
// debugging and reports.
func (c *Collector) TopAges() []int {
	idx := make([]int, ageBuckets)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return c.ageHist[idx[a]] > c.ageHist[idx[b]] })
	return idx
}
