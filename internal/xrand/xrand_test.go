package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSourceDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at step %d: %d vs %d", i, av, bv)
		}
	}
}

func TestSourceDistinctSeeds(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided %d/1000 times", same)
	}
}

func TestSplitDecorrelates(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("parent and split child collided %d/1000 times", same)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	// Chi-squared over 10 buckets, 100k draws. 95% critical value for
	// 9 dof is 16.92; allow a wide 30 margin to keep the test stable.
	s := New(99)
	const buckets, draws = 10, 100000
	var counts [buckets]int
	for i := 0; i < draws; i++ {
		counts[s.Intn(buckets)]++
	}
	expected := float64(draws) / buckets
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 30 {
		t.Fatalf("Intn chi-squared %.2f too high; counts=%v", chi2, counts)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(5)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(6)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %.4f, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(8)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %.4f, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %.4f, want ~1", variance)
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(10)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate %.4f", p)
	}
}

func TestUint64nProperty(t *testing.T) {
	s := New(11)
	f := func(n uint64) bool {
		if n == 0 {
			return true
		}
		return s.Uint64n(n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(12)
	for _, n := range []int{0, 1, 2, 10, 257} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) returned %d elements", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid or duplicate value %d", n, v)
			}
			seen[v] = true
		}
	}
}

func TestSampleKDistinctAndInRange(t *testing.T) {
	s := New(13)
	cases := []struct{ k, n int }{
		{0, 0}, {0, 10}, {1, 1}, {3, 10}, {10, 10}, {5, 1000}, {900, 1000},
	}
	for _, c := range cases {
		got := s.SampleK(c.k, c.n)
		if len(got) != c.k {
			t.Fatalf("SampleK(%d,%d) returned %d values", c.k, c.n, len(got))
		}
		seen := map[int]bool{}
		for _, v := range got {
			if v < 0 || v >= c.n {
				t.Fatalf("SampleK(%d,%d) value %d out of range", c.k, c.n, v)
			}
			if seen[v] {
				t.Fatalf("SampleK(%d,%d) duplicate %d", c.k, c.n, v)
			}
			seen[v] = true
		}
	}
}

func TestSampleKUniformCoverage(t *testing.T) {
	// Each position of [0,n) should be selected k/n of the time.
	s := New(14)
	const k, n, trials = 5, 50, 20000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		for _, v := range s.SampleK(k, n) {
			counts[v]++
		}
	}
	want := float64(trials) * k / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.15 {
			t.Fatalf("position %d chosen %d times, want ~%.0f", i, c, want)
		}
	}
}

func TestSampleKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SampleK(5, 3) did not panic")
		}
	}()
	New(1).SampleK(5, 3)
}

func TestReservoirUniform(t *testing.T) {
	// Offer 0..n-1, keep k; every element should survive with prob k/n.
	const k, n, trials = 10, 100, 20000
	counts := make([]int, n)
	src := New(15)
	for tr := 0; tr < trials; tr++ {
		r := NewReservoir(src, k)
		for v := int64(0); v < n; v++ {
			r.Offer(v)
		}
		for _, v := range r.Sample() {
			counts[v]++
		}
	}
	want := float64(trials) * k / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.15 {
			t.Fatalf("element %d kept %d times, want ~%.0f", i, c, want)
		}
	}
}

func TestReservoirSeen(t *testing.T) {
	r := NewReservoir(New(16), 3)
	for i := int64(0); i < 7; i++ {
		r.Offer(i)
	}
	if r.Seen() != 7 {
		t.Fatalf("Seen = %d, want 7", r.Seen())
	}
	if len(r.Sample()) != 3 {
		t.Fatalf("Sample size = %d, want 3", len(r.Sample()))
	}
}

func TestWeightedChoiceFollowsWeights(t *testing.T) {
	s := New(17)
	w := []float64{1, 3, 6}
	const n = 60000
	counts := make([]int, len(w))
	for i := 0; i < n; i++ {
		counts[s.WeightedChoice(w)]++
	}
	total := 10.0
	for i, wi := range w {
		want := float64(n) * wi / total
		if math.Abs(float64(counts[i])-want) > want*0.1 {
			t.Fatalf("weight %d chosen %d, want ~%.0f", i, counts[i], want)
		}
	}
}

func TestWeightedChoiceZeroWeightNeverChosen(t *testing.T) {
	s := New(18)
	w := []float64{0, 1, 0}
	for i := 0; i < 1000; i++ {
		if got := s.WeightedChoice(w); got != 1 {
			t.Fatalf("chose zero-weight index %d", got)
		}
	}
}

func TestWeightedChoicePanics(t *testing.T) {
	for name, w := range map[string][]float64{
		"all-zero": {0, 0},
		"negative": {1, -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s weights did not panic", name)
				}
			}()
			New(1).WeightedChoice(w)
		}()
	}
}

func TestZipfRankOrdering(t *testing.T) {
	// Lower ranks must be (weakly) more frequent for a decreasing pmf.
	s := New(19)
	z := NewZipf(s, 100, 1.0)
	counts := make([]int, 100)
	for i := 0; i < 200000; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[10] || counts[1] <= counts[20] {
		t.Fatalf("Zipf head not dominant: c0=%d c1=%d c10=%d c20=%d",
			counts[0], counts[1], counts[10], counts[20])
	}
}

func TestZipfInRange(t *testing.T) {
	s := New(20)
	for _, theta := range []float64{0.5, 0.99, 1.0, 1.5} {
		z := NewZipf(s, 1000, theta)
		for i := 0; i < 10000; i++ {
			if v := z.Next(); v >= 1000 {
				t.Fatalf("theta=%v value %d out of range", theta, v)
			}
		}
	}
}

func TestZipfParetoShape(t *testing.T) {
	// With theta near 1 over a sizeable domain, the top 20% of ranks
	// should absorb well over half the mass (the 80-20 motivation in
	// the paper).
	s := New(21)
	z := NewZipf(s, 1000, 1.0)
	const draws = 200000
	top := 0
	for i := 0; i < draws; i++ {
		if z.Next() < 200 {
			top++
		}
	}
	if frac := float64(top) / draws; frac < 0.55 {
		t.Fatalf("top-20%% mass %.3f, want > 0.55", frac)
	}
}

func TestZipfPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"n=0":     func() { NewZipf(New(1), 0, 1) },
		"theta=0": func() { NewZipf(New(1), 10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkZipfNext(b *testing.B) {
	z := NewZipf(New(1), 1<<20, 0.99)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Next()
	}
}
