package xrand

import "strconv"

// Shuffle permutes the first n positions using swap, via Fisher-Yates.
// It panics if n < 0.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	if n < 0 {
		panic("xrand: Shuffle with n < 0")
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// SampleK returns k distinct positions drawn uniformly from [0, n).
// It panics if k > n or either argument is negative.
//
// Two regimes: when k is a large fraction of n a partial Fisher-Yates over
// a dense index array is cheapest; when k << n, Floyd's algorithm avoids
// materialising [0, n).
func (s *Source) SampleK(k, n int) []int {
	switch {
	case k < 0 || n < 0:
		panic("xrand: SampleK with negative argument")
	case k > n:
		panic("xrand: SampleK with k > n")
	case k == 0:
		return nil
	}
	if k*4 >= n {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		// Partial shuffle: after i swaps the first i entries are a
		// uniform i-subset in uniform order.
		for i := 0; i < k; i++ {
			j := i + s.Intn(n-i)
			idx[i], idx[j] = idx[j], idx[i]
		}
		return idx[:k:k]
	}
	// Floyd's subset sampling.
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := s.Intn(j + 1)
		if _, dup := chosen[t]; dup {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	// Floyd yields a uniform subset but a biased order; shuffle for
	// callers that consume positionally.
	s.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// Reservoir maintains a uniform k-sample over a stream of unknown length
// (Vitter's Algorithm R). The paper's Uniform-amnesia strategy is "similar
// to the reservoir sampling technique [19]"; this type is the literal
// implementation used both by that strategy and by its tests as an oracle.
type Reservoir struct {
	src  *Source
	k    int
	seen int
	keep []int64
}

// NewReservoir returns a reservoir of capacity k. It panics if k <= 0.
func NewReservoir(src *Source, k int) *Reservoir {
	if k <= 0 {
		panic("xrand: NewReservoir with k <= 0")
	}
	return &Reservoir{src: src, k: k, keep: make([]int64, 0, k)}
}

// Offer presents the next stream element. It reports whether the element
// was admitted to the sample.
func (r *Reservoir) Offer(v int64) bool {
	r.seen++
	if len(r.keep) < r.k {
		r.keep = append(r.keep, v)
		return true
	}
	j := r.src.Intn(r.seen)
	if j < r.k {
		r.keep[j] = v
		return true
	}
	return false
}

// Sample returns the current sample. The slice aliases internal state; the
// caller must not retain it across Offer calls.
func (r *Reservoir) Sample() []int64 { return r.keep }

// Seen returns the number of elements offered so far.
func (r *Reservoir) Seen() int { return r.seen }

// WeightedChoice draws an index in [0, len(w)) with probability
// proportional to w[i]. Weights must be non-negative and not all zero;
// otherwise it panics. O(n) per draw — fine for the per-batch granularity
// the simulator needs.
func (s *Source) WeightedChoice(w []float64) int {
	var total float64
	for i, x := range w {
		if x < 0 {
			panic("xrand: WeightedChoice with negative weight at index " + strconv.Itoa(i))
		}
		total += x
	}
	if total <= 0 {
		panic("xrand: WeightedChoice with zero total weight")
	}
	target := s.Float64() * total
	var acc float64
	for i, x := range w {
		acc += x
		if target < acc {
			return i
		}
	}
	return len(w) - 1 // float round-off fell past the end
}
