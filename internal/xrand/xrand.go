// Package xrand provides the deterministic pseudo-random machinery used by
// every stochastic component of amnesiadb: a splitmix64/xoshiro-style source,
// uniform and bounded integer draws, Box-Muller normal variates, a Zipfian
// sampler, Fisher-Yates shuffles, and Vitter reservoir sampling.
//
// The package exists so that experiment results are bit-reproducible across
// Go releases; math/rand's generator and its stream assignment have changed
// between versions, while this implementation is frozen.
package xrand

import (
	"math"
	"math/bits"
)

// Source is a deterministic 64-bit PRNG based on splitmix64. The zero value
// is a valid source seeded with 0; use New to seed explicitly.
//
// splitmix64 passes BigCrush, has a full 2^64 period over its state, and is
// trivially seedable — properties that matter more here than raw speed.
type Source struct {
	state    uint64
	spare    float64
	hasSpare bool
}

// New returns a Source seeded with seed. Distinct seeds yield independent
// streams for all practical purposes.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Split returns a new Source derived from s such that the child stream is
// decorrelated from the parent's subsequent output. Useful for giving each
// simulator component its own stream from one experiment seed.
func (s *Source) Split() *Source {
	return New(s.Uint64() ^ 0x9e3779b97f4a7c15)
}

// Uint64 returns the next value of the stream.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 returns a non-negative int64.
func (s *Source) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
// Lemire's nearly-divisionless bounded rejection is used to avoid modulo
// bias without a division in the common case.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	return int(s.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n). It panics if n == 0.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n called with n == 0")
	}
	// Lemire 2019: multiply-shift with rejection on the low word.
	v := s.Uint64()
	hi, lo := bits.Mul64(v, n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			v = s.Uint64()
			hi, lo = bits.Mul64(v, n)
		}
	}
	return hi
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (s *Source) Int63n(n int64) int64 {
	if n <= 0 {
		panic("xrand: Int63n called with n <= 0")
	}
	return int64(s.Uint64n(uint64(n)))
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	return s.Float64() < p
}

// NormFloat64 returns a standard-normal variate via the Box-Muller
// transform. One spare variate is cached so consecutive calls consume one
// uniform pair per two results.
func (s *Source) NormFloat64() float64 {
	if s.hasSpare {
		s.hasSpare = false
		return s.spare
	}
	var u, v, r2 float64
	for {
		u = 2*s.Float64() - 1
		v = 2*s.Float64() - 1
		r2 = u*u + v*v
		if r2 > 0 && r2 < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(r2) / r2)
	s.spare = v * f
	s.hasSpare = true
	return u * f
}
