package xrand

import "math"

// Zipf samples from a Zipfian distribution over {0, 1, ..., n-1} with
// exponent theta > 0: P(k) ∝ 1/(k+1)^theta. It implements the rejection
// scheme of Devroye (1986) as popularised by Gray et al.'s "Quickly
// Generating Billion-Record Synthetic Databases" (SIGMOD 1994), which is
// O(1) per draw after O(1) setup and therefore suitable for streaming
// update-batch generation.
//
// The paper's "skewed" distribution models the Pareto 80-20 rule; theta
// around 1.0 reproduces that shape over the configured domain.
type Zipf struct {
	src   *Source
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	zeta2 float64
}

// NewZipf returns a Zipf sampler over [0, n) with exponent theta.
// It panics if n == 0 or theta <= 0 or theta == 1 is not handled —
// theta may be any positive value except exactly 1 is permitted too
// (the zeta computation handles it numerically).
func NewZipf(src *Source, n uint64, theta float64) *Zipf {
	if n == 0 {
		panic("xrand: NewZipf with n == 0")
	}
	if theta <= 0 {
		panic("xrand: NewZipf with theta <= 0")
	}
	// The Gray et al. transform is singular at theta == 1 (alpha and eta
	// both degenerate). Nudge onto the numerically adjacent exponent and
	// use it consistently everywhere; the resulting pmf is
	// indistinguishable from true theta = 1 at simulator scales.
	if math.Abs(theta-1) < 1e-6 {
		theta = 1 - 1e-6
	}
	z := &Zipf{src: src, n: n, theta: theta}
	z.zeta2 = zetaStatic(2, theta)
	z.zetan = zetaStatic(n, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

// Next draws the next Zipfian value in [0, n). Rank 0 is the most
// frequent value.
func (z *Zipf) Next() uint64 {
	u := z.src.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	k := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if k >= z.n {
		k = z.n - 1
	}
	return k
}

// zetaStatic computes the generalised harmonic number H_{n,theta}.
// For the DBSIZE/DOMAIN magnitudes used by the simulator (≤ ~10^7) the
// direct sum is fast enough and exact.
func zetaStatic(n uint64, theta float64) float64 {
	var sum float64
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}
