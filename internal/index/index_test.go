package index

import (
	"testing"
	"testing/quick"

	"amnesiadb/internal/table"
	"amnesiadb/internal/xrand"
)

func tbl(t *testing.T, vals ...int64) *table.Table {
	t.Helper()
	tb := table.New("t", "a")
	if _, err := tb.AppendSingleColumn(vals); err != nil {
		t.Fatal(err)
	}
	return tb
}

func randTable(t *testing.T, n int, seed uint64) (*table.Table, []int64) {
	t.Helper()
	src := xrand.New(seed)
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = src.Int63n(1000)
	}
	return tbl(t, vals...), vals
}

func naiveScan(t *table.Table, vals []int64, lo, hi int64) []int32 {
	var out []int32
	for i, v := range vals {
		if v >= lo && v < hi && t.IsActive(i) {
			out = append(out, int32(i))
		}
	}
	return out
}

func sameRows(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBRINScanMatchesNaive(t *testing.T) {
	tb, vals := randTable(t, 500, 1)
	src := xrand.New(2)
	for i := 0; i < 500; i++ {
		if src.Bool(0.3) {
			tb.Forget(i)
		}
	}
	b, err := NewBRIN(tb, "a", 32)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][2]int64{{0, 1000}, {100, 200}, {999, 1000}, {500, 500}} {
		got, err := b.Scan(tb, r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		if want := naiveScan(tb, vals, r[0], r[1]); !sameRows(got, want) {
			t.Fatalf("BRIN scan [%d,%d): got %d rows, want %d", r[0], r[1], len(got), len(want))
		}
	}
}

func TestBRINPrunesForgottenBlocks(t *testing.T) {
	tb, _ := randTable(t, 256, 3)
	// Forget an entire block-aligned region.
	for i := 64; i < 128; i++ {
		tb.Forget(i)
	}
	b, err := NewBRIN(tb, "a", 64)
	if err != nil {
		t.Fatal(err)
	}
	if b.Blocks() != 4 {
		t.Fatalf("blocks = %d", b.Blocks())
	}
	if b.PrunedBlocks() != 1 {
		t.Fatalf("pruned blocks = %d, want 1", b.PrunedBlocks())
	}
	// Full-range candidates must skip the pruned block.
	cand := b.CandidateBlocks(0, 1000, nil)
	for _, blk := range cand {
		if blk == 1 {
			t.Fatal("pruned block returned as candidate")
		}
	}
}

func TestBRINStaleDetection(t *testing.T) {
	tb, _ := randTable(t, 100, 4)
	b, err := NewBRIN(tb, "a", 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.AppendSingleColumn([]int64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Scan(tb, 0, 10); err == nil {
		t.Fatal("stale BRIN scan succeeded")
	}
	if err := b.Rebuild(tb); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Scan(tb, 0, 10); err != nil {
		t.Fatal(err)
	}
}

func TestBRINUnknownColumn(t *testing.T) {
	tb, _ := randTable(t, 10, 5)
	if _, err := NewBRIN(tb, "zz", 8); err == nil {
		t.Fatal("unknown column accepted")
	}
}

func TestBRINSizeShrinksWithBlockSize(t *testing.T) {
	tb, _ := randTable(t, 1000, 6)
	small, _ := NewBRIN(tb, "a", 8)
	large, _ := NewBRIN(tb, "a", 256)
	if small.SizeBytes() <= large.SizeBytes() {
		t.Fatalf("BRIN sizes: fine=%d coarse=%d", small.SizeBytes(), large.SizeBytes())
	}
}

func TestSortedScanMatchesNaive(t *testing.T) {
	tb, vals := randTable(t, 500, 7)
	src := xrand.New(8)
	for i := 0; i < 500; i++ {
		if src.Bool(0.3) {
			tb.Forget(i)
		}
	}
	s, err := NewSorted(tb, "a")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][2]int64{{0, 1000}, {100, 200}, {999, 1000}, {0, 0}} {
		got := s.Scan(tb, r[0], r[1])
		if want := naiveScan(tb, vals, r[0], r[1]); !sameRows(got, want) {
			t.Fatalf("sorted scan [%d,%d): got %v, want %v", r[0], r[1], got, want)
		}
	}
}

func TestSortedScanFiltersPostBuildForgetting(t *testing.T) {
	tb, vals := randTable(t, 200, 9)
	s, err := NewSorted(tb, "a")
	if err != nil {
		t.Fatal(err)
	}
	// Forget after the index was built; scan must still be correct.
	for i := 0; i < 200; i += 2 {
		tb.Forget(i)
	}
	got := s.Scan(tb, 0, 1000)
	if want := naiveScan(tb, vals, 0, 1000); !sameRows(got, want) {
		t.Fatalf("post-forget scan wrong: %d vs %d rows", len(got), len(want))
	}
}

func TestSortedPruneForgotten(t *testing.T) {
	tb, vals := randTable(t, 300, 10)
	s, err := NewSorted(tb, "a")
	if err != nil {
		t.Fatal(err)
	}
	before := s.Entries()
	for i := 0; i < 300; i += 3 {
		tb.Forget(i)
	}
	removed := s.PruneForgotten(tb)
	if removed != 100 {
		t.Fatalf("pruned %d entries, want 100", removed)
	}
	if s.Entries() != before-100 {
		t.Fatalf("entries = %d", s.Entries())
	}
	if s.SizeBytes() != s.Entries()*12 {
		t.Fatalf("size accounting wrong")
	}
	got := s.Scan(tb, 0, 1000)
	if want := naiveScan(tb, vals, 0, 1000); !sameRows(got, want) {
		t.Fatal("scan after prune wrong")
	}
}

func TestSortedRebuildAfterAppend(t *testing.T) {
	tb, _ := randTable(t, 100, 11)
	s, err := NewSorted(tb, "a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.AppendSingleColumn([]int64{5, 6, 7}); err != nil {
		t.Fatal(err)
	}
	if err := s.Rebuild(tb); err != nil {
		t.Fatal(err)
	}
	if s.Entries() != 103 {
		t.Fatalf("entries after rebuild = %d", s.Entries())
	}
}

func TestSortedEmptyTable(t *testing.T) {
	tb := table.New("t", "a")
	s, err := NewSorted(tb, "a")
	if err != nil {
		t.Fatal(err)
	}
	if s.Entries() != 0 || len(s.Scan(tb, 0, 10)) != 0 {
		t.Fatal("empty index misbehaved")
	}
}

func TestPropertyIndexesAgree(t *testing.T) {
	// BRIN and Sorted must return identical row sets for any data and
	// any range.
	f := func(raw []uint16, loRaw, hiRaw uint16, forget []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]int64, len(raw))
		for i, r := range raw {
			vals[i] = int64(r % 1000)
		}
		tb := table.New("t", "a")
		if _, err := tb.AppendSingleColumn(vals); err != nil {
			return false
		}
		for _, fi := range forget {
			tb.Forget(int(fi) % len(vals))
		}
		lo, hi := int64(loRaw%1000), int64(hiRaw%1000)
		if lo > hi {
			lo, hi = hi, lo
		}
		b, err := NewBRIN(tb, "a", 16)
		if err != nil {
			return false
		}
		s, err := NewSorted(tb, "a")
		if err != nil {
			return false
		}
		bs, err := b.Scan(tb, lo, hi)
		if err != nil {
			return false
		}
		return sameRows(bs, s.Scan(tb, lo, hi))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBRINScan(b *testing.B) {
	src := xrand.New(1)
	tb := table.New("t", "a")
	vals := make([]int64, 1<<18)
	for i := range vals {
		vals[i] = src.Int63n(1 << 18)
	}
	if _, err := tb.AppendSingleColumn(vals); err != nil {
		b.Fatal(err)
	}
	idx, err := NewBRIN(tb, "a", 1024)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := idx.Scan(tb, 1000, 2000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSortedScan(b *testing.B) {
	src := xrand.New(1)
	tb := table.New("t", "a")
	vals := make([]int64, 1<<18)
	for i := range vals {
		vals[i] = src.Int63n(1 << 18)
	}
	if _, err := tb.AppendSingleColumn(vals); err != nil {
		b.Fatal(err)
	}
	idx, err := NewSorted(tb, "a")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = idx.Scan(tb, 1000, 2000)
	}
}
