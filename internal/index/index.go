// Package index provides the auxiliary access paths §4.4 discusses as
// amnesia candidates: a Block-Range-Index (BRIN) summarising value ranges
// per tuple block, and a sorted secondary index mapping values to tuple
// positions. Both can prune forgotten tuples ("stop indexing the forgotten
// data": an index-based evaluation skips them while a complete scan still
// fetches everything), and both can be dropped and recreated on demand —
// the MonetDB-style knobless space reclamation the paper mentions.
package index

import (
	"fmt"
	"sort"

	"amnesiadb/internal/table"
)

// BRIN is a block-range index: per fixed-size block of tuple positions it
// stores the min/max value of the still-indexed tuples, enabling range
// scans to skip blocks. Unlike column zone maps, a BRIN is rebuilt
// explicitly and may exclude forgotten tuples.
type BRIN struct {
	col       string
	blockSize int
	mins      []int64
	maxs      []int64
	counts    []int // indexed tuples per block; 0 = fully pruned block
	rows      int
}

// NewBRIN builds a BRIN over the named column of t with the given block
// size, indexing only active tuples. It panics if blockSize <= 0.
func NewBRIN(t *table.Table, col string, blockSize int) (*BRIN, error) {
	if blockSize <= 0 {
		panic("index: BRIN block size must be positive")
	}
	b := &BRIN{col: col, blockSize: blockSize}
	if err := b.Rebuild(t); err != nil {
		return nil, err
	}
	return b, nil
}

// Rebuild re-derives the BRIN from the current table state, dropping
// forgotten tuples from the summaries.
func (b *BRIN) Rebuild(t *table.Table) error {
	c, err := t.Column(b.col)
	if err != nil {
		return err
	}
	n := c.Len()
	blocks := (n + b.blockSize - 1) / b.blockSize
	b.mins = make([]int64, blocks)
	b.maxs = make([]int64, blocks)
	b.counts = make([]int, blocks)
	b.rows = n
	for blk := 0; blk < blocks; blk++ {
		lo := blk * b.blockSize
		hi := lo + b.blockSize
		if hi > n {
			hi = n
		}
		first := true
		for i := lo; i < hi; i++ {
			if !t.IsActive(i) {
				continue
			}
			v := c.Get(i)
			if first {
				b.mins[blk], b.maxs[blk] = v, v
				first = false
			} else {
				if v < b.mins[blk] {
					b.mins[blk] = v
				}
				if v > b.maxs[blk] {
					b.maxs[blk] = v
				}
			}
			b.counts[blk]++
		}
	}
	return nil
}

// Blocks returns the number of summarised blocks.
func (b *BRIN) Blocks() int { return len(b.counts) }

// PrunedBlocks returns how many blocks contain no indexed tuples at all —
// storage that amnesia has fully reclaimed from the index's point of view.
func (b *BRIN) PrunedBlocks() int {
	n := 0
	for _, c := range b.counts {
		if c == 0 {
			n++
		}
	}
	return n
}

// CandidateBlocks appends to dst the block numbers whose summaries
// intersect [lo, hi) and returns the extended slice.
func (b *BRIN) CandidateBlocks(lo, hi int64, dst []int) []int {
	for blk, cnt := range b.counts {
		if cnt == 0 {
			continue
		}
		if b.maxs[blk] >= lo && b.mins[blk] < hi {
			dst = append(dst, blk)
		}
	}
	return dst
}

// Scan returns the positions of active tuples with lo <= v < hi by probing
// only candidate blocks. Results are in ascending position order.
func (b *BRIN) Scan(t *table.Table, lo, hi int64) ([]int32, error) {
	c, err := t.Column(b.col)
	if err != nil {
		return nil, err
	}
	if c.Len() != b.rows {
		return nil, fmt.Errorf("index: BRIN stale: built over %d rows, table has %d", b.rows, c.Len())
	}
	var out []int32
	for _, blk := range b.CandidateBlocks(lo, hi, nil) {
		start := blk * b.blockSize
		end := start + b.blockSize
		if end > c.Len() {
			end = c.Len()
		}
		for i := start; i < end; i++ {
			if !t.IsActive(i) {
				continue
			}
			if v := c.Get(i); v >= lo && v < hi {
				out = append(out, int32(i))
			}
		}
	}
	return out, nil
}

// SizeBytes estimates the index footprint: two int64 bounds and one int
// count per block. This feeds the §4.4 drop-to-reclaim-space accounting.
func (b *BRIN) SizeBytes() int { return len(b.counts) * (8 + 8 + 8) }

// Sorted is a secondary index: (value, position) pairs in value order over
// the active tuples at build time. Lookups are binary searches; forgotten
// tuples can be pruned in place without a full rebuild.
type Sorted struct {
	col  string
	vals []int64
	pos  []int32
	rows int
}

// NewSorted builds a sorted index over the named column of t, indexing
// only active tuples.
func NewSorted(t *table.Table, col string) (*Sorted, error) {
	s := &Sorted{col: col}
	if err := s.Rebuild(t); err != nil {
		return nil, err
	}
	return s, nil
}

// Rebuild re-derives the index from the current table state.
func (s *Sorted) Rebuild(t *table.Table) error {
	c, err := t.Column(s.col)
	if err != nil {
		return err
	}
	s.rows = c.Len()
	s.vals = s.vals[:0]
	s.pos = s.pos[:0]
	for _, i := range t.ActiveIndices() {
		s.vals = append(s.vals, c.Get(i))
		s.pos = append(s.pos, int32(i))
	}
	sort.Sort((*byValue)(s))
	return nil
}

type byValue Sorted

func (s *byValue) Len() int { return len(s.vals) }
func (s *byValue) Less(i, j int) bool {
	if s.vals[i] != s.vals[j] {
		return s.vals[i] < s.vals[j]
	}
	return s.pos[i] < s.pos[j]
}
func (s *byValue) Swap(i, j int) {
	s.vals[i], s.vals[j] = s.vals[j], s.vals[i]
	s.pos[i], s.pos[j] = s.pos[j], s.pos[i]
}

// Entries returns the number of indexed tuples.
func (s *Sorted) Entries() int { return len(s.vals) }

// Scan returns the positions of indexed tuples with lo <= v < hi, in
// ascending position order. Tuples forgotten after the last rebuild or
// prune are filtered out against the live bitmap.
func (s *Sorted) Scan(t *table.Table, lo, hi int64) []int32 {
	from := sort.Search(len(s.vals), func(i int) bool { return s.vals[i] >= lo })
	to := sort.Search(len(s.vals), func(i int) bool { return s.vals[i] >= hi })
	out := make([]int32, 0, to-from)
	for i := from; i < to; i++ {
		if t.IsActive(int(s.pos[i])) {
			out = append(out, s.pos[i])
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// PruneForgotten removes entries whose tuples are no longer active,
// shrinking the index without a rebuild. It returns the number of entries
// removed — the paper's "removal from indexes" fate of forgotten data.
func (s *Sorted) PruneForgotten(t *table.Table) int {
	w := 0
	for i := range s.vals {
		if t.IsActive(int(s.pos[i])) {
			s.vals[w] = s.vals[i]
			s.pos[w] = s.pos[i]
			w++
		}
	}
	removed := len(s.vals) - w
	s.vals = s.vals[:w]
	s.pos = s.pos[:w]
	return removed
}

// SizeBytes estimates the index footprint (8-byte value + 4-byte position
// per entry).
func (s *Sorted) SizeBytes() int { return len(s.vals) * 12 }
