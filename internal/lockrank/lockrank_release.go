//go:build !amnesiadebug

package lockrank

import "sync"

// Catalog is the database-wide catalog lock (rank 1).
type Catalog struct{ sync.RWMutex }

// Relation is a per-relation lock (rank 2); distinct relations nest in
// table-name order.
type Relation struct{ sync.RWMutex }

// Shard is a partition-shard lock (rank 3).
type Shard struct{ sync.Mutex }

var _ = rankNames // referenced by the amnesiadebug build
