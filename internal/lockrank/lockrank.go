// Package lockrank wraps the engine's ranked mutexes so the documented
// lock hierarchy (docs/LOCKING.md) is machine-checked twice: statically
// by amnesialint's lockorder analyzer, which recognizes these wrapper
// types by name, and dynamically under the amnesiadebug build tag,
// where every acquisition asserts against the goroutine's held ranks
// and panics on a descent the static pass could not see.
//
// The release build (no tag) embeds the sync primitives directly: zero
// wrapping cost, identical method sets.
//
// Two protocols the assertions encode:
//   - relation locks may nest with each other freely at rank level;
//     their real order is the table-name order (docs/LOCKING.md).
//   - a lock may be released on a different goroutine than the one
//     that acquired it: QueryStream hands its relation read locks to a
//     drain watcher. Release therefore searches all goroutines and
//     ignores unmatched unlocks rather than panicking.
package lockrank

// Ranks ascend the hierarchy: catalog → relation → shard. The sched
// pool lock sits below shard but stays a plain sync.Mutex — it is
// owner-internal and never wraps other engine locks.
const (
	rankCatalog = iota + 1
	rankRelation
	rankShard
)

var rankNames = map[int]string{
	rankCatalog:  "catalog",
	rankRelation: "relation",
	rankShard:    "shard",
}
