//go:build amnesiadebug

package lockrank

import (
	"fmt"
	"runtime"
	"sync"
)

// reg tracks, per goroutine, the stack of ranks currently held. It is
// global and mutex-guarded: the debug build trades throughput for the
// assertion, and the -race CI job is the only consumer.
var reg = struct {
	sync.Mutex
	held map[uint64][]int
}{held: map[uint64][]int{}}

// gid extracts the current goroutine's id from its stack header —
// the only portable handle the runtime exposes.
func gid() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	// "goroutine 123 [running]:"
	var id uint64
	for _, c := range buf[len("goroutine "):n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}

// acquire asserts rank order against this goroutine's held ranks. The
// check runs before blocking on the real lock: a would-be deadlock
// panics with the hierarchy witness instead of hanging the test.
func acquire(rank int) {
	g := gid()
	reg.Lock()
	defer reg.Unlock()
	for _, h := range reg.held[g] {
		if h > rank || (h == rank && rank != rankRelation) {
			panic(fmt.Sprintf(
				"lockrank: acquiring %s while holding %s descends the lock hierarchy (docs/LOCKING.md)",
				rankNames[rank], rankNames[h]))
		}
	}
}

// record pushes the rank after the real lock succeeded.
func record(rank int) {
	g := gid()
	reg.Lock()
	reg.held[g] = append(reg.held[g], rank)
	reg.Unlock()
}

// release pops one instance of rank: from this goroutine when present,
// else from whichever goroutine holds it (QueryStream's watcher
// releases relation locks its spawner acquired). An unmatched release
// is ignored — the registry asserts order, not pairing.
func release(rank int) {
	g := gid()
	reg.Lock()
	defer reg.Unlock()
	if popRank(g, rank) {
		return
	}
	for other := range reg.held {
		if popRank(other, rank) {
			return
		}
	}
}

func popRank(g uint64, rank int) bool {
	stack := reg.held[g]
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i] == rank {
			stack = append(stack[:i], stack[i+1:]...)
			if len(stack) == 0 {
				delete(reg.held, g)
			} else {
				reg.held[g] = stack
			}
			return true
		}
	}
	return false
}

// Catalog is the database-wide catalog lock (rank 1).
type Catalog struct{ mu sync.RWMutex }

func (c *Catalog) Lock()    { acquire(rankCatalog); c.mu.Lock(); record(rankCatalog) }
func (c *Catalog) Unlock()  { c.mu.Unlock(); release(rankCatalog) }
func (c *Catalog) RLock()   { acquire(rankCatalog); c.mu.RLock(); record(rankCatalog) }
func (c *Catalog) RUnlock() { c.mu.RUnlock(); release(rankCatalog) }

// Relation is a per-relation lock (rank 2); distinct relations nest in
// table-name order.
type Relation struct{ mu sync.RWMutex }

func (r *Relation) Lock()    { acquire(rankRelation); r.mu.Lock(); record(rankRelation) }
func (r *Relation) Unlock()  { r.mu.Unlock(); release(rankRelation) }
func (r *Relation) RLock()   { acquire(rankRelation); r.mu.RLock(); record(rankRelation) }
func (r *Relation) RUnlock() { r.mu.RUnlock(); release(rankRelation) }

// Shard is a partition-shard lock (rank 3).
type Shard struct{ mu sync.Mutex }

func (s *Shard) Lock()   { acquire(rankShard); s.mu.Lock(); record(rankShard) }
func (s *Shard) Unlock() { s.mu.Unlock(); release(rankShard) }
