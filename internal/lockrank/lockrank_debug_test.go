//go:build amnesiadebug

package lockrank

import (
	"sync"
	"testing"
)

func TestAscendingIsClean(t *testing.T) {
	var c Catalog
	var r Relation
	var s Shard
	c.RLock()
	r.Lock()
	s.Lock()
	s.Unlock()
	r.Unlock()
	c.RUnlock()
}

func TestRelationNestingAllowed(t *testing.T) {
	var a, b Relation
	a.Lock()
	b.Lock()
	b.Unlock()
	a.Unlock()
}

func TestDescendingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("catalog under relation did not panic")
		}
	}()
	var c Catalog
	var r Relation
	r.Lock()
	defer r.Unlock()
	c.RLock()
	c.RUnlock()
}

func TestSameRankShardPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shard under shard did not panic")
		}
	}()
	var a, b Shard
	a.Lock()
	defer a.Unlock()
	b.Lock()
	b.Unlock()
}

// TestCrossGoroutineRelease pins the QueryStream handoff protocol: the
// spawning goroutine acquires, a watcher releases, and the registry
// must neither panic nor leak the held rank (a later catalog
// acquisition on the spawner would otherwise see a phantom relation).
func TestCrossGoroutineRelease(t *testing.T) {
	var r Relation
	var c Catalog
	r.RLock()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		r.RUnlock()
	}()
	wg.Wait()
	// The relation rank must be gone from this goroutine's stack.
	c.RLock()
	c.RUnlock()
}
