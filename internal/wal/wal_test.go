package wal

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"amnesiadb/internal/table"
)

// memCatalog is a minimal Applier over real tables, enough to verify
// that encode → replay reproduces state and survives abuse.
type memCatalog struct {
	tables map[string]*table.Table
	parts  map[string][]*table.Table // shard tables
	budget map[string][]int
	policy map[string]PolicySpec
}

func newMemCatalog() *memCatalog {
	return &memCatalog{
		tables: map[string]*table.Table{},
		parts:  map[string][]*table.Table{},
		budget: map[string][]int{},
		policy: map[string]PolicySpec{},
	}
}

func (c *memCatalog) CreateTable(name string, columns []string) error {
	if _, dup := c.tables[name]; dup {
		return fmt.Errorf("table %q exists", name)
	}
	if _, dup := c.parts[name]; dup {
		return fmt.Errorf("table %q exists", name)
	}
	c.tables[name] = table.New(name, columns...)
	return nil
}

func (c *memCatalog) CreatePartitioned(name, column string, domain int64, parts int, strategy string, totalBudget int) error {
	if parts <= 0 || parts > 1<<16 {
		return fmt.Errorf("bad part count %d", parts)
	}
	if _, dup := c.parts[name]; dup {
		return fmt.Errorf("table %q exists", name)
	}
	shards := make([]*table.Table, parts)
	budgets := make([]int, parts)
	for i := range shards {
		shards[i] = table.New(fmt.Sprintf("%s/p%d", name, i), column)
		budgets[i] = totalBudget / parts
	}
	c.parts[name] = shards
	c.budget[name] = budgets
	return nil
}

func (c *memCatalog) Drop(name string) error {
	delete(c.tables, name)
	delete(c.parts, name)
	delete(c.budget, name)
	return nil
}

func (c *memCatalog) Insert(name string, vals map[string][]int64) error {
	t, ok := c.tables[name]
	if !ok {
		return fmt.Errorf("unknown table %q", name)
	}
	_, err := t.AppendBatch(vals)
	return err
}

func (c *memCatalog) positions(name string, ps []int, set bool) error {
	t, ok := c.tables[name]
	if !ok {
		return fmt.Errorf("unknown table %q", name)
	}
	for _, p := range ps {
		if p < 0 || p >= t.Len() {
			return fmt.Errorf("position %d outside table of %d tuples", p, t.Len())
		}
		if set {
			t.Remember(p)
		} else {
			t.Forget(p)
		}
	}
	return nil
}

func (c *memCatalog) Forget(name string, ps []int) error   { return c.positions(name, ps, false) }
func (c *memCatalog) Remember(name string, ps []int) error { return c.positions(name, ps, true) }

func (c *memCatalog) Vacuum(name string) error {
	t, ok := c.tables[name]
	if !ok {
		return fmt.Errorf("unknown table %q", name)
	}
	t.Vacuum()
	return nil
}

func (c *memCatalog) PartInsert(name string, shards []ShardMutation) error {
	set, ok := c.parts[name]
	if !ok {
		return fmt.Errorf("unknown partitioned table %q", name)
	}
	for _, s := range shards {
		if s.Shard < 0 || s.Shard >= len(set) {
			return fmt.Errorf("shard %d outside set of %d", s.Shard, len(set))
		}
		t := set[s.Shard]
		if len(s.Values) > 0 {
			if _, err := t.AppendSingleColumn(s.Values); err != nil {
				return err
			}
		}
		for _, p := range s.Forgotten {
			if p < 0 || p >= t.Len() {
				return fmt.Errorf("position %d outside shard of %d", p, t.Len())
			}
			t.Forget(p)
		}
	}
	return nil
}

func (c *memCatalog) PartAdapt(name string, shards []ShardAdapt) error {
	set, ok := c.parts[name]
	if !ok {
		return fmt.Errorf("unknown partitioned table %q", name)
	}
	for _, s := range shards {
		if s.Shard < 0 || s.Shard >= len(set) {
			return fmt.Errorf("shard %d outside set of %d", s.Shard, len(set))
		}
		c.budget[name][s.Shard] = s.Budget
		for _, p := range s.Forgotten {
			if p < 0 || p >= set[s.Shard].Len() {
				return fmt.Errorf("position %d outside shard", p)
			}
			set[s.Shard].Forget(p)
		}
	}
	return nil
}

func (c *memCatalog) SetPolicy(name string, p PolicySpec) error {
	if _, ok := c.tables[name]; !ok {
		return fmt.Errorf("unknown table %q", name)
	}
	c.policy[name] = p
	return nil
}

// sampleLog builds one valid log exercising every record kind.
func sampleLog(t testing.TB) []byte {
	t.Helper()
	var log []byte
	log = AppendHeader(log)
	log = append(log, RecordCreate("events", []string{"ts", "v"})...)
	ins, err := RecordInsert("events", []string{"ts", "v"}, map[string][]int64{
		"ts": {1, 2, 3, 4}, "v": {10, 20, 30, 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	log = append(log, ins...)
	log = append(log, RecordForget("events", []int{0, 2})...)
	log = append(log, RecordRemember("events", []int{2})...)
	log = append(log, RecordPolicy("events", PolicySpec{Strategy: "fifo", Budget: 3, Column: "v"})...)
	log = append(log, RecordCreatePart("metrics", "m", 1000, 4, "uniform", 100)...)
	log = append(log, RecordPartInsert("metrics", []ShardMutation{
		{Shard: 0, Values: []int64{5, 6}},
		{Shard: 3, Values: []int64{900}},
	})...)
	log = append(log, RecordPartAdapt("metrics", []ShardAdapt{
		{Shard: 0, Budget: 70},
		{Shard: 3, Budget: 10, Forgotten: []int{0}},
	})...)
	log = append(log, RecordVacuum("events")...)
	log = append(log, RecordCreate("tmp", []string{"x"})...)
	log = append(log, RecordDrop("tmp")...)
	return log
}

func TestReplayRoundTrip(t *testing.T) {
	log := sampleLog(t)
	cat := newMemCatalog()
	if err := Replay(bytes.NewReader(log), cat); err != nil {
		t.Fatalf("replay: %v", err)
	}
	ev := cat.tables["events"]
	if ev == nil {
		t.Fatal("events table missing after replay")
	}
	// 4 inserted, positions 0 and 2 forgotten, 2 remembered, then
	// vacuum removed position 0 only.
	if got := ev.Len(); got != 3 {
		t.Fatalf("events has %d tuples after vacuum, want 3", got)
	}
	if got := ev.ActiveCount(); got != 3 {
		t.Fatalf("events has %d active, want 3", got)
	}
	if _, ok := cat.tables["tmp"]; ok {
		t.Fatal("dropped table survived replay")
	}
	if got := cat.policy["events"]; got.Strategy != "fifo" || got.Budget != 3 {
		t.Fatalf("policy not replayed: %+v", got)
	}
	if got := cat.budget["metrics"]; got[0] != 70 || got[3] != 10 {
		t.Fatalf("adapted budgets not replayed: %v", got)
	}
	if got := cat.parts["metrics"][0].Len(); got != 2 {
		t.Fatalf("shard 0 has %d tuples, want 2", got)
	}
	if got := cat.parts["metrics"][3].ActiveCount(); got != 0 {
		t.Fatalf("shard 3 has %d active, want 0 (adapt forgot its tuple)", got)
	}
}

func TestReplayTruncatedTail(t *testing.T) {
	log := sampleLog(t)
	// Every prefix that cuts into a record must replay cleanly up to the
	// cut and report ErrTruncated — the crash boundary contract. Cuts
	// landing exactly on a record boundary replay clean.
	for cut := 0; cut < len(log); cut++ {
		cat := newMemCatalog()
		err := Replay(bytes.NewReader(log[:cut]), cat)
		if err == nil {
			continue
		}
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d: got %v, want ErrTruncated", cut, err)
		}
	}
}

func TestReplayCorruptRecord(t *testing.T) {
	log := sampleLog(t)
	// Flip one payload byte past the header: the CRC must catch it.
	mut := append([]byte(nil), log...)
	mut[HeaderSize+10] ^= 0xff
	err := Replay(bytes.NewReader(mut), newMemCatalog())
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
}

func TestReplayBadHeader(t *testing.T) {
	if err := Replay(bytes.NewReader(nil), newMemCatalog()); !errors.Is(err, ErrTruncated) {
		t.Fatalf("empty stream: got %v, want ErrTruncated", err)
	}
	bad := AppendHeader(nil)
	bad[0] ^= 1
	if err := Replay(bytes.NewReader(bad), newMemCatalog()); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: got %v, want ErrCorrupt", err)
	}
	vers := AppendHeader(nil)
	vers[4] = 99
	if err := Replay(bytes.NewReader(vers), newMemCatalog()); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad version: got %v, want ErrCorrupt", err)
	}
}

func TestReplayApplierMismatchIsCorrupt(t *testing.T) {
	// A CRC-valid record that contradicts the catalog (forget on an
	// unknown table) is corruption, not a panic.
	var log []byte
	log = AppendHeader(log)
	log = append(log, RecordForget("ghost", []int{0})...)
	err := Replay(bytes.NewReader(log), newMemCatalog())
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
}

func TestRecordInsertMissingColumn(t *testing.T) {
	if _, err := RecordInsert("t", []string{"a", "b"}, map[string][]int64{"a": {1}}); err == nil {
		t.Fatal("RecordInsert accepted a batch missing a schema column")
	}
}

func TestInsertEncodingIdentity(t *testing.T) {
	// Values survive the varint round trip exactly, including extremes.
	vals := map[string][]int64{"a": {0, -1, 1, 1 << 62, -(1 << 62)}}
	var log []byte
	log = AppendHeader(log)
	log = append(log, RecordCreate("t", []string{"a"})...)
	rec, err := RecordInsert("t", []string{"a"}, vals)
	if err != nil {
		t.Fatal(err)
	}
	log = append(log, rec...)
	cat := newMemCatalog()
	if err := Replay(bytes.NewReader(log), cat); err != nil {
		t.Fatal(err)
	}
	got := cat.tables["t"].MustColumn("a").Values()
	if !reflect.DeepEqual(got, vals["a"]) {
		t.Fatalf("values corrupted: got %v want %v", got, vals["a"])
	}
}
