package wal

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"amnesiadb/internal/table"
	"amnesiadb/internal/xrand"
)

func sameTables(t *testing.T, a, b *table.Table) {
	t.Helper()
	if a.Len() != b.Len() || a.ActiveCount() != b.ActiveCount() || a.Batches() != b.Batches() {
		t.Fatalf("shape differs: len %d/%d active %d/%d batches %d/%d",
			a.Len(), b.Len(), a.ActiveCount(), b.ActiveCount(), a.Batches(), b.Batches())
	}
	for _, cn := range a.Columns() {
		ca, cb := a.MustColumn(cn), b.MustColumn(cn)
		for i := 0; i < a.Len(); i++ {
			if ca.Get(i) != cb.Get(i) {
				t.Fatalf("column %s row %d differs", cn, i)
			}
		}
	}
	for i := 0; i < a.Len(); i++ {
		if a.IsActive(i) != b.IsActive(i) {
			t.Fatalf("active bit %d differs", i)
		}
	}
}

func TestReplayReproducesTable(t *testing.T) {
	var buf bytes.Buffer
	src := xrand.New(1)
	tb := table.New("t", "a", "b")
	rec := NewRecorder(tb, &buf)

	for round := 0; round < 10; round++ {
		n := 50 + src.Intn(50)
		a := make([]int64, n)
		b := make([]int64, n)
		for i := range a {
			a[i] = src.Int63n(1000)
			b[i] = src.Int63n(1000)
		}
		if _, err := rec.AppendBatch(map[string][]int64{"a": a, "b": b}); err != nil {
			t.Fatal(err)
		}
		var forget []int
		for i := 0; i < tb.Len(); i++ {
			if tb.IsActive(i) && src.Bool(0.1) {
				forget = append(forget, i)
			}
		}
		if err := rec.ForgetMany(forget); err != nil {
			t.Fatal(err)
		}
	}

	replayed := table.New("t", "a", "b")
	if err := Replay(&buf, replayed); err != nil {
		t.Fatal(err)
	}
	sameTables(t, tb, replayed)
}

func TestReplayWithVacuum(t *testing.T) {
	var buf bytes.Buffer
	tb := table.New("t", "a")
	rec := NewRecorder(tb, &buf)
	if _, err := rec.AppendBatch(map[string][]int64{"a": {1, 2, 3, 4, 5}}); err != nil {
		t.Fatal(err)
	}
	if err := rec.ForgetMany([]int{0, 2}); err != nil {
		t.Fatal(err)
	}
	if err := rec.Vacuum(); err != nil {
		t.Fatal(err)
	}
	if _, err := rec.AppendBatch(map[string][]int64{"a": {6}}); err != nil {
		t.Fatal(err)
	}

	replayed := table.New("t", "a")
	if err := Replay(&buf, replayed); err != nil {
		t.Fatal(err)
	}
	sameTables(t, tb, replayed)
}

func TestRememberRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Insert([]string{"a"}, map[string][]int64{"a": {1, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Forget([]int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Remember([]int{1}); err != nil {
		t.Fatal(err)
	}
	tb := table.New("t", "a")
	if err := Replay(&buf, tb); err != nil {
		t.Fatal(err)
	}
	if tb.IsActive(0) || !tb.IsActive(1) {
		t.Fatal("remember record not applied")
	}
}

func TestReplayTruncatedTail(t *testing.T) {
	var buf bytes.Buffer
	tb := table.New("t", "a")
	rec := NewRecorder(tb, &buf)
	if _, err := rec.AppendBatch(map[string][]int64{"a": {1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	if err := rec.ForgetMany([]int{1}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Chop into the middle of the second record.
	cut := full[:len(full)-3]
	replayed := table.New("t", "a")
	err := Replay(bytes.NewReader(cut), replayed)
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	// The complete first record must have been applied.
	if replayed.Len() != 3 || replayed.ActiveCount() != 3 {
		t.Fatalf("prefix not applied: len=%d", replayed.Len())
	}
}

func TestReplayCorruptRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Insert([]string{"a"}, map[string][]int64{"a": {1}}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[7] ^= 0xff // flip a payload byte
	err := Replay(bytes.NewReader(b), table.New("t", "a"))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestReplayRejectsBadPositions(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Forget([]int{5}); err != nil { // forget before any insert
		t.Fatal(err)
	}
	if err := Replay(&buf, table.New("t", "a")); err == nil {
		t.Fatal("out-of-range forget accepted")
	}
}

func TestInsertMissingColumn(t *testing.T) {
	w := NewWriter(io.Discard)
	if err := w.Insert([]string{"a", "b"}, map[string][]int64{"a": {1}}); err == nil {
		t.Fatal("missing column accepted")
	}
}

func TestEmptyLogReplaysToEmptyTable(t *testing.T) {
	tb := table.New("t", "a")
	if err := Replay(bytes.NewReader(nil), tb); err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 0 {
		t.Fatal("phantom tuples")
	}
}

func TestSnapshotPlusWalPointInTime(t *testing.T) {
	// The recovery story: snapshot at batch 5, WAL for the tail, replay
	// both and land exactly at the final state. Snapshot replay is
	// exercised in package snapshot; here the log alone reproduces the
	// suffix applied to a restored prefix — we emulate the restore by
	// replaying the full log from scratch and comparing against the
	// live table after extra operations.
	var log bytes.Buffer
	tb := table.New("t", "a")
	rec := NewRecorder(tb, &log)
	for i := 0; i < 5; i++ {
		if _, err := rec.AppendBatch(map[string][]int64{"a": {int64(i), int64(i * 10)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := rec.ForgetMany([]int{0, 3}); err != nil {
		t.Fatal(err)
	}
	replayed := table.New("t", "a")
	if err := Replay(bytes.NewReader(log.Bytes()), replayed); err != nil {
		t.Fatal(err)
	}
	sameTables(t, tb, replayed)
}
