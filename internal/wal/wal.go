// Package wal implements the catalog-wide write-ahead log for
// amnesiadb: length-prefixed, CRC-32-guarded records framed with a
// relation name and a record kind, covering every mutating operation of
// the whole namespace — flat-table inserts/forgets/remembers/vacuums,
// partition-set inserts and budget adaptations, policy changes, and the
// DDL that creates and drops relations. Replaying a log reproduces the
// catalog state bit-for-bit (including amnesia decisions, which are
// logged as plain forget records — the log captures *what* was
// forgotten, not why, so replay needs no strategy or seed).
//
// The stream starts with a versioned file header (magic "AMWL",
// format version), so segments from older layouts are rejected rather
// than misparsed. Snapshots (package snapshot) capture a moment; the
// WAL captures the journey — together they give point-in-time
// recovery: restore the last snapshot, replay the tail of the log.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Kind tags log records.
type Kind byte

const (
	// KindInsert appends one batch to a flat table.
	KindInsert Kind = iota + 1
	// KindForget marks tuple positions inactive.
	KindForget
	// KindRemember reactivates tuple positions (cold-storage recovery).
	KindRemember
	// KindVacuum physically compacts a relation.
	KindVacuum
	// KindCreate creates a flat table (DDL).
	KindCreate
	// KindCreatePart creates a partitioned table (DDL).
	KindCreatePart
	// KindDrop removes a relation from the catalog (DDL).
	KindDrop
	// KindPartInsert appends a routed batch to a partition set, with the
	// per-shard forgets its budget enforcement chose.
	KindPartInsert
	// KindPartAdapt rewrites a partition set's per-shard budgets, with
	// the per-shard forgets the re-enforcement chose.
	KindPartAdapt
	// KindPolicy installs (or clears) a flat table's amnesia policy.
	KindPolicy
	kindMax
)

// File header: magic + format version, so a segment from a different
// layout fails loudly instead of misparsing.
const (
	Magic   = 0x414d574c // "AMWL"
	Version = 2
)

// HeaderSize is the encoded file header length in bytes.
const HeaderSize = 8

// ErrTruncated reports a partial trailing record (or header); everything
// before it replayed fine. Callers treat it as a clean crash boundary.
var ErrTruncated = errors.New("wal: truncated trailing record")

// ErrCorrupt reports a record whose checksum failed, whose payload does
// not decode, or whose content contradicts the catalog it replays into.
var ErrCorrupt = errors.New("wal: corrupt record")

// ErrApply marks the subset of ErrCorrupt where the record itself was
// structurally intact (framing and checksum valid) but the applier
// rejected it — the log does not fit the catalog it is replayed into.
// Recovery must never treat such a record as a torn tail: it was fully
// written, so discarding it would discard acknowledged history.
var ErrApply = errors.New("wal: applier rejected record")

// ShardMutation is one shard's slice of a partition-set insert: the
// values routed to it and the positions its budget enforcement forgot.
type ShardMutation struct {
	Shard     int
	Values    []int64
	Forgotten []int
}

// ShardAdapt is one shard's slice of a partition-set Adapt: its new
// budget and the positions the re-enforcement forgot.
type ShardAdapt struct {
	Shard     int
	Budget    int
	Forgotten []int
}

// PolicySpec mirrors the facade's Policy for logging: strategy name,
// budget, value column and retention window.
type PolicySpec struct {
	Strategy      string
	Budget        int
	Column        string
	MaxAgeBatches int
}

// Applier receives decoded records during Replay. Implementations
// apply them to a live catalog; errors abort the replay (wrapped in
// ErrCorrupt — a log that does not fit the catalog is corrupt).
type Applier interface {
	CreateTable(name string, columns []string) error
	CreatePartitioned(name, column string, domain int64, parts int, strategy string, totalBudget int) error
	Drop(name string) error
	Insert(name string, vals map[string][]int64) error
	Forget(name string, positions []int) error
	Remember(name string, positions []int) error
	Vacuum(name string) error
	PartInsert(name string, shards []ShardMutation) error
	PartAdapt(name string, shards []ShardAdapt) error
	SetPolicy(name string, p PolicySpec) error
}

// AppendHeader appends the versioned file header to dst. Every segment
// starts with one.
func AppendHeader(dst []byte) []byte {
	var h [HeaderSize]byte
	binary.LittleEndian.PutUint32(h[0:], Magic)
	binary.LittleEndian.PutUint32(h[4:], Version)
	return append(dst, h[:]...)
}

// frame appends one framed record — kind, length, payload, CRC-32 over
// all three — to dst.
func frame(dst []byte, kind Kind, payload []byte) []byte {
	var hdr [5]byte
	hdr[0] = byte(kind)
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	crc := crc32.NewIEEE()
	crc.Write(hdr[:])
	crc.Write(payload)
	dst = append(dst, hdr[:]...)
	dst = append(dst, payload...)
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	return append(dst, sum[:]...)
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendPositions(b []byte, positions []int) []byte {
	b = binary.AppendUvarint(b, uint64(len(positions)))
	prev := 0
	for _, p := range positions {
		b = binary.AppendVarint(b, int64(p-prev)) // delta encoding
		prev = p
	}
	return b
}

func appendValues(b []byte, vs []int64) []byte {
	b = binary.AppendUvarint(b, uint64(len(vs)))
	for _, v := range vs {
		b = binary.AppendVarint(b, v)
	}
	return b
}

// RecordCreate encodes a flat-table CREATE.
func RecordCreate(name string, columns []string) []byte {
	b := appendString(nil, name)
	b = binary.AppendUvarint(b, uint64(len(columns)))
	for _, c := range columns {
		b = appendString(b, c)
	}
	return frame(nil, KindCreate, b)
}

// RecordCreatePart encodes a partitioned-table CREATE.
func RecordCreatePart(name, column string, domain int64, parts int, strategy string, totalBudget int) []byte {
	b := appendString(nil, name)
	b = appendString(b, column)
	b = binary.AppendVarint(b, domain)
	b = binary.AppendUvarint(b, uint64(parts))
	b = appendString(b, strategy)
	b = binary.AppendUvarint(b, uint64(totalBudget))
	return frame(nil, KindCreatePart, b)
}

// RecordDrop encodes a DROP of either relation kind.
func RecordDrop(name string) []byte {
	return frame(nil, KindDrop, appendString(nil, name))
}

// RecordInsert encodes one flat-table batch: per schema column (in
// schema order), the values appended.
func RecordInsert(name string, cols []string, vals map[string][]int64) ([]byte, error) {
	b := appendString(nil, name)
	b = binary.AppendUvarint(b, uint64(len(cols)))
	for _, c := range cols {
		vs, ok := vals[c]
		if !ok {
			return nil, fmt.Errorf("wal: insert missing column %q", c)
		}
		b = appendString(b, c)
		b = appendValues(b, vs)
	}
	return frame(nil, KindInsert, b), nil
}

// RecordForget encodes tuple positions marked inactive.
func RecordForget(name string, positions []int) []byte {
	return frame(nil, KindForget, appendPositions(appendString(nil, name), positions))
}

// RecordRemember encodes tuple positions reactivated.
func RecordRemember(name string, positions []int) []byte {
	return frame(nil, KindRemember, appendPositions(appendString(nil, name), positions))
}

// RecordVacuum encodes a physical compaction point.
func RecordVacuum(name string) []byte {
	return frame(nil, KindVacuum, appendString(nil, name))
}

// RecordPartInsert encodes a partition-set insert: per affected shard,
// the values routed to it and the forgets its budget enforcement chose.
func RecordPartInsert(name string, shards []ShardMutation) []byte {
	b := appendString(nil, name)
	b = binary.AppendUvarint(b, uint64(len(shards)))
	for _, s := range shards {
		b = binary.AppendUvarint(b, uint64(s.Shard))
		b = appendValues(b, s.Values)
		b = appendPositions(b, s.Forgotten)
	}
	return frame(nil, KindPartInsert, b)
}

// RecordPartAdapt encodes a partition-set Adapt: per shard, the new
// budget and the forgets the re-enforcement chose.
func RecordPartAdapt(name string, shards []ShardAdapt) []byte {
	b := appendString(nil, name)
	b = binary.AppendUvarint(b, uint64(len(shards)))
	for _, s := range shards {
		b = binary.AppendUvarint(b, uint64(s.Shard))
		b = binary.AppendUvarint(b, uint64(s.Budget))
		b = appendPositions(b, s.Forgotten)
	}
	return frame(nil, KindPartAdapt, b)
}

// RecordPolicy encodes a flat-table policy change.
func RecordPolicy(name string, p PolicySpec) []byte {
	b := appendString(nil, name)
	b = appendString(b, p.Strategy)
	b = binary.AppendUvarint(b, uint64(p.Budget))
	b = appendString(b, p.Column)
	b = binary.AppendUvarint(b, uint64(p.MaxAgeBatches))
	return frame(nil, KindPolicy, b)
}

// Replay applies every record in r — which must start with the file
// header — to a. On a truncated tail (or truncated header of an
// otherwise empty stream) it returns ErrTruncated after applying all
// complete records; on a checksum or decode failure, or an applier
// error, it returns an error wrapping ErrCorrupt (applier errors also
// wrap ErrApply). Replay never panics on malformed input.
func Replay(r io.Reader, a Applier) error {
	_, err := ReplayOffset(r, a)
	return err
}

// ReplayOffset is Replay reporting where it stopped: off is the byte
// offset of the first record NOT fully applied — the stream length on
// success, the failing record's start on error. Recovery uses the
// offset to examine what a failure left behind (torn tail vs damage in
// the middle of acknowledged history).
func ReplayOffset(r io.Reader, a Applier) (off int64, err error) {
	cr := &countingReader{r: r}
	br := bufio.NewReader(cr)
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, ErrTruncated
	}
	if got := binary.LittleEndian.Uint32(hdr[0:]); got != Magic {
		return 0, fmt.Errorf("%w: bad magic %#x", ErrCorrupt, got)
	}
	if got := binary.LittleEndian.Uint32(hdr[4:]); got != Version {
		return 0, fmt.Errorf("%w: unsupported format version %d", ErrCorrupt, got)
	}
	for {
		off = cr.n - int64(br.Buffered())
		kind, payload, err := readRecord(br)
		if errors.Is(err, io.EOF) {
			return off, nil
		}
		if err != nil {
			return off, err
		}
		if err := apply(a, kind, payload); err != nil {
			if errors.Is(err, ErrCorrupt) {
				return off, err
			}
			return off, fmt.Errorf("%w: %w: %v", ErrCorrupt, ErrApply, err)
		}
	}
}

// countingReader tracks how many bytes the underlying reader has
// yielded, so ReplayOffset can locate a record even through bufio's
// readahead (position = yielded − still buffered).
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// ContainsRecord reports whether data holds a well-formed framed record
// (known kind, plausible length, valid CRC) starting at ANY byte
// offset. Recovery uses it to classify a corrupt record in the newest
// segment: nothing decodable after the failure point means a torn tail
// (a crash mid-write, safe crash boundary), while a valid record after
// it means acknowledged history was damaged mid-segment. The scan is
// quadratic in the worst case but only ever runs over the bytes past a
// failed replay, which a genuine torn write keeps short.
func ContainsRecord(data []byte) bool {
	const overhead = 5 + 4 // kind + length prefix, CRC suffix
	for i := 0; i+overhead <= len(data); i++ {
		if data[i] == 0 || Kind(data[i]) >= kindMax {
			continue
		}
		n := int64(binary.LittleEndian.Uint32(data[i+1:]))
		end := int64(i) + overhead + n
		if n > 1<<30 || end > int64(len(data)) {
			continue
		}
		crc := crc32.NewIEEE()
		crc.Write(data[i : i+5+int(n)])
		if crc.Sum32() == binary.LittleEndian.Uint32(data[end-4:]) {
			return true
		}
	}
	return false
}

func readRecord(br *bufio.Reader) (Kind, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(br, hdr[:1]); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil, io.EOF
		}
		return 0, nil, ErrTruncated
	}
	if _, err := io.ReadFull(br, hdr[1:]); err != nil {
		return 0, nil, ErrTruncated
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > 1<<30 {
		return 0, nil, fmt.Errorf("%w: implausible record length %d", ErrCorrupt, n)
	}
	// The length field is untrusted (corruption can claim up to the 1GiB
	// cap), so grow the buffer chunk by chunk as bytes actually arrive
	// instead of allocating the claimed size upfront.
	payload := make([]byte, 0, min(int(n), 1<<20))
	for remaining := int(n); remaining > 0; {
		chunk := min(remaining, 1<<20)
		off := len(payload)
		payload = append(payload, make([]byte, chunk)...)
		if _, err := io.ReadFull(br, payload[off:]); err != nil {
			return 0, nil, ErrTruncated
		}
		remaining -= chunk
	}
	var sum [4]byte
	if _, err := io.ReadFull(br, sum[:]); err != nil {
		return 0, nil, ErrTruncated
	}
	crc := crc32.NewIEEE()
	crc.Write(hdr[:])
	crc.Write(payload)
	if crc.Sum32() != binary.LittleEndian.Uint32(sum[:]) {
		return 0, nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return Kind(hdr[0]), payload, nil
}

// dec is a cursor over one record's payload; decoding errors stick so
// call sites stay linear.
type dec struct {
	b   []byte
	err error
}

func (d *dec) uvar() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.err = fmt.Errorf("%w: bad uvarint", ErrCorrupt)
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.err = fmt.Errorf("%w: bad varint", ErrCorrupt)
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) str() string {
	n := d.uvar()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.b)) < n || n > 1<<20 {
		d.err = fmt.Errorf("%w: short string", ErrCorrupt)
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *dec) values() []int64 {
	n := d.uvar()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)) { // every varint takes >= 1 byte
		d.err = fmt.Errorf("%w: implausible value count %d", ErrCorrupt, n)
		return nil
	}
	out := make([]int64, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, d.varint())
		if d.err != nil {
			return nil
		}
	}
	return out
}

func (d *dec) positions() []int {
	n := d.uvar()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)) {
		d.err = fmt.Errorf("%w: implausible position count %d", ErrCorrupt, n)
		return nil
	}
	out := make([]int, 0, n)
	prev := int64(0)
	for i := uint64(0); i < n; i++ {
		prev += d.varint()
		if d.err != nil {
			return nil
		}
		out = append(out, int(prev))
	}
	return out
}

func apply(a Applier, kind Kind, payload []byte) error {
	d := &dec{b: payload}
	name := d.str()
	if d.err != nil {
		return d.err
	}
	switch kind {
	case KindCreate:
		nCols := d.uvar()
		if d.err != nil {
			return d.err
		}
		if nCols == 0 || nCols > 1<<16 {
			return fmt.Errorf("%w: implausible column count %d", ErrCorrupt, nCols)
		}
		cols := make([]string, 0, nCols)
		for i := uint64(0); i < nCols; i++ {
			cols = append(cols, d.str())
		}
		if d.err != nil {
			return d.err
		}
		return a.CreateTable(name, cols)
	case KindCreatePart:
		column := d.str()
		domain := d.varint()
		parts := d.uvar()
		strategy := d.str()
		budget := d.uvar()
		if d.err != nil {
			return d.err
		}
		if parts > 1<<20 || budget > 1<<40 {
			return fmt.Errorf("%w: implausible partition spec", ErrCorrupt)
		}
		return a.CreatePartitioned(name, column, domain, int(parts), strategy, int(budget))
	case KindDrop:
		return a.Drop(name)
	case KindInsert:
		nCols := d.uvar()
		if d.err != nil {
			return d.err
		}
		if nCols > 1<<16 {
			return fmt.Errorf("%w: implausible column count %d", ErrCorrupt, nCols)
		}
		vals := make(map[string][]int64, nCols)
		for i := uint64(0); i < nCols; i++ {
			col := d.str()
			vs := d.values()
			if d.err != nil {
				return d.err
			}
			vals[col] = vs
		}
		return a.Insert(name, vals)
	case KindForget:
		ps := d.positions()
		if d.err != nil {
			return d.err
		}
		return a.Forget(name, ps)
	case KindRemember:
		ps := d.positions()
		if d.err != nil {
			return d.err
		}
		return a.Remember(name, ps)
	case KindVacuum:
		return a.Vacuum(name)
	case KindPartInsert:
		n := d.uvar()
		if d.err != nil {
			return d.err
		}
		if n > 1<<20 {
			return fmt.Errorf("%w: implausible shard count %d", ErrCorrupt, n)
		}
		shards := make([]ShardMutation, 0, n)
		for i := uint64(0); i < n; i++ {
			idx := d.uvar()
			vs := d.values()
			ps := d.positions()
			if d.err != nil {
				return d.err
			}
			shards = append(shards, ShardMutation{Shard: int(idx), Values: vs, Forgotten: ps})
		}
		return a.PartInsert(name, shards)
	case KindPartAdapt:
		n := d.uvar()
		if d.err != nil {
			return d.err
		}
		if n > 1<<20 {
			return fmt.Errorf("%w: implausible shard count %d", ErrCorrupt, n)
		}
		shards := make([]ShardAdapt, 0, n)
		for i := uint64(0); i < n; i++ {
			idx := d.uvar()
			budget := d.uvar()
			ps := d.positions()
			if d.err != nil {
				return d.err
			}
			shards = append(shards, ShardAdapt{Shard: int(idx), Budget: int(budget), Forgotten: ps})
		}
		return a.PartAdapt(name, shards)
	case KindPolicy:
		p := PolicySpec{Strategy: d.str()}
		p.Budget = int(d.uvar())
		p.Column = d.str()
		p.MaxAgeBatches = int(d.uvar())
		if d.err != nil {
			return d.err
		}
		return a.SetPolicy(name, p)
	default:
		return fmt.Errorf("%w: unknown record kind %d", ErrCorrupt, kind)
	}
}
