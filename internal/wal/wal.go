// Package wal implements a write-ahead log for amnesiadb tables:
// length-prefixed, CRC-32-guarded records for inserts, forgets, explicit
// remembers and vacuums. Replaying a log reproduces the table state
// bit-for-bit (including amnesia decisions, which are logged as plain
// forget records — the log captures *what* was forgotten, not why, so
// replay needs no strategy or seed).
//
// Snapshots (package snapshot) capture a moment; the WAL captures the
// journey — together they give point-in-time recovery: restore the last
// snapshot, replay the tail of the log.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"amnesiadb/internal/table"
)

// recordKind tags log records.
type recordKind byte

const (
	recInsert recordKind = iota + 1
	recForget
	recRemember
	recVacuum
)

// ErrTruncated reports a partial trailing record; everything before it
// replayed fine. Callers treat it as a clean crash boundary.
var ErrTruncated = errors.New("wal: truncated trailing record")

// ErrCorrupt reports a record whose checksum failed.
var ErrCorrupt = errors.New("wal: checksum mismatch")

// Writer appends records to a log stream.
type Writer struct {
	w   *bufio.Writer
	buf []byte
}

// NewWriter returns a Writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// record frames and writes one payload: kind, length, payload, crc.
func (l *Writer) record(kind recordKind, payload []byte) error {
	var hdr [1 + 4]byte
	hdr[0] = byte(kind)
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	crc := crc32.NewIEEE()
	crc.Write(hdr[:])
	crc.Write(payload)
	if _, err := l.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := l.w.Write(payload); err != nil {
		return err
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	if _, err := l.w.Write(sum[:]); err != nil {
		return err
	}
	return l.w.Flush()
}

// Insert logs one batch: per schema column, the values appended.
// Columns must arrive in schema order on every call.
func (l *Writer) Insert(cols []string, vals map[string][]int64) error {
	b := l.buf[:0]
	b = binary.AppendUvarint(b, uint64(len(cols)))
	for _, c := range cols {
		vs, ok := vals[c]
		if !ok {
			return fmt.Errorf("wal: insert missing column %q", c)
		}
		b = binary.AppendUvarint(b, uint64(len(c)))
		b = append(b, c...)
		b = binary.AppendUvarint(b, uint64(len(vs)))
		for _, v := range vs {
			b = binary.AppendVarint(b, v)
		}
	}
	l.buf = b
	return l.record(recInsert, b)
}

// Forget logs tuple positions marked inactive.
func (l *Writer) Forget(positions []int) error {
	return l.positions(recForget, positions)
}

// Remember logs tuple positions reactivated (cold-storage recovery).
func (l *Writer) Remember(positions []int) error {
	return l.positions(recRemember, positions)
}

func (l *Writer) positions(kind recordKind, positions []int) error {
	b := l.buf[:0]
	b = binary.AppendUvarint(b, uint64(len(positions)))
	prev := 0
	for _, p := range positions {
		b = binary.AppendVarint(b, int64(p-prev)) // delta encoding
		prev = p
	}
	l.buf = b
	return l.record(kind, b)
}

// Vacuum logs a physical compaction point.
func (l *Writer) Vacuum() error { return l.record(recVacuum, nil) }

// Replay applies every record in r to t, which must be a freshly created
// table with the same schema the log was written against. On a truncated
// tail it returns ErrTruncated after applying all complete records; on a
// checksum failure it returns ErrCorrupt.
func Replay(r io.Reader, t *table.Table) error {
	br := bufio.NewReader(r)
	for {
		kind, payload, err := readRecord(br)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := apply(t, kind, payload); err != nil {
			return err
		}
	}
}

func readRecord(br *bufio.Reader) (recordKind, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(br, hdr[:1]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, ErrTruncated
	}
	if _, err := io.ReadFull(br, hdr[1:]); err != nil {
		return 0, nil, ErrTruncated
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > 1<<30 {
		return 0, nil, fmt.Errorf("wal: implausible record length %d", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		return 0, nil, ErrTruncated
	}
	var sum [4]byte
	if _, err := io.ReadFull(br, sum[:]); err != nil {
		return 0, nil, ErrTruncated
	}
	crc := crc32.NewIEEE()
	crc.Write(hdr[:])
	crc.Write(payload)
	if crc.Sum32() != binary.LittleEndian.Uint32(sum[:]) {
		return 0, nil, ErrCorrupt
	}
	return recordKind(hdr[0]), payload, nil
}

func apply(t *table.Table, kind recordKind, payload []byte) error {
	switch kind {
	case recInsert:
		vals, err := decodeInsert(payload)
		if err != nil {
			return err
		}
		_, err = t.AppendBatch(vals)
		return err
	case recForget, recRemember:
		positions, err := decodePositions(payload)
		if err != nil {
			return err
		}
		for _, p := range positions {
			if p < 0 || p >= t.Len() {
				return fmt.Errorf("wal: position %d outside table of %d tuples", p, t.Len())
			}
			if kind == recForget {
				t.Forget(p)
			} else {
				t.Remember(p)
			}
		}
		return nil
	case recVacuum:
		t.Vacuum()
		return nil
	default:
		return fmt.Errorf("wal: unknown record kind %d", kind)
	}
}

func decodeInsert(b []byte) (map[string][]int64, error) {
	nCols, b, err := uvar(b)
	if err != nil {
		return nil, err
	}
	if nCols > 1<<16 {
		return nil, fmt.Errorf("wal: implausible column count %d", nCols)
	}
	out := make(map[string][]int64, nCols)
	for c := uint64(0); c < nCols; c++ {
		nameLen, rest, err := uvar(b)
		if err != nil {
			return nil, err
		}
		b = rest
		if uint64(len(b)) < nameLen {
			return nil, fmt.Errorf("wal: short column name")
		}
		name := string(b[:nameLen])
		b = b[nameLen:]
		count, rest, err := uvar(b)
		if err != nil {
			return nil, err
		}
		b = rest
		vs := make([]int64, 0, count)
		for i := uint64(0); i < count; i++ {
			v, n := binary.Varint(b)
			if n <= 0 {
				return nil, fmt.Errorf("wal: bad value varint")
			}
			b = b[n:]
			vs = append(vs, v)
		}
		out[name] = vs
	}
	return out, nil
}

func decodePositions(b []byte) ([]int, error) {
	count, b, err := uvar(b)
	if err != nil {
		return nil, err
	}
	if count > 1<<30 {
		return nil, fmt.Errorf("wal: implausible position count %d", count)
	}
	out := make([]int, 0, count)
	prev := int64(0)
	for i := uint64(0); i < count; i++ {
		d, n := binary.Varint(b)
		if n <= 0 {
			return nil, fmt.Errorf("wal: bad position varint")
		}
		b = b[n:]
		prev += d
		out = append(out, int(prev))
	}
	return out, nil
}

func uvar(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("wal: bad uvarint")
	}
	return v, b[n:], nil
}

// Recorder wraps a table so that every mutation is logged before being
// applied — the write-ahead discipline. Reads go to the table directly.
type Recorder struct {
	t   *table.Table
	log *Writer
}

// NewRecorder returns a Recorder logging t's mutations to w.
func NewRecorder(t *table.Table, w io.Writer) *Recorder {
	return &Recorder{t: t, log: NewWriter(w)}
}

// Table returns the wrapped table for reads.
func (r *Recorder) Table() *table.Table { return r.t }

// AppendBatch logs then applies an insert.
func (r *Recorder) AppendBatch(vals map[string][]int64) (int, error) {
	if err := r.log.Insert(r.t.Columns(), vals); err != nil {
		return 0, err
	}
	return r.t.AppendBatch(vals)
}

// ForgetMany logs then applies forgetting.
func (r *Recorder) ForgetMany(positions []int) error {
	if err := r.log.Forget(positions); err != nil {
		return err
	}
	r.t.ForgetMany(positions)
	return nil
}

// Vacuum logs then applies compaction.
func (r *Recorder) Vacuum() error {
	if err := r.log.Vacuum(); err != nil {
		return err
	}
	r.t.Vacuum()
	return nil
}
