package wal

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzReplay feeds arbitrary bytes to Replay. The contract under fuzzing:
// never panic, never report success-with-garbage as anything other than
// nil/ErrTruncated/ErrCorrupt.
func FuzzReplay(f *testing.F) {
	valid := sampleLog(f)
	f.Add(valid)
	f.Add(valid[:HeaderSize])
	f.Add([]byte{})
	f.Add(AppendHeader(nil))
	// A few canned corruptions so the corpus starts near the format.
	for _, cut := range []int{1, HeaderSize - 1, HeaderSize + 3, len(valid) / 2, len(valid) - 1} {
		f.Add(append([]byte(nil), valid[:cut]...))
	}
	flip := append([]byte(nil), valid...)
	flip[HeaderSize+2] ^= 0x40
	f.Add(flip)

	f.Fuzz(func(t *testing.T, data []byte) {
		err := Replay(bytes.NewReader(data), newMemCatalog())
		if err != nil && !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("replay returned unexpected error class: %v", err)
		}
	})
}
