// Package dist generates the four synthetic data distributions of the
// paper's evaluation (§4.1): serial (monotonically increasing keys),
// uniform, normal ("a normal distribution around the middle of the
// domain"), and zipfian (the skewed 80-20 shape of §4.1's "skewed"
// series). Every generator draws from an internal/xrand stream, so runs
// with equal seeds produce bit-identical value sequences.
package dist

import (
	"fmt"

	"amnesiadb/internal/xrand"
)

// Kind identifies a data distribution.
type Kind int

// The four distributions of the paper's evaluation.
const (
	// Serial produces 0, 1, 2, ... wrapping at the domain bound —
	// monotone keys and timestamps.
	Serial Kind = iota
	// Uniform draws uniformly over [0, domain).
	Uniform
	// Normal draws a truncated normal centred at domain/2 with standard
	// deviation domain/8.
	Normal
	// Zipf draws a Zipfian (theta = 1) rank over [0, domain); rank 0 is
	// the most frequent value.
	Zipf
)

// Kinds lists every distribution in the order the paper's figures use.
var Kinds = []Kind{Serial, Uniform, Normal, Zipf}

// String returns the name used in figures, CSV headers and flags.
func (k Kind) String() string {
	switch k {
	case Serial:
		return "serial"
	case Uniform:
		return "uniform"
	case Normal:
		return "normal"
	case Zipf:
		return "zipfian"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind resolves a distribution name ("serial", "uniform", "normal",
// "zipfian"; "zipf" is accepted as an alias).
func ParseKind(name string) (Kind, error) {
	switch name {
	case "serial":
		return Serial, nil
	case "uniform":
		return Uniform, nil
	case "normal":
		return Normal, nil
	case "zipfian", "zipf":
		return Zipf, nil
	default:
		return 0, fmt.Errorf("dist: unknown distribution %q", name)
	}
}

// Generator produces an endless deterministic stream of attribute values
// in [0, domain) following one distribution. It is not safe for
// concurrent use; give each goroutine its own generator via Source.Split.
type Generator struct {
	kind   Kind
	domain int64
	src    *xrand.Source
	serial int64
	zipf   *xrand.Zipf
}

// zipfTheta is the exponent of the zipfian generator; 1.0 reproduces the
// Pareto 80-20 skew the paper's "skewed" series models.
const zipfTheta = 1.0

// NewGenerator returns a generator for kind over the half-open value
// domain [0, domain). It panics if domain <= 0 or kind is invalid.
func NewGenerator(kind Kind, domain int64, src *xrand.Source) *Generator {
	if domain <= 0 {
		panic(fmt.Sprintf("dist: domain %d must be positive", domain))
	}
	if src == nil {
		panic("dist: NewGenerator with nil source")
	}
	g := &Generator{kind: kind, domain: domain, src: src}
	switch kind {
	case Serial, Uniform, Normal:
	case Zipf:
		g.zipf = xrand.NewZipf(src, uint64(domain), zipfTheta)
	default:
		panic(fmt.Sprintf("dist: invalid kind %d", int(kind)))
	}
	return g
}

// Kind returns the generator's distribution.
func (g *Generator) Kind() Kind { return g.kind }

// Next returns the next value of the stream.
func (g *Generator) Next() int64 {
	switch g.kind {
	case Serial:
		v := g.serial
		g.serial++
		if g.serial == g.domain {
			g.serial = 0
		}
		return v
	case Uniform:
		return g.src.Int63n(g.domain)
	case Normal:
		mean := float64(g.domain) / 2
		sd := float64(g.domain) / 8
		for {
			v := int64(mean + sd*g.src.NormFloat64())
			if v >= 0 && v < g.domain {
				return v
			}
		}
	case Zipf:
		return int64(g.zipf.Next())
	default:
		panic(fmt.Sprintf("dist: invalid kind %d", int(g.kind)))
	}
}

// Batch fills and returns a slice of n values, reusing buf's backing
// array when it has the capacity — the same caller-provided-buffer
// convention the batch scan kernels use.
func (g *Generator) Batch(buf []int64, n int) []int64 {
	if cap(buf) < n {
		buf = make([]int64, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = g.Next()
	}
	return buf
}
