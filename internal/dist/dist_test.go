package dist

import (
	"testing"

	"amnesiadb/internal/xrand"
)

func TestKindNamesRoundTrip(t *testing.T) {
	for _, k := range Kinds {
		got, err := ParseKind(k.String())
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", k, err)
		}
		if got != k {
			t.Fatalf("ParseKind(%q) = %v, want %v", k, got, k)
		}
	}
	if k, err := ParseKind("zipf"); err != nil || k != Zipf {
		t.Fatalf("zipf alias: %v, %v", k, err)
	}
	if _, err := ParseKind("pareto"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestKindsOrderMatchesPaperFigures(t *testing.T) {
	want := []string{"serial", "uniform", "normal", "zipfian"}
	if len(Kinds) != len(want) {
		t.Fatalf("Kinds = %v", Kinds)
	}
	for i, k := range Kinds {
		if k.String() != want[i] {
			t.Fatalf("Kinds[%d] = %s, want %s", i, k, want[i])
		}
	}
}

func TestGeneratorsStayInDomain(t *testing.T) {
	const domain = 1000
	for _, k := range Kinds {
		g := NewGenerator(k, domain, xrand.New(5))
		for i := 0; i < 10000; i++ {
			v := g.Next()
			if v < 0 || v >= domain {
				t.Fatalf("%s: value %d outside [0, %d)", k, v, int64(domain))
			}
		}
	}
}

func TestSerialWrapsAtDomain(t *testing.T) {
	g := NewGenerator(Serial, 3, xrand.New(1))
	want := []int64{0, 1, 2, 0, 1, 2, 0}
	for i, w := range want {
		if v := g.Next(); v != w {
			t.Fatalf("serial draw %d = %d, want %d", i, v, w)
		}
	}
}

func TestDeterminismAcrossEqualSeeds(t *testing.T) {
	for _, k := range Kinds {
		a := NewGenerator(k, 100000, xrand.New(42)).Batch(nil, 1000)
		b := NewGenerator(k, 100000, xrand.New(42)).Batch(nil, 1000)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: equal seeds diverged at %d: %d vs %d", k, i, a[i], b[i])
			}
		}
	}
}

func TestBatchReusesBuffer(t *testing.T) {
	g := NewGenerator(Uniform, 100, xrand.New(9))
	buf := make([]int64, 0, 64)
	out := g.Batch(buf, 32)
	if len(out) != 32 {
		t.Fatalf("batch length %d, want 32", len(out))
	}
	if &out[0] != &buf[:1][0] {
		t.Fatal("Batch did not reuse the provided buffer")
	}
}

func TestZipfIsSkewed(t *testing.T) {
	g := NewGenerator(Zipf, 100000, xrand.New(11))
	small := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if g.Next() < 100 {
			small++
		}
	}
	// Under theta=1 zipf the first 100 of 100k ranks carry far more than
	// their 0.1% uniform share; require at least 25%.
	if small < n/4 {
		t.Fatalf("zipf not skewed: only %d/%d draws in the top 100 ranks", small, n)
	}
}

func TestNormalCentred(t *testing.T) {
	const domain = 1000
	g := NewGenerator(Normal, domain, xrand.New(13))
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += float64(g.Next())
	}
	mean := sum / n
	if mean < 450 || mean > 550 {
		t.Fatalf("normal mean %.1f, want near %d", mean, domain/2)
	}
}
