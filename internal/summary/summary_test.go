package summary

import (
	"math"
	"testing"

	"amnesiadb/internal/table"
	"amnesiadb/internal/xrand"
)

func tbl(t *testing.T, vals ...int64) *table.Table {
	t.Helper()
	tb := table.New("t", "a")
	if _, err := tb.AppendSingleColumn(vals); err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestAbsorbBuildsSegment(t *testing.T) {
	tb := tbl(t, 10, 20, 30, 40)
	tb.Forget(1)
	tb.Forget(3)
	b, err := NewBook(tb, "a")
	if err != nil {
		t.Fatal(err)
	}
	if n := b.Absorb(); n != 2 {
		t.Fatalf("absorbed %d, want 2", n)
	}
	segs := b.Segments()
	if len(segs) != 1 {
		t.Fatalf("segments = %d", len(segs))
	}
	s := segs[0]
	if s.Count != 2 || s.Sum != 60 || s.Min != 20 || s.Max != 40 {
		t.Fatalf("segment = %+v", s)
	}
	if s.Avg() != 30 {
		t.Fatalf("segment avg = %v", s.Avg())
	}
}

func TestAbsorbIdempotentPerTuple(t *testing.T) {
	tb := tbl(t, 1, 2, 3)
	tb.Forget(0)
	b, _ := NewBook(tb, "a")
	b.Absorb()
	if n := b.Absorb(); n != 0 {
		t.Fatalf("re-absorb took %d tuples", n)
	}
	if len(b.Segments()) != 1 {
		t.Fatalf("empty re-absorb added a segment: %d", len(b.Segments()))
	}
	tb.Forget(2)
	if n := b.Absorb(); n != 1 {
		t.Fatalf("incremental absorb took %d", n)
	}
	if len(b.Segments()) != 2 {
		t.Fatalf("segments = %d", len(b.Segments()))
	}
}

func TestNewBookUnknownColumn(t *testing.T) {
	tb := tbl(t, 1)
	if _, err := NewBook(tb, "zz"); err == nil {
		t.Fatal("unknown column accepted")
	}
}

func TestFullAvgExactWhenNothingForgotten(t *testing.T) {
	tb := tbl(t, 10, 20, 30)
	b, _ := NewBook(tb, "a")
	est, err := b.FullAvg()
	if err != nil {
		t.Fatal(err)
	}
	if est.Avg != 20 || est.Count != 3 || est.LiveCount != 3 {
		t.Fatalf("estimate = %+v", est)
	}
}

func TestFullAvgReconstructsForgottenMass(t *testing.T) {
	// The whole point of summarisation: AVG over live+segments equals
	// the AVG over the original data exactly (sums are lossless).
	src := xrand.New(1)
	vals := make([]int64, 1000)
	var sum int64
	for i := range vals {
		vals[i] = src.Int63n(10000)
		sum += vals[i]
	}
	trueAvg := float64(sum) / 1000
	tb := tbl(t, vals...)
	for i := 0; i < 1000; i += 2 {
		tb.Forget(i)
	}
	b, _ := NewBook(tb, "a")
	b.Absorb()
	tb.Vacuum() // summaries must survive physical removal
	est, err := b.FullAvg()
	if err != nil {
		t.Fatal(err)
	}
	if est.Count != 1000 {
		t.Fatalf("count = %d", est.Count)
	}
	if math.Abs(est.Avg-trueAvg) > 1e-9 {
		t.Fatalf("avg = %v, want %v", est.Avg, trueAvg)
	}
	if est.LiveCount != 500 {
		t.Fatalf("live count = %d", est.LiveCount)
	}
}

func TestRebaseAfterVacuum(t *testing.T) {
	// Vacuum recycles positions; without Rebase a new tuple landing on
	// an absorbed position would be skipped.
	tb := tbl(t, 10, 20, 30)
	tb.Forget(0)
	b, _ := NewBook(tb, "a")
	b.Absorb()
	tb.Vacuum()
	b.Rebase()
	// Old position 0 is now occupied by the value 20.
	tb.Forget(0)
	if n := b.Absorb(); n != 1 {
		t.Fatalf("post-rebase absorb took %d, want 1", n)
	}
	segs := b.Segments()
	if len(segs) != 2 || segs[1].Sum != 20 {
		t.Fatalf("segments = %+v", segs)
	}
}

func TestFullAvgOnlySegments(t *testing.T) {
	tb := tbl(t, 10, 30)
	tb.Forget(0)
	tb.Forget(1)
	b, _ := NewBook(tb, "a")
	b.Absorb()
	est, err := b.FullAvg()
	if err != nil {
		t.Fatal(err)
	}
	if est.Avg != 20 || est.LiveCount != 0 {
		t.Fatalf("estimate = %+v", est)
	}
}

func TestFullAvgNothingAnywhere(t *testing.T) {
	tb := table.New("t", "a")
	b, _ := NewBook(tb, "a")
	if _, err := b.FullAvg(); err == nil {
		t.Fatal("empty aggregate succeeded")
	}
}

func TestMinMaxSpanLiveAndSegments(t *testing.T) {
	tb := tbl(t, 50, 1, 99, 60)
	tb.Forget(1) // min lives in a segment
	tb.Forget(2) // max lives in a segment
	b, _ := NewBook(tb, "a")
	b.Absorb()
	est, err := b.FullAvg()
	if err != nil {
		t.Fatal(err)
	}
	if est.Min != 1 || est.Max != 99 {
		t.Fatalf("min/max = %d/%d", est.Min, est.Max)
	}
}

func TestForgottenQuantile(t *testing.T) {
	src := xrand.New(9)
	vals := make([]int64, 10000)
	for i := range vals {
		vals[i] = src.Int63n(100000)
	}
	tb := tbl(t, vals...)
	for i := range vals {
		tb.Forget(i)
	}
	b, err := NewBookWithQuantiles(tb, "a", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	b.Absorb()
	med, err := b.ForgottenQuantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Uniform over [0, 100000): median ~50000 within eps*n ranks.
	if med < 45000 || med > 55000 {
		t.Fatalf("median of deleted data = %d", med)
	}
	p99, err := b.ForgottenQuantile(0.99)
	if err != nil {
		t.Fatal(err)
	}
	if p99 < 95000 {
		t.Fatalf("p99 of deleted data = %d", p99)
	}
}

func TestForgottenQuantileWithoutSketch(t *testing.T) {
	tb := tbl(t, 1)
	b, _ := NewBook(tb, "a")
	if _, err := b.ForgottenQuantile(0.5); err == nil {
		t.Fatal("sketch-less quantile succeeded")
	}
}

func TestSizeBytesDrasticallySmaller(t *testing.T) {
	// §1: summaries "reduce the storage drastically". 10k forgotten
	// tuples collapse to one 32-byte segment.
	src := xrand.New(2)
	vals := make([]int64, 10000)
	for i := range vals {
		vals[i] = src.Int63n(1000)
	}
	tb := tbl(t, vals...)
	for i := range vals {
		tb.Forget(i)
	}
	b, _ := NewBook(tb, "a")
	b.Absorb()
	if b.SizeBytes() != 32 {
		t.Fatalf("summary size = %d bytes", b.SizeBytes())
	}
}
