// Package summary implements the fourth fate of forgotten data from §1:
// "keep a summary, i.e., a few aggregated values (min, max, avg) of all
// the forgotten data. This will reduce the storage drastically but the
// DBMS will only be able to answer specific aggregation queries." Each
// absorbed batch of forgotten tuples collapses into one Segment holding
// count/sum/min/max per column; approximate aggregate answers combine the
// live table with the segments.
package summary

import (
	"fmt"
	"math"

	"amnesiadb/internal/engine"
	"amnesiadb/internal/expr"
	"amnesiadb/internal/quantile"
	"amnesiadb/internal/table"
)

// Segment summarises one absorbed batch of forgotten tuples for one
// column.
type Segment struct {
	Count int64
	Sum   int64
	Min   int64
	Max   int64
}

// Avg returns the mean of the absorbed values.
func (s Segment) Avg() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Book accumulates segments for one table column and answers approximate
// aggregates over live + summarised data.
type Book struct {
	t        *table.Table
	col      string
	segments []Segment
	absorbed map[int]bool // positions already folded into a segment
	sketch   *quantile.Sketch
}

// NewBook returns an empty summary book over column col of t.
func NewBook(t *table.Table, col string) (*Book, error) {
	if _, err := t.Column(col); err != nil {
		return nil, err
	}
	return &Book{t: t, col: col, absorbed: make(map[int]bool)}, nil
}

// NewBookWithQuantiles returns a Book that additionally feeds every
// absorbed value into an ε-approximate quantile sketch, so percentile
// questions about deleted data stay answerable (see ForgottenQuantile).
func NewBookWithQuantiles(t *table.Table, col string, eps float64) (*Book, error) {
	b, err := NewBook(t, col)
	if err != nil {
		return nil, err
	}
	b.sketch = quantile.New(eps)
	return b, nil
}

// Absorb folds every currently forgotten, not-yet-absorbed tuple into a
// new segment and returns the number of tuples absorbed (0 adds no
// segment). After absorbing, callers typically Vacuum the table; the
// segment preserves the aggregate footprint of the lost tuples.
func (b *Book) Absorb() int {
	c := b.t.MustColumn(b.col)
	seg := Segment{Min: math.MaxInt64, Max: math.MinInt64}
	n := 0
	for _, i := range b.t.ForgottenIndices() {
		if b.absorbed[i] {
			continue
		}
		v := c.Get(i)
		seg.Count++
		seg.Sum += v
		if v < seg.Min {
			seg.Min = v
		}
		if v > seg.Max {
			seg.Max = v
		}
		if b.sketch != nil {
			b.sketch.Insert(v)
		}
		b.absorbed[i] = true
		n++
	}
	if n > 0 {
		b.segments = append(b.segments, seg)
	}
	return n
}

// ForgottenQuantile returns an approximate phi-quantile (phi in [0, 1])
// of every value absorbed so far — the median of the deleted data, say.
// It errors when the book was built without quantiles (NewBook) or
// nothing has been absorbed.
func (b *Book) ForgottenQuantile(phi float64) (int64, error) {
	if b.sketch == nil {
		return 0, fmt.Errorf("summary: book has no quantile sketch; use NewBookWithQuantiles")
	}
	return b.sketch.Query(phi)
}

// Rebase must be called after the table has been vacuumed: compaction
// recycles tuple positions, so the absorbed-position set is invalidated.
// Segments are unaffected — they carry no positions.
func (b *Book) Rebase() { b.absorbed = make(map[int]bool) }

// Segments returns a copy of the absorbed segments in absorption order.
func (b *Book) Segments() []Segment { return append([]Segment(nil), b.segments...) }

// SizeBytes is the summary footprint: four 8-byte values per segment —
// the "reduce the storage drastically" half of the trade-off.
func (b *Book) SizeBytes() int { return len(b.segments) * 32 }

// Estimate holds an approximate aggregate combining live and summarised
// data, with the bounds the summaries can still guarantee.
type Estimate struct {
	// Count is the exact number of contributing tuples (live + absorbed).
	Count int64
	// Avg is the reconstructed mean over live + absorbed tuples.
	Avg float64
	// Min/Max are exact for the union of live and absorbed data.
	Min, Max int64
	// LiveCount is how many contributors are still queryable exactly.
	LiveCount int64
}

// FullAvg estimates SELECT AVG(col) FROM t over the union of active tuples
// and all absorbed segments. Range-predicated queries cannot be answered
// from segments (only full aggregates survive summarisation); use the
// engine for those.
func (b *Book) FullAvg() (Estimate, error) {
	ex := engine.NewSilent(b.t)
	est := Estimate{Min: math.MaxInt64, Max: math.MinInt64}
	var sum int64
	agg, err := ex.Aggregate(b.col, expr.True{}, engine.ScanActive)
	switch err {
	case nil:
		est.Count = int64(agg.Rows)
		est.LiveCount = int64(agg.Rows)
		sum = agg.Sum
		est.Min, est.Max = agg.Min, agg.Max
	case engine.ErrNoRows:
		// Only summaries remain.
	default:
		return Estimate{}, err
	}
	for _, s := range b.segments {
		est.Count += s.Count
		sum += s.Sum
		if s.Min < est.Min {
			est.Min = s.Min
		}
		if s.Max > est.Max {
			est.Max = s.Max
		}
	}
	if est.Count == 0 {
		return Estimate{}, fmt.Errorf("summary: nothing to aggregate in %s.%s", b.t.Name(), b.col)
	}
	est.Avg = float64(sum) / float64(est.Count)
	return est, nil
}
