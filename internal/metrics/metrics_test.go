package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQueryPrecision(t *testing.T) {
	cases := []struct {
		q    Query
		want float64
	}{
		{Query{RF: 3, MF: 1}, 0.75},
		{Query{RF: 0, MF: 5}, 0},
		{Query{RF: 5, MF: 0}, 1},
		{Query{}, 1}, // empty query is vacuously precise
	}
	for _, c := range cases {
		if got := c.q.Precision(); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Precision(%+v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestBatchAverages(t *testing.T) {
	b := &Batch{}
	b.Observe(Query{RF: 1, MF: 1}) // PF 0.5
	b.Observe(Query{RF: 3, MF: 1}) // PF 0.75
	if b.Queries() != 2 {
		t.Fatalf("Queries = %d", b.Queries())
	}
	if got := b.MeanPrecision(); math.Abs(got-0.625) > 1e-12 {
		t.Fatalf("MeanPrecision = %v", got)
	}
	// E = sum(RF)/sum(RF+MF) = 4/6
	if got := b.ErrorMargin(); math.Abs(got-4.0/6.0) > 1e-12 {
		t.Fatalf("ErrorMargin = %v", got)
	}
}

func TestEmptyBatchConventions(t *testing.T) {
	b := &Batch{}
	if b.MeanPrecision() != 1 || b.ErrorMargin() != 1 || b.MeanAggregateError() != 0 {
		t.Fatalf("empty batch: %v %v %v", b.MeanPrecision(), b.ErrorMargin(), b.MeanAggregateError())
	}
}

func TestObserveAggregate(t *testing.T) {
	b := &Batch{}
	b.ObserveAggregate(90, 100) // rel err 0.1
	b.ObserveAggregate(110, 100)
	if got := b.MeanAggregateError(); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("MeanAggregateError = %v", got)
	}
}

func TestObserveAggregateZeroExact(t *testing.T) {
	b := &Batch{}
	b.ObserveAggregate(0, 0)
	if b.MeanAggregateError() != 0 {
		t.Fatal("0/0 aggregate error should be 0")
	}
	b2 := &Batch{}
	b2.ObserveAggregate(5, 0)
	if b2.MeanAggregateError() != 1 {
		t.Fatal("nonzero/0 aggregate error should be capped at 1")
	}
}

func TestSeriesAddAndValidate(t *testing.T) {
	s := &Series{Name: "fifo"}
	for i := 0; i < 3; i++ {
		b := &Batch{}
		b.Observe(Query{RF: 1, MF: i})
		s.Add(i, b)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	ps := s.Precisions()
	if len(ps) != 3 || ps[0] != 1 || ps[1] != 0.5 {
		t.Fatalf("Precisions = %v", ps)
	}
}

func TestValidateCatchesBadSeries(t *testing.T) {
	bad := []*Series{
		{Name: "p>1", Points: []Point{{Batch: 0, Precision: 1.5, ErrorMargin: 1}}},
		{Name: "e<0", Points: []Point{{Batch: 0, Precision: 1, ErrorMargin: -0.1}}},
		{Name: "order", Points: []Point{
			{Batch: 1, Precision: 1, ErrorMargin: 1},
			{Batch: 1, Precision: 1, ErrorMargin: 1},
		}},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("series %s validated", s.Name)
		}
	}
}

func TestPropertyPrecisionBounds(t *testing.T) {
	f := func(rf, mf uint16) bool {
		p := Query{RF: int(rf), MF: int(mf)}.Precision()
		return p >= 0 && p <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyBatchEBetweenMinMaxPF(t *testing.T) {
	// The error margin is a ratio of sums, hence bounded by the extreme
	// per-query precisions.
	f := func(qs []struct{ RF, MF uint8 }) bool {
		if len(qs) == 0 {
			return true
		}
		b := &Batch{}
		min, max := 1.0, 0.0
		any := false
		for _, q := range qs {
			query := Query{RF: int(q.RF), MF: int(q.MF)}
			b.Observe(query)
			if q.RF == 0 && q.MF == 0 {
				continue
			}
			any = true
			p := query.Precision()
			if p < min {
				min = p
			}
			if p > max {
				max = p
			}
		}
		if !any {
			return b.ErrorMargin() == 1
		}
		e := b.ErrorMargin()
		return e >= min-1e-12 && e <= max+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
