// Package metrics implements the information-precision metrics of §2.3:
// per-query RF(Q), MF(Q) and PF(Q), and the batch-level error margin E,
// plus the time series the evaluation figures are drawn from.
package metrics

import (
	"fmt"
	"math"
)

// Query records the outcome of one query against the amnesiac database.
type Query struct {
	// RF is the number of tuples in the (active-only) result.
	RF int
	// MF is the number of tuples missed because they were forgotten.
	MF int
}

// Precision returns PF(Q) = RF/(RF+MF); an empty query (RF+MF == 0) is
// perfectly precise by convention — nothing was asked for, nothing missed.
func (q Query) Precision() float64 {
	if q.RF+q.MF == 0 {
		return 1
	}
	return float64(q.RF) / float64(q.RF+q.MF)
}

// Batch accumulates the metrics of one batch of queries (the paper fires
// 1000 queries per batch and reports averages).
type Batch struct {
	queries  int
	sumRF    int64
	sumMF    int64
	sumPF    float64
	aggErr   float64 // accumulated relative error of aggregate answers
	aggCount int
}

// Observe folds one query outcome into the batch.
func (b *Batch) Observe(q Query) {
	b.queries++
	b.sumRF += int64(q.RF)
	b.sumMF += int64(q.MF)
	b.sumPF += q.Precision()
}

// ObserveAggregate folds in the relative error of one aggregate query:
// |approx-exact| / |exact| (or 0 when both are 0, 1 when only exact is 0...
// the caller provides the two values and this computes a bounded error).
func (b *Batch) ObserveAggregate(approx, exact float64) {
	var rel float64
	switch {
	case exact == 0 && approx == 0:
		rel = 0
	case exact == 0:
		rel = 1
	default:
		rel = math.Abs(approx-exact) / math.Abs(exact)
	}
	b.aggErr += rel
	b.aggCount++
}

// Queries returns the number of observations so far.
func (b *Batch) Queries() int { return b.queries }

// MeanPrecision returns the average PF over observed queries, 1 when no
// queries were observed.
func (b *Batch) MeanPrecision() float64 {
	if b.queries == 0 {
		return 1
	}
	return b.sumPF / float64(b.queries)
}

// ErrorMargin returns the paper's E = avg(RF) / avg(RF+MF) over the batch,
// 1 when no queries were observed or no tuples were requested.
func (b *Batch) ErrorMargin() float64 {
	if b.queries == 0 || b.sumRF+b.sumMF == 0 {
		return 1
	}
	return float64(b.sumRF) / float64(b.sumRF+b.sumMF)
}

// MeanAggregateError returns the mean relative error of aggregate answers
// observed in this batch, 0 when none were observed.
func (b *Batch) MeanAggregateError() float64 {
	if b.aggCount == 0 {
		return 0
	}
	return b.aggErr / float64(b.aggCount)
}

// Point is one figure sample: a batch index with its summary metrics.
type Point struct {
	Batch        int
	Precision    float64 // mean PF
	ErrorMargin  float64 // E
	AggregateErr float64 // mean relative aggregate error
}

// Series is a named sequence of per-batch points — one figure line.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point built from the batch summary.
func (s *Series) Add(batch int, b *Batch) {
	s.Points = append(s.Points, Point{
		Batch:        batch,
		Precision:    b.MeanPrecision(),
		ErrorMargin:  b.ErrorMargin(),
		AggregateErr: b.MeanAggregateError(),
	})
}

// Precisions returns just the precision column of the series.
func (s *Series) Precisions() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.Precision
	}
	return out
}

// Validate checks the §2.3 invariants: every precision and error margin in
// [0, 1], batches ascending. It returns a descriptive error on violation;
// experiments call it before emitting figures.
func (s *Series) Validate() error {
	last := -1
	for _, p := range s.Points {
		if p.Precision < 0 || p.Precision > 1 {
			return fmt.Errorf("metrics: series %s batch %d precision %v outside [0,1]", s.Name, p.Batch, p.Precision)
		}
		if p.ErrorMargin < 0 || p.ErrorMargin > 1 {
			return fmt.Errorf("metrics: series %s batch %d error margin %v outside [0,1]", s.Name, p.Batch, p.ErrorMargin)
		}
		if p.Batch <= last {
			return fmt.Errorf("metrics: series %s batches not ascending at %d", s.Name, p.Batch)
		}
		last = p.Batch
	}
	return nil
}
