package engine

import (
	"sync"
	"sync/atomic"
	"time"
)

// Spill-on-stall: a streaming consumer that stops calling Next — an
// HTTP client that went away without closing, a serializer blocked on a
// congested socket — leaves the pipeline's producers parked on the
// bounded channel with the relation read locks still held, because
// ScanDone (the lock-release signal) only closes once every producer
// exits. DetachOnStall bounds that hostage time: a monitor watches
// consumer activity, and once the consumer has been idle past the
// threshold while the scan is still live, it drains every remaining
// chunk into an ordered heap buffer. Unblocked, the producers finish,
// ScanDone closes, the locks release — and the consumer, whenever it
// comes back, is served the tail from the buffer in the exact order the
// channel would have delivered it, so the output stays byte-identical.
//
// The buffer is governed memory: its chunks carry the per-query quota
// charge from produce time until the consumer recycles them, so a
// budgeted query cannot convert a stall into an unbounded heap — the
// drain stops with ErrResourceExhausted like any other over-budget
// production.
//
// Mutual exclusion between the monitor's drain and the consumer's
// channel receive is the correctness heart: both go through spillState's
// mutex-guarded handoff, so exactly one of them is ever receiving and
// ordering is preserved. A consumer blocked inside a receive (slow
// producer, not a stalled consumer) marks itself in flight, and the
// monitor leaves an in-flight receive alone.

// spillState is the stall monitor and buffer attached to a ChunkStream
// by DetachOnStall.
type spillState struct {
	mu       sync.Mutex
	buf      []SelChunk    // drained, not yet consumed; FIFO in emit order
	drained  bool          // the underlying channel closed (by drain or consumer)
	err      error         // the stream error observed at drain end
	inNext   bool          // a consumer receive is in flight
	closed   bool          // Close ran; buffer recycled
	lastNext atomic.Int64  // unix nanos of the last consumer activity
	detached atomic.Bool   // a stall drain ran (observable for tests/metrics)
	done     chan struct{} // closed when the monitor goroutine exits
}

// DetachOnStall arms the stall monitor with the given idle threshold.
// Must be called before the first Next, once, by the stream's owner.
func (s *ChunkStream) DetachOnStall(threshold time.Duration) {
	if threshold <= 0 || s.sp != nil {
		return
	}
	sp := &spillState{done: make(chan struct{})}
	sp.lastNext.Store(time.Now().UnixNano())
	s.sp = sp
	go sp.monitor(s, threshold)
}

// Detached reports whether a stall drain ran.
func (s *ChunkStream) Detached() bool {
	return s.sp != nil && s.sp.detached.Load()
}

// MonitorDone returns the stall monitor's completion signal: the
// channel closes when the goroutine DetachOnStall spawned has exited
// (scan finished, drain completed, or the stream closed). Nil when no
// monitor is armed.
func (s *ChunkStream) MonitorDone() <-chan struct{} {
	if s.sp == nil {
		return nil
	}
	return s.sp.done
}

// monitor polls consumer activity and triggers the drain after
// threshold of consumer idleness while the scan is still running. It
// exits as soon as the scan side is done — at that point the producers
// hold nothing and the lock-release signal has already fired.
func (sp *spillState) monitor(s *ChunkStream, threshold time.Duration) {
	defer close(sp.done)
	tick := threshold / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	timer := time.NewTimer(tick)
	defer timer.Stop()
	for {
		select {
		case <-s.scanDone:
			return
		case <-timer.C:
		}
		sp.mu.Lock()
		idle := time.Since(time.Unix(0, sp.lastNext.Load()))
		if sp.drained || sp.closed {
			sp.mu.Unlock()
			return
		}
		if sp.inNext || idle < threshold {
			sp.mu.Unlock()
			timer.Reset(tick)
			continue
		}
		// Consumer stalled: take over the channel under the handoff
		// mutex and drain to the buffer. A consumer waking mid-drain
		// blocks on the mutex and then reads the buffer — never the
		// channel — so order is preserved.
		sp.detached.Store(true)
		for {
			c, ok := <-s.ch
			if !ok {
				sp.err = s.err
				sp.drained = true
				break
			}
			sp.buf = append(sp.buf, c)
		}
		sp.mu.Unlock()
		return
	}
}

// next is ChunkStream.Next when the monitor is armed: buffered chunks
// first, then the channel, with the in-flight flag telling the monitor
// a receive is active.
func (sp *spillState) next(s *ChunkStream) (SelChunk, bool, error) {
	sp.mu.Lock()
	sp.lastNext.Store(time.Now().UnixNano())
	if sp.closed {
		sp.mu.Unlock()
		return SelChunk{}, false, ErrStreamClosed
	}
	if len(sp.buf) > 0 {
		c := sp.buf[0]
		sp.buf = sp.buf[1:]
		sp.mu.Unlock()
		return c, true, nil
	}
	if sp.drained {
		err := sp.err
		sp.mu.Unlock()
		return SelChunk{}, false, err
	}
	sp.inNext = true
	sp.mu.Unlock()

	c, ok := <-s.ch

	sp.mu.Lock()
	sp.inNext = false
	sp.lastNext.Store(time.Now().UnixNano())
	if !ok {
		sp.drained = true
		sp.err = s.err
	}
	sp.mu.Unlock()
	if ok {
		return c, true, nil
	}
	return SelChunk{}, false, s.err
}

// discard recycles any buffered chunks on Close — an abandoned stream
// must hand its spilled batches (and their quota charges) back.
func (sp *spillState) discard() {
	sp.mu.Lock()
	sp.closed = true
	buf := sp.buf
	sp.buf = nil
	sp.mu.Unlock()
	recycleChunks(buf)
}
