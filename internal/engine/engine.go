// Package engine executes queries against tables while honouring the
// active/forgotten distinction that defines a database with amnesia.
//
// Two scan modes mirror the paper's §1 discussion of what happens to
// forgotten data: ScanActive skips forgotten tuples (the "stop indexing"
// fate — fast path, incomplete answers), while ScanAll fetches everything
// still physically present (a "complete scan will fetch all data").
// Running the same query in both modes is how the simulator computes the
// precision metrics of §2.3 without a reference database.
package engine

import (
	"errors"
	"math"

	"amnesiadb/internal/expr"
	"amnesiadb/internal/table"
)

// ScanMode selects which tuples a query sees.
type ScanMode int

const (
	// ScanActive evaluates the query over active tuples only. This is
	// the normal operating mode of a database with amnesia.
	ScanActive ScanMode = iota
	// ScanAll evaluates the query over every tuple still stored,
	// including forgotten ones. The paper allows this as an explicit,
	// slow "complete scan" escape hatch and the metrics layer uses it
	// as ground truth.
	ScanAll
)

// String returns a short label for the mode.
func (m ScanMode) String() string {
	if m == ScanAll {
		return "all"
	}
	return "active"
}

// ErrNoRows is returned by aggregate queries whose qualifying set is empty.
var ErrNoRows = errors.New("engine: aggregate over empty row set")

// Result is the output of a selection query.
type Result struct {
	// Rows holds the positions of qualifying tuples in insertion order.
	Rows []int32
	// Values holds the attribute values of those tuples.
	Values []int64
}

// Count returns the number of qualifying tuples, RF(Q) in the paper when
// run under ScanActive.
func (r *Result) Count() int { return len(r.Rows) }

// Exec is a query executor bound to one table. The zero value is unusable;
// construct with New.
type Exec struct {
	t     *table.Table
	touch bool
}

// New returns an executor for t that records access frequencies (Touch)
// for tuples returned by ScanActive selections — the feedback loop
// query-based amnesia (§3.2) depends on.
func New(t *table.Table) *Exec { return &Exec{t: t, touch: true} }

// NewSilent returns an executor that does not update access frequencies.
// Metric ground-truth scans use it so that measuring precision does not
// perturb rot-style strategies.
func NewSilent(t *table.Table) *Exec { return &Exec{t: t} }

// Table returns the executor's table.
func (e *Exec) Table() *table.Table { return e.t }

// Select returns the tuples of column col satisfying pred under the given
// scan mode.
func (e *Exec) Select(col string, pred expr.Expr, mode ScanMode) (*Result, error) {
	c, err := e.t.Column(col)
	if err != nil {
		return nil, err
	}
	lo, hi, exact := pred.Bounds()
	res := &Result{}
	var rows []int32
	if mode == ScanActive {
		rows = c.ScanRangeActive(lo, hi, e.t.Active(), nil)
	} else {
		rows = c.ScanRange(lo, hi, nil)
	}
	for _, r := range rows {
		v := c.Get(int(r))
		if !exact && !pred.Eval(v) {
			continue
		}
		res.Rows = append(res.Rows, r)
		res.Values = append(res.Values, v)
	}
	if e.touch && mode == ScanActive {
		e.t.TouchMany(res.Rows)
	}
	return res, nil
}

// AggKind enumerates the aggregate functions of §2.2.
type AggKind int

// Aggregate functions.
const (
	Count AggKind = iota
	Sum
	Avg
	Min
	Max
)

// String returns the SQL name of the aggregate.
func (k AggKind) String() string {
	switch k {
	case Count:
		return "COUNT"
	case Sum:
		return "SUM"
	case Avg:
		return "AVG"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	default:
		return "AGG?"
	}
}

// AggResult carries every aggregate so one scan serves any AggKind.
type AggResult struct {
	Rows  int
	Sum   int64
	Min   int64
	Max   int64
	Avg   float64
	Rower []int32 // positions contributing to the aggregate
}

// Value returns the requested aggregate as a float64.
func (a *AggResult) Value(k AggKind) float64 {
	switch k {
	case Count:
		return float64(a.Rows)
	case Sum:
		return float64(a.Sum)
	case Avg:
		return a.Avg
	case Min:
		return float64(a.Min)
	case Max:
		return float64(a.Max)
	default:
		panic("engine: invalid aggregate kind")
	}
}

// Aggregate computes COUNT/SUM/AVG/MIN/MAX of column col over tuples
// satisfying pred under the given scan mode. It returns ErrNoRows when no
// tuple qualifies.
func (e *Exec) Aggregate(col string, pred expr.Expr, mode ScanMode) (*AggResult, error) {
	sel, err := e.selectNoTouch(col, pred, mode)
	if err != nil {
		return nil, err
	}
	if len(sel.Rows) == 0 {
		return nil, ErrNoRows
	}
	agg := &AggResult{Min: math.MaxInt64, Max: math.MinInt64, Rower: sel.Rows}
	for _, v := range sel.Values {
		agg.Rows++
		agg.Sum += v
		if v < agg.Min {
			agg.Min = v
		}
		if v > agg.Max {
			agg.Max = v
		}
	}
	agg.Avg = float64(agg.Sum) / float64(agg.Rows)
	if e.touch && mode == ScanActive {
		e.t.TouchMany(sel.Rows)
	}
	return agg, nil
}

// selectNoTouch is Select without the frequency feedback, used internally
// so Aggregate controls when Touch happens.
func (e *Exec) selectNoTouch(col string, pred expr.Expr, mode ScanMode) (*Result, error) {
	saved := e.touch
	e.touch = false
	res, err := e.Select(col, pred, mode)
	e.touch = saved
	return res, err
}

// Precision runs pred in both scan modes and returns RF(Q) (active
// matches), MF(Q) (matches lost to amnesia among stored tuples), and the
// query precision PF(Q) = RF/(RF+MF) as defined in §2.3. When the query
// range is empty in both modes, precision is reported as 1 (nothing was
// asked for, nothing was missed).
func (e *Exec) Precision(col string, pred expr.Expr) (rf, mf int, pf float64, err error) {
	act, err := e.Select(col, pred, ScanActive)
	if err != nil {
		return 0, 0, 0, err
	}
	all, err := e.selectNoTouch(col, pred, ScanAll)
	if err != nil {
		return 0, 0, 0, err
	}
	rf = act.Count()
	mf = all.Count() - rf
	if rf+mf == 0 {
		return 0, 0, 1, nil
	}
	return rf, mf, float64(rf) / float64(rf+mf), nil
}
