// Package engine executes queries against tables while honouring the
// active/forgotten distinction that defines a database with amnesia.
//
// Execution is vectorized: every operator consumes fixed-size batches
// (BatchSize tuples) produced by the column scan kernels rather than one
// tuple at a time. A Batch pairs a selection vector of tuple positions
// with the parallel value vector; the column kernel fills it with rows
// inside the predicate's bounding interval, expr.Filter compacts it in
// place for bounds-inexact predicates, and operators fold each batch
// into their running state. Aggregates are computed in one fused pass
// with no intermediate row materialization, and scratch batches come
// from a pool, so steady-state scans allocate only their output.
//
// Two scan modes mirror the paper's §1 discussion of what happens to
// forgotten data: ScanActive skips forgotten tuples (the "stop indexing"
// fate — fast path, incomplete answers), while ScanAll fetches everything
// still physically present (a "complete scan will fetch all data").
// Running the same query in both modes is how the simulator computes the
// precision metrics of §2.3 without a reference database.
//
// Executors are safe for concurrent readers: scans take no locks and
// share no mutable state, and the access-frequency touches feeding
// query-based amnesia (§3.2) are accumulated per query and flushed with
// one internally synchronized TouchMany call.
package engine

import (
	"errors"
	"math"

	"amnesiadb/internal/bitvec"
	"amnesiadb/internal/expr"
	"amnesiadb/internal/table"
)

// ScanMode selects which tuples a query sees.
type ScanMode int

const (
	// ScanActive evaluates the query over active tuples only. This is
	// the normal operating mode of a database with amnesia.
	ScanActive ScanMode = iota
	// ScanAll evaluates the query over every tuple still stored,
	// including forgotten ones. The paper allows this as an explicit,
	// slow "complete scan" escape hatch and the metrics layer uses it
	// as ground truth.
	ScanAll
)

// String returns a short label for the mode.
func (m ScanMode) String() string {
	if m == ScanAll {
		return "all"
	}
	return "active"
}

// ErrNoRows is returned by aggregate queries whose qualifying set is empty.
var ErrNoRows = errors.New("engine: aggregate over empty row set")

// Result is the output of a selection query.
type Result struct {
	// Rows holds the positions of qualifying tuples in insertion order.
	Rows []int32
	// Values holds the attribute values of those tuples.
	Values []int64
}

// Count returns the number of qualifying tuples, RF(Q) in the paper when
// run under ScanActive.
func (r *Result) Count() int { return len(r.Rows) }

// Exec is a query executor bound to one table. The zero value is unusable;
// construct with New. An Exec holds no per-query state, so one executor
// may serve any number of concurrent read-only queries.
type Exec struct {
	t     *table.Table
	touch bool
}

// New returns an executor for t that records access frequencies (Touch)
// for tuples returned by ScanActive selections — the feedback loop
// query-based amnesia (§3.2) depends on.
func New(t *table.Table) *Exec { return &Exec{t: t, touch: true} }

// NewSilent returns an executor that does not update access frequencies.
// Metric ground-truth scans use it so that measuring precision does not
// perturb rot-style strategies.
func NewSilent(t *table.Table) *Exec { return &Exec{t: t} }

// Table returns the executor's table.
func (e *Exec) Table() *table.Table { return e.t }

// Select returns the tuples of column col satisfying pred under the given
// scan mode. The result accumulates batch by batch; the touched-row
// feedback is flushed once at the end of the scan.
func (e *Exec) Select(col string, pred expr.Expr, mode ScanMode) (*Result, error) {
	return e.selectTouching(col, pred, mode, e.touch)
}

// selectTouching is Select with an explicit touch decision, so internal
// callers (Aggregate, GroupBy, Precision ground truth) control the
// feedback without mutating shared executor state.
func (e *Exec) selectTouching(col string, pred expr.Expr, mode ScanMode, touch bool) (*Result, error) {
	c, err := e.t.Column(col)
	if err != nil {
		return nil, err
	}
	// The scan kernel fills pooled batches directly; the chunks are then
	// concatenated once into an exactly-sized result. One pass over the
	// data, two output allocations, no append-doubling churn.
	lo, hi, exact := pred.Bounds()
	var active *bitvec.Vector
	if mode == ScanActive {
		active = e.t.Active()
	}
	var chunks []*Batch
	defer func() {
		for _, b := range chunks {
			PutBatch(b)
		}
	}()
	total := 0
	for pos := 0; pos < c.Len(); {
		b := GetBatch()
		var n int
		n, pos = c.ScanBatch(lo, hi, active, pos, b.Sel, b.Val)
		if n > 0 && !exact {
			n = expr.Filter(pred, b.Sel, b.Val, n)
		}
		if n == 0 {
			PutBatch(b)
			continue
		}
		b.Sel, b.Val = b.Sel[:n], b.Val[:n]
		chunks = append(chunks, b)
		total += n
	}
	res := &Result{}
	if total > 0 {
		res.Rows = make([]int32, 0, total)
		res.Values = make([]int64, 0, total)
		for _, b := range chunks {
			res.Rows = append(res.Rows, b.Sel...)
			res.Values = append(res.Values, b.Val...)
		}
	}
	if touch && mode == ScanActive {
		e.t.TouchMany(res.Rows)
	}
	return res, nil
}

// AggKind enumerates the aggregate functions of §2.2.
type AggKind int

// Aggregate functions.
const (
	Count AggKind = iota
	Sum
	Avg
	Min
	Max
)

// String returns the SQL name of the aggregate.
func (k AggKind) String() string {
	switch k {
	case Count:
		return "COUNT"
	case Sum:
		return "SUM"
	case Avg:
		return "AVG"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	default:
		return "AGG?"
	}
}

// AggResult carries every aggregate so one scan serves any AggKind.
type AggResult struct {
	Rows int
	Sum  int64
	Min  int64
	Max  int64
	Avg  float64
	// Rower holds the positions contributing to the aggregate. It is
	// collected only on the access-frequency feedback path — a touching
	// executor scanning active tuples — where the advisor and the §3.2
	// strategies consume it; silent and ground-truth (ScanAll) aggregates
	// leave it nil so the fused pass allocates nothing per row.
	Rower []int32
}

// Value returns the requested aggregate as a float64.
func (a *AggResult) Value(k AggKind) float64 {
	switch k {
	case Count:
		return float64(a.Rows)
	case Sum:
		return float64(a.Sum)
	case Avg:
		return a.Avg
	case Min:
		return float64(a.Min)
	case Max:
		return float64(a.Max)
	default:
		panic("engine: invalid aggregate kind")
	}
}

// Aggregate computes COUNT/SUM/AVG/MIN/MAX of column col over tuples
// satisfying pred under the given scan mode, folding every batch into the
// running aggregate in one fused pass — no intermediate Result is built.
// It returns ErrNoRows when no tuple qualifies.
func (e *Exec) Aggregate(col string, pred expr.Expr, mode ScanMode) (*AggResult, error) {
	c, err := e.t.Column(col)
	if err != nil {
		return nil, err
	}
	touching := e.touch && mode == ScanActive
	agg := &AggResult{Min: math.MaxInt64, Max: math.MinInt64}
	e.scanBatches(c, pred, mode, func(sel []int32, val []int64) {
		if touching {
			agg.Rower = append(agg.Rower, sel...)
		}
		agg.Rows += len(val)
		for _, v := range val {
			agg.Sum += v
			if v < agg.Min {
				agg.Min = v
			}
			if v > agg.Max {
				agg.Max = v
			}
		}
	})
	if agg.Rows == 0 {
		return nil, ErrNoRows
	}
	agg.Avg = float64(agg.Sum) / float64(agg.Rows)
	if touching {
		e.t.TouchMany(agg.Rower)
	}
	return agg, nil
}

// Precision runs pred in both scan modes and returns RF(Q) (active
// matches), MF(Q) (matches lost to amnesia among stored tuples), and the
// query precision PF(Q) = RF/(RF+MF) as defined in §2.3. The ground-truth
// pass reuses the batch pipeline in counting mode, so it materializes
// nothing. When the query range is empty in both modes, precision is
// reported as 1 (nothing was asked for, nothing was missed).
func (e *Exec) Precision(col string, pred expr.Expr) (rf, mf int, pf float64, err error) {
	c, err := e.t.Column(col)
	if err != nil {
		return 0, 0, 0, err
	}
	act, err := e.Select(col, pred, ScanActive)
	if err != nil {
		return 0, 0, 0, err
	}
	rf = act.Count()
	mf = e.countMatches(c, pred, ScanAll) - rf
	if rf+mf == 0 {
		return 0, 0, 1, nil
	}
	return rf, mf, float64(rf) / float64(rf+mf), nil
}
