// Package engine executes queries against tables while honouring the
// active/forgotten distinction that defines a database with amnesia.
//
// Execution is vectorized: every operator consumes fixed-size batches
// (BatchSize tuples) produced by the column scan kernels rather than one
// tuple at a time. A Batch pairs a selection vector of tuple positions
// with the parallel value vector; the column kernel fills it with rows
// inside the predicate's bounding interval, expr.Filter compacts it in
// place for bounds-inexact predicates, and operators fold each batch
// into their running state. Aggregates are computed in one fused pass
// with no intermediate row materialization, and scratch batches come
// from a pool, so steady-state scans allocate only their output.
//
// Two scan modes mirror the paper's §1 discussion of what happens to
// forgotten data: ScanActive skips forgotten tuples (the "stop indexing"
// fate — fast path, incomplete answers), while ScanAll fetches everything
// still physically present (a "complete scan will fetch all data").
// Running the same query in both modes is how the simulator computes the
// precision metrics of §2.3 without a reference database.
//
// Large scans are additionally parallel *within* one query,
// morsel-driven in the Leis et al. sense: the column's block range is
// carved into morsels of MorselBlocks zone-mapped blocks, and worker
// goroutines pull morsel indices from a shared atomic counter, each
// running the same ScanBatch/Filter pipeline over its morsel with
// worker-local pooled batches and worker-local partial states (chunk
// lists for Select, partial aggregates for Aggregate, group tables for
// GroupBy, tallies for counting). Partials merge deterministically —
// per-morsel outputs concatenate in morsel order, so Select results
// stay in insertion order and aggregates equal their serial values
// exactly. One knob governs the whole engine: SetParallelism(0) (auto)
// uses GOMAXPROCS workers for scans past a row threshold and stays
// serial below it so small scans never pay goroutine overhead;
// SetParallelism(1) forces serial; n > 1 forces n workers.
//
// Scans are also pipelined (see pipeline.go): SelectChunkStream's
// workers push qualifying chunks into a bounded channel, in order,
// while later morsels are still scanning — the consumer's first chunk
// costs one morsel, not one scan, backpressure bounds in-flight
// memory, and a cancelled context tears the workers down. Morsel
// sizing is adaptive on the chunked paths: the cursor starts at
// MorselBlocks and doubles its stride (capped) whenever morsels
// complete fast enough that scheduling overhead shows; claimed ranges
// stay contiguous and merge in claim order, so every stride produces
// byte-identical output.
//
// HashJoin rides the same scheduler end to end, build-while-collect:
// both sides' collections stream concurrently, the side predicted
// smaller scatters into radix partitions as its chunks arrive (chunk
// arrival order keeps each key's match list in build order) with one
// worker building each partition's hash map, and the probe runs
// morsel-parallel over the collected probe vector with per-morsel
// output slots concatenated in probe order — so the parallel join is
// byte-identical to the serial one. Cross-shard parallelism follows
// the same shape one level up: internal/partition fans a query's
// per-shard scans out concurrently (a shard is the morsel), and SQL's
// ORDER BY sorts morsel-sized runs in parallel before a k-way merge.
//
// Executors are safe for concurrent readers: scans take no locks and
// share no mutable state, and the access-frequency touches feeding
// query-based amnesia (§3.2) are accumulated per query — across all of
// a query's workers — and flushed with one internally synchronized
// TouchMany call.
package engine

import (
	"errors"
	"math"
	"sync"
	"time"

	"amnesiadb/internal/bitvec"
	"amnesiadb/internal/column"
	"amnesiadb/internal/engine/governor"
	"amnesiadb/internal/engine/sched"
	"amnesiadb/internal/expr"
	"amnesiadb/internal/table"
)

// ScanMode selects which tuples a query sees.
type ScanMode int

const (
	// ScanActive evaluates the query over active tuples only. This is
	// the normal operating mode of a database with amnesia.
	ScanActive ScanMode = iota
	// ScanAll evaluates the query over every tuple still stored,
	// including forgotten ones. The paper allows this as an explicit,
	// slow "complete scan" escape hatch and the metrics layer uses it
	// as ground truth.
	ScanAll
)

// String returns a short label for the mode.
func (m ScanMode) String() string {
	if m == ScanAll {
		return "all"
	}
	return "active"
}

// ErrNoRows is returned by aggregate queries whose qualifying set is empty.
var ErrNoRows = errors.New("engine: aggregate over empty row set")

// Result is the output of a selection query.
type Result struct {
	// Rows holds the positions of qualifying tuples in insertion order.
	Rows []int32
	// Values holds the attribute values of those tuples.
	Values []int64
}

// Count returns the number of qualifying tuples, RF(Q) in the paper when
// run under ScanActive.
func (r *Result) Count() int { return len(r.Rows) }

// Exec is a query executor bound to one table. The zero value is unusable;
// construct with New. An Exec holds no per-query state — only
// configuration (the table binding, the touch flag, the parallelism
// knob) — so one executor may serve any number of concurrent read-only
// queries once configured.
type Exec struct {
	t     *table.Table
	touch bool
	// par is the intra-query parallelism knob; see SetParallelism.
	par int
	// sched, when non-nil, dispatches parallel work through a shared
	// worker pool instead of spawning per-query goroutines; see
	// SetScheduler.
	sched *sched.Pool
}

// New returns an executor for t that records access frequencies (Touch)
// for tuples returned by ScanActive selections — the feedback loop
// query-based amnesia (§3.2) depends on.
func New(t *table.Table) *Exec { return &Exec{t: t, touch: true} }

// NewSilent returns an executor that does not update access frequencies.
// Metric ground-truth scans use it so that measuring precision does not
// perturb rot-style strategies.
func NewSilent(t *table.Table) *Exec { return &Exec{t: t} }

// Table returns the executor's table.
func (e *Exec) Table() *table.Table { return e.t }

// Select returns the tuples of column col satisfying pred under the given
// scan mode. The result accumulates batch by batch; the touched-row
// feedback is flushed once at the end of the scan.
func (e *Exec) Select(col string, pred expr.Expr, mode ScanMode) (*Result, error) {
	return e.selectTouching(col, pred, mode, e.touch)
}

// selectTouching is Select with an explicit touch decision, so internal
// callers (Aggregate, GroupBy, Precision ground truth) control the
// feedback without mutating shared executor state.
func (e *Exec) selectTouching(col string, pred expr.Expr, mode ScanMode, touch bool) (*Result, error) {
	c, err := e.t.Column(col)
	if err != nil {
		return nil, err
	}
	var active *bitvec.Vector
	if mode == ScanActive {
		active = e.t.Active()
	}
	// The scan kernel fills pooled batches (morsel-parallel past the
	// threshold); the chunks are then merged once into an exactly-sized
	// result. One pass over the data, no append-doubling churn.
	res := mergeChunks(e.collectAll(c, pred, active))
	if touch && mode == ScanActive {
		e.t.TouchMany(res.Rows)
	}
	return res, nil
}

// SelChunk is one batch-sized piece of a chunked selection: qualifying
// tuple positions and the parallel attribute values, in insertion order
// within and across chunks. The caller owns the slices.
type SelChunk struct {
	Rows   []int32
	Values []int64

	// quota, when non-nil, holds the per-query resource account this
	// chunk's pooled buffers are charged against; RecycleChunk releases
	// the charge when the buffers return to the pool. Copies of the
	// chunk carry the stamp, so whichever copy is recycled settles it.
	quota *governor.Quota
}

// SelectChunks is Select without the final concatenation: the qualifying
// tuples come back as the scan pipeline produced them — a list of
// batch-sized chunks in insertion order — so callers (the SQL layer's
// result stream) can project and serialize incrementally instead of
// materializing one flat result. Chunk buffers are stolen from the batch
// pool (the pool replaces them on demand); the caller owns them.
// Concatenating the chunks yields exactly Select's Rows and Values.
func (e *Exec) SelectChunks(col string, pred expr.Expr, mode ScanMode) ([]SelChunk, error) {
	c, err := e.t.Column(col)
	if err != nil {
		return nil, err
	}
	var active *bitvec.Vector
	if mode == ScanActive {
		active = e.t.Active()
	}
	batches := e.collectAll(c, pred, active)
	out := make([]SelChunk, len(batches))
	for i, b := range batches {
		out[i] = SelChunk{Rows: b.Sel, Values: b.Val}
	}
	if e.touch && mode == ScanActive {
		// One TouchMany per query, like Select: flushing per chunk would
		// contend on the touch mutex once per batch across concurrent
		// readers — exactly the serialisation the per-query flush exists
		// to avoid.
		total := 0
		for _, b := range batches {
			total += len(b.Sel)
		}
		if total > 0 {
			rows := make([]int32, 0, total)
			for _, b := range batches {
				rows = append(rows, b.Sel...)
			}
			e.t.TouchMany(rows)
		}
	}
	return out, nil
}

// collectAll runs the scan pipeline over the whole column — serial, or
// morsel-parallel when the knob admits workers — and returns the
// qualifying rows as truncated pooled batches in insertion order. Both
// Select and SelectChunks drain this one path. Parallel scans pull
// adaptively sized morsels (see adaptiveMorsels): each claimed range
// fills its own chunk-list slot keyed by claim sequence, and the
// flattening walks the slots in claim order — claims are contiguous and
// ascending, so rows stay in insertion order, byte-identical to the
// serial scan at every stride.
func (e *Exec) collectAll(c *column.Int64, pred expr.Expr, active *bitvec.Vector) []*Batch {
	w := e.workersFor(c.Len())
	if w <= 1 {
		return collectChunks(c, pred, active, 0, c.Len())
	}
	cur := e.newMorsels(c)
	var mu sync.Mutex
	var slots [][]*Batch
	runOne := func() bool {
		r, seq, ok := cur.claim()
		if !ok {
			return false
		}
		t0 := time.Now()
		cs := collectChunks(c, pred, active, r.start, r.end)
		qual := 0
		for _, b := range cs {
			qual += len(b.Sel)
		}
		cur.observe(time.Since(t0), qual)
		mu.Lock()
		for len(slots) <= seq {
			slots = append(slots, nil)
		}
		slots[seq] = cs
		mu.Unlock()
		return true
	}
	if e.sched != nil {
		// Shared-pool dispatch: the scan becomes one pool query of w
		// concurrent steps, scheduled fair-share against every other
		// active query; the calling goroutine drives its own steps while
		// it waits, so a saturated pool never idles the caller.
		q := e.sched.Attach(w, shortScan(c.Len()), func() sched.Status {
			if !runOne() {
				return sched.Done
			}
			return sched.Ran
		})
		q.Wait()
	} else {
		var wg sync.WaitGroup
		for i := 0; i < w; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for runOne() {
				}
			}()
		}
		wg.Wait()
	}
	e.recordStride(cur)
	var flat []*Batch
	for _, cs := range slots {
		flat = append(flat, cs...)
	}
	return flat
}

// mergeChunks concatenates scan chunks into an exactly-sized Result and
// recycles the batches. When the scan produced exactly one chunk, its
// buffers are handed to the Result directly — ownership moves out of the
// pool, the pool replaces the batch on demand — so small scans skip the
// concatenation copy entirely.
func mergeChunks(chunks []*Batch) *Result {
	if len(chunks) == 1 {
		b := chunks[0]
		return &Result{Rows: b.Sel, Values: b.Val}
	}
	total := 0
	for _, b := range chunks {
		total += len(b.Sel)
	}
	res := &Result{}
	if total > 0 {
		res.Rows = make([]int32, 0, total)
		res.Values = make([]int64, 0, total)
		for _, b := range chunks {
			res.Rows = append(res.Rows, b.Sel...)
			res.Values = append(res.Values, b.Val...)
		}
	}
	for _, b := range chunks {
		PutBatch(b)
	}
	return res
}

// AggKind enumerates the aggregate functions of §2.2.
type AggKind int

// Aggregate functions.
const (
	Count AggKind = iota
	Sum
	Avg
	Min
	Max
)

// String returns the SQL name of the aggregate.
func (k AggKind) String() string {
	switch k {
	case Count:
		return "COUNT"
	case Sum:
		return "SUM"
	case Avg:
		return "AVG"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	default:
		return "AGG?"
	}
}

// AggResult carries every aggregate so one scan serves any AggKind.
type AggResult struct {
	Rows int
	Sum  int64
	Min  int64
	Max  int64
	Avg  float64
	// Rower holds the positions contributing to the aggregate. It is
	// collected only on the access-frequency feedback path — a touching
	// executor scanning active tuples — where the advisor and the §3.2
	// strategies consume it; silent and ground-truth (ScanAll) aggregates
	// leave it nil so the fused pass allocates nothing per row.
	Rower []int32
}

// Value returns the requested aggregate as a float64.
func (a *AggResult) Value(k AggKind) float64 {
	switch k {
	case Count:
		return float64(a.Rows)
	case Sum:
		return float64(a.Sum)
	case Avg:
		return a.Avg
	case Min:
		return float64(a.Min)
	case Max:
		return float64(a.Max)
	default:
		panic("engine: invalid aggregate kind")
	}
}

// Aggregate computes COUNT/SUM/AVG/MIN/MAX of column col over tuples
// satisfying pred under the given scan mode, folding every batch into the
// running aggregate in one fused pass — no intermediate Result is built.
// It returns ErrNoRows when no tuple qualifies.
func (e *Exec) Aggregate(col string, pred expr.Expr, mode ScanMode) (*AggResult, error) {
	c, err := e.t.Column(col)
	if err != nil {
		return nil, err
	}
	touching := e.touch && mode == ScanActive
	var agg *AggResult
	if w := e.workersFor(c.Len()); w > 1 {
		var active *bitvec.Vector
		if mode == ScanActive {
			active = e.t.Active()
		}
		agg = e.aggregateParallel(c, pred, active, w, touching)
	} else {
		agg = &AggResult{Min: math.MaxInt64, Max: math.MinInt64}
		e.scanBatches(c, pred, mode, func(sel []int32, val []int64) {
			if touching {
				agg.Rower = append(agg.Rower, sel...)
			}
			agg.Rows += len(val)
			for _, v := range val {
				agg.Sum += v
				if v < agg.Min {
					agg.Min = v
				}
				if v > agg.Max {
					agg.Max = v
				}
			}
		})
	}
	if agg.Rows == 0 {
		return nil, ErrNoRows
	}
	agg.Avg = float64(agg.Sum) / float64(agg.Rows)
	if touching {
		e.t.TouchMany(agg.Rower)
	}
	return agg, nil
}

// Precision runs pred in both scan modes and returns RF(Q) (active
// matches), MF(Q) (matches lost to amnesia among stored tuples), and the
// query precision PF(Q) = RF/(RF+MF) as defined in §2.3. The ground-truth
// pass reuses the batch pipeline in counting mode, so it materializes
// nothing; on a silent executor the active pass counts too, since no
// touch feedback is owed — simulator precision sweeps then allocate
// nothing at all. When the query range is empty in both modes,
// precision is reported as 1 (nothing was asked for, nothing was
// missed).
func (e *Exec) Precision(col string, pred expr.Expr) (rf, mf int, pf float64, err error) {
	c, err := e.t.Column(col)
	if err != nil {
		return 0, 0, 0, err
	}
	if e.touch {
		act, err := e.Select(col, pred, ScanActive)
		if err != nil {
			return 0, 0, 0, err
		}
		rf = act.Count()
	} else {
		rf = e.countMatches(c, pred, ScanActive)
	}
	mf = e.countMatches(c, pred, ScanAll) - rf
	if rf+mf == 0 {
		return 0, 0, 1, nil
	}
	return rf, mf, float64(rf) / float64(rf+mf), nil
}
