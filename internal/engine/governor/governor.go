// Package governor is the engine's per-query resource accounting and
// enforcement layer. Every pooled batch a pipelined scan keeps in
// flight, every join build table and every sort run charges the query's
// *Quota; the charge is released when the buffers go back to the pool
// (or the transient phase ends). A query that exceeds its byte budget
// is cancelled alone — the latched ErrResourceExhausted surfaces at the
// next morsel boundary — and a process-wide high-water mark (tied to
// GOMEMLIMIT) sheds the most expensive in-flight query instead of
// letting the process OOM.
//
// All Quota methods are nil-receiver safe, so ungoverned paths (no
// budget configured, internal scans, tests) pay nothing: the engine
// charges unconditionally and a nil quota absorbs it.
//
// The quota travels with the query's context (WithQuota/FromContext)
// rather than through engine signatures, so every layer that already
// threads a context — the scan pipeline, the join's side collectors,
// ORDER BY's run sorts — picks it up without interface changes.
//
// Failpoint family (see internal/durability/failpoint):
//
//	governor.acquire — forces the next Acquire to fail as if the
//	                   budget were exhausted (deterministic kill tests)
//	governor.probe   — forces the degraded-mode heal probe to fail,
//	                   holding the server read-only while armed
package governor

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"amnesiadb/internal/durability/failpoint"
)

// ErrResourceExhausted is the typed error a query killed by resource
// governance reports: its own budget ran out, or the process high-water
// mark shed it. The server maps it to HTTP 413.
var ErrResourceExhausted = errors.New("governor: query resource budget exhausted")

// ErrDeadlineExceeded is the typed error a query killed by its
// per-query deadline reports. It is also installed as the cancellation
// cause of the deadline context, so both the morsel-boundary check and
// the context watcher surface the same error. The server maps it to
// HTTP 408.
var ErrDeadlineExceeded = errors.New("governor: query deadline exceeded")

// Failpoint site names of the governor.* family.
const (
	// FailpointAcquire forces Quota.Acquire to fail.
	FailpointAcquire = "governor.acquire"
	// FailpointProbe forces the degraded-mode heal probe to fail.
	FailpointProbe = "governor.probe"
)

// Governor is the process-wide ledger: the sum of all live quotas'
// governed bytes, checked against a high-water mark. Cross-query state
// only — per-query budgets live in the Quota.
type Governor struct {
	limit int64        // high-water mark in governed bytes; 0 disables shedding
	usage atomic.Int64 // sum of registered quotas' used bytes
	peak  atomic.Int64
	sheds atomic.Uint64

	mu     sync.Mutex
	quotas map[*Quota]struct{}
}

// New builds a governor with the given high-water mark in governed
// bytes. Zero disables process-wide shedding (per-query budgets still
// enforce); use HighWaterFromGOMEMLIMIT to derive a limit from the
// runtime's memory limit.
func New(highWater int64) *Governor {
	if highWater < 0 {
		highWater = 0
	}
	return &Governor{limit: highWater, quotas: map[*Quota]struct{}{}}
}

// HighWaterFromGOMEMLIMIT derives a shed threshold from the process's
// GOMEMLIMIT: half of it, leaving the other half for the resident
// columns, caches and runtime overhead the governor does not meter.
// Returns 0 (shedding disabled) when no memory limit is set.
func HighWaterFromGOMEMLIMIT() int64 {
	lim := debug.SetMemoryLimit(-1) // query without changing
	if lim <= 0 || lim == math.MaxInt64 {
		return 0
	}
	return lim / 2
}

// Limit returns the high-water mark (0 when shedding is disabled).
func (g *Governor) Limit() int64 {
	if g == nil {
		return 0
	}
	return g.limit
}

// NewQuota registers and returns a quota with the given per-query byte
// budget (0 = unlimited; the quota still meters usage for the process
// high-water mark and /healthz). Callers must Remove the quota when the
// query finishes so residual charges from abandoned streams cannot
// distort the ledger.
func (g *Governor) NewQuota(budget int64) *Quota {
	if g == nil {
		return nil
	}
	q := &Quota{g: g, budget: budget}
	g.mu.Lock()
	g.quotas[q] = struct{}{}
	g.mu.Unlock()
	return q
}

// Remove unregisters a quota and sweeps any residual charge out of the
// process ledger. Safe on nil receivers and nil quotas; idempotent.
func (g *Governor) Remove(q *Quota) {
	if g == nil || q == nil {
		return
	}
	g.mu.Lock()
	delete(g.quotas, q)
	g.mu.Unlock()
	q.mu.Lock()
	residual := q.used
	q.used = 0
	q.closed = true
	q.mu.Unlock()
	if residual != 0 {
		g.usage.Add(-residual)
	}
}

// Stats is the governor's /healthz snapshot.
type Stats struct {
	// ActiveQueries is the number of registered (in-flight) quotas.
	ActiveQueries int
	// UsedBytes is the governed bytes currently outstanding across all
	// queries — dominated by pooled batches held by streams in flight.
	UsedBytes int64
	// PeakBytes is the high-water of UsedBytes over the process life.
	PeakBytes int64
	// HighWater is the shed threshold (0 = shedding disabled).
	HighWater int64
	// Sheds counts queries killed by the process high-water mark.
	Sheds uint64
}

// Stats returns a consistent-enough snapshot for monitoring.
func (g *Governor) Stats() Stats {
	if g == nil {
		return Stats{}
	}
	g.mu.Lock()
	n := len(g.quotas)
	g.mu.Unlock()
	return Stats{
		ActiveQueries: n,
		UsedBytes:     g.usage.Load(),
		PeakBytes:     g.peak.Load(),
		HighWater:     g.limit,
		Sheds:         g.sheds.Load(),
	}
}

// shed kills the registered quota with the largest outstanding charge —
// one kill frees the most bytes, so the fewest queries die to bring the
// process back under the mark. The victim observes the latched error at
// its next morsel boundary and tears down, releasing its chunks.
func (g *Governor) shed(tot int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.usage.Load() <= g.limit {
		return // a concurrent shed already brought us back under
	}
	var victim *Quota
	var vUsed int64
	for q := range g.quotas {
		q.mu.Lock()
		if q.kill == nil && q.used > vUsed {
			victim, vUsed = q, q.used
		}
		q.mu.Unlock()
	}
	if victim == nil {
		return
	}
	victim.mu.Lock()
	if victim.kill == nil {
		victim.kill = fmt.Errorf("%w: shed at process high-water mark (%d governed bytes > %d limit; this query held %d)",
			ErrResourceExhausted, tot, g.limit, vUsed)
		g.sheds.Add(1)
	}
	victim.mu.Unlock()
}

// Quota is one query's resource account: governed bytes charged against
// an optional budget, an optional deadline, and a latched kill error.
// A nil *Quota is valid and free: every method no-ops.
type Quota struct {
	g      *Governor
	budget int64        // 0 = no per-query cap
	dl     atomic.Int64 // deadline, unix nanos; 0 = none

	mu     sync.Mutex
	used   int64
	peak   int64
	kill   error
	closed bool
}

// Acquire charges n governed bytes. It fails — latching the error so
// every later Acquire and Check fails identically — when the query's
// budget would be exceeded, and triggers a process-level shed when the
// global ledger crosses the high-water mark. A failed Acquire charges
// nothing; callers must not Release it.
func (q *Quota) Acquire(n int64) error {
	if q == nil {
		return nil
	}
	if err := failpoint.Eval(FailpointAcquire); err != nil {
		q.mu.Lock()
		if q.kill == nil {
			q.kill = fmt.Errorf("%w: %w", ErrResourceExhausted, err)
		}
		err = q.kill
		q.mu.Unlock()
		return err
	}
	q.mu.Lock()
	if q.kill != nil {
		err := q.kill
		q.mu.Unlock()
		return err
	}
	if q.closed {
		q.mu.Unlock()
		return nil // post-removal stragglers charge nothing
	}
	if q.budget > 0 && q.used+n > q.budget {
		q.kill = fmt.Errorf("%w: query needs %d bytes over its %d-byte budget (-max-query-bytes)",
			ErrResourceExhausted, q.used+n, q.budget)
		err := q.kill
		q.mu.Unlock()
		return err
	}
	q.used += n
	if q.used > q.peak {
		q.peak = q.used
	}
	q.mu.Unlock()
	if g := q.g; g != nil {
		tot := g.usage.Add(n)
		for {
			p := g.peak.Load()
			if tot <= p || g.peak.CompareAndSwap(p, tot) {
				break
			}
		}
		if g.limit > 0 && tot > g.limit {
			g.shed(tot)
		}
	}
	return nil
}

// Release returns n previously acquired bytes. Releases after the quota
// was removed from its governor are absorbed (Remove already swept the
// residual).
func (q *Quota) Release(n int64) {
	if q == nil {
		return
	}
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.used -= n
	q.mu.Unlock()
	if q.g != nil {
		q.g.usage.Add(-n)
	}
}

// Check reports the latched kill error, or ErrDeadlineExceeded once the
// deadline passed. The engine calls it at morsel boundaries so a killed
// query stops producing promptly.
func (q *Quota) Check() error {
	if q == nil {
		return nil
	}
	if dl := q.dl.Load(); dl != 0 && time.Now().UnixNano() >= dl {
		return ErrDeadlineExceeded
	}
	q.mu.Lock()
	err := q.kill
	q.mu.Unlock()
	return err
}

// Exhaust latches err (first writer wins) so the query fails at its
// next boundary. Used by tests and external shed policies.
func (q *Quota) Exhaust(err error) {
	if q == nil || err == nil {
		return
	}
	q.mu.Lock()
	if q.kill == nil {
		q.kill = err
	}
	q.mu.Unlock()
}

// SetDeadline installs the query's deadline; the zero time clears it.
func (q *Quota) SetDeadline(t time.Time) {
	if q == nil {
		return
	}
	if t.IsZero() {
		q.dl.Store(0)
		return
	}
	q.dl.Store(t.UnixNano())
}

// Used returns the bytes currently charged.
func (q *Quota) Used() int64 {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.used
}

// Peak returns the query's high-water charge.
func (q *Quota) Peak() int64 {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.peak
}

// Budget returns the per-query byte budget (0 = unlimited).
func (q *Quota) Budget() int64 {
	if q == nil {
		return 0
	}
	return q.budget
}

// ctxKey keys the quota in a context.
type ctxKey struct{}

// WithQuota returns a context carrying q. A nil q returns ctx unchanged
// so ungoverned queries don't pay a context allocation. ctx must be the
// query's own context — the quota rides the request's cancellation
// chain, never a detached one.
func WithQuota(ctx context.Context, q *Quota) context.Context {
	if q == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, q)
}

// FromContext extracts the query's quota, nil (free) when absent. A nil
// context is valid and returns nil.
func FromContext(ctx context.Context) *Quota {
	if ctx == nil {
		return nil
	}
	q, _ := ctx.Value(ctxKey{}).(*Quota)
	return q
}
