package governor

import (
	"context"
	"errors"
	"testing"
	"time"

	"amnesiadb/internal/durability/failpoint"
)

// A nil quota must absorb every operation for free: the engine charges
// unconditionally and ungoverned queries ride the nil path.
func TestNilQuotaIsFree(t *testing.T) {
	var q *Quota
	if err := q.Acquire(1 << 30); err != nil {
		t.Fatalf("nil Acquire: %v", err)
	}
	q.Release(1 << 30)
	if err := q.Check(); err != nil {
		t.Fatalf("nil Check: %v", err)
	}
	q.Exhaust(errors.New("x"))
	q.SetDeadline(time.Now())
	if q.Used() != 0 || q.Peak() != 0 || q.Budget() != 0 {
		t.Fatal("nil quota reported usage")
	}
	var g *Governor
	if g.NewQuota(1) != nil {
		t.Fatal("nil governor handed out a quota")
	}
	g.Remove(nil)
	if s := g.Stats(); s != (Stats{}) {
		t.Fatalf("nil governor stats = %+v", s)
	}
}

func TestBudgetExhaustionLatches(t *testing.T) {
	g := New(0)
	q := g.NewQuota(100)
	defer g.Remove(q)
	if err := q.Acquire(60); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	err := q.Acquire(60)
	if !errors.Is(err, ErrResourceExhausted) {
		t.Fatalf("over-budget acquire = %v, want ErrResourceExhausted", err)
	}
	// The failure latched: Check and further acquires fail identically,
	// and the failed acquire charged nothing.
	if cerr := q.Check(); !errors.Is(cerr, ErrResourceExhausted) {
		t.Fatalf("Check after kill = %v", cerr)
	}
	if aerr := q.Acquire(1); !errors.Is(aerr, ErrResourceExhausted) {
		t.Fatalf("acquire after kill = %v", aerr)
	}
	if q.Used() != 60 {
		t.Fatalf("used = %d, want 60 (failed acquire must not charge)", q.Used())
	}
}

func TestReleaseBalancesLedger(t *testing.T) {
	g := New(0)
	q := g.NewQuota(0)
	if err := q.Acquire(40); err != nil {
		t.Fatal(err)
	}
	if got := g.Stats().UsedBytes; got != 40 {
		t.Fatalf("governor usage = %d, want 40", got)
	}
	q.Release(40)
	if got := g.Stats().UsedBytes; got != 0 {
		t.Fatalf("governor usage after release = %d, want 0", got)
	}
	g.Remove(q)
	if got := g.Stats().ActiveQueries; got != 0 {
		t.Fatalf("active queries after remove = %d", got)
	}
}

// Remove must sweep residual charges (abandoned streams) and absorb
// stragglers so the ledger never drifts negative.
func TestRemoveSweepsResidual(t *testing.T) {
	g := New(0)
	q := g.NewQuota(0)
	if err := q.Acquire(64); err != nil {
		t.Fatal(err)
	}
	g.Remove(q)
	if got := g.Stats().UsedBytes; got != 0 {
		t.Fatalf("usage after remove = %d, want 0", got)
	}
	q.Release(64) // late recycle from a janitor goroutine
	if got := g.Stats().UsedBytes; got != 0 {
		t.Fatalf("usage after late release = %d, want 0", got)
	}
	if err := q.Acquire(8); err != nil {
		t.Fatalf("post-remove acquire should absorb, got %v", err)
	}
	if got := g.Stats().UsedBytes; got != 0 {
		t.Fatalf("usage after post-remove acquire = %d, want 0", got)
	}
}

// Crossing the process high-water mark kills the largest query, not the
// small ones.
func TestHighWaterShedsLargestQuery(t *testing.T) {
	g := New(1000)
	big := g.NewQuota(0)
	small := g.NewQuota(0)
	defer g.Remove(big)
	defer g.Remove(small)
	if err := small.Acquire(100); err != nil {
		t.Fatal(err)
	}
	if err := big.Acquire(600); err != nil {
		t.Fatal(err)
	}
	// This acquire pushes the process ledger over 1000. The acquire
	// itself succeeds (the kill lands at the next boundary), but the
	// biggest quota must now carry the latched shed error.
	if err := big.Acquire(400); err != nil {
		t.Fatalf("acquire crossing high-water should succeed locally: %v", err)
	}
	if err := big.Check(); !errors.Is(err, ErrResourceExhausted) {
		t.Fatalf("big query not shed: Check = %v", err)
	}
	if err := small.Check(); err != nil {
		t.Fatalf("small query collateral damage: %v", err)
	}
	if got := g.Stats().Sheds; got != 1 {
		t.Fatalf("sheds = %d, want 1", got)
	}
}

func TestDeadline(t *testing.T) {
	g := New(0)
	q := g.NewQuota(0)
	defer g.Remove(q)
	q.SetDeadline(time.Now().Add(time.Hour))
	if err := q.Check(); err != nil {
		t.Fatalf("before deadline: %v", err)
	}
	q.SetDeadline(time.Now().Add(-time.Millisecond))
	if err := q.Check(); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("past deadline: Check = %v, want ErrDeadlineExceeded", err)
	}
	q.SetDeadline(time.Time{})
	if err := q.Check(); err != nil {
		t.Fatalf("cleared deadline: %v", err)
	}
}

func TestContextCarriage(t *testing.T) {
	if FromContext(nil) != nil {
		t.Fatal("nil context yielded a quota")
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context yielded a quota")
	}
	g := New(0)
	q := g.NewQuota(0)
	defer g.Remove(q)
	ctx := WithQuota(context.Background(), q)
	if FromContext(ctx) != q {
		t.Fatal("quota did not round-trip through the context")
	}
	if got := WithQuota(ctx, nil); got != ctx {
		t.Fatal("WithQuota(nil) should return ctx unchanged")
	}
}

// The governor.acquire failpoint forces a deterministic kill: the
// injected failure wraps ErrResourceExhausted and latches like a real
// budget exhaustion.
func TestAcquireFailpoint(t *testing.T) {
	defer failpoint.DisableAll()
	if err := failpoint.Arm(FailpointAcquire + "=error"); err != nil {
		t.Fatal(err)
	}
	g := New(0)
	q := g.NewQuota(1 << 40)
	defer g.Remove(q)
	err := q.Acquire(1)
	if !errors.Is(err, ErrResourceExhausted) || !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("failpoint acquire = %v, want ErrResourceExhausted wrapping ErrInjected", err)
	}
	failpoint.Disable(FailpointAcquire)
	// Latched: the site is disarmed but the quota stays dead.
	if err := q.Check(); !errors.Is(err, ErrResourceExhausted) {
		t.Fatalf("Check after failpoint kill = %v", err)
	}
}

// error:after:N arms the family's delayed form: N acquires pass, then
// the site fires.
func TestAcquireFailpointAfter(t *testing.T) {
	defer failpoint.DisableAll()
	if err := failpoint.Arm(FailpointAcquire + "=error:after:2"); err != nil {
		t.Fatal(err)
	}
	g := New(0)
	q := g.NewQuota(0)
	defer g.Remove(q)
	for i := 0; i < 2; i++ {
		if err := q.Acquire(1); err != nil {
			t.Fatalf("acquire %d should pass: %v", i, err)
		}
	}
	if err := q.Acquire(1); !errors.Is(err, ErrResourceExhausted) {
		t.Fatalf("third acquire = %v, want injected exhaustion", err)
	}
}
