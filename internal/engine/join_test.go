package engine

import (
	"math"
	"testing"

	"amnesiadb/internal/expr"
	"amnesiadb/internal/table"
	"amnesiadb/internal/xrand"
)

func tblNamed(t *testing.T, name string, vals ...int64) *table.Table {
	t.Helper()
	tb := table.New(name, "k")
	if _, err := tb.AppendSingleColumn(vals); err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestHashJoinBasic(t *testing.T) {
	l := tblNamed(t, "l", 1, 2, 3, 4)
	r := tblNamed(t, "r", 2, 4, 4, 6)
	res, err := HashJoin(l, "k", r, "k", nil, ScanActive)
	if err != nil {
		t.Fatal(err)
	}
	// matches: 2-2 (1 pair), 4-4 twice = 3 pairs
	if res.Count() != 3 {
		t.Fatalf("pairs = %d, want 3", res.Count())
	}
	for _, row := range res.Rows {
		lv := l.MustColumn("k").Get(int(row.Left))
		rv := r.MustColumn("k").Get(int(row.Right))
		if lv != rv || lv != row.Key {
			t.Fatalf("bad pair %+v (lv=%d rv=%d)", row, lv, rv)
		}
	}
}

func TestHashJoinPredicate(t *testing.T) {
	l := tblNamed(t, "l", 1, 2, 3)
	r := tblNamed(t, "r", 1, 2, 3)
	res, err := HashJoin(l, "k", r, "k", expr.NewRange(2, 4), ScanActive)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 2 {
		t.Fatalf("predicated join = %d pairs", res.Count())
	}
}

func TestHashJoinRespectsAmnesiaBothSides(t *testing.T) {
	l := tblNamed(t, "l", 1, 2, 3)
	r := tblNamed(t, "r", 1, 2, 3)
	l.Forget(0) // key 1 gone on the left
	r.Forget(2) // key 3 gone on the right
	res, err := HashJoin(l, "k", r, "k", nil, ScanActive)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 1 || res.Rows[0].Key != 2 {
		t.Fatalf("amnesiac join = %+v", res.Rows)
	}
	all, err := HashJoin(l, "k", r, "k", nil, ScanAll)
	if err != nil {
		t.Fatal(err)
	}
	if all.Count() != 3 {
		t.Fatalf("complete join = %d pairs", all.Count())
	}
}

func TestHashJoinUnknownColumns(t *testing.T) {
	l := tblNamed(t, "l", 1)
	r := tblNamed(t, "r", 1)
	if _, err := HashJoin(l, "zz", r, "k", nil, ScanActive); err == nil {
		t.Fatal("bad left column accepted")
	}
	if _, err := HashJoin(l, "k", r, "zz", nil, ScanActive); err == nil {
		t.Fatal("bad right column accepted")
	}
}

func TestHashJoinBuildSideChoiceIrrelevant(t *testing.T) {
	// Same pair multiset regardless of which side is smaller.
	src := xrand.New(1)
	big := make([]int64, 500)
	small := make([]int64, 50)
	for i := range big {
		big[i] = src.Int63n(100)
	}
	for i := range small {
		small[i] = src.Int63n(100)
	}
	l := tblNamed(t, "l", big...)
	r := tblNamed(t, "r", small...)
	a, err := HashJoin(l, "k", r, "k", nil, ScanActive)
	if err != nil {
		t.Fatal(err)
	}
	b, err := HashJoin(r, "k", l, "k", nil, ScanActive)
	if err != nil {
		t.Fatal(err)
	}
	if a.Count() != b.Count() {
		t.Fatalf("join counts differ by direction: %d vs %d", a.Count(), b.Count())
	}
}

func TestJoinPrecision(t *testing.T) {
	// 4 matching keys; forget one left tuple: 3/4 pairs survive.
	l := tblNamed(t, "l", 1, 2, 3, 4)
	r := tblNamed(t, "r", 1, 2, 3, 4)
	l.Forget(1)
	rf, mf, pf, err := JoinPrecision(l, "k", r, "k", nil)
	if err != nil {
		t.Fatal(err)
	}
	if rf != 3 || mf != 1 || math.Abs(pf-0.75) > 1e-12 {
		t.Fatalf("rf=%d mf=%d pf=%v", rf, mf, pf)
	}
}

func TestJoinPrecisionCompoundsAcrossSides(t *testing.T) {
	// Join precision is roughly the product of the two sides' tuple
	// precision: forgetting half of each side leaves ~a quarter of the
	// pairs. This is the amnesia-specific hazard joins add.
	src := xrand.New(2)
	keys := make([]int64, 1000)
	for i := range keys {
		keys[i] = src.Int63n(500)
	}
	l := tblNamed(t, "l", keys...)
	r := tblNamed(t, "r", keys...)
	for i := 0; i < 1000; i += 2 {
		l.Forget(i)
		r.Forget(i + 1)
	}
	_, _, pf, err := JoinPrecision(l, "k", r, "k", nil)
	if err != nil {
		t.Fatal(err)
	}
	if pf < 0.15 || pf > 0.35 {
		t.Fatalf("compound join precision = %v, want ~0.25", pf)
	}
}

func TestJoinPrecisionEmpty(t *testing.T) {
	l := tblNamed(t, "l", 1)
	r := tblNamed(t, "r", 2)
	_, _, pf, err := JoinPrecision(l, "k", r, "k", nil)
	if err != nil {
		t.Fatal(err)
	}
	if pf != 1 {
		t.Fatalf("empty join precision = %v", pf)
	}
}

func BenchmarkHashJoin(b *testing.B) {
	src := xrand.New(1)
	mk := func(n int) *table.Table {
		tb := table.New("t", "k")
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = src.Int63n(int64(n))
		}
		if _, err := tb.AppendSingleColumn(vals); err != nil {
			b.Fatal(err)
		}
		return tb
	}
	l, r := mk(100000), mk(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := HashJoin(l, "k", r, "k", nil, ScanActive); err != nil {
			b.Fatal(err)
		}
	}
}
