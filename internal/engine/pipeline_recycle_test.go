package engine

// Regression test for the Collect error-path leak the batchlifecycle
// analyzer flagged: chunks already collected when the stream reports an
// error came off the batch pool and must go back, or every failed ORDER
// BY barrier strands two pool buffers.

import (
	"context"
	"errors"
	"testing"
)

func TestCollectErrorPathRecyclesChunks(t *testing.T) {
	var recycled int
	putHook = func(*Batch) { recycled++ }
	defer func() { putHook = nil }()

	s := newChunkStream()
	const buffered = 2
	for i := 0; i < buffered; i++ {
		b := GetBatch()
		s.ch <- SelChunk{Rows: b.Sel[:1], Values: b.Val[:1]}
	}
	// The emitter publishes err strictly before closing ch; mimic that.
	s.err = errors.New("scan failed")
	close(s.ch)

	chunks, err := s.Collect()
	if err == nil || chunks != nil {
		t.Fatalf("Collect = (%v, %v), want (nil, error)", chunks, err)
	}
	if recycled != buffered {
		t.Fatalf("recycled %d pool batches on the error path, want %d", recycled, buffered)
	}
}

// TestForEachTaskCtx pins the ctx-aware fan-out primitive: a nil ctx
// degrades to the plain scheduler path, a live ctx runs every task, and
// a canceled ctx returns its error without running the remainder.
func TestForEachTaskCtx(t *testing.T) {
	ran := make([]bool, 8)
	if err := ForEachTaskCtx(nil, nil, 2, len(ran), func(i int) { ran[i] = true }); err != nil {
		t.Fatalf("nil ctx: %v", err)
	}
	for i, ok := range ran {
		if !ok {
			t.Fatalf("nil ctx skipped task %d", i)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := ForEachTaskCtx(ctx, nil, 2, 4, func(int) { t.Error("task ran under canceled ctx") }); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled ctx: err = %v, want context.Canceled", err)
	}
}
