package engine

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"amnesiadb/internal/expr"
	"amnesiadb/internal/table"
	"amnesiadb/internal/xrand"
)

func tbl(t *testing.T, vals ...int64) *table.Table {
	t.Helper()
	tb := table.New("t", "a")
	if _, err := tb.AppendSingleColumn(vals); err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestSelectActiveSkipsForgotten(t *testing.T) {
	tb := tbl(t, 10, 20, 30, 40)
	tb.Forget(1)
	ex := New(tb)
	res, err := ex.Select("a", expr.NewRange(0, 100), ScanActive)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 3 {
		t.Fatalf("active select returned %d rows", res.Count())
	}
	for _, r := range res.Rows {
		if r == 1 {
			t.Fatal("forgotten row leaked into active scan")
		}
	}
}

func TestSelectAllSeesForgotten(t *testing.T) {
	tb := tbl(t, 10, 20, 30)
	tb.Forget(0)
	ex := New(tb)
	res, err := ex.Select("a", expr.NewRange(0, 100), ScanAll)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 3 {
		t.Fatalf("full select returned %d rows", res.Count())
	}
}

func TestSelectUnknownColumn(t *testing.T) {
	ex := New(tbl(t, 1))
	if _, err := ex.Select("zz", expr.True{}, ScanActive); err == nil {
		t.Fatal("unknown column accepted")
	}
}

func TestSelectNonExactPredicateRechecks(t *testing.T) {
	// NE has inexact bounds, so the engine must re-evaluate per row.
	tb := tbl(t, 1, 2, 3)
	ex := New(tb)
	res, err := ex.Select("a", expr.Cmp{Op: expr.NE, Val: 2}, ScanActive)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 2 {
		t.Fatalf("NE select returned %v", res.Values)
	}
	for _, v := range res.Values {
		if v == 2 {
			t.Fatal("NE predicate leaked excluded value")
		}
	}
}

func TestSelectTouchesAccessCounts(t *testing.T) {
	tb := tbl(t, 5, 15, 25)
	ex := New(tb)
	if _, err := ex.Select("a", expr.NewRange(10, 30), ScanActive); err != nil {
		t.Fatal(err)
	}
	if tb.AccessCount(0) != 0 || tb.AccessCount(1) != 1 || tb.AccessCount(2) != 1 {
		t.Fatalf("access counts = %d %d %d", tb.AccessCount(0), tb.AccessCount(1), tb.AccessCount(2))
	}
}

func TestScanAllDoesNotTouch(t *testing.T) {
	tb := tbl(t, 5)
	ex := New(tb)
	if _, err := ex.Select("a", expr.True{}, ScanAll); err != nil {
		t.Fatal(err)
	}
	if tb.AccessCount(0) != 0 {
		t.Fatal("ScanAll updated access counts")
	}
}

func TestSilentExecutorDoesNotTouch(t *testing.T) {
	tb := tbl(t, 5)
	ex := NewSilent(tb)
	if _, err := ex.Select("a", expr.True{}, ScanActive); err != nil {
		t.Fatal(err)
	}
	if tb.AccessCount(0) != 0 {
		t.Fatal("silent executor updated access counts")
	}
}

func TestAggregate(t *testing.T) {
	tb := tbl(t, 10, 20, 30, 40)
	ex := New(tb)
	agg, err := ex.Aggregate("a", expr.NewRange(15, 45), ScanActive)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Rows != 3 || agg.Sum != 90 || agg.Min != 20 || agg.Max != 40 {
		t.Fatalf("agg = %+v", agg)
	}
	if math.Abs(agg.Avg-30) > 1e-9 {
		t.Fatalf("avg = %v", agg.Avg)
	}
	if agg.Value(Count) != 3 || agg.Value(Sum) != 90 || agg.Value(Avg) != 30 ||
		agg.Value(Min) != 20 || agg.Value(Max) != 40 {
		t.Fatal("Value accessors disagree")
	}
}

func TestAggregateEmpty(t *testing.T) {
	tb := tbl(t, 1)
	ex := New(tb)
	_, err := ex.Aggregate("a", expr.NewRange(100, 200), ScanActive)
	if !errors.Is(err, ErrNoRows) {
		t.Fatalf("err = %v, want ErrNoRows", err)
	}
}

func TestAggregateRespectsAmnesia(t *testing.T) {
	tb := tbl(t, 10, 1000)
	tb.Forget(1)
	ex := New(tb)
	agg, err := ex.Aggregate("a", expr.True{}, ScanActive)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Avg != 10 {
		t.Fatalf("avg over active = %v, want 10", agg.Avg)
	}
	all, err := ex.Aggregate("a", expr.True{}, ScanAll)
	if err != nil {
		t.Fatal(err)
	}
	if all.Avg != 505 {
		t.Fatalf("avg over all = %v, want 505", all.Avg)
	}
}

func TestAggregateTouches(t *testing.T) {
	tb := tbl(t, 10, 20)
	ex := New(tb)
	if _, err := ex.Aggregate("a", expr.True{}, ScanActive); err != nil {
		t.Fatal(err)
	}
	if tb.AccessCount(0) != 1 || tb.AccessCount(1) != 1 {
		t.Fatal("aggregate did not touch contributing tuples")
	}
}

func TestPrecisionDefinition(t *testing.T) {
	// 4 stored matches, 1 forgotten: PF = 3/4.
	tb := tbl(t, 1, 2, 3, 4, 100)
	tb.Forget(2)
	ex := New(tb)
	rf, mf, pf, err := ex.Precision("a", expr.NewRange(0, 10))
	if err != nil {
		t.Fatal(err)
	}
	if rf != 3 || mf != 1 {
		t.Fatalf("rf=%d mf=%d", rf, mf)
	}
	if math.Abs(pf-0.75) > 1e-12 {
		t.Fatalf("pf = %v", pf)
	}
}

func TestPrecisionEmptyRangeIsOne(t *testing.T) {
	tb := tbl(t, 1, 2)
	ex := New(tb)
	_, _, pf, err := ex.Precision("a", expr.NewRange(50, 60))
	if err != nil {
		t.Fatal(err)
	}
	if pf != 1 {
		t.Fatalf("empty-range precision = %v", pf)
	}
}

func TestPrecisionGroundTruthDoesNotTouch(t *testing.T) {
	tb := tbl(t, 5)
	tb.Forget(0)
	ex := New(tb)
	if _, _, _, err := ex.Precision("a", expr.True{}); err != nil {
		t.Fatal(err)
	}
	if tb.AccessCount(0) != 0 {
		t.Fatal("precision ground-truth scan touched forgotten tuple")
	}
}

func TestPropertyPrecisionInUnitInterval(t *testing.T) {
	src := xrand.New(5)
	f := func(vals []int64, forget []uint8, lo int64, width uint16) bool {
		if len(vals) == 0 {
			return true
		}
		for i := range vals {
			vals[i] &= 0xffff // keep ranges plausible
		}
		tb := table.New("t", "a")
		if _, err := tb.AppendSingleColumn(vals); err != nil {
			return false
		}
		for _, fi := range forget {
			tb.Forget(int(fi) % len(vals))
		}
		ex := New(tb)
		lo &= 0xffff
		rf, mf, pf, err := ex.Precision("a", expr.NewRange(lo, lo+int64(width)))
		if err != nil {
			return false
		}
		_ = src
		return rf >= 0 && mf >= 0 && pf >= 0 && pf <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSelectActive(b *testing.B) {
	src := xrand.New(1)
	tb := table.New("t", "a")
	vals := make([]int64, 1<<18)
	for i := range vals {
		vals[i] = src.Int63n(1 << 18)
	}
	if _, err := tb.AppendSingleColumn(vals); err != nil {
		b.Fatal(err)
	}
	ex := NewSilent(tb)
	pred := expr.NewRange(1000, 3000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Select("a", pred, ScanActive); err != nil {
			b.Fatal(err)
		}
	}
}
