package engine

import (
	"runtime"
	"testing"

	"amnesiadb/internal/expr"
	"amnesiadb/internal/table"
	"amnesiadb/internal/xrand"
)

// benchRows is large enough (≥ 4M) that the morsel scheduler has ~64
// morsels to spread across cores; the speedup target is ≥ 2x at
// GOMAXPROCS ≥ 4 with results byte-identical to the serial path (the
// equivalence tests in parallel_test.go enforce that).
const benchRows = 4 << 20

var benchTableCache *table.Table

func bigBenchTable(b *testing.B) *table.Table {
	b.Helper()
	if benchTableCache != nil {
		return benchTableCache
	}
	src := xrand.New(1)
	tb := table.New("bench", "a")
	vals := make([]int64, benchRows)
	for i := range vals {
		vals[i] = src.Int63n(1 << 20)
	}
	if _, err := tb.AppendSingleColumn(vals); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < benchRows; i += 2 {
		tb.Forget(i)
	}
	benchTableCache = tb
	return tb
}

// benchExec returns a silent executor at the given parallelism so the
// benchmark measures the scan, not the touch flush.
func benchExec(b *testing.B, par int) *Exec {
	ex := NewSilent(bigBenchTable(b))
	ex.SetParallelism(par)
	return ex
}

func parallelSettings() []struct {
	name string
	par  int
} {
	return []struct {
		name string
		par  int
	}{
		{"serial", 1},
		{"parallel", 0}, // auto: GOMAXPROCS workers at this table size
	}
}

// BenchmarkParallelSelect measures the morsel-driven Select against the
// serial path over the same 4M-row table and predicate (~12%
// selectivity).
func BenchmarkParallelSelect(b *testing.B) {
	pred := expr.NewRange(1<<18, 1<<19)
	for _, s := range parallelSettings() {
		b.Run(s.name, func(b *testing.B) {
			ex := benchExec(b, s.par)
			b.ReportAllocs()
			b.SetBytes(benchRows * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ex.Select("a", pred, ScanActive); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "procs")
		})
	}
}

// BenchmarkParallelAggregate measures the fused aggregate with
// per-worker partials against the serial fold. The parallel path must
// stay allocation-flat per batch: worker-local pooled batches, no
// per-row allocation anywhere.
func BenchmarkParallelAggregate(b *testing.B) {
	pred := expr.NewRange(1<<18, 1<<19)
	for _, s := range parallelSettings() {
		b.Run(s.name, func(b *testing.B) {
			ex := benchExec(b, s.par)
			b.ReportAllocs()
			b.SetBytes(benchRows * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ex.Aggregate("a", pred, ScanActive); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "procs")
		})
	}
}

// BenchmarkParallelJoin measures the full join pipeline — parallel
// collection of both sides, radix-partitioned hash build, morsel-driven
// probe — against the serial path. The probe side is the 4M-row bench
// table; the build side is 512K rows over the same key domain, so most
// probe tuples find matches.
func BenchmarkParallelJoin(b *testing.B) {
	probeTbl := bigBenchTable(b)
	src := xrand.New(2)
	buildTbl := table.New("build", "a")
	vals := make([]int64, 512<<10)
	for i := range vals {
		vals[i] = src.Int63n(1 << 20)
	}
	if _, err := buildTbl.AppendSingleColumn(vals); err != nil {
		b.Fatal(err)
	}
	for _, s := range parallelSettings() {
		b.Run(s.name, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes((benchRows + int64(len(vals))) * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := HashJoinPar(probeTbl, "a", buildTbl, "a", nil, ScanActive, s.par)
				if err != nil {
					b.Fatal(err)
				}
				if res.Count() == 0 {
					b.Fatal("empty join")
				}
			}
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "procs")
		})
	}
}

// BenchmarkParallelCount measures the counting path (COUNT(*) and the
// Precision ground truth): pure per-morsel tallies, no materialization.
func BenchmarkParallelCount(b *testing.B) {
	pred := expr.NewRange(1<<18, 1<<19)
	for _, s := range parallelSettings() {
		b.Run(s.name, func(b *testing.B) {
			ex := benchExec(b, s.par)
			c := ex.Table().MustColumn("a")
			b.ReportAllocs()
			b.SetBytes(benchRows * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if n := ex.countMatches(c, pred, ScanActive); n == 0 {
					b.Fatal("empty count")
				}
			}
		})
	}
}
