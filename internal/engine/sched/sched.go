// Package sched is the process-global query scheduler: a fixed pool of
// worker goroutines dispatching morsel-sized steps from per-query run
// queues, instead of every query spawning its own GOMAXPROCS workers.
// Under one concurrent query the pool behaves like the per-query
// scheduler it replaces — all workers pull that query's steps — but
// under many it is what keeps the box subscribed ~1x: the worker count
// is fixed at construction, queries share it fair-share round-robin,
// and short queries get a bounded priority boost so a 4M-row scan
// cannot starve point lookups.
//
// The unit of dispatch is a step: one call of the query's step
// function, typically one morsel claim + scan. Steps must never block
// on other queries' progress — a step that cannot proceed (its
// pipeline's in-flight budget is exhausted, say) returns Blocked
// instead of waiting, and the consumer side calls Wake once capacity
// frees up. That non-blocking contract is what makes the shared pool
// deadlock-free: a pool worker always either runs useful work or goes
// idle, never waits on a neighbour.
//
// Wait lets the querying goroutine participate: while waiting for its
// query to finish it runs the query's own steps alongside the pool
// workers. A caller therefore never sits idle behind a saturated pool,
// and a step that synchronously starts a nested query (a shard scan
// inside a fan-out morsel) drives that nested work itself rather than
// deadlocking the worker it runs on.
package sched

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// Status is a step's outcome.
type Status int

const (
	// Ran reports the step did work and the query may have more.
	Ran Status = iota
	// Blocked reports the step could not proceed (backpressure); the
	// query is parked until Wake.
	Blocked
	// Done reports the query's work is exhausted: no further steps will
	// be scheduled once in-flight ones return.
	Done
)

// shortBurst bounds the short-query priority boost: after this many
// consecutive boosted picks the scheduler takes one plain round-robin
// pick, so a stream of point lookups cannot starve a long scan.
const shortBurst = 4

// Pool is a fixed-size worker pool dispatching steps across attached
// queries. Construct with New; the zero value is unusable.
type Pool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queries []*Query
	rr      int // round-robin cursor into queries
	boost   int // consecutive short-priority picks
	size    int
	running int // steps executing right now (pool workers + Wait callers)
	closed  bool
	wg      sync.WaitGroup
}

// New starts a pool of n workers (n < 1 is treated as 1).
func New(n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{size: n}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < n; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

var (
	defaultOnce sync.Once
	defaultPool *Pool
)

// Default returns the shared process-global pool, created on first use
// with GOMAXPROCS workers. It is never closed.
func Default() *Pool {
	defaultOnce.Do(func() { defaultPool = New(runtime.GOMAXPROCS(0)) })
	return defaultPool
}

// Size returns the worker count the pool was built with.
func (p *Pool) Size() int { return p.size }

// Stats is a point-in-time snapshot of pool load.
type Stats struct {
	// Workers is the fixed pool width.
	Workers int `json:"workers"`
	// Running counts steps executing right now, including Wait callers
	// driving their own queries.
	Running int `json:"running"`
	// Queries counts attached (unfinished) queries.
	Queries int `json:"queries"`
}

// Stats snapshots current load.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{Workers: p.size, Running: p.running, Queries: len(p.queries)}
}

// Close stops the pool's workers after their current step. Attached
// queries are not cancelled: Wait callers keep driving their own
// queries to completion, but detached streaming queries stop making
// progress — tear streams down before closing their pool. Idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}

// Query is one unit of admission: a step function plus its scheduling
// state. Obtain via Attach; a Query is finished once a step returned
// Done and every in-flight step returned.
type Query struct {
	pool     *Pool
	step     func() Status
	width    int  // max concurrent steps
	short    bool // priority-boost eligible
	stepping int  // steps executing now
	wakes    uint64
	blocked  bool
	done     bool // a step returned Done; schedule nothing further
	finished bool
	fin      chan struct{}
	pan      any    // first step panic, if any
	stack    []byte // its stack
}

// Attach registers a query with the pool. width caps how many of its
// steps may execute concurrently; short marks it for the bounded
// priority boost (point lookups, small streams). step is called from
// arbitrary goroutines — pool workers and Wait callers — with at most
// width concurrent invocations, and must not block on other queries'
// progress (return Blocked instead, and arrange a Wake).
func (p *Pool) Attach(width int, short bool, step func() Status) *Query {
	if width < 1 {
		width = 1
	}
	q := &Query{pool: p, step: step, width: width, short: short, fin: make(chan struct{})}
	p.mu.Lock()
	p.queries = append(p.queries, q)
	p.mu.Unlock()
	p.cond.Broadcast()
	return q
}

// Wake unparks a query whose last step returned Blocked. Consumers
// call it whenever they free the capacity the step was missing. Wakes
// arriving while a step is executing are not lost: a step that returns
// Blocked after a concurrent Wake is immediately schedulable again.
func (q *Query) Wake() {
	p := q.pool
	p.mu.Lock()
	q.wakes++
	q.blocked = false
	p.mu.Unlock()
	p.cond.Broadcast()
}

// Done returns a channel closed once the query has finished: a step
// returned Done and all in-flight steps returned.
func (q *Query) Done() <-chan struct{} { return q.fin }

// Panicked returns the first panic a step of this query raised and its
// stack, nil when every step returned normally. Valid once Done is
// closed. Consumers that wait via Done (detached streams) use this to
// surface the failure; Wait callers get the panic re-raised instead.
func (q *Query) Panicked() (any, []byte) {
	p := q.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	return q.pan, q.stack
}

// Wait blocks until the query finishes, driving the query's own steps
// while it waits — the caller is an extra worker for exactly its own
// query, so attached work always makes progress even on a saturated
// (or closed) pool, and a nested Wait inside a pool step drives the
// nested query rather than deadlocking its worker. A step panic is
// re-raised here, in the query owner's goroutine, rather than on
// whichever pool worker happened to run the step.
func (q *Query) Wait() {
	p := q.pool
	p.mu.Lock()
	for {
		if q.finished {
			pan, stack := q.pan, q.stack
			p.mu.Unlock()
			if pan != nil {
				panic(fmt.Sprintf("sched: query step panicked: %v\n%s", pan, stack))
			}
			return
		}
		if q.runnable() {
			p.runStep(q)
			continue
		}
		p.cond.Wait()
	}
}

// runnable reports whether another step of q may start; callers hold
// the pool mutex.
func (q *Query) runnable() bool {
	return !q.done && !q.blocked && q.stepping < q.width
}

// runStep executes one step of q. Callers hold the pool mutex; it is
// released around the step itself. A panicking step is contained to
// this query: the panic is recorded, the step treated as Done, and the
// worker survives to serve other queries — one query's bug must not
// take down every query sharing the pool (or, for pool workers, the
// process).
func (p *Pool) runStep(q *Query) {
	q.stepping++
	p.running++
	seen := q.wakes
	p.mu.Unlock()
	var pan any
	var stack []byte
	st := func() (st Status) {
		defer func() {
			if r := recover(); r != nil {
				pan, stack = r, debug.Stack()
				st = Done
			}
		}()
		return q.step()
	}()
	p.mu.Lock()
	p.running--
	q.stepping--
	if pan != nil && q.pan == nil {
		q.pan, q.stack = pan, stack
	}
	switch st {
	case Done:
		q.done = true
	case Blocked:
		// Park only if no Wake raced the step; a missed Wake here would
		// strand the query.
		if q.wakes == seen {
			q.blocked = true
		}
	}
	if q.done && q.stepping == 0 && !q.finished {
		q.finished = true
		p.detach(q)
		close(q.fin)
	}
	// A returned step frees a width slot, may have finished the query,
	// or may have made siblings schedulable — let everyone re-check.
	p.cond.Broadcast()
}

// detach removes q from the run queue; callers hold the pool mutex.
func (p *Pool) detach(q *Query) {
	for i, cand := range p.queries {
		if cand == q {
			p.queries = append(p.queries[:i], p.queries[i+1:]...)
			break
		}
	}
	if len(p.queries) == 0 {
		p.rr = 0
	} else {
		p.rr %= len(p.queries)
	}
}

// pick selects the next query to step: a priority pass over short
// queries (bounded by shortBurst), then plain round-robin. Callers
// hold the pool mutex; nil means nothing is runnable.
func (p *Pool) pick() *Query {
	n := len(p.queries)
	if n == 0 {
		return nil
	}
	if p.boost < shortBurst {
		for i := 0; i < n; i++ {
			idx := (p.rr + i) % n
			q := p.queries[idx]
			if q.short && q.runnable() {
				p.boost++
				p.rr = (idx + 1) % n
				return q
			}
		}
	}
	for i := 0; i < n; i++ {
		idx := (p.rr + i) % n
		q := p.queries[idx]
		if q.runnable() {
			p.boost = 0
			p.rr = (idx + 1) % n
			return q
		}
	}
	return nil
}

// worker is the pool worker loop: pick a query fair-share, run one
// step, repeat; idle on the condvar when nothing is runnable.
func (p *Pool) worker() {
	defer p.wg.Done()
	p.mu.Lock()
	for {
		if p.closed {
			p.mu.Unlock()
			return
		}
		q := p.pick()
		if q == nil {
			p.cond.Wait()
			continue
		}
		p.runStep(q)
	}
}
