package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolRunsAllSteps pins the basic contract: every step of an
// attached query runs exactly once and Wait returns only after the
// last one finished.
func TestPoolRunsAllSteps(t *testing.T) {
	p := New(4)
	defer p.Close()
	const n = 1000
	var next, ran atomic.Int64
	q := p.Attach(4, false, func() Status {
		i := next.Add(1) - 1
		if i >= n {
			return Done
		}
		ran.Add(1)
		return Ran
	})
	q.Wait()
	if got := ran.Load(); got != n {
		t.Fatalf("ran %d steps, want %d", got, n)
	}
	select {
	case <-q.Done():
	default:
		t.Fatal("Done channel not closed after Wait")
	}
}

// TestWidthRespected pins the per-query concurrency cap: a query
// attached with width w never has more than w steps executing, even on
// a wider pool.
func TestWidthRespected(t *testing.T) {
	p := New(8)
	defer p.Close()
	const width = 3
	var cur, peak, next atomic.Int64
	q := p.Attach(width, false, func() Status {
		if next.Add(1) > 200 {
			return Done
		}
		c := cur.Add(1)
		for {
			old := peak.Load()
			if c <= old || peak.CompareAndSwap(old, c) {
				break
			}
		}
		time.Sleep(100 * time.Microsecond)
		cur.Add(-1)
		return Ran
	})
	q.Wait()
	if got := peak.Load(); got > width {
		t.Fatalf("peak concurrent steps %d exceeds width %d", got, width)
	}
}

// TestBlockedWake pins the park/unpark path: a query whose steps
// return Blocked makes no progress until Wake, then resumes and
// finishes; a Wake racing the Blocked return is not lost.
func TestBlockedWake(t *testing.T) {
	p := New(2)
	defer p.Close()
	var gate atomic.Bool
	var ran atomic.Int64
	q := p.Attach(1, false, func() Status {
		if !gate.Load() {
			return Blocked
		}
		if ran.Add(1) >= 3 {
			return Done
		}
		return Ran
	})
	time.Sleep(10 * time.Millisecond)
	if got := ran.Load(); got != 0 {
		t.Fatalf("blocked query ran %d steps before Wake", got)
	}
	gate.Store(true)
	q.Wake()
	q.Wait()
	if got := ran.Load(); got != 3 {
		t.Fatalf("ran %d steps after Wake, want 3", got)
	}
}

// TestWaitParticipates pins the caller-participation guarantee: a
// query attached to a pool whose only worker is stuck on another
// query still finishes, because Wait drives its own steps.
func TestWaitParticipates(t *testing.T) {
	p := New(1)
	defer p.Close()
	release := make(chan struct{})
	hogRunning := make(chan struct{})
	var once sync.Once
	hog := p.Attach(1, false, func() Status {
		once.Do(func() { close(hogRunning) })
		<-release
		return Done
	})
	<-hogRunning // the pool's one worker is now occupied
	var ran atomic.Int64
	q := p.Attach(2, false, func() Status {
		if ran.Add(1) >= 50 {
			return Done
		}
		return Ran
	})
	done := make(chan struct{})
	go func() {
		q.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Wait did not drive the query while the pool was saturated")
	}
	close(release)
	hog.Wait()
}

// TestFairShare pins starvation-freedom: with one long query and a
// stream of short ones on a width-1 pool, the long query still
// completes — the shortBurst cap forces round-robin picks through.
func TestFairShare(t *testing.T) {
	p := New(1)
	defer p.Close()
	var longSteps atomic.Int64
	long := p.Attach(1, false, func() Status {
		if longSteps.Add(1) >= 20 {
			return Done
		}
		return Ran
	})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // keep a supply of short queries attached
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var n atomic.Int64
			s := p.Attach(1, true, func() Status {
				if n.Add(1) >= 2 {
					return Done
				}
				return Ran
			})
			s.Wait()
		}
	}()
	done := make(chan struct{})
	go func() {
		long.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("long query starved by short-query stream")
	}
	close(stop)
	wg.Wait()
}

// TestCloseAfterDrain pins Close: it returns once workers exit and is
// idempotent; queries driven by Wait still complete on a closed pool.
func TestCloseAfterDrain(t *testing.T) {
	p := New(2)
	p.Close()
	p.Close()
	var ran atomic.Int64
	q := p.Attach(1, false, func() Status {
		if ran.Add(1) >= 5 {
			return Done
		}
		return Ran
	})
	q.Wait() // caller participation: finishes with zero pool workers
	if got := ran.Load(); got != 5 {
		t.Fatalf("ran %d steps on closed pool, want 5", got)
	}
}

// TestStats sanity-checks the snapshot fields.
func TestStats(t *testing.T) {
	p := New(3)
	defer p.Close()
	st := p.Stats()
	if st.Workers != 3 || st.Queries != 0 {
		t.Fatalf("fresh pool stats = %+v", st)
	}
	if p.Size() != 3 {
		t.Fatalf("Size() = %d, want 3", p.Size())
	}
}

// TestStepPanicIsContained pins the robustness contract: a panicking
// step must not kill the pool worker that ran it (which would take the
// whole process down) and must not wedge other queries. The panic is
// re-raised in the owner's Wait, and detached consumers see it via
// Panicked after Done closes.
func TestStepPanicIsContained(t *testing.T) {
	p := New(2)
	defer p.Close()

	var steps atomic.Int64
	bad := p.Attach(1, false, func() Status {
		panic("boom")
	})
	good := p.Attach(1, false, func() Status {
		if steps.Add(1) >= 50 {
			return Done
		}
		return Ran
	})

	defer func() {
		if r := recover(); r == nil {
			t.Fatal("Wait did not re-raise the step panic")
		}
	}()

	good.Wait() // healthy query completes on workers that survived
	if got := steps.Load(); got < 50 {
		t.Fatalf("healthy query ran %d steps, want 50", got)
	}
	select {
	case <-bad.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("panicked query never finished")
	}
	if pan, stack := bad.Panicked(); pan == nil || len(stack) == 0 {
		t.Fatalf("Panicked() = %v, %d bytes of stack; want the recorded panic", pan, len(stack))
	}
	bad.Wait() // must re-raise; the deferred recover above asserts it
	t.Fatal("unreachable: Wait on a panicked query returned normally")
}
