package engine

import (
	"errors"
	"math"
	"reflect"
	"sort"
	"sync"
	"testing"

	"amnesiadb/internal/expr"
	"amnesiadb/internal/table"
	"amnesiadb/internal/xrand"
)

// rowSelect is the pre-vectorization row-at-a-time Select, kept here as
// the semantic reference the batch pipeline must reproduce exactly.
func rowSelect(t *table.Table, col string, pred expr.Expr, mode ScanMode) *Result {
	c := t.MustColumn(col)
	res := &Result{}
	for i := 0; i < c.Len(); i++ {
		if mode == ScanActive && !t.IsActive(i) {
			continue
		}
		if v := c.Get(i); pred.Eval(v) {
			res.Rows = append(res.Rows, int32(i))
			res.Values = append(res.Values, v)
		}
	}
	return res
}

// rowAggregate is the row-at-a-time aggregate reference.
func rowAggregate(t *table.Table, col string, pred expr.Expr, mode ScanMode) *AggResult {
	sel := rowSelect(t, col, pred, mode)
	if len(sel.Rows) == 0 {
		return nil
	}
	agg := &AggResult{Min: math.MaxInt64, Max: math.MinInt64, Rower: sel.Rows}
	for _, v := range sel.Values {
		agg.Rows++
		agg.Sum += v
		if v < agg.Min {
			agg.Min = v
		}
		if v > agg.Max {
			agg.Max = v
		}
	}
	agg.Avg = float64(agg.Sum) / float64(agg.Rows)
	return agg
}

// rowGroupBy is the row-at-a-time grouped-aggregation reference.
func rowGroupBy(t *table.Table, col string, pred expr.Expr, mode ScanMode, width int64) []Group {
	sel := rowSelect(t, col, pred, mode)
	byKey := make(map[int64]*Group)
	for _, v := range sel.Values {
		key := v
		if width > 0 {
			key = v / width * width
			if v < 0 && v%width != 0 {
				key -= width
			}
		}
		g, ok := byKey[key]
		if !ok {
			g = &Group{Key: key, Min: math.MaxInt64, Max: math.MinInt64}
			byKey[key] = g
		}
		g.Rows++
		g.Sum += v
		if v < g.Min {
			g.Min = v
		}
		if v > g.Max {
			g.Max = v
		}
	}
	out := make([]Group, 0, len(byKey))
	for _, g := range byKey {
		g.Avg = float64(g.Sum) / float64(g.Rows)
		out = append(out, *g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// vectorTable builds a multi-block table with ~40% of tuples forgotten.
func vectorTable(t *testing.T, n int, domain int64, seed uint64) *table.Table {
	t.Helper()
	src := xrand.New(seed)
	tb := table.New("t", "a")
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = src.Int63n(domain)
	}
	if _, err := tb.AppendSingleColumn(vals); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if src.Bool(0.4) {
			tb.Forget(i)
		}
	}
	return tb
}

// vectorPreds is the predicate matrix the equivalence tests sweep: exact
// bounds (pure range scans), inexact bounds (filter kernel engaged), and
// the interface fallback shapes.
var vectorPreds = []expr.Expr{
	expr.True{},
	expr.NewRange(100, 5000),
	expr.NewRange(0, 1),
	expr.Cmp{Op: expr.EQ, Val: 137},
	expr.Cmp{Op: expr.NE, Val: 137},
	expr.Cmp{Op: expr.GE, Val: 9000},
	expr.And{L: expr.Cmp{Op: expr.GE, Val: 1000}, R: expr.Cmp{Op: expr.LT, Val: 2000}},
	expr.Or{L: expr.Cmp{Op: expr.LT, Val: 50}, R: expr.Cmp{Op: expr.GT, Val: 9950}},
	expr.Not{X: expr.NewRange(2000, 8000)},
}

// TestVectorizedSelectMatchesRowAtATime sweeps sizes crossing batch and
// block boundaries and compares the batch pipeline against the reference
// for both scan modes.
func TestVectorizedSelectMatchesRowAtATime(t *testing.T) {
	for _, n := range []int{0, 1, 100, BatchSize - 1, BatchSize, BatchSize + 1, 3*BatchSize + 17} {
		tb := vectorTable(t, n, 10000, uint64(n)+3)
		ex := NewSilent(tb)
		for _, pred := range vectorPreds {
			for _, mode := range []ScanMode{ScanActive, ScanAll} {
				got, err := ex.Select("a", pred, mode)
				if err != nil {
					t.Fatal(err)
				}
				want := rowSelect(tb, "a", pred, mode)
				if !reflect.DeepEqual(got.Rows, want.Rows) || !reflect.DeepEqual(got.Values, want.Values) {
					t.Fatalf("n=%d pred=%s mode=%s: vectorized Select diverged (%d vs %d rows)",
						n, pred, mode, got.Count(), want.Count())
				}
			}
		}
	}
}

func TestVectorizedAggregateMatchesRowAtATime(t *testing.T) {
	tb := vectorTable(t, 3*BatchSize+5, 10000, 11)
	ex := NewSilent(tb)
	for _, pred := range vectorPreds {
		for _, mode := range []ScanMode{ScanActive, ScanAll} {
			got, err := ex.Aggregate("a", pred, mode)
			want := rowAggregate(tb, "a", pred, mode)
			if want == nil {
				if err != ErrNoRows {
					t.Fatalf("pred=%s mode=%s: want ErrNoRows, got %v", pred, mode, err)
				}
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			// Silent executors skip Rower collection by design; compare
			// the numeric aggregates only.
			want.Rower = nil
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("pred=%s mode=%s: aggregate diverged: got %+v want %+v", pred, mode, got, want)
			}
		}
	}
}

// TestAggregateRowerOnFeedbackPath checks a touching executor still
// collects the contributing positions the advisor and §3.2 strategies
// consume, while silent and ScanAll aggregates leave Rower nil.
func TestAggregateRowerOnFeedbackPath(t *testing.T) {
	tb := vectorTable(t, BatchSize+33, 1000, 31)
	pred := expr.NewRange(100, 800)
	want := rowAggregate(tb, "a", pred, ScanActive)

	got, err := New(tb).Aggregate("a", pred, ScanActive)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Rower, want.Rower) {
		t.Fatalf("feedback-path Rower diverged: %d vs %d positions", len(got.Rower), len(want.Rower))
	}

	silent, err := NewSilent(tb).Aggregate("a", pred, ScanActive)
	if err != nil {
		t.Fatal(err)
	}
	if silent.Rower != nil {
		t.Fatalf("silent aggregate collected %d positions", len(silent.Rower))
	}
	all, err := New(tb).Aggregate("a", pred, ScanAll)
	if err != nil {
		t.Fatal(err)
	}
	if all.Rower != nil {
		t.Fatalf("ScanAll aggregate collected %d positions", len(all.Rower))
	}
}

func TestVectorizedGroupByMatchesRowAtATime(t *testing.T) {
	tb := vectorTable(t, 2*BatchSize+77, 500, 13)
	ex := NewSilent(tb)
	for _, pred := range vectorPreds {
		for _, width := range []int64{0, 7, 100} {
			var got []Group
			var err error
			if width == 0 {
				got, err = ex.GroupByValue("a", pred, ScanActive)
			} else {
				got, err = ex.GroupByBucket("a", pred, ScanActive, width)
			}
			if err != nil {
				t.Fatal(err)
			}
			want := rowGroupBy(tb, "a", pred, ScanActive, width)
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("pred=%s width=%d: groupby diverged: got %d groups want %d", pred, width, len(got), len(want))
			}
		}
	}
}

func TestVectorizedJoinMatchesRowAtATime(t *testing.T) {
	left := vectorTable(t, BatchSize+100, 300, 17)
	right := vectorTable(t, 2*BatchSize, 300, 19)
	for _, pred := range []expr.Expr{nil, expr.NewRange(10, 200), expr.Not{X: expr.NewRange(0, 150)}} {
		for _, mode := range []ScanMode{ScanActive, ScanAll} {
			got, err := HashJoin(left, "a", right, "a", pred, mode)
			if err != nil {
				t.Fatal(err)
			}
			// Reference: nested loops over the row-at-a-time selections.
			p := pred
			if p == nil {
				p = expr.True{}
			}
			l := rowSelect(left, "a", p, mode)
			r := rowSelect(right, "a", p, mode)
			var want []JoinRow
			byKey := make(map[int64][]int32)
			for i, row := range l.Rows {
				byKey[l.Values[i]] = append(byKey[l.Values[i]], row)
			}
			for i, rr := range r.Rows {
				for _, lr := range byKey[r.Values[i]] {
					want = append(want, JoinRow{Left: lr, Right: rr, Key: r.Values[i]})
				}
			}
			sortJoin := func(rows []JoinRow) {
				sort.Slice(rows, func(i, j int) bool {
					if rows[i].Left != rows[j].Left {
						return rows[i].Left < rows[j].Left
					}
					return rows[i].Right < rows[j].Right
				})
			}
			sortJoin(got.Rows)
			sortJoin(want)
			if len(got.Rows) != len(want) {
				t.Fatalf("pred=%v mode=%s: join size %d, want %d", pred, mode, len(got.Rows), len(want))
			}
			for i := range want {
				if got.Rows[i] != want[i] {
					t.Fatalf("pred=%v mode=%s: pair %d = %+v, want %+v", pred, mode, i, got.Rows[i], want[i])
				}
			}
		}
	}
}

// TestMaxInt64RowsAreScannable regression-tests the inclusive-infinity
// bound convention: rows holding math.MaxInt64 must be reachable by
// open-ended predicates (GE, GT, NE, True), which a strictly half-open
// scan interval could never admit.
func TestMaxInt64RowsAreScannable(t *testing.T) {
	tb := table.New("t", "a")
	if _, err := tb.AppendSingleColumn([]int64{5, math.MaxInt64, 10, math.MaxInt64}); err != nil {
		t.Fatal(err)
	}
	ex := NewSilent(tb)
	cases := []struct {
		pred expr.Expr
		want int
	}{
		{expr.True{}, 4},
		{expr.Cmp{Op: expr.GE, Val: 10}, 3},
		{expr.Cmp{Op: expr.GT, Val: 10}, 2},
		{expr.Cmp{Op: expr.GE, Val: math.MaxInt64}, 2},
		{expr.Cmp{Op: expr.EQ, Val: math.MaxInt64}, 2},
		{expr.Cmp{Op: expr.NE, Val: 5}, 3},
		{expr.Cmp{Op: expr.LE, Val: math.MaxInt64}, 4},
		{expr.Cmp{Op: expr.LT, Val: math.MaxInt64}, 2},
		{expr.Not{X: expr.NewRange(0, 11)}, 2},
	}
	for _, tc := range cases {
		res, err := ex.Select("a", tc.pred, ScanAll)
		if err != nil {
			t.Fatal(err)
		}
		if res.Count() != tc.want {
			t.Errorf("%s: got %d rows, want %d", tc.pred, res.Count(), tc.want)
		}
		// The counting path must agree with the materializing path.
		if agg, err := ex.Aggregate("a", tc.pred, ScanAll); err != nil {
			t.Errorf("%s: aggregate: %v", tc.pred, err)
		} else if agg.Rows != tc.want {
			t.Errorf("%s: aggregate counted %d rows, want %d", tc.pred, agg.Rows, tc.want)
		}
	}
	// Precision's ground-truth counting pass must see MaxInt64 rows too.
	tb.Forget(1)
	rf, mf, _, err := New(tb).Precision("a", expr.Cmp{Op: expr.GE, Val: math.MaxInt64})
	if err != nil {
		t.Fatal(err)
	}
	if rf != 1 || mf != 1 {
		t.Fatalf("precision over MaxInt64 rows: rf=%d mf=%d, want 1/1", rf, mf)
	}
}

// TestTouchFeedbackMatchesResult checks the batched touch flush covers
// exactly the returned rows — the §3.2 feedback loop must see the same
// access counts the row-at-a-time engine produced.
func TestTouchFeedbackMatchesResult(t *testing.T) {
	tb := vectorTable(t, BatchSize+50, 1000, 23)
	ex := New(tb)
	pred := expr.NewRange(100, 600)
	res, err := ex.Select("a", pred, ScanActive)
	if err != nil {
		t.Fatal(err)
	}
	inResult := make(map[int32]bool, res.Count())
	for _, r := range res.Rows {
		inResult[r] = true
	}
	for i := 0; i < tb.Len(); i++ {
		want := uint32(0)
		if inResult[int32(i)] {
			want = 1
		}
		if got := tb.AccessCount(i); got != want {
			t.Fatalf("tuple %d: access count %d, want %d", i, got, want)
		}
	}
	// ScanAll never touches.
	if _, err := ex.Select("a", pred, ScanAll); err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if tb.AccessCount(int(r)) != 1 {
			t.Fatal("ScanAll perturbed access counts")
		}
	}
}

// TestConcurrentReadersShareExecutor proves one Exec serves parallel
// ScanActive queries safely (run with -race): results stay
// self-consistent and the touch flushes do not corrupt counts.
func TestConcurrentReadersShareExecutor(t *testing.T) {
	tb := vectorTable(t, 4*BatchSize, 10000, 29)
	ex := New(tb)
	pred := expr.NewRange(1000, 9000)
	want, err := NewSilent(tb).Select("a", pred, ScanActive)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const rounds = 20
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				res, err := ex.Select("a", pred, ScanActive)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(res.Rows, want.Rows) {
					errs <- errDiverged
					return
				}
				if _, err := ex.Aggregate("a", pred, ScanActive); err != nil {
					errs <- err
					return
				}
				if _, _, _, err := ex.Precision("a", pred); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Each matching tuple was touched once per Select and once per
	// Aggregate and once per Precision's active pass: 3 * workers * rounds.
	wantCount := uint32(3 * workers * rounds)
	for _, r := range want.Rows {
		if got := tb.AccessCount(int(r)); got != wantCount {
			t.Fatalf("tuple %d: access count %d, want %d", r, got, wantCount)
		}
	}
}

var errDiverged = errors.New("engine: concurrent select diverged")
