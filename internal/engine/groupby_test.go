package engine

import (
	"testing"

	"amnesiadb/internal/expr"
)

func TestGroupByValue(t *testing.T) {
	tb := tbl(t, 5, 5, 7, 9, 9, 9)
	ex := New(tb)
	groups, err := ex.GroupByValue("a", expr.True{}, ScanActive)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 {
		t.Fatalf("groups = %d", len(groups))
	}
	if groups[0].Key != 5 || groups[0].Rows != 2 || groups[0].Sum != 10 {
		t.Fatalf("group 0 = %+v", groups[0])
	}
	if groups[2].Key != 9 || groups[2].Rows != 3 || groups[2].Avg != 9 {
		t.Fatalf("group 2 = %+v", groups[2])
	}
}

func TestGroupByValueRespectsAmnesia(t *testing.T) {
	tb := tbl(t, 5, 5, 7)
	tb.Forget(2) // the only 7
	ex := New(tb)
	groups, err := ex.GroupByValue("a", expr.True{}, ScanActive)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 || groups[0].Key != 5 {
		t.Fatalf("forgotten group survived: %+v", groups)
	}
	all, err := ex.GroupByValue("a", expr.True{}, ScanAll)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("complete grouping = %+v", all)
	}
}

func TestGroupByBucket(t *testing.T) {
	tb := tbl(t, 0, 5, 10, 15, 25)
	ex := New(tb)
	groups, err := ex.GroupByBucket("a", expr.True{}, ScanActive, 10)
	if err != nil {
		t.Fatal(err)
	}
	// buckets: [0,10): {0,5}, [10,20): {10,15}, [20,30): {25}
	if len(groups) != 3 {
		t.Fatalf("buckets = %+v", groups)
	}
	if groups[0].Key != 0 || groups[0].Rows != 2 {
		t.Fatalf("bucket 0 = %+v", groups[0])
	}
	if groups[1].Key != 10 || groups[1].Min != 10 || groups[1].Max != 15 {
		t.Fatalf("bucket 10 = %+v", groups[1])
	}
	if groups[2].Key != 20 || groups[2].Rows != 1 {
		t.Fatalf("bucket 20 = %+v", groups[2])
	}
}

func TestGroupByBucketPredicate(t *testing.T) {
	tb := tbl(t, 1, 11, 21, 31)
	ex := New(tb)
	groups, err := ex.GroupByBucket("a", expr.NewRange(10, 30), ScanActive, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 || groups[0].Key != 10 || groups[1].Key != 20 {
		t.Fatalf("predicated buckets = %+v", groups)
	}
}

func TestGroupByBucketWidthValidation(t *testing.T) {
	ex := New(tbl(t, 1))
	if _, err := ex.GroupByBucket("a", expr.True{}, ScanActive, 0); err == nil {
		t.Fatal("zero width accepted")
	}
}

func TestGroupByTouches(t *testing.T) {
	tb := tbl(t, 1, 2)
	ex := New(tb)
	if _, err := ex.GroupByValue("a", expr.True{}, ScanActive); err != nil {
		t.Fatal(err)
	}
	if tb.AccessCount(0) != 1 || tb.AccessCount(1) != 1 {
		t.Fatal("group-by did not feed access frequencies")
	}
}

func TestGroupByUnknownColumn(t *testing.T) {
	ex := New(tbl(t, 1))
	if _, err := ex.GroupByValue("zz", expr.True{}, ScanActive); err == nil {
		t.Fatal("unknown column accepted")
	}
}
