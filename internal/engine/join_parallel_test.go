package engine

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"

	"amnesiadb/internal/expr"
	"amnesiadb/internal/table"
	"amnesiadb/internal/xrand"
)

// joinTestTables builds two tables with overlapping duplicate-heavy key
// sets and a scattering of forgotten tuples on both sides — the cases
// where build order, swap choice and amnesia interact.
func joinTestTables(t *testing.T, nl, nr int) (*table.Table, *table.Table) {
	t.Helper()
	src := xrand.New(7)
	mk := func(name string, n int) *table.Table {
		tb := table.New(name, "k")
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = src.Int63n(int64(n/4 + 1)) // ~4 duplicates per key
		}
		if _, err := tb.AppendSingleColumn(vals); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i += 3 {
			tb.Forget(i)
		}
		return tb
	}
	return mk("l", nl), mk("r", nr)
}

// TestHashJoinParallelEquivalence pins the acceptance criterion: the
// parallel join returns byte-identical results to the serial one — same
// pairs, same order — across swap directions, predicates, scan modes and
// forgotten tuples.
func TestHashJoinParallelEquivalence(t *testing.T) {
	l, r := joinTestTables(t, 40000, 9000)
	// big's active probe side (~146K rows) spans multiple ProbeMorselRows
	// morsels, so the per-morsel output slot concatenation actually runs
	// multi-slot.
	big, bigR := joinTestTables(t, 220000, 9000)
	cases := []struct {
		name        string
		left, right *table.Table
		pred        expr.Expr
		mode        ScanMode
	}{
		{"probe_bigger", r, l, nil, ScanActive}, // build = left
		{"build_bigger", l, r, nil, ScanActive}, // swap kicks in
		{"predicate", l, r, expr.NewRange(100, 2000), ScanActive},
		{"scan_all", l, r, nil, ScanAll},
		{"multi_morsel_probe", big, bigR, nil, ScanActive},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			serial, err := HashJoinPar(tc.left, "k", tc.right, "k", tc.pred, tc.mode, 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, par := range []int{2, 4, 8} {
				got, err := HashJoinPar(tc.left, "k", tc.right, "k", tc.pred, tc.mode, par)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(serial.Rows, got.Rows) {
					t.Fatalf("par=%d: %d pairs diverge from serial %d pairs", par, got.Count(), serial.Count())
				}
			}
			if serial.Count() == 0 {
				t.Fatal("degenerate case: serial join empty")
			}
		})
	}
}

// TestHashJoinParallelEmptySides covers the zero-row edges the scheduler
// must not trip over.
func TestHashJoinParallelEmptySides(t *testing.T) {
	l := tblNamed(t, "l", 1, 2, 3)
	empty := table.New("e", "k")
	for _, par := range []int{1, 4} {
		res, err := HashJoinPar(l, "k", empty, "k", nil, ScanActive, par)
		if err != nil {
			t.Fatal(err)
		}
		if res.Count() != 0 {
			t.Fatalf("par=%d: join with empty side returned %d pairs", par, res.Count())
		}
	}
}

// TestJoinPrecisionParallelEquivalence checks the lifted §2.3 metrics
// match between the serial and parallel paths.
func TestJoinPrecisionParallelEquivalence(t *testing.T) {
	l, r := joinTestTables(t, 20000, 5000)
	rf1, mf1, pf1, err := JoinPrecisionPar(l, "k", r, "k", nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	rf4, mf4, pf4, err := JoinPrecisionPar(l, "k", r, "k", nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rf1 != rf4 || mf1 != mf4 || pf1 != pf4 {
		t.Fatalf("precision diverges: serial (%d, %d, %v) vs parallel (%d, %d, %v)", rf1, mf1, pf1, rf4, mf4, pf4)
	}
	if mf1 == 0 {
		t.Fatal("degenerate case: nothing forgotten")
	}
}

// TestHashJoinParallelTinyBuildSide is the regression for the radix
// build's chunk-bounds panic: a build side barely larger than the
// worker count used to make ceil-division chunk starts overrun the key
// slice.
func TestHashJoinParallelTinyBuildSide(t *testing.T) {
	probe := tblNamed(t, "p", 1, 2, 3, 1, 2, 3, 4, 5, 4, 5)
	for _, buildKeys := range [][]int64{{1}, {1, 2}, {1, 2, 3}, {1, 2, 3, 4, 5}} {
		build := tblNamed(t, "b", buildKeys...)
		serial, err := HashJoinPar(probe, "k", build, "k", nil, ScanActive, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{2, 3, 4, 8} {
			got, err := HashJoinPar(probe, "k", build, "k", nil, ScanActive, par)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serial.Rows, got.Rows) {
				t.Fatalf("build=%v par=%d diverges from serial", buildKeys, par)
			}
		}
	}
}

// TestHashJoinMispredictedBuildSide pins the build-while-collect
// fallback: the pipelined join guesses the build side from visible
// tuple counts before scanning, but a selective predicate can make the
// other side the true (smaller-qualifying) build. The guess is a
// performance hint only — the output must still be byte-identical to
// the serial join, which decides by exact qualifying counts.
func TestHashJoinMispredictedBuildSide(t *testing.T) {
	src := xrand.New(11)
	// Left is visibly bigger (so the pipeline scatters the right side
	// speculatively) but almost nothing on the left qualifies, making
	// left the true build side.
	lvals := make([]int64, 30000)
	for i := range lvals {
		lvals[i] = 100000 + src.Int63n(100000) // outside the predicate
	}
	for i := 0; i < 200; i++ {
		lvals[i*37] = src.Int63n(500) // the few qualifying left keys
	}
	rvals := make([]int64, 8000)
	for i := range rvals {
		rvals[i] = src.Int63n(500) // all inside the predicate
	}
	l := tblNamed(t, "l", lvals...)
	r := tblNamed(t, "r", rvals...)
	pred := expr.NewRange(0, 500)
	if joinSize(l, ScanActive) <= joinSize(r, ScanActive) {
		t.Fatal("test setup: left must be visibly bigger to force the misprediction")
	}
	serial, err := HashJoinPar(l, "k", r, "k", pred, ScanActive, 1)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Count() == 0 {
		t.Fatal("degenerate case: no pairs")
	}
	for _, par := range []int{2, 4, 8} {
		got, err := HashJoinPar(l, "k", r, "k", pred, ScanActive, par)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial.Rows, got.Rows) {
			t.Fatalf("par=%d: mispredicted build diverges from serial (%d vs %d pairs)",
				par, got.Count(), serial.Count())
		}
	}
}

// TestHashJoinCtxCancel pins request-scoped teardown: a context
// cancelled mid-collection aborts the join with the cancellation error
// and leaks no goroutines.
func TestHashJoinCtxCancel(t *testing.T) {
	l, r := joinTestTables(t, 200000, 150000)
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the collections even start
	if _, err := HashJoinCtx(ctx, l, "k", r, "k", nil, ScanActive, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("join under cancelled ctx = %v, want context.Canceled", err)
	}
	waitGoroutines(t, baseline)
}
