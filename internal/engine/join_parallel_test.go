package engine

import (
	"reflect"
	"testing"

	"amnesiadb/internal/expr"
	"amnesiadb/internal/table"
	"amnesiadb/internal/xrand"
)

// joinTestTables builds two tables with overlapping duplicate-heavy key
// sets and a scattering of forgotten tuples on both sides — the cases
// where build order, swap choice and amnesia interact.
func joinTestTables(t *testing.T, nl, nr int) (*table.Table, *table.Table) {
	t.Helper()
	src := xrand.New(7)
	mk := func(name string, n int) *table.Table {
		tb := table.New(name, "k")
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = src.Int63n(int64(n/4 + 1)) // ~4 duplicates per key
		}
		if _, err := tb.AppendSingleColumn(vals); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i += 3 {
			tb.Forget(i)
		}
		return tb
	}
	return mk("l", nl), mk("r", nr)
}

// TestHashJoinParallelEquivalence pins the acceptance criterion: the
// parallel join returns byte-identical results to the serial one — same
// pairs, same order — across swap directions, predicates, scan modes and
// forgotten tuples.
func TestHashJoinParallelEquivalence(t *testing.T) {
	l, r := joinTestTables(t, 40000, 9000)
	// big's active probe side (~146K rows) spans multiple ProbeMorselRows
	// morsels, so the per-morsel output slot concatenation actually runs
	// multi-slot.
	big, bigR := joinTestTables(t, 220000, 9000)
	cases := []struct {
		name        string
		left, right *table.Table
		pred        expr.Expr
		mode        ScanMode
	}{
		{"probe_bigger", r, l, nil, ScanActive}, // build = left
		{"build_bigger", l, r, nil, ScanActive}, // swap kicks in
		{"predicate", l, r, expr.NewRange(100, 2000), ScanActive},
		{"scan_all", l, r, nil, ScanAll},
		{"multi_morsel_probe", big, bigR, nil, ScanActive},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			serial, err := HashJoinPar(tc.left, "k", tc.right, "k", tc.pred, tc.mode, 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, par := range []int{2, 4, 8} {
				got, err := HashJoinPar(tc.left, "k", tc.right, "k", tc.pred, tc.mode, par)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(serial.Rows, got.Rows) {
					t.Fatalf("par=%d: %d pairs diverge from serial %d pairs", par, got.Count(), serial.Count())
				}
			}
			if serial.Count() == 0 {
				t.Fatal("degenerate case: serial join empty")
			}
		})
	}
}

// TestHashJoinParallelEmptySides covers the zero-row edges the scheduler
// must not trip over.
func TestHashJoinParallelEmptySides(t *testing.T) {
	l := tblNamed(t, "l", 1, 2, 3)
	empty := table.New("e", "k")
	for _, par := range []int{1, 4} {
		res, err := HashJoinPar(l, "k", empty, "k", nil, ScanActive, par)
		if err != nil {
			t.Fatal(err)
		}
		if res.Count() != 0 {
			t.Fatalf("par=%d: join with empty side returned %d pairs", par, res.Count())
		}
	}
}

// TestJoinPrecisionParallelEquivalence checks the lifted §2.3 metrics
// match between the serial and parallel paths.
func TestJoinPrecisionParallelEquivalence(t *testing.T) {
	l, r := joinTestTables(t, 20000, 5000)
	rf1, mf1, pf1, err := JoinPrecisionPar(l, "k", r, "k", nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	rf4, mf4, pf4, err := JoinPrecisionPar(l, "k", r, "k", nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rf1 != rf4 || mf1 != mf4 || pf1 != pf4 {
		t.Fatalf("precision diverges: serial (%d, %d, %v) vs parallel (%d, %d, %v)", rf1, mf1, pf1, rf4, mf4, pf4)
	}
	if mf1 == 0 {
		t.Fatal("degenerate case: nothing forgotten")
	}
}

// TestHashJoinParallelTinyBuildSide is the regression for the radix
// build's chunk-bounds panic: a build side barely larger than the
// worker count used to make ceil-division chunk starts overrun the key
// slice.
func TestHashJoinParallelTinyBuildSide(t *testing.T) {
	probe := tblNamed(t, "p", 1, 2, 3, 1, 2, 3, 4, 5, 4, 5)
	for _, buildKeys := range [][]int64{{1}, {1, 2}, {1, 2, 3}, {1, 2, 3, 4, 5}} {
		build := tblNamed(t, "b", buildKeys...)
		serial, err := HashJoinPar(probe, "k", build, "k", nil, ScanActive, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{2, 3, 4, 8} {
			got, err := HashJoinPar(probe, "k", build, "k", nil, ScanActive, par)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serial.Rows, got.Rows) {
				t.Fatalf("build=%v par=%d diverges from serial", buildKeys, par)
			}
		}
	}
}
