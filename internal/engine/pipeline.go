package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"amnesiadb/internal/bitvec"
	"amnesiadb/internal/column"
	"amnesiadb/internal/engine/governor"
	"amnesiadb/internal/engine/sched"
	"amnesiadb/internal/expr"
)

// This file is the engine's pipelined execution layer: instead of
// running a scan to completion and handing the caller a finished chunk
// list, morsel workers push chunks into a bounded channel while they are
// still scanning, and the consumer (the SQL result stream, and through
// it the HTTP serializer) drains concurrently. Time-to-first-chunk drops
// from O(full scan) to O(first morsel); a slow consumer exerts
// backpressure through the channel and the in-flight token budget, so
// peak memory stays bounded; and cancelling the stream's context tears
// the producers down mid-scan.
//
// Chunks are emitted in task order — morsel ranges ascend, shard
// fan-outs go in value order — via a reorder stage: workers deposit
// completed tasks into a slot map and a dedicated emitter drains slots
// in sequence, so workers never stall on ordering and the pipelined
// output is byte-identical to the serial scan.

// ErrStreamClosed is the error a ChunkStream reports after Close tears
// the pipeline down before the scan finished.
var ErrStreamClosed = errors.New("engine: chunk stream closed")

// pipelineChunkBuf is the bounded channel capacity between the emitter
// and the consumer: a handful of batch-sized chunks, enough to keep the
// consumer fed across scheduling hiccups, small enough that a stalled
// consumer stops the producers almost immediately.
const pipelineChunkBuf = 4

// pipelineInflight bounds how many claimed-but-unconsumed tasks a
// pipeline with w workers may hold: every worker can be scanning one
// task with one more buffered ahead, plus slack so the emitter never
// starves. Together with pipelineChunkBuf this is the stream's memory
// bound — a slow consumer can never force more than this many tasks'
// chunks to exist at once.
func pipelineInflight(w int) int { return 2*w + 2 }

// ChunkQuotaBytes is what one pooled chunk charges its query's resource
// quota: a full batch's selection vector (int32) plus value vector
// (int64), the fixed footprint the pool hands out regardless of how few
// rows qualified. Charged at produce time, released by RecycleChunk —
// so reorder slots, the bounded channel, spill buffers and consumer-held
// chunks are all covered by one charge per chunk.
const ChunkQuotaBytes = BatchSize * (4 + 8)

// ChunkStream is the consumer handle of a pipelined scan: Next yields
// chunks in deterministic order while producers are still scanning,
// Close cancels the producers, and ScanDone reports when the pipeline
// has stopped reading storage. Single-consumer; Next must not be called
// concurrently.
type ChunkStream struct {
	ch       chan SelChunk
	stop     chan struct{}
	stopOnce sync.Once
	cause    error
	scanDone chan struct{}
	stride   func() int

	// sp, when armed via DetachOnStall, is the stall monitor that
	// drains a stalled consumer's remaining chunks to a governed heap
	// buffer so the producers can exit and release their locks.
	sp *spillState

	// err is written by the emitter or the janitor strictly before ch is
	// closed; consumers read it only after observing the close, so the
	// channel close is the publication barrier.
	err error
}

func newChunkStream() *ChunkStream {
	return &ChunkStream{
		ch:       make(chan SelChunk, pipelineChunkBuf),
		stop:     make(chan struct{}),
		scanDone: make(chan struct{}),
	}
}

// Next returns the next chunk. ok is false once the stream is drained or
// torn down; err then reports why (nil for a clean drain). With a stall
// monitor armed, spilled chunks are served first, in emit order.
func (s *ChunkStream) Next() (c SelChunk, ok bool, err error) {
	if s.sp != nil {
		return s.sp.next(s)
	}
	c, ok = <-s.ch
	if ok {
		return c, true, nil
	}
	return SelChunk{}, false, s.err
}

// Close cancels the pipeline: producers stop claiming work, buffered
// chunks are recycled, and Next reports ErrStreamClosed once the channel
// drains. Idempotent; safe to call after the stream completed normally.
func (s *ChunkStream) Close() {
	s.closeWith(ErrStreamClosed)
	if s.sp != nil {
		s.sp.discard()
	}
}

func (s *ChunkStream) closeWith(err error) {
	s.stopOnce.Do(func() {
		s.cause = err
		close(s.stop)
	})
}

// ScanDone returns a channel closed once every producer has exited and
// the pipeline will never read relation storage again. Catalog holders
// use it to release read locks as soon as the scan — not the consumer —
// finishes; it always closes eventually, including after Close or a
// context cancellation.
func (s *ChunkStream) ScanDone() <-chan struct{} { return s.scanDone }

// Stride reports the scan's effective morsel stride in blocks — the
// adaptive scheduler's final size, observable for benchmarks. Zero for
// pipelines without a morsel cursor (shard fan-outs).
func (s *ChunkStream) Stride() int {
	if s.stride == nil {
		return 0
	}
	return s.stride()
}

// Collect drains the stream into a flat chunk list — the materialized
// ScanChunks form — recycling nothing (the caller owns the chunks).
func (s *ChunkStream) Collect() ([]SelChunk, error) {
	var out []SelChunk
	for {
		c, ok, err := s.Next()
		if err != nil {
			// The chunks already collected came off the pool; dropping
			// them on the error path would leak their buffers for the
			// life of the query churn (ORDER BY barriers collect whole
			// scans before sorting).
			recycleChunks(out)
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, c)
	}
}

// runPipeline wires the ordered producer/consumer machinery behind a
// ChunkStream. claim hands out tasks with dense sequence numbers in
// emission order; produce runs one task (safe for concurrent calls with
// distinct tasks); finish, when non-nil, runs exactly once after every
// producer has exited and before ScanDone closes — the touch-flush hook.
// ctx cancellation and Close are equivalent teardowns.
//
// With a nil pool the pipeline spawns its own workers goroutines, the
// pre-scheduler behaviour. With a pool, production becomes one sched
// query of the given width: steps claim and produce tasks on shared
// pool workers, the in-flight token budget is enforced by try-acquire
// (a step that cannot take a token returns Blocked instead of holding
// a pool worker hostage), and the emitter wakes the query every time
// consuming a task returns a token. Teardown (Close, ctx, an error)
// wakes a parked query so its next step observes stop and finishes.
func runPipeline[T any](ctx context.Context, s *ChunkStream, sp *sched.Pool, workers int, short bool,
	claim func() (T, int, bool),
	produce func(T) ([]SelChunk, error),
	finish func()) {

	if ctx != nil {
		// An already-cancelled context must not start producing: check
		// synchronously so pre-cancelled queries fail deterministically
		// instead of racing the watcher goroutine.
		select {
		case <-ctx.Done():
			s.closeWith(context.Cause(ctx))
		default:
		}
	}
	if q := governor.FromContext(ctx); q != nil {
		// Morsel-boundary enforcement: a query killed by its budget, a
		// process-level shed or its deadline stops before claiming the
		// next task, on every pipeline (scans and shard fan-outs alike).
		inner := produce
		produce = func(t T) ([]SelChunk, error) {
			if err := q.Check(); err != nil {
				return nil, err
			}
			return inner(t)
		}
	}
	inflight := pipelineInflight(workers)
	sem := make(chan struct{}, inflight)
	notify := make(chan struct{}, 1)
	var (
		mu        sync.Mutex
		ready     = map[int][]SelChunk{}
		perr      error
		producing = workers
	)
	wake := func() {
		select {
		case notify <- struct{}{}:
		default:
		}
	}

	var wg sync.WaitGroup
	// wakeProducers, in pool mode, unparks the production query after
	// the emitter returns an in-flight token; a no-op otherwise.
	wakeProducers := func() {}
	if sp != nil {
		// Pool mode: one sched query produces every task. Steps never
		// block — teardown and token exhaustion turn into Done/Blocked —
		// so shared pool workers cannot deadlock across queries.
		producing = 1
		step := func() sched.Status {
			// Teardown has priority over a free token, like the
			// goroutine worker's ordered selects.
			select {
			case <-s.stop:
				return sched.Done
			default:
			}
			select {
			case sem <- struct{}{}:
			default:
				return sched.Blocked
			}
			task, seq, ok := claim()
			if !ok {
				<-sem
				return sched.Done
			}
			chunks, err := produce(task)
			mu.Lock()
			if err != nil && perr == nil {
				perr = err
			}
			ready[seq] = chunks
			mu.Unlock()
			wake()
			if err != nil {
				s.closeWith(err)
				return sched.Done
			}
			return sched.Ran
		}
		q := sp.Attach(workers, short, step)
		wakeProducers = q.Wake
		go func() { // teardown watcher: a parked query must observe stop
			select {
			case <-s.stop:
				q.Wake()
			case <-s.scanDone:
			}
		}()
		wg.Add(1)
		go func() { // production ends when the pool query finishes
			defer wg.Done()
			<-q.Done()
			// A panicking producer step is contained by the pool; turn it
			// into a stream error so the consumer unblocks with a cause
			// instead of hanging on a stream nobody will ever fill.
			if pan, _ := q.Panicked(); pan != nil {
				s.closeWith(fmt.Errorf("engine: producer panicked: %v", pan))
			}
			mu.Lock()
			producing = 0
			mu.Unlock()
			wake()
		}()
	} else {
		worker := func() {
			defer wg.Done()
			defer func() {
				mu.Lock()
				producing--
				mu.Unlock()
				wake()
			}()
			for {
				// Teardown has priority: once stop closes, no new morsel may
				// be claimed, even if a semaphore slot is free (a two-way
				// select would pick between the ready cases at random).
				select {
				case <-s.stop:
					return
				default:
				}
				select {
				case sem <- struct{}{}:
				case <-s.stop:
					return
				}
				task, seq, ok := claim()
				if !ok {
					<-sem
					return
				}
				chunks, err := produce(task)
				mu.Lock()
				if err != nil && perr == nil {
					perr = err
				}
				ready[seq] = chunks
				mu.Unlock()
				wake()
				if err != nil {
					// Fail fast: wake every worker out of its sem wait so the
					// pipeline drains promptly. The recorded error wins over
					// the close cause.
					s.closeWith(err)
					return
				}
			}
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go worker()
		}
	}

	wg.Add(1)
	go func() { // emitter: drains slots in sequence order
		defer wg.Done()
		next := 0
		for {
			mu.Lock()
			chunks, have := ready[next]
			err := perr
			done := producing == 0
			if have {
				delete(ready, next)
			}
			mu.Unlock()
			if err != nil {
				s.err = err
				recycleChunks(chunks)
				return
			}
			if have {
				for i, c := range chunks {
					select {
					case s.ch <- c:
					case <-s.stop:
						recycleChunks(chunks[i:])
						return
					}
				}
				<-sem
				wakeProducers()
				next++
				continue
			}
			if done {
				return // all tasks claimed, produced and emitted
			}
			select {
			case <-notify:
			case <-s.stop:
				return
			}
		}
	}()

	if ctx != nil && ctx.Done() != nil {
		go func() { // context watcher; exits with the pipeline
			select {
			case <-ctx.Done():
				s.closeWith(context.Cause(ctx))
			case <-s.scanDone:
			}
		}()
	}

	go func() { // janitor: final cleanup once workers and emitter exit
		wg.Wait()
		if finish != nil {
			finish()
		}
		mu.Lock()
		for seq, chunks := range ready {
			recycleChunks(chunks)
			delete(ready, seq)
		}
		mu.Unlock()
		if s.err == nil {
			select {
			case <-s.stop:
				s.err = s.cause
			default:
			}
		}
		close(s.scanDone)
		close(s.ch)
	}()
}

// recycleChunks returns pool-shaped chunk buffers to the batch pool.
func recycleChunks(chunks []SelChunk) {
	for _, c := range chunks {
		RecycleChunk(c)
	}
}

// RecycleChunk returns a chunk's buffers to the batch pool once the
// consumer has projected it. Only pool-shaped chunks — full-capacity
// position and value buffers, the kind the scan pipeline steals from the
// pool — are recycled; partitioned shard chunks (nil positions,
// arbitrary capacity) are left for the collector. Recycling also
// releases the chunk's resource-quota charge, closing the loop opened
// at produce time.
func RecycleChunk(c SelChunk) {
	if c.Rows == nil || cap(c.Rows) != BatchSize || cap(c.Values) != BatchSize {
		return
	}
	c.quota.Release(ChunkQuotaBytes)
	PutBatch(&Batch{Sel: c.Rows[:BatchSize], Val: c.Values[:BatchSize]})
}

// NewChunkPipeline starts a pipelined fan-out over n indexed tasks:
// produce(i) runs on up to workers goroutines, and the tasks' chunks are
// emitted strictly in index order over the stream's bounded channel. The
// partition layer's shard fan-out streams through this; tests drive it
// directly to pin the backpressure bound.
func NewChunkPipeline(ctx context.Context, workers, n int, produce func(task int) ([]SelChunk, error)) *ChunkStream {
	return NewChunkPipelineSched(ctx, nil, workers, n, produce)
}

// NewChunkPipelineSched is NewChunkPipeline with production dispatched
// through a shared pool when sp is non-nil: the fan-out becomes one
// sched query of the given width instead of spawning its own
// goroutines. Shard fan-outs are whole-shard tasks, so they never get
// the short-query boost.
func NewChunkPipelineSched(ctx context.Context, sp *sched.Pool, workers, n int, produce func(task int) ([]SelChunk, error)) *ChunkStream {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	s := newChunkStream()
	var next int
	var mu sync.Mutex
	claim := func() (int, int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if next >= n {
			return 0, 0, false
		}
		i := next
		next++
		return i, i, true
	}
	runPipeline(ctx, s, sp, workers, false, claim, produce, nil)
	return s
}

// Adaptive morsel sizing: the scheduler starts at MorselBlocks and
// grows the stride geometrically while morsels both complete faster
// than adaptGrowBelow and qualify almost nothing — the signature of a
// highly selective predicate over a huge column, where fixed-size
// morsels spend as much time on scheduling atomics and chunk
// bookkeeping as on scanning. The output gate matters as much as the
// time gate: a dense scan's morsels may also finish fast, but growing
// their stride would multiply the rows one in-flight pipeline task can
// hold and blow the stalled-consumer memory bound, while a sparse
// morsel's output stays around a chunk no matter the stride, so growth
// is free. Growth is capped so a mispredicted stride never destroys
// work-stealing balance, and because claimed ranges are contiguous and
// emitted in claim order, results stay byte-identical at every stride.
const (
	// MaxMorselBlocks caps adaptive stride growth at 16x the base
	// morsel: 1Mi rows per morsel at the default block size.
	MaxMorselBlocks = 16 * MorselBlocks
	// adaptGrowBelow is the per-morsel wall-time floor under which the
	// stride may double: finishing a morsel this fast means scheduling
	// overhead is a measurable fraction of the work.
	adaptGrowBelow = 200 * time.Microsecond
	// adaptGrowMaxRows is the qualifying-output ceiling for growth: a
	// morsel compacting to at most one batch is doing mostly skipping,
	// not producing.
	adaptGrowMaxRows = BatchSize
)

// rowRange is one claimed scan range [start, end).
type rowRange struct{ start, end int }

// adaptiveMorsels is a per-query morsel cursor: claim hands out
// contiguous ranges of the current stride with dense sequence numbers,
// observe grows the stride when morsels complete too fast. One mutex
// guards both — a morsel is many thousands of rows, so the lock is cold.
type adaptiveMorsels struct {
	mu        sync.Mutex
	blockRows int
	total     int
	pos       int
	seq       int
	stride    int
}

func newAdaptiveMorsels(c *column.Int64) *adaptiveMorsels {
	return &adaptiveMorsels{blockRows: c.BlockSize(), total: c.Len(), stride: MorselBlocks}
}

// newMorsels builds the adaptive cursor for a scan of c, seeded from
// the table's last recorded effective stride so steady-state scans
// skip the warm-up doublings. A stale hint is self-correcting: observe
// shrinks an oversized stride within a couple of morsels, and results
// are stride-independent by construction.
func (e *Exec) newMorsels(c *column.Int64) *adaptiveMorsels {
	cur := newAdaptiveMorsels(c)
	if h := e.t.ScanStrideHint(); h >= MorselBlocks && h <= MaxMorselBlocks {
		cur.stride = h
	}
	return cur
}

// recordStride stores a finished scan's effective stride as the
// table's seed for the next one.
func (e *Exec) recordStride(cur *adaptiveMorsels) { e.t.RecordScanStride(cur.Stride()) }

func (a *adaptiveMorsels) claim() (rowRange, int, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.pos >= a.total {
		return rowRange{}, 0, false
	}
	end := a.pos + a.stride*a.blockRows
	if end > a.total {
		end = a.total
	}
	r := rowRange{start: a.pos, end: end}
	a.pos = end
	seq := a.seq
	a.seq++
	return r, seq, true
}

// observe feeds one morsel's wall time and qualifying-row count back
// into the stride: fast, near-empty morsels grow it; dense morsels
// shrink it back toward the base. The shrink matters when selectivity
// shifts mid-column (a sparse prefix followed by a dense suffix, the
// shape of time-ordered data with a recent-values predicate): without
// it, a stride grown during the sparse region would let every
// in-flight task of the dense region hold a full max-stride morsel's
// worth of chunks, multiplying the stalled-consumer memory bound.
func (a *adaptiveMorsels) observe(d time.Duration, qualRows int) {
	a.mu.Lock()
	switch {
	case d < adaptGrowBelow && qualRows <= adaptGrowMaxRows:
		if a.stride < MaxMorselBlocks {
			a.stride *= 2
		}
	case qualRows > adaptGrowMaxRows:
		if a.stride > MorselBlocks {
			a.stride /= 2
		}
	}
	a.mu.Unlock()
}

// Stride returns the current stride in blocks.
func (a *adaptiveMorsels) Stride() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stride
}

// SelectChunkStream is the pipelined form of SelectChunks: qualifying
// chunks arrive over a bounded channel while morsel workers are still
// scanning, in insertion order, byte-identical to Select's output when
// concatenated. The access-frequency feedback is flushed in one
// TouchMany once the scan side completes, whether or not the consumer
// has drained. Cancelling ctx (or calling Close) stops the workers after
// their current morsel; ScanDone reports when storage is no longer read.
func (e *Exec) SelectChunkStream(ctx context.Context, col string, pred expr.Expr, mode ScanMode) (*ChunkStream, error) {
	c, err := e.t.Column(col)
	if err != nil {
		return nil, err
	}
	var active *bitvec.Vector
	if mode == ScanActive {
		active = e.t.Active()
	}
	workers := e.workersFor(c.Len())
	touching := e.touch && mode == ScanActive

	cur := e.newMorsels(c)
	s := newChunkStream()
	s.stride = cur.Stride

	quota := governor.FromContext(ctx)
	var touchMu sync.Mutex
	var touched []int32
	produce := func(r rowRange) ([]SelChunk, error) {
		t0 := time.Now()
		batches := collectChunks(c, pred, active, r.start, r.end)
		qual := 0
		for _, b := range batches {
			qual += len(b.Sel)
		}
		cur.observe(time.Since(t0), qual)
		if len(batches) == 0 {
			return nil, nil
		}
		chunks := make([]SelChunk, len(batches))
		for i, b := range batches {
			// Charge each pooled chunk the query keeps in flight before
			// it enters the reorder stage; RecycleChunk releases the
			// charge wherever the chunk's journey ends. On failure the
			// morsel's batches go straight back to the pool — already
			// charged chunks settle through their recycle — and the
			// latched exhaustion tears the pipeline down.
			if err := quota.Acquire(ChunkQuotaBytes); err != nil {
				for _, bb := range batches[i:] {
					PutBatch(bb)
				}
				recycleChunks(chunks[:i])
				return nil, err
			}
			chunks[i] = SelChunk{Rows: b.Sel, Values: b.Val, quota: quota}
		}
		if touching {
			touchMu.Lock()
			for _, ch := range chunks {
				touched = append(touched, ch.Rows...)
			}
			touchMu.Unlock()
		}
		return chunks, nil
	}
	finish := func() {
		e.recordStride(cur)
		if !touching {
			return
		}
		// One flush per query, like Select; TouchMany counts are
		// order-independent, so the worker interleaving never shows.
		// This runs before ScanDone closes, i.e. still under the
		// caller's read lock.
		touchMu.Lock()
		rows := touched
		touched = nil
		touchMu.Unlock()
		if len(rows) > 0 {
			e.t.TouchMany(rows)
		}
	}
	runPipeline(ctx, s, e.sched, workers, shortScan(c.Len()), cur.claim, produce, finish)
	return s, nil
}
