package engine

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"amnesiadb/internal/expr"
)

// drainStream consumes a chunk stream to the end, concatenating rows
// and values.
func drainStream(t *testing.T, st *ChunkStream) ([]int32, []int64) {
	t.Helper()
	var rows []int32
	var vals []int64
	for {
		c, ok, err := st.Next()
		if err != nil {
			t.Fatalf("stream error: %v", err)
		}
		if !ok {
			return rows, vals
		}
		rows = append(rows, c.Rows...)
		vals = append(vals, c.Values...)
	}
}

// TestSelectChunkStreamMatchesSelect pins the pipeline's byte-identity:
// concatenating the streamed chunks must reproduce Select exactly, for
// every bitmap shape, predicate and parallelism — including the
// adaptive strides the scheduler grows into mid-scan.
func TestSelectChunkStreamMatchesSelect(t *testing.T) {
	for _, shape := range bitmapShapes {
		tb := parallelTable(t, shape)
		for name, pred := range equivalencePredicates() {
			ref := NewSilent(tb)
			ref.SetParallelism(1)
			want, err := ref.Select("a", pred, ScanActive)
			if err != nil {
				t.Fatal(err)
			}
			for _, par := range []int{1, 2, 4} {
				ex := NewSilent(tb)
				ex.SetParallelism(par)
				st, err := ex.SelectChunkStream(context.Background(), "a", pred, ScanActive)
				if err != nil {
					t.Fatal(err)
				}
				rows, vals := drainStream(t, st)
				if len(rows) != len(want.Rows) {
					t.Fatalf("%s/%s par=%d: %d rows, want %d", shape, name, par, len(rows), len(want.Rows))
				}
				for i := range rows {
					if rows[i] != want.Rows[i] || vals[i] != want.Values[i] {
						t.Fatalf("%s/%s par=%d: row %d = (%d,%d), want (%d,%d)",
							shape, name, par, i, rows[i], vals[i], want.Rows[i], want.Values[i])
					}
				}
				// The pipeline must report scan completion.
				select {
				case <-st.ScanDone():
				case <-time.After(5 * time.Second):
					t.Fatalf("%s/%s par=%d: ScanDone never closed after drain", shape, name, par)
				}
			}
		}
	}
}

// TestChunkPipelineEmitsInOrder pins the reorder stage: tasks finishing
// out of order (earlier tasks sleep longer) must still emit in task
// order.
func TestChunkPipelineEmitsInOrder(t *testing.T) {
	const n = 32
	st := NewChunkPipeline(context.Background(), 4, n, func(task int) ([]SelChunk, error) {
		// Invert completion order within each worker's stride.
		time.Sleep(time.Duration(n-task) * 100 * time.Microsecond)
		return []SelChunk{{Values: []int64{int64(task)}}}, nil
	})
	var got []int64
	for {
		c, ok, err := st.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, c.Values...)
	}
	if len(got) != n {
		t.Fatalf("emitted %d chunks, want %d", len(got), n)
	}
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("chunk %d carries task %d; emission is out of order", i, v)
		}
	}
}

// TestChunkPipelineBackpressure pins the memory bound: with a stalled
// consumer, the producers must stop after the in-flight token budget
// plus the channel buffer, no matter how many tasks remain.
func TestChunkPipelineBackpressure(t *testing.T) {
	const n, workers = 200, 4
	var produced atomic.Int64
	st := NewChunkPipeline(context.Background(), workers, n, func(task int) ([]SelChunk, error) {
		produced.Add(1)
		return []SelChunk{{Values: []int64{int64(task)}}}, nil
	})
	// Do not consume: the pipeline must stall at its bound. The bound is
	// the in-flight token budget (tasks claimed but not yet fully
	// emitted) plus the chunks sitting in the channel buffer.
	bound := int64(pipelineInflight(workers) + pipelineChunkBuf)
	deadline := time.Now().Add(time.Second)
	var peak int64
	for time.Now().Before(deadline) {
		if peak = produced.Load(); peak > bound {
			t.Fatalf("stalled consumer saw %d tasks produced, bound is %d", peak, bound)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if peak == 0 {
		t.Fatal("no task produced at all")
	}
	// Draining releases the backpressure and completes every task in
	// order.
	var got []int64
	for {
		c, ok, err := st.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, c.Values...)
	}
	if len(got) != n || produced.Load() != n {
		t.Fatalf("after drain: %d chunks, %d produced, want %d", len(got), produced.Load(), n)
	}
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("chunk %d = task %d after stall+drain", i, v)
		}
	}
}

// waitGoroutines polls until the goroutine count settles back to
// baseline (with slack for runtime helpers), failing after the deadline
// — the no-leak assertion behind the cancellation tests.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSelectChunkStreamCancelStopsWorkers pins the teardown contract: a
// cancelled context stops the morsel producers mid-scan (ScanDone
// closes), the consumer sees the cancellation as an error, and no
// goroutine outlives the stream.
func TestSelectChunkStreamCancelStopsWorkers(t *testing.T) {
	tb := parallelTable(t, "all-active")
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	ex := NewSilent(tb)
	ex.SetParallelism(4)
	st, err := ex.SelectChunkStream(ctx, "a", expr.True{}, ScanActive)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := st.Next(); err != nil || !ok {
		t.Fatalf("first chunk: ok=%v err=%v", ok, err)
	}
	cancel()
	select {
	case <-st.ScanDone():
	case <-time.After(5 * time.Second):
		t.Fatal("ScanDone never closed after cancel: workers leaked")
	}
	// The channel drains whatever was emitted, then reports the cause.
	for {
		_, ok, err := st.Next()
		if ok {
			continue
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("post-cancel error = %v, want context.Canceled", err)
		}
		break
	}
	waitGoroutines(t, baseline)
}

// TestChunkStreamCloseTearsDown pins Close as the consumer-side
// teardown: producers stop, ScanDone closes, the error is
// ErrStreamClosed, and goroutines settle.
func TestChunkStreamCloseTearsDown(t *testing.T) {
	tb := parallelTable(t, "every-other")
	baseline := runtime.NumGoroutine()
	ex := NewSilent(tb)
	ex.SetParallelism(2)
	st, err := ex.SelectChunkStream(context.Background(), "a", expr.True{}, ScanActive)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := st.Next(); err != nil || !ok {
		t.Fatalf("first chunk: ok=%v err=%v", ok, err)
	}
	st.Close()
	st.Close() // idempotent
	select {
	case <-st.ScanDone():
	case <-time.After(5 * time.Second):
		t.Fatal("ScanDone never closed after Close")
	}
	for {
		_, ok, err := st.Next()
		if ok {
			continue
		}
		if !errors.Is(err, ErrStreamClosed) {
			t.Fatalf("post-close error = %v, want ErrStreamClosed", err)
		}
		break
	}
	waitGoroutines(t, baseline)
}

// TestChunkPipelineProduceError pins the fail-fast path: a producer
// error surfaces to the consumer and tears the pipeline down.
func TestChunkPipelineProduceError(t *testing.T) {
	boom := errors.New("boom")
	st := NewChunkPipeline(context.Background(), 2, 16, func(task int) ([]SelChunk, error) {
		if task == 3 {
			return nil, boom
		}
		return []SelChunk{{Values: []int64{int64(task)}}}, nil
	})
	sawErr := false
	for {
		_, ok, err := st.Next()
		if err != nil {
			if !errors.Is(err, boom) {
				t.Fatalf("error = %v, want boom", err)
			}
			sawErr = true
			break
		}
		if !ok {
			break
		}
	}
	if !sawErr {
		t.Fatal("producer error never surfaced")
	}
	select {
	case <-st.ScanDone():
	case <-time.After(5 * time.Second):
		t.Fatal("ScanDone never closed after producer error")
	}
}

// TestAdaptiveMorselsGrowAndCap unit-tests the cursor: tiny morsels
// double the stride geometrically up to the cap, claims stay contiguous
// and exhaustive, and the stride is observable.
func TestAdaptiveMorselsGrowAndCap(t *testing.T) {
	tb := parallelTable(t, "all-active")
	c := tb.MustColumn("a")
	cur := newAdaptiveMorsels(c)
	if got := cur.Stride(); got != MorselBlocks {
		t.Fatalf("initial stride = %d, want %d", got, MorselBlocks)
	}
	pos, seq := 0, 0
	for {
		r, s, ok := cur.claim()
		if !ok {
			break
		}
		if r.start != pos || s != seq {
			t.Fatalf("claim %d = [%d,%d), want start %d", s, r.start, r.end, pos)
		}
		pos, seq = r.end, seq+1
		cur.observe(0, 0) // instantaneous, empty morsel: grow
	}
	if pos != c.Len() {
		t.Fatalf("claims covered %d rows, column has %d", pos, c.Len())
	}
	if got := cur.Stride(); got <= MorselBlocks || got > MaxMorselBlocks {
		t.Fatalf("stride after constant growth = %d, want in (%d, %d]", got, MorselBlocks, MaxMorselBlocks)
	}
	// Unbounded feedback saturates at the cap and stays there.
	for i := 0; i < 32; i++ {
		cur.observe(0, 0)
	}
	if got := cur.Stride(); got != MaxMorselBlocks {
		t.Fatalf("stride cap = %d, want %d", got, MaxMorselBlocks)
	}
	// Slow morsels never grow the stride.
	cur2 := newAdaptiveMorsels(c)
	cur2.observe(time.Second, 0)
	if got := cur2.Stride(); got != MorselBlocks {
		t.Fatalf("slow morsel grew stride to %d", got)
	}
	// Neither do fast but dense morsels: growing their stride would
	// multiply the rows an in-flight pipeline task can hold.
	cur3 := newAdaptiveMorsels(c)
	cur3.observe(0, adaptGrowMaxRows+1)
	if got := cur3.Stride(); got != MorselBlocks {
		t.Fatalf("dense morsel grew stride to %d", got)
	}
	// And a grown stride shrinks back once morsels turn dense, so a
	// sparse prefix cannot inflate the dense suffix's memory bound.
	cur4 := newAdaptiveMorsels(c)
	cur4.observe(0, 0)
	cur4.observe(0, 0)
	if got := cur4.Stride(); got != 4*MorselBlocks {
		t.Fatalf("grown stride = %d, want %d", got, 4*MorselBlocks)
	}
	cur4.observe(0, adaptGrowMaxRows+1)
	if got := cur4.Stride(); got != 2*MorselBlocks {
		t.Fatalf("stride after dense morsel = %d, want %d", got, 2*MorselBlocks)
	}
	cur4.observe(0, adaptGrowMaxRows+1)
	cur4.observe(0, adaptGrowMaxRows+1)
	if got := cur4.Stride(); got != MorselBlocks {
		t.Fatalf("stride floor = %d, want base %d", got, MorselBlocks)
	}
}

// TestConcurrentChunkStreams races several pipelined streams over one
// table against materialized selects — the channel-handoff race test
// the CI -race job runs fully instrumented.
func TestConcurrentChunkStreams(t *testing.T) {
	tb := parallelTable(t, "random")
	pred := expr.NewRange(1<<10, 1<<16)
	ref := NewSilent(tb)
	ref.SetParallelism(1)
	want, err := ref.Select("a", pred, ScanActive)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for g := 0; g < 4; g++ {
		go func(par int) {
			ex := NewSilent(tb)
			ex.SetParallelism(par)
			st, err := ex.SelectChunkStream(context.Background(), "a", pred, ScanActive)
			if err != nil {
				done <- err
				return
			}
			count := 0
			for {
				c, ok, err := st.Next()
				if err != nil {
					done <- err
					return
				}
				if !ok {
					break
				}
				count += len(c.Values)
			}
			if count != want.Count() {
				done <- errors.New("streamed count diverged")
				return
			}
			done <- nil
		}(1 + g%3)
		go func() {
			ex := NewSilent(tb)
			ex.SetParallelism(2)
			res, err := ex.Select("a", pred, ScanActive)
			if err == nil && res.Count() != want.Count() {
				err = errors.New("select count diverged")
			}
			done <- err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
