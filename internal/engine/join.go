package engine

import (
	"amnesiadb/internal/expr"
	"amnesiadb/internal/table"
)

// JoinRow is one equi-join match: positions into the left and right
// tables plus the join key.
type JoinRow struct {
	Left  int32
	Right int32
	Key   int64
}

// JoinResult is the output of HashJoin.
type JoinResult struct {
	Rows []JoinRow
}

// Count returns the number of joined pairs.
func (r *JoinResult) Count() int { return len(r.Rows) }

// HashJoin computes the equi-join left.leftCol = right.rightCol over
// tuples visible under mode, completing the SELECT-PROJECT-JOIN subspace
// of §2.2. An optional predicate restricts the join key. Both sides are
// collected by the vectorized scan pipeline, whose value vectors double
// as the join keys — no per-tuple column access happens during build or
// probe. The smaller side is always the build side; output order is
// probe-side position order.
//
// In a database with amnesia, join results silently shrink as either
// side forgets matching tuples — JoinPrecision quantifies that loss.
func HashJoin(left *table.Table, leftCol string, right *table.Table, rightCol string, pred expr.Expr, mode ScanMode) (*JoinResult, error) {
	if pred == nil {
		pred = expr.True{}
	}
	collect := func(t *table.Table, colName string) (*Result, error) {
		return NewSilent(t).Select(colName, pred, mode)
	}
	l, err := collect(left, leftCol)
	if err != nil {
		return nil, err
	}
	r, err := collect(right, rightCol)
	if err != nil {
		return nil, err
	}

	// Build on the smaller side.
	swap := l.Count() > r.Count()
	build, probe := l, r
	if swap {
		build, probe = r, l
	}
	ht := make(map[int64][]int32, build.Count())
	for i, row := range build.Rows {
		k := build.Values[i]
		ht[k] = append(ht[k], row)
	}
	out := &JoinResult{}
	for i, p := range probe.Rows {
		k := probe.Values[i]
		for _, b := range ht[k] {
			row := JoinRow{Key: k}
			if swap {
				row.Left, row.Right = p, b
			} else {
				row.Left, row.Right = b, p
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// JoinPrecision runs the join under ScanActive and ScanAll and reports
// the §2.3 metrics lifted to join results: pairs returned, pairs missed
// because at least one side forgot its tuple, and the precision ratio.
func JoinPrecision(left *table.Table, leftCol string, right *table.Table, rightCol string, pred expr.Expr) (rf, mf int, pf float64, err error) {
	act, err := HashJoin(left, leftCol, right, rightCol, pred, ScanActive)
	if err != nil {
		return 0, 0, 0, err
	}
	all, err := HashJoin(left, leftCol, right, rightCol, pred, ScanAll)
	if err != nil {
		return 0, 0, 0, err
	}
	rf = act.Count()
	mf = all.Count() - rf
	if rf+mf == 0 {
		return 0, 0, 1, nil
	}
	return rf, mf, float64(rf) / float64(rf+mf), nil
}
